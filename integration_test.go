package hpcadvisor_test

import (
	"strings"
	"testing"

	"hpcadvisor"
	"hpcadvisor/internal/core"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/scenario"
)

// TestFullWorkflowIntegration drives the complete tool lifecycle the way a
// real user would across one long session: two applications collected into
// one dataset, filtered plots and advice per application, recipes, what-if
// repricing, sampler-pruned recollection, and teardown.
func TestFullWorkflowIntegration(t *testing.T) {
	adv := hpcadvisor.New("mysubscription")

	lammpsCfg, err := hpcadvisor.ParseConfig([]byte(`subscription: mysubscription
skus:
  - Standard_HB120rs_v3
  - Standard_HC44rs
rgprefix: integ
nnodes: [1, 2, 4, 8]
appname: lammps
region: southcentralus
appinputs:
  BOXFACTOR: "30"
`))
	if err != nil {
		t.Fatal(err)
	}
	foamCfg, err := hpcadvisor.ParseConfig([]byte(`subscription: mysubscription
skus:
  - Standard_HB120rs_v3
rgprefix: integ
nnodes: [2, 4, 8]
appname: openfoam
region: southcentralus
appinputs:
  mesh: "40 16 16"
`))
	if err != nil {
		t.Fatal(err)
	}

	// Two deployments, two collections into the same advisor dataset.
	dep1, err := adv.DeployCreate(lammpsCfg)
	if err != nil {
		t.Fatal(err)
	}
	dep2, err := adv.DeployCreate(foamCfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := adv.Collect(dep1.Name, lammpsCfg, hpcadvisor.CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := adv.Collect(dep2.Name, foamCfg, hpcadvisor.CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Completed != 8 || r2.Completed != 3 {
		t.Fatalf("collections: %d + %d", r1.Completed, r2.Completed)
	}
	if adv.Store.Len() != 11 {
		t.Fatalf("dataset = %d points", adv.Store.Len())
	}

	// Per-application filtering keeps the two workloads apart.
	lammpsPts := adv.Store.Select(dataset.Filter{AppName: "lammps"})
	foamPts := adv.Store.Select(dataset.Filter{AppName: "openfoam"})
	if len(lammpsPts) != 8 || len(foamPts) != 3 {
		t.Fatalf("filters: %d lammps, %d openfoam", len(lammpsPts), len(foamPts))
	}

	// Plots per application have the right series counts.
	lp := adv.Plots(hpcadvisor.Filter{AppName: "lammps"})
	if len(lp.ExecTimeVsNodes.Series) != 2 {
		t.Errorf("lammps series = %d, want 2 SKUs", len(lp.ExecTimeVsNodes.Series))
	}
	fp := adv.Plots(hpcadvisor.Filter{AppName: "openfoam"})
	if len(fp.ExecTimeVsNodes.Series) != 1 {
		t.Errorf("openfoam series = %d", len(fp.ExecTimeVsNodes.Series))
	}

	// Advice per application; the hc44rs rows never reach the LAMMPS front.
	for _, row := range adv.Advice(hpcadvisor.Filter{AppName: "lammps"}, hpcadvisor.ByTime) {
		if row.SKUAlias != "hb120rs_v3" {
			t.Errorf("lammps front contains %s", row.SKUAlias)
		}
	}

	// Recipes render for the combined front.
	bundle, err := adv.AdviceRecipes(dataset.Filter{AppName: "lammps"}, pareto.ByTime, "southcentralus")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bundle, "#SBATCH") {
		t.Error("recipes missing")
	}

	// What-if: the advice under spot pricing keeps times, cuts costs.
	spotRows, err := adv.RepriceAdvice(dataset.Filter{AppName: "lammps"}, pareto.ByTime, "southcentralus", true)
	if err != nil {
		t.Fatal(err)
	}
	baseRows := adv.Advice(dataset.Filter{AppName: "lammps"}, hpcadvisor.ByTime)
	if spotRows[0].CostUSD >= baseRows[0].CostUSD {
		t.Error("spot repricing should be cheaper")
	}

	// A fresh advisor replays the same sweep with the discard sampler and
	// reaches the same front for less money.
	adv2 := hpcadvisor.New("mysubscription")
	dep3, err := adv2.DeployCreate(lammpsCfg)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := adv2.Collect(dep3.Name, lammpsCfg, hpcadvisor.CollectOptions{Sampler: "discard"})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Skipped == 0 {
		t.Error("discard sampler skipped nothing")
	}
	if recall := pareto.Recall(lammpsPts, adv2.Store.Select(dataset.Filter{})); recall != 1 {
		t.Errorf("sampled front recall = %v", recall)
	}

	// Teardown deletes everything.
	for _, name := range []string{dep1.Name, dep2.Name} {
		if err := adv.DeployShutdown("mysubscription", name); err != nil {
			t.Fatal(err)
		}
	}
	left, err := adv.DeployList("mysubscription", "integ")
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("deployments left: %v", left)
	}
}

// TestTaskListPersistenceRoundTrip exercises save/load/resume of a partially
// collected task list through the public-ish core surface, the mechanism the
// CLI relies on between invocations.
func TestTaskListPersistenceRoundTrip(t *testing.T) {
	adv := hpcadvisor.New("mysubscription")
	cfg, err := hpcadvisor.ParseConfig([]byte(`subscription: mysubscription
skus: [Standard_HB120rs_v3]
rgprefix: persist
nnodes: [1, 2, 4]
appname: gromacs
region: southcentralus
`))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Collect(dep.Name, cfg, hpcadvisor.CollectOptions{}); err != nil {
		t.Fatal(err)
	}

	// Serialize the list and dataset, rebuild a fresh world, resume.
	listData, err := adv.TaskList(dep.Name).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	storeData, err := adv.Store.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	adv2 := core.New("mysubscription")
	if err := adv2.RestoreDeployment(dep); err != nil {
		t.Fatal(err)
	}
	list, err := scenario.Unmarshal(listData)
	if err != nil {
		t.Fatal(err)
	}
	store, err := dataset.Unmarshal(storeData)
	if err != nil {
		t.Fatal(err)
	}
	adv2.SetTaskList(dep.Name, list)
	adv2.Store = store

	report, err := adv2.Collect(dep.Name, cfg, core.CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 0 {
		t.Errorf("resumed collection re-ran %d scenarios", report.Completed)
	}
	if adv2.Store.Len() != 3 {
		t.Errorf("restored dataset = %d", adv2.Store.Len())
	}
	if adv2.AdviceTable(hpcadvisor.Filter{}, hpcadvisor.ByTime) == "" {
		t.Error("advice unavailable after restore")
	}
}

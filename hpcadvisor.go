// Package hpcadvisor reproduces the system of "HPCAdvisor: A Tool for
// Assisting Users in Selecting HPC Resources in the Cloud" (Netto, SC 2024):
// a tool that helps users choose VM type, number of nodes, and processes per
// node for an HPC workload, taking the application's input into account.
//
// Given a configuration (cloud subscription, VM types, node counts,
// application and its inputs — the paper's Listing 1), the advisor:
//
//  1. provisions a cloud environment (resource group, network, storage,
//     batch service — Section III-B),
//  2. executes every scenario of the sweep, collecting execution time, cost
//     and application metrics (Section III-C, Algorithm 1),
//  3. generates the execution-time, cost, speedup, and efficiency plots
//     (Section III-D, Figures 2-5), and
//  4. emits advice as the Pareto front over (execution time, cost)
//     (Section III-E, Figure 6, Listings 3-4).
//
// The cloud, the batch orchestrator, and the HPC applications are fully
// simulated substrates (no credentials, no network): an ARM-like control
// plane with quotas and provisioning latencies, a Batch-like gang scheduler
// on a virtual clock, and calibrated analytical performance models for
// LAMMPS, OpenFOAM, WRF, GROMACS, NAMD, and a matmul demo. Costs use the
// real published on-demand prices of the paper's SKUs, so advice tables
// reproduce the paper's numbers in shape and magnitude.
//
// # Quick start
//
//	adv := hpcadvisor.New("mysubscription")
//	cfg, _ := hpcadvisor.ParseConfig([]byte(`
//	subscription: mysubscription
//	skus:
//	  - Standard_HB120rs_v3
//	rgprefix: quickstart
//	nnodes: [1, 2, 4]
//	appname: lammps
//	region: southcentralus
//	ppr: 100
//	appinputs:
//	  BOXFACTOR: "20"
//	`))
//	dep, _ := adv.DeployCreate(cfg)
//	report, _ := adv.Collect(dep.Name, cfg, hpcadvisor.CollectOptions{})
//	fmt.Print(adv.AdviceTable(hpcadvisor.Filter{}, hpcadvisor.ByTime))
//
// The smart-sampling strategies of Section III-F (aggressive discarding,
// regression-based performance factors, bottleneck hints) are available via
// CollectOptions.Sampler ("discard", "perffactor", "bottleneck",
// "combined").
//
// Multi-SKU sweeps can collect VM types concurrently by setting
// CollectOptions.MaxParallelPools > 1 (the CLI's -parallel-pools): the
// scenario list is partitioned per VM type into independent pool lanes and
// the resulting dataset is byte-identical to the sequential run — only the
// time to advice shrinks. See docs/ARCHITECTURE.md.
//
// Advice is not limited to executed scenarios: PredictedAdvice fits scaling
// models per (application, input, SKU) group and merges model-predicted
// points at untested node counts into the front, every predicted row
// visibly marked — the paper's Section III-F advice "with minimal or no
// executions in the cloud". Backtest reports how far those models can be
// trusted.
//
// Datasets persist through a pluggable storage engine: Advisor.OpenStore
// attaches a durable backend (a JSON Lines file or a WAL-backed binary
// segment store with CRC-checksummed frames, compaction, and crash
// recovery) so every collected point is written through the moment it
// lands; see the "Storage engine" section of docs/ARCHITECTURE.md.
package hpcadvisor

import (
	"hpcadvisor/internal/collector"
	"hpcadvisor/internal/config"
	"hpcadvisor/internal/core"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/deploy"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/plot"
	"hpcadvisor/internal/predictor"
)

// Advisor is the top-level entry point; see package core for the method
// set: DeployCreate, DeployList, DeployShutdown, Collect, Plots,
// WritePlotsSVG, Advice, AdviceTable.
type Advisor = core.Advisor

// Config is the parsed main configuration file (paper Listing 1).
type Config = config.Config

// Deployment records a provisioned environment.
type Deployment = deploy.Deployment

// DataPoint is one executed scenario's record in the dataset.
type DataPoint = dataset.Point

// Filter selects datapoints for plots and advice.
type Filter = dataset.Filter

// CollectOptions tune a data-collection run, including the smart-sampling
// strategy.
type CollectOptions = core.CollectOptions

// CollectReport summarizes a collection run, including total collection
// cost.
type CollectReport = collector.Report

// PlotSet bundles the tool's five plots (Figures 2-6).
type PlotSet = core.PlotSet

// SortOrder selects advice ordering.
type SortOrder = pareto.SortOrder

// Advice orderings: by execution time (the paper's default) or by cost.
const (
	ByTime = pareto.ByTime
	ByCost = pareto.ByCost
)

// New creates an advisor bound to a cloud subscription with the default
// SKU catalog, price book, and application registry.
func New(subscriptionID string) *Advisor {
	return core.New(subscriptionID)
}

// ParseConfig parses a Listing 1-style YAML configuration.
func ParseConfig(data []byte) (*Config, error) {
	return config.Parse(data)
}

// LoadConfig reads and parses a configuration file.
func LoadConfig(path string) (*Config, error) {
	return config.Load(path)
}

// FormatAdviceTable renders advice rows exactly as the paper's Listings 3-4.
func FormatAdviceTable(rows []DataPoint) string {
	return pareto.FormatAdviceTable(rows)
}

// ParetoFront computes the non-dominated (time, cost) points among the
// given datapoints.
func ParetoFront(points []DataPoint) []DataPoint {
	return pareto.Front(points)
}

// PredictorConfig tunes the prediction of untested scenarios: the node
// grid, the evidence and fit-quality gates, and the pricing of synthesized
// points. Build one with Advisor.PredictorConfig.
type PredictorConfig = predictor.Config

// PredictedRow is one merged-advice row: a measured datapoint or a
// model-synthesized one (Predicted true) with its model family, fit
// quality, and prediction interval.
type PredictedRow = predictor.Row

// BacktestReport is the leave-one-out accuracy of the scaling models,
// as MAPE per model family.
type BacktestReport = predictor.BacktestReport

// FormatPredictedAdviceTable renders merged advice rows with their Source
// markings (measured vs predicted/model).
func FormatPredictedAdviceTable(rows []PredictedRow) string {
	return predictor.FormatAdviceTable(rows)
}

// Plot is a renderable chart from the tool's plot set.
type Plot = plot.Plot

// RenderPlotASCII renders a plot as a terminal chart.
func RenderPlotASCII(p Plot, width, height int) string {
	return plot.RenderASCII(p, width, height)
}

// RenderPlotSVG renders a plot as a standalone SVG document.
func RenderPlotSVG(p Plot) []byte {
	return plot.RenderSVG(p)
}

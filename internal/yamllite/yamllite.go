// Package yamllite implements a small YAML subset parser sufficient for the
// HPCAdvisor main configuration file (paper Listing 1): nested block maps,
// block sequences, flow sequences ([1, 2, 3]), single- and double-quoted
// scalars, and comments.
//
// One deliberate extension: duplicate map keys are promoted to a list of
// values rather than rejected. The paper's Listing 1 writes two application
// inputs as repeated "mesh:" keys; with this rule the listing parses exactly
// as printed, yielding mesh -> ["80 24 24", "60 16 16"].
package yamllite

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the variants of a Value.
type Kind int

// Value kinds.
const (
	Null Kind = iota
	Scalar
	List
	Map
)

func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Scalar:
		return "scalar"
	case List:
		return "list"
	case Map:
		return "map"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a parsed YAML node.
type Value struct {
	Kind    Kind
	scalar  string
	quoted  bool
	list    []*Value
	entries []MapEntry
}

// MapEntry is one key/value pair of a Map value; entry order is preserved.
type MapEntry struct {
	Key   string
	Value *Value
}

// NewScalar builds a scalar Value, used mostly by tests and the encoder.
func NewScalar(s string) *Value { return &Value{Kind: Scalar, scalar: s} }

// NewList builds a list Value.
func NewList(items ...*Value) *Value { return &Value{Kind: List, list: items} }

// NewMap builds a map Value from entries.
func NewMap(entries ...MapEntry) *Value { return &Value{Kind: Map, entries: entries} }

// ParseError describes a syntax error with its 1-based line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("yamllite: line %d: %s", e.Line, e.Msg)
}

// Parse parses a YAML document into a Value tree.
func Parse(data []byte) (*Value, error) {
	return ParseString(string(data))
}

// ParseString parses a YAML document held in a string.
func ParseString(doc string) (*Value, error) {
	lines, err := splitLines(doc)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return &Value{Kind: Null}, nil
	}
	p := &parser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, &ParseError{Line: l.num, Msg: fmt.Sprintf("unexpected content %q", l.text)}
	}
	return v, nil
}

type line struct {
	num    int
	indent int
	text   string // content with indentation and comments removed
}

// splitLines strips comments and blank lines, and records indentation.
func splitLines(doc string) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(doc, "\n") {
		num := i + 1
		if strings.Contains(raw, "\t") {
			// Only reject tabs used as indentation; tabs inside values are
			// unusual but harmless.
			trimmed := strings.TrimLeft(raw, " ")
			if strings.HasPrefix(trimmed, "\t") || strings.HasPrefix(raw, "\t") {
				return nil, &ParseError{Line: num, Msg: "tab used for indentation"}
			}
		}
		content := stripComment(raw)
		trimmedRight := strings.TrimRight(content, " \r")
		body := strings.TrimLeft(trimmedRight, " ")
		if body == "" {
			continue
		}
		if body == "---" {
			continue // document start marker
		}
		out = append(out, line{
			num:    num,
			indent: len(trimmedRight) - len(body),
			text:   body,
		})
	}
	return out, nil
}

// stripComment removes a trailing comment. Per YAML, '#' starts a comment
// only at line start or when preceded by whitespace, and never inside
// quotes.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if inSingle || inDouble {
				continue
			}
			if i == 0 || s[i-1] == ' ' {
				return s[:i]
			}
		}
	}
	return s
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) peek() (line, bool) {
	if p.pos >= len(p.lines) {
		return line{}, false
	}
	return p.lines[p.pos], true
}

// parseBlock parses a block node whose lines all share indentation indent.
func (p *parser) parseBlock(indent int) (*Value, error) {
	l, ok := p.peek()
	if !ok || l.indent < indent {
		return &Value{Kind: Null}, nil
	}
	if l.indent != indent {
		return nil, &ParseError{Line: l.num, Msg: fmt.Sprintf("inconsistent indentation (got %d, expected %d)", l.indent, indent)}
	}
	if l.text[0] == '[' || l.text[0] == '{' {
		// A flow document on a single line, e.g. "{}" or "[1, 2]".
		p.pos++
		return parseFlow(l.text, l.num)
	}
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *parser) parseSequence(indent int) (*Value, error) {
	seq := &Value{Kind: List}
	for {
		l, ok := p.peek()
		if !ok || l.indent < indent {
			return seq, nil
		}
		if l.indent > indent {
			return nil, &ParseError{Line: l.num, Msg: "unexpected indentation in sequence"}
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			return seq, nil // end of sequence, start of sibling mapping
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if rest == "" {
			// "-" alone: nested block on following deeper lines.
			p.pos++
			next, ok := p.peek()
			if !ok || next.indent <= indent {
				seq.list = append(seq.list, &Value{Kind: Null})
				continue
			}
			item, err := p.parseBlock(next.indent)
			if err != nil {
				return nil, err
			}
			seq.list = append(seq.list, item)
			continue
		}
		if k, v, isMap := splitKeyValue(rest); isMap {
			// "- key: value" begins an inline map item; further keys may
			// continue on deeper lines aligned with the key.
			itemIndent := l.indent + (len(l.text) - len(rest))
			p.pos++
			item := &Value{Kind: Map}
			val, err := p.inlineOrNested(v, l, itemIndent)
			if err != nil {
				return nil, err
			}
			addEntry(item, k, val)
			for {
				nl, ok := p.peek()
				if !ok || nl.indent != itemIndent {
					break
				}
				if strings.HasPrefix(nl.text, "- ") || nl.text == "-" {
					break
				}
				nk, nv, isM := splitKeyValue(nl.text)
				if !isM {
					return nil, &ParseError{Line: nl.num, Msg: "expected key: value inside sequence map item"}
				}
				p.pos++
				nval, err := p.inlineOrNested(nv, nl, itemIndent)
				if err != nil {
					return nil, err
				}
				addEntry(item, nk, nval)
			}
			seq.list = append(seq.list, item)
			continue
		}
		p.pos++
		v, err := parseFlow(rest, l.num)
		if err != nil {
			return nil, err
		}
		seq.list = append(seq.list, v)
	}
}

func (p *parser) parseMapping(indent int) (*Value, error) {
	m := &Value{Kind: Map}
	for {
		l, ok := p.peek()
		if !ok || l.indent < indent {
			return m, nil
		}
		if l.indent > indent {
			return nil, &ParseError{Line: l.num, Msg: "unexpected indentation in mapping"}
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return m, nil
		}
		key, rest, isMap := splitKeyValue(l.text)
		if !isMap {
			return nil, &ParseError{Line: l.num, Msg: fmt.Sprintf("expected key: value, got %q", l.text)}
		}
		p.pos++
		val, err := p.inlineOrNested(rest, l, indent)
		if err != nil {
			return nil, err
		}
		addEntry(m, key, val)
	}
}

// inlineOrNested interprets the text after "key:": either an inline scalar or
// flow value, or (when empty) a nested block on the following deeper lines.
func (p *parser) inlineOrNested(rest string, l line, indent int) (*Value, error) {
	if rest != "" {
		return parseFlow(rest, l.num)
	}
	next, ok := p.peek()
	if !ok || next.indent <= indent {
		// "key:" with nothing nested is a null value, except that a sequence
		// may be written at the same indentation as its key.
		if ok && next.indent == indent && (strings.HasPrefix(next.text, "- ") || next.text == "-") {
			return p.parseSequence(indent)
		}
		return &Value{Kind: Null}, nil
	}
	return p.parseBlock(next.indent)
}

// addEntry inserts key into m, promoting duplicate keys to a list.
func addEntry(m *Value, key string, val *Value) {
	for i := range m.entries {
		if m.entries[i].Key == key {
			prev := m.entries[i].Value
			if prev.Kind == List && prev.dupPromoted() {
				prev.list = append(prev.list, val)
			} else {
				m.entries[i].Value = &Value{Kind: List, list: []*Value{prev, val}, quoted: true}
			}
			return
		}
	}
	m.entries = append(m.entries, MapEntry{Key: key, Value: val})
}

// dupPromoted marks lists created by duplicate-key promotion; the quoted flag
// is reused as the marker since it is meaningless for lists.
func (v *Value) dupPromoted() bool { return v.Kind == List && v.quoted }

// splitKeyValue splits "key: value" into its parts, honoring quoted keys and
// requiring the colon to be followed by space or end of line.
func splitKeyValue(s string) (key, value string, ok bool) {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case ':':
			if inSingle || inDouble {
				continue
			}
			if i+1 == len(s) {
				return unquote(strings.TrimSpace(s[:i])), "", true
			}
			if s[i+1] == ' ' {
				return unquote(strings.TrimSpace(s[:i])), strings.TrimSpace(s[i+1:]), true
			}
		}
	}
	return "", "", false
}

// parseFlow parses an inline value: a flow sequence, a flow map, or a scalar.
func parseFlow(s string, lineNum int) (*Value, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "[") {
		items, rest, err := parseFlowSeq(s, lineNum)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, &ParseError{Line: lineNum, Msg: fmt.Sprintf("trailing content after flow sequence: %q", rest)}
		}
		return items, nil
	}
	if strings.HasPrefix(s, "{") {
		m, rest, err := parseFlowMap(s, lineNum)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, &ParseError{Line: lineNum, Msg: fmt.Sprintf("trailing content after flow mapping: %q", rest)}
		}
		return m, nil
	}
	return scalarValue(s), nil
}

func scalarValue(s string) *Value {
	if s == "~" || s == "null" {
		return &Value{Kind: Null}
	}
	if isQuoted(s) {
		return &Value{Kind: Scalar, scalar: unquote(s), quoted: true}
	}
	return &Value{Kind: Scalar, scalar: s}
}

func parseFlowSeq(s string, lineNum int) (*Value, string, error) {
	seq := &Value{Kind: List}
	rest := s[1:] // past '['
	for {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			return nil, "", &ParseError{Line: lineNum, Msg: "unterminated flow sequence"}
		}
		if rest[0] == ']' {
			return seq, rest[1:], nil
		}
		var item *Value
		var err error
		switch rest[0] {
		case '[':
			item, rest, err = parseFlowSeq(rest, lineNum)
		case '{':
			item, rest, err = parseFlowMap(rest, lineNum)
		default:
			var tok string
			tok, rest, err = flowToken(rest, lineNum)
			if err == nil {
				item = scalarValue(tok)
			}
		}
		if err != nil {
			return nil, "", err
		}
		seq.list = append(seq.list, item)
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			return nil, "", &ParseError{Line: lineNum, Msg: "unterminated flow sequence"}
		}
		switch rest[0] {
		case ',':
			rest = rest[1:]
		case ']':
			// handled on next loop iteration
		default:
			return nil, "", &ParseError{Line: lineNum, Msg: fmt.Sprintf("expected ',' or ']' in flow sequence near %q", rest)}
		}
	}
}

func parseFlowMap(s string, lineNum int) (*Value, string, error) {
	m := &Value{Kind: Map}
	rest := s[1:] // past '{'
	for {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			return nil, "", &ParseError{Line: lineNum, Msg: "unterminated flow mapping"}
		}
		if rest[0] == '}' {
			return m, rest[1:], nil
		}
		colon := strings.IndexByte(rest, ':')
		if colon < 0 {
			return nil, "", &ParseError{Line: lineNum, Msg: "missing ':' in flow mapping"}
		}
		key := unquote(strings.TrimSpace(rest[:colon]))
		rest = strings.TrimLeft(rest[colon+1:], " ")
		var val *Value
		var err error
		switch {
		case rest == "":
			return nil, "", &ParseError{Line: lineNum, Msg: "unterminated flow mapping"}
		case rest[0] == '[':
			val, rest, err = parseFlowSeq(rest, lineNum)
		case rest[0] == '{':
			val, rest, err = parseFlowMap(rest, lineNum)
		default:
			var tok string
			tok, rest, err = flowTokenUntil(rest, lineNum, ",}")
			if err == nil {
				val = scalarValue(tok)
			}
		}
		if err != nil {
			return nil, "", err
		}
		addEntry(m, key, val)
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			return nil, "", &ParseError{Line: lineNum, Msg: "unterminated flow mapping"}
		}
		switch rest[0] {
		case ',':
			rest = rest[1:]
		case '}':
			// handled on next loop iteration
		default:
			return nil, "", &ParseError{Line: lineNum, Msg: fmt.Sprintf("expected ',' or '}' in flow mapping near %q", rest)}
		}
	}
}

// flowToken consumes a scalar token inside a flow sequence, stopping at an
// unquoted ',' or ']'.
func flowToken(s string, lineNum int) (token, rest string, err error) {
	return flowTokenUntil(s, lineNum, ",]")
}

func flowTokenUntil(s string, lineNum int, stops string) (token, rest string, err error) {
	if s == "" {
		return "", "", &ParseError{Line: lineNum, Msg: "empty flow token"}
	}
	if s[0] == '\'' || s[0] == '"' {
		q := s[0]
		for i := 1; i < len(s); i++ {
			if s[i] == q {
				return s[:i+1], s[i+1:], nil
			}
		}
		return "", "", &ParseError{Line: lineNum, Msg: "unterminated quoted string"}
	}
	for i := 0; i < len(s); i++ {
		if strings.IndexByte(stops, s[i]) >= 0 {
			return strings.TrimSpace(s[:i]), s[i:], nil
		}
	}
	return strings.TrimSpace(s), "", nil
}

func isQuoted(s string) bool {
	return len(s) >= 2 &&
		((s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\''))
}

func unquote(s string) string {
	if !isQuoted(s) {
		return s
	}
	inner := s[1 : len(s)-1]
	if s[0] == '"' {
		// Go escape syntax is a superset of the escapes this parser emits
		// and of the common YAML ones, so try it first.
		if u, err := strconv.Unquote(s); err == nil {
			return u
		}
		r := strings.NewReplacer(`\"`, `"`, `\\`, `\`, `\n`, "\n", `\t`, "\t")
		return r.Replace(inner)
	}
	return strings.ReplaceAll(inner, "''", "'")
}

//
// Accessors
//

// IsNull reports whether the value is null (or a nil pointer).
func (v *Value) IsNull() bool { return v == nil || v.Kind == Null }

// Get returns the value for key in a map, or nil when absent or when v is
// not a map.
func (v *Value) Get(key string) *Value {
	if v == nil || v.Kind != Map {
		return nil
	}
	for _, e := range v.entries {
		if e.Key == key {
			return e.Value
		}
	}
	return nil
}

// Has reports whether the map contains key.
func (v *Value) Has(key string) bool { return v.Get(key) != nil }

// Keys returns map keys in document order.
func (v *Value) Keys() []string {
	if v == nil || v.Kind != Map {
		return nil
	}
	out := make([]string, len(v.entries))
	for i, e := range v.entries {
		out[i] = e.Key
	}
	return out
}

// SortedKeys returns map keys sorted lexically.
func (v *Value) SortedKeys() []string {
	keys := v.Keys()
	sort.Strings(keys)
	return keys
}

// Entries returns the ordered key/value pairs of a map.
func (v *Value) Entries() []MapEntry {
	if v == nil || v.Kind != Map {
		return nil
	}
	return v.entries
}

// Items returns the elements of a list, or a single-element slice for a
// scalar (convenient for fields that accept one value or many).
func (v *Value) Items() []*Value {
	if v == nil {
		return nil
	}
	switch v.Kind {
	case List:
		return v.list
	case Scalar:
		return []*Value{v}
	}
	return nil
}

// Len returns the number of elements in a list or entries in a map.
func (v *Value) Len() int {
	if v == nil {
		return 0
	}
	switch v.Kind {
	case List:
		return len(v.list)
	case Map:
		return len(v.entries)
	}
	return 0
}

// Str returns the scalar text, or "" for non-scalars.
func (v *Value) Str() string {
	if v == nil || v.Kind != Scalar {
		return ""
	}
	return v.scalar
}

// Int parses the scalar as an integer.
func (v *Value) Int() (int, error) {
	if v == nil || v.Kind != Scalar {
		return 0, fmt.Errorf("yamllite: not a scalar (kind %v)", v.kindOrNull())
	}
	n, err := strconv.Atoi(strings.TrimSpace(v.scalar))
	if err != nil {
		return 0, fmt.Errorf("yamllite: %q is not an integer", v.scalar)
	}
	return n, nil
}

// Float parses the scalar as a float64.
func (v *Value) Float() (float64, error) {
	if v == nil || v.Kind != Scalar {
		return 0, fmt.Errorf("yamllite: not a scalar (kind %v)", v.kindOrNull())
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(v.scalar), 64)
	if err != nil {
		return 0, fmt.Errorf("yamllite: %q is not a number", v.scalar)
	}
	return f, nil
}

// Bool parses the scalar as a boolean (true/false, yes/no, on/off).
func (v *Value) Bool() (bool, error) {
	if v == nil || v.Kind != Scalar {
		return false, fmt.Errorf("yamllite: not a scalar (kind %v)", v.kindOrNull())
	}
	switch strings.ToLower(strings.TrimSpace(v.scalar)) {
	case "true", "yes", "on":
		return true, nil
	case "false", "no", "off":
		return false, nil
	}
	return false, fmt.Errorf("yamllite: %q is not a boolean", v.scalar)
}

// StringList returns list elements (or a lone scalar) as strings.
func (v *Value) StringList() []string {
	items := v.Items()
	out := make([]string, 0, len(items))
	for _, it := range items {
		out = append(out, it.Str())
	}
	return out
}

// IntList returns list elements (or a lone scalar) as ints.
func (v *Value) IntList() ([]int, error) {
	items := v.Items()
	out := make([]int, 0, len(items))
	for _, it := range items {
		n, err := it.Int()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func (v *Value) kindOrNull() Kind {
	if v == nil {
		return Null
	}
	return v.Kind
}

//
// Encoder
//

// Marshal renders a Value tree back to YAML text.
func Marshal(v *Value) []byte {
	var b strings.Builder
	encode(&b, v, 0, false)
	return []byte(b.String())
}

func encode(b *strings.Builder, v *Value, indent int, inline bool) {
	pad := strings.Repeat("  ", indent)
	switch v.kindOrNull() {
	case Null:
		b.WriteString("null\n")
	case Scalar:
		b.WriteString(encodeScalar(v))
		b.WriteString("\n")
	case List:
		if len(v.list) == 0 {
			b.WriteString("[]\n")
			return
		}
		if !inline {
			b.WriteString("\n")
		}
		for _, item := range v.list {
			b.WriteString(pad)
			b.WriteString("- ")
			switch item.kindOrNull() {
			case Scalar, Null:
				encode(b, item, 0, true)
			default:
				encode(b, item, indent+1, true)
			}
		}
	case Map:
		if len(v.entries) == 0 {
			b.WriteString("{}\n")
			return
		}
		if !inline {
			b.WriteString("\n")
		}
		for i, e := range v.entries {
			if !(inline && i == 0) {
				b.WriteString(pad)
			}
			b.WriteString(e.Key)
			b.WriteString(":")
			switch e.Value.kindOrNull() {
			case Scalar, Null:
				b.WriteString(" ")
				encode(b, e.Value, 0, true)
			default:
				encode(b, e.Value, indent+1, false)
			}
		}
	}
}

func encodeScalar(v *Value) string {
	s := v.scalar
	if v.quoted || s == "" || strings.ContainsAny(s, ":#[]{},'\"") || s != strings.TrimSpace(s) {
		return strconv.Quote(s)
	}
	return s
}

package yamllite

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// listing1 is the paper's Listing 1 verbatim (including the duplicate
// "mesh:" keys, which this parser promotes to a list).
const listing1 = `# Example of main configuration file

subscription: mysubscription
skus:
  - Standard_HC44rs
  - Standard_HB120rs_v2
  - Standard_HB120rs_v3
rgprefix: hpcadvisortest1
appsetupurl: https://.../openfoam.sh
nnodes: [1, 2, 3, 4, 8, 16]
appname: openfoam
tags:
  version: v1
region: southcentralus
createjumpbox: true
ppr: 100
appinputs:
  mesh: "80 24 24"
  mesh: "60 16 16"
`

func TestListing1Parses(t *testing.T) {
	v, err := ParseString(listing1)
	if err != nil {
		t.Fatalf("parse Listing 1: %v", err)
	}
	if got := v.Get("subscription").Str(); got != "mysubscription" {
		t.Errorf("subscription = %q", got)
	}
	skus := v.Get("skus").StringList()
	wantSKUs := []string{"Standard_HC44rs", "Standard_HB120rs_v2", "Standard_HB120rs_v3"}
	if !reflect.DeepEqual(skus, wantSKUs) {
		t.Errorf("skus = %v, want %v", skus, wantSKUs)
	}
	nn, err := v.Get("nnodes").IntList()
	if err != nil {
		t.Fatalf("nnodes: %v", err)
	}
	if !reflect.DeepEqual(nn, []int{1, 2, 3, 4, 8, 16}) {
		t.Errorf("nnodes = %v", nn)
	}
	if got := v.Get("tags").Get("version").Str(); got != "v1" {
		t.Errorf("tags.version = %q", got)
	}
	jb, err := v.Get("createjumpbox").Bool()
	if err != nil || !jb {
		t.Errorf("createjumpbox = %v, %v", jb, err)
	}
	ppr, err := v.Get("ppr").Int()
	if err != nil || ppr != 100 {
		t.Errorf("ppr = %d, %v", ppr, err)
	}
	// Duplicate mesh keys become a two-element list.
	meshes := v.Get("appinputs").Get("mesh").StringList()
	if !reflect.DeepEqual(meshes, []string{"80 24 24", "60 16 16"}) {
		t.Errorf("appinputs.mesh = %v", meshes)
	}
}

func TestScalarTypes(t *testing.T) {
	v, err := ParseString("a: 42\nb: 3.5\nc: hello\nd: true\ne: no\nf: ~\n")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.Get("a").Int(); n != 42 {
		t.Errorf("a = %d", n)
	}
	if f, _ := v.Get("b").Float(); f != 3.5 {
		t.Errorf("b = %v", f)
	}
	if s := v.Get("c").Str(); s != "hello" {
		t.Errorf("c = %q", s)
	}
	if b, _ := v.Get("d").Bool(); !b {
		t.Errorf("d = %v", b)
	}
	if b, _ := v.Get("e").Bool(); b {
		t.Errorf("e = %v", b)
	}
	if !v.Get("f").IsNull() {
		t.Errorf("f should be null")
	}
}

func TestQuotedScalars(t *testing.T) {
	v, err := ParseString(`a: "80 24 24"
b: 'single quoted'
c: "with # not a comment"
d: plain # comment stripped
e: "esc\"aped"
`)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"a": "80 24 24",
		"b": "single quoted",
		"c": "with # not a comment",
		"d": "plain",
		"e": `esc"aped`,
	}
	for k, want := range cases {
		if got := v.Get(k).Str(); got != want {
			t.Errorf("%s = %q, want %q", k, got, want)
		}
	}
}

func TestNestedMaps(t *testing.T) {
	v, err := ParseString(`outer:
  middle:
    inner: deep
  sibling: x
top: y
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Get("outer").Get("middle").Get("inner").Str(); got != "deep" {
		t.Errorf("inner = %q", got)
	}
	if got := v.Get("outer").Get("sibling").Str(); got != "x" {
		t.Errorf("sibling = %q", got)
	}
	if got := v.Get("top").Str(); got != "y" {
		t.Errorf("top = %q", got)
	}
}

func TestSequenceAtKeyIndent(t *testing.T) {
	// YAML allows a block sequence at the same indentation as its key.
	v, err := ParseString("skus:\n- a\n- b\nother: 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Get("skus").StringList(), []string{"a", "b"}) {
		t.Errorf("skus = %v", v.Get("skus").StringList())
	}
	if n, _ := v.Get("other").Int(); n != 1 {
		t.Errorf("other = %d", n)
	}
}

func TestSequenceOfMaps(t *testing.T) {
	v, err := ParseString(`experiments:
  - name: first
    nodes: 2
  - name: second
    nodes: 4
`)
	if err != nil {
		t.Fatal(err)
	}
	items := v.Get("experiments").Items()
	if len(items) != 2 {
		t.Fatalf("len = %d", len(items))
	}
	if got := items[0].Get("name").Str(); got != "first" {
		t.Errorf("first name = %q", got)
	}
	if n, _ := items[1].Get("nodes").Int(); n != 4 {
		t.Errorf("second nodes = %d", n)
	}
}

func TestFlowSequenceNested(t *testing.T) {
	v, err := ParseString(`grid: [[1, 2], [3, 4]]
mixed: [a, "b, c", 3]
empty: []
`)
	if err != nil {
		t.Fatal(err)
	}
	grid := v.Get("grid").Items()
	if len(grid) != 2 {
		t.Fatalf("grid len = %d", len(grid))
	}
	row, err := grid[1].IntList()
	if err != nil || !reflect.DeepEqual(row, []int{3, 4}) {
		t.Errorf("grid[1] = %v (%v)", row, err)
	}
	mixed := v.Get("mixed").StringList()
	if !reflect.DeepEqual(mixed, []string{"a", "b, c", "3"}) {
		t.Errorf("mixed = %v", mixed)
	}
	if v.Get("empty").Len() != 0 {
		t.Errorf("empty len = %d", v.Get("empty").Len())
	}
}

func TestFlowMap(t *testing.T) {
	v, err := ParseString("point: {x: 1, y: 2, label: \"a b\"}\n")
	if err != nil {
		t.Fatal(err)
	}
	p := v.Get("point")
	if x, _ := p.Get("x").Int(); x != 1 {
		t.Errorf("x = %d", x)
	}
	if got := p.Get("label").Str(); got != "a b" {
		t.Errorf("label = %q", got)
	}
}

func TestCommentHandling(t *testing.T) {
	v, err := ParseString(`# full line comment
a: 1 # trailing
b: "x # y" # quoted hash preserved
url: https://host/path#fragment
`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.Get("a").Int(); n != 1 {
		t.Errorf("a = %d", n)
	}
	if got := v.Get("b").Str(); got != "x # y" {
		t.Errorf("b = %q", got)
	}
	// '#' not preceded by a space is not a comment.
	if got := v.Get("url").Str(); got != "https://host/path#fragment" {
		t.Errorf("url = %q", got)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"tab indent", "a:\n\tb: 1\n"},
		{"bare text", "just some words\n"},
		{"unterminated flow", "a: [1, 2\n"},
		{"unterminated quote in flow", `a: ["x]` + "\n"},
		{"garbage after flow", "a: [1] extra\n"},
		{"bad indent jump", "a: 1\n   b: 2\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.doc); err == nil {
				t.Fatalf("expected error for %q", tc.doc)
			}
		})
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := ParseString("a: 1\nb: [1,\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Errorf("line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Errorf("message %q lacks line number", pe.Error())
	}
}

func TestEmptyDocument(t *testing.T) {
	for _, doc := range []string{"", "\n\n", "# only comments\n", "---\n"} {
		v, err := ParseString(doc)
		if err != nil {
			t.Fatalf("doc %q: %v", doc, err)
		}
		if !v.IsNull() {
			t.Errorf("doc %q: not null", doc)
		}
	}
}

func TestAccessorsOnWrongKinds(t *testing.T) {
	v, _ := ParseString("m:\n  k: 1\nl: [1]\n")
	if v.Get("m").Get("missing") != nil {
		t.Error("missing key should be nil")
	}
	if v.Get("l").Get("k") != nil {
		t.Error("Get on list should be nil")
	}
	if _, err := v.Get("m").Int(); err == nil {
		t.Error("Int on map should error")
	}
	if _, err := v.Get("l").Bool(); err == nil {
		t.Error("Bool on list should error")
	}
	var nilV *Value
	if !nilV.IsNull() || nilV.Str() != "" || nilV.Len() != 0 {
		t.Error("nil Value accessors misbehave")
	}
	if nilV.Items() != nil || nilV.Keys() != nil {
		t.Error("nil Value slices should be nil")
	}
}

func TestDuplicateKeysPromoteBeyondTwo(t *testing.T) {
	v, err := ParseString("k: a\nk: b\nk: c\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Get("k").StringList(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("k = %v", got)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	docs := []string{
		listing1,
		"a: 1\nb:\n  c: [1, 2]\n  d: text\n",
		"list:\n  - x: 1\n    y: 2\n  - x: 3\n    y: 4\n",
	}
	for _, doc := range docs {
		v1, err := ParseString(doc)
		if err != nil {
			t.Fatalf("first parse: %v", err)
		}
		out := Marshal(v1)
		v2, err := Parse(out)
		if err != nil {
			t.Fatalf("reparse of %q: %v", out, err)
		}
		if !valuesEqual(v1, v2) {
			t.Errorf("round trip mismatch:\noriginal:\n%s\nencoded:\n%s", doc, out)
		}
	}
}

// valuesEqual compares trees structurally, treating duplicate-promoted lists
// and plain lists as equal.
func valuesEqual(a, b *Value) bool {
	if a.kindOrNull() != b.kindOrNull() {
		return false
	}
	switch a.kindOrNull() {
	case Null:
		return true
	case Scalar:
		return a.scalar == b.scalar
	case List:
		if len(a.list) != len(b.list) {
			return false
		}
		for i := range a.list {
			if !valuesEqual(a.list[i], b.list[i]) {
				return false
			}
		}
		return true
	case Map:
		if len(a.entries) != len(b.entries) {
			return false
		}
		for i := range a.entries {
			if a.entries[i].Key != b.entries[i].Key {
				return false
			}
			if !valuesEqual(a.entries[i].Value, b.entries[i].Value) {
				return false
			}
		}
		return true
	}
	return false
}

// Property: scalar maps built programmatically survive Marshal/Parse.
func TestPropertyMarshalParseRoundTrip(t *testing.T) {
	f := func(keys []string, vals []string) bool {
		m := &Value{Kind: Map}
		seen := map[string]bool{}
		for i, k := range keys {
			k = sanitizeKey(k)
			if k == "" || seen[k] {
				continue
			}
			seen[k] = true
			val := ""
			if i < len(vals) {
				val = vals[i]
			}
			m.entries = append(m.entries, MapEntry{Key: k, Value: &Value{Kind: Scalar, scalar: val, quoted: true}})
		}
		out := Marshal(m)
		v2, err := Parse(out)
		if err != nil {
			return false
		}
		return valuesEqual(m, v2)
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func sanitizeKey(k string) string {
	var b strings.Builder
	for _, r := range k {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') || r == '_' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func TestIntListErrors(t *testing.T) {
	v, _ := ParseString("l: [1, two, 3]\n")
	if _, err := v.Get("l").IntList(); err == nil {
		t.Error("IntList should fail on non-integer element")
	}
}

func TestKeysAndEntriesOrder(t *testing.T) {
	v, _ := ParseString("z: 1\na: 2\nm: 3\n")
	if got := v.Keys(); !reflect.DeepEqual(got, []string{"z", "a", "m"}) {
		t.Errorf("Keys = %v (document order expected)", got)
	}
	if got := v.SortedKeys(); !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Errorf("SortedKeys = %v", got)
	}
	if len(v.Entries()) != 3 {
		t.Errorf("Entries len = %d", len(v.Entries()))
	}
}

func BenchmarkParseListing1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(listing1); err != nil {
			b.Fatal(err)
		}
	}
}

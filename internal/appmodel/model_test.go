package appmodel

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"hpcadvisor/internal/catalog"
)

var cat = catalog.Default()

func mustParse(t *testing.T, app string, input map[string]string) Workload {
	t.Helper()
	a, err := NewRegistry().Get(app)
	if err != nil {
		t.Fatal(err)
	}
	w, err := a.Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func mustSim(t *testing.T, w Workload, sku catalog.SKU, nodes, ppn int) Profile {
	t.Helper()
	p, err := Simulate(w, sku, nodes, ppn)
	if err != nil {
		t.Fatalf("Simulate(%s, %s, n=%d): %v", w.AppName, sku.Name, nodes, err)
	}
	return p
}

func TestRegistryHasPaperApps(t *testing.T) {
	r := NewRegistry()
	// The paper reports testing WRF, OpenFOAM, GROMACS, LAMMPS, and NAMD.
	for _, name := range []string{"wrf", "openfoam", "gromacs", "lammps", "namd", "matmul"} {
		a, err := r.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("Get(%q).Name() = %q", name, a.Name())
		}
		if a.Description() == "" {
			t.Errorf("%s has no description", name)
		}
		if len(a.DefaultInput()) == 0 {
			t.Errorf("%s has no default input", name)
		}
		// Default input must parse.
		if _, err := a.Parse(nil); err != nil {
			t.Errorf("%s default parse: %v", name, err)
		}
	}
	if _, err := r.Get("fortnite"); err == nil {
		t.Error("unknown app should fail")
	}
	if got := len(r.Names()); got != 6 {
		t.Errorf("Names() has %d entries, want 6", got)
	}
}

func TestLAMMPSBoxFactor30Is864MAtoms(t *testing.T) {
	// Paper: "we multiply the box dimensions by 30 to obtain 800 million
	// atoms" (in.lj base is 32,000 atoms; 30^3 * 32000 = 864M, the figures
	// round to 860M).
	w := mustParse(t, "lammps", map[string]string{"BOXFACTOR": "30"})
	if w.Units != 864e6 {
		t.Errorf("atoms = %g, want 864e6", w.Units)
	}
	if w.InputDesc != "atoms=864M" {
		t.Errorf("InputDesc = %q", w.InputDesc)
	}
}

func TestOpenFOAMListing3MeshIs8MCells(t *testing.T) {
	// Paper: BLOCKMESH DIMENSIONS "40 16 16" yields the 8M-cell motorBike.
	w := mustParse(t, "openfoam", map[string]string{"BLOCKMESH_DIMENSIONS": "40 16 16"})
	if w.Units < 7.5e6 || w.Units > 8.5e6 {
		t.Errorf("cells = %g, want ~8e6", w.Units)
	}
	// Listing 1 spells the key "mesh"; both must work.
	w2 := mustParse(t, "openfoam", map[string]string{"mesh": "40 16 16"})
	if w2.Units != w.Units {
		t.Errorf("mesh key parse differs: %g vs %g", w2.Units, w.Units)
	}
}

func TestParseErrors(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		app   string
		input map[string]string
	}{
		{"lammps", map[string]string{"BOXFACTOR": "zero"}},
		{"lammps", map[string]string{"BOXFACTOR": "-3"}},
		{"openfoam", map[string]string{"mesh": "40 16"}},
		{"openfoam", map[string]string{"mesh": "a b c"}},
		{"wrf", map[string]string{"RESOLUTION": "0"}},
		{"gromacs", map[string]string{"ATOMS": "NaN..."}},
		{"namd", map[string]string{"TIMESTEPS": "-1"}},
		{"matmul", map[string]string{"MATRIXSIZE": "big"}},
	}
	for _, c := range cases {
		a, _ := r.Get(c.app)
		if _, err := a.Parse(c.input); err == nil {
			t.Errorf("%s.Parse(%v) should fail", c.app, c.input)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	w := mustParse(t, "lammps", nil)
	sku := cat.MustLookup("hb120rs_v3")
	if _, err := Simulate(w, sku, 0, 120); err == nil {
		t.Error("nodes=0 should fail")
	}
	if _, err := Simulate(w, sku, 1, 0); err == nil {
		t.Error("ppn=0 should fail")
	}
	if _, err := Simulate(w, sku, 1, 121); err == nil {
		t.Error("ppn above core count should fail")
	}
	bad := w
	bad.Units = 0
	if _, err := Simulate(bad, sku, 1, 120); err == nil {
		t.Error("zero-size workload should fail")
	}
}

func TestOutOfMemoryFails(t *testing.T) {
	// A 100x box factor is 3.2e9 atoms * 200 B = 640 GB per node at n=1:
	// more than any single SKU holds.
	w := mustParse(t, "lammps", map[string]string{"BOXFACTOR": "100"})
	sku := cat.MustLookup("hb120rs_v3")
	_, err := Simulate(w, sku, 1, 120)
	if err == nil {
		t.Fatal("expected OOM failure")
	}
	if !strings.Contains(err.Error(), "memory") {
		t.Errorf("error %q should mention memory", err)
	}
	// Spreading over 32 nodes fits.
	if _, err := Simulate(w, sku, 32, 120); err != nil {
		t.Errorf("32-node run should fit: %v", err)
	}
}

func TestExecTimeDecreasesWithNodes(t *testing.T) {
	// Paper Figure 2 shape: execution time is monotone decreasing in node
	// count for every SKU over the paper's range.
	w := mustParse(t, "lammps", map[string]string{"BOXFACTOR": "30"})
	for _, skuName := range []string{"hc44rs", "hb120rs_v2", "hb120rs_v3"} {
		sku := cat.MustLookup(skuName)
		prev := math.Inf(1)
		for _, n := range []int{1, 2, 3, 4, 8, 16} {
			p := mustSim(t, w, sku, n, sku.PhysicalCores)
			if p.ExecSeconds >= prev {
				t.Errorf("%s: T(%d)=%.1f not below previous %.1f", skuName, n, p.ExecSeconds, prev)
			}
			prev = p.ExecSeconds
		}
	}
}

func TestFigure2MagnitudeAndOrdering(t *testing.T) {
	// Shape anchors from the paper: hb120rs_v3 is fastest at equal node
	// count; times run from tens of seconds (16 nodes HB) to thousands
	// (small counts on hc44rs).
	w := mustParse(t, "lammps", map[string]string{"BOXFACTOR": "30"})
	v3 := cat.MustLookup("hb120rs_v3")
	v2 := cat.MustLookup("hb120rs_v2")
	hc := cat.MustLookup("hc44rs")
	for _, n := range []int{2, 4, 8, 16} {
		tv3 := mustSim(t, w, v3, n, 120).ExecSeconds
		tv2 := mustSim(t, w, v2, n, 120).ExecSeconds
		thc := mustSim(t, w, hc, n, 44).ExecSeconds
		if !(tv3 < tv2 && tv2 < thc) {
			t.Errorf("n=%d ordering broken: v3=%.0f v2=%.0f hc=%.0f", n, tv3, tv2, thc)
		}
	}
	t16 := mustSim(t, w, v3, 16, 120).ExecSeconds
	if t16 < 25 || t16 > 60 {
		t.Errorf("v3 @16 nodes = %.1f s, want paper magnitude ~36 s", t16)
	}
	t1hc := mustSim(t, w, hc, 1, 44).ExecSeconds
	if t1hc < 1500 || t1hc > 4000 {
		t.Errorf("hc44rs @1 node = %.0f s, want thousands of seconds", t1hc)
	}
}

func TestListing4AnchorTimes(t *testing.T) {
	// Paper Listing 4 (LAMMPS advice, hb120rs_v3): 36 s @16, 69 s @8,
	// 132 s @4, 173 s @3. The model must land within 15% of each anchor.
	w := mustParse(t, "lammps", map[string]string{"BOXFACTOR": "30"})
	v3 := cat.MustLookup("hb120rs_v3")
	anchors := map[int]float64{16: 36, 8: 69, 4: 132, 3: 173}
	for n, want := range anchors {
		got := mustSim(t, w, v3, n, 120).ExecSeconds
		if rel := math.Abs(got-want) / want; rel > 0.15 {
			t.Errorf("T(%d) = %.1f s, paper %.0f s (off by %.0f%%)", n, got, want, rel*100)
		}
	}
}

func TestFigure5SuperLinearEfficiency(t *testing.T) {
	// Paper Figure 5 shows efficiency above 1 (super-linear speedup) for
	// the 860M-atom LAMMPS workload, peaking around 1.6-1.7.
	w := mustParse(t, "lammps", map[string]string{"BOXFACTOR": "30"})
	v3 := cat.MustLookup("hb120rs_v3")
	t1 := mustSim(t, w, v3, 1, 120).ExecSeconds
	peak := 0.0
	for _, n := range []int{2, 3, 4, 8, 16} {
		tn := mustSim(t, w, v3, n, 120).ExecSeconds
		eff := Efficiency(t1, tn, n)
		if eff > peak {
			peak = eff
		}
	}
	if peak <= 1.0 {
		t.Fatalf("no super-linear efficiency observed (peak %.2f)", peak)
	}
	if peak < 1.3 || peak > 2.0 {
		t.Errorf("peak efficiency %.2f outside plausible paper range [1.3, 2.0]", peak)
	}
	// Efficiency declines again at the largest scale.
	t16 := mustSim(t, w, v3, 16, 120).ExecSeconds
	if Efficiency(t1, t16, 16) >= peak {
		t.Error("efficiency should decline by 16 nodes")
	}
}

func TestFigure4SpeedupMagnitude(t *testing.T) {
	// Paper Figure 4 tops out around 26x at 16 nodes.
	w := mustParse(t, "lammps", map[string]string{"BOXFACTOR": "30"})
	v3 := cat.MustLookup("hb120rs_v3")
	t1 := mustSim(t, w, v3, 1, 120).ExecSeconds
	t16 := mustSim(t, w, v3, 16, 120).ExecSeconds
	s := Speedup(t1, t16)
	if s < 18 || s > 30 {
		t.Errorf("speedup @16 = %.1f, want paper magnitude ~26", s)
	}
}

func TestOpenFOAMScalingFlattens(t *testing.T) {
	// Listing 3 shape: the 8M-cell OpenFOAM case is communication bound;
	// T(3)/T(16) is below ~2.2 even though node count grows 5.3x.
	w := mustParse(t, "openfoam", map[string]string{"mesh": "40 16 16"})
	v3 := cat.MustLookup("hb120rs_v3")
	t3 := mustSim(t, w, v3, 3, 120).ExecSeconds
	t16 := mustSim(t, w, v3, 16, 120).ExecSeconds
	ratio := t3 / t16
	if ratio < 1.2 || ratio > 2.6 {
		t.Errorf("T(3)/T(16) = %.2f, want flattened scaling in [1.2, 2.6]", ratio)
	}
	if t16 < 20 || t16 > 60 {
		t.Errorf("OpenFOAM T(16) = %.1f s, paper magnitude ~34 s", t16)
	}
}

func TestCommunicationGrowsWithNodes(t *testing.T) {
	w := mustParse(t, "openfoam", nil)
	v3 := cat.MustLookup("hb120rs_v3")
	p2 := mustSim(t, w, v3, 2, 120)
	p16 := mustSim(t, w, v3, 16, 120)
	if p16.CommSeconds <= p2.CommSeconds {
		t.Errorf("comm @16 (%.2f) should exceed comm @2 (%.2f)", p16.CommSeconds, p2.CommSeconds)
	}
	if p16.NetUtil <= p2.NetUtil {
		t.Errorf("net util @16 (%.2f) should exceed @2 (%.2f)", p16.NetUtil, p2.NetUtil)
	}
}

func TestMemoryPressureDropsWithScale(t *testing.T) {
	w := mustParse(t, "lammps", map[string]string{"BOXFACTOR": "30"})
	v3 := cat.MustLookup("hb120rs_v3")
	p1 := mustSim(t, w, v3, 1, 120)
	p16 := mustSim(t, w, v3, 16, 120)
	if p1.MemFactor <= p16.MemFactor {
		t.Errorf("mem factor should fall with scale: %f vs %f", p1.MemFactor, p16.MemFactor)
	}
	if p1.MemFactor < 1.5 {
		t.Errorf("single-node 864M-atom run should be memory pressured, factor %.2f", p1.MemFactor)
	}
	if p16.MemFactor > 1.1 {
		t.Errorf("16-node run should be pressure free, factor %.2f", p16.MemFactor)
	}
	if p1.MemBWUtil <= p16.MemBWUtil {
		t.Error("memory-bandwidth utilization should fall with scale")
	}
}

func TestFewerProcessesPerNodeReducesPressure(t *testing.T) {
	// Halving ppn halves compute throughput but doubles per-rank bandwidth;
	// the model must reflect the paper's ppr knob qualitatively.
	w := mustParse(t, "lammps", map[string]string{"BOXFACTOR": "30"})
	v3 := cat.MustLookup("hb120rs_v3")
	full := mustSim(t, w, v3, 2, 120)
	half := mustSim(t, w, v3, 2, 60)
	if half.MemFactor >= full.MemFactor {
		t.Errorf("half ppn mem factor %.3f should be below full %.3f", half.MemFactor, full.MemFactor)
	}
	if half.ExecSeconds <= full.ExecSeconds {
		t.Error("with pressure mostly relieved, halving ranks should still cost time overall")
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	w := mustParse(t, "gromacs", nil)
	v3 := cat.MustLookup("hb120rs_v3")
	a := mustSim(t, w, v3, 4, 120)
	b := mustSim(t, w, v3, 4, 120)
	if a.ExecSeconds != b.ExecSeconds {
		t.Error("simulation must be deterministic")
	}
	base := a.SerialSeconds + a.CompSeconds + a.CommSeconds
	if math.Abs(a.ExecSeconds-base)/base > jitterAmp+1e-9 {
		t.Errorf("jitter exceeds amplitude: exec %.3f vs base %.3f", a.ExecSeconds, base)
	}
}

func TestProfileDecomposition(t *testing.T) {
	w := mustParse(t, "wrf", nil)
	v3 := cat.MustLookup("hb120rs_v3")
	p := mustSim(t, w, v3, 4, 120)
	base := p.SerialSeconds + p.CompSeconds + p.CommSeconds
	if base <= 0 {
		t.Fatal("empty decomposition")
	}
	if math.Abs(p.ExecSeconds-base)/base > 0.02 {
		t.Errorf("decomposition %f far from exec %f", base, p.ExecSeconds)
	}
	for name, u := range map[string]float64{"cpu": p.CPUUtil, "membw": p.MemBWUtil, "net": p.NetUtil} {
		if u < 0 || u > 1 {
			t.Errorf("%s utilization %f outside [0,1]", name, u)
		}
	}
}

func TestMetricsEmitted(t *testing.T) {
	r := NewRegistry()
	v3 := cat.MustLookup("hb120rs_v3")
	for _, name := range r.Names() {
		a, _ := r.Get(name)
		w, err := a.Parse(nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p, err := Simulate(w, v3, 2, 64)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m := a.Metrics(w, p)
		if _, ok := m["APPEXECTIME"]; !ok {
			t.Errorf("%s metrics missing APPEXECTIME (paper Listing 2 contract)", name)
		}
		for k, v := range m {
			if k == "" || v == "" {
				t.Errorf("%s has empty metric %q=%q", name, k, v)
			}
			if strings.ContainsAny(k, " =\n") {
				t.Errorf("%s metric key %q not shell-safe", name, k)
			}
		}
	}
}

func TestFormatUnits(t *testing.T) {
	cases := map[float64]string{
		864e6:   "864M",
		8e6:     "8M",
		7.99e6:  "8M",
		1.066e6: "1.1M",
		32000:   "32K",
		512:     "512",
		3.2e9:   "3.2B",
	}
	for in, want := range cases {
		if got := FormatUnits(in); got != want {
			t.Errorf("FormatUnits(%g) = %q, want %q", in, got, want)
		}
	}
}

// Property: more nodes never increases compute time, and exec time is
// always positive and finite.
func TestPropertyScalingMonotonicity(t *testing.T) {
	w := mustParse(t, "lammps", map[string]string{"BOXFACTOR": "12"})
	v3 := cat.MustLookup("hb120rs_v3")
	f := func(nRaw uint8) bool {
		n := int(nRaw%63) + 1
		p1, err := Simulate(w, v3, n, 120)
		if err != nil {
			return false
		}
		p2, err := Simulate(w, v3, n+1, 120)
		if err != nil {
			return false
		}
		ok := p1.ExecSeconds > 0 && !math.IsInf(p1.ExecSeconds, 0) && !math.IsNaN(p1.ExecSeconds)
		return ok && p2.CompSeconds <= p1.CompSeconds*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: doubling the LAMMPS box factor multiplies atoms by 8.
func TestPropertyLAMMPSCubicScaling(t *testing.T) {
	r := NewRegistry()
	a, _ := r.Get("lammps")
	f := func(bfRaw uint8) bool {
		bf := float64(bfRaw%20) + 1
		w1, err1 := a.Parse(map[string]string{"BOXFACTOR": strconv.FormatFloat(bf, 'f', -1, 64)})
		w2, err2 := a.Parse(map[string]string{"BOXFACTOR": strconv.FormatFloat(2*bf, 'f', -1, 64)})
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(w2.Units/w1.Units-8) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

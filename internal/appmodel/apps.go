package appmodel

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// App models one application: it parses user-facing input parameters (the
// "appinputs" of the paper's Listing 1) into a Workload and reports
// application metrics after a run (the HPCADVISORVAR values of Listing 2).
type App interface {
	// Name is the registry key, e.g. "lammps".
	Name() string
	// Description is a one-line human description.
	Description() string
	// DefaultInput returns the input parameters assumed when the user
	// provides none.
	DefaultInput() map[string]string
	// Parse validates input parameters and derives the workload.
	Parse(input map[string]string) (Workload, error)
	// Metrics returns the application-reported variables for a completed
	// run, emitted on stdout as "HPCADVISORVAR key=value" lines.
	Metrics(w Workload, p Profile) map[string]string
}

// Registry resolves application names to models.
type Registry struct {
	apps map[string]App
}

// ErrUnknownApp is wrapped by Registry.Get for unknown names.
var ErrUnknownApp = fmt.Errorf("appmodel: unknown application")

// NewRegistry returns a registry with the built-in applications: lammps,
// openfoam, wrf, gromacs, namd, and matmul.
func NewRegistry() *Registry {
	r := &Registry{apps: make(map[string]App)}
	for _, a := range []App{lammpsApp{}, openfoamApp{}, wrfApp{}, gromacsApp{}, namdApp{}, matmulApp{}} {
		r.Register(a)
	}
	return r
}

// Register adds (or replaces) an application model.
func (r *Registry) Register(a App) { r.apps[strings.ToLower(a.Name())] = a }

// Get resolves an application by name, case-insensitively.
func (r *Registry) Get(name string) (App, error) {
	if a, ok := r.apps[strings.ToLower(name)]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownApp, name)
}

// Names lists the registered applications, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.apps))
	for k := range r.apps {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FormatUnits renders a unit count compactly ("864M", "8.0M", "32K"),
// matching the style of the paper's plot subtitles ("atoms=860M").
func FormatUnits(u float64) string {
	switch {
	case u >= 1e9:
		return trimZero(u/1e9) + "B"
	case u >= 1e6:
		return trimZero(u/1e6) + "M"
	case u >= 1e3:
		return trimZero(u/1e3) + "K"
	}
	return strconv.FormatFloat(u, 'f', -1, 64)
}

func trimZero(v float64) string {
	if v >= 100 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	s := strconv.FormatFloat(v, 'f', 1, 64)
	return strings.TrimSuffix(s, ".0")
}

func inputOr(input map[string]string, def map[string]string, keys ...string) string {
	for _, k := range keys {
		if v, ok := lookupFold(input, k); ok {
			return v
		}
	}
	for _, k := range keys {
		if v, ok := lookupFold(def, k); ok {
			return v
		}
	}
	return ""
}

func lookupFold(m map[string]string, key string) (string, bool) {
	if v, ok := m[key]; ok {
		return v, true
	}
	for k, v := range m {
		if strings.EqualFold(k, key) {
			return v, true
		}
	}
	return "", false
}

func parsePositiveFloat(name, s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("appmodel: %s must be a positive number, got %q", name, s)
	}
	return v, nil
}

//
// LAMMPS — Lennard-Jones benchmark ("atomic fluid with Lennard-Jones
// potential"). The paper's Listing 2 scales the in.lj box by BOXFACTOR in
// each dimension; the stock input has 32,000 atoms and 100 steps, so
// BOXFACTOR=30 yields 864M atoms (the paper quotes "800 million atoms" and
// the figures label "atoms=860M").
//

type lammpsApp struct{}

func (lammpsApp) Name() string        { return "lammps" }
func (lammpsApp) Description() string { return "LAMMPS Lennard-Jones atomic fluid benchmark" }
func (lammpsApp) DefaultInput() map[string]string {
	return map[string]string{"BOXFACTOR": "30"}
}

const (
	lammpsBaseAtoms = 32000
	lammpsSteps     = 100
)

func (a lammpsApp) Parse(input map[string]string) (Workload, error) {
	bf, err := parsePositiveFloat("BOXFACTOR", inputOr(input, a.DefaultInput(), "BOXFACTOR", "boxfactor"))
	if err != nil {
		return Workload{}, err
	}
	atoms := lammpsBaseAtoms * bf * bf * bf
	return Workload{
		AppName:   "lammps",
		Units:     atoms,
		Steps:     lammpsSteps,
		InputDesc: "atoms=" + FormatUnits(atoms),
		Params: ModelParams{
			RatePerCore:   1.319e6, // atom-steps/s/core, Skylake reference
			BytesPerUnit:  200,     // positions+velocities+forces+neighbors
			MemBeta:       0.85,
			MemExp:        8,
			SyncSigma:     3.2e-3,
			HaloBytes:     150,
			SerialSeconds: 2,
		},
	}, nil
}

func (lammpsApp) Metrics(w Workload, p Profile) map[string]string {
	return map[string]string{
		"APPEXECTIME": strconv.FormatFloat(p.ExecSeconds, 'f', 0, 64),
		"LAMMPSATOMS": strconv.FormatFloat(w.Units, 'f', 0, 64),
		"LAMMPSSTEPS": strconv.Itoa(lammpsSteps),
	}
}

//
// OpenFOAM — motorBike tutorial driven by blockMesh background dimensions.
// The paper's Listing 3 uses BLOCKMESH dimensions "40 16 16" for the 8M-cell
// motorBike case; cells scale with the product of the dimensions after
// snappyHexMesh refinement.
//

type openfoamApp struct{}

func (openfoamApp) Name() string        { return "openfoam" }
func (openfoamApp) Description() string { return "OpenFOAM motorBike incompressible CFD (simpleFoam)" }
func (openfoamApp) DefaultInput() map[string]string {
	return map[string]string{"BLOCKMESH_DIMENSIONS": "40 16 16"}
}

const (
	openfoamCellsPerBlock = 780 // snappyHexMesh refinement multiplier
	openfoamIterations    = 500
)

func (a openfoamApp) Parse(input map[string]string) (Workload, error) {
	dims := inputOr(input, a.DefaultInput(), "BLOCKMESH_DIMENSIONS", "blockmesh_dimensions", "mesh")
	fields := strings.Fields(dims)
	if len(fields) != 3 {
		return Workload{}, fmt.Errorf("appmodel: BLOCKMESH_DIMENSIONS needs three numbers (\"x y z\"), got %q", dims)
	}
	prod := 1.0
	for _, f := range fields {
		v, err := parsePositiveFloat("BLOCKMESH_DIMENSIONS", f)
		if err != nil {
			return Workload{}, err
		}
		prod *= v
	}
	cells := openfoamCellsPerBlock * prod
	return Workload{
		AppName:   "openfoam",
		Units:     cells,
		Steps:     openfoamIterations,
		InputDesc: "cells=" + FormatUnits(cells),
		Params: ModelParams{
			RatePerCore:   2.19e5, // cell-iterations/s/core
			BytesPerUnit:  1000,
			MemBeta:       0.25,
			MemExp:        4,
			SyncSigma:     3.5e-3, // pressure-solve collectives per iteration
			HaloBytes:     800,
			SerialSeconds: 3,
		},
	}, nil
}

func (openfoamApp) Metrics(w Workload, p Profile) map[string]string {
	return map[string]string{
		"APPEXECTIME": strconv.FormatFloat(p.ExecSeconds, 'f', 0, 64),
		"FOAMCELLS":   strconv.FormatFloat(w.Units, 'f', 0, 64),
		"FOAMITERS":   strconv.Itoa(openfoamIterations),
	}
}

//
// WRF — numerical weather prediction on a CONUS-like domain parameterized by
// horizontal resolution in kilometers. Finer resolution grows the grid
// quadratically and shrinks the time step.
//

type wrfApp struct{}

func (wrfApp) Name() string        { return "wrf" }
func (wrfApp) Description() string { return "WRF regional weather forecast (CONUS-like domain)" }
func (wrfApp) DefaultInput() map[string]string {
	return map[string]string{"RESOLUTION": "2.5"}
}

func (a wrfApp) Parse(input map[string]string) (Workload, error) {
	res, err := parsePositiveFloat("RESOLUTION", inputOr(input, a.DefaultInput(), "RESOLUTION", "resolution"))
	if err != nil {
		return Workload{}, err
	}
	points := 5.41e8 / (res * res) // ~86.6M points at 2.5 km
	steps := 240 * (2.5 / res)     // CFL: halving dx halves dt
	return Workload{
		AppName:   "wrf",
		Units:     points,
		Steps:     steps,
		InputDesc: fmt.Sprintf("res=%gkm", res),
		Params: ModelParams{
			RatePerCore:   1.5e5,
			BytesPerUnit:  2000,
			MemBeta:       0.6,
			MemExp:        4,
			SyncSigma:     4.0e-3,
			HaloBytes:     2500,
			SerialSeconds: 10,
		},
	}, nil
}

func (wrfApp) Metrics(w Workload, p Profile) map[string]string {
	return map[string]string{
		"APPEXECTIME":   strconv.FormatFloat(p.ExecSeconds, 'f', 0, 64),
		"WRFGRIDPOINTS": strconv.FormatFloat(w.Units, 'f', 0, 64),
		"WRFTIMESTEPS":  strconv.FormatFloat(w.Steps, 'f', 0, 64),
	}
}

//
// GROMACS — molecular dynamics parameterized by atom count and MD steps.
//

type gromacsApp struct{}

func (gromacsApp) Name() string        { return "gromacs" }
func (gromacsApp) Description() string { return "GROMACS molecular dynamics (PME electrostatics)" }
func (gromacsApp) DefaultInput() map[string]string {
	return map[string]string{"ATOMS": "1400000", "MDSTEPS": "10000"}
}

func (a gromacsApp) Parse(input map[string]string) (Workload, error) {
	atoms, err := parsePositiveFloat("ATOMS", inputOr(input, a.DefaultInput(), "ATOMS", "atoms"))
	if err != nil {
		return Workload{}, err
	}
	steps, err := parsePositiveFloat("MDSTEPS", inputOr(input, a.DefaultInput(), "MDSTEPS", "mdsteps"))
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		AppName:   "gromacs",
		Units:     atoms,
		Steps:     steps,
		InputDesc: "atoms=" + FormatUnits(atoms),
		Params: ModelParams{
			RatePerCore:   8.0e5,
			BytesPerUnit:  400,
			MemBeta:       0.4,
			MemExp:        4,
			SyncSigma:     5.0e-5, // sub-millisecond MD steps
			HaloBytes:     120,
			SerialSeconds: 3,
		},
	}, nil
}

func (gromacsApp) Metrics(w Workload, p Profile) map[string]string {
	// ns/day at a 2 fs time step, the metric GROMACS users watch.
	simNS := w.Steps * 2e-6
	nsPerDay := 0.0
	if p.ExecSeconds > 0 {
		nsPerDay = simNS * 86400 / p.ExecSeconds
	}
	return map[string]string{
		"APPEXECTIME": strconv.FormatFloat(p.ExecSeconds, 'f', 0, 64),
		"GMXATOMS":    strconv.FormatFloat(w.Units, 'f', 0, 64),
		"GMXNSPERDAY": strconv.FormatFloat(nsPerDay, 'f', 2, 64),
	}
}

//
// NAMD — molecular dynamics; the default is the STMV benchmark system.
//

type namdApp struct{}

func (namdApp) Name() string        { return "namd" }
func (namdApp) Description() string { return "NAMD molecular dynamics (STMV benchmark)" }
func (namdApp) DefaultInput() map[string]string {
	return map[string]string{"ATOMS": "1066628", "TIMESTEPS": "2000"}
}

func (a namdApp) Parse(input map[string]string) (Workload, error) {
	atoms, err := parsePositiveFloat("ATOMS", inputOr(input, a.DefaultInput(), "ATOMS", "atoms"))
	if err != nil {
		return Workload{}, err
	}
	steps, err := parsePositiveFloat("TIMESTEPS", inputOr(input, a.DefaultInput(), "TIMESTEPS", "timesteps"))
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		AppName:   "namd",
		Units:     atoms,
		Steps:     steps,
		InputDesc: "atoms=" + FormatUnits(atoms),
		Params: ModelParams{
			RatePerCore:   1.0e5,
			BytesPerUnit:  600,
			MemBeta:       0.5,
			MemExp:        4,
			SyncSigma:     5.0e-4,
			HaloBytes:     100,
			SerialSeconds: 5,
		},
	}, nil
}

func (namdApp) Metrics(w Workload, p Profile) map[string]string {
	return map[string]string{
		"APPEXECTIME": strconv.FormatFloat(p.ExecSeconds, 'f', 0, 64),
		"NAMDATOMS":   strconv.FormatFloat(w.Units, 'f', 0, 64),
	}
}

//
// matmul — dense matrix multiplication, the "matrix size" example the paper
// mentions for application inputs. Useful as a fast quickstart app; it
// scales poorly across Ethernet nodes, illustrating interconnect choice.
//

type matmulApp struct{}

func (matmulApp) Name() string        { return "matmul" }
func (matmulApp) Description() string { return "dense matrix multiplication (C = A x B)" }
func (matmulApp) DefaultInput() map[string]string {
	return map[string]string{"MATRIXSIZE": "4096"}
}

func (a matmulApp) Parse(input map[string]string) (Workload, error) {
	n, err := parsePositiveFloat("MATRIXSIZE", inputOr(input, a.DefaultInput(), "MATRIXSIZE", "matrixsize", "size"))
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		AppName:   "matmul",
		Units:     n * n, // elements
		Steps:     n,     // each element accumulates n multiply-adds
		InputDesc: fmt.Sprintf("n=%.0f", n),
		Params: ModelParams{
			RatePerCore:   2.0e8, // element-updates/s/core
			BytesPerUnit:  24,    // three matrices of float64
			MemBeta:       0.9,
			MemExp:        3,
			SyncSigma:     1.0e-5,
			HaloBytes:     400,
			SerialSeconds: 0.5,
		},
	}, nil
}

func (matmulApp) Metrics(w Workload, p Profile) map[string]string {
	n := float64(int(w.Steps))
	gflops := 0.0
	if p.ExecSeconds > 0 {
		gflops = 2 * n * n * n / p.ExecSeconds / 1e9
	}
	return map[string]string{
		"APPEXECTIME":  strconv.FormatFloat(p.ExecSeconds, 'f', 1, 64),
		"MATRIXSIZE":   strconv.FormatFloat(n, 'f', 0, 64),
		"MATMULGFLOPS": strconv.FormatFloat(gflops, 'f', 1, 64),
	}
}

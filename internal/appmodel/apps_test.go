package appmodel

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"hpcadvisor/internal/catalog"
)

// Shape tests for the applications beyond the calibrated LAMMPS/OpenFOAM
// pair: each must behave the way its real counterpart is known to.

func TestWRFResolutionScaling(t *testing.T) {
	// Halving the grid spacing quadruples the points and doubles the steps:
	// ~8x the work.
	coarse := mustParse(t, "wrf", map[string]string{"RESOLUTION": "5"})
	fine := mustParse(t, "wrf", map[string]string{"RESOLUTION": "2.5"})
	if r := fine.Units / coarse.Units; math.Abs(r-4) > 1e-9 {
		t.Errorf("points ratio = %v, want 4", r)
	}
	if r := fine.Steps / coarse.Steps; math.Abs(r-2) > 1e-9 {
		t.Errorf("steps ratio = %v, want 2", r)
	}
	v3 := cat.MustLookup("hb120rs_v3")
	tc := mustSim(t, coarse, v3, 4, 120).ExecSeconds
	tf := mustSim(t, fine, v3, 4, 120).ExecSeconds
	if ratio := tf / tc; ratio < 5 || ratio > 12 {
		t.Errorf("time ratio = %.1f, want ~8x work", ratio)
	}
}

func TestWRFDefaultIsConusLike(t *testing.T) {
	w := mustParse(t, "wrf", nil)
	if w.Units < 5e7 || w.Units > 2e8 {
		t.Errorf("default grid = %g points, want ~87M (CONUS 2.5km)", w.Units)
	}
	if w.InputDesc != "res=2.5km" {
		t.Errorf("desc = %q", w.InputDesc)
	}
}

func TestGROMACSNsPerDayMetric(t *testing.T) {
	reg := NewRegistry()
	a, _ := reg.Get("gromacs")
	w := mustParse(t, "gromacs", nil)
	v3 := cat.MustLookup("hb120rs_v3")
	p2 := mustSim(t, w, v3, 2, 120)
	p8 := mustSim(t, w, v3, 8, 120)
	ns2, err := strconv.ParseFloat(a.Metrics(w, p2)["GMXNSPERDAY"], 64)
	if err != nil {
		t.Fatal(err)
	}
	ns8, err := strconv.ParseFloat(a.Metrics(w, p8)["GMXNSPERDAY"], 64)
	if err != nil {
		t.Fatal(err)
	}
	if ns8 <= ns2 {
		t.Errorf("ns/day should grow with nodes: %v -> %v", ns2, ns8)
	}
	// Sanity: 1.4M atoms on 240 Milan cores lands in a plausible MD range.
	if ns2 < 1 || ns2 > 500 {
		t.Errorf("ns/day = %v implausible", ns2)
	}
}

func TestSmallMDSystemsSaturate(t *testing.T) {
	// STMV (~1M atoms) over 1,920 cores is ~555 atoms/core: scaling must
	// flatten well below ideal — the domain insight the multiapp example
	// surfaces.
	w := mustParse(t, "namd", nil)
	v3 := cat.MustLookup("hb120rs_v3")
	t1 := mustSim(t, w, v3, 1, 120).ExecSeconds
	t16 := mustSim(t, w, v3, 16, 120).ExecSeconds
	speedup := t1 / t16
	if speedup > 10 {
		t.Errorf("NAMD STMV speedup @16 = %.1f, should saturate below 10", speedup)
	}
	if speedup < 2 {
		t.Errorf("NAMD STMV speedup @16 = %.1f, should still improve somewhat", speedup)
	}
}

func TestMatmulInterconnectSensitivity(t *testing.T) {
	// The same matmul on two nodes suffers far more on Ethernet (30 us)
	// than the equivalent cores on InfiniBand (1.4 us): the sync term is
	// latency-scaled.
	w := mustParse(t, "matmul", map[string]string{"MATRIXSIZE": "8192"})
	eth := cat.MustLookup("d64s_v5")
	ib := cat.MustLookup("hb120rs_v3")
	pEth := mustSim(t, w, eth, 2, 32)
	pIB := mustSim(t, w, ib, 2, 32)
	if pEth.CommSeconds <= pIB.CommSeconds*5 {
		t.Errorf("ethernet comm %.2fs should dwarf InfiniBand %.2fs", pEth.CommSeconds, pIB.CommSeconds)
	}
}

func TestMatmulGflopsMetric(t *testing.T) {
	reg := NewRegistry()
	a, _ := reg.Get("matmul")
	w := mustParse(t, "matmul", map[string]string{"MATRIXSIZE": "4096"})
	sku := cat.MustLookup("d64s_v5")
	p := mustSim(t, w, sku, 1, 32)
	g, err := strconv.ParseFloat(a.Metrics(w, p)["MATMULGFLOPS"], 64)
	if err != nil {
		t.Fatal(err)
	}
	// 2n^3 flops over the measured time must reproduce the metric.
	want := 2 * math.Pow(4096, 3) / p.ExecSeconds / 1e9
	if math.Abs(g-want)/want > 0.01 {
		t.Errorf("gflops = %v, want %v", g, want)
	}
}

func TestNewerSKUGenerationWins(t *testing.T) {
	// HBv4 (Genoa-X) must beat HBv3 on every app at equal node count —
	// more cores, stronger cores, faster interconnect.
	reg := NewRegistry()
	v3 := cat.MustLookup("hb120rs_v3")
	v4 := cat.MustLookup("hb176rs_v4")
	for _, name := range []string{"lammps", "openfoam", "wrf", "gromacs", "namd"} {
		a, _ := reg.Get(name)
		w, err := a.Parse(nil)
		if err != nil {
			t.Fatal(err)
		}
		p3, err := Simulate(w, v3, 4, v3.PhysicalCores)
		if err != nil {
			t.Fatal(err)
		}
		p4, err := Simulate(w, v4, 4, v4.PhysicalCores)
		if err != nil {
			t.Fatal(err)
		}
		if p4.ExecSeconds >= p3.ExecSeconds {
			t.Errorf("%s: HBv4 %.1fs not faster than HBv3 %.1fs", name, p4.ExecSeconds, p3.ExecSeconds)
		}
	}
}

// Property: for every app, doubling the problem size never decreases the
// execution time at fixed resources.
func TestPropertyWorkMonotonicity(t *testing.T) {
	reg := NewRegistry()
	v3 := cat.MustLookup("hb120rs_v3")
	grow := map[string]func(f float64) map[string]string{
		"lammps":  func(f float64) map[string]string { return map[string]string{"BOXFACTOR": format(4 + 4*f)} },
		"gromacs": func(f float64) map[string]string { return map[string]string{"ATOMS": format(1e6 * (1 + f))} },
		"namd":    func(f float64) map[string]string { return map[string]string{"ATOMS": format(1e6 * (1 + f))} },
		"matmul":  func(f float64) map[string]string { return map[string]string{"MATRIXSIZE": format(1024 * (1 + f))} },
	}
	for name, mk := range grow {
		a, _ := reg.Get(name)
		f := func(raw uint8) bool {
			scale := float64(raw%16) + 1
			w1, err1 := a.Parse(mk(scale))
			w2, err2 := a.Parse(mk(scale * 2))
			if err1 != nil || err2 != nil {
				return false
			}
			p1, err1 := Simulate(w1, v3, 2, 120)
			p2, err2 := Simulate(w2, v3, 2, 120)
			if err1 != nil || err2 != nil {
				return true // OOM at huge sizes is acceptable
			}
			return p2.ExecSeconds >= p1.ExecSeconds*0.99
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func format(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// Property: jitter stays within its amplitude for arbitrary cluster shapes.
func TestPropertyJitterBounded(t *testing.T) {
	w := mustParse(t, "gromacs", nil)
	skus := []catalog.SKU{
		cat.MustLookup("hb120rs_v3"),
		cat.MustLookup("hc44rs"),
		cat.MustLookup("d64s_v5"),
	}
	f := func(skuRaw, nRaw, ppnRaw uint8) bool {
		sku := skus[int(skuRaw)%len(skus)]
		n := int(nRaw%32) + 1
		ppn := int(ppnRaw)%sku.PhysicalCores + 1
		p, err := Simulate(w, sku, n, ppn)
		if err != nil {
			return true
		}
		base := p.SerialSeconds + p.CompSeconds + p.CommSeconds
		return math.Abs(p.ExecSeconds-base) <= base*jitterAmp+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Package appmodel provides analytical performance models for the HPC
// applications the paper evaluates (LAMMPS, OpenFOAM, WRF, GROMACS, NAMD)
// plus a matrix-multiplication demo app.
//
// The paper runs the real applications on real InfiniBand clusters; this
// reproduction substitutes a behavioural model with three terms:
//
//	T = serial + compute + communication
//
//	compute = Units*Steps / (ranks * rate * CoreScore) * mem(ws)
//	mem(ws) = 1 + beta / (1 + (wsc/ws)^k)      (memory-pressure factor)
//	comm    = sync + halo
//	sync    = Steps * sigma * log2(ranks) * (latency/latRef)
//	halo    = Steps * ppn * haloBytes(u) * interFrac / linkBandwidth
//
// The memory-pressure factor mem(ws) rises when the per-rank working set ws
// exceeds wsc (a few hundred MB per rank, proportional to the SKU's per-rank
// memory bandwidth). Adding nodes shrinks ws, removes the pressure, and
// produces the super-linear speedups the paper reports in Figure 5
// (efficiency up to ~1.7 for the 860M-atom LAMMPS workload). The sync term
// is a phenomenological per-step synchronization + imbalance overhead that
// grows with log2(ranks) and makes strong scaling flatten, matching the
// OpenFOAM advice table (Listing 3) where an 8M-cell case stops scaling
// around 16 nodes.
//
// Constants are calibrated so the paper's published anchor points hold in
// shape and magnitude: Listing 4 (LAMMPS ~36 s on 16x HB120rs_v3,
// near-flat cost along the front), Listing 3 (OpenFOAM front cost rising
// steeply with nodes), Figures 2-5 (magnitudes, who wins, super-linearity).
package appmodel

import (
	"fmt"
	"hash/fnv"
	"math"

	"hpcadvisor/internal/catalog"
)

// ModelParams are the per-application constants of the behavioural model.
type ModelParams struct {
	// RatePerCore is unit-steps per second per core at CoreScore 1.0 under
	// low memory pressure (e.g. atom-steps/s/core for MD codes).
	RatePerCore float64
	// BytesPerUnit is the per-unit working-set contribution in bytes.
	BytesPerUnit float64
	// MemBeta is the maximum additional slowdown from memory pressure
	// (mem factor saturates at 1+MemBeta).
	MemBeta float64
	// MemExp is the steepness of the memory-pressure sigmoid.
	MemExp float64
	// SyncSigma is the per-step synchronization/imbalance overhead in
	// seconds, applied as sigma * log2(ranks) per step.
	SyncSigma float64
	// HaloBytes is bytes exchanged per surface unit (u^(2/3)) per rank per
	// step.
	HaloBytes float64
	// SerialSeconds is fixed startup/IO time independent of scale.
	SerialSeconds float64
}

// memKappa converts per-rank memory bandwidth into the working-set knee wsc:
// wsc = memKappa seconds of streaming at the per-rank bandwidth, scaled by
// the rank's share of last-level cache. Calibrated so HB120rs_v3 at full ppn
// (4 MB of L3 per rank) has wsc ~ 0.85 GB, which reproduces the paper's
// super-linear LAMMPS speedups.
const memKappa = 0.2914

// cacheRefBytes is the per-rank L3 share at the calibration point
// (HB120rs_v3 at ppn=120) and cacheExp how strongly extra cache per rank
// relieves pressure. Running fewer processes per node leaves each rank more
// cache, raising the knee — the qualitative effect of the paper's
// "processes per resource" (ppr) knob.
const (
	cacheRefBytes = 4e6
	cacheExp      = 0.3
)

// latRefUS is the reference interconnect latency (HDR InfiniBand) against
// which SyncSigma is calibrated.
const latRefUS = 1.4

// jitterAmp is the amplitude of the deterministic per-scenario jitter. It is
// kept below 1% so the identity of the Pareto front is stable while repeated
// sweeps still scatter like measurements.
const jitterAmp = 0.008

// Workload is a fully parsed application workload ready to simulate.
type Workload struct {
	// AppName identifies the application ("lammps", "openfoam", ...).
	AppName string
	// Units is the problem size in the application's natural unit (atoms,
	// cells, grid points, matrix elements).
	Units float64
	// Steps is the number of time steps / solver iterations.
	Steps float64
	// Params holds the model constants.
	Params ModelParams
	// InputDesc is a canonical one-line description of the input, used in
	// plot subtitles and jitter seeding (e.g. "atoms=864M").
	InputDesc string
}

// Profile is the outcome of simulating a workload on a cluster shape.
type Profile struct {
	// ExecSeconds is total wall-clock execution time.
	ExecSeconds float64
	// CompSeconds, CommSeconds, SerialSeconds decompose ExecSeconds
	// (before jitter).
	CompSeconds   float64
	CommSeconds   float64
	SerialSeconds float64
	// MemFactor is the memory-pressure multiplier applied to compute.
	MemFactor float64
	// CPUUtil, MemBWUtil, NetUtil are utilization estimates in [0,1] used
	// by the infrastructure monitor.
	CPUUtil   float64
	MemBWUtil float64
	NetUtil   float64
}

// SimError describes an invalid or infeasible simulation request.
type SimError struct{ Msg string }

func (e *SimError) Error() string { return "appmodel: " + e.Msg }

// Simulate predicts the execution profile of workload w on nodes x ppn
// ranks of the given SKU. It returns an error for infeasible requests
// (zero ranks, ppn above the core count, or a working set that does not fit
// in node memory — the simulated equivalent of an OOM-killed job).
func Simulate(w Workload, sku catalog.SKU, nodes, ppn int) (Profile, error) {
	if nodes < 1 {
		return Profile{}, &SimError{Msg: fmt.Sprintf("nodes must be >= 1, got %d", nodes)}
	}
	if ppn < 1 {
		return Profile{}, &SimError{Msg: fmt.Sprintf("ppn must be >= 1, got %d", ppn)}
	}
	if ppn > sku.PhysicalCores {
		return Profile{}, &SimError{Msg: fmt.Sprintf("ppn %d exceeds %s core count %d", ppn, sku.Name, sku.PhysicalCores)}
	}
	if w.Units <= 0 || w.Steps <= 0 {
		return Profile{}, &SimError{Msg: "workload has nonpositive size"}
	}
	p := w.Params

	// Out-of-memory check: total working set spread across nodes, with a
	// 10% headroom for the OS and runtime.
	perNodeBytes := w.Units * p.BytesPerUnit / float64(nodes)
	if perNodeBytes > 0.9*sku.MemoryGB*1e9 {
		return Profile{}, &SimError{Msg: fmt.Sprintf(
			"working set %.0f GB/node exceeds %s memory %.0f GB (out of memory)",
			perNodeBytes/1e9, sku.Name, sku.MemoryGB)}
	}

	ranks := float64(nodes * ppn)

	// Memory-pressure factor from the per-rank working set.
	ws := w.Units * p.BytesPerUnit / ranks
	perRankBW := sku.MemBWGBs * 1e9 / float64(ppn)
	cachePerRank := sku.L3CacheMB * 1e6 / float64(ppn)
	wsc := memKappa * perRankBW * math.Pow(cachePerRank/cacheRefBytes, cacheExp)
	memFactor := 1.0
	if p.MemBeta > 0 && ws > 0 {
		memFactor = 1 + p.MemBeta/(1+math.Pow(wsc/ws, p.MemExp))
	}

	comp := w.Units * w.Steps / (ranks * p.RatePerCore * sku.CoreScore) * memFactor

	// Communication only exists across ranks; single-rank runs skip it.
	var sync, halo float64
	if ranks > 1 {
		latFactor := sku.Interconnect.LatencyUS / latRefUS
		sync = w.Steps * p.SyncSigma * math.Log2(ranks) * latFactor
	}
	if nodes > 1 {
		u := w.Units / ranks
		surface := math.Pow(u, 2.0/3.0)
		interFrac := 1 - math.Pow(1/float64(nodes), 1.0/3.0)
		linkBps := sku.Interconnect.BandwidthGbps * 1e9 / 8
		halo = w.Steps * float64(ppn) * p.HaloBytes * surface * interFrac / linkBps
	}
	comm := sync + halo

	total := p.SerialSeconds + comp + comm
	jit := jitterFraction(w.AppName, w.InputDesc, sku.Name, nodes, ppn)
	exec := total * (1 + jit)

	prof := Profile{
		ExecSeconds:   exec,
		CompSeconds:   comp,
		CommSeconds:   comm,
		SerialSeconds: p.SerialSeconds,
		MemFactor:     memFactor,
	}
	if total > 0 {
		ideal := comp / memFactor
		prof.CPUUtil = clamp01(ideal / total)
		prof.NetUtil = clamp01(comm / total)
		if p.MemBeta > 0 {
			prof.MemBWUtil = clamp01((memFactor - 1) / p.MemBeta)
		}
	}
	return prof, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// jitterFraction derives a deterministic pseudo-random fraction in
// [-jitterAmp, +jitterAmp] from the scenario identity, so repeated runs of
// the same scenario reproduce the same "measured" time while distinct
// scenarios scatter realistically.
func jitterFraction(app, input, sku string, nodes, ppn int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%d|%d", app, input, sku, nodes, ppn)
	v := h.Sum64()
	// Map to [0,1) then to [-amp, +amp].
	u := float64(v%1_000_000) / 1_000_000
	return (2*u - 1) * jitterAmp
}

// Speedup computes s(n) = t1/tn, the quantity plotted in the paper's
// Figure 4.
func Speedup(t1, tn float64) float64 {
	if tn <= 0 {
		return 0
	}
	return t1 / tn
}

// Efficiency computes e(n) = speedup/n, the quantity plotted in the paper's
// Figure 5. Values above 1 indicate super-linear speedup.
func Efficiency(t1, tn float64, nodes int) float64 {
	if nodes <= 0 {
		return 0
	}
	return Speedup(t1, tn) / float64(nodes)
}

package api

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"hpcadvisor/internal/config"
	"hpcadvisor/internal/core"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/service"
)

const testConfig = `subscription: mysubscription
skus:
  - Standard_HB120rs_v3
rgprefix: apitest
nnodes: [1, 2, 4]
appname: lammps
region: southcentralus
appinputs:
  BOXFACTOR: "10"
`

// collectedAdvisor runs a real (simulated) collection so the API serves the
// same shape of data a deployed instance would.
func collectedAdvisor(t testing.TB) *core.Advisor {
	t.Helper()
	cfg, err := config.Parse([]byte(testConfig))
	if err != nil {
		t.Fatal(err)
	}
	adv := core.New(cfg.Subscription)
	d, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Collect(d.Name, cfg, core.CollectOptions{}); err != nil {
		t.Fatal(err)
	}
	return adv
}

func newTestServer(t testing.TB) (*httptest.Server, *core.Advisor) {
	t.Helper()
	adv := collectedAdvisor(t)
	ts := httptest.NewServer(New(service.New(adv)).Mux())
	t.Cleanup(ts.Close)
	return ts, adv
}

func get(t testing.TB, ts *httptest.Server, path string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, string(body)
}

// TestEndpointsTable drives every endpoint through status and content-type
// expectations, including the malformed-filter 400s with JSON error bodies.
func TestEndpointsTable(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name        string
		path        string
		wantStatus  int
		wantType    string
		wantBodySub string
	}{
		{"advice", "/api/v1/advice", 200, "application/json", `"rows"`},
		{"advice filtered", "/api/v1/advice?app=lammps&sort=cost", 200, "application/json", `"rows"`},
		{"advice bad sort", "/api/v1/advice?sort=sideways", 400, "application/json", `"error"`},
		{"advice bad minnodes", "/api/v1/advice?minnodes=banana", 400, "application/json", `"message"`},
		{"advice inverted range", "/api/v1/advice?minnodes=8&maxnodes=2", 400, "application/json", `"error"`},
		{"predicted advice", "/api/v1/predicted-advice", 200, "application/json", `"backtest"`},
		{"predicted bad grid", "/api/v1/predicted-advice?grid=1,zero", 400, "application/json", `"error"`},
		{"plot", "/api/v1/plots/pareto.svg", 200, "image/svg+xml", "<svg"},
		{"plot predicted", "/api/v1/plots/exectime_vs_nodes.svg?pred=1", 200, "image/svg+xml", "<svg"},
		{"plot unknown", "/api/v1/plots/nonsense.svg", 404, "application/json", `"error"`},
		{"plot missing suffix", "/api/v1/plots/pareto", 404, "application/json", ".svg"},
		{"plot bad filter", "/api/v1/plots/pareto.svg?minnodes=x", 400, "application/json", `"error"`},
		{"scenarios", "/api/v1/scenarios", 200, "application/json", `"deployments"`},
		{"dataset", "/api/v1/dataset", 200, "application/json", `"apps"`},
		{"healthz", "/healthz", 200, "application/json", `"ok"`},
		{"metrics", "/metrics", 200, "text/plain", "hpcadvisor_cache_hits_total"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := get(t, ts, tc.path, nil)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, tc.wantType) {
				t.Errorf("content type = %q, want prefix %q", ct, tc.wantType)
			}
			if !strings.Contains(body, tc.wantBodySub) {
				t.Errorf("body missing %q: %.200s", tc.wantBodySub, body)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := ts.Client().Post(ts.URL+"/api/v1/advice", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST advice = %d, want 405", resp.StatusCode)
	}
}

// TestETagRoundTrip is the acceptance flow: a GET hands out the generation
// ETag, revalidating with it is a 304 with an empty body, and an append
// rolls the tag so the next revalidation re-serves.
func TestETagRoundTrip(t *testing.T) {
	ts, adv := newTestServer(t)
	resp, body := get(t, ts, "/api/v1/advice", nil)
	tag := resp.Header.Get("ETag")
	if tag == "" || !strings.Contains(body, `"rows"`) {
		t.Fatalf("first GET: tag=%q", tag)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("Cache-Control = %q", cc)
	}

	resp, body = get(t, ts, "/api/v1/advice", map[string]string{"If-None-Match": tag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation = %d, want 304", resp.StatusCode)
	}
	if body != "" {
		t.Fatalf("304 body = %q, want empty", body)
	}
	if resp.Header.Get("ETag") != tag {
		t.Errorf("304 ETag = %q, want %q", resp.Header.Get("ETag"), tag)
	}

	// Multi-candidate and weak forms match too.
	resp, _ = get(t, ts, "/api/v1/advice", map[string]string{"If-None-Match": `"stale", W/` + tag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("list revalidation = %d, want 304", resp.StatusCode)
	}

	// An append moves the generation: the old tag no longer validates.
	adv.Store.Add(dataset.Point{ScenarioID: "fresh", AppName: "lammps",
		SKU: "Standard_HB120rs_v3", SKUAlias: "hb120rs_v3", NNodes: 8,
		ExecTimeSec: 10, CostUSD: 0.1})
	resp, body = get(t, ts, "/api/v1/advice", map[string]string{"If-None-Match": tag})
	if resp.StatusCode != http.StatusOK || body == "" {
		t.Fatalf("post-append revalidation = %d, want 200 with body", resp.StatusCode)
	}
	if resp.Header.Get("ETag") == tag {
		t.Error("ETag did not roll with the generation")
	}

	// Plots and dataset revalidate against the same generation tag.
	newTag := resp.Header.Get("ETag")
	for _, path := range []string{"/api/v1/plots/pareto.svg", "/api/v1/dataset", "/api/v1/predicted-advice"} {
		resp, body = get(t, ts, path, map[string]string{"If-None-Match": newTag})
		if resp.StatusCode != http.StatusNotModified || body != "" {
			t.Errorf("%s revalidation = %d (body %d bytes), want empty 304", path, resp.StatusCode, len(body))
		}
	}
}

func TestEtagMatch(t *testing.T) {
	tag := `"g42"`
	for header, want := range map[string]bool{
		"":                   false,
		`"g42"`:              true,
		`W/"g42"`:            true,
		`"g41", "g42"`:       true,
		`"g41" , W/"g42"`:    true,
		"*":                  true,
		`"g41"`:              false,
		`g42`:                false, // unquoted is a different opaque value
		`"g42x", "nonsense"`: false,
	} {
		if got := etagMatch(header, tag); got != want {
			t.Errorf("etagMatch(%q) = %v, want %v", header, got, want)
		}
	}
}

// adviceJSON mirrors the wire shape with concrete row typing for the
// equivalence check.
type adviceJSON struct {
	Generation uint64          `json:"generation"`
	Count      int             `json:"count"`
	Rows       []dataset.Point `json:"rows"`
}

// TestAdviceEquivalence is the acceptance criterion: the JSON rows of
// /api/v1/advice are exactly core.Advisor.Advice — same points, same
// order, field for field through the wire format.
func TestAdviceEquivalence(t *testing.T) {
	ts, adv := newTestServer(t)
	for _, q := range []string{"", "?sort=cost", "?app=lammps", "?sku=hb120rs_v3&minnodes=1&maxnodes=4"} {
		resp, body := get(t, ts, "/api/v1/advice"+q, nil)
		if resp.StatusCode != 200 {
			t.Fatalf("advice%s = %d", q, resp.StatusCode)
		}
		var got adviceJSON
		if err := json.Unmarshal([]byte(body), &got); err != nil {
			t.Fatalf("advice%s json: %v", q, err)
		}
		vals := struct {
			f     dataset.Filter
			order pareto.SortOrder
		}{}
		switch q {
		case "":
			vals.f, vals.order = dataset.Filter{}, pareto.ByTime
		case "?sort=cost":
			vals.f, vals.order = dataset.Filter{}, pareto.ByCost
		case "?app=lammps":
			vals.f, vals.order = dataset.Filter{AppName: "lammps"}, pareto.ByTime
		case "?sku=hb120rs_v3&minnodes=1&maxnodes=4":
			vals.f, vals.order = dataset.Filter{SKU: "hb120rs_v3", MinNodes: 1, MaxNodes: 4}, pareto.ByTime
		}
		want := adv.Advice(vals.f, vals.order)
		if len(want) == 0 {
			t.Fatalf("advice%s: empty oracle, test is vacuous", q)
		}
		// Compare through the wire format: the served rows must be
		// byte-identical JSON to marshaling core.Advisor.Advice directly.
		// (A structural DeepEqual would trip on nil-vs-empty maps, a
		// distinction JSON cannot carry.)
		gotJSON, err := json.Marshal(got.Rows)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != len(want) || string(gotJSON) != string(wantJSON) {
			t.Fatalf("advice%s rows diverge from core.Advisor.Advice\ngot:  %s\nwant: %s", q, gotJSON, wantJSON)
		}
	}
}

func TestScenariosEndpoint(t *testing.T) {
	ts, adv := newTestServer(t)
	resp, body := get(t, ts, "/api/v1/scenarios", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("scenarios = %d", resp.StatusCode)
	}
	var out struct {
		Deployments []struct {
			Deployment string `json:"deployment"`
			Tasks      []struct {
				ID     string `json:"id"`
				Status string `json:"status"`
			} `json:"tasks"`
		} `json:"deployments"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Deployments) != 1 || len(out.Deployments[0].Tasks) == 0 {
		t.Fatalf("scenarios = %+v", out)
	}
	if got := out.Deployments[0].Deployment; adv.TaskList(got) == nil {
		t.Fatalf("deployment %q has no task list", got)
	}

	// An advisor with no collections serves an empty list, not null.
	ts2 := httptest.NewServer(New(service.New(core.New("empty"))).Mux())
	defer ts2.Close()
	_, body = get(t, ts2, "/api/v1/scenarios", nil)
	if !strings.Contains(body, `"deployments":[]`) {
		t.Fatalf("empty scenarios = %s", body)
	}
}

func TestDatasetEndpoint(t *testing.T) {
	ts, adv := newTestServer(t)
	resp, body := get(t, ts, "/api/v1/dataset", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("dataset = %d", resp.StatusCode)
	}
	var info service.DatasetInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.Points != adv.Store.Len() || info.Generation != adv.Store.Generation() {
		t.Fatalf("dataset info = %+v", info)
	}
	if !reflect.DeepEqual(info.Apps, []string{"lammps"}) || !reflect.DeepEqual(info.SKUs, []string{"hb120rs_v3"}) {
		t.Fatalf("dims = %v / %v", info.Apps, info.SKUs)
	}
}

func TestMetricsCounters(t *testing.T) {
	ts, _ := newTestServer(t)
	get(t, ts, "/api/v1/advice", nil)
	resp, _ := get(t, ts, "/api/v1/advice", map[string]string{"If-None-Match": resp0Etag(t, ts)})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation = %d", resp.StatusCode)
	}
	_, body := get(t, ts, "/metrics", nil)
	for _, want := range []string{
		"hpcadvisor_dataset_points",
		"hpcadvisor_dataset_generation",
		"hpcadvisor_cache_hits_total",
		"hpcadvisor_http_requests_total",
		"hpcadvisor_http_not_modified_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func resp0Etag(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, _ := get(t, ts, "/api/v1/advice", nil)
	return resp.Header.Get("ETag")
}

// TestGracefulShutdown exercises the drain path: the server answers while
// the context lives, returns nil on cancellation, and refuses connections
// afterwards.
func TestGracefulShutdown(t *testing.T) {
	adv := collectedAdvisor(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, ln, New(service.New(adv)).Mux()) }()

	url := fmt.Sprintf("http://%s/healthz", ln.Addr())
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not drain")
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("server still accepting after drain")
	}
}

func TestStatusOf(t *testing.T) {
	for err, want := range map[error]int{
		service.BadRequestf("x"):    http.StatusBadRequest,
		service.NotFoundf("x"):      http.StatusNotFound,
		service.Internalf(nil, "x"): http.StatusInternalServerError,
		fmt.Errorf("untyped"):       http.StatusInternalServerError,
	} {
		if got := StatusOf(err); got != want {
			t.Errorf("StatusOf(%v) = %d, want %d", err, got, want)
		}
	}
}

// nullResponseWriter is a reusable discard writer for allocation probes.
type nullResponseWriter struct {
	h    http.Header
	code int
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) WriteHeader(c int)           { w.code = c }
func (w *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestRevalidationAllocBound pins the tentpole's cheap-304 property: an
// If-None-Match hit on /api/v1/advice does no parsing, no query, and only
// a handful of header-plumbing allocations.
func TestRevalidationAllocBound(t *testing.T) {
	adv := collectedAdvisor(t)
	mux := New(service.New(adv)).Mux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/advice", nil))
	tag := rec.Header().Get("ETag")
	if tag == "" {
		t.Fatal("no ETag")
	}

	req := httptest.NewRequest(http.MethodGet, "/api/v1/advice", nil)
	req.Header.Set("If-None-Match", tag)
	w := &nullResponseWriter{h: make(http.Header)}
	allocs := testing.AllocsPerRun(500, func() {
		w.code = 0
		mux.ServeHTTP(w, req)
		if w.code != http.StatusNotModified {
			t.Fatalf("revalidation = %d", w.code)
		}
	})
	// Header.Set and the mux match machinery cost a few small allocations;
	// anything beyond ~8 means the handler started computing on the hit path.
	if allocs > 8 {
		t.Errorf("revalidation hit allocates %.1f objects/op, want ~zero", allocs)
	}
}

// TestScenariosDuringLiveCollect is the regression test for the registry
// race: /api/v1/scenarios (and the other registry readers) must be safe to
// hammer while a collection mutates deployments and task statuses on the
// same advisor — run with -race, this used to be a fatal concurrent map
// access and torn task reads.
func TestScenariosDuringLiveCollect(t *testing.T) {
	cfg, err := config.Parse([]byte(testConfig))
	if err != nil {
		t.Fatal(err)
	}
	adv := core.New(cfg.Subscription)
	d, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(service.New(adv)).Mux())
	defer ts.Close()

	done := make(chan error, 1)
	go func() {
		_, err := adv.Collect(d.Name, cfg, core.CollectOptions{})
		done <- err
	}()
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("collect: %v", err)
			}
			// One final read sees the finished state.
			resp, body := get(t, ts, "/api/v1/scenarios", nil)
			if resp.StatusCode != 200 || !strings.Contains(body, `"completed"`) {
				t.Fatalf("post-collect scenarios = %d: %.200s", resp.StatusCode, body)
			}
			return
		default:
		}
		if resp, _ := get(t, ts, "/api/v1/scenarios", nil); resp.StatusCode != 200 {
			t.Fatalf("scenarios during collect = %d", resp.StatusCode)
		}
		if resp, _ := get(t, ts, "/api/v1/advice", nil); resp.StatusCode != 200 {
			t.Fatalf("advice during collect = %d", resp.StatusCode)
		}
	}
}

// TestAdviceJSONAllocBound pins the near-zero-alloc serving path: once a
// body is rendered at a generation, re-serving the same URL is a header
// compare, a body-cache probe, and a write — no query parsing, no engine
// probe, no encoding. The bound leaves room for the mux match and header
// plumbing only.
func TestAdviceJSONAllocBound(t *testing.T) {
	adv := collectedAdvisor(t)
	mux := New(service.New(adv)).Mux()

	// Prime: first request renders and populates the body cache.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/advice?app=lammps", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("prime request = %d", rec.Code)
	}
	primed := rec.Body.String()

	req := httptest.NewRequest(http.MethodGet, "/api/v1/advice?app=lammps", nil)
	w := &nullResponseWriter{h: make(http.Header)}
	allocs := testing.AllocsPerRun(500, func() {
		w.code = 0
		mux.ServeHTTP(w, req)
	})
	// The row-marshaling path costs ~15 allocs/op; the cached-body path
	// must stay at least 50% below that (ISSUE 9 acceptance).
	if allocs > 7 {
		t.Errorf("hot advice serve allocates %.1f objects/op, want <= 7", allocs)
	}

	// Coherence: an append must roll the cache, not serve stale bytes.
	adv.Store.Add(dataset.Point{ScenarioID: "alloc-roll", AppName: "lammps", SKU: "Standard_HB120rs_v3",
		SKUAlias: "hb120rs_v3", NNodes: 3, ExecTimeSec: 0.001, CostUSD: 0.0001})
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/advice?app=lammps", nil))
	if rec.Body.String() == primed {
		t.Fatal("body cache served a stale generation after an append")
	}
	var resp service.AdviceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != adv.Store.Generation() {
		t.Errorf("served generation %d, want %d", resp.Generation, adv.Store.Generation())
	}
}

// A failing client write must be counted, not silently dropped: the write
// error counter is the only observable trace of a truncated response.
func TestWriteErrorsCounted(t *testing.T) {
	adv := collectedAdvisor(t)
	srv := New(service.New(adv))
	mux := srv.Mux()

	w := &failingResponseWriter{h: make(http.Header)}
	mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/api/v1/advice", nil))
	mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/api/v1/advice?minnodes=bogus", nil))
	if got := srv.writeErrors.Load(); got != 3 {
		t.Errorf("writeErrors = %d, want 3 (advice, healthz, error body)", got)
	}

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "hpcadvisor_http_write_errors_total 3") {
		t.Error("/metrics does not expose the write error counter")
	}
	if !strings.Contains(rec.Body.String(), "hpcadvisor_http_encode_errors_total 0") {
		t.Error("/metrics does not expose the encode error counter")
	}
}

// failingResponseWriter accepts headers but fails every body write, like a
// client that disconnected after the request line.
type failingResponseWriter struct {
	h    http.Header
	code int
}

func (w *failingResponseWriter) Header() http.Header { return w.h }
func (w *failingResponseWriter) WriteHeader(c int)   { w.code = c }
func (w *failingResponseWriter) Write(p []byte) (int, error) {
	return 0, fmt.Errorf("client gone")
}

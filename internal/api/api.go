// Package api is the versioned JSON HTTP surface over the service layer —
// advice-as-a-service. Every response that derives from the dataset carries
// a generation-based ETag: the query engine invalidates its caches by store
// generation, and the API folds the same generation into `ETag`, so a fleet
// of clients revalidating with `If-None-Match` gets `304 Not Modified` for
// free until the next append — HTTP-level caching that tracks the engine's
// own invalidation exactly.
//
// Endpoints (all GET):
//
//	/api/v1/advice             Pareto front as JSON rows (?app ?sku ?input
//	                           ?minnodes ?maxnodes ?sort)
//	/api/v1/predicted-advice   merged measured+predicted front plus backtest
//	                           (?region ?grid and the filter params)
//	/api/v1/plots/{name}.svg   one rendered plot (?pred=1 for the overlay)
//	/api/v1/scenarios          per-deployment scenario task lists
//	/api/v1/dataset            dataset size, dimensions, storage state
//	/healthz                   liveness (no ETag, never cached)
//	/metrics                   Prometheus-format counters
//
// Errors are JSON bodies {"error":{"status":...,"message":...}} with the
// status chosen by the service layer's typed error kinds.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"hpcadvisor/internal/service"
)

// Server serves the versioned JSON API over one service.
type Server struct {
	svc *service.Service

	// Request counters for /metrics.
	requests    atomic.Uint64
	notModified atomic.Uint64

	// etagCache memoizes the rendered ETag of the current generation, so a
	// fleet of revalidating clients costs a pointer load per request
	// instead of an integer format.
	etagCache atomic.Pointer[etagEntry]
}

type etagEntry struct {
	gen uint64
	tag string
}

// New builds an API server over a service.
func New(svc *service.Service) *Server { return &Server{svc: svc} }

// Mux returns the route table. Methods are part of the patterns, so a POST
// to a read endpoint is 405, not a silent GET.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/advice", s.counted(s.handleAdvice))
	mux.HandleFunc("GET /api/v1/predicted-advice", s.counted(s.handlePredictedAdvice))
	mux.HandleFunc("GET /api/v1/plots/{name}", s.counted(s.handlePlot))
	mux.HandleFunc("GET /api/v1/scenarios", s.counted(s.handleScenarios))
	mux.HandleFunc("GET /api/v1/dataset", s.counted(s.handleDataset))
	mux.HandleFunc("GET /healthz", s.counted(s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.counted(s.handleMetrics))
	return mux
}

func (s *Server) counted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		h(w, r)
	}
}

// StatusOf maps a service error to its HTTP status. The GUI shares it so
// both transports agree on what a bad filter (400) versus an unknown plot
// (404) versus a render failure (500) is.
func StatusOf(err error) int {
	switch service.KindOf(err) {
	case service.KindBadRequest:
		return http.StatusBadRequest
	case service.KindNotFound:
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error struct {
		Status  int    `json:"status"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, err error) {
	var body errorBody
	body.Error.Status = StatusOf(err)
	body.Error.Message = err.Error()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(body.Error.Status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are out; nothing to do but drop the connection.
		return
	}
}

// etag renders the generation ETag. It is a strong validator: two responses
// for one URL at one generation are byte-identical (the engine serves both
// from the same memoized snapshot results).
func etag(gen uint64) string {
	return `"g` + strconv.FormatUint(gen, 10) + `"`
}

// etagMatch implements If-None-Match for our single-ETag responses: a
// comma-separated candidate list, `*` matching anything, and weak-validator
// prefixes compared by opaque value.
func etagMatch(header, tag string) bool {
	if header == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == tag {
			return true
		}
	}
	return false
}

// etagFor returns the (memoized) ETag of gen.
func (s *Server) etagFor(gen uint64) string {
	if c := s.etagCache.Load(); c != nil && c.gen == gen {
		return c.tag
	}
	tag := etag(gen)
	s.etagCache.Store(&etagEntry{gen: gen, tag: tag})
	return tag
}

// notModified reports whether the client's If-None-Match already names the
// current generation — in which case a 304 with an empty body (and the
// caching headers) has been written and the caller must not render
// anything. The check runs before any parsing or computation, so a
// revalidation hit costs a header compare, not a query. On a miss nothing
// is written: the handler renders its body and stamps the headers with
// stampCaching using the generation the body actually came from, so the
// ETag can never disagree with the bytes under it even while a concurrent
// collection appends between the check and the render.
func (s *Server) serveNotModified(w http.ResponseWriter, r *http.Request) bool {
	tag := s.etagFor(s.svc.Generation())
	if etagMatch(r.Header.Get("If-None-Match"), tag) {
		h := w.Header()
		h.Set("ETag", tag)
		h.Set("Cache-Control", "no-cache")
		s.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// stampCaching sets the caching headers for a body rendered at gen.
func (s *Server) stampCaching(w http.ResponseWriter, gen uint64) {
	h := w.Header()
	h.Set("ETag", s.etagFor(gen))
	h.Set("Cache-Control", "no-cache")
}

// handleAdvice serves the service.AdviceResponse envelope: generation,
// canonical sort name, row count, and the rows. The encoded body is
// memoized per (filter, order, generation) in the query engine, so under
// steady traffic this handler is a parse plus a cache probe.
func (s *Server) handleAdvice(w http.ResponseWriter, r *http.Request) {
	if s.serveNotModified(w, r) {
		return
	}
	req, err := service.ParseAdviceRequest(r.URL.Query())
	if err != nil {
		writeError(w, err)
		return
	}
	body, gen, err := s.svc.AdviceJSON(req)
	if err != nil {
		writeError(w, err)
		return
	}
	s.stampCaching(w, gen)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(body)
}

// handlePredictedAdvice serves the service.PredictedResponse envelope —
// merged front plus backtest, both from one snapshot, memoized like the
// advice body.
func (s *Server) handlePredictedAdvice(w http.ResponseWriter, r *http.Request) {
	if s.serveNotModified(w, r) {
		return
	}
	req, err := service.ParsePredictRequest(r.URL.Query())
	if err != nil {
		writeError(w, err)
		return
	}
	body, gen, err := s.svc.PredictedAdviceJSON(req)
	if err != nil {
		writeError(w, err)
		return
	}
	s.stampCaching(w, gen)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(body)
}

func (s *Server) handlePlot(w http.ResponseWriter, r *http.Request) {
	if s.serveNotModified(w, r) {
		return
	}
	base, ok := strings.CutSuffix(r.PathValue("name"), ".svg")
	if !ok {
		writeError(w, service.NotFoundf("plot artifacts are .svg files (try %s.svg)", r.PathValue("name")))
		return
	}
	req, err := service.ParsePlotRequest(base, r.URL.Query())
	if err != nil {
		writeError(w, err)
		return
	}
	data, gen, err := s.svc.PlotSVG(req)
	if err != nil {
		writeError(w, err)
		return
	}
	s.stampCaching(w, gen)
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write(data)
}

type scenariosResponse struct {
	Deployments []service.DeploymentScenarios `json:"deployments"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	deps, err := s.svc.Scenarios()
	if err != nil {
		writeError(w, err)
		return
	}
	if deps == nil {
		deps = []service.DeploymentScenarios{}
	}
	writeJSON(w, scenariosResponse{Deployments: deps})
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	if s.serveNotModified(w, r) {
		return
	}
	info, err := s.svc.Dataset()
	if err != nil {
		writeError(w, err)
		return
	}
	s.stampCaching(w, info.Generation)
	writeJSON(w, info)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":     "ok",
		"points":     s.svc.Advisor().Store.Len(),
		"generation": s.svc.Generation(),
	}
	if rs, ok := s.svc.Replication(); ok {
		if rs.Fault != "" {
			// Still serving (last-good data), but a load balancer should
			// know this replica stopped tracking the leader.
			body["status"] = "degraded"
		}
		body["replication"] = rs
	}
	writeJSON(w, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stats := s.svc.EngineStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	gauge := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("hpcadvisor_dataset_points", "Datapoints in the served dataset.", uint64(s.svc.Advisor().Store.Len()))
	gauge("hpcadvisor_dataset_generation", "Dataset store generation (ETag basis).", s.svc.Generation())
	counter("hpcadvisor_cache_hits_total", "Query engine cache hits.", stats.Hits)
	counter("hpcadvisor_cache_misses_total", "Query engine cache misses.", stats.Misses)
	counter("hpcadvisor_cache_evictions_total", "Query engine cache evictions.", stats.Evictions)
	counter("hpcadvisor_http_requests_total", "API requests served.", s.requests.Load())
	counter("hpcadvisor_http_not_modified_total", "Revalidations answered 304.", s.notModified.Load())
	if rs, ok := s.svc.Replication(); ok && rs.Role == "follower" {
		gauge("hpcadvisor_replica_lag_points", "Points behind the leader's durable log position.", uint64(rs.Lag))
		gauge("hpcadvisor_replica_applied_points", "Points applied from the leader's log.", uint64(rs.Applied))
	}

	// Collection-resilience counters: labeled series are emitted in sorted
	// label order so the exposition is deterministic.
	col := s.svc.CollectionStats()
	labeled := func(name, help, kind string, series map[string]uint64, label string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		keys := make([]string, 0, len(series))
		for k := range series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s{%s=%q} %d\n", name, label, k, series[k])
		}
	}
	labeled("hpcadvisor_collect_attempts_total", "Collection attempts by failure class (class none is success).", "counter", col.AttemptsByClass, "class")
	labeled("hpcadvisor_collect_retries_total", "Collection retries by the failure class that caused them.", "counter", col.RetriesByClass, "class")
	breaker := make(map[string]uint64, len(col.BreakerState))
	for sku, state := range col.BreakerState {
		// 0 closed, 1 half-open, 2 open.
		switch state {
		case "half-open":
			breaker[sku] = 1
		case "open":
			breaker[sku] = 2
		default:
			breaker[sku] = 0
		}
	}
	labeled("hpcadvisor_collect_breaker_state", "Circuit breaker state per SKU (0 closed, 1 half-open, 2 open).", "gauge", breaker, "sku")
	counter("hpcadvisor_collect_breaker_trips_total", "Circuit breaker open transitions.", col.BreakerTrips)
	counter("hpcadvisor_collect_tasks_resumed_total", "Journaled tasks restored on resume without re-collection.", col.TasksResumed)
	counter("hpcadvisor_collect_tasks_rerun_total", "Journaled tasks re-collected on resume (datapoint was not durable).", col.TasksRerun)
	counter("hpcadvisor_collect_journal_records_total", "Records appended to the sweep journal.", col.JournalRecords)
	_, _ = w.Write([]byte(b.String()))
}

// Package api is the versioned JSON HTTP surface over the service layer —
// advice-as-a-service. Every response that derives from the dataset carries
// a generation-based ETag: the query engine invalidates its caches by store
// generation, and the API folds the same generation into `ETag`, so a fleet
// of clients revalidating with `If-None-Match` gets `304 Not Modified` for
// free until the next append — HTTP-level caching that tracks the engine's
// own invalidation exactly.
//
// Endpoints (all GET):
//
//	/api/v1/advice             Pareto front as JSON rows (?app ?sku ?input
//	                           ?minnodes ?maxnodes ?sort)
//	/api/v1/predicted-advice   merged measured+predicted front plus backtest
//	                           (?region ?grid and the filter params)
//	/api/v1/plots/{name}.svg   one rendered plot (?pred=1 for the overlay)
//	/api/v1/scenarios          per-deployment scenario task lists
//	/api/v1/dataset            dataset size, dimensions, storage state
//	/healthz                   liveness (no ETag, never cached)
//	/metrics                   Prometheus-format counters
//
// Errors are JSON bodies {"error":{"status":...,"message":...}} with the
// status chosen by the service layer's typed error kinds.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"hpcadvisor/internal/service"
)

// Server serves the versioned JSON API over one service.
type Server struct {
	svc *service.Service

	// Request counters for /metrics.
	requests    atomic.Uint64
	notModified atomic.Uint64

	// Encode/write failure counters for /metrics: a response body that
	// failed to marshal (encodeErrors) or could not be fully written to the
	// client (writeErrors) is otherwise invisible — by the time a write
	// fails the status line is already out, so the counter is the only
	// place a truncated response surfaces.
	encodeErrors atomic.Uint64
	writeErrors  atomic.Uint64

	// bodyHits counts advice responses served straight from the
	// per-generation body cache, skipping even the query parse.
	bodyHits atomic.Uint64

	// etagCache memoizes the rendered ETag of the current generation, so a
	// fleet of revalidating clients costs a pointer load per request
	// instead of an integer format.
	etagCache atomic.Pointer[etagEntry]

	// adviceBodies caches fully rendered /api/v1/advice bodies for the
	// current generation, keyed by raw query string, so the hot serving
	// path is a map probe plus a write — no URL parsing, no filter
	// canonicalization, no engine probe. A generation roll swaps in a
	// fresh cache; stale entries die with their cache.
	adviceBodies atomic.Pointer[bodyCache]
}

type etagEntry struct {
	gen uint64
	tag string
}

// maxCachedBodies bounds the per-generation body cache. Distinct raw query
// strings beyond the cap fall through to the normal (still engine-cached)
// render path, so an adversarial query stream cannot grow the map without
// bound.
const maxCachedBodies = 512

// bodyCache memoizes rendered advice bodies for one generation.
type bodyCache struct {
	gen    uint64
	mu     sync.RWMutex
	bodies map[string][]byte // guarded-by: mu
}

func (c *bodyCache) get(rawQuery string) ([]byte, bool) {
	c.mu.RLock()
	body, ok := c.bodies[rawQuery]
	c.mu.RUnlock()
	return body, ok
}

func (c *bodyCache) put(rawQuery string, body []byte) {
	c.mu.Lock()
	if len(c.bodies) < maxCachedBodies {
		c.bodies[rawQuery] = body
	}
	c.mu.Unlock()
}

// cachedBody returns the cached advice body for a raw query at gen, if the
// current cache is for that generation and holds it.
func (s *Server) cachedBody(gen uint64, rawQuery string) ([]byte, bool) {
	if c := s.adviceBodies.Load(); c != nil && c.gen == gen {
		return c.get(rawQuery)
	}
	return nil, false
}

// storeBody records a rendered advice body under the generation its bytes
// were actually rendered at. A cache for a newer generation is never
// displaced — a racing older render just goes uncached.
func (s *Server) storeBody(gen uint64, rawQuery string, body []byte) {
	for {
		c := s.adviceBodies.Load()
		if c != nil && c.gen == gen {
			c.put(rawQuery, body)
			return
		}
		if c != nil && c.gen > gen {
			return
		}
		nc := &bodyCache{gen: gen, bodies: make(map[string][]byte)}
		if s.adviceBodies.CompareAndSwap(c, nc) {
			nc.put(rawQuery, body)
			return
		}
	}
}

// New builds an API server over a service.
func New(svc *service.Service) *Server { return &Server{svc: svc} }

// Mux returns the route table. Methods are part of the patterns, so a POST
// to a read endpoint is 405, not a silent GET.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/advice", s.counted(s.handleAdvice))
	mux.HandleFunc("GET /api/v1/predicted-advice", s.counted(s.handlePredictedAdvice))
	mux.HandleFunc("GET /api/v1/plots/{name}", s.counted(s.handlePlot))
	mux.HandleFunc("GET /api/v1/scenarios", s.counted(s.handleScenarios))
	mux.HandleFunc("GET /api/v1/dataset", s.counted(s.handleDataset))
	mux.HandleFunc("GET /healthz", s.counted(s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.counted(s.handleMetrics))
	return mux
}

func (s *Server) counted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		h(w, r)
	}
}

// StatusOf maps a service error to its HTTP status. The GUI shares it so
// both transports agree on what a bad filter (400) versus an unknown plot
// (404) versus a render failure (500) is.
func StatusOf(err error) int {
	switch service.KindOf(err) {
	case service.KindBadRequest:
		return http.StatusBadRequest
	case service.KindNotFound:
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error struct {
		Status  int    `json:"status"`
		Message string `json:"message"`
	} `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	var body errorBody
	body.Error.Status = StatusOf(err)
	body.Error.Message = err.Error()
	data, mErr := json.Marshal(body)
	if mErr != nil {
		// Unreachable for a fixed struct of ints and strings, but counted
		// rather than silently dropped if it ever happens.
		s.encodeErrors.Add(1)
		w.WriteHeader(body.Error.Status)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(body.Error.Status)
	s.writeBody(w, append(data, '\n'))
}

// writeJSON marshals v and writes it. Marshaling up front (instead of
// streaming through an Encoder) means an encode failure happens before any
// byte reaches the client, so it can still be answered with a well-formed
// 500 — and counted, where the old Encoder path discarded it. The trailing
// newline preserves the Encoder's framing byte for byte.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		s.encodeErrors.Add(1)
		s.writeError(w, service.Internalf(err, "encoding response"))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	s.writeBody(w, append(data, '\n'))
}

// writeBody writes a fully rendered body, counting short or failed writes:
// the status line is already out, so the counter is the only observable
// trace of a truncated response.
func (s *Server) writeBody(w http.ResponseWriter, body []byte) {
	if n, err := w.Write(body); err != nil || n < len(body) {
		s.writeErrors.Add(1)
	}
}

// etag renders the generation ETag. It is a strong validator: two responses
// for one URL at one generation are byte-identical (the engine serves both
// from the same memoized snapshot results).
func etag(gen uint64) string {
	return `"g` + strconv.FormatUint(gen, 10) + `"`
}

// etagMatch implements If-None-Match for our single-ETag responses: a
// comma-separated candidate list, `*` matching anything, and weak-validator
// prefixes compared by opaque value.
func etagMatch(header, tag string) bool {
	if header == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == tag {
			return true
		}
	}
	return false
}

// etagFor returns the (memoized) ETag of gen.
func (s *Server) etagFor(gen uint64) string {
	if c := s.etagCache.Load(); c != nil && c.gen == gen {
		return c.tag
	}
	tag := etag(gen)
	s.etagCache.Store(&etagEntry{gen: gen, tag: tag})
	return tag
}

// notModified reports whether the client's If-None-Match already names the
// current generation — in which case a 304 with an empty body (and the
// caching headers) has been written and the caller must not render
// anything. The check runs before any parsing or computation, so a
// revalidation hit costs a header compare, not a query. On a miss nothing
// is written: the handler renders its body and stamps the headers with
// stampCaching using the generation the body actually came from, so the
// ETag can never disagree with the bytes under it even while a concurrent
// collection appends between the check and the render.
func (s *Server) serveNotModified(w http.ResponseWriter, r *http.Request) bool {
	return s.serveNotModifiedAt(w, r, s.svc.Generation())
}

// serveNotModifiedAt is serveNotModified for a handler that already
// fetched the generation (to share it with a body-cache probe) and must
// not fetch it twice.
func (s *Server) serveNotModifiedAt(w http.ResponseWriter, r *http.Request, gen uint64) bool {
	tag := s.etagFor(gen)
	if etagMatch(r.Header.Get("If-None-Match"), tag) {
		h := w.Header()
		h.Set("ETag", tag)
		h.Set("Cache-Control", "no-cache")
		s.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// stampCaching sets the caching headers for a body rendered at gen.
func (s *Server) stampCaching(w http.ResponseWriter, gen uint64) {
	h := w.Header()
	h.Set("ETag", s.etagFor(gen))
	h.Set("Cache-Control", "no-cache")
}

// handleAdvice serves the service.AdviceResponse envelope: generation,
// canonical sort name, row count, and the rows. The encoded body is
// memoized per (filter, order, generation) in the query engine, and the
// fully rendered response is additionally cached here per (raw query,
// generation) — so under steady traffic this handler is a header compare
// and a map probe, with no query parsing at all. The generation is fetched
// exactly once and threaded through both the revalidation check and the
// cache probe (snapshot-pinning discipline).
func (s *Server) handleAdvice(w http.ResponseWriter, r *http.Request) {
	gen := s.svc.Generation()
	if s.serveNotModifiedAt(w, r, gen) {
		return
	}
	if body, ok := s.cachedBody(gen, r.URL.RawQuery); ok {
		s.bodyHits.Add(1)
		s.stampCaching(w, gen)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		s.writeBody(w, body)
		return
	}
	req, err := service.ParseAdviceRequest(r.URL.Query())
	if err != nil {
		s.writeError(w, err)
		return
	}
	body, bgen, err := s.svc.AdviceJSON(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Cache under bgen — the generation the body was actually rendered at,
	// which may already differ from gen if a collection appended — so the
	// cached bytes can never be served under a mismatched ETag.
	s.storeBody(bgen, r.URL.RawQuery, body)
	s.stampCaching(w, bgen)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	s.writeBody(w, body)
}

// handlePredictedAdvice serves the service.PredictedResponse envelope —
// merged front plus backtest, both from one snapshot, memoized like the
// advice body.
func (s *Server) handlePredictedAdvice(w http.ResponseWriter, r *http.Request) {
	if s.serveNotModified(w, r) {
		return
	}
	req, err := service.ParsePredictRequest(r.URL.Query())
	if err != nil {
		s.writeError(w, err)
		return
	}
	body, gen, err := s.svc.PredictedAdviceJSON(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.stampCaching(w, gen)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(body)
}

func (s *Server) handlePlot(w http.ResponseWriter, r *http.Request) {
	if s.serveNotModified(w, r) {
		return
	}
	base, ok := strings.CutSuffix(r.PathValue("name"), ".svg")
	if !ok {
		s.writeError(w, service.NotFoundf("plot artifacts are .svg files (try %s.svg)", r.PathValue("name")))
		return
	}
	req, err := service.ParsePlotRequest(base, r.URL.Query())
	if err != nil {
		s.writeError(w, err)
		return
	}
	data, gen, err := s.svc.PlotSVG(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.stampCaching(w, gen)
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write(data)
}

type scenariosResponse struct {
	Deployments []service.DeploymentScenarios `json:"deployments"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	deps, err := s.svc.Scenarios()
	if err != nil {
		s.writeError(w, err)
		return
	}
	if deps == nil {
		deps = []service.DeploymentScenarios{}
	}
	s.writeJSON(w, scenariosResponse{Deployments: deps})
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	if s.serveNotModified(w, r) {
		return
	}
	info, err := s.svc.Dataset()
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.stampCaching(w, info.Generation)
	s.writeJSON(w, info)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":     "ok",
		"points":     s.svc.Advisor().Store.Len(),
		"generation": s.svc.Generation(),
	}
	if rs, ok := s.svc.Replication(); ok {
		if rs.Fault != "" {
			// Still serving (last-good data), but a load balancer should
			// know this replica stopped tracking the leader.
			body["status"] = "degraded"
		}
		body["replication"] = rs
	}
	s.writeJSON(w, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stats := s.svc.EngineStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	gauge := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("hpcadvisor_dataset_points", "Datapoints in the served dataset.", uint64(s.svc.Advisor().Store.Len()))
	gauge("hpcadvisor_dataset_generation", "Dataset store generation (ETag basis).", s.svc.Generation())
	counter("hpcadvisor_cache_hits_total", "Query engine cache hits.", stats.Hits)
	counter("hpcadvisor_cache_misses_total", "Query engine cache misses.", stats.Misses)
	counter("hpcadvisor_cache_evictions_total", "Query engine cache evictions.", stats.Evictions)
	counter("hpcadvisor_http_requests_total", "API requests served.", s.requests.Load())
	counter("hpcadvisor_http_not_modified_total", "Revalidations answered 304.", s.notModified.Load())
	counter("hpcadvisor_http_body_cache_hits_total", "Advice responses served from the per-generation body cache.", s.bodyHits.Load())
	counter("hpcadvisor_http_encode_errors_total", "Response bodies whose JSON encoding failed.", s.encodeErrors.Load())
	counter("hpcadvisor_http_write_errors_total", "Response bodies truncated by a failed or short client write.", s.writeErrors.Load())
	if rs, ok := s.svc.Replication(); ok && rs.Role == "follower" {
		gauge("hpcadvisor_replica_lag_points", "Points behind the leader's durable log position.", uint64(rs.Lag))
		gauge("hpcadvisor_replica_applied_points", "Points applied from the leader's log.", uint64(rs.Applied))
	}

	// Collection-resilience counters: labeled series are emitted in sorted
	// label order so the exposition is deterministic.
	col := s.svc.CollectionStats()
	labeled := func(name, help, kind string, series map[string]uint64, label string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		keys := make([]string, 0, len(series))
		for k := range series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s{%s=%q} %d\n", name, label, k, series[k])
		}
	}
	labeled("hpcadvisor_collect_attempts_total", "Collection attempts by failure class (class none is success).", "counter", col.AttemptsByClass, "class")
	labeled("hpcadvisor_collect_retries_total", "Collection retries by the failure class that caused them.", "counter", col.RetriesByClass, "class")
	breaker := make(map[string]uint64, len(col.BreakerState))
	for sku, state := range col.BreakerState {
		// 0 closed, 1 half-open, 2 open.
		switch state {
		case "half-open":
			breaker[sku] = 1
		case "open":
			breaker[sku] = 2
		default:
			breaker[sku] = 0
		}
	}
	labeled("hpcadvisor_collect_breaker_state", "Circuit breaker state per SKU (0 closed, 1 half-open, 2 open).", "gauge", breaker, "sku")
	counter("hpcadvisor_collect_breaker_trips_total", "Circuit breaker open transitions.", col.BreakerTrips)
	counter("hpcadvisor_collect_tasks_resumed_total", "Journaled tasks restored on resume without re-collection.", col.TasksResumed)
	counter("hpcadvisor_collect_tasks_rerun_total", "Journaled tasks re-collected on resume (datapoint was not durable).", col.TasksRerun)
	counter("hpcadvisor_collect_journal_records_total", "Records appended to the sweep journal.", col.JournalRecords)
	_, _ = w.Write([]byte(b.String()))
}

package api

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Hardened http.Server settings shared by every listener in the tool (the
// JSON API, the GUI, and the combined `serve` mux). The seed GUI used the
// bare http.ListenAndServe, which has no timeouts at all: one slow-loris
// client could pin a connection forever and there was no shutdown path
// short of killing the process.
const (
	// ReadHeaderTimeout bounds how long a client may dribble headers.
	ReadHeaderTimeout = 5 * time.Second
	// ReadTimeout bounds reading one full request.
	ReadTimeout = 30 * time.Second
	// WriteTimeout bounds writing one full response (SVG renders and large
	// JSON bodies included).
	WriteTimeout = 60 * time.Second
	// IdleTimeout reaps keep-alive connections between requests.
	IdleTimeout = 120 * time.Second
	// DrainTimeout is how long graceful shutdown waits for in-flight
	// requests before closing their connections.
	DrainTimeout = 10 * time.Second
)

// NewHTTPServer builds the shared hardened server: every timeout set, and a
// base context so in-flight handlers observe cancellation.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: ReadHeaderTimeout,
		ReadTimeout:       ReadTimeout,
		WriteTimeout:      WriteTimeout,
		IdleTimeout:       IdleTimeout,
	}
}

// ListenAndServe runs a hardened server on addr until ctx is canceled, then
// drains gracefully: the listener closes immediately, in-flight requests get
// up to DrainTimeout to finish, and nil is returned on a clean drain.
// Callers wanting SIGTERM-triggered shutdown pass a signal.NotifyContext.
func ListenAndServe(ctx context.Context, addr string, h http.Handler) error {
	srv := NewHTTPServer(addr, h)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serve(ctx, srv, ln)
}

// Serve is ListenAndServe over an existing listener (tests and the example
// bind :0 first to learn their port).
func Serve(ctx context.Context, ln net.Listener, h http.Handler) error {
	return serve(ctx, NewHTTPServer("", h), ln)
}

func serve(ctx context.Context, srv *http.Server, ln net.Listener) error {
	// Handlers see a context that dies with ctx, so a drain cancels work
	// that would otherwise run past its client.
	srv.BaseContext = func(net.Listener) context.Context { return ctx }
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), DrainTimeout)
	defer cancel()
	err := srv.Shutdown(sctx)
	if serr := <-errc; err == nil && !errors.Is(serr, http.ErrServerClosed) {
		err = serr
	}
	return err
}

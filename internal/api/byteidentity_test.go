package api

// Byte-identity suite for the mmap read path: an advisor serving a
// snapshot straight off a mapped v2 segment must produce byte-for-byte the
// same advice rows, advice tables, SVG plots, and /api/v1/advice bodies as
// one that heap-loaded the same segment dir.

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hpcadvisor/internal/core"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/service"
	"hpcadvisor/internal/storage"
)

// identityPoint fabricates a datapoint with enough field variety that any
// column/row mismatch between the two load paths shows up in the output.
func identityPoint(i int) dataset.Point {
	apps := []string{"lammps", "openfoam", "gromacs"}
	skus := [][2]string{
		{"Standard_HB120rs_v3", "hb120v3"},
		{"Standard_HC44rs", "hc44"},
		{"Standard_F72s_v2", "f72"},
	}
	sku := skus[i%len(skus)]
	p := dataset.Point{
		ScenarioID:  fmt.Sprintf("run-%04d", i),
		AppName:     apps[i%len(apps)],
		SKU:         sku[0],
		SKUAlias:    sku[1],
		NNodes:      1 << (i % 4),
		PPN:         16,
		InputDesc:   fmt.Sprintf("BOXFACTOR=%d", 10+i%3),
		ExecTimeSec: 250.0/float64(1+i%9) + float64(i%7),
		CostUSD:     0.1 * float64(1+i%11),
		CollectedAt: float64(1000 + i),
	}
	if i%13 == 12 {
		p.Failed = true
		p.Error = "simulated failure"
	}
	return p
}

// segmentAdvisor loads the compacted segment dir into an advisor, heap- or
// mmap-served.
func segmentAdvisor(t *testing.T, dir string, noMmap bool) *core.Advisor {
	t.Helper()
	var opts *storage.SegmentOptions
	if noMmap {
		opts = &storage.SegmentOptions{NoMmap: true}
	}
	seg, err := storage.OpenSegments(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := seg.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	adv := core.New("identitysub")
	adv.SetStore(st)
	return adv
}

func TestMmapVsHeapServingByteIdentical(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data.seg")
	seg, err := storage.OpenSegments(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 160; i++ {
		if err := seg.Append(identityPoint(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seg.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := seg.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}

	mm := segmentAdvisor(t, dir, false)
	hp := segmentAdvisor(t, dir, true)

	filters := []dataset.Filter{
		{},
		{AppName: "lammps"},
		{AppName: "openfoam", SKU: "hc44"},
		{AppName: "gromacs", InputDesc: "BOXFACTOR=11"},
		{MinNodes: 2, MaxNodes: 8},
		{IncludeFailed: true},
	}
	for _, f := range filters {
		for _, order := range []pareto.SortOrder{pareto.ByTime, pareto.ByCost} {
			a, b := mm.Advice(f, order), hp.Advice(f, order)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("Advice(%+v, %v): mmap and heap rows differ", f, order)
			}
			ta, tb := mm.AdviceTable(f, order), hp.AdviceTable(f, order)
			if ta != tb {
				t.Fatalf("AdviceTable(%+v, %v): mmap and heap tables differ:\n%s\n--- vs ---\n%s",
					f, order, ta, tb)
			}
		}
	}

	// Plots render to identical SVG bytes.
	dirA, dirB := t.TempDir(), t.TempDir()
	pathsA, err := mm.WritePlotsSVG(dirA, dataset.Filter{AppName: "lammps"})
	if err != nil {
		t.Fatal(err)
	}
	pathsB, err := hp.WritePlotsSVG(dirB, dataset.Filter{AppName: "lammps"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pathsA) == 0 || len(pathsA) != len(pathsB) {
		t.Fatalf("plot sets differ in size: %d vs %d", len(pathsA), len(pathsB))
	}
	for i := range pathsA {
		a, err := os.ReadFile(pathsA[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pathsB[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("plot %s differs between mmap and heap serving", filepath.Base(pathsA[i]))
		}
	}

	// /api/v1/advice bodies (the hot stitched-JSON path included) are
	// byte-identical, and so are the generation-derived ETags.
	tsA := httptest.NewServer(New(service.New(mm)).Mux())
	defer tsA.Close()
	tsB := httptest.NewServer(New(service.New(hp)).Mux())
	defer tsB.Close()
	queries := []string{
		"/api/v1/advice",
		"/api/v1/advice?sort=cost",
		"/api/v1/advice?app=lammps",
		"/api/v1/advice?app=lammps&sort=cost",
		"/api/v1/advice?app=openfoam&sku=hc44",
		"/api/v1/advice?app=gromacs&input=BOXFACTOR%3D11",
		"/api/v1/advice?minnodes=2&maxnodes=8",
	}
	for _, q := range queries {
		respA, bodyA := get(t, tsA, q, nil)
		respB, bodyB := get(t, tsB, q, nil)
		if respA.StatusCode != 200 || respB.StatusCode != 200 {
			t.Fatalf("%s: status %d vs %d", q, respA.StatusCode, respB.StatusCode)
		}
		if bodyA != bodyB {
			t.Fatalf("%s: mmap and heap bodies differ:\n%s\n--- vs ---\n%s", q, bodyA, bodyB)
		}
		if ea, eb := respA.Header.Get("ETag"), respB.Header.Get("ETag"); ea != eb {
			t.Fatalf("%s: ETag %q vs %q (generation drift between load paths)", q, ea, eb)
		}
	}
}

package api

// Error-path table tests: every failure must come back as the typed JSON
// envelope {"error":{"status":...,"message":...}} with the status chosen
// by the service layer's error kind — and conditional-request parsing
// must degrade to a full response, never to an error.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func decodeErrorBody(t *testing.T, body string) errorBody {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil {
		t.Fatalf("response is not the JSON error envelope: %v\nbody: %s", err, body)
	}
	return eb
}

func TestErrorEnvelopeTable(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name       string
		path       string
		wantStatus int
		wantIn     string // substring of error.message
	}{
		{
			name:       "minnodes exceeds maxnodes",
			path:       "/api/v1/advice?minnodes=8&maxnodes=2",
			wantStatus: http.StatusBadRequest,
			wantIn:     "minnodes 8 exceeds maxnodes 2",
		},
		{
			name:       "non-integer node bound",
			path:       "/api/v1/advice?minnodes=lots",
			wantStatus: http.StatusBadRequest,
			wantIn:     `invalid minnodes "lots"`,
		},
		{
			name:       "unknown sort order",
			path:       "/api/v1/advice?sort=vibes",
			wantStatus: http.StatusBadRequest,
			wantIn:     "vibes",
		},
		{
			name:       "unknown plot name",
			path:       "/api/v1/plots/nonexistent.svg",
			wantStatus: http.StatusNotFound,
			wantIn:     "nonexistent",
		},
		{
			name:       "plot without svg suffix",
			path:       "/api/v1/plots/exectime",
			wantStatus: http.StatusNotFound,
			wantIn:     "exectime.svg",
		},
		{
			name:       "bad predict grid",
			path:       "/api/v1/predicted-advice?grid=0",
			wantStatus: http.StatusBadRequest,
			wantIn:     "grid",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := get(t, ts, tc.path, nil)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d\nbody: %s", resp.StatusCode, tc.wantStatus, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("error content-type %q, want application/json", ct)
			}
			eb := decodeErrorBody(t, body)
			if eb.Error.Status != tc.wantStatus {
				t.Fatalf("envelope status %d disagrees with HTTP status %d", eb.Error.Status, tc.wantStatus)
			}
			if !strings.Contains(eb.Error.Message, tc.wantIn) {
				t.Fatalf("error message %q does not mention %q", eb.Error.Message, tc.wantIn)
			}
		})
	}
}

// TestMalformedIfNoneMatch drives hostile and stale validators through the
// conditional-request path: none of them may 304 (serving nothing for a
// generation the client doesn't hold) or error — they fall through to a
// fresh 200 with the current ETag.
func TestMalformedIfNoneMatch(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, _ := get(t, ts, "/api/v1/advice", nil)
	current := resp.Header.Get("ETag")
	if current == "" {
		t.Fatal("advice response missing ETag")
	}

	for _, inm := range []string{
		"garbage",
		`"`,
		`""`,
		`"g`,
		"g1",           // unquoted — not the tag we serve
		`"g999999999"`, // stale generation
		`W/`,
		", , ,",
		`"g1" extra tokens`,
		strings.Repeat("x", 4096),
	} {
		resp, body := get(t, ts, "/api/v1/advice", map[string]string{"If-None-Match": inm})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("If-None-Match %q: status %d, want 200\nbody: %s", inm, resp.StatusCode, body)
		}
		if got := resp.Header.Get("ETag"); got != current {
			t.Fatalf("If-None-Match %q: ETag %q, want %q", inm, got, current)
		}
		if body == "" {
			t.Fatalf("If-None-Match %q: empty body on a 200", inm)
		}
	}

	// The well-formed validators still revalidate.
	for _, inm := range []string{current, "*", `W/` + current, `"other", ` + current} {
		resp, _ := get(t, ts, "/api/v1/advice", map[string]string{"If-None-Match": inm})
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status %d, want 304", inm, resp.StatusCode)
		}
	}
}

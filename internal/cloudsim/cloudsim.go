// Package cloudsim simulates the cloud control plane HPCAdvisor deploys
// into. It models the Azure Resource Manager surface the paper's back-end
// uses (Section III-B): subscriptions, resource groups, virtual networks and
// subnets, storage accounts, batch accounts, jumpbox VMs, and vnet peering —
// with provisioning latencies on a virtual clock, per-family core quotas,
// regional SKU availability, and injectable faults.
//
// The simulator deliberately enforces the same ordering constraints the real
// control plane does (a subnet needs a vnet, a batch account needs a storage
// account, a jumpbox needs a subnet) so the deployment logic in
// internal/deploy is exercised realistically.
package cloudsim

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"time"

	"hpcadvisor/internal/catalog"
	"hpcadvisor/internal/vclock"
)

// Provisioning latencies charged against the virtual clock.
const (
	latResourceGroup  = 2 * time.Second
	latVNet           = 8 * time.Second
	latSubnet         = 3 * time.Second
	latStorageAccount = 35 * time.Second
	latBatchAccount   = 70 * time.Second
	latJumpbox        = 95 * time.Second
	latPeering        = 12 * time.Second
)

// DefaultQuotaCores is the per-family, per-region core quota granted to new
// subscriptions.
const DefaultQuotaCores = 10000

// Error kinds mirror the control-plane failure classes deployment code must
// handle.
var (
	ErrNotFound      = fmt.Errorf("cloudsim: not found")
	ErrAlreadyExists = fmt.Errorf("cloudsim: already exists")
	ErrQuotaExceeded = fmt.Errorf("cloudsim: quota exceeded")
	ErrRegion        = fmt.Errorf("cloudsim: not available in region")
	ErrInvalidName   = fmt.Errorf("cloudsim: invalid name")
	ErrDependency    = fmt.Errorf("cloudsim: missing dependency")
	// Transient control-plane failures: the operation may succeed if
	// simply retried after a delay.
	ErrThrottled   = fmt.Errorf("cloudsim: request throttled")
	ErrUnavailable = fmt.Errorf("cloudsim: service temporarily unavailable")
	// ErrCapacity is an allocation failure: the region/family has no
	// machines to give right now, regardless of quota. Distinct from
	// ErrQuotaExceeded — capacity can come back, quota will not.
	ErrCapacity = fmt.Errorf("cloudsim: insufficient capacity")
)

// Cloud is the simulated control plane. Create one per simulation; all
// methods are driven by (and advance) the shared virtual clock.
type Cloud struct {
	Clock   *vclock.Clock
	Catalog *catalog.Catalog

	subs   map[string]*Subscription
	faults map[string][]error // operation name -> queue of errors to inject
	// storage account names are globally unique across subscriptions
	storageNames map[string]bool
}

// New creates a cloud with one subscription of the given ID.
func New(clock *vclock.Clock, cat *catalog.Catalog, subscriptionID string) *Cloud {
	c := &Cloud{
		Clock:        clock,
		Catalog:      cat,
		subs:         make(map[string]*Subscription),
		faults:       make(map[string][]error),
		storageNames: make(map[string]bool),
	}
	c.AddSubscription(subscriptionID)
	return c
}

// AddSubscription registers another subscription.
func (c *Cloud) AddSubscription(id string) *Subscription {
	s := &Subscription{
		ID:       id,
		groups:   make(map[string]*ResourceGroup),
		quota:    make(map[string]int),
		usage:    make(map[string]int),
		capacity: make(map[string]int),
	}
	c.subs[id] = s
	return s
}

// Replica creates a detached control-plane replica for one resource group:
// a new Cloud on the given (typically private) virtual clock, carrying a
// copy of the subscription's quota table and current usage plus a resource
// group of the same name and region. Replication is instantaneous — no
// provisioning latency is charged — because the replica models resources
// that already exist.
//
// Replicas are how concurrent collection lanes each get an isolated
// simulation substrate: every lane advances its own clock and reserves
// cores against its own quota copy, so lanes never contend on shared maps
// and outcomes stay independent of lane interleaving. Quota behavior
// matches the sequential collector, which fully releases one pool's cores
// before the next pool grows.
func (c *Cloud) Replica(clock *vclock.Clock, subID, rgName string) (*Cloud, error) {
	sub, err := c.Subscription(subID)
	if err != nil {
		return nil, err
	}
	rg, err := c.ResourceGroup(subID, rgName)
	if err != nil {
		return nil, err
	}
	r := &Cloud{
		Clock:        clock,
		Catalog:      c.Catalog,
		subs:         make(map[string]*Subscription),
		faults:       make(map[string][]error),
		storageNames: make(map[string]bool),
	}
	rsub := r.AddSubscription(subID)
	for k, v := range sub.quota {
		rsub.quota[k] = v
	}
	for k, v := range sub.usage {
		rsub.usage[k] = v
	}
	// Capacity faults are keyed per region/family, so copying them keeps a
	// capacity-dead SKU dead in every lane — concurrent collection sees
	// the same allocation failures the sequential walk would.
	for k, v := range sub.capacity {
		rsub.capacity[k] = v
	}
	rsub.groups[rgName] = &ResourceGroup{
		Name: rgName, Region: rg.Region, CreatedAt: clock.Now(),
		vnets:    make(map[string]*VNet),
		storage:  make(map[string]*StorageAccount),
		batch:    make(map[string]*BatchAccount),
		vms:      make(map[string]*VM),
		peerings: make(map[string]*Peering),
	}
	return r, nil
}

// Subscription resolves a subscription by ID.
func (c *Cloud) Subscription(id string) (*Subscription, error) {
	if s, ok := c.subs[id]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("%w: subscription %q", ErrNotFound, id)
}

// InjectFault arranges for the next call of the named operation
// ("CreateResourceGroup", "CreatePool", "ResizePool", ...) to fail with
// err. Repeated calls queue: each injected error fails exactly one call,
// in injection order. Fault queues live on this Cloud only — Replica does
// not copy them, so a storm injected on the parent never leaks into
// concurrent collection lanes.
func (c *Cloud) InjectFault(op string, err error) { c.faults[op] = append(c.faults[op], err) }

// InjectFaults queues several errors for op in one call — a fault storm.
func (c *Cloud) InjectFaults(op string, errs ...error) {
	c.faults[op] = append(c.faults[op], errs...)
}

// TakeFault pops the next injected error for op, or nil. Exported so
// higher simulation layers (batchsim's pool operations) can consult the
// same fault plan as the control plane's own operations.
func (c *Cloud) TakeFault(op string) error {
	q := c.faults[op]
	if len(q) == 0 {
		return nil
	}
	err := q[0]
	if len(q) == 1 {
		delete(c.faults, op)
	} else {
		c.faults[op] = q[1:]
	}
	return err
}

// Subscription owns resource groups and quota.
type Subscription struct {
	ID     string
	groups map[string]*ResourceGroup
	quota  map[string]int // "region/family" -> cores
	usage  map[string]int
	// capacity holds injected allocation-failure plans per
	// "region/family": n > 0 fails the next n reservations, n < 0 fails
	// every reservation (a capacity-dead SKU family).
	capacity map[string]int
}

func quotaKey(region, family string) string { return region + "/" + family }

// SetQuota overrides the core quota for a family in a region.
func (s *Subscription) SetQuota(region, family string, cores int) {
	s.quota[quotaKey(region, family)] = cores
}

// QuotaRemaining reports unreserved cores for a family in a region.
func (s *Subscription) QuotaRemaining(region, family string) int {
	k := quotaKey(region, family)
	q, ok := s.quota[k]
	if !ok {
		q = DefaultQuotaCores
	}
	return q - s.usage[k]
}

// FailCapacity injects allocation failures for a family in a region: the
// next n ReserveCores calls fail with ErrCapacity (n < 0 means every call
// fails — the family is capacity-dead). Capacity is checked before quota,
// mirroring real allocators where a region can be out of machines with
// quota to spare.
func (s *Subscription) FailCapacity(region, family string, n int) {
	s.capacity[quotaKey(region, family)] = n
}

// ReserveCores claims quota; callers must release it when nodes are freed.
func (s *Subscription) ReserveCores(region, family string, cores int) error {
	if cores <= 0 {
		return nil
	}
	if n := s.capacity[quotaKey(region, family)]; n != 0 {
		if n > 0 {
			s.capacity[quotaKey(region, family)] = n - 1
		}
		return fmt.Errorf("%w: allocation of %d cores failed for %s in %s",
			ErrCapacity, cores, family, region)
	}
	if s.QuotaRemaining(region, family) < cores {
		return fmt.Errorf("%w: %d cores requested, %d remaining for %s in %s",
			ErrQuotaExceeded, cores, s.QuotaRemaining(region, family), family, region)
	}
	s.usage[quotaKey(region, family)] += cores
	return nil
}

// ReleaseCores returns quota.
func (s *Subscription) ReleaseCores(region, family string, cores int) {
	k := quotaKey(region, family)
	s.usage[k] -= cores
	if s.usage[k] < 0 {
		s.usage[k] = 0
	}
}

// ResourceGroup is the container for all deployment resources.
type ResourceGroup struct {
	Name      string
	Region    string
	CreatedAt time.Duration

	vnets    map[string]*VNet
	storage  map[string]*StorageAccount
	batch    map[string]*BatchAccount
	vms      map[string]*VM
	peerings map[string]*Peering
}

// VNet is a virtual network with subnets.
type VNet struct {
	Name    string
	CIDR    string
	subnets map[string]*Subnet
}

// Subnet is an address-space slice of a vnet.
type Subnet struct {
	Name string
	CIDR string
}

// StorageAccount holds batch artifacts and the NFS share.
type StorageAccount struct {
	Name string
	// Files is a simple path -> content store standing in for blob/NFS.
	Files map[string][]byte
}

// BatchAccount anchors the batch service; pools are managed by batchsim.
type BatchAccount struct {
	Name           string
	StorageAccount string
}

// VM is a standalone virtual machine (the optional jumpbox).
type VM struct {
	Name      string
	SKU       string
	Subnet    string
	PrivateIP string
}

// Peering links two vnets (e.g. the deployment vnet to a user's VPN vnet).
type Peering struct {
	Name       string
	LocalVNet  string
	RemoteRG   string
	RemoteVNet string
}

var rgNameRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,90}$`)
var storageNameRE = regexp.MustCompile(`^[a-z0-9]{3,24}$`)

// CreateResourceGroup provisions a resource group in region.
func (c *Cloud) CreateResourceGroup(subID, name, region string) (*ResourceGroup, error) {
	if err := c.TakeFault("CreateResourceGroup"); err != nil {
		return nil, err
	}
	sub, err := c.Subscription(subID)
	if err != nil {
		return nil, err
	}
	if !rgNameRE.MatchString(name) {
		return nil, fmt.Errorf("%w: resource group %q", ErrInvalidName, name)
	}
	if _, ok := sub.groups[name]; ok {
		return nil, fmt.Errorf("%w: resource group %q", ErrAlreadyExists, name)
	}
	c.Clock.Advance(latResourceGroup)
	rg := &ResourceGroup{
		Name: name, Region: region, CreatedAt: c.Clock.Now(),
		vnets:    make(map[string]*VNet),
		storage:  make(map[string]*StorageAccount),
		batch:    make(map[string]*BatchAccount),
		vms:      make(map[string]*VM),
		peerings: make(map[string]*Peering),
	}
	sub.groups[name] = rg
	return rg, nil
}

// ResourceGroup resolves a group by name.
func (c *Cloud) ResourceGroup(subID, name string) (*ResourceGroup, error) {
	sub, err := c.Subscription(subID)
	if err != nil {
		return nil, err
	}
	if rg, ok := sub.groups[name]; ok {
		return rg, nil
	}
	return nil, fmt.Errorf("%w: resource group %q", ErrNotFound, name)
}

// ListResourceGroups returns group names with the given prefix, sorted.
func (c *Cloud) ListResourceGroups(subID, prefix string) ([]string, error) {
	sub, err := c.Subscription(subID)
	if err != nil {
		return nil, err
	}
	var out []string
	for name := range sub.groups {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// DeleteResourceGroup removes the group and everything in it (cascade), the
// operation behind the paper's "shutdown" command.
func (c *Cloud) DeleteResourceGroup(subID, name string) error {
	if err := c.TakeFault("DeleteResourceGroup"); err != nil {
		return err
	}
	sub, err := c.Subscription(subID)
	if err != nil {
		return err
	}
	rg, ok := sub.groups[name]
	if !ok {
		return fmt.Errorf("%w: resource group %q", ErrNotFound, name)
	}
	// Deleting a group takes time proportional to its contents.
	n := len(rg.vnets) + len(rg.storage) + len(rg.batch) + len(rg.vms) + len(rg.peerings)
	c.Clock.Advance(time.Duration(n+1) * 10 * time.Second)
	for name := range rg.storage {
		delete(c.storageNames, name)
	}
	delete(sub.groups, name)
	return nil
}

// CreateVNet provisions a virtual network in the group.
func (c *Cloud) CreateVNet(subID, rgName, name, cidr string) (*VNet, error) {
	if err := c.TakeFault("CreateVNet"); err != nil {
		return nil, err
	}
	rg, err := c.ResourceGroup(subID, rgName)
	if err != nil {
		return nil, err
	}
	if _, ok := rg.vnets[name]; ok {
		return nil, fmt.Errorf("%w: vnet %q", ErrAlreadyExists, name)
	}
	c.Clock.Advance(latVNet)
	v := &VNet{Name: name, CIDR: cidr, subnets: make(map[string]*Subnet)}
	rg.vnets[name] = v
	return v, nil
}

// CreateSubnet provisions a subnet inside an existing vnet.
func (c *Cloud) CreateSubnet(subID, rgName, vnetName, name, cidr string) (*Subnet, error) {
	if err := c.TakeFault("CreateSubnet"); err != nil {
		return nil, err
	}
	rg, err := c.ResourceGroup(subID, rgName)
	if err != nil {
		return nil, err
	}
	v, ok := rg.vnets[vnetName]
	if !ok {
		return nil, fmt.Errorf("%w: vnet %q required for subnet", ErrDependency, vnetName)
	}
	if _, ok := v.subnets[name]; ok {
		return nil, fmt.Errorf("%w: subnet %q", ErrAlreadyExists, name)
	}
	c.Clock.Advance(latSubnet)
	s := &Subnet{Name: name, CIDR: cidr}
	v.subnets[name] = s
	return s, nil
}

// CreateStorageAccount provisions a storage account. Names are globally
// unique, 3-24 lowercase alphanumerics, as in the real control plane.
func (c *Cloud) CreateStorageAccount(subID, rgName, name string) (*StorageAccount, error) {
	if err := c.TakeFault("CreateStorageAccount"); err != nil {
		return nil, err
	}
	rg, err := c.ResourceGroup(subID, rgName)
	if err != nil {
		return nil, err
	}
	if !storageNameRE.MatchString(name) {
		return nil, fmt.Errorf("%w: storage account %q (need 3-24 lowercase alphanumerics)", ErrInvalidName, name)
	}
	if c.storageNames[name] {
		return nil, fmt.Errorf("%w: storage account %q (global namespace)", ErrAlreadyExists, name)
	}
	c.Clock.Advance(latStorageAccount)
	sa := &StorageAccount{Name: name, Files: make(map[string][]byte)}
	rg.storage[name] = sa
	c.storageNames[name] = true
	return sa, nil
}

// CreateBatchAccount provisions the batch service anchor; it requires an
// existing storage account in the same group.
func (c *Cloud) CreateBatchAccount(subID, rgName, name, storageName string) (*BatchAccount, error) {
	if err := c.TakeFault("CreateBatchAccount"); err != nil {
		return nil, err
	}
	rg, err := c.ResourceGroup(subID, rgName)
	if err != nil {
		return nil, err
	}
	if _, ok := rg.storage[storageName]; !ok {
		return nil, fmt.Errorf("%w: storage account %q required for batch account", ErrDependency, storageName)
	}
	if _, ok := rg.batch[name]; ok {
		return nil, fmt.Errorf("%w: batch account %q", ErrAlreadyExists, name)
	}
	c.Clock.Advance(latBatchAccount)
	ba := &BatchAccount{Name: name, StorageAccount: storageName}
	rg.batch[name] = ba
	return ba, nil
}

// CreateJumpbox provisions the optional jumpbox VM on a subnet.
func (c *Cloud) CreateJumpbox(subID, rgName, name, vnetName, subnetName, sku string) (*VM, error) {
	if err := c.TakeFault("CreateJumpbox"); err != nil {
		return nil, err
	}
	rg, err := c.ResourceGroup(subID, rgName)
	if err != nil {
		return nil, err
	}
	v, ok := rg.vnets[vnetName]
	if !ok {
		return nil, fmt.Errorf("%w: vnet %q required for VM", ErrDependency, vnetName)
	}
	if _, ok := v.subnets[subnetName]; !ok {
		return nil, fmt.Errorf("%w: subnet %q required for VM", ErrDependency, subnetName)
	}
	if _, ok := rg.vms[name]; ok {
		return nil, fmt.Errorf("%w: VM %q", ErrAlreadyExists, name)
	}
	if s, err := c.Catalog.Lookup(sku); err != nil {
		return nil, err
	} else if !s.AvailableIn(rg.Region) {
		return nil, fmt.Errorf("%w: %s in %s", ErrRegion, sku, rg.Region)
	}
	c.Clock.Advance(latJumpbox)
	vm := &VM{
		Name: name, SKU: sku, Subnet: subnetName,
		PrivateIP: fmt.Sprintf("10.0.0.%d", 4+len(rg.vms)),
	}
	rg.vms[name] = vm
	return vm, nil
}

// PeerVNets links a local vnet to a remote one (the paper's optional VPN
// peering).
func (c *Cloud) PeerVNets(subID, rgName, localVNet, remoteRG, remoteVNet string) (*Peering, error) {
	if err := c.TakeFault("PeerVNets"); err != nil {
		return nil, err
	}
	rg, err := c.ResourceGroup(subID, rgName)
	if err != nil {
		return nil, err
	}
	if _, ok := rg.vnets[localVNet]; !ok {
		return nil, fmt.Errorf("%w: local vnet %q", ErrDependency, localVNet)
	}
	remote, err := c.ResourceGroup(subID, remoteRG)
	if err != nil {
		return nil, fmt.Errorf("%w: remote resource group %q", ErrDependency, remoteRG)
	}
	if _, ok := remote.vnets[remoteVNet]; !ok {
		return nil, fmt.Errorf("%w: remote vnet %q", ErrDependency, remoteVNet)
	}
	name := localVNet + "-to-" + remoteVNet
	if _, ok := rg.peerings[name]; ok {
		return nil, fmt.Errorf("%w: peering %q", ErrAlreadyExists, name)
	}
	c.Clock.Advance(latPeering)
	p := &Peering{Name: name, LocalVNet: localVNet, RemoteRG: remoteRG, RemoteVNet: remoteVNet}
	rg.peerings[name] = p
	return p, nil
}

// ValidateSKUForPool checks regional availability and quota for a pool of
// nodes x sku; batchsim calls this before provisioning nodes.
func (c *Cloud) ValidateSKUForPool(subID, rgName, skuName string, nodes int) (catalog.SKU, error) {
	rg, err := c.ResourceGroup(subID, rgName)
	if err != nil {
		return catalog.SKU{}, err
	}
	sku, err := c.Catalog.Lookup(skuName)
	if err != nil {
		return catalog.SKU{}, err
	}
	if !sku.AvailableIn(rg.Region) {
		return catalog.SKU{}, fmt.Errorf("%w: %s in %s", ErrRegion, sku.Name, rg.Region)
	}
	return sku, nil
}

// Inventory summarizes a resource group for "deploy list" output.
type Inventory struct {
	Name, Region                        string
	VNets, Subnets, Storage, Batch, VMs int
	Peerings                            int
	StorageAccountNames, BatchAccounts  []string
	JumpboxNames                        []string
}

// Inventory returns a summary of the group's contents.
func (rg *ResourceGroup) Inventory() Inventory {
	inv := Inventory{Name: rg.Name, Region: rg.Region}
	inv.VNets = len(rg.vnets)
	for _, v := range rg.vnets {
		inv.Subnets += len(v.subnets)
	}
	inv.Storage = len(rg.storage)
	inv.Batch = len(rg.batch)
	inv.VMs = len(rg.vms)
	inv.Peerings = len(rg.peerings)
	for n := range rg.storage {
		inv.StorageAccountNames = append(inv.StorageAccountNames, n)
	}
	for n := range rg.batch {
		inv.BatchAccounts = append(inv.BatchAccounts, n)
	}
	for n := range rg.vms {
		inv.JumpboxNames = append(inv.JumpboxNames, n)
	}
	sort.Strings(inv.StorageAccountNames)
	sort.Strings(inv.BatchAccounts)
	sort.Strings(inv.JumpboxNames)
	return inv
}

// VNetNames lists the group's vnets, sorted.
func (rg *ResourceGroup) VNetNames() []string {
	out := make([]string, 0, len(rg.vnets))
	for n := range rg.vnets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Storage returns a storage account in the group.
func (rg *ResourceGroup) Storage(name string) (*StorageAccount, error) {
	if sa, ok := rg.storage[name]; ok {
		return sa, nil
	}
	return nil, fmt.Errorf("%w: storage account %q", ErrNotFound, name)
}

package cloudsim

import (
	"errors"
	"fmt"
	"testing"

	"hpcadvisor/internal/catalog"
	"hpcadvisor/internal/vclock"
)

func newCloud() *Cloud {
	return New(vclock.New(), catalog.Default(), "sub1")
}

// deployLandingZone performs the paper's Section III-B provisioning
// sequence: resource group -> vnet + subnet -> storage -> batch.
func deployLandingZone(t *testing.T, c *Cloud, rg string) {
	t.Helper()
	if _, err := c.CreateResourceGroup("sub1", rg, "southcentralus"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateVNet("sub1", rg, "vnet1", "10.0.0.0/16"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSubnet("sub1", rg, "vnet1", "compute", "10.0.0.0/20"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateStorageAccount("sub1", rg, "hpcadvstore1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateBatchAccount("sub1", rg, "batch1", "hpcadvstore1"); err != nil {
		t.Fatal(err)
	}
}

func TestSectionIIIBDeploymentSequence(t *testing.T) {
	c := newCloud()
	before := c.Clock.Now()
	deployLandingZone(t, c, "hpcadvisortest1")
	if c.Clock.Now() <= before {
		t.Error("provisioning should consume virtual time")
	}
	rg, err := c.ResourceGroup("sub1", "hpcadvisortest1")
	if err != nil {
		t.Fatal(err)
	}
	inv := rg.Inventory()
	if inv.VNets != 1 || inv.Subnets != 1 || inv.Storage != 1 || inv.Batch != 1 {
		t.Errorf("inventory = %+v", inv)
	}
}

func TestOrderingConstraints(t *testing.T) {
	c := newCloud()
	if _, err := c.CreateResourceGroup("sub1", "rg1", "eastus"); err != nil {
		t.Fatal(err)
	}
	// Subnet before vnet fails.
	if _, err := c.CreateSubnet("sub1", "rg1", "missing", "s", "10.0.0.0/24"); !errors.Is(err, ErrDependency) {
		t.Errorf("subnet without vnet: %v", err)
	}
	// Batch account before storage fails.
	if _, err := c.CreateBatchAccount("sub1", "rg1", "b", "missing"); !errors.Is(err, ErrDependency) {
		t.Errorf("batch without storage: %v", err)
	}
	// Jumpbox before subnet fails.
	if _, err := c.CreateVNet("sub1", "rg1", "v", "10.0.0.0/16"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateJumpbox("sub1", "rg1", "jb", "v", "missing", "Standard_D64s_v5"); !errors.Is(err, ErrDependency) {
		t.Errorf("jumpbox without subnet: %v", err)
	}
}

func TestJumpboxCreation(t *testing.T) {
	c := newCloud()
	deployLandingZone(t, c, "rg1")
	vm, err := c.CreateJumpbox("sub1", "rg1", "jumpbox", "vnet1", "compute", "Standard_D64s_v5")
	if err != nil {
		t.Fatal(err)
	}
	if vm.PrivateIP == "" {
		t.Error("jumpbox needs a private IP")
	}
	// Unknown SKU rejected.
	if _, err := c.CreateJumpbox("sub1", "rg1", "jb2", "vnet1", "compute", "Standard_Bogus"); err == nil {
		t.Error("bogus SKU should fail")
	}
}

func TestRegionAvailabilityEnforced(t *testing.T) {
	c := newCloud()
	// westus2 has no InfiniBand SKUs in the simulation.
	if _, err := c.CreateResourceGroup("sub1", "rgw", "westus2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ValidateSKUForPool("sub1", "rgw", "Standard_HB120rs_v3", 2); !errors.Is(err, ErrRegion) {
		t.Errorf("HB in westus2: %v", err)
	}
	if _, err := c.ValidateSKUForPool("sub1", "rgw", "Standard_D64s_v5", 2); err != nil {
		t.Errorf("D64s in westus2 should work: %v", err)
	}
}

func TestNameCollisions(t *testing.T) {
	c := newCloud()
	deployLandingZone(t, c, "rg1")
	if _, err := c.CreateResourceGroup("sub1", "rg1", "eastus"); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("dup rg: %v", err)
	}
	if _, err := c.CreateVNet("sub1", "rg1", "vnet1", "10.1.0.0/16"); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("dup vnet: %v", err)
	}
	// Storage names are globally unique even across groups.
	if _, err := c.CreateResourceGroup("sub1", "rg2", "eastus"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateStorageAccount("sub1", "rg2", "hpcadvstore1"); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("dup storage name: %v", err)
	}
}

func TestStorageNameValidation(t *testing.T) {
	c := newCloud()
	if _, err := c.CreateResourceGroup("sub1", "rg1", "eastus"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"UPPER", "ab", "has-dash", "waytoolongname0123456789x"} {
		if _, err := c.CreateStorageAccount("sub1", "rg1", bad); !errors.Is(err, ErrInvalidName) {
			t.Errorf("storage name %q: %v", bad, err)
		}
	}
}

func TestListAndDeleteResourceGroups(t *testing.T) {
	c := newCloud()
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("hpcadvisor%d", i)
		if _, err := c.CreateResourceGroup("sub1", name, "eastus"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CreateResourceGroup("sub1", "other", "eastus"); err != nil {
		t.Fatal(err)
	}
	got, err := c.ListResourceGroups("sub1", "hpcadvisor")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("list = %v", got)
	}
	if err := c.DeleteResourceGroup("sub1", "hpcadvisor1"); err != nil {
		t.Fatal(err)
	}
	got, _ = c.ListResourceGroups("sub1", "hpcadvisor")
	if len(got) != 2 {
		t.Fatalf("after delete: %v", got)
	}
	if err := c.DeleteResourceGroup("sub1", "hpcadvisor1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestDeleteReleasesGlobalStorageName(t *testing.T) {
	c := newCloud()
	deployLandingZone(t, c, "rg1")
	if err := c.DeleteResourceGroup("sub1", "rg1"); err != nil {
		t.Fatal(err)
	}
	// The name can be reused after cascade delete.
	if _, err := c.CreateResourceGroup("sub1", "rg2", "eastus"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateStorageAccount("sub1", "rg2", "hpcadvstore1"); err != nil {
		t.Errorf("name should be free again: %v", err)
	}
}

func TestQuotaReserveRelease(t *testing.T) {
	c := newCloud()
	sub, _ := c.Subscription("sub1")
	sub.SetQuota("eastus", "HBv3", 500)
	if err := sub.ReserveCores("eastus", "HBv3", 480); err != nil {
		t.Fatal(err)
	}
	if err := sub.ReserveCores("eastus", "HBv3", 120); !errors.Is(err, ErrQuotaExceeded) {
		t.Errorf("over-quota reserve: %v", err)
	}
	sub.ReleaseCores("eastus", "HBv3", 480)
	if got := sub.QuotaRemaining("eastus", "HBv3"); got != 500 {
		t.Errorf("remaining = %d, want 500", got)
	}
	// Defaults apply to unset (region, family).
	if got := sub.QuotaRemaining("westeurope", "HC"); got != DefaultQuotaCores {
		t.Errorf("default quota = %d", got)
	}
	// Releasing more than reserved clamps at zero usage.
	sub.ReleaseCores("eastus", "HBv3", 99999)
	if got := sub.QuotaRemaining("eastus", "HBv3"); got != 500 {
		t.Errorf("clamped remaining = %d", got)
	}
}

func TestPeering(t *testing.T) {
	c := newCloud()
	deployLandingZone(t, c, "rg1")
	// The user's VPN lives in its own group/vnet, per the paper's optional
	// parameters.
	if _, err := c.CreateResourceGroup("sub1", "vpnrg", "southcentralus"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateVNet("sub1", "vpnrg", "vpnvnet", "10.9.0.0/16"); err != nil {
		t.Fatal(err)
	}
	p, err := c.PeerVNets("sub1", "rg1", "vnet1", "vpnrg", "vpnvnet")
	if err != nil {
		t.Fatal(err)
	}
	if p.RemoteVNet != "vpnvnet" {
		t.Errorf("peering = %+v", p)
	}
	// Missing remote vnet fails with a dependency error.
	if _, err := c.PeerVNets("sub1", "rg1", "vnet1", "vpnrg", "missing"); !errors.Is(err, ErrDependency) {
		t.Errorf("peer to missing vnet: %v", err)
	}
	if _, err := c.PeerVNets("sub1", "rg1", "vnet1", "vpnrg", "vpnvnet"); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("dup peering: %v", err)
	}
}

func TestFaultInjection(t *testing.T) {
	c := newCloud()
	boom := errors.New("transient control plane error")
	c.InjectFault("CreateResourceGroup", boom)
	if _, err := c.CreateResourceGroup("sub1", "rg1", "eastus"); !errors.Is(err, boom) {
		t.Errorf("fault not injected: %v", err)
	}
	// Fault fires once; retry succeeds.
	if _, err := c.CreateResourceGroup("sub1", "rg1", "eastus"); err != nil {
		t.Errorf("retry should succeed: %v", err)
	}
}

func TestUnknownSubscription(t *testing.T) {
	c := newCloud()
	if _, err := c.CreateResourceGroup("nope", "rg", "eastus"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown subscription: %v", err)
	}
	if _, err := c.ListResourceGroups("nope", ""); !errors.Is(err, ErrNotFound) {
		t.Errorf("list unknown subscription: %v", err)
	}
}

func TestStorageFilesRoundTrip(t *testing.T) {
	c := newCloud()
	deployLandingZone(t, c, "rg1")
	rg, _ := c.ResourceGroup("sub1", "rg1")
	sa, err := rg.Storage("hpcadvstore1")
	if err != nil {
		t.Fatal(err)
	}
	sa.Files["tasks/list.json"] = []byte(`[]`)
	if string(sa.Files["tasks/list.json"]) != "[]" {
		t.Error("file store broken")
	}
	if _, err := rg.Storage("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing storage: %v", err)
	}
}

// Package regression provides the curve-fitting primitives behind the
// paper's "fixed performance factor" optimization (Section III-F): simple
// regression over already-collected scenarios predicts the execution time of
// scenarios not yet run, so the sampler can decide which ones are worth the
// cloud spend. Three families are provided — ordinary least squares, a
// log-log power law, and an Amdahl strong-scaling model — plus goodness-of-
// fit measures.
package regression

import (
	"fmt"
	"math"
)

// ErrInsufficientData is returned when a fit has too few or degenerate
// points.
var ErrInsufficientData = fmt.Errorf("regression: insufficient or degenerate data")

// Linear fits y = slope*x + intercept by ordinary least squares.
func Linear(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, ErrInsufficientData
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return 0, 0, ErrInsufficientData
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}

// PowerLaw is y = A * x^B.
type PowerLaw struct {
	A float64
	B float64
}

// FitPowerLaw fits a power law through (x, y) pairs with positive values by
// linear regression in log-log space. For strong scaling, B near -1 means
// ideal scaling; B in (-1, 0) is sub-linear; B < -1 is super-linear.
func FitPowerLaw(xs, ys []float64) (PowerLaw, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return PowerLaw{}, ErrInsufficientData
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return PowerLaw{}, fmt.Errorf("%w: power law needs positive values", ErrInsufficientData)
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	b, lna, err := Linear(lx, ly)
	if err != nil {
		return PowerLaw{}, err
	}
	return PowerLaw{A: math.Exp(lna), B: b}, nil
}

// Predict evaluates the power law at x.
func (p PowerLaw) Predict(x float64) float64 { return p.A * math.Pow(x, p.B) }

// Amdahl is the strong-scaling law T(n) = T1 * (Serial + (1-Serial)/n):
// a Serial fraction of the single-node time does not parallelize.
type Amdahl struct {
	T1     float64
	Serial float64
}

// FitAmdahl fits the Amdahl model to (nodes, time) points. For each
// candidate serial fraction on a fine grid, the optimal T1 has a closed
// form; the best (s, T1) pair by squared error wins.
func FitAmdahl(nodes []int, times []float64) (Amdahl, error) {
	if len(nodes) != len(times) || len(nodes) < 2 {
		return Amdahl{}, ErrInsufficientData
	}
	for i := range nodes {
		if nodes[i] < 1 || times[i] <= 0 {
			return Amdahl{}, fmt.Errorf("%w: amdahl needs n >= 1 and positive times", ErrInsufficientData)
		}
	}
	best := Amdahl{}
	bestErr := math.Inf(1)
	// Integer-indexed grid: accumulating s += 0.001 drifts (0.001 has no
	// exact binary representation) and the loop exits before ever evaluating
	// s = 1.0, so fully serial workloads could not fit exactly.
	for i := 0; i <= 1000; i++ {
		s := float64(i) / 1000
		// T(n) = T1 * f(n) with f(n) = s + (1-s)/n. Least squares:
		// T1 = sum(y*f) / sum(f^2).
		var sf2, syf float64
		for i := range nodes {
			f := s + (1-s)/float64(nodes[i])
			sf2 += f * f
			syf += times[i] * f
		}
		if sf2 == 0 {
			continue
		}
		t1 := syf / sf2
		var sse float64
		for i := range nodes {
			f := s + (1-s)/float64(nodes[i])
			d := times[i] - t1*f
			sse += d * d
		}
		if sse < bestErr {
			bestErr = sse
			best = Amdahl{T1: t1, Serial: s}
		}
	}
	if math.IsInf(bestErr, 1) {
		return Amdahl{}, ErrInsufficientData
	}
	return best, nil
}

// Predict evaluates the Amdahl model at n nodes.
func (a Amdahl) Predict(n int) float64 {
	if n < 1 {
		return math.NaN()
	}
	return a.T1 * (a.Serial + (1-a.Serial)/float64(n))
}

// MaxSpeedup is the Amdahl asymptote 1/Serial (infinite for a fully
// parallel code).
func (a Amdahl) MaxSpeedup() float64 {
	if a.Serial <= 0 {
		return math.Inf(1)
	}
	return 1 / a.Serial
}

// RSquared computes the coefficient of determination of predictions against
// observations. 1 is a perfect fit; values near or below 0 mean the model
// explains nothing.
func RSquared(obs, pred []float64) float64 {
	if len(obs) != len(pred) || len(obs) == 0 {
		return math.NaN()
	}
	var mean float64
	for _, y := range obs {
		mean += y
	}
	mean /= float64(len(obs))
	var ssTot, ssRes float64
	for i := range obs {
		ssTot += (obs[i] - mean) * (obs[i] - mean)
		ssRes += (obs[i] - pred[i]) * (obs[i] - pred[i])
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// MeanAbsPctError is the mean absolute percentage error of predictions, the
// metric EXPERIMENTS.md reports for the perf-factor strategy.
func MeanAbsPctError(obs, pred []float64) float64 {
	if len(obs) != len(pred) || len(obs) == 0 {
		return math.NaN()
	}
	var sum float64
	n := 0
	for i := range obs {
		if obs[i] == 0 {
			continue
		}
		sum += math.Abs((pred[i] - obs[i]) / obs[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n) * 100
}

package regression

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLinearRecoversKnownLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	slope, intercept, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(slope, 3, 1e-9) || !approx(intercept, 7, 1e-9) {
		t.Errorf("fit = %v, %v", slope, intercept)
	}
}

func TestLinearErrors(t *testing.T) {
	if _, _, err := Linear([]float64{1}, []float64{1}); err == nil {
		t.Error("one point should fail")
	}
	if _, _, err := Linear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	// Vertical data (all same x) is degenerate.
	if _, _, err := Linear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x should fail")
	}
}

func TestPowerLawRecoversStrongScaling(t *testing.T) {
	// Perfect strong scaling: T(n) = 1000 * n^-1.
	ns := []float64{1, 2, 4, 8, 16}
	ts := make([]float64, len(ns))
	for i, n := range ns {
		ts[i] = 1000 / n
	}
	fit, err := FitPowerLaw(ns, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.A, 1000, 1) || !approx(fit.B, -1, 1e-6) {
		t.Errorf("fit = %+v", fit)
	}
	if !approx(fit.Predict(32), 1000.0/32, 0.1) {
		t.Errorf("predict(32) = %v", fit.Predict(32))
	}
}

func TestPowerLawRejectsNonPositive(t *testing.T) {
	if _, err := FitPowerLaw([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("negative x should fail")
	}
	if _, err := FitPowerLaw([]float64{1, 2}, []float64{0, 2}); err == nil {
		t.Error("zero y should fail")
	}
}

func TestAmdahlRecoversKnownModel(t *testing.T) {
	// T1 = 960 s with a 5% serial fraction.
	truth := Amdahl{T1: 960, Serial: 0.05}
	nodes := []int{1, 2, 4, 8, 16}
	times := make([]float64, len(nodes))
	for i, n := range nodes {
		times[i] = truth.Predict(n)
	}
	fit, err := FitAmdahl(nodes, times)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Serial, 0.05, 0.002) {
		t.Errorf("serial = %v, want 0.05", fit.Serial)
	}
	if !approx(fit.T1, 960, 5) {
		t.Errorf("t1 = %v, want 960", fit.T1)
	}
	if !approx(fit.MaxSpeedup(), 20, 1) {
		t.Errorf("max speedup = %v, want 20", fit.MaxSpeedup())
	}
}

func TestAmdahlFullyParallel(t *testing.T) {
	nodes := []int{1, 2, 4, 8}
	times := []float64{800, 400, 200, 100}
	fit, err := FitAmdahl(nodes, times)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Serial > 0.005 {
		t.Errorf("serial = %v, want ~0", fit.Serial)
	}
	if !math.IsInf(Amdahl{T1: 100, Serial: 0}.MaxSpeedup(), 1) {
		t.Error("zero serial should have unbounded speedup")
	}
}

func TestAmdahlValidation(t *testing.T) {
	if _, err := FitAmdahl([]int{1}, []float64{10}); err == nil {
		t.Error("one point should fail")
	}
	if _, err := FitAmdahl([]int{0, 1}, []float64{10, 10}); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := FitAmdahl([]int{1, 2}, []float64{10, -1}); err == nil {
		t.Error("negative time should fail")
	}
	if !math.IsNaN((Amdahl{T1: 10}).Predict(0)) {
		t.Error("Predict(0) should be NaN")
	}
}

func TestRSquared(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	if r := RSquared(obs, obs); r != 1 {
		t.Errorf("perfect fit R² = %v", r)
	}
	// Mean-only predictions score zero.
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if r := RSquared(obs, mean); !approx(r, 0, 1e-9) {
		t.Errorf("mean fit R² = %v", r)
	}
	if !math.IsNaN(RSquared(nil, nil)) {
		t.Error("empty R² should be NaN")
	}
	// Constant observations with exact predictions are perfect.
	if r := RSquared([]float64{5, 5}, []float64{5, 5}); r != 1 {
		t.Errorf("constant perfect R² = %v", r)
	}
}

func TestMeanAbsPctError(t *testing.T) {
	obs := []float64{100, 200}
	pred := []float64{110, 180}
	// |10/100| and |20/200| -> mean 10%.
	if m := MeanAbsPctError(obs, pred); !approx(m, 10, 1e-9) {
		t.Errorf("MAPE = %v", m)
	}
	if !math.IsNaN(MeanAbsPctError(nil, nil)) {
		t.Error("empty MAPE should be NaN")
	}
	if !math.IsNaN(MeanAbsPctError([]float64{0}, []float64{1})) {
		t.Error("all-zero observations should be NaN")
	}
}

// Property: Amdahl fit on noiseless Amdahl data recovers the serial
// fraction within grid resolution.
func TestPropertyAmdahlRecovery(t *testing.T) {
	nodes := []int{1, 2, 3, 4, 6, 8, 12, 16}
	f := func(serialRaw, t1Raw uint8) bool {
		serial := float64(serialRaw%90) / 100 // 0 to 0.89
		t1 := 100 + float64(t1Raw)*10
		truth := Amdahl{T1: t1, Serial: serial}
		times := make([]float64, len(nodes))
		for i, n := range nodes {
			times[i] = truth.Predict(n)
		}
		fit, err := FitAmdahl(nodes, times)
		if err != nil {
			return false
		}
		return math.Abs(fit.Serial-serial) < 0.005 && math.Abs(fit.T1-t1)/t1 < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: power-law fit is exact on noiseless power-law data.
func TestPropertyPowerLawRecovery(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16, 32}
	f := func(aRaw, bRaw uint8) bool {
		a := 1 + float64(aRaw)
		b := -2 + float64(bRaw%40)/10 // -2 to +1.9
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a * math.Pow(x, b)
		}
		fit, err := FitPowerLaw(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.A-a)/a < 1e-6 && math.Abs(fit.B-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAmdahlFullySerialExact(t *testing.T) {
	// A workload that does not scale at all: T(n) is constant. The only
	// exact fit is Serial = 1.0 — which the pre-fix accumulating grid
	// (s += 0.001) never evaluated because of float drift.
	nodes := []int{1, 2, 4, 8}
	times := []float64{500, 500, 500, 500}
	fit, err := FitAmdahl(nodes, times)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Serial != 1.0 {
		t.Errorf("Serial = %v, want exactly 1.0", fit.Serial)
	}
	if !approx(fit.T1, 500, 1e-9) {
		t.Errorf("T1 = %v", fit.T1)
	}
	if fit.MaxSpeedup() != 1 {
		t.Errorf("MaxSpeedup = %v, want 1", fit.MaxSpeedup())
	}
	for _, n := range []int{1, 3, 64} {
		if !approx(fit.Predict(n), 500, 1e-9) {
			t.Errorf("Predict(%d) = %v, want 500", n, fit.Predict(n))
		}
	}
}

func TestAmdahlGridIsExhaustive(t *testing.T) {
	// Data generated at every extreme of the serial-fraction grid must be
	// recovered exactly, including both endpoints.
	for _, serial := range []float64{0, 0.001, 0.5, 0.999, 1.0} {
		nodes := []int{1, 2, 4, 8, 16}
		times := make([]float64, len(nodes))
		for i, n := range nodes {
			times[i] = 800 * (serial + (1-serial)/float64(n))
		}
		fit, err := FitAmdahl(nodes, times)
		if err != nil {
			t.Fatal(err)
		}
		if fit.Serial != serial {
			t.Errorf("serial %v: fit.Serial = %v", serial, fit.Serial)
		}
	}
}

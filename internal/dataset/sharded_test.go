package dataset

import (
	"fmt"
	"sync"
	"testing"
)

func TestShardedSnapshotOrderIsCreationOrder(t *testing.T) {
	s := NewSharded()
	// Create shards in a deliberate, non-alphabetical order.
	for _, sku := range []string{"hc44rs", "hb120rs_v3", "hb120rs_v2"} {
		s.Shard(sku)
	}
	// Fill them out of order.
	s.Shard("hb120rs_v2").Add(Point{ScenarioID: "b1", SKUAlias: "hb120rs_v2"})
	s.Shard("hc44rs").Add(Point{ScenarioID: "c1", SKUAlias: "hc44rs"})
	s.Shard("hc44rs").Add(Point{ScenarioID: "c2", SKUAlias: "hc44rs"})
	s.Shard("hb120rs_v3").Add(Point{ScenarioID: "a1", SKUAlias: "hb120rs_v3"})

	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	want := []string{"c1", "c2", "a1", "b1"}
	snap := s.Snapshot().All()
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d points, want %d", len(snap), len(want))
	}
	for i, p := range snap {
		if p.ScenarioID != want[i] {
			t.Errorf("snapshot[%d] = %s, want %s", i, p.ScenarioID, want[i])
		}
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "hc44rs" || keys[1] != "hb120rs_v3" || keys[2] != "hb120rs_v2" {
		t.Errorf("Keys = %v, want creation order", keys)
	}
}

func TestShardedConcurrentProducers(t *testing.T) {
	// One producer per shard, the collector's pattern. Run with -race.
	s := NewSharded()
	const perShard = 200
	skus := []string{"a", "b", "c", "d"}
	for _, sku := range skus {
		s.Shard(sku) // canonical order fixed before producers start
	}
	var wg sync.WaitGroup
	for _, sku := range skus {
		wg.Add(1)
		go func(sku string) {
			defer wg.Done()
			shard := s.Shard(sku)
			for i := 0; i < perShard; i++ {
				shard.Add(Point{ScenarioID: fmt.Sprintf("%s-%03d", sku, i), SKU: sku})
			}
		}(sku)
	}
	wg.Wait()
	if got := s.Len(); got != perShard*len(skus) {
		t.Fatalf("Len = %d, want %d", got, perShard*len(skus))
	}
	snap := s.Snapshot().All()
	for i, p := range snap {
		wantSKU := skus[i/perShard]
		wantID := fmt.Sprintf("%s-%03d", wantSKU, i%perShard)
		if p.ScenarioID != wantID {
			t.Fatalf("snapshot[%d] = %s, want %s (order must be schedule-independent)", i, p.ScenarioID, wantID)
		}
	}
}

func TestStoreConcurrentAddAndRead(t *testing.T) {
	// Store itself must tolerate concurrent appends and reads (progress
	// callbacks and the GUI read while collection appends). Run with -race.
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Add(Point{ScenarioID: fmt.Sprintf("w%d-%d", w, i), AppName: "lammps"})
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = s.Len()
				_ = s.Select(Filter{AppName: "lammps"})
				_ = s.Apps()
			}
		}()
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Fatalf("Len = %d, want 400", s.Len())
	}
	if _, err := s.Marshal(); err != nil {
		t.Fatal(err)
	}
}

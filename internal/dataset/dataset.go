// Package dataset stores the datapoints produced by data collection: one
// record per executed scenario carrying execution time, cost, the
// application-reported metrics (HPCADVISORVAR values), infrastructure
// utilization, and identifying tags. Plot generation and advice both consume
// this store through filters, matching the paper's "data is collected,
// filtered, and organized" pipeline.
//
// Store is safe for concurrent use: appends and reads are guarded by a
// read-write mutex, so progress callbacks and the GUI may read while a
// collection appends. High-throughput concurrent producers — the collector's
// parallel pool lanes — should not contend on one Store at all; they write
// to per-SKU shards of a Sharded store and merge a snapshot afterwards.
package dataset

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"hpcadvisor/internal/monitor"
)

// Point is one executed scenario's record.
type Point struct {
	ScenarioID string `json:"scenario_id"`
	Deployment string `json:"deployment,omitempty"`
	AppName    string `json:"appname"`
	SKU        string `json:"sku"`
	SKUAlias   string `json:"sku_alias"`
	NNodes     int    `json:"nnodes"`
	PPN        int    `json:"ppn"`

	AppInput  map[string]string `json:"appinput,omitempty"`
	InputDesc string            `json:"input_desc"`
	Tags      map[string]string `json:"tags,omitempty"`

	ExecTimeSec float64 `json:"exectime_sec"`
	CostUSD     float64 `json:"cost_usd"`

	Metrics map[string]string `json:"metrics,omitempty"`

	Utilization monitor.Sample     `json:"utilization"`
	Bottleneck  monitor.Bottleneck `json:"bottleneck,omitempty"`

	// Failed records scenarios that did not complete; failed points carry
	// no time/cost and are excluded from plots and advice.
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`

	// CollectedAt is the virtual timestamp (seconds) of completion.
	CollectedAt float64 `json:"collected_at"`
}

// TotalCores is the scenario's process count (nodes x ppn).
func (p Point) TotalCores() int { return p.NNodes * p.PPN }

// Store is an append-only collection of points, safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	points []Point
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Add appends a point.
func (s *Store) Add(p Point) {
	s.mu.Lock()
	s.points = append(s.points, p)
	s.mu.Unlock()
}

// AddAll appends points in order.
func (s *Store) AddAll(pts []Point) {
	s.mu.Lock()
	s.points = append(s.points, pts...)
	s.mu.Unlock()
}

// Len returns the number of stored points.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.points)
}

// All returns a copy of every point.
func (s *Store) All() []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Filter selects points; zero values match everything.
type Filter struct {
	AppName   string
	SKU       string // full name or alias
	InputDesc string
	MinNodes  int
	MaxNodes  int
	Tags      map[string]string
	// IncludeFailed keeps failed points; by default only successful runs
	// are returned.
	IncludeFailed bool
}

// Match reports whether a point passes the filter.
func (f Filter) Match(p Point) bool {
	if !f.IncludeFailed && p.Failed {
		return false
	}
	if f.AppName != "" && !strings.EqualFold(f.AppName, p.AppName) {
		return false
	}
	if f.SKU != "" && !strings.EqualFold(f.SKU, p.SKU) && !strings.EqualFold(f.SKU, p.SKUAlias) {
		return false
	}
	if f.InputDesc != "" && f.InputDesc != p.InputDesc {
		return false
	}
	if f.MinNodes > 0 && p.NNodes < f.MinNodes {
		return false
	}
	if f.MaxNodes > 0 && p.NNodes > f.MaxNodes {
		return false
	}
	for k, v := range f.Tags {
		if p.Tags[k] != v {
			return false
		}
	}
	return true
}

// Select returns points passing the filter, ordered by (SKU, input, nodes).
func (s *Store) Select(f Filter) []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Point
	for _, p := range s.points {
		if f.Match(p) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SKUAlias != out[j].SKUAlias {
			return out[i].SKUAlias < out[j].SKUAlias
		}
		if out[i].InputDesc != out[j].InputDesc {
			return out[i].InputDesc < out[j].InputDesc
		}
		return out[i].NNodes < out[j].NNodes
	})
	return out
}

// SeriesKey identifies one plotted line: a SKU at one application input.
type SeriesKey struct {
	SKUAlias  string
	InputDesc string
}

// String renders the key as a plot legend label.
func (k SeriesKey) String() string {
	if k.InputDesc == "" {
		return k.SKUAlias
	}
	return k.SKUAlias + " (" + k.InputDesc + ")"
}

// GroupSeries groups filtered points into plot series, each sorted by node
// count — the structure behind the paper's Figures 2-5, one curve per VM
// type per input.
func (s *Store) GroupSeries(f Filter) map[SeriesKey][]Point {
	out := make(map[SeriesKey][]Point)
	for _, p := range s.Select(f) {
		k := SeriesKey{SKUAlias: p.SKUAlias, InputDesc: p.InputDesc}
		out[k] = append(out[k], p)
	}
	for _, pts := range out {
		sort.Slice(pts, func(i, j int) bool { return pts[i].NNodes < pts[j].NNodes })
	}
	return out
}

// Apps lists distinct application names present, sorted.
func (s *Store) Apps() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{}
	for _, p := range s.points {
		seen[p.AppName] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Marshal renders the store as JSON Lines, points in append order.
func (s *Store) Marshal() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, p := range s.points {
		if err := enc.Encode(p); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// Unmarshal parses a JSON Lines dataset.
func Unmarshal(data []byte) (*Store, error) {
	s := NewStore()
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1024*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var p Point
		if err := json.Unmarshal([]byte(text), &p); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		s.Add(p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// SaveFile writes the dataset to path as JSON Lines.
func (s *Store) SaveFile(path string) error {
	data, err := s.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadFile reads a JSON Lines dataset from path. A missing file yields an
// empty store, so a fresh environment starts cleanly.
func LoadFile(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return NewStore(), nil
		}
		return nil, err
	}
	return Unmarshal(data)
}

// Package dataset stores the datapoints produced by data collection: one
// record per executed scenario carrying execution time, cost, the
// application-reported metrics (HPCADVISORVAR values), infrastructure
// utilization, and identifying tags. Plot generation and advice both consume
// this store through filters, matching the paper's "data is collected,
// filtered, and organized" pipeline.
//
// Store is safe for concurrent use: appends and reads are guarded by a
// read-write mutex, so progress callbacks and the GUI may read while a
// collection appends. High-throughput concurrent producers — the collector's
// parallel pool lanes — should not contend on one Store at all; they write
// to per-SKU shards of a Sharded store and merge a snapshot afterwards.
package dataset

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"hpcadvisor/internal/fsatomic"
	"hpcadvisor/internal/monitor"
)

// Point is one executed scenario's record.
type Point struct {
	ScenarioID string `json:"scenario_id"`
	Deployment string `json:"deployment,omitempty"`
	AppName    string `json:"appname"`
	SKU        string `json:"sku"`
	SKUAlias   string `json:"sku_alias"`
	NNodes     int    `json:"nnodes"`
	PPN        int    `json:"ppn"`

	AppInput  map[string]string `json:"appinput,omitempty"`
	InputDesc string            `json:"input_desc"`
	Tags      map[string]string `json:"tags,omitempty"`

	ExecTimeSec float64 `json:"exectime_sec"`
	CostUSD     float64 `json:"cost_usd"`

	Metrics map[string]string `json:"metrics,omitempty"`

	Utilization monitor.Sample     `json:"utilization"`
	Bottleneck  monitor.Bottleneck `json:"bottleneck,omitempty"`

	// Failed records scenarios that did not complete; failed points carry
	// no time/cost and are excluded from plots and advice.
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`

	// CollectedAt is the virtual timestamp (seconds) of completion.
	CollectedAt float64 `json:"collected_at"`
}

// TotalCores is the scenario's process count (nodes x ppn).
func (p Point) TotalCores() int { return p.NNodes * p.PPN }

// Sink receives every point appended to an attached Store — the durable
// write-ahead path of a storage backend. Append is called in append order
// under the store's lock, so implementations see exactly the store's point
// sequence; Sync must make every appended point durable before returning.
type Sink interface {
	Append(p Point) error
	Sync() error
}

// Store is an append-only collection of points, safe for concurrent use.
// Reads are served from an immutable copy-on-write Snapshot built at most
// once per generation (see snapshot.go), so queries never hold the lock
// while filtering and never contend with concurrent appends.
//
// A Store may have a Sink attached (Attach): every Add/AddAll then writes
// through to it, so each collected point lands durably the moment it is
// appended instead of in one save at the end. Sink errors are sticky and
// surfaced by Flush, keeping the hot Add path signature-free.
type Store struct {
	mu      sync.RWMutex
	points  []Point   // guarded-by: mu; append order (only the tail past base while base != nil)
	base    *Snapshot // guarded-by: mu; mapped seed not yet expanded into points (see lazy.go)
	baseN   int       // guarded-by: mu; points covered by base
	gen     uint64    // guarded-by: mu
	snap    *Snapshot // guarded-by: mu; cached, valid iff snap.gen == gen, kept stale for merge amortization
	sink    Sink      // guarded-by: mu
	sinkErr error     // guarded-by: mu; first write-through failure, surfaced by Flush
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// NewSeededStore builds a store over points whose first len(sortedPrefix)
// entries already have a known canonical (SKU alias, input, nodes) order —
// the fast-load path for a compacted storage snapshot segment. The first
// Snapshot build then merges only the unsorted tail instead of re-sorting
// everything. A prefix that is not actually in canonical order, or that is
// not a permutation of the points it claims to cover, is ignored (the store
// falls back to sorting), so a corrupt seed can degrade speed but never
// query results. Both slices are owned by the store afterwards.
//
// The seeded generation is the log position (see Generation): every replica
// loading the same persisted log starts at the same generation.
func NewSeededStore(points, sortedPrefix []Point) *Store {
	s := &Store{points: points, gen: uint64(len(points))}
	if len(sortedPrefix) == 0 || len(sortedPrefix) > len(points) {
		return s
	}
	for i := 1; i < len(sortedPrefix); i++ {
		if pointLess(&sortedPrefix[i], &sortedPrefix[i-1]) {
			return s // not sorted: discard the seed
		}
	}
	// The prefix claims to be points[:n] re-sorted. A sorted slice of the
	// wrong points (a stale or cross-dataset snapshot segment) would pass
	// the order check above and then silently serve wrong query results, so
	// verify it is a permutation of what it covers with an order-independent
	// fingerprint before trusting it.
	if fingerprintSum(sortedPrefix) != fingerprintSum(points[:len(sortedPrefix)]) {
		return s // not our points: discard the seed
	}
	seed := &Snapshot{n: len(sortedPrefix), sorted: sortedPrefix}
	if seed.n == len(points) {
		// Full coverage: this is the current snapshot, serve it directly.
		// A seed load is the bulk-build case, so the hot fronts are
		// precomputed here rather than on the first advice request.
		seed.gen = s.gen
		seed.buildIndexes()
		seed.buildHotFronts(true)
	} else {
		// Partial coverage: a stale merge seed (gen != s.gen), used only as
		// the sorted prefix of the first real snapshot build.
		seed.gen = uint64(seed.n)
	}
	s.snap = seed
	return s
}

// fingerprintSum combines per-point fingerprints order-independently, so two
// slices holding the same multiset of points sum equal regardless of order.
func fingerprintSum(pts []Point) uint64 {
	var sum uint64
	for i := range pts {
		sum += pointFingerprint(&pts[i])
	}
	return sum
}

// pointFingerprint hashes the fields that identify a point's position in
// the canonical order plus its identity — enough to detect a seed covering
// different points, without hashing every field.
func pointFingerprint(p *Point) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // field separator
		h *= prime64
	}
	mix(p.ScenarioID)
	mix(p.SKUAlias)
	mix(p.InputDesc)
	h ^= uint64(p.NNodes)
	h *= prime64
	return h
}

// materializeBaseLocked expands a mapped seed snapshot into the points
// slice: every row decodes (lazy chunks force) and scatters back to append
// order, with any tail appended after it. Mapped stores pay this once, on
// the first operation that needs the append-order view (All, Marshal,
// SelectScan, or a snapshot rebuild after an append); pure snapshot
// serving never does. Callers hold s.mu.
func (s *Store) materializeBaseLocked() {
	if s.base == nil {
		return
	}
	pts := s.base.appendOrderPoints()
	if len(s.points) > 0 {
		pts = append(pts, s.points...)
	}
	s.points = pts
	s.base, s.baseN = nil, 0
}

// ensureMaterialized is the lock-acquiring wrapper for read paths that
// need the full append-order points slice.
func (s *Store) ensureMaterialized() {
	s.mu.RLock()
	mapped := s.base != nil
	s.mu.RUnlock()
	if !mapped {
		return
	}
	s.mu.Lock()
	s.materializeBaseLocked()
	s.mu.Unlock()
}

// Attach installs (or, with nil, removes) the write-through sink. Points
// already in the store are not replayed: an attached backend is expected to
// already hold them (it just loaded them).
func (s *Store) Attach(sink Sink) {
	s.mu.Lock()
	s.sink = sink
	s.mu.Unlock()
}

// Flush syncs the attached sink, making every appended point durable, and
// returns the first write-through error if any append failed. Without a
// sink it only reports sticky errors (always nil in practice).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sink != nil {
		if err := s.sink.Sync(); err != nil && s.sinkErr == nil {
			s.sinkErr = err
		}
	}
	return s.sinkErr
}

// appendThroughLocked forwards one point to the sink, recording the first error.
// Callers hold s.mu.
func (s *Store) appendThroughLocked(p Point) {
	if s.sink == nil {
		return
	}
	if err := s.sink.Append(p); err != nil && s.sinkErr == nil {
		s.sinkErr = err
	}
}

// Add appends a point and bumps the store generation.
func (s *Store) Add(p Point) {
	s.mu.Lock()
	s.points = append(s.points, p)
	s.gen++
	s.appendThroughLocked(p)
	s.mu.Unlock()
}

// AddAll appends points in order; the generation advances by the batch
// size, keeping it equal to the log position.
func (s *Store) AddAll(pts []Point) {
	if len(pts) == 0 {
		return
	}
	s.mu.Lock()
	s.points = append(s.points, pts...)
	s.gen += uint64(len(pts))
	for i := range pts {
		s.appendThroughLocked(pts[i])
	}
	s.mu.Unlock()
}

// Generation is the store's log position: the number of points ever
// appended (seeded loads start at their point count). It changes whenever
// query results may, so caches and ETags keyed by it invalidate exactly —
// and because it derives from the append log rather than a process-local
// counter, every replica applying the same log reports the same generation
// at the same position, which is what lets a load balancer spray requests
// across a replicated fleet without cache-coherence bugs.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// Snapshot returns the read-optimized view of the current generation,
// building it lazily on first use after a mutation. The returned snapshot
// is immutable and shared: concurrent readers get the same pointer, and a
// rebuild merges only the newly appended suffix into the previous sorted
// order.
func (s *Store) Snapshot() *Snapshot {
	s.mu.RLock()
	if s.snap != nil && s.snap.gen == s.gen {
		snap := s.snap
		s.mu.RUnlock()
		return snap
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap == nil || s.snap.gen != s.gen {
		s.materializeBaseLocked() // rebuilds merge over append-order points
		s.snap = buildSnapshot(s.snap, s.points, s.gen)
	}
	return s.snap
}

// Len returns the number of stored points.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.baseN + len(s.points)
}

// All returns a copy of every point.
func (s *Store) All() []Point {
	s.ensureMaterialized()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Filter selects points; zero values match everything.
type Filter struct {
	AppName   string
	SKU       string // full name or alias
	InputDesc string
	MinNodes  int
	MaxNodes  int
	Tags      map[string]string
	// IncludeFailed keeps failed points; by default only successful runs
	// are returned.
	IncludeFailed bool
}

// Match reports whether a point passes the filter. Loops matching many
// points should canonicalize once (Filter.Canonical) instead of paying the
// per-point folding here.
func (f Filter) Match(p Point) bool {
	c := f.Canonical()
	return c.Match(&p)
}

// Select returns points passing the filter, ordered by (SKU, input, nodes),
// ties in append order. It is served from the current Snapshot: an index
// probe over the smallest matching posting list, falling back to a scan of
// the sorted points only for tag-only filters.
func (s *Store) Select(f Filter) []Point {
	return s.Snapshot().Select(f)
}

// SelectScan is the pre-index reference path: canonicalize the filter once,
// scan every point under the read lock, then sort. It returns exactly what
// Select returns and is retained as the correctness oracle for property
// tests and the baseline for the index-vs-scan ablation benchmarks.
func (s *Store) SelectScan(f Filter) []Point {
	c := f.Canonical()
	s.ensureMaterialized()
	s.mu.RLock()
	var out []Point
	for i := range s.points {
		if c.Match(&s.points[i]) {
			out = append(out, s.points[i])
		}
	}
	s.mu.RUnlock()
	sort.SliceStable(out, func(i, j int) bool { return pointLess(&out[i], &out[j]) })
	return out
}

// SeriesKey identifies one plotted line: a SKU at one application input.
type SeriesKey struct {
	SKUAlias  string
	InputDesc string
}

// String renders the key as a plot legend label.
func (k SeriesKey) String() string {
	if k.InputDesc == "" {
		return k.SKUAlias
	}
	return k.SKUAlias + " (" + k.InputDesc + ")"
}

// GroupSeries groups filtered points into plot series, each sorted by node
// count — the structure behind the paper's Figures 2-5, one curve per VM
// type per input. Select already yields (SKU, input, nodes) order, so the
// groups need no re-sort.
func (s *Store) GroupSeries(f Filter) map[SeriesKey][]Point {
	return s.Snapshot().GroupSeries(f)
}

// Apps lists distinct application names present, sorted.
func (s *Store) Apps() []string {
	return s.Snapshot().Apps()
}

// Marshal renders the store as JSON Lines, points in append order.
func (s *Store) Marshal() ([]byte, error) {
	s.ensureMaterialized()
	s.mu.RLock()
	defer s.mu.RUnlock()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, p := range s.points {
		if err := enc.Encode(p); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// MaxLineBytes caps one JSON Lines record. Unmarshal's scanner rejects
// longer lines, so writers (the storage JSONL backend) must refuse to
// produce them — otherwise an accepted append could create a file that can
// never be reopened.
const MaxLineBytes = 16 * 1024 * 1024

// Unmarshal parses a JSON Lines dataset.
func Unmarshal(data []byte) (*Store, error) {
	s := NewStore()
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1024*1024), MaxLineBytes)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var p Point
		if err := json.Unmarshal([]byte(text), &p); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		s.Add(p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// SaveFile writes the dataset to path as JSON Lines, atomically: the new
// contents are staged and renamed into place, so a crash mid-save can never
// truncate a previously saved dataset.
func (s *Store) SaveFile(path string) error {
	data, err := s.Marshal()
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(path, data, 0o644)
}

// LoadFile reads a JSON Lines dataset from path. A missing file yields an
// empty store, so a fresh environment starts cleanly.
func LoadFile(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return NewStore(), nil
		}
		return nil, err
	}
	return Unmarshal(data)
}

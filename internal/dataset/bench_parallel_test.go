package dataset

// BenchmarkParallelSelect measures the partitioned select at 1/2/4/8
// workers over a store large enough that every subbenchmark clears the
// parallel cutoff: a one-app indexed select (candidate-list partitioning)
// and an unindexed range scan (row-range partitioning).

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkParallelSelect(b *testing.B) {
	defer SetSelectParallelism(0)
	rng := rand.New(rand.NewSource(1))
	s := randomStore(rng, 200_000)
	sn := s.Snapshot()
	oneApp := Filter{AppName: "lammps"}
	scan := Filter{MinNodes: 2}
	wantApp, wantScan := len(sn.Select(oneApp)), len(sn.Select(scan))

	for _, workers := range []int{1, 2, 4, 8} {
		SetSelectParallelism(workers)
		b.Run(fmt.Sprintf("one-app/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := sn.Select(oneApp); len(got) != wantApp {
					b.Fatalf("row count changed: %d", len(got))
				}
			}
		})
		b.Run(fmt.Sprintf("scan/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := sn.Select(scan); len(got) != wantScan {
					b.Fatalf("row count changed: %d", len(got))
				}
			}
		})
	}
}

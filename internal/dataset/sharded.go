package dataset

import "sync"

// Sharded is a store partitioned by a shard key — in the collector, the VM
// type (SKU) — so concurrent producers append to disjoint shards without
// contending on a single lock or interleaving their points
// nondeterministically. Each shard is an ordinary *Store; shard creation
// order is recorded so a merged Snapshot lists points in a canonical,
// schedule-independent order.
//
// Shard is safe to call from any goroutine. The *Store it returns is itself
// concurrency-safe, but the intended pattern is one producer per shard.
type Sharded struct {
	mu     sync.Mutex
	order  []string          // guarded-by: mu
	shards map[string]*Store // guarded-by: mu

	// view caches the merged read-optimized snapshot; valid while every
	// shard is still at the generation recorded in viewGens.
	view     *Snapshot // guarded-by: mu
	viewGens []uint64  // guarded-by: mu
	viewSeq  uint64    // guarded-by: mu
}

// NewSharded returns an empty sharded store.
func NewSharded() *Sharded {
	return &Sharded{shards: make(map[string]*Store)}
}

// Shard returns the store for key, creating it on first use. The creation
// order of shards defines the merge order of Snapshot, so callers that need
// a canonical order (the concurrent collector does) should touch shards in
// that order before spawning producers.
func (s *Sharded) Shard(key string) *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.shards[key]; ok {
		return st
	}
	st := NewStore()
	s.shards[key] = st
	s.order = append(s.order, key)
	return st
}

// Keys returns the shard keys in creation order.
func (s *Sharded) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Len returns the total number of points across shards.
func (s *Sharded) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, st := range s.shards {
		n += st.Len()
	}
	return n
}

// Snapshot merges the shards into a new Store, shard by shard in creation
// order, preserving each shard's append order. The result is independent of
// how producer goroutines were scheduled.
func (s *Sharded) Snapshot() *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := NewStore()
	for _, key := range s.order {
		out.AddAll(s.shards[key].All())
	}
	return out
}

// View folds the sharded store into the same snapshot protocol as Store: it
// returns an immutable read-optimized Snapshot over the merged shards
// (creation order, each shard's append order preserved), rebuilt only when
// some shard's generation moved. Readers may query the returned snapshot
// concurrently with producers appending to shards.
func (s *Sharded) View() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	gens := make([]uint64, len(s.order))
	fresh := s.view != nil && len(s.viewGens) == len(s.order)
	for i, key := range s.order {
		gens[i] = s.shards[key].Generation()
		if fresh && gens[i] != s.viewGens[i] {
			fresh = false
		}
	}
	if fresh {
		return s.view
	}
	merged := NewStore()
	for _, key := range s.order {
		merged.AddAll(s.shards[key].All())
	}
	snap := merged.Snapshot()
	// Stamp a view-local generation that moves on every rebuild, so cache
	// keys derived from the snapshot generation stay sound.
	s.viewSeq++
	snap.gen = s.viewSeq
	s.view = snap
	s.viewGens = gens
	return s.view
}

package dataset

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// The parallel partitioned select's contract: output byte-identical to the
// sequential path (and so to the SelectScan oracle) for every filter, at
// every worker count, including under concurrent use.

func TestParallelSelectMatchesSequentialAndScan(t *testing.T) {
	defer SetSelectParallelism(0)
	rng := rand.New(rand.NewSource(42))
	// Big enough that full scans and the popular app/SKU candidate lists
	// clear the parallel cutoff; small enough to stay fast.
	s := randomStore(rng, 3*parallelSelectMinCandidates)
	sn := s.Snapshot()

	filters := []Filter{
		{},
		{IncludeFailed: true},
		{AppName: "lammps"},
		{AppName: "lammps", SKU: "hb120rs_v3"},
		{MinNodes: 2, MaxNodes: 8},
		{Tags: map[string]string{"run": "r1"}},
		{AppName: "no-such-app"},
	}
	for i := 0; i < 60; i++ {
		filters = append(filters, randomFilter(rng))
	}
	for _, f := range filters {
		SetSelectParallelism(1)
		seq := sn.Select(f)
		scan := s.SelectScan(f)
		if !reflect.DeepEqual(seq, scan) {
			t.Fatalf("filter %+v: sequential select disagrees with scan oracle", f)
		}
		for _, workers := range []int{2, 4, 8} {
			SetSelectParallelism(workers)
			par := sn.Select(f)
			if !reflect.DeepEqual(par, seq) {
				t.Fatalf("filter %+v at %d workers: parallel select (%d rows) "+
					"differs from sequential (%d rows)", f, workers, len(par), len(seq))
			}
		}
	}
}

func TestParallelGroupSeriesMatchesSequential(t *testing.T) {
	defer SetSelectParallelism(0)
	rng := rand.New(rand.NewSource(7))
	s := randomStore(rng, 2*parallelSelectMinCandidates)
	sn := s.Snapshot()
	for _, f := range []Filter{{}, {AppName: "openfoam"}, {MinNodes: 2}} {
		SetSelectParallelism(1)
		seq := sn.GroupSeries(f)
		SetSelectParallelism(4)
		par := sn.GroupSeries(f)
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("filter %+v: parallel GroupSeries differs from sequential", f)
		}
	}
}

// TestParallelSelectConcurrent drives the parallel path from many
// goroutines at once — the race detector's target.
func TestParallelSelectConcurrent(t *testing.T) {
	defer SetSelectParallelism(0)
	rng := rand.New(rand.NewSource(99))
	s := randomStore(rng, 2*parallelSelectMinCandidates)
	sn := s.Snapshot()
	SetSelectParallelism(1)
	want := map[string]int{}
	filters := []Filter{{}, {AppName: "wrf"}, {SKU: "hc44rs"}, {IncludeFailed: true}}
	keys := []string{"all", "wrf", "hc44rs", "failed"}
	for i, f := range filters {
		want[keys[i]] = len(sn.Select(f))
	}
	SetSelectParallelism(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				f := filters[(g+i)%len(filters)]
				got := sn.Select(f)
				if len(got) != want[keys[(g+i)%len(filters)]] {
					t.Errorf("concurrent select row count changed: %d", len(got))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSetSelectParallelismClamps(t *testing.T) {
	defer SetSelectParallelism(0)
	SetSelectParallelism(-5)
	if got := selectParallelism(); got < 1 {
		t.Fatalf("selectParallelism() = %d after reset, want >= 1", got)
	}
	SetSelectParallelism(3)
	if got := selectParallelism(); got != 3 {
		t.Fatalf("selectParallelism() = %d, want 3", got)
	}
}

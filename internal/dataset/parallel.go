package dataset

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements parallel partitioned select: when a filter leaves a
// large candidate domain (a cold one-app scan, a tag-only scan, an
// unconstrained GroupSeries), the domain is split into ~GOMAXPROCS
// contiguous chunks, matchAt runs per chunk, and the per-chunk hits are
// copied into one output slice at precomputed offsets — so the result is
// byte-identical to the sequential path (and to the SelectScan oracle):
// same rows, same canonical order, same nil-on-empty convention.

// parallelSelectMinCandidates is the fan-out cutoff. Below it the
// goroutine handoff and the second (copy) phase cost more than the match
// loop itself — matchAt is a handful of integer compares, so a few
// thousand candidates run in single-digit microseconds sequentially —
// and small snapshots stay on the allocation-light single-threaded path.
const parallelSelectMinCandidates = 4096

// selectWorkers overrides the worker count; 0 means GOMAXPROCS.
var selectWorkers atomic.Int32

// SetSelectParallelism overrides how many workers parallel partitioned
// selects use; n <= 0 restores the default (GOMAXPROCS at query time).
// Serving processes keep the default — this exists for the worker-scaling
// benchmarks and the equivalence tests, which pin both sides of the
// comparison to a known width.
func SetSelectParallelism(n int) {
	if n < 0 {
		n = 0
	}
	selectWorkers.Store(int32(n))
}

func selectParallelism() int {
	if n := selectWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// selectParallel evaluates the resolved filter over a candidate domain of
// size n — positions list[i] when list is non-nil (an indexed probe), or
// 0..n-1 over the sorted rows (a full scan) — using the given number of
// workers. Two phases, both partitioned by contiguous chunk: match (each
// worker collects hit positions for its chunk) and copy (prefix sums place
// every chunk's hits at their final offsets, so output order is exactly
// candidate order, which is canonical order).
func (sn *Snapshot) selectParallel(cf *colFilter, list []int32, n, workers int) []Point {
	if workers > n {
		workers = n
	}
	chunkLo := make([]int, workers+1)
	per, rem := n/workers, n%workers
	for w := 0; w < workers; w++ {
		size := per
		if w < rem {
			size++
		}
		chunkLo[w+1] = chunkLo[w] + size
	}
	hits := make([][]int32, workers)
	var wg sync.WaitGroup
	match := func(w int) {
		var out []int32
		if list != nil {
			for _, pos := range list[chunkLo[w]:chunkLo[w+1]] {
				if sn.matchAt(cf, int(pos)) {
					out = append(out, pos)
				}
			}
		} else {
			for i := chunkLo[w]; i < chunkLo[w+1]; i++ {
				if sn.matchAt(cf, i) {
					out = append(out, int32(i))
				}
			}
		}
		hits[w] = out
	}
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			match(w)
		}(w)
	}
	match(0)
	wg.Wait()

	total := 0
	off := make([]int, workers)
	for w := range hits {
		off[w] = total
		total += len(hits[w])
	}
	if total == 0 {
		return nil
	}
	out := make([]Point, total)
	fill := func(w int) {
		for k, pos := range hits[w] {
			sn.ensureRow(int(pos))
			out[off[w]+k] = sn.sorted[pos]
		}
	}
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fill(w)
		}(w)
	}
	fill(0)
	wg.Wait()
	return out
}

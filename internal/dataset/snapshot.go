package dataset

import (
	"sort"
	"strconv"
	"strings"
)

// This file implements the read-optimized side of the store: immutable
// Snapshots holding the points in canonical (SKU alias, input, nodes) order
// with inverted indexes by application, SKU, and input. A snapshot is built
// at most once per store generation and shared by every concurrent reader,
// so the advice/plot serving path never contends with collectors appending.
//
// Ordering contract: Select returns points sorted by (SKUAlias, InputDesc,
// NNodes), ties broken by append order (stable). The scan baseline
// (SelectScan) and the indexed path agree exactly; the property test in
// snapshot_test.go holds them to it.

// PointLess reports the canonical (SKU alias, input, nodes) order. Storage
// backends sort compacted snapshot segments with it so a seeded store's
// first Snapshot build reuses the on-disk order verbatim.
func PointLess(a, b *Point) bool { return pointLess(a, b) }

// pointLess is the canonical (SKU alias, input, nodes) order shared by the
// sorted snapshot and the scan baseline. Equal keys compare as "not less" so
// stable sorts and merges preserve append order.
func pointLess(a, b *Point) bool {
	if a.SKUAlias != b.SKUAlias {
		return a.SKUAlias < b.SKUAlias
	}
	if a.InputDesc != b.InputDesc {
		return a.InputDesc < b.InputDesc
	}
	return a.NNodes < b.NNodes
}

// tagPair is one canonicalized tag constraint.
type tagPair struct{ k, v string }

// CanonicalFilter is a Filter pre-processed for repeated matching: the
// case-insensitive fields are folded once, and the tag map is flattened into
// a sorted slice, so matching a point does no per-point canonicalization and
// no map iteration. It also renders a canonical cache key, which the query
// engine combines with the store generation.
type CanonicalFilter struct {
	app   string // lowercased AppName; "" matches all
	sku   string // lowercased SKU name or alias; "" matches all
	input string // exact InputDesc; "" matches all

	minNodes, maxNodes int
	tags               []tagPair
	includeFailed      bool
}

// Canonical folds the filter once for repeated matching and cache keying.
func (f Filter) Canonical() CanonicalFilter {
	c := CanonicalFilter{
		app:           strings.ToLower(f.AppName),
		sku:           strings.ToLower(f.SKU),
		input:         f.InputDesc,
		minNodes:      f.MinNodes,
		maxNodes:      f.MaxNodes,
		includeFailed: f.IncludeFailed,
	}
	if len(f.Tags) > 0 {
		c.tags = make([]tagPair, 0, len(f.Tags))
		for k, v := range f.Tags {
			c.tags = append(c.tags, tagPair{k, v})
		}
		sort.Slice(c.tags, func(i, j int) bool { return c.tags[i].k < c.tags[j].k })
	}
	return c
}

// Match reports whether a point passes the canonicalized filter.
func (c *CanonicalFilter) Match(p *Point) bool {
	if !c.includeFailed && p.Failed {
		return false
	}
	if c.app != "" && !strings.EqualFold(c.app, p.AppName) {
		return false
	}
	if c.sku != "" && !strings.EqualFold(c.sku, p.SKU) && !strings.EqualFold(c.sku, p.SKUAlias) {
		return false
	}
	if c.input != "" && c.input != p.InputDesc {
		return false
	}
	if c.minNodes > 0 && p.NNodes < c.minNodes {
		return false
	}
	if c.maxNodes > 0 && p.NNodes > c.maxNodes {
		return false
	}
	for _, t := range c.tags {
		if p.Tags[t.k] != t.v {
			return false
		}
	}
	return true
}

// Key renders the canonical filter as a deterministic cache-key fragment:
// filters that select the same points (up to case folding and tag order)
// render the same key, and distinct filters never collide — user-supplied
// strings are quoted so embedded separators cannot forge another filter's
// key.
func (c *CanonicalFilter) Key() string {
	var b strings.Builder
	b.WriteString("app=")
	b.WriteString(strconv.Quote(c.app))
	b.WriteString("|sku=")
	b.WriteString(strconv.Quote(c.sku))
	b.WriteString("|in=")
	b.WriteString(strconv.Quote(c.input))
	b.WriteString("|n=")
	b.WriteString(strconv.Itoa(c.minNodes))
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(c.maxNodes))
	if c.includeFailed {
		b.WriteString("|failed")
	}
	for _, t := range c.tags {
		b.WriteString("|t:")
		b.WriteString(strconv.Quote(t.k))
		b.WriteByte('=')
		b.WriteString(strconv.Quote(t.v))
	}
	return b.String()
}

// Snapshot is an immutable, read-optimized view of a store at one
// generation: the points in canonical sorted order plus inverted indexes.
// Snapshots are never modified after construction, so any number of
// goroutines may query one concurrently, and queries never block appends.
type Snapshot struct {
	gen uint64
	n   int // append-order points covered, for merge amortization

	sorted []Point

	// Posting lists of positions into sorted, ascending, so index probes
	// return points already in canonical order. Keys are lowercased for the
	// case-insensitive fields.
	byApp   map[string][]int32
	bySKU   map[string][]int32 // both full name and alias key the same list
	byInput map[string][]int32

	apps   []string // distinct AppNames (original case), sorted
	skus   []string // distinct SKUAliases (original case), sorted
	inputs []string // distinct InputDescs, sorted

	// col is the struct-of-arrays mirror of sorted (see columnar.go):
	// interned symbol IDs and typed columns, so selectCanonical compares
	// uint32s over contiguous memory instead of case-folding strings per
	// candidate. Immutable after build, like the rest of the snapshot.
	col columns

	// hot maps CanonicalFilter.Key() of the top-K single-field filters to
	// their precomputed Pareto fronts and pre-serialized advice rows. The
	// map is immutable after build; each entry computes at most once (see
	// hotFront).
	hot map[string]*hotFront

	// lazy, when non-nil, defers row materialization (mmap-backed
	// snapshots): sorted[i] starts zero and is decoded from the row bytes
	// chunk-by-chunk on first touch (see lazy.go). Every read of sorted[i]
	// must go through ensureRow(i) first.
	lazy *lazyRows

	// mapRef pins whatever owns the memory the columns, row bytes, and hot
	// fragments may alias — an mmap region whose finalizer unmaps it — for
	// the snapshot's lifetime.
	mapRef any
}

// Generation identifies the store state the snapshot was built from.
func (sn *Snapshot) Generation() uint64 { return sn.gen }

// Len returns the number of points in the snapshot.
func (sn *Snapshot) Len() int { return len(sn.sorted) }

// Apps lists distinct application names present, sorted.
func (sn *Snapshot) Apps() []string {
	out := make([]string, len(sn.apps))
	copy(out, sn.apps)
	return out
}

// SKUAliases lists distinct SKU aliases present, sorted.
func (sn *Snapshot) SKUAliases() []string {
	out := make([]string, len(sn.skus))
	copy(out, sn.skus)
	return out
}

// Inputs lists distinct input descriptions present, sorted.
func (sn *Snapshot) Inputs() []string {
	out := make([]string, len(sn.inputs))
	copy(out, sn.inputs)
	return out
}

// postings returns the candidate positions for the filter's indexed
// fields: the smallest applicable posting list intersected with the
// others (all lists are ascending, so the intersection is a linear merge
// that preserves canonical order). The second result is false when no
// indexed field is constrained — tag-only or unconstrained filters fall
// back to scanning the sorted points.
func (sn *Snapshot) postings(c *CanonicalFilter) ([]int32, bool) {
	var lists [][]int32
	if c.app != "" {
		lists = append(lists, sn.byApp[c.app])
	}
	if c.sku != "" {
		lists = append(lists, sn.bySKU[c.sku])
	}
	if c.input != "" {
		lists = append(lists, sn.byInput[c.input])
	}
	if len(lists) == 0 {
		return nil, false
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := lists[0]
	for _, next := range lists[1:] {
		if len(out) == 0 {
			break
		}
		out = intersectPostings(out, next)
	}
	return out, true
}

// intersectPostings intersects two ascending posting lists. The result can
// be no larger than the smaller input, so that is all it allocates.
func intersectPostings(a, b []int32) []int32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]int32, 0, n)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Select returns points passing the filter in canonical (SKU alias, input,
// nodes) order. Indexed fields probe the smallest posting list; only the
// residual predicates are evaluated per candidate.
func (sn *Snapshot) Select(f Filter) []Point {
	c := f.Canonical()
	return sn.selectCanonical(&c)
}

func (sn *Snapshot) selectCanonical(c *CanonicalFilter) []Point {
	cf, ok := sn.resolve(c)
	if !ok {
		return nil // a constrained symbol is absent: nothing can match
	}
	list, indexed := sn.postings(c)
	if indexed && len(list) == 0 {
		return nil
	}
	// Large candidate domains fan out across cores; the cutoff keeps small
	// snapshots and tight index probes on the single-threaded path (see
	// parallel.go). Both paths emit candidates in the same order, so the
	// output is byte-identical either way.
	domain := len(sn.sorted)
	if indexed {
		domain = len(list)
	}
	if workers := selectParallelism(); workers > 1 && domain >= parallelSelectMinCandidates {
		if !indexed {
			list = nil
		}
		return sn.selectParallel(&cf, list, domain, workers)
	}
	if indexed {
		// Preallocate from the posting length; return nil (not an empty
		// non-nil slice) when nothing matches, like the scan baseline.
		out := make([]Point, 0, len(list))
		for _, i := range list {
			if sn.matchAt(&cf, int(i)) {
				sn.ensureRow(int(i))
				out = append(out, sn.sorted[i])
			}
		}
		if len(out) == 0 {
			return nil
		}
		return out
	}
	var out []Point
	for i := range sn.sorted {
		if sn.matchAt(&cf, i) {
			sn.ensureRow(i)
			out = append(out, sn.sorted[i])
		}
	}
	return out
}

// GroupSeries groups filtered points into plot series. Select already
// returns (SKU alias, input, nodes) order, so each (alias, input) group is
// one contiguous run of the selection: the groups are subslices of a
// single allocation, not per-point map appends. Callers treat the series
// as read-only (the engine's memoized maps already impose that), so the
// shared backing array is safe; the three-index subslice makes a stray
// append reallocate instead of clobbering the next group.
func (sn *Snapshot) GroupSeries(f Filter) map[SeriesKey][]Point {
	sel := sn.Select(f)
	out := make(map[SeriesKey][]Point)
	for start := 0; start < len(sel); {
		end := start + 1
		for end < len(sel) && sel[end].SKUAlias == sel[start].SKUAlias && sel[end].InputDesc == sel[start].InputDesc {
			end++
		}
		k := SeriesKey{SKUAlias: sel[start].SKUAlias, InputDesc: sel[start].InputDesc}
		out[k] = sel[start:end:end]
		start = end
	}
	return out
}

// buildSnapshot constructs the snapshot for points at gen. When prev covers
// a prefix of points (the append-only store guarantees it), only the new
// suffix is sorted and merged with prev's already-sorted slice, so a
// snapshot rebuild after k appends costs O(k log k + n) instead of
// O(n log n).
func buildSnapshot(prev *Snapshot, points []Point, gen uint64) *Snapshot {
	sn := &Snapshot{gen: gen, n: len(points)}
	var sortedPrefix []Point
	covered := 0
	if prev != nil && prev.n <= len(points) {
		sortedPrefix = prev.sorted
		covered = prev.n
	}
	fresh := make([]Point, len(points)-covered)
	copy(fresh, points[covered:])
	sort.SliceStable(fresh, func(i, j int) bool { return pointLess(&fresh[i], &fresh[j]) })
	sn.sorted = mergeSorted(sortedPrefix, fresh)
	sn.buildIndexes()
	// Hot fronts are precomputed eagerly on bulk builds (seed loads, batch
	// merges), where the sweep cost amortizes over the whole load; under
	// fine-grained appends each front defers to its first query, so a
	// one-point append never pays a full front pass up front.
	sn.buildHotFronts(covered == 0 || len(fresh)*8 >= len(points))
	return sn
}

// mergeSorted stably merges two sorted slices; on equal keys the left
// (earlier-appended) element wins, preserving append order.
func mergeSorted(a, b []Point) []Point {
	if len(b) == 0 {
		return a
	}
	out := make([]Point, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if pointLess(&b[j], &a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func (sn *Snapshot) buildIndexes() {
	n := len(sn.sorted)
	sn.byApp = make(map[string][]int32)
	sn.bySKU = make(map[string][]int32)
	sn.byInput = make(map[string][]int32)
	sn.col = columns{
		syms:   make(map[string]uint32),
		app:    make([]uint32, n),
		sku:    make([]uint32, n),
		alias:  make([]uint32, n),
		input:  make([]uint32, n),
		nodes:  make([]int32, n),
		exec:   make([]float64, n),
		cost:   make([]float64, n),
		failed: make([]uint64, (n+63)/64),
	}
	appSeen := make(map[string]bool)
	for i := range sn.sorted {
		p := &sn.sorted[i]
		pos := int32(i)
		app := strings.ToLower(p.AppName)
		sn.byApp[app] = append(sn.byApp[app], pos)
		sku := strings.ToLower(p.SKU)
		sn.bySKU[sku] = append(sn.bySKU[sku], pos)
		alias := strings.ToLower(p.SKUAlias)
		if alias != sku {
			sn.bySKU[alias] = append(sn.bySKU[alias], pos)
		}
		sn.byInput[p.InputDesc] = append(sn.byInput[p.InputDesc], pos)
		sn.col.app[i] = sn.col.intern(app)
		sn.col.sku[i] = sn.col.intern(sku)
		sn.col.alias[i] = sn.col.intern(alias)
		sn.col.input[i] = sn.col.intern(p.InputDesc)
		sn.col.nodes[i] = int32(p.NNodes)
		sn.col.exec[i] = p.ExecTimeSec
		sn.col.cost[i] = p.CostUSD
		if p.Failed {
			sn.col.failed[i>>6] |= 1 << (uint(i) & 63)
		}
		if !appSeen[p.AppName] {
			appSeen[p.AppName] = true
			sn.apps = append(sn.apps, p.AppName)
		}
		// The sorted order is (alias, input, nodes), so distinct aliases and
		// per-alias distinct inputs arrive in runs; inputs still need a
		// global dedup since one input recurs across aliases.
		if len(sn.skus) == 0 || sn.skus[len(sn.skus)-1] != p.SKUAlias {
			sn.skus = append(sn.skus, p.SKUAlias)
		}
	}
	sn.inputs = make([]string, 0, len(sn.byInput))
	for in := range sn.byInput {
		sn.inputs = append(sn.inputs, in)
	}
	sort.Strings(sn.apps)
	sort.Strings(sn.inputs)
}

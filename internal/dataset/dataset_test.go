package dataset

import (
	"bufio"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"hpcadvisor/internal/monitor"
)

func samplePoint(sku, alias string, nodes int, exect, cost float64) Point {
	return Point{
		ScenarioID:  "lammps-" + alias,
		AppName:     "lammps",
		SKU:         sku,
		SKUAlias:    alias,
		NNodes:      nodes,
		PPN:         120,
		InputDesc:   "atoms=864M",
		ExecTimeSec: exect,
		CostUSD:     cost,
		Tags:        map[string]string{"version": "v1"},
		Metrics:     map[string]string{"APPEXECTIME": "36"},
		Utilization: monitor.Sample{CPUUtil: 0.8, MemBWUtil: 0.2, NetUtil: 0.1},
		Bottleneck:  monitor.BottleneckCPU,
	}
}

func populated() *Store {
	s := NewStore()
	s.Add(samplePoint("Standard_HB120rs_v3", "hb120rs_v3", 16, 36, 0.576))
	s.Add(samplePoint("Standard_HB120rs_v3", "hb120rs_v3", 8, 69, 0.552))
	s.Add(samplePoint("Standard_HB120rs_v2", "hb120rs_v2", 16, 43, 0.688))
	s.Add(samplePoint("Standard_HC44rs", "hc44rs", 16, 99, 1.394))
	failed := samplePoint("Standard_HC44rs", "hc44rs", 1, 0, 0)
	failed.Failed = true
	failed.Error = "out of memory"
	s.Add(failed)
	other := samplePoint("Standard_HB120rs_v3", "hb120rs_v3", 4, 55, 0.222)
	other.AppName = "openfoam"
	other.InputDesc = "cells=8M"
	s.Add(other)
	return s
}

func TestSelectDefaultsExcludeFailed(t *testing.T) {
	s := populated()
	got := s.Select(Filter{})
	if len(got) != 5 {
		t.Fatalf("Select = %d points, want 5 (failed excluded)", len(got))
	}
	withFailed := s.Select(Filter{IncludeFailed: true})
	if len(withFailed) != 6 {
		t.Fatalf("Select incl failed = %d, want 6", len(withFailed))
	}
}

func TestFilterFields(t *testing.T) {
	s := populated()
	if got := s.Select(Filter{AppName: "lammps"}); len(got) != 4 {
		t.Errorf("by app = %d, want 4", len(got))
	}
	// SKU matches by alias or full name, case-insensitively.
	if got := s.Select(Filter{SKU: "hb120rs_v3"}); len(got) != 3 {
		t.Errorf("by alias = %d, want 3", len(got))
	}
	if got := s.Select(Filter{SKU: "STANDARD_HB120RS_V3"}); len(got) != 3 {
		t.Errorf("by name = %d, want 3", len(got))
	}
	if got := s.Select(Filter{InputDesc: "cells=8M"}); len(got) != 1 {
		t.Errorf("by input = %d, want 1", len(got))
	}
	if got := s.Select(Filter{MinNodes: 8}); len(got) != 4 {
		t.Errorf("min nodes = %d, want 4", len(got))
	}
	if got := s.Select(Filter{MaxNodes: 8}); len(got) != 2 {
		t.Errorf("max nodes = %d, want 2", len(got))
	}
	if got := s.Select(Filter{Tags: map[string]string{"version": "v1"}}); len(got) != 5 {
		t.Errorf("by tag = %d, want 5", len(got))
	}
	if got := s.Select(Filter{Tags: map[string]string{"version": "v2"}}); len(got) != 0 {
		t.Errorf("wrong tag = %d, want 0", len(got))
	}
}

func TestSelectOrdering(t *testing.T) {
	s := populated()
	got := s.Select(Filter{AppName: "lammps"})
	// Ordered by (alias, input, nodes): hb120rs_v2 before hb120rs_v3, and
	// within v3, 8 nodes before 16.
	if got[0].SKUAlias != "hb120rs_v2" {
		t.Errorf("first = %s", got[0].SKUAlias)
	}
	if got[1].SKUAlias != "hb120rs_v3" || got[1].NNodes != 8 {
		t.Errorf("second = %s n=%d", got[1].SKUAlias, got[1].NNodes)
	}
	if got[2].NNodes != 16 {
		t.Errorf("third n = %d", got[2].NNodes)
	}
}

func TestGroupSeries(t *testing.T) {
	s := populated()
	series := s.GroupSeries(Filter{AppName: "lammps"})
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3 (one per SKU)", len(series))
	}
	v3 := series[SeriesKey{SKUAlias: "hb120rs_v3", InputDesc: "atoms=864M"}]
	if len(v3) != 2 {
		t.Fatalf("v3 series = %d points", len(v3))
	}
	if v3[0].NNodes != 8 || v3[1].NNodes != 16 {
		t.Errorf("series not sorted by nodes: %d, %d", v3[0].NNodes, v3[1].NNodes)
	}
	key := SeriesKey{SKUAlias: "hb120rs_v3", InputDesc: "atoms=864M"}
	if key.String() != "hb120rs_v3 (atoms=864M)" {
		t.Errorf("key = %q", key.String())
	}
	if (SeriesKey{SKUAlias: "x"}).String() != "x" {
		t.Error("input-less key should be alias only")
	}
}

func TestAppsEnumeration(t *testing.T) {
	s := populated()
	apps := s.Apps()
	if len(apps) != 2 || apps[0] != "lammps" || apps[1] != "openfoam" {
		t.Errorf("Apps = %v", apps)
	}
}

func TestTotalCores(t *testing.T) {
	p := samplePoint("Standard_HB120rs_v3", "hb120rs_v3", 16, 36, 0.576)
	if p.TotalCores() != 1920 {
		t.Errorf("cores = %d, want 1920 (paper: scenarios run up to 1,920 cores)", p.TotalCores())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := populated()
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), s.Len())
	}
	a, b := s.All(), got.All()
	for i := range a {
		if a[i].ScenarioID != b[i].ScenarioID || a[i].ExecTimeSec != b[i].ExecTimeSec ||
			a[i].Failed != b[i].Failed || a[i].Metrics["APPEXECTIME"] != b[i].Metrics["APPEXECTIME"] {
			t.Errorf("point %d mismatch: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFileRoundTripAndMissingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dataset.jsonl")
	s := populated()
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Errorf("len = %d", got.Len())
	}
	// Missing file is an empty store, not an error.
	empty, err := LoadFile(filepath.Join(dir, "absent.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("missing file len = %d", empty.Len())
	}
}

func TestUnmarshalSkipsBlankLinesRejectsGarbage(t *testing.T) {
	good := "\n{\"scenario_id\":\"a\",\"appname\":\"x\",\"sku\":\"s\",\"sku_alias\":\"s\",\"nnodes\":1,\"ppn\":1,\"input_desc\":\"\",\"exectime_sec\":1,\"cost_usd\":1,\"utilization\":{\"cpu_util\":0,\"membw_util\":0,\"net_util\":0},\"collected_at\":0}\n\n"
	s, err := Unmarshal([]byte(good))
	if err != nil || s.Len() != 1 {
		t.Fatalf("good parse: %v len=%d", err, s.Len())
	}
	if _, err := Unmarshal([]byte("{\"x\": }\n")); err == nil {
		t.Error("garbage should fail")
	}
}

// Property: filters never return points that fail Match, and Select is a
// subset of All.
func TestPropertyFilterSoundness(t *testing.T) {
	s := populated()
	f := func(minN, maxN uint8, includeFailed bool) bool {
		filter := Filter{MinNodes: int(minN % 20), MaxNodes: int(maxN % 20), IncludeFailed: includeFailed}
		selected := s.Select(filter)
		if len(selected) > s.Len() {
			return false
		}
		for _, p := range selected {
			if !filter.Match(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

//
// Unmarshal / LoadFile error paths
//

func TestUnmarshalTruncatedFinalLine(t *testing.T) {
	s := populated()
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Cut the last record mid-JSON: a torn tail from a crashed writer.
	torn := data[:len(data)-20]
	if _, err := Unmarshal(torn); err == nil {
		t.Fatal("truncated final line should fail to parse")
	} else if !strings.Contains(err.Error(), "line 6") {
		t.Errorf("error should name the offending line, got %v", err)
	}
}

func TestUnmarshalOversizedLineVsScannerCap(t *testing.T) {
	// One line just under the 16MB scanner cap parses; one over it errors
	// (bufio.ErrTooLong) instead of silently splitting the record.
	big := samplePoint("Standard_HB120rs_v3", "hb120rs_v3", 2, 10, 0.1)
	big.Metrics = map[string]string{"BLOB": strings.Repeat("x", 1<<20)}
	s := NewStore()
	s.Add(big)
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(data); err != nil {
		t.Fatalf("1MB line should parse: %v", err)
	}

	over := []byte(`{"scenario_id":"huge","metrics":{"BLOB":"` + strings.Repeat("y", 16*1024*1024) + `"}}` + "\n")
	if _, err := Unmarshal(over); err == nil {
		t.Fatal("a line beyond the 16MB cap must error, not truncate")
	} else if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("want bufio.ErrTooLong, got %v", err)
	}
}

func TestLoadFileEmptyAndMissingSemantics(t *testing.T) {
	dir := t.TempDir()

	// Missing file: a fresh environment starts with an empty store.
	missing, err := LoadFile(filepath.Join(dir, "nope.jsonl"))
	if err != nil || missing.Len() != 0 {
		t.Fatalf("missing file: len=%d err=%v", missing.Len(), err)
	}

	// Empty file: also an empty store, not an error.
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := LoadFile(empty)
	if err != nil || st.Len() != 0 {
		t.Fatalf("empty file: len=%d err=%v", st.Len(), err)
	}

	// Whitespace-only file: same.
	blank := filepath.Join(dir, "blank.jsonl")
	if err := os.WriteFile(blank, []byte("\n\n  \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err = LoadFile(blank)
	if err != nil || st.Len() != 0 {
		t.Fatalf("blank file: len=%d err=%v", st.Len(), err)
	}

	// A directory at the path is an error, not an empty store.
	if _, err := LoadFile(dir); err == nil {
		t.Error("loading a directory should error")
	}
}

func TestSaveFileIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dataset.jsonl")
	s := populated()
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(path); err != nil { // overwrite in place
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("save must leave no staging files, dir has %d entries", len(entries))
	}
	loaded, err := LoadFile(path)
	if err != nil || loaded.Len() != s.Len() {
		t.Fatalf("reload: len=%d err=%v", loaded.Len(), err)
	}
}

//
// Append-through sink
//

// recordingSink captures appends and syncs; failAfter > 0 makes Append
// start failing after that many points.
type recordingSink struct {
	appended  []Point
	syncs     int
	failAfter int
}

func (r *recordingSink) Append(p Point) error {
	if r.failAfter > 0 && len(r.appended) >= r.failAfter {
		return errors.New("sink full")
	}
	r.appended = append(r.appended, p)
	return nil
}

func (r *recordingSink) Sync() error {
	r.syncs++
	return nil
}

func TestStoreAttachWritesThroughInOrder(t *testing.T) {
	sink := &recordingSink{}
	s := NewStore()
	s.Add(samplePoint("Standard_HC44rs", "hc44rs", 1, 5, 0.1)) // before attach: not replayed
	s.Attach(sink)
	s.Add(samplePoint("Standard_HC44rs", "hc44rs", 2, 6, 0.2))
	s.AddAll([]Point{
		samplePoint("Standard_HC44rs", "hc44rs", 4, 7, 0.3),
		samplePoint("Standard_HC44rs", "hc44rs", 8, 8, 0.4),
	})
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if sink.syncs != 1 {
		t.Errorf("Flush should sync the sink once, got %d", sink.syncs)
	}
	if len(sink.appended) != 3 {
		t.Fatalf("sink saw %d points, want 3 (pre-attach point not replayed)", len(sink.appended))
	}
	for i, want := range []int{2, 4, 8} {
		if sink.appended[i].NNodes != want {
			t.Errorf("sink order [%d] = %d nodes, want %d", i, sink.appended[i].NNodes, want)
		}
	}
	// Detach: appends stop flowing through.
	s.Attach(nil)
	s.Add(samplePoint("Standard_HC44rs", "hc44rs", 16, 9, 0.5))
	if len(sink.appended) != 3 {
		t.Errorf("detached sink still saw appends")
	}
}

func TestStoreFlushSurfacesStickySinkError(t *testing.T) {
	sink := &recordingSink{failAfter: 1}
	s := NewStore()
	s.Attach(sink)
	s.Add(samplePoint("Standard_HC44rs", "hc44rs", 1, 5, 0.1))
	s.Add(samplePoint("Standard_HC44rs", "hc44rs", 2, 6, 0.2)) // sink rejects
	if err := s.Flush(); err == nil {
		t.Fatal("Flush must surface the write-through failure")
	}
	// The store itself still holds both points (memory is the source of
	// truth for queries; durability errors are the caller's to handle).
	if s.Len() != 2 {
		t.Errorf("store len = %d, want 2", s.Len())
	}
}

//
// Seeded stores (fast snapshot loads)
//

func TestNewSeededStoreFullCoverageServesSeedDirectly(t *testing.T) {
	ref := populated()
	pts := ref.All()
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.SliceStable(sorted, func(i, j int) bool { return PointLess(&sorted[i], &sorted[j]) })

	seeded := NewSeededStore(ref.All(), sorted)
	for _, f := range []Filter{{}, {AppName: "lammps"}, {SKU: "hc44rs"}, {IncludeFailed: true}} {
		got, want := seeded.Select(f), ref.Select(f)
		if len(got) != len(want) {
			t.Fatalf("Select(%+v): %d vs %d", f, len(got), len(want))
		}
		for i := range got {
			if got[i].ScenarioID != want[i].ScenarioID || got[i].NNodes != want[i].NNodes {
				t.Fatalf("Select(%+v)[%d] diverges", f, i)
			}
		}
	}
	gotM, _ := seeded.Marshal()
	wantM, _ := ref.Marshal()
	if string(gotM) != string(wantM) {
		t.Fatal("seeded Marshal differs")
	}
}

func TestNewSeededStorePartialPrefixMergesTail(t *testing.T) {
	ref := populated()
	pts := ref.All()
	k := 3 // snapshot covers only the first 3 appends; the tail merges
	prefix := make([]Point, k)
	copy(prefix, pts[:k])
	sort.SliceStable(prefix, func(i, j int) bool { return PointLess(&prefix[i], &prefix[j]) })

	seeded := NewSeededStore(ref.All(), prefix)
	got, want := seeded.Select(Filter{IncludeFailed: true}), ref.Select(Filter{IncludeFailed: true})
	if len(got) != len(want) {
		t.Fatalf("partial seed Select: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ScenarioID != want[i].ScenarioID || got[i].NNodes != want[i].NNodes {
			t.Fatalf("partial seed Select[%d] diverges: %s/%d vs %s/%d",
				i, got[i].ScenarioID, got[i].NNodes, want[i].ScenarioID, want[i].NNodes)
		}
	}
}

func TestNewSeededStoreRejectsUnsortedSeed(t *testing.T) {
	ref := populated()
	pts := ref.All()
	backwards := make([]Point, len(pts))
	copy(backwards, pts)
	sort.SliceStable(backwards, func(i, j int) bool { return PointLess(&backwards[j], &backwards[i]) })

	seeded := NewSeededStore(ref.All(), backwards) // lying seed: must be ignored
	got, want := seeded.Select(Filter{}), ref.Select(Filter{})
	if len(got) != len(want) {
		t.Fatalf("Select: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ScenarioID != want[i].ScenarioID || got[i].NNodes != want[i].NNodes {
			t.Fatalf("unsorted seed corrupted query order at %d", i)
		}
	}
}

func TestNewSeededStoreRejectsMismatchedSeed(t *testing.T) {
	ref := populated()
	pts := ref.All()

	// A sorted prefix built from DIFFERENT points — the shape of a stale or
	// cross-dataset snapshot segment. It passes the order check, so only the
	// fingerprint verification stands between it and wrong query results.
	alien := make([]Point, len(pts))
	copy(alien, pts)
	for i := range alien {
		alien[i].ScenarioID = "alien-" + alien[i].ScenarioID
	}
	sort.SliceStable(alien, func(i, j int) bool { return PointLess(&alien[i], &alien[j]) })

	seeded := NewSeededStore(ref.All(), alien)
	got, want := seeded.Select(Filter{IncludeFailed: true}), ref.Select(Filter{IncludeFailed: true})
	if len(got) != len(want) {
		t.Fatalf("Select: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ScenarioID != want[i].ScenarioID {
			t.Fatalf("mismatched seed leaked into query results at %d: %q vs %q",
				i, got[i].ScenarioID, want[i].ScenarioID)
		}
	}
}

func TestSeededGenerationIsLogPosition(t *testing.T) {
	ref := populated()
	pts := ref.All()
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.SliceStable(sorted, func(i, j int) bool { return PointLess(&sorted[i], &sorted[j]) })

	// The generation of a loaded store is the number of points ever appended
	// to the log it replays — NOT a local counter. Two replicas loading the
	// same log (one through the seeded fast path, one by replaying appends)
	// must agree, because the API ETag is derived from it.
	seeded := NewSeededStore(ref.All(), sorted)
	if got, want := seeded.Generation(), uint64(len(pts)); got != want {
		t.Fatalf("seeded generation %d, want log position %d", got, want)
	}
	replayed := NewStore()
	for _, p := range pts {
		replayed.Add(p)
	}
	if seeded.Generation() != replayed.Generation() {
		t.Fatalf("seeded (%d) and replayed (%d) stores disagree on generation",
			seeded.Generation(), replayed.Generation())
	}

	// Appends advance the position by exactly the number of points appended,
	// on both stores in lockstep.
	seeded.Add(pts[0])
	replayed.Add(pts[0])
	seeded.AddAll(pts[:3])
	replayed.AddAll(pts[:3])
	if got, want := seeded.Generation(), uint64(len(pts)+4); got != want {
		t.Fatalf("generation %d after appends, want %d", got, want)
	}
	if seeded.Generation() != replayed.Generation() {
		t.Fatal("stores diverged after identical appends")
	}

	// A partial seed covers fewer points but the store generation is still
	// the full log position.
	partial := make([]Point, 2)
	copy(partial, pts[:2])
	sort.SliceStable(partial, func(i, j int) bool { return PointLess(&partial[i], &partial[j]) })
	if got, want := NewSeededStore(ref.All(), partial).Generation(), uint64(len(pts)); got != want {
		t.Fatalf("partial-seed generation %d, want %d", got, want)
	}
}

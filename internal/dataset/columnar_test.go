package dataset

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// naiveAdvice is an independent O(n^2) advice oracle (the FrontNaive
// pattern, reimplemented here because dataset cannot import pareto):
// dominance scan with exact duplicates resolved to the first occurrence,
// then a stable presentation sort. Both the columnar hot fronts and
// pareto.Advice(SelectScan(f)) must match it byte for byte; the
// cross-package half of that triangle runs in queryengine's equivalence
// suite.
func naiveAdvice(points []Point, byCost bool) []Point {
	var ok []Point
	for _, p := range points {
		if !p.Failed {
			ok = append(ok, p)
		}
	}
	var front []Point
	for i, p := range ok {
		dominated := false
		for j, q := range ok {
			if i == j {
				continue
			}
			if q.ExecTimeSec <= p.ExecTimeSec && q.CostUSD <= p.CostUSD &&
				(q.ExecTimeSec < p.ExecTimeSec || q.CostUSD < p.CostUSD) {
				dominated = true
				break
			}
			if q.ExecTimeSec == p.ExecTimeSec && q.CostUSD == p.CostUSD && j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	if byCost {
		sort.SliceStable(front, func(i, j int) bool { return front[i].CostUSD < front[j].CostUSD })
	} else {
		sort.SliceStable(front, func(i, j int) bool { return front[i].ExecTimeSec < front[j].ExecTimeSec })
	}
	return front
}

// hotCandidateFilters enumerates every filter the snapshot may have
// precomputed: unfiltered plus each single app/alias/input.
func hotCandidateFilters(sn *Snapshot) []Filter {
	filters := []Filter{{}}
	for _, app := range sn.Apps() {
		filters = append(filters, Filter{AppName: app})
	}
	for _, alias := range sn.SKUAliases() {
		filters = append(filters, Filter{SKU: alias})
	}
	for _, in := range sn.Inputs() {
		if in != "" {
			filters = append(filters, Filter{InputDesc: in})
		}
	}
	return filters
}

// The columnar Select must agree with the scan baseline on the non-indexed
// corners the property test only hits probabilistically: tag-only filters,
// IncludeFailed, node bounds alone, alias vs full-SKU spelling, absent
// symbols, and the empty filter.
func TestColumnarSelectCorners(t *testing.T) {
	s := randomStore(rand.New(rand.NewSource(7)), 400)
	corners := []Filter{
		{},
		{IncludeFailed: true},
		{Tags: map[string]string{"run": "r1"}},
		{Tags: map[string]string{"run": "r1"}, IncludeFailed: true},
		{Tags: map[string]string{"run": "nosuch"}},
		{MinNodes: 2, MaxNodes: 8},
		{MinNodes: 16},
		{MaxNodes: 1},
		{SKU: "Standard_HB120rs_v3"},           // full SKU name
		{SKU: "hb120rs_v3"},                    // alias
		{SKU: "STANDARD_HB120RS_V3"},           // full name, folded
		{AppName: "GROMACS", SKU: "hc44rs"},    // two indexed fields
		{AppName: "nosuchapp"},                 // absent symbol
		{InputDesc: "atoms=864m"},              // inputs are case-sensitive: no match
		{InputDesc: "atoms=864M", MinNodes: 4}, // indexed + residual
		{AppName: "lammps", SKU: "hb120rs_v3", InputDesc: "cells=8M", MinNodes: 2, MaxNodes: 16,
			Tags: map[string]string{"run": "r0"}, IncludeFailed: true},
	}
	for i, f := range corners {
		got, want := s.Select(f), s.SelectScan(f)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("corner %d (%+v): columnar Select diverges from scan (%d vs %d pts)", i, f, len(got), len(want))
		}
		groups := s.Snapshot().GroupSeries(f)
		naive := map[SeriesKey][]Point{}
		for _, p := range want {
			k := SeriesKey{SKUAlias: p.SKUAlias, InputDesc: p.InputDesc}
			naive[k] = append(naive[k], p)
		}
		if !reflect.DeepEqual(groups, naive) {
			t.Errorf("corner %d (%+v): GroupSeries diverges from naive grouping", i, f)
		}
	}
}

// Every precomputed hot front must match the independent dominance oracle
// applied to the scan baseline, in both presentation orders, and the
// pre-serialized rows must be byte-identical to encoding/json over the
// same rows.
func TestHotFrontMatchesNaiveOracle(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := randomStore(rand.New(rand.NewSource(seed)), 300)
		sn := s.Snapshot()
		hot := 0
		for _, f := range hotCandidateFilters(sn) {
			c := f.Canonical()
			for _, byCost := range []bool{false, true} {
				rows, ok := sn.HotAdvice(&c, byCost)
				if !ok {
					continue
				}
				hot++
				want := naiveAdvice(s.SelectScan(f), byCost)
				if !reflect.DeepEqual(rows, want) {
					t.Fatalf("seed %d filter %+v byCost=%v: hot front diverges from oracle (%d vs %d rows)",
						seed, f, byCost, len(rows), len(want))
				}
				frag, count, ok := sn.HotAdviceJSON(&c, byCost)
				if !ok || count != len(rows) {
					t.Fatalf("seed %d filter %+v: HotAdviceJSON ok=%v count=%d, want %d rows", seed, f, ok, count, len(rows))
				}
				marshalable := rows
				if marshalable == nil {
					marshalable = []Point{}
				}
				wantJSON, err := json.Marshal(marshalable)
				if err != nil {
					t.Fatal(err)
				}
				if string(frag) != string(wantJSON) {
					t.Fatalf("seed %d filter %+v: pre-serialized rows differ from json.Marshal\n got: %s\nwant: %s",
						seed, f, frag, wantJSON)
				}
			}
		}
		if hot == 0 {
			t.Fatalf("seed %d: no hot fronts at all", seed)
		}
		// Multi-field filters are never hot: the engine must fall back.
		c := (Filter{AppName: "lammps", SKU: "hb120rs_v3"}).Canonical()
		if _, ok := sn.HotAdvice(&c, false); ok {
			t.Error("two-field filter unexpectedly has a precomputed front")
		}
	}
}

// Exact (time, cost) duplicates across different SKUs pin the stable
// tie-break: the first point in canonical select order wins, matching the
// oracle's first-occurrence rule. This is the case an unstable sort is
// free to get wrong.
func TestHotFrontDuplicateTieBreak(t *testing.T) {
	s := NewStore()
	mk := func(id, alias string, n int, t, c float64) Point {
		return Point{ScenarioID: id, AppName: "lammps", SKU: "Standard_" + alias, SKUAlias: alias, NNodes: n, ExecTimeSec: t, CostUSD: c}
	}
	// zz sorts after aa canonically but is appended first; identical
	// metrics mean only the tie-break decides which survives.
	s.Add(mk("dup-z", "zz", 1, 100, 5))
	s.Add(mk("dup-a", "aa", 1, 100, 5))
	s.Add(mk("cheap", "aa", 2, 200, 1))
	s.Add(mk("fast", "zz", 2, 50, 9))
	sn := s.Snapshot()
	c := (Filter{}).Canonical()
	for _, byCost := range []bool{false, true} {
		rows, ok := sn.HotAdvice(&c, byCost)
		if !ok {
			t.Fatal("empty filter must be hot")
		}
		want := naiveAdvice(s.SelectScan(Filter{}), byCost)
		if !reflect.DeepEqual(rows, want) {
			t.Fatalf("byCost=%v: duplicate tie-break diverges from oracle\n got: %v\nwant: %v",
				byCost, ids(rows), ids(want))
		}
		for _, r := range rows {
			if r.ScenarioID == "dup-z" {
				t.Error("tie-break kept the later point in canonical order")
			}
		}
	}
}

func ids(rows []Point) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.ScenarioID
	}
	return out
}

// Fine-grained appends take the lazy hot-front path (compute on first
// use); bulk builds the eager one. Both must serve the same rows as the
// oracle at every generation.
func TestHotFrontLazyAfterAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomStore(rng, 200) // bulk: first snapshot builds fronts eagerly
	f := Filter{AppName: "lammps"}
	for i := 0; i < 5; i++ {
		p := randomStore(rand.New(rand.NewSource(int64(100+i))), 1).All()[0]
		p.ScenarioID = fmt.Sprintf("late-%d", i)
		s.Add(p) // one-point append: fronts defer to first query
		sn := s.Snapshot()
		c := f.Canonical()
		rows, ok := sn.HotAdvice(&c, false)
		if !ok {
			t.Fatalf("append %d: per-app filter must stay hot", i)
		}
		if want := naiveAdvice(s.SelectScan(f), false); !reflect.DeepEqual(rows, want) {
			t.Fatalf("append %d: lazily computed front diverges from oracle", i)
		}
	}
}

// sortByTimeCost must order positions exactly like sort.SliceStable with
// the same keys — including ties, which the merge must resolve to input
// order.
func TestSortByTimeCostStable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		exec := make([]float64, n)
		cost := make([]float64, n)
		for i := range exec {
			exec[i] = float64(rng.Intn(5)) // heavy duplication forces tie-breaks
			cost[i] = float64(rng.Intn(3))
		}
		idx := make([]int32, n)
		want := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
			want[i] = int32(i)
		}
		sortByTimeCost(idx, exec, cost)
		sort.SliceStable(want, func(a, b int) bool {
			if exec[want[a]] != exec[want[b]] {
				return exec[want[a]] < exec[want[b]]
			}
			return cost[want[a]] < cost[want[b]]
		})
		if !reflect.DeepEqual(idx, want) {
			t.Fatalf("trial %d: merge sort diverges from SliceStable\n got: %v\nwant: %v", trial, idx, want)
		}
	}
}

// asciiOnly strips non-ASCII bytes from fuzz-generated filter strings.
// strings.EqualFold (the scan oracle) and the ToLower-keyed indexes
// disagree on a few exotic folds (e.g. U+017F LATIN SMALL LETTER LONG S
// folds to "s" but does not lowercase to it) — a divergence that predates
// the columnar path, since posting keys were always ToLower. The suite
// pins columnar and scan together on the byte range where the two folds
// agree.
func asciiOnly(s string) string {
	b := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] < 0x80 {
			b = append(b, s[i])
		}
	}
	return string(b)
}

// FuzzColumnarSelect drives arbitrary filters at randomized stores and
// requires the columnar Select and GroupSeries to match the scan baseline
// exactly.
func FuzzColumnarSelect(f *testing.F) {
	f.Add(int64(1), "lammps", "hb120rs_v3", "atoms=864M", 0, 0, false, false)
	f.Add(int64(2), "LAMMPS", "STANDARD_HC44RS", "", 2, 16, true, true)
	f.Add(int64(3), "", "", "", -3, 0, false, true)
	f.Add(int64(4), "wrf", "nosuchsku", "cells=8M", 1, 1, true, false)
	f.Fuzz(func(t *testing.T, seed int64, app, sku, input string, minN, maxN int, includeFailed, tagFilter bool) {
		rng := rand.New(rand.NewSource(seed))
		s := randomStore(rng, 30+int(uint64(seed)%150))
		fl := Filter{
			AppName:       asciiOnly(app),
			SKU:           asciiOnly(sku),
			InputDesc:     asciiOnly(input),
			MinNodes:      minN % 64,
			MaxNodes:      maxN % 64,
			IncludeFailed: includeFailed,
		}
		if tagFilter {
			fl.Tags = map[string]string{"run": "r1"}
		}
		got, want := s.Select(fl), s.SelectScan(fl)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("columnar Select diverges from scan for %+v (%d vs %d pts)", fl, len(got), len(want))
		}
		groups := s.Snapshot().GroupSeries(fl)
		naive := map[SeriesKey][]Point{}
		for _, p := range want {
			k := SeriesKey{SKUAlias: p.SKUAlias, InputDesc: p.InputDesc}
			naive[k] = append(naive[k], p)
		}
		if !reflect.DeepEqual(groups, naive) {
			t.Fatalf("GroupSeries diverges from naive grouping for %+v", fl)
		}
	})
}

package dataset

import (
	"encoding/json"
	"sort"
	"strings"
	"sync"
)

// This file implements the columnar side of a Snapshot: a struct-of-arrays
// mirror of the sorted points plus precomputed Pareto fronts for the hot
// filters. The row slice stays the source of truth (Select still returns
// []Point copies); the columns exist so the per-candidate filter predicate
// is a handful of integer compares over contiguous memory instead of
// case-folding 20-field structs, and so the Pareto sweep can sort candidate
// positions instead of copying full points.
//
// Everything here is immutable once the snapshot is published, with one
// carefully-scoped exception: each hotFront computes its rows at most once
// under a sync.Once (eagerly on bulk builds, on first use under
// fine-grained appends), which is safe for any number of concurrent
// readers.

// columns is the struct-of-arrays mirror of Snapshot.sorted. String fields
// are interned through one shared symbol table: two cells are equal iff
// their strings are equal, so cross-column compares (a filter SKU against
// both the full name and the alias column) are plain uint32 equality.
type columns struct {
	syms map[string]uint32 // interned symbol -> dense ID

	app    []uint32 // ToLower(AppName) symbol per point
	sku    []uint32 // ToLower(SKU) symbol per point
	alias  []uint32 // ToLower(SKUAlias) symbol per point
	input  []uint32 // exact InputDesc symbol per point
	nodes  []int32
	exec   []float64
	cost   []float64
	failed []uint64 // bitmap, one bit per point
}

func (cs *columns) intern(s string) uint32 {
	if id, ok := cs.syms[s]; ok {
		return id
	}
	id := uint32(len(cs.syms))
	cs.syms[s] = id
	return id
}

func (cs *columns) failedBit(i int) bool {
	return cs.failed[i>>6]&(1<<(uint(i)&63)) != 0
}

// colFilter is a CanonicalFilter with its string constraints resolved to
// this snapshot's symbol IDs, so matching a candidate does no string work
// at all (tags excepted — they stay a residual map probe on the row).
type colFilter struct {
	c                     *CanonicalFilter
	appID, skuID, inputID uint32
	hasApp, hasSKU, hasIn bool
}

// resolve interns the filter's string constraints against the snapshot's
// symbol table. A constrained value absent from the table matches nothing
// in any column, so lookups that miss still yield a correct (never-match)
// filter; the ok result lets callers skip the scan entirely.
func (sn *Snapshot) resolve(c *CanonicalFilter) (colFilter, bool) {
	cf := colFilter{c: c}
	if c.app != "" {
		id, ok := sn.col.syms[c.app]
		if !ok {
			return cf, false
		}
		cf.appID, cf.hasApp = id, true
	}
	if c.sku != "" {
		id, ok := sn.col.syms[c.sku]
		if !ok {
			return cf, false
		}
		cf.skuID, cf.hasSKU = id, true
	}
	if c.input != "" {
		id, ok := sn.col.syms[c.input]
		if !ok {
			return cf, false
		}
		cf.inputID, cf.hasIn = id, true
	}
	return cf, true
}

// matchAt reports whether point i passes the resolved filter. It mirrors
// CanonicalFilter.Match exactly (the property and fuzz suites pin the two
// together against SelectScan), touching only the columns until the tag
// residual.
func (sn *Snapshot) matchAt(cf *colFilter, i int) bool {
	col := &sn.col
	if !cf.c.includeFailed && col.failedBit(i) {
		return false
	}
	if cf.hasApp && col.app[i] != cf.appID {
		return false
	}
	if cf.hasSKU && col.sku[i] != cf.skuID && col.alias[i] != cf.skuID {
		return false
	}
	if cf.hasIn && col.input[i] != cf.inputID {
		return false
	}
	if cf.c.minNodes > 0 && int(col.nodes[i]) < cf.c.minNodes {
		return false
	}
	if cf.c.maxNodes > 0 && int(col.nodes[i]) > cf.c.maxNodes {
		return false
	}
	if len(cf.c.tags) > 0 {
		sn.ensureRow(i) // tags are a row residual; lazy rows must exist first
		for _, t := range cf.c.tags {
			if sn.sorted[i].Tags[t.k] != t.v {
				return false
			}
		}
	}
	return true
}

// sortByTimeCost stably sorts candidate positions by ascending (exec,
// cost), comparing column cells. The hand-rolled bottom-up merge avoids
// sort.SliceStable's reflection-based swaps on the per-generation front
// path. Stability is load-bearing, not a nicety: a stable sort's output is
// uniquely determined by keys and input order, so this sort and
// pareto.Front's sort.SliceStable produce the same permutation of the same
// candidates — which is what makes precomputed fronts byte-identical to
// the scan path even for exact (time, cost) duplicates.
func sortByTimeCost(idx []int32, exec, cost []float64) {
	n := len(idx)
	if n < 2 {
		return
	}
	less := func(a, b int32) bool {
		if exec[a] != exec[b] {
			return exec[a] < exec[b]
		}
		return cost[a] < cost[b]
	}
	buf := make([]int32, n)
	src, dst := idx, buf
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j := lo, mid
			for k := lo; k < hi; k++ {
				// Take left on ties: stability.
				if j >= hi || (i < mid && !less(src[j], src[i])) {
					dst[k] = src[i]
					i++
				} else {
					dst[k] = src[j]
					j++
				}
			}
		}
		src, dst = dst, src
	}
	if len(src) > 0 && &src[0] != &idx[0] {
		copy(idx, src)
	}
}

// frontPositions computes the Pareto front of the filter's matches
// straight from the columns: candidate positions (already in canonical
// select order) are stably sorted by (time, cost) and swept once. The
// sweep replicates pareto.Front expression for expression — including the
// NaN-tolerant minCost seed — so materializing the surviving positions
// equals pareto.Front(sn.Select(f)) byte for byte without copying the
// candidate points first. The returned positions are in by-time order and
// are exactly what the v2 snapshot format persists per hot front.
func (sn *Snapshot) frontPositions(c *CanonicalFilter) []int32 {
	cf, ok := sn.resolve(c)
	if !ok {
		return nil
	}
	var cand []int32
	if list, indexed := sn.postings(c); indexed {
		cand = make([]int32, 0, len(list))
		for _, i := range list {
			if !sn.col.failedBit(int(i)) && sn.matchAt(&cf, int(i)) {
				cand = append(cand, i)
			}
		}
	} else {
		cand = make([]int32, 0, len(sn.sorted))
		for i := range sn.sorted {
			if !sn.col.failedBit(i) && sn.matchAt(&cf, i) {
				cand = append(cand, int32(i))
			}
		}
	}
	if len(cand) == 0 {
		return nil
	}
	sortByTimeCost(cand, sn.col.exec, sn.col.cost)
	cost := sn.col.cost
	front := cand[:0] // survivors are a subsequence of cand: reuse it
	minCost := cost[cand[0]] + 1
	for _, i := range cand {
		if cost[i] < minCost {
			front = append(front, i)
			minCost = cost[i]
		}
	}
	return front
}

// frontCanonical materializes the front rows in by-time order.
func (sn *Snapshot) frontCanonical(c *CanonicalFilter) []Point {
	pos := sn.frontPositions(c)
	if len(pos) == 0 {
		return nil
	}
	front := make([]Point, len(pos))
	for i, p := range pos {
		sn.ensureRow(int(p))
		front[i] = sn.sorted[p]
	}
	return front
}

// hotFrontLimit caps how many filters get precomputed fronts per snapshot.
// Candidates (the unfiltered view, each app, each SKU alias, each input)
// are ranked by match count, so the cap keeps the filters that are most
// expensive to front on demand.
const hotFrontLimit = 24

// hotFront holds the precomputed advice for one hot filter: the Pareto
// front in both presentation orders plus the rows pre-serialized as a JSON
// array fragment the serving layer stitches into its envelope without
// reflection. Two provenances share the struct: a heap build computes
// everything inside once on first use, while a mapped snapshot arrives
// with the persisted positions and fragments preloaded (fromPos non-nil,
// jsonReady) so JSON serving never touches a row. All once-written fields
// are immutable after their single write.
type hotFront struct {
	c    CanonicalFilter
	once sync.Once

	// fromPos and the jsonReady fragment fields are set at construction
	// for persisted fronts and never written again; compute consumes them
	// instead of re-running the columnar sweep.
	fromPos   []int32
	jsonReady bool

	posByTime          []int32 // surviving positions, by-time order
	byTime, byCost     []Point
	timeJSON, costJSON []byte
	jsonOK             bool
}

func (hf *hotFront) compute(sn *Snapshot) {
	hf.once.Do(func() {
		pos := hf.fromPos
		if pos == nil {
			pos = sn.frontPositions(&hf.c)
		}
		hf.posByTime = pos
		if len(pos) > 0 {
			// The front's cost is strictly decreasing in time order, so the
			// cost ordering is its exact reversal — no second sort, and no
			// tie-break to disagree on.
			hf.byTime = make([]Point, len(pos))
			hf.byCost = make([]Point, len(pos))
			for i, p := range pos {
				sn.ensureRow(int(p))
				hf.byTime[i] = sn.sorted[p]
				hf.byCost[len(pos)-1-i] = sn.sorted[p]
			}
		}
		if !hf.jsonReady {
			hf.timeJSON, hf.costJSON, hf.jsonOK = marshalFrontRows(hf.byTime, hf.byCost)
		}
	})
}

// marshalFrontRows renders both orderings as JSON array fragments
// byte-identical to json.Marshal of the (nil-coalesced) slices. ok=false —
// a row that cannot marshal, e.g. a NaN metric — leaves the serving path
// on its reflect-based encoder, which surfaces the error properly.
func marshalFrontRows(byTime, byCost []Point) (timeJSON, costJSON []byte, ok bool) {
	timeJSON, ok = marshalRows(byTime)
	if !ok {
		return nil, nil, false
	}
	costJSON, ok = marshalRows(byCost)
	if !ok {
		return nil, nil, false
	}
	return timeJSON, costJSON, true
}

func marshalRows(rows []Point) ([]byte, bool) {
	buf := make([]byte, 0, 2+192*len(rows))
	buf = append(buf, '[')
	for i := range rows {
		b, err := json.Marshal(&rows[i])
		if err != nil {
			return nil, false
		}
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, b...)
	}
	return append(buf, ']'), true
}

// buildHotFronts selects the top-K single-field filters by match count and
// installs their (lazily or eagerly computed) precomputed fronts. The hot
// map itself is immutable after this returns; see hotFront for the
// compute-once discipline. Invalidation is the snapshot lifecycle itself:
// a generation roll builds a new snapshot with new hot entries, and the
// old ones are garbage the moment the last reader drops the old snapshot.
func (sn *Snapshot) buildHotFronts(eager bool) {
	type cand struct {
		f Filter
		n int
	}
	cands := make([]cand, 0, 1+len(sn.apps)+len(sn.skus)+len(sn.inputs))
	cands = append(cands, cand{Filter{}, len(sn.sorted)})
	for _, app := range sn.apps {
		cands = append(cands, cand{Filter{AppName: app}, len(sn.byApp[strings.ToLower(app)])})
	}
	for _, alias := range sn.skus {
		cands = append(cands, cand{Filter{SKU: alias}, len(sn.bySKU[strings.ToLower(alias)])})
	}
	for _, in := range sn.inputs {
		if in != "" {
			cands = append(cands, cand{Filter{InputDesc: in}, len(sn.byInput[in])})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].n > cands[j].n })
	if len(cands) > hotFrontLimit {
		cands = cands[:hotFrontLimit]
	}
	sn.hot = make(map[string]*hotFront, len(cands))
	for _, cd := range cands {
		c := cd.f.Canonical()
		hf := &hotFront{c: c}
		sn.hot[c.Key()] = hf
		if eager {
			hf.compute(sn)
		}
	}
}

// HotAdvice returns the precomputed advice rows for a hot filter in the
// requested order, or ok=false when the filter is not hot (the caller
// falls back to the on-demand front). The rows are shared with the
// snapshot and must be treated as read-only; the query engine copies
// before handing them to callers, exactly as it does for its own cache.
func (sn *Snapshot) HotAdvice(c *CanonicalFilter, byCost bool) ([]Point, bool) {
	hf := sn.hot[c.Key()]
	if hf == nil {
		return nil, false
	}
	hf.compute(sn)
	if byCost {
		return hf.byCost, true
	}
	return hf.byTime, true
}

// HotAdviceJSON returns the pre-serialized rows of a hot filter as a JSON
// array fragment plus the row count, or ok=false when the filter is not
// hot or its rows cannot marshal. The bytes are shared and must not be
// modified. Persisted fronts (mapped snapshots) serve straight from the
// preloaded fragments without triggering row materialization — the
// fragment bytes may alias the mapped file.
func (sn *Snapshot) HotAdviceJSON(c *CanonicalFilter, byCost bool) ([]byte, int, bool) {
	hf := sn.hot[c.Key()]
	if hf == nil {
		return nil, 0, false
	}
	if hf.jsonReady {
		if !hf.jsonOK {
			return nil, 0, false
		}
		if byCost {
			return hf.costJSON, len(hf.fromPos), true
		}
		return hf.timeJSON, len(hf.fromPos), true
	}
	hf.compute(sn)
	if !hf.jsonOK {
		return nil, 0, false
	}
	if byCost {
		return hf.costJSON, len(hf.byCost), true
	}
	return hf.timeJSON, len(hf.byTime), true
}

package dataset

// This file implements mmap-backed snapshots. A storage backend that
// persisted a snapshot's columnar state (format v2 segments) hands it back
// as a Columnar — typed slices aliasing the mapped file — and
// NewMappedStore builds a serving Snapshot directly over them: no JSON
// re-parse, no re-sort, no buildIndexes column rebuild. Row structs are
// materialized lazily in fixed-size chunks the first time a query actually
// touches one, so a cold process serves columnar filters and pre-serialized
// hot fronts without ever decoding most rows.
//
// Integrity model: the storage layer CRC-verifies every section before
// handing it here, and NewMappedStore re-validates the structural
// invariants (lengths, the append-index permutation, symbol and position
// bounds). What is deliberately not re-checked is the canonical sort order
// of the rows — that would force the full decode this path exists to skip;
// the CRC already pins the bytes to what the compactor wrote, which is the
// same trust the v1 frame reader places in its own writer.

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Columnar is the flat, storage-ready form of a snapshot's read-optimized
// state, used in both directions: ExportColumnar fills it from a live
// snapshot for the segment compactor to serialize, and the mmap load path
// fills it from mapped file sections for NewMappedStore. Slices handed to
// NewMappedStore may alias mapped read-only memory and must never be
// written through; string fields are always heap strings.
type Columnar struct {
	// Count is the number of points covered.
	Count int

	// Rows holds the concatenated JSON encodings of the points in canonical
	// sorted order; RowOffs[k]..RowOffs[k+1] bounds row k (so RowOffs has
	// Count+1 entries and starts at 0). ExportColumnar leaves these nil —
	// the segment writer marshals rows itself; NewMappedStore requires them.
	Rows    []byte
	RowOffs []uint64

	// AppendIdx maps sorted position -> append-order index, a permutation
	// of 0..Count-1 (the same per-row index the v1 frame format carries).
	// Nil from ExportColumnar, required by NewMappedStore.
	AppendIdx []uint32

	// Syms is the dense symbol table: Syms[id] is the interned string the
	// uint32 column cells refer to.
	Syms []string

	App    []uint32 // ToLower(AppName) symbol per point
	SKU    []uint32 // ToLower(SKU) symbol per point
	Alias  []uint32 // ToLower(SKUAlias) symbol per point
	Input  []uint32 // exact InputDesc symbol per point
	Nodes  []int32
	Exec   []float64
	Cost   []float64
	Failed []uint64 // bitmap, one bit per point

	Apps       []string // distinct AppNames (original case), sorted
	SKUAliases []string // distinct SKUAliases (original case), canonical order
	Inputs     []string // distinct InputDescs, sorted

	// Hot carries the precomputed hot-front set: surviving positions plus
	// the pre-serialized JSON row fragments, so a mapped snapshot serves
	// hot advice bytes without materializing a single row.
	Hot []ColumnarFront

	// Ref, when non-nil, pins whatever owns the memory the slices above
	// alias (an mmap region with a munmap finalizer); the snapshot holds it
	// for its lifetime.
	Ref any
}

// ColumnarFront is one persisted hot front: the canonicalized single-field
// filter it belongs to, the surviving sorted positions in by-time order,
// and both pre-serialized orderings.
type ColumnarFront struct {
	App   string // lowercased AppName constraint; "" = unconstrained
	SKU   string // lowercased SKU/alias constraint; "" = unconstrained
	Input string // exact InputDesc constraint; "" = unconstrained

	Positions          []int32 // sorted positions on the front, by-time order
	TimeJSON, CostJSON []byte
	JSONOK             bool
}

// ExportColumnar flattens the snapshot's columnar state for persistence.
// Column slices are shared with the snapshot (read-only contract); hot
// fronts are forced so every persisted front carries its positions and
// serialized fragments. Rows, RowOffs, and AppendIdx are left for the
// caller — the snapshot does not know append order, its writer does.
func (sn *Snapshot) ExportColumnar() *Columnar {
	c := &Columnar{
		Count:      len(sn.sorted),
		Syms:       make([]string, len(sn.col.syms)),
		App:        sn.col.app,
		SKU:        sn.col.sku,
		Alias:      sn.col.alias,
		Input:      sn.col.input,
		Nodes:      sn.col.nodes,
		Exec:       sn.col.exec,
		Cost:       sn.col.cost,
		Failed:     sn.col.failed,
		Apps:       sn.apps,
		SKUAliases: sn.skus,
		Inputs:     sn.inputs,
	}
	for s, id := range sn.col.syms {
		c.Syms[id] = s
	}
	keys := make([]string, 0, len(sn.hot))
	for k := range sn.hot {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic persisted order
	for _, k := range keys {
		hf := sn.hot[k]
		hf.compute(sn)
		pos := hf.posByTime
		if pos == nil {
			pos = []int32{}
		}
		c.Hot = append(c.Hot, ColumnarFront{
			App:       hf.c.app,
			SKU:       hf.c.sku,
			Input:     hf.c.input,
			Positions: pos,
			TimeJSON:  hf.timeJSON,
			CostJSON:  hf.costJSON,
			JSONOK:    hf.jsonOK,
		})
	}
	return c
}

// lazyChunkRows is the row-materialization granularity: one touched row
// decodes its whole chunk, so point queries pay a small bounded batch and
// full scans amortize the sync.Once per 1024 rows instead of per row.
const lazyChunkRows = 1024

// lazyChunk guards the one-time decode of one chunk of rows.
type lazyChunk struct{ once sync.Once }

// lazyRows defers row materialization for a mapped snapshot: sorted[i]
// starts as the zero Point and is decoded from the row bytes on first
// touch, chunk by chunk. All fields are immutable after construction
// except the per-chunk sync.Once state and the sticky decode error.
type lazyRows struct {
	data      []byte   // concatenated row JSON (may alias mapped memory)
	offs      []uint64 // len(sorted)+1 row bounds into data
	appendIdx []uint32 // sorted position -> append index permutation

	chunks []lazyChunk

	errOnce sync.Once
	err     atomic.Value // first decode failure; rows of a failed chunk stay zero
}

func (lz *lazyRows) recordErr(err error) {
	lz.errOnce.Do(func() { lz.err.Store(err) })
}

// ensureRow materializes the chunk holding sorted[i]. A nil receiver path
// (non-mapped snapshots) is a single branch, so the hooks on the query
// paths cost nothing for heap-built snapshots.
func (sn *Snapshot) ensureRow(i int) {
	lz := sn.lazy
	if lz == nil {
		return
	}
	c := i / lazyChunkRows
	lz.chunks[c].once.Do(func() { sn.decodeChunk(c) })
}

// ensureAllRows materializes every row.
func (sn *Snapshot) ensureAllRows() {
	lz := sn.lazy
	if lz == nil {
		return
	}
	for c := range lz.chunks {
		lz.chunks[c].once.Do(func() { sn.decodeChunk(c) })
	}
}

func (sn *Snapshot) decodeChunk(c int) {
	lz := sn.lazy
	lo := c * lazyChunkRows
	hi := lo + lazyChunkRows
	if hi > len(sn.sorted) {
		hi = len(sn.sorted)
	}
	for i := lo; i < hi; i++ {
		if err := json.Unmarshal(lz.data[lz.offs[i]:lz.offs[i+1]], &sn.sorted[i]); err != nil {
			// CRC verified these bytes, so this can only be a writer bug;
			// record it (sticky) and leave the row zero rather than serve a
			// partially decoded struct.
			sn.sorted[i] = Point{}
			lz.recordErr(fmt.Errorf("dataset: mapped row %d: %w", i, err))
		}
	}
}

// appendOrderPoints decodes every row and scatters them back to append
// order — the expansion a mapped store pays once, on the first operation
// that needs the append-order view (see Store.materializeBaseLocked).
func (sn *Snapshot) appendOrderPoints() []Point {
	sn.ensureAllRows()
	out := make([]Point, len(sn.sorted))
	if sn.lazy == nil {
		copy(out, sn.sorted)
		return out
	}
	for k, idx := range sn.lazy.appendIdx {
		out[idx] = sn.sorted[k]
	}
	return out
}

// NewMappedStore builds a store whose current snapshot is constructed
// directly over persisted columnar state — the zero-copy cold-start path.
// The returned store serves Snapshot queries immediately without decoding
// rows; appends work normally (the mapped snapshot becomes the merge
// prefix, expanded to append order on the first rebuild). Validation
// failures return an error so callers can fall back to a heap parse.
//
// The seeded generation is the log position, exactly as NewSeededStore.
func NewMappedStore(c *Columnar) (*Store, error) {
	sn, err := newMappedSnapshot(c)
	if err != nil {
		return nil, err
	}
	return &Store{base: sn, baseN: sn.n, gen: sn.gen, snap: sn}, nil
}

func newMappedSnapshot(c *Columnar) (*Snapshot, error) {
	n := c.Count
	if n < 0 {
		return nil, fmt.Errorf("dataset: mapped columnar: negative count %d", n)
	}
	if len(c.RowOffs) != n+1 || c.RowOffs[0] != 0 || len(c.AppendIdx) != n ||
		len(c.App) != n || len(c.SKU) != n || len(c.Alias) != n || len(c.Input) != n ||
		len(c.Nodes) != n || len(c.Exec) != n || len(c.Cost) != n ||
		len(c.Failed) != (n+63)/64 {
		return nil, fmt.Errorf("dataset: mapped columnar: inconsistent section lengths for %d points", n)
	}
	for k := 0; k < n; k++ {
		if c.RowOffs[k+1] < c.RowOffs[k] {
			return nil, fmt.Errorf("dataset: mapped columnar: row index not monotonic at %d", k)
		}
	}
	if c.RowOffs[n] != uint64(len(c.Rows)) {
		return nil, fmt.Errorf("dataset: mapped columnar: row index covers %d bytes, have %d", c.RowOffs[n], len(c.Rows))
	}
	seen := make([]uint64, (n+63)/64)
	for _, idx := range c.AppendIdx {
		if int(idx) >= n || seen[idx>>6]&(1<<(idx&63)) != 0 {
			return nil, fmt.Errorf("dataset: mapped columnar: append indexes are not a permutation")
		}
		seen[idx>>6] |= 1 << (idx & 63)
	}
	nsym := uint32(len(c.Syms))
	for i := 0; i < n; i++ {
		if c.App[i] >= nsym || c.SKU[i] >= nsym || c.Alias[i] >= nsym || c.Input[i] >= nsym {
			return nil, fmt.Errorf("dataset: mapped columnar: symbol id out of range at row %d", i)
		}
	}

	sn := &Snapshot{gen: uint64(n), n: n, sorted: make([]Point, n), mapRef: c.Ref}
	sn.lazy = &lazyRows{
		data:      c.Rows,
		offs:      c.RowOffs,
		appendIdx: c.AppendIdx,
		chunks:    make([]lazyChunk, (n+lazyChunkRows-1)/lazyChunkRows),
	}
	sn.col = columns{
		syms:   make(map[string]uint32, len(c.Syms)),
		app:    c.App,
		sku:    c.SKU,
		alias:  c.Alias,
		input:  c.Input,
		nodes:  c.Nodes,
		exec:   c.Exec,
		cost:   c.Cost,
		failed: c.Failed,
	}
	for id, s := range c.Syms {
		if _, dup := sn.col.syms[s]; dup {
			return nil, fmt.Errorf("dataset: mapped columnar: duplicate symbol %q", s)
		}
		sn.col.syms[s] = uint32(id)
	}

	// Posting lists reconstruct from the columns alone — same shape
	// buildIndexes produces, with the alias list folded into the SKU map
	// only when it differs from the full name.
	sn.byApp = make(map[string][]int32)
	sn.bySKU = make(map[string][]int32)
	sn.byInput = make(map[string][]int32)
	for i := 0; i < n; i++ {
		pos := int32(i)
		app := c.Syms[c.App[i]]
		sn.byApp[app] = append(sn.byApp[app], pos)
		sku := c.Syms[c.SKU[i]]
		sn.bySKU[sku] = append(sn.bySKU[sku], pos)
		if alias := c.Syms[c.Alias[i]]; alias != sku {
			sn.bySKU[alias] = append(sn.bySKU[alias], pos)
		}
		in := c.Syms[c.Input[i]]
		sn.byInput[in] = append(sn.byInput[in], pos)
	}
	sn.apps = append([]string(nil), c.Apps...)
	sn.skus = append([]string(nil), c.SKUAliases...)
	sn.inputs = append([]string(nil), c.Inputs...)

	sn.hot = make(map[string]*hotFront, len(c.Hot))
	for _, f := range c.Hot {
		for _, p := range f.Positions {
			if p < 0 || int(p) >= n {
				return nil, fmt.Errorf("dataset: mapped columnar: hot front position %d out of range", p)
			}
		}
		pos := f.Positions
		if pos == nil {
			pos = []int32{} // non-nil marks "persisted, possibly empty" for compute
		}
		cf := CanonicalFilter{app: f.App, sku: f.SKU, input: f.Input}
		sn.hot[cf.Key()] = &hotFront{
			c:         cf,
			fromPos:   pos,
			jsonReady: true,
			timeJSON:  f.TimeJSON,
			costJSON:  f.CostJSON,
			jsonOK:    f.JSONOK,
		}
	}
	return sn, nil
}

package dataset

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// randomStore builds a store with clustered fields (few apps/SKUs/inputs so
// filters actually hit) plus failures and tags.
func randomStore(rng *rand.Rand, n int) *Store {
	apps := []string{"lammps", "openfoam", "wrf", "gromacs"}
	skus := [][2]string{
		{"Standard_HB120rs_v3", "hb120rs_v3"},
		{"Standard_HB120rs_v2", "hb120rs_v2"},
		{"Standard_HC44rs", "hc44rs"},
		{"Standard_D32s_v5", "d32s_v5"},
	}
	inputs := []string{"atoms=864M", "mesh=40 16 16", "", "cells=8M"}
	s := NewStore()
	for i := 0; i < n; i++ {
		sku := skus[rng.Intn(len(skus))]
		p := Point{
			ScenarioID:  fmt.Sprintf("s%04d", i),
			AppName:     apps[rng.Intn(len(apps))],
			SKU:         sku[0],
			SKUAlias:    sku[1],
			NNodes:      1 << rng.Intn(5),
			PPN:         1 + rng.Intn(120),
			InputDesc:   inputs[rng.Intn(len(inputs))],
			ExecTimeSec: rng.Float64() * 1000,
			CostUSD:     rng.Float64() * 10,
			Failed:      rng.Intn(10) == 0,
		}
		if rng.Intn(3) == 0 {
			p.Tags = map[string]string{"run": fmt.Sprintf("r%d", rng.Intn(3))}
		}
		s.Add(p)
	}
	return s
}

func randomFilter(rng *rand.Rand) Filter {
	var f Filter
	// Each field set with some probability; mixed case exercises folding.
	switch rng.Intn(4) {
	case 0:
		f.AppName = "LAMMPS"
	case 1:
		f.AppName = "openfoam"
	case 2:
		f.AppName = "wrf"
	}
	switch rng.Intn(4) {
	case 0:
		f.SKU = "hb120rs_v3" // alias
	case 1:
		f.SKU = "STANDARD_HC44RS" // full name, folded
	case 2:
		f.SKU = "nosuchsku"
	}
	if rng.Intn(3) == 0 {
		f.InputDesc = "atoms=864M"
	}
	if rng.Intn(3) == 0 {
		f.MinNodes = 1 << rng.Intn(4)
	}
	if rng.Intn(3) == 0 {
		f.MaxNodes = 1 << (1 + rng.Intn(4))
	}
	if rng.Intn(3) == 0 {
		f.Tags = map[string]string{"run": "r1"}
	}
	f.IncludeFailed = rng.Intn(2) == 0
	return f
}

// The tentpole's correctness property: the indexed snapshot Select and the
// scan-path SelectScan agree exactly — same points, same order — on
// randomized stores and filters (the FrontNaive oracle pattern).
func TestPropertyIndexedSelectEqualsScan(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomStore(rng, 50+rng.Intn(400))
		for q := 0; q < 50; q++ {
			f := randomFilter(rng)
			indexed := s.Select(f)
			scanned := s.SelectScan(f)
			if !reflect.DeepEqual(indexed, scanned) {
				t.Fatalf("seed %d query %d: indexed Select diverges from scan\nfilter: %+v\nindexed: %d pts\nscanned: %d pts",
					seed, q, f, len(indexed), len(scanned))
			}
		}
	}
}

// Appends after a snapshot must not disturb the merge-amortized rebuild:
// interleave appends and queries and re-check the scan equivalence at every
// generation.
func TestSnapshotMergeAmortizedRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewStore()
	f := Filter{AppName: "lammps"}
	for round := 0; round < 30; round++ {
		batch := randomStore(rng, 1+rng.Intn(20)).All()
		s.AddAll(batch)
		if got, want := s.Select(f), s.SelectScan(f); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: indexed/scan divergence after append (%d vs %d pts)", round, len(got), len(want))
		}
	}
}

func TestSnapshotCachedPerGeneration(t *testing.T) {
	s := randomStore(rand.New(rand.NewSource(1)), 100)
	sn1 := s.Snapshot()
	if sn2 := s.Snapshot(); sn2 != sn1 {
		t.Error("snapshot not cached: same generation returned different pointers")
	}
	gen := s.Generation()
	if sn1.Generation() != gen {
		t.Errorf("snapshot gen %d != store gen %d", sn1.Generation(), gen)
	}
	s.Add(Point{ScenarioID: "new", AppName: "lammps", SKUAlias: "hb120rs_v3"})
	if s.Generation() != gen+1 {
		t.Errorf("generation did not bump: %d", s.Generation())
	}
	sn3 := s.Snapshot()
	if sn3 == sn1 {
		t.Error("snapshot not rebuilt after append")
	}
	if sn3.Len() != sn1.Len()+1 {
		t.Errorf("rebuilt snapshot has %d points, want %d", sn3.Len(), sn1.Len()+1)
	}
	// The old snapshot stays queryable and unchanged (copy-on-write).
	if sn1.Len() != 100 {
		t.Errorf("old snapshot mutated: %d points", sn1.Len())
	}
}

func TestAddAllEmptyKeepsGeneration(t *testing.T) {
	s := NewStore()
	s.Add(Point{ScenarioID: "a"})
	gen := s.Generation()
	s.AddAll(nil)
	if s.Generation() != gen {
		t.Error("empty AddAll must not invalidate snapshots")
	}
}

// Concurrent appenders vs snapshot readers; run with -race. Readers hold
// snapshots across appends and must see internally consistent views.
func TestConcurrentAppendsVsSnapshotQueries(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	const writers, perWriter, readers = 4, 200, 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Add(Point{
					ScenarioID: fmt.Sprintf("w%d-%d", w, i),
					AppName:    "lammps",
					SKU:        "Standard_HB120rs_v3",
					SKUAlias:   "hb120rs_v3",
					NNodes:     1 + i%16,
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sn := s.Snapshot()
				pts := sn.Select(Filter{AppName: "LAMMPS"})
				if len(pts) != sn.Len() {
					panic("snapshot internally inconsistent")
				}
				_ = sn.GroupSeries(Filter{SKU: "hb120rs_v3"})
				_ = sn.Apps()
			}
		}()
	}
	wg.Wait()
	if got := s.Snapshot().Len(); got != writers*perWriter {
		t.Fatalf("final snapshot has %d points, want %d", got, writers*perWriter)
	}
}

func TestCanonicalFilterKey(t *testing.T) {
	a := Filter{AppName: "LAMMPS", SKU: "HB120rs_v3", Tags: map[string]string{"b": "2", "a": "1"}}
	b := Filter{AppName: "lammps", SKU: "hb120rs_v3", Tags: map[string]string{"a": "1", "b": "2"}}
	ca, cb := a.Canonical(), b.Canonical()
	if ca.Key() != cb.Key() {
		t.Errorf("equivalent filters key differently:\n%s\n%s", ca.Key(), cb.Key())
	}
	distinct := []Filter{
		{},
		{AppName: "lammps"},
		{SKU: "lammps"},
		{InputDesc: "lammps"},
		{AppName: "lammps", IncludeFailed: true},
		{MinNodes: 2},
		{MaxNodes: 2},
		{Tags: map[string]string{"a": "1"}},
	}
	seen := map[string]int{}
	for i, f := range distinct {
		c := f.Canonical()
		k := c.Key()
		if j, dup := seen[k]; dup {
			t.Errorf("filters %d and %d collide on key %q", i, j, k)
		}
		seen[k] = i
	}
}

func TestShardedViewFoldsIntoSnapshotProtocol(t *testing.T) {
	s := NewSharded()
	for _, sku := range []string{"hc44rs", "hb120rs_v3"} {
		s.Shard(sku)
	}
	s.Shard("hc44rs").Add(Point{ScenarioID: "c1", AppName: "lammps", SKU: "Standard_HC44rs", SKUAlias: "hc44rs", NNodes: 2})
	s.Shard("hb120rs_v3").Add(Point{ScenarioID: "a1", AppName: "lammps", SKU: "Standard_HB120rs_v3", SKUAlias: "hb120rs_v3", NNodes: 1})

	v1 := s.View()
	if v1.Len() != 2 {
		t.Fatalf("view has %d points", v1.Len())
	}
	want := s.Snapshot().Select(Filter{AppName: "lammps"})
	if got := v1.Select(Filter{AppName: "lammps"}); !reflect.DeepEqual(got, want) {
		t.Error("View.Select diverges from merged-store Select")
	}
	// Cached while no shard moves.
	if v2 := s.View(); v2 != v1 {
		t.Error("unchanged shards must return the cached view")
	}
	// Invalidates when any shard appends, and generations move.
	s.Shard("hc44rs").Add(Point{ScenarioID: "c2", AppName: "lammps", SKU: "Standard_HC44rs", SKUAlias: "hc44rs", NNodes: 4})
	v3 := s.View()
	if v3 == v1 {
		t.Error("view not rebuilt after shard append")
	}
	if v3.Len() != 3 {
		t.Errorf("rebuilt view has %d points", v3.Len())
	}
	if v3.Generation() == v1.Generation() {
		t.Error("view generation must move on rebuild")
	}
}

// Package gui serves the browser interface of the tool (paper Section IV,
// Figure 7): the left side lists the major operations (deploy, collect,
// plot, advice) and the pages expose deployment status, collection
// progress, inline plots, and the advice table.
package gui

import (
	"context"
	"fmt"
	"html/template"
	"net/http"
	"net/url"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"hpcadvisor/internal/api"
	"hpcadvisor/internal/config"
	"hpcadvisor/internal/core"
	"hpcadvisor/internal/plot"
	"hpcadvisor/internal/scenario"
	"hpcadvisor/internal/service"
)

// Server is the GUI over one advisor and configuration.
//
// The read-only pages (plots, plot.svg, advice, predict) parse and execute
// their requests through the shared service layer (internal/service) — the
// same parse functions and typed errors the JSON API uses — and are served
// from the query engine's immutable snapshots: those handlers take no
// server lock and are safe for arbitrarily many concurrent requests, even
// while a collection appends datapoints. The mutex only guards the
// mutating operations (deploy, collect) and the activity log.
type Server struct {
	mu  sync.Mutex
	adv *core.Advisor
	cfg *config.Config
	svc *service.Service
	log []string
}

// NewServer builds a GUI server. Predictions default to the configured
// deployment region — through the service layer, so the JSON API mounted
// on the same mux prices identical requests identically.
func NewServer(adv *core.Advisor, cfg *config.Config) *Server {
	return &Server{adv: adv, cfg: cfg, svc: service.NewWithRegion(adv, cfg.Region)}
}

// ListenAndServe runs the GUI on addr through the shared hardened
// http.Server (timeouts on every phase) until the listener fails or a
// SIGINT/SIGTERM triggers a graceful drain.
func ListenAndServe(addr string, adv *core.Advisor, cfg *config.Config) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return api.ListenAndServe(ctx, addr, NewServer(adv, cfg).Mux())
}

// Mux returns the route table.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleHome)
	mux.HandleFunc("/deployments", s.handleDeployments)
	mux.HandleFunc("/deploy/create", s.handleDeployCreate)
	mux.HandleFunc("/collect", s.handleCollect)
	mux.HandleFunc("/plots", s.handlePlots)
	mux.HandleFunc("/plot.svg", s.handlePlotSVG)
	mux.HandleFunc("/advice", s.handleAdvice)
	mux.HandleFunc("/predict", s.handlePredict)
	return mux
}

const pageTmpl = `<!DOCTYPE html>
<html><head><title>HPCAdvisor</title>
<style>
body { font-family: sans-serif; margin: 0; display: flex; }
nav { width: 190px; background: #173c60; color: white; min-height: 100vh; padding: 16px; }
nav h1 { font-size: 18px; }
nav a { display: block; color: #cfe3f7; margin: 10px 0; text-decoration: none; }
main { padding: 24px; flex: 1; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: left; }
pre { background: #f4f4f4; padding: 12px; }
.ok { color: #207520; } .failed { color: #b02a2a; } .skipped { color: #8a6d1a; }
</style></head>
<body>
<nav>
<h1>HPCAdvisor</h1>
<a href="/">Overview</a>
<a href="/deployments">Deployments</a>
<a href="/collect">Data collection</a>
<a href="/plots">Plots</a>
<a href="/advice">Advice</a>
<a href="/predict">Predict</a>
</nav>
<main>{{.Body}}</main>
</body></html>`

var page = template.Must(template.New("page").Parse(pageTmpl))

func (s *Server) render(w http.ResponseWriter, body template.HTML) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = page.Execute(w, struct{ Body template.HTML }{Body: body})
}

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	b.WriteString("<h2>Overview</h2>")
	fmt.Fprintf(&b, "<p>Application: <b>%s</b> — scenarios in sweep: <b>%d</b></p>",
		template.HTMLEscapeString(s.cfg.AppName), s.cfg.ScenarioCount())
	fmt.Fprintf(&b, "<p>Deployments: %d — datapoints collected: %d</p>",
		len(s.adv.Deployments()), s.adv.Store.Len())
	if len(s.log) > 0 {
		b.WriteString("<h3>Recent activity</h3><pre>")
		start := 0
		if len(s.log) > 20 {
			start = len(s.log) - 20
		}
		for _, l := range s.log[start:] {
			b.WriteString(template.HTMLEscapeString(l) + "\n")
		}
		b.WriteString("</pre>")
	}
	s.render(w, template.HTML(b.String()))
}

func (s *Server) handleDeployments(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	b.WriteString("<h2>Deployments</h2>")
	names := s.adv.Deployments()
	if len(names) == 0 {
		b.WriteString("<p>No deployments yet.</p>")
	} else {
		b.WriteString("<table><tr><th>Name</th><th>Region</th><th>Storage</th><th>Batch</th><th>Jumpbox</th></tr>")
		for _, n := range names {
			d, err := s.adv.Deployment(n)
			if err != nil {
				continue
			}
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>",
				template.HTMLEscapeString(d.Name), template.HTMLEscapeString(d.Region),
				template.HTMLEscapeString(d.StorageAccount), template.HTMLEscapeString(d.BatchAccount),
				template.HTMLEscapeString(d.JumpboxIP))
		}
		b.WriteString("</table>")
	}
	b.WriteString(`<form method="POST" action="/deploy/create"><button type="submit">Create deployment</button></form>`)
	s.render(w, template.HTML(b.String()))
}

func (s *Server) handleDeployCreate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	d, err := s.adv.DeployCreate(s.cfg)
	if err == nil {
		s.log = append(s.log, "deployment created: "+d.Name)
	}
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	http.Redirect(w, r, "/deployments", http.StatusSeeOther)
}

func (s *Server) handleCollect(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.Method == http.MethodPost {
		names := s.adv.Deployments()
		if len(names) == 0 {
			http.Error(w, "create a deployment first", http.StatusConflict)
			return
		}
		target := names[len(names)-1]
		samplerName := r.FormValue("sampler")
		report, err := s.adv.Collect(target, s.cfg, core.CollectOptions{
			Sampler: samplerName,
			Progress: func(t *scenario.Task) {
				if t.Status != scenario.StatusRunning {
					s.log = append(s.log, fmt.Sprintf("[%s] %s", t.Status, t.ID))
				}
			},
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		s.log = append(s.log, fmt.Sprintf(
			"collection on %s: %d completed, %d failed, %d skipped, cost $%.2f",
			target, report.Completed, report.Failed, report.Skipped, report.CollectionCostUSD))
	}

	var b strings.Builder
	b.WriteString("<h2>Data collection</h2>")
	fmt.Fprintf(&b, "<p>Sweep: %d scenarios for <b>%s</b>.</p>",
		s.cfg.ScenarioCount(), template.HTMLEscapeString(s.cfg.AppName))
	b.WriteString(`<form method="POST" action="/collect">
sampler: <select name="sampler">
<option value="full">full</option>
<option value="discard">discard</option>
<option value="perffactor">perffactor</option>
<option value="bottleneck">bottleneck</option>
<option value="combined">combined</option>
</select>
<button type="submit">Start collection</button></form>`)

	// Task status table, the view in the paper's Figure 7 screenshot; the
	// task states are copied under the advisor's registry lock.
	for _, dep := range s.adv.Deployments() {
		tasks := s.adv.ScenarioTasks(dep)
		if tasks == nil {
			continue
		}
		fmt.Fprintf(&b, "<h3>%s</h3><table><tr><th>Scenario</th><th>Nodes</th><th>Status</th></tr>",
			template.HTMLEscapeString(dep))
		for _, t := range tasks {
			cls := "ok"
			switch t.Status {
			case scenario.StatusFailed:
				cls = "failed"
			case scenario.StatusSkipped:
				cls = "skipped"
			}
			fmt.Fprintf(&b, `<tr><td>%s</td><td>%d</td><td class="%s">%s</td></tr>`,
				template.HTMLEscapeString(t.ID), t.NNodes, cls, t.Status)
		}
		b.WriteString("</table>")
	}
	s.render(w, template.HTML(b.String()))
}

// handlePlots lists the plot images; lock-free (Store.Len is
// concurrency-safe and nothing else is server state).
func (s *Server) handlePlots(w http.ResponseWriter, r *http.Request) {
	n := s.adv.Store.Len()
	var b strings.Builder
	b.WriteString("<h2>Plots</h2>")
	if n == 0 {
		b.WriteString("<p>No data collected yet.</p>")
	} else {
		app := r.URL.Query().Get("app")
		for _, name := range plot.SetNames {
			// Build the image URL with url.Values so app names containing
			// query metacharacters (&, +, spaces) survive as one filter
			// value; HTML-escaping alone does not query-escape them.
			q := url.Values{"name": {name}}
			if app != "" {
				q.Set("app", app)
			}
			fmt.Fprintf(&b, `<div><img src="/plot.svg?%s" alt="%s"/></div>`,
				template.HTMLEscapeString(q.Encode()), name)
		}
	}
	s.render(w, template.HTML(b.String()))
}

// handlePlotSVG serves rendered plot bytes straight from the query engine's
// SVG cache; concurrent requests for one (plot, filter) render it once.
// With pred=1 the exectime/cost plots carry the predictor overlay (fitted
// curves, interval bands, predicted points), served from the predicted-SVG
// cache. The service layer's typed errors keep the failure classes apart:
// a malformed filter is 400, an unknown plot name 404, a render failure on
// a valid name 500.
func (s *Server) handlePlotSVG(w http.ResponseWriter, r *http.Request) {
	req, err := service.ParsePlotRequest(r.URL.Query().Get("name"), r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), api.StatusOf(err))
		return
	}
	data, _, err := s.svc.PlotSVG(req)
	if err != nil {
		switch service.KindOf(err) {
		case service.KindNotFound:
			http.Error(w, "unknown plot", http.StatusNotFound)
		default:
			http.Error(w, "plot rendering failed", http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write(data)
}

// handlePredict serves the predicted-advice page: the merged
// measured+predicted front with its Source markings, the leave-one-out
// backtest, and the overlaid exectime/cost plots. Lock-free — everything is
// served from the query engine.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	req, err := service.ParsePredictRequest(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), api.StatusOf(err))
		return
	}
	var b strings.Builder
	b.WriteString("<h2>Predicted advice</h2>")
	// One pinned snapshot for rows, table, and backtest: the predicted
	// count, the rendered table, and the backtest line always agree even
	// while a collection appends.
	res, table, backtest, err := s.svc.PredictedAdvicePage(req)
	if err != nil {
		http.Error(w, err.Error(), api.StatusOf(err))
		return
	}
	rows := res.Rows
	if len(rows) == 0 {
		b.WriteString("<p>No data collected yet.</p>")
		s.render(w, template.HTML(b.String()))
		return
	}
	predicted := 0
	for _, row := range rows {
		if row.Predicted {
			predicted++
		}
	}
	fmt.Fprintf(&b, "<p>Merged Pareto front over measured and model-predicted scenarios "+
		"(%d of %d rows predicted; predicted rows are marked in the Source column and exist only at node counts never measured for their VM type).</p>",
		predicted, len(rows))
	b.WriteString("<pre>" + template.HTMLEscapeString(table) + "</pre>")
	b.WriteString("<p>" + template.HTMLEscapeString(backtest.String()) + "</p>")

	// Carry the active filter through the sort links and plot URLs, and
	// URL-encode the user-supplied values.
	filterQuery := func(extra url.Values) string {
		q := url.Values{}
		for _, k := range []string{"app", "sku", "input"} {
			if v := r.URL.Query().Get(k); v != "" {
				q.Set(k, v)
			}
		}
		for k, vs := range extra {
			q[k] = vs
		}
		return q.Encode()
	}
	fmt.Fprintf(&b, `<p><a href="/predict?%s">sort by cost</a> | <a href="/predict?%s">sort by time</a></p>`,
		template.HTMLEscapeString(filterQuery(url.Values{"sort": {"cost"}})),
		template.HTMLEscapeString(filterQuery(url.Values{"sort": {"time"}})))
	for _, name := range []string{"exectime_vs_nodes", "exectime_vs_cost"} {
		src := "/plot.svg?" + filterQuery(url.Values{"name": {name}, "pred": {"1"}})
		fmt.Fprintf(&b, `<div><img src="%s" alt="%s (predicted)"/></div>`,
			template.HTMLEscapeString(src), name)
	}
	s.render(w, template.HTML(b.String()))
}

// handleAdvice serves the advice table through the service layer;
// lock-free. A malformed filter (bad sort, bad node bounds) is a 400, the
// same classification the JSON API gives it.
func (s *Server) handleAdvice(w http.ResponseWriter, r *http.Request) {
	req, err := service.ParseAdviceRequest(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), api.StatusOf(err))
		return
	}
	var b strings.Builder
	b.WriteString("<h2>Advice (Pareto front)</h2>")
	res, table, _ := s.svc.AdvicePage(req)
	if len(res.Rows) == 0 {
		b.WriteString("<p>No data collected yet.</p>")
	} else {
		b.WriteString("<pre>" + template.HTMLEscapeString(table) + "</pre>")
		b.WriteString(`<p><a href="/advice?sort=cost">sort by cost</a> | <a href="/advice?sort=time">sort by time</a></p>`)
	}
	s.render(w, template.HTML(b.String()))
}

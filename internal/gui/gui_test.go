package gui

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"hpcadvisor/internal/config"
	"hpcadvisor/internal/core"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/plot"
)

const testConfig = `subscription: mysubscription
skus:
  - Standard_HB120rs_v3
rgprefix: guitest
nnodes: [1, 2]
appname: lammps
region: southcentralus
appinputs:
  BOXFACTOR: "10"
`

func newServer(t *testing.T) (*Server, *core.Advisor, *config.Config) {
	t.Helper()
	cfg, err := config.Parse([]byte(testConfig))
	if err != nil {
		t.Fatal(err)
	}
	adv := core.New(cfg.Subscription)
	return NewServer(adv, cfg), adv, cfg
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func post(t *testing.T, ts *httptest.Server, path string, form url.Values) (int, string) {
	t.Helper()
	resp, err := ts.Client().PostForm(ts.URL+path, form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestFullGUIWorkflow(t *testing.T) {
	// Mirrors the paper's Figure 7 flow: create a deployment, run the
	// collection, inspect plots and advice — all through the browser
	// surface.
	s, _, _ := newServer(t)
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	// Home page renders the navigation.
	code, body := get(t, ts, "/")
	if code != 200 {
		t.Fatalf("home = %d", code)
	}
	for _, want := range []string{"HPCAdvisor", "Deployments", "Data collection", "Plots", "Advice"} {
		if !strings.Contains(body, want) {
			t.Errorf("home missing %q", want)
		}
	}

	// No deployments yet.
	_, body = get(t, ts, "/deployments")
	if !strings.Contains(body, "No deployments yet") {
		t.Error("expected empty deployment list")
	}

	// Create a deployment (redirects back to the list).
	code, _ = post(t, ts, "/deploy/create", url.Values{})
	if code != 200 { // after redirect
		t.Fatalf("deploy create = %d", code)
	}
	_, body = get(t, ts, "/deployments")
	if !strings.Contains(body, "guitest-") {
		t.Errorf("deployment missing from list: %s", body)
	}

	// Collect.
	code, body = post(t, ts, "/collect", url.Values{"sampler": {"full"}})
	if code != 200 {
		t.Fatalf("collect = %d: %s", code, body)
	}
	if !strings.Contains(body, "completed") {
		t.Errorf("collect page missing task table: %s", body)
	}

	// Plots page embeds the five SVG charts.
	_, body = get(t, ts, "/plots")
	for _, name := range plot.SetNames {
		if !strings.Contains(body, "/plot.svg?name="+name) {
			t.Errorf("plots page missing %s", name)
		}
	}

	// Each SVG renders.
	for _, name := range plot.SetNames {
		code, svg := get(t, ts, "/plot.svg?name="+name)
		if code != 200 || !strings.HasPrefix(svg, "<svg") {
			t.Errorf("plot %s = %d, %q...", name, code, svg[:min(len(svg), 20)])
		}
	}

	// Advice table shows the paper's columns.
	_, body = get(t, ts, "/advice")
	for _, want := range []string{"Exectime(s)", "Cost($)", "hb120rs_v3"} {
		if !strings.Contains(body, want) {
			t.Errorf("advice missing %q", want)
		}
	}
	// Cost ordering also works.
	code, _ = get(t, ts, "/advice?sort=cost")
	if code != 200 {
		t.Errorf("advice by cost = %d", code)
	}
}

func TestGUIEmptyStates(t *testing.T) {
	s, _, _ := newServer(t)
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	_, body := get(t, ts, "/plots")
	if !strings.Contains(body, "No data collected yet") {
		t.Error("plots should state emptiness")
	}
	_, body = get(t, ts, "/advice")
	if !strings.Contains(body, "No data collected yet") {
		t.Error("advice should state emptiness")
	}
	// Collection without deployment conflicts.
	code, _ := post(t, ts, "/collect", url.Values{})
	if code != http.StatusConflict {
		t.Errorf("collect without deployment = %d, want 409", code)
	}
}

func TestGUIErrorPaths(t *testing.T) {
	s, _, _ := newServer(t)
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	code, _ := get(t, ts, "/plot.svg?name=nonsense")
	if code != http.StatusNotFound {
		t.Errorf("unknown plot = %d", code)
	}
	code, _ = get(t, ts, "/nope")
	if code != http.StatusNotFound {
		t.Errorf("unknown page = %d", code)
	}
	// GET on the create endpoint is rejected.
	code, _ = get(t, ts, "/deploy/create")
	if code != http.StatusMethodNotAllowed {
		t.Errorf("GET create = %d", code)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGUIFiltersAndSampler(t *testing.T) {
	s, _, _ := newServer(t)
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	if code, _ := post(t, ts, "/deploy/create", url.Values{}); code != 200 {
		t.Fatal("deploy failed")
	}
	// Collect with the discard sampler selected in the form.
	code, body := post(t, ts, "/collect", url.Values{"sampler": {"discard"}})
	if code != 200 {
		t.Fatalf("collect = %d: %s", code, body)
	}

	// Filtered advice: the app filter matches, an unknown app filter is
	// empty.
	_, body = get(t, ts, "/advice?app=lammps")
	if !strings.Contains(body, "hb120rs_v3") {
		t.Error("filtered advice missing data")
	}
	_, body = get(t, ts, "/advice?app=nosuchapp")
	if !strings.Contains(body, "No data collected yet") {
		t.Error("unknown-app filter should show emptiness")
	}

	// Filtered SVG renders.
	code, svg := get(t, ts, "/plot.svg?name=speedup&app=lammps&sku=hb120rs_v3")
	if code != 200 || !strings.HasPrefix(svg, "<svg") {
		t.Errorf("filtered plot = %d", code)
	}

	// The home page logs recent activity after a collection.
	_, body = get(t, ts, "/")
	if !strings.Contains(body, "Recent activity") {
		t.Error("activity log missing")
	}
}

func TestGUIConcurrentReadsWhileCollecting(t *testing.T) {
	// The read handlers are lock-free and engine-served: hammer plots and
	// advice from many goroutines while datapoints are appended to the
	// store, as a live collection would. Run with -race.
	s, adv, _ := newServer(t)
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()
	if code, _ := post(t, ts, "/deploy/create", url.Values{}); code != 200 {
		t.Fatal("deploy failed")
	}
	if code, _ := post(t, ts, "/collect", url.Values{"sampler": {"full"}}); code != 200 {
		t.Fatal("collect failed")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			adv.Store.Add(dataset.Point{
				ScenarioID: fmt.Sprintf("live-%d", i), AppName: "lammps",
				SKU: "Standard_HB120rs_v3", SKUAlias: "hb120rs_v3",
				NNodes: 1 + i%8, ExecTimeSec: float64(i + 1), CostUSD: 0.5,
			})
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if code, _ := get(t, ts, "/advice"); code != 200 {
					t.Error("advice failed under concurrency")
					return
				}
				if code, svg := get(t, ts, "/plot.svg?name=pareto&app=lammps"); code != 200 || !strings.HasPrefix(svg, "<svg") {
					t.Error("plot.svg failed under concurrency")
					return
				}
				if code, _ := get(t, ts, "/plots"); code != 200 {
					t.Error("plots failed under concurrency")
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestGUIPlotsURLEncodesAppFilter is the regression test for the plots page
// building image URLs by string interpolation: an app name containing query
// metacharacters (&, +, space) must be query-escaped into one `app` value,
// not split into bogus extra parameters.
func TestGUIPlotsURLEncodesAppFilter(t *testing.T) {
	s, adv, _ := newServer(t)
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	const trickyApp = "my&tricky app+v2"
	adv.Store.Add(dataset.Point{
		ScenarioID: "tricky-1", AppName: trickyApp,
		SKU: "Standard_HB120rs_v3", SKUAlias: "hb120rs_v3",
		NNodes: 1, ExecTimeSec: 10, CostUSD: 0.5,
	})

	code, body := get(t, ts, "/plots?app="+url.QueryEscape(trickyApp))
	if code != 200 {
		t.Fatalf("plots = %d", code)
	}
	wantFragment := "app=" + url.QueryEscape(trickyApp)
	if !strings.Contains(body, wantFragment) {
		t.Fatalf("plots page lost the app filter encoding: want %q in %s", wantFragment, body)
	}
	if strings.Contains(body, "app=my&tricky") || strings.Contains(body, "app=my&amp;tricky") {
		t.Fatal("app name leaked unescaped into the query string")
	}

	// The generated URL actually serves the filtered plot: the tricky app's
	// series legend is present (the exectime plot labels series by SKU
	// alias), which a split filter value would have filtered away.
	code, svg := get(t, ts, "/plot.svg?"+wantFragment+"&name=exectime_vs_nodes")
	if code != 200 || !strings.HasPrefix(svg, "<svg") {
		t.Fatalf("tricky-app plot.svg = %d", code)
	}
	if !strings.Contains(svg, "hb120rs_v3") {
		t.Error("filtered plot missing the tricky app's series")
	}
}

// TestGUIBadFilterIs400 pins the service-layer classification: malformed
// filters are client errors on every read page, not silent defaults or 404s.
func TestGUIBadFilterIs400(t *testing.T) {
	s, _, _ := newServer(t)
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()
	for _, path := range []string{
		"/advice?minnodes=banana",
		"/advice?sort=sideways",
		"/predict?minnodes=8&maxnodes=2",
		"/plot.svg?name=pareto&minnodes=0",
		"/plot.svg?name=pareto&pred=maybe",
	} {
		if code, _ := get(t, ts, path); code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", path, code)
		}
	}
}

func TestGUICollectWithBadSampler(t *testing.T) {
	s, _, _ := newServer(t)
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()
	if code, _ := post(t, ts, "/deploy/create", url.Values{}); code != 200 {
		t.Fatal("deploy failed")
	}
	code, _ := post(t, ts, "/collect", url.Values{"sampler": {"nonsense"}})
	if code != http.StatusInternalServerError {
		t.Errorf("bad sampler = %d, want 500", code)
	}
}

const predictGUIConfig = `subscription: mysubscription
skus:
  - Standard_HB120rs_v3
  - Standard_HC44rs
rgprefix: guitest
nnodes: [1, 2, 4, 8]
appname: lammps
region: southcentralus
appinputs:
  BOXFACTOR: "12"
`

func TestGUIPredictPage(t *testing.T) {
	cfg, err := config.Parse([]byte(predictGUIConfig))
	if err != nil {
		t.Fatal(err)
	}
	adv := core.New(cfg.Subscription)
	s := NewServer(adv, cfg)
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	// Empty state first.
	code, body := get(t, ts, "/predict")
	if code != 200 || !strings.Contains(body, "No data collected yet") {
		t.Fatalf("empty predict page = %d: %s", code, body)
	}

	if _, err := adv.DeployCreate(cfg); err != nil {
		t.Fatal(err)
	}
	if code, body := post(t, ts, "/collect", url.Values{"sampler": {"full"}}); code != 200 {
		t.Fatalf("collect = %d: %s", code, body)
	}

	// The predict page shows the merged table with provenance marking, the
	// backtest line, and the overlaid plots.
	_, body = get(t, ts, "/predict")
	for _, want := range []string{"Predicted advice", "Source", "measured", "predicted/", "backtest (leave-one-out", "pred=1"} {
		if !strings.Contains(body, want) {
			t.Errorf("predict page missing %q", want)
		}
	}

	// Nav carries the link everywhere.
	_, home := get(t, ts, "/")
	if !strings.Contains(home, `href="/predict"`) {
		t.Error("nav lacks predict link")
	}

	// The overlaid SVG renders and is visually marked; the plain one stays
	// clean.
	code, svg := get(t, ts, "/plot.svg?name=exectime_vs_nodes&pred=1")
	if code != 200 || !strings.Contains(svg, "stroke-dasharray") || !strings.Contains(svg, "(predicted)") {
		t.Errorf("predicted SVG = %d, marked=%v", code, strings.Contains(svg, "(predicted)"))
	}
	_, plain := get(t, ts, "/plot.svg?name=exectime_vs_nodes")
	if strings.Contains(plain, "(predicted)") {
		t.Error("plain SVG gained the predicted overlay")
	}
	if code, _ := get(t, ts, "/plot.svg?name=nope&pred=1"); code != 404 {
		t.Errorf("unknown predicted plot = %d, want 404", code)
	}

	// Sort by cost works.
	if code, _ := get(t, ts, "/predict?sort=cost"); code != 200 {
		t.Errorf("predict by cost = %d", code)
	}
}

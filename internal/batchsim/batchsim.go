// Package batchsim simulates the batch/orchestration service the paper's
// back-end uses (Azure Batch): pools of identical VMs keyed by SKU, node
// provisioning with boot latency, per-pool setup tasks, and multi-instance
// (MPI) compute tasks that gang-schedule several nodes at once.
//
// It implements exactly the surface Algorithm 1 of the paper needs:
//
//	create pool(vmtype) / resize pool / delete pool
//	create setup task / create compute task / execute / wait
//
// All durations run on the service's virtual clock, and a vclock.Meter
// records billed node-seconds per pool (nodes are billed from provisioning
// start, including boot and idle time, as in the real service), which feeds
// the total data-collection cost accounting.
//
// A Service and its clock are single-goroutine objects. Concurrent
// collection does not share one Service across pools in lock-step ticks;
// instead each pool lane obtains a private Service via Lane — its own event
// queue, clock, and control-plane replica — and the lanes' event queues are
// arbitrated independently, with meters merged after the lanes join. All
// stochastic behavior (spot preemption) is keyed to pool-relative
// coordinates, so a lane replays the exact event sequence the sequential
// collector would have produced for that pool.
package batchsim

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"hpcadvisor/internal/catalog"
	"hpcadvisor/internal/cloudsim"
	"hpcadvisor/internal/vclock"
)

// NodeState is the lifecycle state of a pool node.
type NodeState string

// Node states.
const (
	NodeBooting NodeState = "booting"
	NodeIdle    NodeState = "idle"
	NodeBusy    NodeState = "busy"
)

// TaskStatus is the lifecycle state of a task, mirroring the paper's task
// list states (pending, failed, completed) plus running.
type TaskStatus string

// Task states.
const (
	TaskPending   TaskStatus = "pending"
	TaskRunning   TaskStatus = "running"
	TaskCompleted TaskStatus = "completed"
	TaskFailed    TaskStatus = "failed"
)

// Errors returned by the service.
var (
	ErrPoolNotFound = fmt.Errorf("batchsim: pool not found")
	ErrPoolExists   = fmt.Errorf("batchsim: pool already exists")
	ErrTaskTooWide  = fmt.Errorf("batchsim: task requires more nodes than pool target")
	ErrPoolBusy     = fmt.Errorf("batchsim: pool has running tasks")
	ErrTaskNotFound = fmt.Errorf("batchsim: task not found")
)

// TaskContext is handed to the task function when the task starts.
type TaskContext struct {
	// SKU of the nodes the task runs on.
	SKU catalog.SKU
	// NodeIDs are the gang-scheduled nodes, the basis for the hostlist.
	NodeIDs []string
	// StartedAt is the virtual start time.
	StartedAt time.Duration
}

// TaskResult is what a task function produces: how long the work takes on
// the virtual clock, its stdout, and its exit code.
type TaskResult struct {
	DurationSeconds float64
	Stdout          string
	ExitCode        int
	// Preempted marks a spot reclaim: the task died because its node was
	// taken back, not because the application failed. Retry policy treats
	// the two very differently.
	Preempted bool
}

// TaskFunc computes the outcome of a task. It is called at task start; the
// task then occupies its nodes for DurationSeconds of virtual time.
type TaskFunc func(tc TaskContext) TaskResult

// TaskSpec describes a task to submit.
type TaskSpec struct {
	Name string
	// NodesRequired is the multi-instance width (1 for a plain task).
	NodesRequired int
	Run           TaskFunc
}

// Task is a submitted task.
type Task struct {
	ID     string
	Spec   TaskSpec
	Status TaskStatus
	Result TaskResult

	SubmittedAt time.Duration
	StartedAt   time.Duration
	CompletedAt time.Duration
	NodeIDs     []string
}

// Terminal reports whether the task reached a final state.
func (t *Task) Terminal() bool { return t.Status == TaskCompleted || t.Status == TaskFailed }

type node struct {
	id    string
	state NodeState
}

// Pool is a set of identical nodes executing tasks.
type Pool struct {
	ID  string
	SKU catalog.SKU
	// SetupSeconds is charged on every node after boot before it can run
	// tasks — the paper's per-pool application setup task.
	SetupSeconds float64
	// Spot marks low-priority capacity: cheaper, but tasks can be
	// preempted mid-run and must be retried.
	Spot bool

	svc     *Service
	target  int
	nodes   []*node
	queue   []*Task
	nextNum int
	// createdAt anchors pool-relative time, the coordinate system used for
	// spot-preemption draws so outcomes do not depend on what other pools
	// ran before (or concurrently with) this one.
	createdAt time.Duration
}

// TargetNodes returns the current resize target.
func (p *Pool) TargetNodes() int { return p.target }

// CountNodes returns the number of provisioned (billed) nodes.
func (p *Pool) CountNodes() int { return len(p.nodes) }

// IdleNodes returns how many nodes are ready for work.
func (p *Pool) IdleNodes() int {
	n := 0
	for _, nd := range p.nodes {
		if nd.state == NodeIdle {
			n++
		}
	}
	return n
}

// RunningTasks returns the number of tasks currently executing.
func (p *Pool) RunningTasks() int {
	n := 0
	for _, t := range p.queue {
		if t.Status == TaskRunning {
			n++
		}
	}
	return n
}

// Service is the batch service bound to one deployment (subscription +
// resource group).
type Service struct {
	Clock *vclock.Clock
	Meter *vclock.Meter

	cloud  *cloudsim.Cloud
	subID  string
	rgName string

	pools    map[string]*Pool
	tasks    map[string]*Task
	nextTask int
}

// New creates a batch service for a deployed resource group.
func New(clock *vclock.Clock, cloud *cloudsim.Cloud, subID, rgName string) *Service {
	return &Service{
		Clock:  clock,
		Meter:  vclock.NewMeter(),
		cloud:  cloud,
		subID:  subID,
		rgName: rgName,
		pools:  make(map[string]*Pool),
		tasks:  make(map[string]*Task),
	}
}

// CreatePool provisions an empty pool for a SKU. Nodes are added by Resize,
// matching Algorithm 1 ("create a batch service with no resources", then
// grow per task).
func (s *Service) CreatePool(id, skuName string, setupSeconds float64) (*Pool, error) {
	return s.createPool(id, skuName, setupSeconds, false)
}

// CreateSpotPool provisions a pool of low-priority (spot) capacity: billed
// at the spot rate but subject to preemption — a running task can be killed
// partway through and its node reclaimed.
func (s *Service) CreateSpotPool(id, skuName string, setupSeconds float64) (*Pool, error) {
	return s.createPool(id, skuName, setupSeconds, true)
}

func (s *Service) createPool(id, skuName string, setupSeconds float64, spot bool) (*Pool, error) {
	if _, ok := s.pools[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrPoolExists, id)
	}
	if err := s.cloud.TakeFault("CreatePool"); err != nil {
		return nil, err
	}
	sku, err := s.cloud.ValidateSKUForPool(s.subID, s.rgName, skuName, 0)
	if err != nil {
		return nil, err
	}
	p := &Pool{ID: id, SKU: sku, SetupSeconds: setupSeconds, Spot: spot, svc: s, createdAt: s.Clock.Now()}
	s.pools[id] = p
	s.meter(p)
	return p, nil
}

// Lane derives a private Service for one pool lane of a concurrent
// collection: a fresh virtual clock at time zero, a control-plane replica of
// this service's deployment (same region, same quota), and empty pool and
// task tables. The lane is owned by a single goroutine; when it finishes,
// merge its usage into the parent with
// parent.Meter.AddTotals(lane.UsageSnapshot()).
func (s *Service) Lane() (*Service, error) {
	clock := vclock.New()
	cloud, err := s.cloud.Replica(clock, s.subID, s.rgName)
	if err != nil {
		return nil, err
	}
	return New(clock, cloud, s.subID, s.rgName), nil
}

// UsageSnapshot closes and reopens the metering intervals of every live pool
// at the current virtual time and returns the service's meter, whose totals
// are then current. It is the hand-off point for folding a finished lane's
// billed node-seconds into another meter.
func (s *Service) UsageSnapshot() *vclock.Meter {
	for _, p := range s.pools {
		s.meter(p)
	}
	return s.Meter
}

// Pool resolves a pool by ID.
func (s *Service) Pool(id string) (*Pool, error) {
	if p, ok := s.pools[id]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrPoolNotFound, id)
}

// PoolIDs lists pools, sorted.
func (s *Service) PoolIDs() []string {
	out := make([]string, 0, len(s.pools))
	for id := range s.pools {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Resize grows or shrinks the pool to target nodes. Growth reserves quota
// and boots nodes (boot + setup latency before they are usable); shrink
// releases idle and booting nodes immediately but never running ones.
func (s *Service) Resize(poolID string, target int) error {
	p, err := s.Pool(poolID)
	if err != nil {
		return err
	}
	if target < 0 {
		return fmt.Errorf("batchsim: negative resize target %d", target)
	}
	sub, err := s.cloud.Subscription(s.subID)
	if err != nil {
		return err
	}
	switch {
	case target > len(p.nodes):
		// Only growth consults the fault plan: shrinking a pool (teardown)
		// releases resources and never allocates.
		if err := s.cloud.TakeFault("ResizePool"); err != nil {
			return err
		}
		add := target - len(p.nodes)
		rg, err := s.cloud.ResourceGroup(s.subID, s.rgName)
		if err != nil {
			return err
		}
		if err := sub.ReserveCores(rg.Region, p.SKU.Family, add*p.SKU.PhysicalCores); err != nil {
			return err
		}
		for i := 0; i < add; i++ {
			p.nextNum++
			nd := &node{id: fmt.Sprintf("%s-node-%03d", p.ID, p.nextNum), state: NodeBooting}
			p.nodes = append(p.nodes, nd)
			bootDur := vclock.Seconds(p.SKU.BootSeconds + p.SetupSeconds)
			s.Clock.Schedule(bootDur, func() {
				if nd.state == NodeBooting {
					nd.state = NodeIdle
					s.trySchedule(p)
				}
			})
		}
		s.meter(p)
	case target < len(p.nodes):
		removable := len(p.nodes) - target
		kept := p.nodes[:0]
		for _, nd := range p.nodes {
			if removable > 0 && nd.state != NodeBusy {
				removable--
				nd.state = "removed"
				continue
			}
			kept = append(kept, nd)
		}
		released := len(p.nodes) - len(kept)
		p.nodes = kept
		if released > 0 {
			rg, err := s.cloud.ResourceGroup(s.subID, s.rgName)
			if err != nil {
				return err
			}
			sub.ReleaseCores(rg.Region, p.SKU.Family, released*p.SKU.PhysicalCores)
		}
		s.meter(p)
		if removable > 0 {
			return fmt.Errorf("%w: %d busy nodes could not be removed", ErrPoolBusy, removable)
		}
	}
	p.target = target
	return nil
}

// DeletePool removes a pool with no running tasks, releasing its quota.
func (s *Service) DeletePool(poolID string) error {
	p, err := s.Pool(poolID)
	if err != nil {
		return err
	}
	if p.RunningTasks() > 0 {
		return fmt.Errorf("%w: %q", ErrPoolBusy, poolID)
	}
	if err := s.Resize(poolID, 0); err != nil {
		return err
	}
	s.Meter.StopInterval(s.meterKey(p), s.Clock.Now())
	delete(s.pools, poolID)
	return nil
}

// Submit queues a task on a pool. The task runs when enough nodes are idle.
func (s *Service) Submit(poolID string, spec TaskSpec) (*Task, error) {
	p, err := s.Pool(poolID)
	if err != nil {
		return nil, err
	}
	if spec.NodesRequired < 1 {
		spec.NodesRequired = 1
	}
	if spec.NodesRequired > p.target {
		return nil, fmt.Errorf("%w: needs %d, pool target %d", ErrTaskTooWide, spec.NodesRequired, p.target)
	}
	s.nextTask++
	t := &Task{
		ID:          fmt.Sprintf("task-%05d", s.nextTask),
		Spec:        spec,
		Status:      TaskPending,
		SubmittedAt: s.Clock.Now(),
	}
	s.tasks[t.ID] = t
	p.queue = append(p.queue, t)
	s.trySchedule(p)
	return t, nil
}

// Task resolves a task by ID.
func (s *Service) Task(id string) (*Task, error) {
	if t, ok := s.tasks[id]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrTaskNotFound, id)
}

// Wait drives the virtual clock until the task terminates. It returns an
// error if the clock runs dry before completion (a deadlock such as a task
// wider than its pool can ever satisfy).
func (s *Service) Wait(t *Task) error {
	for !t.Terminal() {
		if !s.Clock.Step() {
			return fmt.Errorf("batchsim: clock exhausted while waiting for %s (status %s)", t.ID, t.Status)
		}
	}
	return nil
}

// RunToCompletion submits a task and waits for it.
func (s *Service) RunToCompletion(poolID string, spec TaskSpec) (*Task, error) {
	t, err := s.Submit(poolID, spec)
	if err != nil {
		return nil, err
	}
	if err := s.Wait(t); err != nil {
		return nil, err
	}
	return t, nil
}

// trySchedule starts queued tasks FIFO while enough idle nodes exist.
func (s *Service) trySchedule(p *Pool) {
	for {
		var next *Task
		for _, t := range p.queue {
			if t.Status == TaskPending {
				next = t
				break
			}
		}
		if next == nil {
			return
		}
		var idle []*node
		for _, nd := range p.nodes {
			if nd.state == NodeIdle {
				idle = append(idle, nd)
			}
		}
		if len(idle) < next.Spec.NodesRequired {
			return
		}
		gang := idle[:next.Spec.NodesRequired]
		ids := make([]string, len(gang))
		for i, nd := range gang {
			nd.state = NodeBusy
			ids[i] = nd.id
		}
		next.Status = TaskRunning
		next.StartedAt = s.Clock.Now()
		next.NodeIDs = ids
		result := next.Spec.Run(TaskContext{SKU: p.SKU, NodeIDs: ids, StartedAt: s.Clock.Now()})
		if result.DurationSeconds < 0 {
			result.DurationSeconds = 0
		}
		// Spot capacity can be reclaimed mid-run: the task dies partway
		// through with the conventional SIGKILL exit code, and the
		// reclaimed node is replaced (boot + setup latency again).
		preempted := false
		if p.Spot && result.ExitCode == 0 {
			if frac, hit := preemption(next.Spec.Name, s.Clock.Now()-p.createdAt); hit {
				preempted = true
				result = TaskResult{
					DurationSeconds: result.DurationSeconds * frac,
					Stdout:          "Simulation did not complete successfully.\nnode preempted: spot capacity reclaimed\n",
					ExitCode:        137,
					Preempted:       true,
				}
			}
		}
		task := next
		s.Clock.Schedule(vclock.Seconds(result.DurationSeconds), func() {
			task.Result = result
			task.CompletedAt = s.Clock.Now()
			if result.ExitCode == 0 {
				task.Status = TaskCompleted
			} else {
				task.Status = TaskFailed
			}
			if preempted {
				s.reclaimAndReplace(p, gang[0])
			}
			for _, nd := range gang {
				if nd.state == NodeBusy {
					nd.state = NodeIdle
				}
			}
			s.trySchedule(p)
		})
	}
}

// preemptProbability is the chance a spot task loses a node mid-run.
const preemptProbability = 0.25

// preemption deterministically decides whether a spot task is reclaimed,
// and how far through its run. The draw is keyed on the task's submitted
// name and its start time relative to pool creation — coordinates that are
// identical whether the pool runs alone, after other pools, or concurrently
// with them in a collection lane — so spot outcomes are a property of the
// scenario, not of the execution schedule. Retried attempts start at
// different pool-relative times, so they re-roll.
func preemption(name string, at time.Duration) (fraction float64, hit bool) {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", name, at)
	u := float64(h.Sum64()%1_000_000) / 1_000_000
	if u >= preemptProbability {
		return 0, false
	}
	// The reclaim lands between 20% and 80% of the way through the run.
	return 0.2 + 0.6*(u/preemptProbability), true
}

// reclaimAndReplace removes a preempted node and boots its replacement,
// keeping the pool at target (billed through the reclaim, then again from
// replacement provisioning — spot economics include wasted work).
func (s *Service) reclaimAndReplace(p *Pool, victim *node) {
	kept := p.nodes[:0]
	for _, nd := range p.nodes {
		if nd != victim {
			kept = append(kept, nd)
		}
	}
	p.nodes = kept
	victim.state = "removed"
	p.nextNum++
	nd := &node{id: fmt.Sprintf("%s-node-%03d", p.ID, p.nextNum), state: NodeBooting}
	p.nodes = append(p.nodes, nd)
	s.Clock.Schedule(vclock.Seconds(p.SKU.BootSeconds+p.SetupSeconds), func() {
		if nd.state == NodeBooting {
			nd.state = NodeIdle
			s.trySchedule(p)
		}
	})
	s.meter(p)
}

func (s *Service) meterKey(p *Pool) string { return p.SKU.Name + "/" + p.ID }

// meter re-opens the node-seconds interval at the current node count.
func (s *Service) meter(p *Pool) {
	s.Meter.StartInterval(s.meterKey(p), s.Clock.Now(), float64(len(p.nodes)))
}

// NodeSecondsBySKU aggregates billed node-seconds per SKU name across pools,
// including deleted ones. Open intervals are included up to the current
// virtual time.
func (s *Service) NodeSecondsBySKU() map[string]float64 {
	s.UsageSnapshot() // close and reopen intervals so usage is current
	out := make(map[string]float64)
	for _, key := range s.Meter.Keys() {
		sku := key
		if i := indexByte(key, '/'); i >= 0 {
			sku = key[:i]
		}
		out[sku] += s.Meter.Total(key)
	}
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

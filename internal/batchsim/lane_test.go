package batchsim

import (
	"testing"

	"hpcadvisor/internal/vclock"
)

func TestLaneIsolation(t *testing.T) {
	f := newFixture(t)
	// Put the parent mid-simulation with a live pool.
	if _, err := f.svc.CreatePool("pool-hb", "Standard_HB120rs_v3", 60); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("pool-hb", 2); err != nil {
		t.Fatal(err)
	}
	f.clock.Run()

	lane, err := f.svc.Lane()
	if err != nil {
		t.Fatal(err)
	}
	if lane.Clock == f.svc.Clock {
		t.Fatal("lane shares the parent clock")
	}
	if lane.Clock.Now() != 0 {
		t.Fatalf("lane clock starts at %v, want 0", lane.Clock.Now())
	}
	// The parent's pool does not exist on the lane: the same ID is free.
	if _, err := lane.CreatePool("pool-hb", "Standard_HB120rs_v3", 60); err != nil {
		t.Fatalf("lane pool creation: %v", err)
	}
	if err := lane.Resize("pool-hb", 4); err != nil {
		t.Fatal(err)
	}
	lane.Clock.Run()
	if _, err := lane.Pool("pool-hb"); err != nil {
		t.Fatal(err)
	}
	// Lane activity must not leak into the parent's pool or meter.
	parentPool, err := f.svc.Pool("pool-hb")
	if err != nil {
		t.Fatal(err)
	}
	if parentPool.CountNodes() != 2 {
		t.Fatalf("parent pool resized to %d by lane activity", parentPool.CountNodes())
	}

	// Merging the lane's usage is explicit, via UsageSnapshot + AddTotals.
	before := f.svc.NodeSecondsBySKU()["Standard_HB120rs_v3"]
	laneNS := lane.NodeSecondsBySKU()["Standard_HB120rs_v3"]
	if laneNS <= 0 {
		t.Fatal("lane accrued no node-seconds")
	}
	f.svc.Meter.AddTotals(lane.UsageSnapshot())
	after := f.svc.NodeSecondsBySKU()["Standard_HB120rs_v3"]
	if diff := after - before - laneNS; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("merged node-seconds off by %f", diff)
	}
}

func TestLaneQuotaMatchesParent(t *testing.T) {
	f := newFixture(t)
	sub, err := f.cloud.Subscription("sub1")
	if err != nil {
		t.Fatal(err)
	}
	// Tighten quota so only 2 HB nodes (120 cores each) fit.
	sub.SetQuota("southcentralus", "HBv3", 240)

	lane, err := f.svc.Lane()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lane.CreatePool("p", "Standard_HB120rs_v3", 0); err != nil {
		t.Fatal(err)
	}
	if err := lane.Resize("p", 2); err != nil {
		t.Fatalf("resize within quota: %v", err)
	}
	if err := lane.Resize("p", 3); err == nil {
		t.Fatal("lane ignored the replicated quota")
	}
	// The lane's reservations never touched the parent's ledger.
	if got := sub.QuotaRemaining("southcentralus", "HBv3"); got != 240 {
		t.Fatalf("parent quota remaining = %d, want 240", got)
	}
}

func TestMeterAddTotals(t *testing.T) {
	a := vclock.NewMeter()
	b := vclock.NewMeter()
	a.Add("x", 10)
	b.Add("x", 5)
	b.Add("y", 7)
	a.AddTotals(b)
	if a.Total("x") != 15 || a.Total("y") != 7 {
		t.Fatalf("merged totals: x=%f y=%f", a.Total("x"), a.Total("y"))
	}
}

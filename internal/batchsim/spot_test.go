package batchsim

import (
	"strings"
	"testing"
	"time"

	"hpcadvisor/internal/vclock"
)

func TestSpotPoolCreation(t *testing.T) {
	f := newFixture(t)
	p, err := f.svc.CreateSpotPool("spot", "Standard_HB120rs_v3", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Spot {
		t.Error("pool should be marked spot")
	}
	od, err := f.svc.CreatePool("od", "Standard_HB120rs_v3", 0)
	if err != nil {
		t.Fatal(err)
	}
	if od.Spot {
		t.Error("regular pool should not be spot")
	}
}

func TestPreemptionDeterministicAndBounded(t *testing.T) {
	hits := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		frac, hit := preemption("task-x", time.Duration(i)*time.Second)
		frac2, hit2 := preemption("task-x", time.Duration(i)*time.Second)
		if hit != hit2 || frac != frac2 {
			t.Fatal("preemption must be deterministic")
		}
		if hit {
			hits++
			if frac < 0.2 || frac > 0.8 {
				t.Fatalf("fraction %f outside [0.2, 0.8]", frac)
			}
		}
	}
	rate := float64(hits) / trials
	if rate < 0.18 || rate > 0.32 {
		t.Errorf("preemption rate %.3f far from %.2f", rate, preemptProbability)
	}
}

func TestSpotTaskPreemptionLifecycle(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.CreateSpotPool("p", "Standard_HB120rs_v3", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 2); err != nil {
		t.Fatal(err)
	}
	f.clock.Run() // boot

	// Run tasks until one is preempted (deterministic, so scan a window).
	var preemptedTask *Task
	for i := 0; i < 40 && preemptedTask == nil; i++ {
		task, err := f.svc.RunToCompletion("p", TaskSpec{
			Name:          "spot-work",
			NodesRequired: 2,
			Run:           constantTask(100),
		})
		if err != nil {
			t.Fatal(err)
		}
		if task.Status == TaskFailed {
			preemptedTask = task
		}
	}
	if preemptedTask == nil {
		t.Fatal("no preemption observed in 40 spot tasks (expected ~25% rate)")
	}
	if preemptedTask.Result.ExitCode != 137 {
		t.Errorf("exit = %d, want 137 (SIGKILL convention)", preemptedTask.Result.ExitCode)
	}
	if !strings.Contains(preemptedTask.Result.Stdout, "preempted") {
		t.Errorf("stdout = %q", preemptedTask.Result.Stdout)
	}
	// The preempted run consumed part of the full duration.
	ran := (preemptedTask.CompletedAt - preemptedTask.StartedAt).Seconds()
	if ran <= 0 || ran >= 100 {
		t.Errorf("preempted run lasted %.0f s, want partial progress", ran)
	}
	// The pool replaced the reclaimed node: count returns to target after
	// the replacement boots.
	f.clock.Run()
	p, _ := f.svc.Pool("p")
	if p.CountNodes() != 2 {
		t.Errorf("nodes = %d after replacement, want 2", p.CountNodes())
	}
	if p.IdleNodes() != 2 {
		t.Errorf("idle = %d, want 2", p.IdleNodes())
	}
}

func TestOnDemandPoolNeverPreempts(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.CreatePool("p", "Standard_HB120rs_v3", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		task, err := f.svc.RunToCompletion("p", TaskSpec{NodesRequired: 1, Run: constantTask(50)})
		if err != nil {
			t.Fatal(err)
		}
		if task.Status != TaskCompleted {
			t.Fatalf("on-demand task %d failed: %q", i, task.Result.Stdout)
		}
	}
}

func TestSpotPreemptionDoesNotMaskRealFailures(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.CreateSpotPool("p", "Standard_HB120rs_v3", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 1); err != nil {
		t.Fatal(err)
	}
	task, err := f.svc.RunToCompletion("p", TaskSpec{
		NodesRequired: 1,
		Run: func(tc TaskContext) TaskResult {
			return TaskResult{DurationSeconds: 5, Stdout: "boom\n", ExitCode: 2}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The application failure is reported verbatim, not converted into a
	// preemption.
	if task.Result.ExitCode != 2 || !strings.Contains(task.Result.Stdout, "boom") {
		t.Errorf("result = %+v", task.Result)
	}
}

func TestSpotRetryRerollsPreemption(t *testing.T) {
	// The preemption decision hashes (task ID, start time), so a retried
	// attempt starting later re-rolls: across a window of start times both
	// outcomes occur for the same task ID.
	sawHit, sawMiss := false, false
	for i := 0; i < 200; i++ {
		_, hit := preemption("task-00042", vclock.Seconds(float64(i*37)))
		if hit {
			sawHit = true
		} else {
			sawMiss = true
		}
	}
	if !sawHit || !sawMiss {
		t.Errorf("reroll broken: hit=%v miss=%v", sawHit, sawMiss)
	}
}

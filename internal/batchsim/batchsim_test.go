package batchsim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"hpcadvisor/internal/catalog"
	"hpcadvisor/internal/cloudsim"
	"hpcadvisor/internal/vclock"
)

type fixture struct {
	clock *vclock.Clock
	cloud *cloudsim.Cloud
	svc   *Service
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clock := vclock.New()
	cloud := cloudsim.New(clock, catalog.Default(), "sub1")
	if _, err := cloud.CreateResourceGroup("sub1", "rg1", "southcentralus"); err != nil {
		t.Fatal(err)
	}
	return &fixture{clock: clock, cloud: cloud, svc: New(clock, cloud, "sub1", "rg1")}
}

func constantTask(seconds float64) TaskFunc {
	return func(tc TaskContext) TaskResult {
		return TaskResult{DurationSeconds: seconds, Stdout: "ok\n"}
	}
}

func TestPoolLifecycle(t *testing.T) {
	f := newFixture(t)
	p, err := f.svc.CreatePool("pool-hb", "Standard_HB120rs_v3", 60)
	if err != nil {
		t.Fatal(err)
	}
	if p.CountNodes() != 0 || p.TargetNodes() != 0 {
		t.Error("new pool should be empty (paper: batch service created with no resources)")
	}
	if err := f.svc.Resize("pool-hb", 4); err != nil {
		t.Fatal(err)
	}
	if p.CountNodes() != 4 {
		t.Errorf("nodes = %d, want 4", p.CountNodes())
	}
	if p.IdleNodes() != 0 {
		t.Error("nodes should still be booting")
	}
	// After boot+setup, nodes become idle.
	f.clock.Run()
	if p.IdleNodes() != 4 {
		t.Errorf("idle = %d, want 4", p.IdleNodes())
	}
	if err := f.svc.DeletePool("pool-hb"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.svc.Pool("pool-hb"); !errors.Is(err, ErrPoolNotFound) {
		t.Errorf("pool should be gone: %v", err)
	}
}

func TestCreatePoolValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.CreatePool("p", "Standard_HB120rs_v3", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.svc.CreatePool("p", "Standard_HB120rs_v3", 0); !errors.Is(err, ErrPoolExists) {
		t.Errorf("dup pool: %v", err)
	}
	if _, err := f.svc.CreatePool("q", "Standard_Unknown", 0); err == nil {
		t.Error("unknown SKU should fail")
	}
}

func TestNodeBootLatencyObserved(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.CreatePool("p", "Standard_HB120rs_v3", 60); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 1); err != nil {
		t.Fatal(err)
	}
	start := f.clock.Now()
	task, err := f.svc.RunToCompletion("p", TaskSpec{Name: "t", NodesRequired: 1, Run: constantTask(10)})
	if err != nil {
		t.Fatal(err)
	}
	sku := catalog.Default().MustLookup("hb120rs_v3")
	wantStart := start + vclock.Seconds(sku.BootSeconds+60)
	if task.StartedAt != wantStart {
		t.Errorf("task started at %v, want boot+setup = %v", task.StartedAt, wantStart)
	}
	if task.CompletedAt-task.StartedAt != 10*time.Second {
		t.Errorf("task ran for %v, want 10s", task.CompletedAt-task.StartedAt)
	}
}

func TestMultiInstanceGangScheduling(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.CreatePool("p", "Standard_HB120rs_v3", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 4); err != nil {
		t.Fatal(err)
	}
	// An MPI task across all 4 nodes.
	task, err := f.svc.RunToCompletion("p", TaskSpec{Name: "mpi", NodesRequired: 4, Run: constantTask(30)})
	if err != nil {
		t.Fatal(err)
	}
	if len(task.NodeIDs) != 4 {
		t.Errorf("gang = %v, want 4 nodes", task.NodeIDs)
	}
	if task.Status != TaskCompleted {
		t.Errorf("status = %s", task.Status)
	}
}

func TestTaskWiderThanPoolRejected(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.CreatePool("p", "Standard_HB120rs_v3", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.svc.Submit("p", TaskSpec{NodesRequired: 3, Run: constantTask(1)}); !errors.Is(err, ErrTaskTooWide) {
		t.Errorf("too-wide task: %v", err)
	}
}

func TestFIFOQueueingOnSharedNodes(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.CreatePool("p", "Standard_HC44rs", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 2); err != nil {
		t.Fatal(err)
	}
	t1, err := f.svc.Submit("p", TaskSpec{Name: "a", NodesRequired: 2, Run: constantTask(100)})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := f.svc.Submit("p", TaskSpec{Name: "b", NodesRequired: 2, Run: constantTask(50)})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Wait(t2); err != nil {
		t.Fatal(err)
	}
	if !t1.Terminal() {
		t.Error("t1 should have finished before t2 started (FIFO)")
	}
	if t2.StartedAt < t1.CompletedAt {
		t.Errorf("t2 started %v before t1 completed %v", t2.StartedAt, t1.CompletedAt)
	}
}

func TestFailedTaskReportsExitCode(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.CreatePool("p", "Standard_HB120rs_v3", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 1); err != nil {
		t.Fatal(err)
	}
	task, err := f.svc.RunToCompletion("p", TaskSpec{
		Name:          "bad",
		NodesRequired: 1,
		Run: func(tc TaskContext) TaskResult {
			return TaskResult{DurationSeconds: 5, Stdout: "Simulation did not complete successfully.\n", ExitCode: 1}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if task.Status != TaskFailed {
		t.Errorf("status = %s, want failed", task.Status)
	}
	if !strings.Contains(task.Result.Stdout, "did not complete") {
		t.Errorf("stdout = %q", task.Result.Stdout)
	}
}

func TestResizeShrinkKeepsBusyNodes(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.CreatePool("p", "Standard_HB120rs_v3", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 3); err != nil {
		t.Fatal(err)
	}
	task, err := f.svc.Submit("p", TaskSpec{Name: "w", NodesRequired: 2, Run: constantTask(1000)})
	if err != nil {
		t.Fatal(err)
	}
	// Let nodes boot and the task start.
	f.clock.RunUntil(f.clock.Now() + vclock.Seconds(400))
	p, _ := f.svc.Pool("p")
	if p.RunningTasks() != 1 {
		t.Fatalf("task not running; status=%s idle=%d", task.Status, p.IdleNodes())
	}
	// Shrinking to zero must keep the 2 busy nodes and report the conflict.
	err = f.svc.Resize("p", 0)
	if !errors.Is(err, ErrPoolBusy) {
		t.Errorf("shrink across busy nodes: %v", err)
	}
	if p.CountNodes() != 2 {
		t.Errorf("nodes = %d, want 2 busy survivors", p.CountNodes())
	}
	// DeletePool with a running task is refused.
	if err := f.svc.DeletePool("p"); !errors.Is(err, ErrPoolBusy) {
		t.Errorf("delete busy pool: %v", err)
	}
	if err := f.svc.Wait(task); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.DeletePool("p"); err != nil {
		t.Errorf("delete after drain: %v", err)
	}
}

func TestQuotaEnforcedOnResize(t *testing.T) {
	f := newFixture(t)
	sub, _ := f.cloud.Subscription("sub1")
	sub.SetQuota("southcentralus", "HBv3", 600) // five 120-core nodes
	if _, err := f.svc.CreatePool("p", "Standard_HB120rs_v3", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 5); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 6); !errors.Is(err, cloudsim.ErrQuotaExceeded) {
		t.Errorf("over-quota resize: %v", err)
	}
	// Shrinking releases quota for another pool.
	if err := f.svc.Resize("p", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.svc.CreatePool("q", "Standard_HB120rs_v3", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("q", 5); err != nil {
		t.Errorf("quota should be free again: %v", err)
	}
}

func TestRegionAvailabilityEnforcedAtPoolCreate(t *testing.T) {
	clock := vclock.New()
	cloud := cloudsim.New(clock, catalog.Default(), "sub1")
	if _, err := cloud.CreateResourceGroup("sub1", "rgw", "westus2"); err != nil {
		t.Fatal(err)
	}
	svc := New(clock, cloud, "sub1", "rgw")
	if _, err := svc.CreatePool("p", "Standard_HB120rs_v3", 0); !errors.Is(err, cloudsim.ErrRegion) {
		t.Errorf("HB pool in westus2: %v", err)
	}
}

func TestNodeSecondsMetering(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.CreatePool("p", "Standard_HB120rs_v3", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.svc.RunToCompletion("p", TaskSpec{NodesRequired: 2, Run: constantTask(100)}); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 0); err != nil {
		t.Fatal(err)
	}
	usage := f.svc.NodeSecondsBySKU()
	// 2 nodes billed from provisioning through boot (300 s) + task (100 s).
	want := 2.0 * (300 + 100)
	got := usage["Standard_HB120rs_v3"]
	if got < want*0.99 || got > want*1.01 {
		t.Errorf("node-seconds = %.0f, want ~%.0f (boot time is billed)", got, want)
	}
}

func TestWaitDetectsDeadlock(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.CreatePool("p", "Standard_HB120rs_v3", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 2); err != nil {
		t.Fatal(err)
	}
	f.clock.Run() // boot everyone
	// Occupy both nodes forever-ish, then submit a second task and shrink
	// the pool under it: queue can never drain after the long task if the
	// pool shrank. Simplest deadlock: submit then immediately shrink target
	// below requirement — Submit checks target at submit time, so instead
	// exhaust the clock legitimately.
	t1, err := f.svc.Submit("p", TaskSpec{NodesRequired: 2, Run: constantTask(10)})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Wait(t1); err != nil {
		t.Fatal(err)
	}
	// Now a task on an empty pool target: rejected up front, no hang.
	if err := f.svc.Resize("p", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.svc.Submit("p", TaskSpec{NodesRequired: 1, Run: constantTask(1)}); !errors.Is(err, ErrTaskTooWide) {
		t.Errorf("submit to empty pool: %v", err)
	}
}

func TestTaskLookup(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.CreatePool("p", "Standard_HC44rs", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 1); err != nil {
		t.Fatal(err)
	}
	task, err := f.svc.RunToCompletion("p", TaskSpec{NodesRequired: 1, Run: constantTask(1)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.svc.Task(task.ID)
	if err != nil || got != task {
		t.Errorf("Task(%q) = %v, %v", task.ID, got, err)
	}
	if _, err := f.svc.Task("task-99999"); !errors.Is(err, ErrTaskNotFound) {
		t.Errorf("unknown task: %v", err)
	}
}

func TestPoolIDsSorted(t *testing.T) {
	f := newFixture(t)
	for _, id := range []string{"zeta", "alpha", "mid"} {
		if _, err := f.svc.CreatePool(id, "Standard_HC44rs", 0); err != nil {
			t.Fatal(err)
		}
	}
	ids := f.svc.PoolIDs()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("PoolIDs = %v", ids)
		}
	}
}

func TestManyTasksSequentialThroughput(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.CreatePool("p", "Standard_HB120rs_v2", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.Resize("p", 2); err != nil {
		t.Fatal(err)
	}
	var tasks []*Task
	for i := 0; i < 20; i++ {
		task, err := f.svc.Submit("p", TaskSpec{
			Name:          fmt.Sprintf("t%d", i),
			NodesRequired: 1 + i%2,
			Run:           constantTask(float64(10 + i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	f.clock.Run()
	for i, task := range tasks {
		if task.Status != TaskCompleted {
			t.Errorf("task %d status %s", i, task.Status)
		}
	}
}

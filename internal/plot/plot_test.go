package plot

import (
	"strings"
	"testing"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/monitor"
)

// lammpsStore builds a dataset resembling the paper's Figure 2-5 data:
// three SKUs, six node counts, one input.
func lammpsStore() *dataset.Store {
	s := dataset.NewStore()
	series := map[string][]float64{
		// node counts:      1     2      3      4      8     16
		"hc44rs":     {2760, 1377, 892, 568, 194, 99},
		"hb120rs_v2": {1095, 353, 206, 155, 80, 43},
		"hb120rs_v3": {961, 311, 179, 135, 70, 38},
	}
	prices := map[string]float64{"hc44rs": 3.168, "hb120rs_v2": 3.6, "hb120rs_v3": 3.6}
	nodes := []int{1, 2, 3, 4, 8, 16}
	for alias, times := range series {
		for i, n := range nodes {
			s.Add(dataset.Point{
				ScenarioID:  alias + "-" + string(rune('0'+i)),
				AppName:     "lammps",
				SKU:         "Standard_" + alias,
				SKUAlias:    alias,
				NNodes:      n,
				PPN:         120,
				InputDesc:   "atoms=864M",
				ExecTimeSec: times[i],
				CostUSD:     float64(n) * times[i] * prices[alias] / 3600,
				Utilization: monitor.Sample{CPUUtil: 0.8},
			})
		}
	}
	return s
}

func TestExecTimeVsNodesShape(t *testing.T) {
	p := ExecTimeVsNodes(lammpsStore(), dataset.Filter{AppName: "lammps"})
	if len(p.Series) != 3 {
		t.Fatalf("series = %d, want 3 (one per SKU, as in Fig. 2)", len(p.Series))
	}
	if p.Subtitle != "atoms=864M" {
		t.Errorf("subtitle = %q (paper shows the input here)", p.Subtitle)
	}
	for _, s := range p.Series {
		if len(s.Points) != 6 {
			t.Errorf("%s has %d points", s.Name, len(s.Points))
		}
		// X ascending, Y descending (time falls with nodes).
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].X <= s.Points[i-1].X {
				t.Errorf("%s X not ascending", s.Name)
			}
			if s.Points[i].Y >= s.Points[i-1].Y {
				t.Errorf("%s time not decreasing", s.Name)
			}
		}
	}
	if p.XLabel != "Number of VMs" || p.YLabel != "Execution time (seconds)" {
		t.Errorf("labels = %q / %q", p.XLabel, p.YLabel)
	}
}

func TestExecTimeVsCostIsScatter(t *testing.T) {
	p := ExecTimeVsCost(lammpsStore(), dataset.Filter{AppName: "lammps"})
	for _, s := range p.Series {
		if !s.Scatter {
			t.Errorf("%s should be scatter (Fig. 3 plots one dot per scenario)", s.Name)
		}
	}
	if p.XLabel != "Execution time (seconds)" || p.YLabel != "Cost (USD)" {
		t.Errorf("labels = %q / %q", p.XLabel, p.YLabel)
	}
}

func TestSpeedupBaselineIsSmallestNodeCount(t *testing.T) {
	p := Speedup(lammpsStore(), dataset.Filter{AppName: "lammps"})
	for _, s := range p.Series {
		if s.Points[0].X != 1 || s.Points[0].Y != 1 {
			t.Errorf("%s baseline = (%v, %v), want (1, 1)", s.Name, s.Points[0].X, s.Points[0].Y)
		}
		// Speedup grows with nodes for this data.
		last := s.Points[len(s.Points)-1]
		if last.Y < 20 {
			t.Errorf("%s speedup @16 = %.1f, want > 20 (paper Fig. 4 shows ~26)", s.Name, last.Y)
		}
	}
}

func TestEfficiencyShowsSuperLinear(t *testing.T) {
	p := Efficiency(lammpsStore(), dataset.Filter{AppName: "lammps"})
	super := false
	for _, s := range p.Series {
		for _, pt := range s.Points {
			if pt.Y > 1.0 {
				super = true
			}
		}
	}
	if !super {
		t.Error("no efficiency above 1; paper Fig. 5 shows super-linear values")
	}
}

func TestRelativePlotsSkipSingletonSeries(t *testing.T) {
	s := dataset.NewStore()
	s.Add(dataset.Point{ScenarioID: "only", AppName: "x", SKUAlias: "a", NNodes: 4, ExecTimeSec: 10, CostUSD: 1})
	p := Speedup(s, dataset.Filter{})
	if len(p.Series) != 0 {
		t.Errorf("series = %d, want 0 (cannot compute speedup from one point)", len(p.Series))
	}
}

func TestParetoScatterHasFrontLine(t *testing.T) {
	p := ParetoScatter(lammpsStore(), dataset.Filter{AppName: "lammps"})
	if len(p.Series) != 2 {
		t.Fatalf("series = %d, want scenarios + front", len(p.Series))
	}
	scatter, front := p.Series[0], p.Series[1]
	if scatter.Name != "Scenarios" || front.Name != "Pareto Front" {
		t.Errorf("names = %q, %q", scatter.Name, front.Name)
	}
	if len(scatter.Points) != 18 {
		t.Errorf("scatter points = %d, want 18", len(scatter.Points))
	}
	if len(front.Points) == 0 || len(front.Points) >= len(scatter.Points) {
		t.Errorf("front points = %d", len(front.Points))
	}
	// The front line is sorted by cost for drawing.
	for i := 1; i < len(front.Points); i++ {
		if front.Points[i].X < front.Points[i-1].X {
			t.Error("front line not sorted by cost")
		}
	}
}

func TestSeriesNamesIncludeInputOnlyWhenMultiple(t *testing.T) {
	s := lammpsStore()
	p := ExecTimeVsNodes(s, dataset.Filter{})
	for _, sr := range p.Series {
		if strings.Contains(sr.Name, "atoms") {
			t.Errorf("single-input series name %q should be the SKU alias only", sr.Name)
		}
	}
	// Add a second input: names must disambiguate and the subtitle drops.
	s.Add(dataset.Point{ScenarioID: "x", AppName: "lammps", SKUAlias: "hb120rs_v3",
		NNodes: 1, InputDesc: "atoms=4M", ExecTimeSec: 5, CostUSD: 0.01})
	p = ExecTimeVsNodes(s, dataset.Filter{})
	foundQualified := false
	for _, sr := range p.Series {
		if strings.Contains(sr.Name, "(atoms=") {
			foundQualified = true
		}
	}
	if !foundQualified {
		t.Error("multi-input series should carry the input in their names")
	}
	if p.Subtitle != "" {
		t.Errorf("multi-input subtitle = %q, want empty", p.Subtitle)
	}
}

func TestBounds(t *testing.T) {
	var empty Plot
	x0, x1, y0, y1 := empty.Bounds()
	if x0 != 0 || x1 != 1 || y0 != 0 || y1 != 1 {
		t.Errorf("empty bounds = %v %v %v %v", x0, x1, y0, y1)
	}
	if !empty.Empty() {
		t.Error("empty plot should report Empty")
	}
	p := ExecTimeVsNodes(lammpsStore(), dataset.Filter{})
	x0, x1, y0, y1 = p.Bounds()
	if x0 != 1 || x1 != 16 {
		t.Errorf("x bounds = %v..%v", x0, x1)
	}
	if y0 != 0 {
		t.Errorf("y floor = %v, want 0 (paper plots anchor at zero)", y0)
	}
	if y1 < 2760 {
		t.Errorf("y ceil = %v", y1)
	}
}

func TestRenderSVGWellFormed(t *testing.T) {
	for _, p := range []Plot{
		ExecTimeVsNodes(lammpsStore(), dataset.Filter{}),
		ExecTimeVsCost(lammpsStore(), dataset.Filter{}),
		Speedup(lammpsStore(), dataset.Filter{}),
		Efficiency(lammpsStore(), dataset.Filter{}),
		ParetoScatter(lammpsStore(), dataset.Filter{}),
	} {
		svg := string(RenderSVG(p))
		if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
			t.Errorf("%s: not a complete SVG document", p.Title)
		}
		for _, want := range []string{"<polyline", "<circle", p.Title, "<text"} {
			if p.Title == "Cost" && want == "<polyline" {
				continue // scatter-only plot has no lines
			}
			if !strings.Contains(svg, want) {
				t.Errorf("%s: SVG missing %s", p.Title, want)
			}
		}
		// Escaping sanity: no raw ampersands outside entities.
		if strings.Contains(svg, "& ") {
			t.Errorf("%s: unescaped ampersand", p.Title)
		}
	}
}

func TestRenderSVGEscapesLabels(t *testing.T) {
	p := Plot{Title: `a<b & "c"`, Series: []Series{{Name: "s", Points: []XY{{1, 1}, {2, 2}}}}}
	svg := string(RenderSVG(p))
	if strings.Contains(svg, `a<b`) {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b &amp; &quot;c&quot;") {
		t.Error("escaped title missing")
	}
}

func TestRenderASCII(t *testing.T) {
	p := ExecTimeVsNodes(lammpsStore(), dataset.Filter{})
	out := RenderASCII(p, 60, 20)
	if !strings.Contains(out, "Exectime") || !strings.Contains(out, "atoms=864M") {
		t.Errorf("missing title/subtitle:\n%s", out)
	}
	if !strings.Contains(out, "hb120rs_v3") {
		t.Errorf("missing legend:\n%s", out)
	}
	// Marker characters appear in the grid.
	if !strings.ContainsAny(out, "ox+") {
		t.Errorf("no data markers:\n%s", out)
	}
	// Tiny dimensions are clamped, not crashed.
	if RenderASCII(p, 1, 1) == "" {
		t.Error("clamped render empty")
	}
	if !strings.Contains(RenderASCII(Plot{Title: "t"}, 40, 10), "(no data)") {
		t.Error("empty plot should say so")
	}
}

func TestTicks(t *testing.T) {
	ts := ticks(0, 100, 8)
	if len(ts) < 4 || len(ts) > 12 {
		t.Errorf("ticks(0,100) = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Errorf("ticks not increasing: %v", ts)
		}
	}
	if got := ticks(5, 5, 8); len(got) != 2 {
		t.Errorf("degenerate ticks = %v", got)
	}
}

func TestPlotString(t *testing.T) {
	p := ExecTimeVsNodes(lammpsStore(), dataset.Filter{})
	s := p.String()
	if !strings.Contains(s, "3 series") || !strings.Contains(s, "18 points") {
		t.Errorf("String = %q", s)
	}
}

package plot

import (
	"fmt"
	"math"
	"strings"
)

// SVG geometry.
const (
	svgW       = 640
	svgH       = 440
	svgMarginL = 70
	svgMarginR = 20
	svgMarginT = 60
	svgMarginB = 55
)

// seriesColors cycles across series; the first three match the paper's
// figure palette order loosely (blue, orange, green).
var seriesColors = []string{"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2"}

// RenderSVG renders the plot as a standalone SVG document.
func RenderSVG(p Plot) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		svgW, svgH, svgW, svgH)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	fmt.Fprintf(&b, `<text x="%d" y="24" text-anchor="middle" font-family="sans-serif" font-size="16" font-weight="bold">%s</text>`+"\n",
		svgW/2, escape(p.Title))
	if p.Subtitle != "" {
		fmt.Fprintf(&b, `<text x="%d" y="42" text-anchor="middle" font-family="sans-serif" font-size="12" fill="#555">%s</text>`+"\n",
			svgW/2, escape(p.Subtitle))
	}

	xmin, xmax, ymin, ymax := p.Bounds()
	plotW := float64(svgW - svgMarginL - svgMarginR)
	plotH := float64(svgH - svgMarginT - svgMarginB)
	tx := func(x float64) float64 { return float64(svgMarginL) + (x-xmin)/(xmax-xmin)*plotW }
	ty := func(y float64) float64 { return float64(svgH-svgMarginB) - (y-ymin)/(ymax-ymin)*plotH }

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		svgMarginL, svgH-svgMarginB, svgW-svgMarginR, svgH-svgMarginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		svgMarginL, svgMarginT, svgMarginL, svgH-svgMarginB)

	// Ticks and grid.
	for _, t := range ticks(xmin, xmax, 8) {
		x := tx(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n",
			x, svgMarginT, x, svgH-svgMarginB)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			x, svgH-svgMarginB+16, formatTick(t))
	}
	for _, t := range ticks(ymin, ymax, 8) {
		y := ty(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			svgMarginL, y, svgW-svgMarginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			svgMarginL-6, y+4, formatTick(t))
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="13">%s</text>`+"\n",
		svgMarginL+int(plotW/2), svgH-12, escape(p.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" text-anchor="middle" font-family="sans-serif" font-size="13" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		svgMarginT+int(plotH/2), svgMarginT+int(plotH/2), escape(p.YLabel))

	colors := assignColors(p.Series)

	// Series.
	for i, s := range p.Series {
		color := colors[i]
		if s.Band {
			if len(s.Points) > 2 {
				var pts []string
				for _, pt := range s.Points {
					pts = append(pts, fmt.Sprintf("%.1f,%.1f", tx(pt.X), ty(pt.Y)))
				}
				fmt.Fprintf(&b, `<polygon points="%s" fill="%s" fill-opacity="0.15" stroke="none"/>`+"\n",
					strings.Join(pts, " "), color)
			}
			continue
		}
		if !s.Scatter && len(s.Points) > 1 {
			dash := ""
			if s.Dashed {
				dash = ` stroke-dasharray="6 4"`
			}
			var pts []string
			for _, pt := range s.Points {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", tx(pt.X), ty(pt.Y)))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"%s/>`+"\n",
				strings.Join(pts, " "), color, dash)
		}
		for _, pt := range s.Points {
			if s.Dashed {
				// Open markers distinguish predicted points from measured.
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="white" stroke="%s" stroke-width="1.5"/>`+"\n",
					tx(pt.X), ty(pt.Y), color)
			} else {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s"/>`+"\n", tx(pt.X), ty(pt.Y), color)
			}
		}
	}

	// Legend along the bottom, like the paper's figures.
	lx := float64(svgMarginL)
	for i, s := range p.Series {
		if s.Band && s.Name == "" {
			continue
		}
		color := colors[i]
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="10" height="10" fill="%s"/>`+"\n", lx, svgMarginT-14, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+14, svgMarginT-5, escape(s.Name))
		lx += 18 + float64(len(s.Name))*7
	}

	b.WriteString("</svg>\n")
	return []byte(b.String())
}

// assignColors walks the palette across the series. Only non-band series
// advance the palette; an interval band borrows the color of the curve
// that follows it, so a band is always tinted like the prediction it
// belongs to.
func assignColors(series []Series) []string {
	colors := make([]string, len(series))
	ci := 0
	for i, s := range series {
		if !s.Band {
			colors[i] = seriesColors[ci%len(seriesColors)]
			ci++
		}
	}
	next := seriesColors[ci%len(seriesColors)]
	for i := len(series) - 1; i >= 0; i-- {
		if series[i].Band {
			colors[i] = next
		} else {
			next = colors[i]
		}
	}
	return colors
}

// RenderASCII renders the plot as a text chart for terminal use.
func RenderASCII(p Plot, width, height int) string {
	if width < 30 {
		width = 30
	}
	if height < 10 {
		height = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s", p.Title)
	if p.Subtitle != "" {
		fmt.Fprintf(&b, "  [%s]", p.Subtitle)
	}
	b.WriteString("\n")
	if p.Empty() {
		b.WriteString("(no data)\n")
		return b.String()
	}

	xmin, xmax, ymin, ymax := p.Bounds()
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	markers := []rune{'o', 'x', '+', '*', '#', '@', '%'}
	for si, s := range p.Series {
		if s.Band {
			continue // interval bands have no ASCII rendering
		}
		m := markers[si%len(markers)]
		if s.Dashed {
			m = '.'
		}
		for _, pt := range s.Points {
			col := int((pt.X - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((pt.Y-ymin)/(ymax-ymin)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = m
			}
		}
	}
	for i, row := range grid {
		yval := ymax - (ymax-ymin)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%10s |%s\n", formatTick(yval), string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*s%s\n", "", width-len(formatTick(xmax)), formatTick(xmin), formatTick(xmax))
	fmt.Fprintf(&b, "x: %s, y: %s\n", p.XLabel, p.YLabel)
	for si, s := range p.Series {
		if s.Band {
			continue
		}
		m := markers[si%len(markers)]
		if s.Dashed {
			m = '.'
		}
		fmt.Fprintf(&b, "  %c = %s\n", m, s.Name)
	}
	return b.String()
}

// ticks produces up to n rounded tick positions covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return []float64{lo, hi}
	}
	rawStep := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		step = m * mag
		if step >= rawStep {
			break
		}
	}
	start := math.Ceil(lo/step) * step
	var out []float64
	for t := start; t <= hi+step/1e6; t += step {
		out = append(out, t)
	}
	return out
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000:
		return fmt.Sprintf("%.3g", v)
	case av >= 10 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	case av >= 0.01:
		return fmt.Sprintf("%.2f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

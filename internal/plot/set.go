package plot

import "hpcadvisor/internal/dataset"

// Set is the full set of plots the tool generates for a filter: the paper's
// Section III-D four plots plus the Figure 6 Pareto scatter. core.PlotSet
// aliases this type.
type Set struct {
	ExecTimeVsNodes Plot
	ExecTimeVsCost  Plot
	Speedup         Plot
	Efficiency      Plot
	Pareto          Plot
}

// SetNames are the canonical artifact names of the five plots, in
// presentation order — the SVG file basenames and the GUI's plot.svg?name=
// values.
var SetNames = []string{"exectime_vs_nodes", "exectime_vs_cost", "speedup", "efficiency", "pareto"}

// BuildSet computes all five plots from one source, so a set served from a
// snapshot is internally consistent at a single store generation.
func BuildSet(src Source, f dataset.Filter) Set {
	return Set{
		ExecTimeVsNodes: ExecTimeVsNodes(src, f),
		ExecTimeVsCost:  ExecTimeVsCost(src, f),
		Speedup:         Speedup(src, f),
		Efficiency:      Efficiency(src, f),
		Pareto:          ParetoScatter(src, f),
	}
}

// All returns the plots in presentation order (matching SetNames).
func (s Set) All() []Plot {
	return []Plot{s.ExecTimeVsNodes, s.ExecTimeVsCost, s.Speedup, s.Efficiency, s.Pareto}
}

// ByName returns the named plot of the set; ok is false for unknown names.
func (s Set) ByName(name string) (Plot, bool) {
	switch name {
	case "exectime_vs_nodes":
		return s.ExecTimeVsNodes, true
	case "exectime_vs_cost":
		return s.ExecTimeVsCost, true
	case "speedup":
		return s.Speedup, true
	case "efficiency":
		return s.Efficiency, true
	case "pareto":
		return s.Pareto, true
	}
	return Plot{}, false
}

// Package plot generates the four plot types HPCAdvisor produces
// (Section III-D): execution time vs number of nodes (Fig. 2), execution
// time vs cost (Fig. 3), speedup (Fig. 4), and efficiency (Fig. 5) — plus
// the Pareto-front scatter of Fig. 6. Plots are computed from the dataset
// and rendered as SVG files or ASCII charts (stdlib only).
package plot

import (
	"fmt"
	"math"
	"sort"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
)

// Source is any queryable view of the dataset: the live *dataset.Store or
// an immutable *dataset.Snapshot. Plot builders only read through this
// surface, so the query engine can pin all plots of one set to a single
// snapshot generation.
type Source interface {
	Select(dataset.Filter) []dataset.Point
	GroupSeries(dataset.Filter) map[dataset.SeriesKey][]dataset.Point
}

// XY is one plotted point.
type XY struct {
	X float64
	Y float64
}

// Series is one curve: a VM type at one application input.
type Series struct {
	Name    string
	Points  []XY
	Scatter bool // draw markers only, no connecting line
	// Dashed draws the line dashed with open markers — the rendering of
	// model-predicted overlays, visually distinct from measured series.
	Dashed bool
	// Band draws the points as a closed translucent polygon (a prediction
	// interval band) instead of a line or markers; Points trace the lower
	// edge left-to-right then the upper edge right-to-left. Band series with
	// an empty Name are skipped in legends.
	Band bool
}

// Plot is a renderable chart.
type Plot struct {
	Title    string
	Subtitle string // the paper shows the application input here, e.g. "atoms=860M"
	XLabel   string
	YLabel   string
	Series   []Series
}

// ExecTimeVsNodes builds the paper's Figure 2: execution time as a function
// of node count, one series per VM type.
func ExecTimeVsNodes(src Source, f dataset.Filter) Plot {
	p := Plot{
		Title:  "Exectime",
		XLabel: "Number of VMs",
		YLabel: "Execution time (seconds)",
	}
	buildSeries(&p, src, f, func(pt dataset.Point) XY {
		return XY{X: float64(pt.NNodes), Y: pt.ExecTimeSec}
	})
	return p
}

// ExecTimeVsCost builds the paper's Figure 3: cost against execution time,
// one series per VM type (scatter style, as each point is one scenario).
func ExecTimeVsCost(src Source, f dataset.Filter) Plot {
	p := Plot{
		Title:  "Cost",
		XLabel: "Execution time (seconds)",
		YLabel: "Cost (USD)",
	}
	buildSeries(&p, src, f, func(pt dataset.Point) XY {
		return XY{X: pt.ExecTimeSec, Y: pt.CostUSD}
	})
	for i := range p.Series {
		p.Series[i].Scatter = true
		sort.Slice(p.Series[i].Points, func(a, b int) bool { return p.Series[i].Points[a].X < p.Series[i].Points[b].X })
	}
	return p
}

// Speedup builds the paper's Figure 4: s(n) = T(base)/T(n) per series,
// where base is the smallest measured node count (1 in the paper's sweeps).
func Speedup(src Source, f dataset.Filter) Plot {
	p := Plot{
		Title:  "Speedup",
		XLabel: "Number of VMs",
		YLabel: "Speedup",
	}
	buildRelativeSeries(&p, src, f, func(base dataset.Point, pt dataset.Point) XY {
		return XY{X: float64(pt.NNodes), Y: base.ExecTimeSec / pt.ExecTimeSec * float64(base.NNodes)}
	})
	return p
}

// Efficiency builds the paper's Figure 5: e(n) = speedup(n)/n. Values above
// 1 are super-linear.
func Efficiency(src Source, f dataset.Filter) Plot {
	p := Plot{
		Title:  "Efficiency",
		XLabel: "Number of VMs",
		YLabel: "Efficiency",
	}
	buildRelativeSeries(&p, src, f, func(base dataset.Point, pt dataset.Point) XY {
		speedup := base.ExecTimeSec / pt.ExecTimeSec * float64(base.NNodes)
		return XY{X: float64(pt.NNodes), Y: speedup / float64(pt.NNodes)}
	})
	return p
}

// ParetoScatter builds the paper's Figure 6: every scenario as a scatter
// point plus the Pareto front as a line.
func ParetoScatter(src Source, f dataset.Filter) Plot {
	pts := src.Select(f)
	p := Plot{
		Title:  "Advice based on pareto front",
		XLabel: "Cost (USD)",
		YLabel: "Execution time (seconds)",
	}
	var scatter Series
	scatter.Name = "Scenarios"
	scatter.Scatter = true
	for _, pt := range pts {
		scatter.Points = append(scatter.Points, XY{X: pt.CostUSD, Y: pt.ExecTimeSec})
	}
	var frontLine Series
	frontLine.Name = "Pareto Front"
	for _, pt := range pareto.Front(pts) {
		frontLine.Points = append(frontLine.Points, XY{X: pt.CostUSD, Y: pt.ExecTimeSec})
	}
	sort.Slice(frontLine.Points, func(i, j int) bool { return frontLine.Points[i].X < frontLine.Points[j].X })
	p.Series = []Series{scatter, frontLine}
	p.Subtitle = subtitleFor(pts)
	return p
}

// buildSeries groups the dataset into per-(SKU, input) series with a direct
// point mapping. One GroupSeries call feeds both the series and the
// subtitle — the groups partition exactly the filtered points, so no second
// Select is needed.
func buildSeries(p *Plot, src Source, f dataset.Filter, toXY func(dataset.Point) XY) {
	groups := src.GroupSeries(f)
	keys := make([]dataset.SeriesKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, k := range keys {
		s := Series{Name: k.SKUAlias}
		if len(keys) > 0 && multipleInputs(keys) {
			s.Name = k.String()
		}
		for _, pt := range groups[k] {
			s.Points = append(s.Points, toXY(pt))
		}
		p.Series = append(p.Series, s)
	}
	p.Subtitle = subtitleFromGroups(groups)
}

// buildRelativeSeries maps each point relative to its series' smallest-n
// baseline; series without at least two points are omitted. The subtitle
// still reflects every filtered point, including those in omitted series.
func buildRelativeSeries(p *Plot, src Source, f dataset.Filter, toXY func(base, pt dataset.Point) XY) {
	groups := src.GroupSeries(f)
	keys := make([]dataset.SeriesKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, k := range keys {
		pts := groups[k]
		if len(pts) < 2 {
			continue
		}
		base := pts[0] // sorted by node count; the paper uses single node
		s := Series{Name: k.SKUAlias}
		if multipleInputs(keys) {
			s.Name = k.String()
		}
		for _, pt := range pts {
			s.Points = append(s.Points, toXY(base, pt))
		}
		p.Series = append(p.Series, s)
	}
	p.Subtitle = subtitleFromGroups(groups)
}

func multipleInputs(keys []dataset.SeriesKey) bool {
	seen := map[string]bool{}
	for _, k := range keys {
		seen[k.InputDesc] = true
	}
	return len(seen) > 1
}

// subtitleFor reproduces the paper's plot subtitles ("atoms=860M"): the
// input description when all points share one.
func subtitleFor(pts []dataset.Point) string {
	if len(pts) == 0 {
		return ""
	}
	desc := pts[0].InputDesc
	for _, p := range pts {
		if p.InputDesc != desc {
			return ""
		}
	}
	return desc
}

// subtitleFromGroups derives the same subtitle from already-grouped points:
// the group keys carry every distinct input description.
func subtitleFromGroups(groups map[dataset.SeriesKey][]dataset.Point) string {
	desc, first := "", true
	for k, pts := range groups {
		if len(pts) == 0 {
			continue
		}
		if first {
			desc, first = k.InputDesc, false
			continue
		}
		if k.InputDesc != desc {
			return ""
		}
	}
	return desc
}

// Bounds returns the data extent of the plot, padded for rendering. Empty
// plots get a unit box.
func (p Plot) Bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range p.Series {
		for _, pt := range s.Points {
			xmin = math.Min(xmin, pt.X)
			xmax = math.Max(xmax, pt.X)
			ymin = math.Min(ymin, pt.Y)
			ymax = math.Max(ymax, pt.Y)
		}
	}
	if math.IsInf(xmin, 1) {
		return 0, 1, 0, 1
	}
	if xmin == xmax {
		xmax = xmin + 1
	}
	if ymin == ymax {
		ymax = ymin + 1
	}
	// Anchor Y at zero like the paper's plots, and pad the top.
	if ymin > 0 {
		ymin = 0
	}
	ymax += (ymax - ymin) * 0.05
	return xmin, xmax, ymin, ymax
}

// Empty reports whether the plot has no data points.
func (p Plot) Empty() bool {
	for _, s := range p.Series {
		if len(s.Points) > 0 {
			return false
		}
	}
	return true
}

// String summarizes the plot for logs.
func (p Plot) String() string {
	n := 0
	for _, s := range p.Series {
		n += len(s.Points)
	}
	return fmt.Sprintf("%s (%d series, %d points)", p.Title, len(p.Series), n)
}

package cli

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hpcadvisor/internal/config"
	"hpcadvisor/internal/core"
)

const testConfig = `subscription: mysubscription
skus:
  - Standard_HB120rs_v3
rgprefix: clitest
nnodes: [1, 2]
appname: lammps
region: southcentralus
ppr: 100
appinputs:
  BOXFACTOR: "10"
`

type run struct {
	out, err bytes.Buffer
	code     int
}

func exec(t *testing.T, stateDir string, args ...string) *run {
	t.Helper()
	r := &run{}
	full := append([]string{"-state", stateDir}, args...)
	r.code = Run(full, &r.out, &r.err)
	return r
}

func writeConfig(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "config.yaml")
	if err := os.WriteFile(path, []byte(testConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTableIICLICommands(t *testing.T) {
	// The full command set of the paper's Table II, exercised in sequence
	// across separate invocations (state persists in the state dir).
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	cfg := writeConfig(t, dir)

	// deploy create
	r := exec(t, state, "deploy", "create", "-c", cfg)
	if r.code != 0 {
		t.Fatalf("deploy create failed: %s", r.err.String())
	}
	if !strings.Contains(r.out.String(), "deployment created: clitest-") {
		t.Errorf("create output = %q", r.out.String())
	}

	// deploy list
	r = exec(t, state, "deploy", "list", "-c", cfg)
	if r.code != 0 || !strings.Contains(r.out.String(), "clitest-") {
		t.Errorf("deploy list = %q (%s)", r.out.String(), r.err.String())
	}

	// collect
	r = exec(t, state, "collect", "-c", cfg)
	if r.code != 0 {
		t.Fatalf("collect failed: %s", r.err.String())
	}
	if !strings.Contains(r.out.String(), "2 completed") {
		t.Errorf("collect output = %q", r.out.String())
	}
	if !strings.Contains(r.out.String(), "collection cost: $") {
		t.Errorf("collect should report cost: %q", r.out.String())
	}

	// plot (SVG files)
	plotDir := filepath.Join(dir, "plots")
	r = exec(t, state, "plot", "-o", plotDir)
	if r.code != 0 {
		t.Fatalf("plot failed: %s", r.err.String())
	}
	files, _ := filepath.Glob(filepath.Join(plotDir, "*.svg"))
	if len(files) != 5 {
		t.Errorf("plot files = %v", files)
	}

	// plot -ascii
	r = exec(t, state, "plot", "-ascii")
	if r.code != 0 || !strings.Contains(r.out.String(), "Exectime") {
		t.Errorf("ascii plot = %q", r.out.String())
	}

	// advice
	r = exec(t, state, "advice", "-app", "lammps")
	if r.code != 0 {
		t.Fatalf("advice failed: %s", r.err.String())
	}
	for _, want := range []string{"Exectime(s)", "Cost($)", "Nodes", "SKU", "hb120rs_v3"} {
		if !strings.Contains(r.out.String(), want) {
			t.Errorf("advice output missing %q:\n%s", want, r.out.String())
		}
	}

	// advice sorted by cost
	r = exec(t, state, "advice", "-sort", "cost")
	if r.code != 0 {
		t.Fatalf("advice -sort cost failed: %s", r.err.String())
	}

	// deploy shutdown
	name := deployedName(t, state)
	r = exec(t, state, "deploy", "shutdown", "-n", name, "-c", cfg)
	if r.code != 0 {
		t.Fatalf("shutdown failed: %s", r.err.String())
	}
	r = exec(t, state, "deploy", "list", "-c", cfg)
	if !strings.Contains(r.out.String(), "no deployments") {
		t.Errorf("after shutdown list = %q", r.out.String())
	}
}

func deployedName(t *testing.T, stateDir string) string {
	t.Helper()
	c := &CLI{StateDir: stateDir}
	st, err := c.loadState()
	if err != nil || len(st.Deployments) == 0 {
		t.Fatalf("state unreadable: %v", err)
	}
	return st.Deployments[0].Name
}

func TestCollectResumeAcrossInvocations(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	cfg := writeConfig(t, dir)
	exec(t, state, "deploy", "create", "-c", cfg)
	exec(t, state, "collect", "-c", cfg)
	// Second collect: the persisted task list shows nothing pending.
	r := exec(t, state, "collect", "-c", cfg)
	if r.code != 0 {
		t.Fatalf("second collect failed: %s", r.err.String())
	}
	if !strings.Contains(r.out.String(), "0 completed") {
		t.Errorf("resume output = %q", r.out.String())
	}
}

func TestCollectWithSamplerFlag(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	cfg := writeConfig(t, dir)
	exec(t, state, "deploy", "create", "-c", cfg)
	r := exec(t, state, "collect", "-c", cfg, "-sampler", "discard")
	if r.code != 0 {
		t.Fatalf("sampler collect failed: %s", r.err.String())
	}
	r = exec(t, state, "collect", "-c", cfg, "-sampler", "bogus")
	if r.code == 0 {
		t.Error("bogus sampler should fail")
	}
}

func TestUsageAndErrors(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	cfgPath := writeConfig(t, dir)

	// No args prints usage.
	r := exec(t, state)
	if r.code != 0 || !strings.Contains(r.out.String(), "deploy create") {
		t.Errorf("usage output = %q", r.out.String())
	}
	// help command too.
	r = exec(t, state, "help")
	if r.code != 0 || !strings.Contains(r.out.String(), "Table II") {
		t.Errorf("help = %q", r.out.String())
	}
	// Unknown command.
	if r = exec(t, state, "frobnicate"); r.code == 0 {
		t.Error("unknown command should fail")
	}
	// Missing config.
	if r = exec(t, state, "deploy", "create"); r.code == 0 {
		t.Error("create without config should fail")
	}
	// deploy without subcommand.
	if r = exec(t, state, "deploy"); r.code == 0 {
		t.Error("bare deploy should fail")
	}
	// shutdown without name.
	if r = exec(t, state, "deploy", "shutdown", "-c", cfgPath); r.code == 0 {
		t.Error("shutdown without -n should fail")
	}
	// collect without deployment.
	if r = exec(t, state, "collect", "-c", cfgPath); r.code == 0 {
		t.Error("collect without deployment should fail")
	}
	// plot with empty dataset.
	if r = exec(t, state, "plot"); r.code == 0 {
		t.Error("plot without data should fail")
	}
	// advice with empty dataset.
	if r = exec(t, state, "advice"); r.code == 0 {
		t.Error("advice without data should fail")
	}
	// advice with a bad sort needs data first, so check flag error directly.
	exec(t, state, "deploy", "create", "-c", cfgPath)
	exec(t, state, "collect", "-c", cfgPath)
	if r = exec(t, state, "advice", "-sort", "speed"); r.code == 0 {
		t.Error("bad sort should fail")
	}
}

func TestAppsCommand(t *testing.T) {
	r := exec(t, t.TempDir(), "apps")
	if r.code != 0 {
		t.Fatalf("apps failed: %s", r.err.String())
	}
	for _, want := range []string{"lammps", "openfoam", "wrf", "gromacs", "namd", "matmul"} {
		if !strings.Contains(r.out.String(), want) {
			t.Errorf("apps output missing %q", want)
		}
	}
}

func TestGUICommandWiring(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	cfgPath := writeConfig(t, dir)
	var out, errb bytes.Buffer
	c := &CLI{Stdout: &out, Stderr: &errb, StateDir: state}
	served := ""
	c.ServeGUI = func(addr string, adv *core.Advisor, cfg *config.Config) error {
		served = addr
		if adv == nil || cfg == nil {
			t.Error("gui received nil advisor or config")
		}
		return nil
	}
	if err := c.run([]string{"gui", "-addr", ":9999", "-c", cfgPath}); err != nil {
		t.Fatalf("gui: %v", err)
	}
	if served != ":9999" {
		t.Errorf("served addr = %q", served)
	}
}

func TestCorruptStateSurfacesError(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	if err := os.MkdirAll(state, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(state, "deployments.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfgPath := writeConfig(t, dir)
	r := exec(t, state, "deploy", "create", "-c", cfgPath)
	if r.code == 0 {
		t.Error("corrupt state should fail")
	}
	if !strings.Contains(r.err.String(), "corrupt state") {
		t.Errorf("error = %q", r.err.String())
	}
}

func TestAdviceRecipesFlag(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	cfg := writeConfig(t, dir)
	exec(t, state, "deploy", "create", "-c", cfg)
	exec(t, state, "collect", "-c", cfg)
	r := exec(t, state, "advice", "-recipes")
	if r.code != 0 {
		t.Fatalf("advice -recipes failed: %s", r.err.String())
	}
	for _, want := range []string{"#SBATCH --nodes=", "vm_type: Standard_HB120rs_v3", "srun --mpi=pmix"} {
		if !strings.Contains(r.out.String(), want) {
			t.Errorf("recipes output missing %q", want)
		}
	}
	// Bad pricing region fails cleanly.
	if r = exec(t, state, "advice", "-recipes", "-region", "atlantis"); r.code == 0 {
		t.Error("bad region should fail")
	}
}

func TestCollectSpotFlag(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	cfg := writeConfig(t, dir)
	exec(t, state, "deploy", "create", "-c", cfg)
	r := exec(t, state, "collect", "-c", cfg, "-spot", "-attempts", "10")
	if r.code != 0 {
		t.Fatalf("spot collect failed: %s", r.err.String())
	}
	if !strings.Contains(r.out.String(), "2 completed") {
		t.Errorf("spot collect output = %q", r.out.String())
	}
}

func TestCollectBudgetFlag(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	cfg := writeConfig(t, dir)
	exec(t, state, "deploy", "create", "-c", cfg)
	r := exec(t, state, "collect", "-c", cfg, "-budget", "2.0")
	if r.code != 0 {
		t.Fatalf("budget collect failed: %s", r.err.String())
	}
	if !strings.Contains(r.out.String(), "adaptive collection") {
		t.Errorf("output = %q", r.out.String())
	}
	// Advice exists from whatever was collected within budget.
	r = exec(t, state, "advice")
	if r.code != 0 {
		t.Fatalf("advice after budget collect: %s", r.err.String())
	}
}

func TestCollectParallelPoolsFlag(t *testing.T) {
	// The same 3-SKU sweep collected sequentially and with -parallel-pools
	// must leave byte-identical dataset files behind, and the parallel run
	// reports its concurrent cloud time.
	multiSKU := strings.Replace(testConfig,
		"skus:\n  - Standard_HB120rs_v3",
		"skus:\n  - Standard_HB120rs_v3\n  - Standard_HB120rs_v2\n  - Standard_HC44rs", 1)

	collect := func(extra ...string) (string, []byte) {
		dir := t.TempDir()
		state := filepath.Join(dir, ".hpcadvisor")
		cfgPath := filepath.Join(dir, "config.yaml")
		if err := os.WriteFile(cfgPath, []byte(multiSKU), 0o644); err != nil {
			t.Fatal(err)
		}
		exec(t, state, "deploy", "create", "-c", cfgPath)
		r := exec(t, state, append([]string{"collect", "-c", cfgPath}, extra...)...)
		if r.code != 0 {
			t.Fatalf("collect %v failed: %s", extra, r.err.String())
		}
		data, err := os.ReadFile(filepath.Join(state, "dataset.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return r.out.String(), data
	}

	_, seqData := collect()
	out, parData := collect("-parallel-pools", "3")
	if !bytes.Equal(seqData, parData) {
		t.Error("-parallel-pools 3 dataset differs from sequential collect")
	}
	if !strings.Contains(out, "parallel lanes: 3 pools x 3 workers") {
		t.Errorf("parallel collect output missing lane summary: %q", out)
	}
	if !strings.Contains(out, "6 completed") {
		t.Errorf("parallel collect output = %q", out)
	}
}

const predictConfig = `subscription: mysubscription
skus:
  - Standard_HB120rs_v3
  - Standard_HC44rs
rgprefix: clitest
nnodes: [1, 2, 4, 8]
appname: lammps
region: southcentralus
ppr: 100
appinputs:
  BOXFACTOR: "12"
`

func collectPredictFixture(t *testing.T) (stateDir string) {
	t.Helper()
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	path := filepath.Join(dir, "config.yaml")
	if err := os.WriteFile(path, []byte(predictConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	if r := exec(t, state, "deploy", "create", "-c", path); r.code != 0 {
		t.Fatalf("deploy create failed: %s", r.err.String())
	}
	if r := exec(t, state, "collect", "-c", path); r.code != 0 {
		t.Fatalf("collect failed: %s", r.err.String())
	}
	return state
}

func TestPredictCommand(t *testing.T) {
	state := collectPredictFixture(t)
	r := exec(t, state, "predict", "-app", "lammps", "-grid", "1,2,4,8,16,32")
	if r.code != 0 {
		t.Fatalf("predict failed: %s", r.err.String())
	}
	out := r.out.String()
	for _, want := range []string{"Source", "measured", "predicted/", "backtest (leave-one-out", "MAPE"} {
		if !strings.Contains(out, want) {
			t.Errorf("predict output missing %q:\n%s", want, out)
		}
	}
	// Predicted rows surface untested node counts.
	if !strings.Contains(out, "32") {
		t.Errorf("predict output lacks the extrapolated 32-node scenario:\n%s", out)
	}

	// Bad grid errors cleanly.
	if r := exec(t, state, "predict", "-grid", "1,zero"); r.code == 0 {
		t.Error("invalid grid should fail")
	}
	// Bad sort errors cleanly.
	if r := exec(t, state, "predict", "-sort", "vibes"); r.code == 0 {
		t.Error("invalid sort should fail")
	}
}

func TestAdvicePredictFlag(t *testing.T) {
	state := collectPredictFixture(t)
	plain := exec(t, state, "advice", "-app", "lammps")
	if plain.code != 0 {
		t.Fatalf("advice failed: %s", plain.err.String())
	}
	if strings.Contains(plain.out.String(), "predicted/") {
		t.Error("plain advice must not contain predicted rows")
	}
	r := exec(t, state, "advice", "-app", "lammps", "-predict", "-grid", "1,2,4,8,16")
	if r.code != 0 {
		t.Fatalf("advice -predict failed: %s", r.err.String())
	}
	if !strings.Contains(r.out.String(), "predicted/") || !strings.Contains(r.out.String(), "measured") {
		t.Errorf("advice -predict output unmarked:\n%s", r.out.String())
	}
}

func TestPlotPredictFlag(t *testing.T) {
	state := collectPredictFixture(t)
	r := exec(t, state, "plot", "-predict", "-grid", "1,2,4,8,16,32", "-ascii")
	if r.code != 0 {
		t.Fatalf("plot -predict -ascii failed: %s", r.err.String())
	}
	if !strings.Contains(r.out.String(), "(predicted)") {
		t.Errorf("ascii plot lacks predicted series:\n%s", r.out.String())
	}
	dir := t.TempDir()
	r = exec(t, state, "plot", "-predict", "-o", dir)
	if r.code != 0 {
		t.Fatalf("plot -predict failed: %s", r.err.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "exectime_vs_nodes.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "stroke-dasharray") {
		t.Error("predicted SVG lacks dashed overlay")
	}
}

func TestAdvicePredictRecipesCoverDisplayedMeasuredRows(t *testing.T) {
	state := collectPredictFixture(t)
	r := exec(t, state, "advice", "-app", "lammps", "-predict", "-grid", "1,2,4,8,16,32", "-recipes")
	if r.code != 0 {
		t.Fatalf("advice -predict -recipes failed: %s", r.err.String())
	}
	out := r.out.String()
	if !strings.Contains(out, "predicted/") {
		t.Fatalf("merged table missing predicted rows:\n%s", out)
	}
	// Recipes exist for measured rows and never name a predicted node
	// count: 16 and 32 nodes were never run.
	if !strings.Contains(out, "#SBATCH") {
		t.Errorf("no recipes emitted:\n%s", out)
	}
	for _, banned := range []string{"--nodes=16", "--nodes=32"} {
		if strings.Contains(out, banned) {
			t.Errorf("recipe emitted for predicted scenario (%s):\n%s", banned, out)
		}
	}
	if !strings.Contains(r.err.String(), "measured rows only") {
		t.Errorf("missing predicted-rows note on stderr: %q", r.err.String())
	}
}

// TestCorruptTaskListSurfacesError: a corrupt task list must error out
// instead of being silently treated as missing (which would re-run every
// scenario and double the dataset).
func TestCorruptTaskListSurfacesError(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	cfg := writeConfig(t, dir)
	exec(t, state, "deploy", "create", "-c", cfg)
	exec(t, state, "collect", "-c", cfg)

	name := deployedName(t, state)
	taskPath := filepath.Join(state, "tasks-"+name+".json")
	if err := os.WriteFile(taskPath, []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := exec(t, state, "collect", "-c", cfg)
	if r.code == 0 {
		t.Fatal("collect with a corrupt task list should fail")
	}
	if !strings.Contains(r.err.String(), "task list") {
		t.Errorf("error should name the task list, got %q", r.err.String())
	}
	// A genuinely missing list is still fine (fresh start).
	if err := os.Remove(taskPath); err != nil {
		t.Fatal(err)
	}
	if r = exec(t, state, "collect", "-c", cfg); r.code != 0 {
		t.Errorf("collect with a missing task list should regenerate it: %s", r.err.String())
	}
}

// TestDatasetSubcommands drives the storage engine end-to-end through the
// CLI: collect into jsonl, info, convert to a segment store, serve advice
// from it, compact, and verify the advice is unchanged.
func TestDatasetSubcommands(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	cfg := writeConfig(t, dir)
	exec(t, state, "deploy", "create", "-c", cfg)
	if r := exec(t, state, "collect", "-c", cfg); r.code != 0 {
		t.Fatalf("collect: %s", r.err.String())
	}

	// info on the default jsonl store
	r := exec(t, state, "dataset", "info")
	if r.code != 0 {
		t.Fatalf("dataset info: %s", r.err.String())
	}
	if !strings.Contains(r.out.String(), "format:          jsonl") ||
		!strings.Contains(r.out.String(), "points:          2") {
		t.Errorf("info output = %q", r.out.String())
	}

	// jsonl has no compaction
	if r = exec(t, state, "dataset", "compact"); r.code == 0 {
		t.Error("compact on jsonl should fail with guidance")
	}

	// convert to the default segment location
	seg := filepath.Join(state, "dataset.seg")
	r = exec(t, state, "dataset", "convert", "-to", seg)
	if r.code != 0 {
		t.Fatalf("convert: %s", r.err.String())
	}
	if !strings.Contains(r.out.String(), "converted 2 points") {
		t.Errorf("convert output = %q", r.out.String())
	}

	// dataset.seg now exists, so it becomes the default store: advice must
	// serve identically from it.
	adviceJSONL := exec(t, state, "advice", "-store", filepath.Join(state, "dataset.jsonl"))
	adviceSeg := exec(t, state, "advice")
	if adviceSeg.code != 0 {
		t.Fatalf("advice from segment store: %s", adviceSeg.err.String())
	}
	if adviceJSONL.out.String() != adviceSeg.out.String() {
		t.Errorf("advice differs between stores:\njsonl: %s\nseg: %s",
			adviceJSONL.out.String(), adviceSeg.out.String())
	}

	// info on the segment store
	r = exec(t, state, "dataset", "info")
	if r.code != 0 || !strings.Contains(r.out.String(), "format:          segment") {
		t.Fatalf("segment info = %q (%s)", r.out.String(), r.err.String())
	}

	// compact, then advice again: unchanged
	if r = exec(t, state, "dataset", "compact"); r.code != 0 {
		t.Fatalf("compact: %s", r.err.String())
	}
	after := exec(t, state, "advice")
	if after.code != 0 || after.out.String() != adviceSeg.out.String() {
		t.Errorf("advice changed across compaction:\nbefore: %s\nafter: %s",
			adviceSeg.out.String(), after.out.String())
	}

	// info on the compacted store reports the v2 columnar layout and
	// whether this machine serves it via mmap.
	r = exec(t, state, "dataset", "info")
	if r.code != 0 {
		t.Fatalf("post-compact info: %s", r.err.String())
	}
	for _, sub := range []string{"snapshot format: v2", "symbol table", "columns",
		"failed bitmap", "row data", "hot fronts", "mmap served"} {
		if !strings.Contains(r.out.String(), sub) {
			t.Errorf("post-compact info missing %q:\n%s", sub, r.out.String())
		}
	}

	// unknown subcommand and missing -to
	if r = exec(t, state, "dataset", "bogus"); r.code == 0 {
		t.Error("unknown dataset subcommand should fail")
	}
	if r = exec(t, state, "dataset", "convert"); r.code == 0 {
		t.Error("convert without -to should fail")
	}
}

// TestCollectIntoSegmentStore streams a collection straight into a segment
// store via -store and reads it back across invocations.
func TestCollectIntoSegmentStore(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	cfg := writeConfig(t, dir)
	seg := filepath.Join(state, "dataset.seg")
	exec(t, state, "deploy", "create", "-c", cfg)
	if r := exec(t, state, "collect", "-c", cfg, "-store", seg); r.code != 0 {
		t.Fatalf("collect -store: %s", r.err.String())
	}
	r := exec(t, state, "dataset", "info", "-store", seg)
	if r.code != 0 || !strings.Contains(r.out.String(), "points:          2") {
		t.Fatalf("segment info after collect = %q (%s)", r.out.String(), r.err.String())
	}
	r = exec(t, state, "advice", "-store", seg)
	if r.code != 0 || !strings.Contains(r.out.String(), "hb120rs_v3") {
		t.Errorf("advice from segment store = %q (%s)", r.out.String(), r.err.String())
	}
}

// TestServeCommandWiring checks the serve command builds the combined
// API+GUI handler over the persisted state: the JSON API answers with the
// collected dataset, ETag revalidation works, and the GUI pages are on the
// same mux.
func TestServeCommandWiring(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	cfgPath := writeConfig(t, dir)
	exec(t, state, "deploy", "create", "-c", cfgPath)
	if r := exec(t, state, "collect", "-c", cfgPath); r.code != 0 {
		t.Fatalf("collect: %s", r.err.String())
	}

	var out, errb bytes.Buffer
	c := &CLI{Stdout: &out, Stderr: &errb, StateDir: state}
	served := ""
	c.ServeHTTP = func(addr string, h http.Handler) error {
		served = addr
		ts := httptest.NewServer(h)
		defer ts.Close()

		resp, err := ts.Client().Get(ts.URL + "/api/v1/advice")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), "hb120rs_v3") {
			t.Fatalf("served advice = %d: %s", resp.StatusCode, body)
		}
		tag := resp.Header.Get("ETag")
		if tag == "" {
			t.Fatal("advice response missing ETag")
		}

		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/advice", nil)
		req.Header.Set("If-None-Match", tag)
		resp, err = ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		revalidated, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified || len(revalidated) != 0 {
			t.Fatalf("revalidation = %d (%d bytes), want empty 304", resp.StatusCode, len(revalidated))
		}

		// GUI rides the same mux.
		resp, err = ts.Client().Get(ts.URL + "/advice")
		if err != nil {
			t.Fatal(err)
		}
		page, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(page), "Pareto front") {
			t.Fatalf("served GUI advice = %d", resp.StatusCode)
		}
		return nil
	}
	if err := c.run([]string{"serve", "-addr", ":9998", "-c", cfgPath}); err != nil {
		t.Fatalf("serve: %v", err)
	}
	if served != ":9998" {
		t.Errorf("served addr = %q", served)
	}
}

// TestAdviceNodeBoundFlags exercises the shared parse path from the CLI:
// node-range filters narrow the front, and malformed bounds surface the
// service layer's bad-request error.
func TestAdviceNodeBoundFlags(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	cfgPath := writeConfig(t, dir)
	exec(t, state, "deploy", "create", "-c", cfgPath)
	if r := exec(t, state, "collect", "-c", cfgPath); r.code != 0 {
		t.Fatalf("collect: %s", r.err.String())
	}
	if r := exec(t, state, "advice", "-minnodes", "1", "-maxnodes", "2"); r.code != 0 {
		t.Fatalf("advice with bounds: %s", r.err.String())
	}
	r := exec(t, state, "advice", "-minnodes", "banana")
	if r.code == 0 || !strings.Contains(r.err.String(), "invalid minnodes") {
		t.Fatalf("bad minnodes accepted: %q", r.err.String())
	}
	r = exec(t, state, "advice", "-sort", "sideways")
	if r.code == 0 || !strings.Contains(r.err.String(), "unknown sort") {
		t.Fatalf("bad sort accepted: %q", r.err.String())
	}
}

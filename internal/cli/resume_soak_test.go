package cli

import (
	"os"
	osexec "os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hpcadvisor/internal/collector"
)

// The kill-and-resume soak: a real child process runs `collect`, the parent
// kills it mid-sweep, and `collect -resume` in a fresh process must
// converge on a dataset and task list byte-identical to an uninterrupted
// run. A larger sweep than the smoke config keeps the kill window wide
// (every journal record is fsynced).
const soakConfig = `subscription: mysubscription
skus:
  - Standard_HB120rs_v3
  - Standard_HB120rs_v2
  - Standard_HC44rs
rgprefix: clitest
nnodes: [1, 2, 3, 4, 6, 8]
appname: lammps
region: southcentralus
ppr: 100
appinputs:
  BOXFACTOR: "10"
`

// TestHelperCollectProcess is not a test: it is the child process body for
// the soak tests, re-exec'ed from the test binary with the state dir and
// config passed through the environment.
func TestHelperCollectProcess(t *testing.T) {
	if os.Getenv("HPCADVISOR_SOAK_HELPER") != "1" {
		t.Skip("helper process for the kill-and-resume soak")
	}
	code := Run([]string{
		"-state", os.Getenv("HPCADVISOR_SOAK_STATE"),
		"collect", "-c", os.Getenv("HPCADVISOR_SOAK_CONFIG"),
	}, os.Stdout, os.Stderr)
	os.Exit(code)
}

func writeSoakConfig(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "config.yaml")
	if err := os.WriteFile(path, []byte(soakConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// soakReference runs deploy create + collect in-process and returns the
// bytes of every artifact the resumed run must reproduce exactly.
func soakReference(t *testing.T) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	cfg := writeSoakConfig(t, dir)
	if r := exec(t, state, "deploy", "create", "-c", cfg); r.code != 0 {
		t.Fatalf("reference deploy create: %s", r.err.String())
	}
	if r := exec(t, state, "collect", "-c", cfg); r.code != 0 {
		t.Fatalf("reference collect: %s", r.err.String())
	}
	return soakArtifacts(t, state)
}

// soakArtifacts reads the dataset and task-list files for byte comparison.
func soakArtifacts(t *testing.T, state string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range []string{"dataset.jsonl", "tasks-clitest-0001.json"} {
		data, err := os.ReadFile(filepath.Join(state, name))
		if err != nil {
			t.Fatalf("artifact %s: %v", name, err)
		}
		out[name] = data
	}
	return out
}

// interruptChildSweep starts the helper child on a fresh state dir, waits
// for the journal to accumulate a few durable outcomes, and delivers sig.
// It reports the state dir, the config path, and whether the child was
// caught mid-sweep (false: the child finished first — caller retries).
func interruptChildSweep(t *testing.T, sig syscall.Signal) (string, string, bool) {
	t.Helper()
	dir := t.TempDir()
	state := filepath.Join(dir, ".hpcadvisor")
	cfg := writeSoakConfig(t, dir)
	if r := exec(t, state, "deploy", "create", "-c", cfg); r.code != 0 {
		t.Fatalf("deploy create: %s", r.err.String())
	}

	cmd := osexec.Command(os.Args[0], "-test.run=^TestHelperCollectProcess$")
	cmd.Env = append(os.Environ(),
		"HPCADVISOR_SOAK_HELPER=1",
		"HPCADVISOR_SOAK_STATE="+state,
		"HPCADVISOR_SOAK_CONFIG="+cfg,
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	// Poll the journal (safe concurrently with the writer: the frame
	// reader stops at the in-flight tail) until a mid-sweep state shows.
	jp := filepath.Join(state, "journal-clitest-0001.jnl")
	deadline := time.After(20 * time.Second)
	caught := false
	for !caught {
		select {
		case <-done:
			// Finished before we fired: no mid-sweep window this round.
			return state, cfg, false
		case <-deadline:
			_ = cmd.Process.Kill()
			<-done
			t.Fatal("child never journaled an outcome within 20s")
		case <-time.After(500 * time.Microsecond):
			replay, _, err := collector.ReadJournal(jp)
			if err == nil && !replay.Sealed && len(replay.Outcomes) >= 2 {
				caught = true
			}
		}
	}
	_ = cmd.Process.Signal(sig)
	<-done

	// The signal may still have raced a photo-finish completion.
	replay, _, err := collector.ReadJournal(jp)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Sealed && replay.SealReason == collector.SealComplete {
		return state, cfg, false
	}
	return state, cfg, true
}

// resumeAndCompare finishes the interrupted sweep with `collect -resume`
// in-process and asserts the artifacts equal the uninterrupted reference.
func resumeAndCompare(t *testing.T, state, cfg string, ref map[string][]byte) {
	t.Helper()
	r := exec(t, state, "collect", "-resume", "-c", cfg)
	if r.code != 0 {
		t.Fatalf("collect -resume: %s", r.err.String())
	}
	if !strings.Contains(r.out.String(), "resuming sweep") {
		t.Errorf("resume output = %q, want a resuming banner", r.out.String())
	}
	got := soakArtifacts(t, state)
	for name, want := range ref {
		if string(got[name]) != string(want) {
			t.Errorf("resumed %s differs from uninterrupted run:\ngot:\n%s\nwant:\n%s",
				name, got[name], want)
		}
	}
	replay, _, err := collector.ReadJournal(filepath.Join(state, "journal-clitest-0001.jnl"))
	if err != nil {
		t.Fatal(err)
	}
	if !replay.Sealed || replay.SealReason != collector.SealComplete {
		t.Errorf("journal after resume: sealed=%v reason=%q, want sealed complete",
			replay.Sealed, replay.SealReason)
	}
}

// TestKillAndResumeSoak: SIGKILL mid-sweep — no teardown, no seal, a
// possibly torn journal tail — then resume to the byte-identical dataset.
func TestKillAndResumeSoak(t *testing.T) {
	ref := soakReference(t)
	for attempt := 1; ; attempt++ {
		state, cfg, caught := interruptChildSweep(t, syscall.SIGKILL)
		if caught {
			replay, _, err := collector.ReadJournal(filepath.Join(state, "journal-clitest-0001.jnl"))
			if err != nil {
				t.Fatal(err)
			}
			if replay.Sealed {
				t.Error("SIGKILL left a sealed journal; kill was not abrupt")
			}
			if !replay.Resumable() {
				t.Fatal("killed sweep's journal is not resumable")
			}
			resumeAndCompare(t, state, cfg, ref)
			return
		}
		if attempt >= 5 {
			t.Fatalf("child finished before the kill in %d attempts; enlarge the soak sweep", attempt)
		}
	}
}

// TestSigtermSealsAndResumes: graceful interruption — the CLI's signal
// handler stops at the task boundary, seals the journal as interrupted,
// and exits zero; the resume converges identically.
func TestSigtermSealsAndResumes(t *testing.T) {
	ref := soakReference(t)
	for attempt := 1; ; attempt++ {
		state, cfg, caught := interruptChildSweep(t, syscall.SIGTERM)
		if caught {
			replay, _, err := collector.ReadJournal(filepath.Join(state, "journal-clitest-0001.jnl"))
			if err != nil {
				t.Fatal(err)
			}
			if !replay.Sealed || replay.SealReason != collector.SealInterrupted {
				t.Fatalf("SIGTERM journal: sealed=%v reason=%q, want sealed interrupted",
					replay.Sealed, replay.SealReason)
			}
			resumeAndCompare(t, state, cfg, ref)
			return
		}
		if attempt >= 5 {
			t.Fatalf("child finished before SIGTERM in %d attempts; enlarge the soak sweep", attempt)
		}
	}
}

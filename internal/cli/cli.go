// Package cli implements the HPCAdvisor command-line interface with the
// command set of the paper's Table II:
//
//	deploy create    Creates a cloud deployment
//	deploy list      Lists all previous and current cloud deployments
//	deploy shutdown  Shuts down a given cloud deployment, deleting all its resources
//	collect          Collects data, i.e. runs all scenarios on a given deployment
//	plot             Generates plots using a given data filter
//	advice           Generates advice (i.e. Pareto front) using a given data filter
//	gui              Starts the GUI mode
//
// Because the cloud is simulated in-process, the CLI persists its world
// state between invocations in a state directory (default ".hpcadvisor"):
// the deployment records, the scenario task lists, and the dataset. Each
// invocation rehydrates the simulation from that state.
package cli

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"hpcadvisor/internal/api"
	"hpcadvisor/internal/collector"
	"hpcadvisor/internal/config"
	"hpcadvisor/internal/core"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/deploy"
	"hpcadvisor/internal/fsatomic"
	"hpcadvisor/internal/gui"
	"hpcadvisor/internal/plot"
	"hpcadvisor/internal/replica"
	"hpcadvisor/internal/scenario"
	"hpcadvisor/internal/service"
	"hpcadvisor/internal/storage"
)

// Run executes the CLI and returns a process exit code.
func Run(args []string, stdout, stderr io.Writer) int {
	c := &CLI{Stdout: stdout, Stderr: stderr, StateDir: ".hpcadvisor"}
	if err := c.run(args); err != nil {
		fmt.Fprintf(stderr, "hpcadvisor: %v\n", err)
		return 1
	}
	return 0
}

// CLI carries the IO and state location of one invocation.
type CLI struct {
	Stdout   io.Writer
	Stderr   io.Writer
	StateDir string

	// ServeGUI is invoked by the gui command; tests replace it to avoid
	// binding a real listener.
	ServeGUI func(addr string, adv *core.Advisor, cfg *config.Config) error

	// ServeHTTP is invoked by the serve command with the combined API+GUI
	// handler; tests replace it to avoid binding a real listener.
	ServeHTTP func(addr string, h http.Handler) error
}

const usage = `usage: hpcadvisor [-state dir] <command> [options]

commands (paper Table II):
  deploy create -c config.yaml     create a cloud deployment
  deploy list -c config.yaml       list previous and current deployments
  deploy shutdown -n name -c cfg   shut down a deployment, deleting resources
  collect -c config.yaml [-n name] [-sampler S] [-spot] [-budget USD]
          [-parallel-pools N] [-resume] [-breaker-threshold N]
          [-breaker-cooldown SEC] [-store path]
                                   run the scenarios on a deployment; -sampler
                                   prunes (discard/perffactor/bottleneck/
                                   combined), -spot uses preemptible capacity,
                                   -budget switches to adaptive best-value mode,
                                   -parallel-pools collects up to N VM-type
                                   pools concurrently (for full sweeps: same
                                   dataset, less time; cross-VM-type samplers
                                   prune less across concurrent lanes).
                                   Every sweep writes a durable journal; after
                                   a crash or Ctrl-C, -resume continues it and
                                   re-executes only work that never became
                                   durable (the final dataset is identical to
                                   an uninterrupted run). -breaker-threshold
                                   consecutive capacity failures open a SKU's
                                   circuit breaker (-1 disables) and its
                                   remaining scenarios are skipped until a
                                   -breaker-cooldown (virtual seconds) probe
                                   re-admits it
  plot [-app A] [-sku S] [-input I] [-minnodes N] [-maxnodes N] [-o dir]
       [-ascii] [-predict] [-store path]
                                   generate plots from collected data;
                                   -predict overlays fitted scaling curves
                                   and prediction-interval bands
  advice [-app A] [-sku S] [-minnodes N] [-maxnodes N] [-sort time|cost]
         [-recipes] [-predict] [-grid "1,2,4"] [-store path]
                                   generate advice (Pareto front); -recipes
                                   adds a Slurm script + cluster recipe per
                                   row, -predict merges model-predicted
                                   scenarios (marked in the Source column)
  predict [-app A] [-sort time|cost] [-grid "1,2,4"] [-region R]
                                   predicted advice over untested (SKU, node
                                   count) scenarios plus a leave-one-out
                                   backtest of the scaling models
  gui [-addr :8199] -c config.yaml [-store path]
                                   start the GUI mode
  serve [-addr :8199] -c config.yaml [-store path]
                                   serve the GUI and the versioned JSON API
                                   on one address (/api/v1/advice,
                                   /api/v1/predicted-advice,
                                   /api/v1/plots/NAME.svg, /api/v1/scenarios,
                                   /api/v1/dataset, /healthz, /metrics) with
                                   generation ETags, request timeouts, and
                                   graceful drain on SIGTERM; advice stays
                                   live while a collection streams points
                                   through the attached store
  dataset info [-store path]       describe the dataset store (format, points,
                                   segments, snapshot format + columnar
                                   footprint, mmap serving, recovery)
  dataset compact [-store path]    fold the segment log into a sorted snapshot
                                   segment for fast loads
  dataset convert -to dst [-store src]
                                   copy the dataset into a new store,
                                   converting between jsonl and segment
                                   formats (a .jsonl suffix means jsonl,
                                   anything else a segment directory)
  apps                             list available application models

The dataset lives in a pluggable store (-store): a JSON Lines file or a
durable binary segment log (WAL + CRC frames + compaction). The default is
<state>/dataset.seg if it exists, else <state>/dataset.jsonl.
`

func (c *CLI) run(args []string) error {
	global := flag.NewFlagSet("hpcadvisor", flag.ContinueOnError)
	global.SetOutput(c.Stderr)
	stateDir := global.String("state", c.StateDir, "state directory")
	if err := global.Parse(args); err != nil {
		return err
	}
	c.StateDir = *stateDir
	rest := global.Args()
	if len(rest) == 0 {
		fmt.Fprint(c.Stdout, usage)
		return nil
	}
	switch rest[0] {
	case "deploy":
		return c.cmdDeploy(rest[1:])
	case "collect":
		return c.cmdCollect(rest[1:])
	case "plot":
		return c.cmdPlot(rest[1:])
	case "advice":
		return c.cmdAdvice(rest[1:])
	case "predict":
		return c.cmdPredict(rest[1:])
	case "gui":
		return c.cmdGUI(rest[1:])
	case "serve":
		return c.cmdServe(rest[1:])
	case "dataset":
		return c.cmdDataset(rest[1:])
	case "apps":
		return c.cmdApps()
	case "help", "-h", "--help":
		fmt.Fprint(c.Stdout, usage)
		return nil
	}
	return fmt.Errorf("unknown command %q (run 'hpcadvisor help')", rest[0])
}

//
// State persistence
//

type state struct {
	Deployments []*deploy.Deployment `json:"deployments"`
}

func (c *CLI) statePath(name string) string { return filepath.Join(c.StateDir, name) }

// resolveStore picks the dataset store path: the -store flag when given,
// else an existing segment store in the state directory (so a converted
// dataset stays in use), else the classic JSONL file.
func (c *CLI) resolveStore(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	seg := c.statePath("dataset.seg")
	if fi, err := os.Stat(seg); err == nil && fi.IsDir() {
		return seg
	}
	return c.statePath("dataset.jsonl")
}

func (c *CLI) loadState() (*state, error) {
	var st state
	data, err := os.ReadFile(c.statePath("deployments.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return &st, nil
		}
		return nil, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("corrupt state file: %w", err)
	}
	return &st, nil
}

func (c *CLI) saveState(st *state) error {
	if err := os.MkdirAll(c.StateDir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(c.statePath("deployments.json"), data, 0o644)
}

// advisorFor rehydrates the simulation: recreates recorded deployments,
// opens the dataset store at storePath (attaching its storage backend),
// and loads the task lists. Callers should CloseStore when done.
func (c *CLI) advisorFor(subscription string, st *state, storePath string) (*core.Advisor, error) {
	if subscription == "" && len(st.Deployments) > 0 {
		subscription = st.Deployments[0].SubscriptionID
	}
	if subscription == "" {
		return nil, fmt.Errorf("no subscription known; pass a config with -c")
	}
	adv := core.New(subscription)
	for _, d := range st.Deployments {
		if err := adv.RestoreDeployment(d); err != nil {
			return nil, fmt.Errorf("restoring deployment %s: %w", d.Name, err)
		}
		listPath := c.statePath("tasks-" + d.Name + ".json")
		list, err := scenario.LoadFile(listPath)
		if err != nil {
			// A missing list just means no collection started yet; anything
			// else (e.g. a corrupt file) must surface, not be treated as a
			// fresh start that would silently re-run everything.
			if !errors.Is(err, os.ErrNotExist) {
				return nil, fmt.Errorf("loading task list for %s: %w", d.Name, err)
			}
		} else {
			list.ResetRunning()
			adv.SetTaskList(d.Name, list)
		}
	}
	if err := adv.OpenStore(storePath); err != nil {
		return nil, err
	}
	return adv, nil
}

// persistAfterCollect records the task list and settles the dataset: the
// points themselves already streamed through the attached storage backend
// during collection, so only the task list needs a save and the backend a
// final flush-and-close.
func (c *CLI) persistAfterCollect(adv *core.Advisor, deployment string) error {
	if err := os.MkdirAll(c.StateDir, 0o755); err != nil {
		return err
	}
	if list := adv.TaskList(deployment); list != nil {
		if err := list.SaveFile(c.statePath("tasks-" + deployment + ".json")); err != nil {
			return err
		}
	}
	return adv.CloseStore()
}

//
// Commands
//

func (c *CLI) cmdDeploy(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("deploy needs a subcommand: create, list, or shutdown")
	}
	sub := args[0]
	fs := flag.NewFlagSet("deploy "+sub, flag.ContinueOnError)
	fs.SetOutput(c.Stderr)
	cfgPath := fs.String("c", "", "configuration file")
	name := fs.String("n", "", "deployment name")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	st, err := c.loadState()
	if err != nil {
		return err
	}
	switch sub {
	case "create":
		cfg, err := c.requireConfig(*cfgPath)
		if err != nil {
			return err
		}
		adv, err := c.advisorFor(cfg.Subscription, st, c.resolveStore(""))
		if err != nil {
			return err
		}
		defer adv.CloseStore()
		d, err := adv.DeployCreate(cfg)
		if err != nil {
			return err
		}
		st.Deployments = append(st.Deployments, d)
		if err := c.saveState(st); err != nil {
			return err
		}
		fmt.Fprintf(c.Stdout, "deployment created: %s (region %s", d.Name, d.Region)
		if d.JumpboxIP != "" {
			fmt.Fprintf(c.Stdout, ", jumpbox %s", d.JumpboxIP)
		}
		fmt.Fprintln(c.Stdout, ")")
		return nil
	case "list":
		if len(st.Deployments) == 0 {
			fmt.Fprintln(c.Stdout, "no deployments")
			return nil
		}
		fmt.Fprintf(c.Stdout, "%-28s %-16s %-10s %s\n", "NAME", "REGION", "STORAGE", "BATCH")
		for _, d := range st.Deployments {
			fmt.Fprintf(c.Stdout, "%-28s %-16s %-10s %s\n", d.Name, d.Region, d.StorageAccount, d.BatchAccount)
		}
		return nil
	case "shutdown":
		if *name == "" {
			return fmt.Errorf("deploy shutdown requires -n name")
		}
		adv, err := c.advisorFor("", st, c.resolveStore(""))
		if err != nil {
			return err
		}
		defer adv.CloseStore()
		if err := adv.DeployShutdown(subscriptionOf(st, *name), *name); err != nil {
			return err
		}
		kept := st.Deployments[:0]
		for _, d := range st.Deployments {
			if d.Name != *name {
				kept = append(kept, d)
			}
		}
		st.Deployments = kept
		_ = os.Remove(c.statePath("tasks-" + *name + ".json"))
		_ = os.Remove(c.statePath("journal-" + *name + ".jnl"))
		if err := c.saveState(st); err != nil {
			return err
		}
		fmt.Fprintf(c.Stdout, "deployment %s shut down\n", *name)
		return nil
	}
	return fmt.Errorf("unknown deploy subcommand %q", sub)
}

func subscriptionOf(st *state, name string) string {
	for _, d := range st.Deployments {
		if d.Name == name {
			return d.SubscriptionID
		}
	}
	if len(st.Deployments) > 0 {
		return st.Deployments[0].SubscriptionID
	}
	return ""
}

func (c *CLI) cmdCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	fs.SetOutput(c.Stderr)
	cfgPath := fs.String("c", "", "configuration file")
	name := fs.String("n", "", "deployment name (default: most recent)")
	samplerName := fs.String("sampler", "full", "scenario sampler: full, discard, perffactor, bottleneck, combined")
	deleteAfter := fs.Bool("delete-pools", false, "delete pools instead of resizing to zero")
	attempts := fs.Int("attempts", 1, "attempts per scenario")
	useSpot := fs.Bool("spot", false, "collect on spot (preemptible) capacity; combine with -attempts > 1")
	budget := fs.Float64("budget", 0, "adaptive mode: collect best-value scenarios until this USD budget is spent")
	parallelPools := fs.Int("parallel-pools", 1, "collect up to N VM-type pools concurrently (1 = the paper's sequential walk)")
	resume := fs.Bool("resume", false, "resume an interrupted sweep from its journal")
	brkThreshold := fs.Int("breaker-threshold", 0, "consecutive capacity failures that open a SKU's circuit breaker (0 = default 3, -1 disables)")
	brkCooldown := fs.Float64("breaker-cooldown", 0, "virtual seconds an open breaker waits before a half-open probe (0 = default 600)")
	storePath := fs.String("store", "", "dataset store path (.jsonl file or segment directory)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *budget > 0 {
		return fmt.Errorf("-resume applies to journaled sweeps; adaptive -budget collection is not journaled")
	}
	cfg, err := c.requireConfig(*cfgPath)
	if err != nil {
		return err
	}
	st, err := c.loadState()
	if err != nil {
		return err
	}
	// The state directory must exist before the store backend lazily
	// creates the dataset file inside it on the first streamed point.
	if err := os.MkdirAll(c.StateDir, 0o755); err != nil {
		return err
	}
	adv, err := c.advisorFor(cfg.Subscription, st, c.resolveStore(*storePath))
	if err != nil {
		return err
	}
	defer adv.CloseStore()
	target := *name
	if target == "" {
		if len(st.Deployments) == 0 {
			return fmt.Errorf("no deployments; run 'hpcadvisor deploy create' first")
		}
		target = st.Deployments[len(st.Deployments)-1].Name
	}
	opts := core.CollectOptions{
		Sampler:          *samplerName,
		DeletePoolAfter:  *deleteAfter,
		MaxAttempts:      *attempts,
		UseSpot:          *useSpot,
		MaxParallelPools: *parallelPools,
		Breaker:          collector.BreakerPolicy{Threshold: *brkThreshold, CooldownSeconds: *brkCooldown},
		Progress: func(t *scenario.Task) {
			if t.Status == scenario.StatusRunning {
				return
			}
			fmt.Fprintf(c.Stdout, "  [%s] %s\n", t.Status, t.ID)
		},
	}
	if *parallelPools > 1 && *samplerName != "" && *samplerName != "full" {
		fmt.Fprintf(c.Stderr, "warning: sampler %q only sees its own VM type's results under -parallel-pools; "+
			"cross-VM-type pruning needs sequential collection\n", *samplerName)
	}

	// Every non-adaptive sweep is journaled, so any crash or interrupt is
	// resumable; adaptive -budget mode re-plans after every scenario and is
	// not (its value-ordering depends on the live dataset, not a fixed
	// task list).
	journalPath := c.statePath("journal-" + target + ".jnl")
	if *budget == 0 {
		j, replay, jerr := collector.OpenJournal(journalPath)
		if jerr != nil {
			return fmt.Errorf("opening sweep journal: %w", jerr)
		}
		defer j.Close()
		if *resume {
			if !replay.Resumable() {
				return fmt.Errorf("nothing to resume: %s has no unfinished sweep", journalPath)
			}
			opts.Resume = replay
		} else {
			if replay.Resumable() {
				return fmt.Errorf("an unfinished sweep is journaled at %s; continue it with 'collect -resume' or delete the journal to start over", journalPath)
			}
			// A sealed (completed) journal from the previous sweep is
			// superseded by this fresh one.
			if err := j.Reset(); err != nil {
				return err
			}
		}
		opts.Journal = j
	} else if *resume {
		return fmt.Errorf("-resume applies to journaled sweeps; adaptive -budget collection is not journaled")
	}

	// SIGINT/SIGTERM wind the collection down at the next task boundary:
	// pools released, journal sealed, task list persisted — then the
	// process exits cleanly with a resume hint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts.Interrupt = ctx.Done()

	var report *collector.Report
	if *budget > 0 {
		fmt.Fprintf(c.Stdout, "adaptive collection on %s (budget $%.2f, %d candidate scenarios)\n",
			target, *budget, cfg.ScenarioCount())
		report, err = adv.CollectAdaptive(target, cfg, *budget, opts)
	} else if *resume {
		fmt.Fprintf(c.Stdout, "resuming sweep on %s (%d journaled outcomes)\n",
			target, len(opts.Resume.Outcomes))
		report, err = adv.Collect(target, cfg, opts)
	} else {
		fmt.Fprintf(c.Stdout, "collecting %d scenarios on %s (sampler: %s)\n",
			cfg.ScenarioCount(), target, *samplerName)
		report, err = adv.Collect(target, cfg, opts)
	}
	// Persist even when the run failed: completed points already streamed
	// durably through the attached backend, so the task list must record
	// what finished — otherwise a retry would re-run those scenarios and
	// append duplicates to the dataset.
	if perr := c.persistAfterCollect(adv, target); perr != nil && err == nil {
		err = perr
	}
	if errors.Is(err, collector.ErrInterrupted) {
		fmt.Fprintf(c.Stdout, "collection interrupted: %d completed, %d failed, %d skipped so far\n",
			report.Completed, report.Failed, report.Skipped)
		if *budget > 0 {
			fmt.Fprintln(c.Stdout, "remaining scenarios stay pending; re-run with -budget to continue")
		} else {
			fmt.Fprintf(c.Stdout, "journal sealed at %s; continue with 'hpcadvisor collect -resume -c <config>'\n", journalPath)
		}
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(c.Stdout,
		"collection done: %d completed, %d failed, %d skipped\n"+
			"cloud time: %.0f s, collection cost: $%.2f\n",
		report.Completed, report.Failed, report.Skipped,
		report.VirtualSeconds, report.CollectionCostUSD)
	if report.Retries > 0 || report.BreakerSkipped > 0 {
		fmt.Fprintf(c.Stdout, "resilience: %d retries, %d scenarios breaker-skipped\n",
			report.Retries, report.BreakerSkipped)
	}
	if report.Resumed > 0 || report.Rerun > 0 {
		fmt.Fprintf(c.Stdout, "resume: %d scenarios restored from the journal, %d re-run\n",
			report.Resumed, report.Rerun)
	}
	if *parallelPools > 1 && len(report.Lanes) > 0 && report.ElapsedVirtualSeconds < report.VirtualSeconds {
		workers := *parallelPools
		if workers > len(report.Lanes) {
			workers = len(report.Lanes)
		}
		fmt.Fprintf(c.Stdout, "parallel lanes: %d pools x %d workers, concurrent cloud time: %.0f s (%.1fx faster)\n",
			len(report.Lanes), workers, report.ElapsedVirtualSeconds,
			report.VirtualSeconds/report.ElapsedVirtualSeconds)
	}
	return nil
}

// filterFlags registers the shared data-filter flags and returns a builder
// folding them — plus any extra key/value pairs (empty values skipped) —
// into the url.Values consumed by the service layer's shared parse
// functions. The CLI deliberately has no filter parsing of its own: a
// filter means exactly what it means on /advice and /api/v1/advice.
func (c *CLI) filterFlags(fs *flag.FlagSet) func(extra ...string) url.Values {
	app := fs.String("app", "", "filter: application name")
	sku := fs.String("sku", "", "filter: SKU name or alias")
	input := fs.String("input", "", "filter: input description (e.g. atoms=864M)")
	minNodes := fs.String("minnodes", "", "filter: minimum node count")
	maxNodes := fs.String("maxnodes", "", "filter: maximum node count")
	return func(extra ...string) url.Values {
		q := url.Values{}
		set := func(k, v string) {
			if v != "" {
				q.Set(k, v)
			}
		}
		set("app", *app)
		set("sku", *sku)
		set("input", *input)
		set("minnodes", *minNodes)
		set("maxnodes", *maxNodes)
		for i := 0; i+1 < len(extra); i += 2 {
			set(extra[i], extra[i+1])
		}
		return q
	}
}

func (c *CLI) cmdPlot(args []string) error {
	fs := flag.NewFlagSet("plot", flag.ContinueOnError)
	fs.SetOutput(c.Stderr)
	query := c.filterFlags(fs)
	outDir := fs.String("o", ".", "output directory for SVG files")
	ascii := fs.Bool("ascii", false, "print ASCII charts instead of writing SVGs")
	predict := fs.Bool("predict", false, "overlay fitted scaling curves and prediction intervals")
	gridSpec := fs.String("grid", "", "prediction node counts, comma-separated (default: derived)")
	region := fs.String("region", "", "pricing region for predicted points (default "+service.DefaultRegion+")")
	storePath := fs.String("store", "", "dataset store path (.jsonl file or segment directory)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*predict && *gridSpec != "" {
		return fmt.Errorf("-grid requires -predict")
	}
	q := query("region", *region, "grid", *gridSpec)
	if *predict {
		q.Set("pred", "1")
	}
	req, err := service.ParsePlotRequest("", q)
	if err != nil {
		return err
	}
	st, err := c.loadState()
	if err != nil {
		return err
	}
	adv, err := c.advisorFor("", st, c.resolveStore(*storePath))
	if err != nil {
		return err
	}
	defer adv.CloseStore()
	if adv.Store.Len() == 0 {
		return fmt.Errorf("dataset is empty; run 'hpcadvisor collect' first")
	}
	svc := service.New(adv)
	if *ascii {
		set, err := svc.Plots(req)
		if err != nil {
			return err
		}
		for _, p := range set.All() {
			fmt.Fprintln(c.Stdout, plot.RenderASCII(p, 72, 20))
		}
		return nil
	}
	paths, err := svc.WritePlotsSVG(req, *outDir)
	if err != nil {
		return err
	}
	for _, p := range paths {
		fmt.Fprintf(c.Stdout, "wrote %s\n", p)
	}
	return nil
}

func (c *CLI) cmdAdvice(args []string) error {
	fs := flag.NewFlagSet("advice", flag.ContinueOnError)
	fs.SetOutput(c.Stderr)
	query := c.filterFlags(fs)
	sortBy := fs.String("sort", "time", "sort advice by 'time' or 'cost'")
	withRecipes := fs.Bool("recipes", false, "emit a Slurm script and cluster recipe per advice row")
	region := fs.String("region", "", "pricing region for recipes and predictions (default "+service.DefaultRegion+")")
	predict := fs.Bool("predict", false, "merge model-predicted scenarios into the advice (marked in the Source column)")
	gridSpec := fs.String("grid", "", "prediction node counts, comma-separated (default: derived)")
	storePath := fs.String("store", "", "dataset store path (.jsonl file or segment directory)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*predict && *gridSpec != "" {
		return fmt.Errorf("-grid requires -predict")
	}
	st, err := c.loadState()
	if err != nil {
		return err
	}
	adv, err := c.advisorFor("", st, c.resolveStore(*storePath))
	if err != nil {
		return err
	}
	defer adv.CloseStore()
	svc := service.New(adv)
	// recipeRows is what -recipes renders: exactly the measured rows of the
	// front that was just displayed (predicted rows name scenarios that were
	// never run, so there is nothing to write a recipe for).
	var recipeRows []dataset.Point
	if *predict {
		req, err := service.ParsePredictRequest(query("sort", *sortBy, "region", *region, "grid", *gridSpec))
		if err != nil {
			return err
		}
		res, err := svc.PredictedAdvice(req)
		if err != nil {
			return err
		}
		if len(res.Rows) == 0 {
			return fmt.Errorf("no data matches the filter; run 'hpcadvisor collect' first")
		}
		table, err := svc.PredictedAdviceTable(req)
		if err != nil {
			return err
		}
		fmt.Fprint(c.Stdout, table)
		for _, r := range res.Rows {
			if !r.Predicted {
				recipeRows = append(recipeRows, r.Point)
			}
		}
		if *withRecipes && len(recipeRows) < len(res.Rows) {
			fmt.Fprintf(c.Stderr, "note: recipes cover the %d measured rows only; predicted rows have no executed scenario to replay\n",
				len(recipeRows))
		}
	} else {
		req, err := service.ParseAdviceRequest(query("sort", *sortBy))
		if err != nil {
			return err
		}
		res, err := svc.Advice(req)
		if err != nil {
			return err
		}
		if len(res.Rows) == 0 {
			return fmt.Errorf("no data matches the filter; run 'hpcadvisor collect' first")
		}
		table, err := svc.AdviceTable(req)
		if err != nil {
			return err
		}
		fmt.Fprint(c.Stdout, table)
		recipeRows = res.Rows
	}
	if *withRecipes {
		recipeRegion := *region
		if recipeRegion == "" {
			recipeRegion = service.DefaultRegion
		}
		bundle, err := adv.RecipesFor(recipeRows, recipeRegion)
		if err != nil {
			return err
		}
		fmt.Fprintln(c.Stdout)
		fmt.Fprint(c.Stdout, bundle)
	}
	return nil
}

// cmdPredict serves advice over untested scenarios: the merged
// measured+predicted front plus the leave-one-out backtest that says how
// far the scaling models can be trusted.
func (c *CLI) cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	fs.SetOutput(c.Stderr)
	query := c.filterFlags(fs)
	sortBy := fs.String("sort", "time", "sort advice by 'time' or 'cost'")
	region := fs.String("region", "", "pricing region for predicted points (default "+service.DefaultRegion+")")
	gridSpec := fs.String("grid", "", "prediction node counts, comma-separated (default: derived)")
	storePath := fs.String("store", "", "dataset store path (.jsonl file or segment directory)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req, err := service.ParsePredictRequest(query("sort", *sortBy, "region", *region, "grid", *gridSpec))
	if err != nil {
		return err
	}
	st, err := c.loadState()
	if err != nil {
		return err
	}
	adv, err := c.advisorFor("", st, c.resolveStore(*storePath))
	if err != nil {
		return err
	}
	defer adv.CloseStore()
	svc := service.New(adv)
	res, err := svc.PredictedAdvice(req)
	if err != nil {
		return err
	}
	if len(res.Rows) == 0 {
		return fmt.Errorf("no data matches the filter; run 'hpcadvisor collect' first")
	}
	table, err := svc.PredictedAdviceTable(req)
	if err != nil {
		return err
	}
	fmt.Fprint(c.Stdout, table)
	fmt.Fprintln(c.Stdout)
	bt, err := svc.Backtest(req)
	if err != nil {
		return err
	}
	fmt.Fprintln(c.Stdout, bt.Report.String())
	return nil
}

// openServing loads the config and state and rehydrates the advisor for
// the long-running serving commands (gui, serve). Callers CloseStore.
func (c *CLI) openServing(cfgPath, storePath string) (*config.Config, *core.Advisor, error) {
	cfg, err := c.requireConfig(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	st, err := c.loadState()
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(c.StateDir, 0o755); err != nil {
		return nil, nil, err
	}
	adv, err := c.advisorFor(cfg.Subscription, st, c.resolveStore(storePath))
	if err != nil {
		return nil, nil, err
	}
	return cfg, adv, nil
}

func (c *CLI) cmdGUI(args []string) error {
	fs := flag.NewFlagSet("gui", flag.ContinueOnError)
	fs.SetOutput(c.Stderr)
	addr := fs.String("addr", ":8199", "listen address")
	cfgPath := fs.String("c", "", "configuration file")
	storePath := fs.String("store", "", "dataset store path (.jsonl file or segment directory)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, adv, err := c.openServing(*cfgPath, *storePath)
	if err != nil {
		return err
	}
	defer adv.CloseStore()
	serve := c.ServeGUI
	if serve == nil {
		serve = func(addr string, adv *core.Advisor, cfg *config.Config) error {
			fmt.Fprintf(c.Stdout, "hpcadvisor GUI listening on %s\n", addr)
			return gui.ListenAndServe(addr, adv, cfg)
		}
	}
	return serve(*addr, adv, cfg)
}

// cmdServe runs the GUI and the versioned JSON API on one address. The
// dataset store resolved from -store is attached to the advisor, so a
// collection started from the GUI streams every point durably through the
// backend while API clients keep reading — each append moves the store
// generation, which both invalidates the query engine's caches and rolls
// the ETag every API response carries.
//
// With a segment-store backend the process is also a replication leader:
// /replica/v1/ ships the write-ahead log to followers. With -follow the
// process is instead a read replica: it mirrors the leader's log into its
// own directory, serves the identical read surface (same generations, same
// ETags), and rejects writes.
func (c *CLI) cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(c.Stderr)
	addr := fs.String("addr", ":8199", "listen address")
	cfgPath := fs.String("c", "", "configuration file")
	storePath := fs.String("store", "", "dataset store path (.jsonl file or segment directory)")
	follow := fs.String("follow", "", "run as a read replica of the leader at this base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *follow != "" {
		return c.serveFollower(*addr, *cfgPath, *storePath, *follow)
	}
	cfg, adv, err := c.openServing(*cfgPath, *storePath)
	if err != nil {
		return err
	}
	defer adv.CloseStore()
	return c.serveHTTP(*addr, ServeMux(adv, cfg))
}

func (c *CLI) serveHTTP(addr string, h http.Handler) error {
	serve := c.ServeHTTP
	if serve == nil {
		serve = func(addr string, h http.Handler) error {
			fmt.Fprintf(c.Stdout, "hpcadvisor API+GUI listening on %s (JSON under /api/v1/)\n", addr)
			ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
			defer stop()
			return api.ListenAndServe(ctx, addr, h)
		}
	}
	return serve(addr, h)
}

// serveFollower runs the read-replica variant of serve: a follower mirrors
// the leader's segment log into the local store directory and the full read
// surface (API, GUI, healthz, metrics) serves from the replicated dataset.
// Generations — and therefore ETags — derive from the replicated log
// position, so responses are interchangeable with the leader's at the same
// position and a load balancer can spray requests across the fleet.
func (c *CLI) serveFollower(addr, cfgPath, storePath, leaderURL string) error {
	cfg, err := c.requireConfig(cfgPath)
	if err != nil {
		return err
	}
	if strings.HasSuffix(storePath, ".jsonl") {
		return fmt.Errorf("-follow replicates a segment store; %q is a jsonl path", storePath)
	}
	if storePath == "" {
		// Deliberately not resolveStore's dataset default: a follower's
		// mirror is leader-owned state and must never collide with a local
		// writable dataset in the same state directory.
		storePath = c.statePath("replica.seg")
	}
	if err := os.MkdirAll(c.StateDir, 0o755); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	fol, err := replica.StartFollower(ctx, leaderURL, storePath, nil)
	if err != nil {
		return err
	}
	adv := core.New(cfg.Subscription)
	adv.SetStore(fol.Store())
	fmt.Fprintf(c.Stdout, "hpcadvisor replica of %s (mirror at %s)\n", leaderURL, storePath)
	return c.serveHTTP(addr, FollowerMux(adv, cfg, fol))
}

// ServeMux composes the API and GUI route tables on one mux: the JSON API
// owns /api/v1/, /healthz, and /metrics; the GUI serves everything else.
// Both read through one advisor and one query engine, and both default
// predictions to the configured deployment region, so they can never
// disagree about the dataset or price identical requests differently.
// An advisor writing through a segment store additionally serves the
// replication protocol under /replica/v1/.
func ServeMux(adv *core.Advisor, cfg *config.Config) *http.ServeMux {
	svc := service.NewWithRegion(adv, cfg.Region)
	mux := http.NewServeMux()
	if seg, ok := adv.Backend.(*storage.SegmentStore); ok {
		svc.SetReplication(func() service.ReplicationStatus {
			return service.ReplicationStatus{Role: "leader", Synced: true}
		})
		mux.Handle("/replica/v1/", replica.NewLeader(seg).Mux())
	}
	apiMux := api.New(svc).Mux()
	mux.Handle("/api/v1/", apiMux)
	mux.Handle("/healthz", apiMux)
	mux.Handle("/metrics", apiMux)
	mux.Handle("/", gui.NewServer(adv, cfg).Mux())
	return mux
}

// FollowerMux composes the read-replica route table: the identical API and
// GUI read surface over the replicated dataset, the follower's replication
// status endpoint, and a write guard in front of the GUI's mutating
// handlers.
func FollowerMux(adv *core.Advisor, cfg *config.Config, fol *replica.Follower) *http.ServeMux {
	svc := service.NewWithRegion(adv, cfg.Region)
	svc.SetReplication(func() service.ReplicationStatus {
		st := fol.Status()
		return service.ReplicationStatus{
			Role:         "follower",
			LeaderURL:    st.LeaderURL,
			Applied:      st.Applied,
			LeaderPoints: st.LeaderPoints,
			Lag:          st.Lag,
			Synced:       st.Synced,
			Fault:        st.Fault,
		}
	})
	apiMux := api.New(svc).Mux()
	mux := http.NewServeMux()
	mux.Handle("/api/v1/", apiMux)
	mux.Handle("/healthz", apiMux)
	mux.Handle("/metrics", apiMux)
	mux.Handle("GET /replica/v1/status", fol.StatusHandler())
	mux.Handle("/", replica.ReadOnly(gui.NewServer(adv, cfg).Mux()))
	return mux
}

// cmdDataset manages the dataset store itself: describe it, compact the
// segment log, or convert between the jsonl and segment formats.
func (c *CLI) cmdDataset(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("dataset needs a subcommand: info, compact, or convert")
	}
	sub := args[0]
	fs := flag.NewFlagSet("dataset "+sub, flag.ContinueOnError)
	fs.SetOutput(c.Stderr)
	storePath := fs.String("store", "", "dataset store path (.jsonl file or segment directory)")
	to := fs.String("to", "", "convert: destination store path")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	path := c.resolveStore(*storePath)
	switch sub {
	case "info":
		b, err := storage.OpenBackend(path)
		if err != nil {
			return err
		}
		defer b.Close()
		if b.Format() == storage.FormatSegment {
			// Best-effort load so the report reflects the real serve
			// path on this machine (mmap vs heap fallback); a corrupt
			// store still prints its on-disk state.
			_, _ = b.Load()
		}
		info, err := b.Info()
		if err != nil {
			return err
		}
		fmt.Fprint(c.Stdout, info.String())
		return nil
	case "compact":
		b, err := storage.OpenBackend(path)
		if err != nil {
			return err
		}
		defer b.Close()
		if err := b.Compact(); err != nil {
			if errors.Is(err, storage.ErrNoCompaction) {
				return fmt.Errorf("%s is a %s store; compaction applies to segment stores ('dataset convert' first)", path, b.Format())
			}
			return err
		}
		info, err := b.Info()
		if err != nil {
			return err
		}
		fmt.Fprintf(c.Stdout, "compacted %s: %d points in sorted snapshot segment\n", path, info.SnapshotPoints)
		return nil
	case "convert":
		if *to == "" {
			return fmt.Errorf("dataset convert requires -to destination")
		}
		n, err := storage.Convert(path, *to)
		if err != nil {
			return err
		}
		fmt.Fprintf(c.Stdout, "converted %d points: %s (%s) -> %s (%s)\n",
			n, path, storage.DetectFormat(path), *to, storage.DetectFormat(*to))
		return nil
	}
	return fmt.Errorf("unknown dataset subcommand %q (want info, compact, or convert)", sub)
}

func (c *CLI) cmdApps() error {
	adv := core.New("enumeration")
	fmt.Fprintf(c.Stdout, "%-10s %s\n", "NAME", "DESCRIPTION")
	for _, name := range adv.Apps.Names() {
		a, err := adv.Apps.Get(name)
		if err != nil {
			return err
		}
		var defaults []string
		for k, v := range a.DefaultInput() {
			defaults = append(defaults, k+"="+v)
		}
		fmt.Fprintf(c.Stdout, "%-10s %s (defaults: %s)\n", name, a.Description(), strings.Join(defaults, " "))
	}
	return nil
}

func (c *CLI) requireConfig(path string) (*config.Config, error) {
	if path == "" {
		return nil, fmt.Errorf("a configuration file is required (-c config.yaml)")
	}
	return config.Load(path)
}

// Package predictor serves advice for scenarios that were never run. It is
// the paper's Section III-F vision — advice "with minimal or no executions
// in the cloud" — taken to its conclusion: for every (application, input,
// SKU) group in the collected dataset it fits both the Amdahl strong-scaling
// model and the log-log power law from internal/regression, selects the
// better fit by R² behind a quality gate, and synthesizes predicted
// datapoints across a configurable node-count grid, including node counts
// never collected. Each synthesized point carries a prediction interval
// derived from the fit residuals and a cost computed from the price book.
//
// The marking contract: a predicted row is distinguishable from a measured
// row everywhere it surfaces. Row.Predicted is the flag, Row.Source()
// renders it for tables, predicted scenario IDs carry the "pred-" prefix,
// and predictions are synthesized only at (group, node count) holes — on a
// fully measured grid the merged advice is byte-identical to measured
// advice, and a predicted row can never displace a measured point at the
// same scenario.
package predictor

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/pricing"
	"hpcadvisor/internal/regression"
)

// Model family names reported on rows and in backtests.
const (
	ModelAmdahl   = "amdahl"
	ModelPowerLaw = "powerlaw"
)

// PredictedIDPrefix starts every synthesized scenario ID, so predicted rows
// stay distinguishable even as bare dataset.Points.
const PredictedIDPrefix = "pred-"

// Defaults used when Config fields are zero.
const (
	DefaultMinPoints = 3
	DefaultMinR2     = 0.90
	DefaultIntervalZ = 1.96
)

// Config tunes prediction.
type Config struct {
	// Grid is the set of node counts to predict at; counts already measured
	// for a group are never re-synthesized. Empty derives DefaultGrid from
	// the measured data.
	Grid []int
	// MinPoints is the minimum number of distinct measured node counts a
	// group needs before its fit is trusted (default 3).
	MinPoints int
	// MinR2 is the quality gate: groups whose better model explains less
	// than this fraction of variance yield no predictions (default 0.90).
	MinR2 float64
	// Prices and Region cost the synthesized points. Both are required for
	// prediction — a point without a cost cannot sit on a time/cost front.
	Prices *pricing.PriceBook
	Region string
	// IntervalZ scales the residual-derived prediction interval (default
	// 1.96, a ~95% normal interval).
	IntervalZ float64
}

func (c Config) minPoints() int {
	if c.MinPoints > 0 {
		return c.MinPoints
	}
	return DefaultMinPoints
}

func (c Config) minR2() float64 {
	if c.MinR2 > 0 {
		return c.MinR2
	}
	return DefaultMinR2
}

func (c Config) intervalZ() float64 {
	if c.IntervalZ > 0 {
		return c.IntervalZ
	}
	return DefaultIntervalZ
}

// Key renders the prediction-relevant parameters as a deterministic cache
// key fragment; the query engine combines it with the canonical filter and
// the store generation. The price book's identity is not part of the key —
// engines serve one advisor, which owns one price book.
func (c Config) Key() string {
	var b strings.Builder
	b.WriteString("grid=")
	for i, n := range c.Grid {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(n))
	}
	fmt.Fprintf(&b, "|mp=%d|r2=%g|z=%g|rg=%s",
		c.minPoints(), c.minR2(), c.intervalZ(), strings.ToLower(c.Region))
	return b.String()
}

// Row is one merged-advice row: a measured datapoint, or a model-synthesized
// one carrying its provenance and prediction interval.
type Row struct {
	dataset.Point
	// Predicted marks synthesized rows; measured rows leave it false and the
	// remaining fields zero.
	Predicted bool `json:"predicted,omitempty"`
	// Model is the family that produced the prediction (ModelAmdahl or
	// ModelPowerLaw).
	Model string `json:"model,omitempty"`
	// R2 is the selected model's goodness of fit over the group's measured
	// points.
	R2 float64 `json:"r2,omitempty"`
	// TimeLoSec and TimeHiSec bound the predicted execution time: the point
	// estimate ± IntervalZ standard deviations of the fit residuals, floored
	// at zero.
	TimeLoSec float64 `json:"time_lo_sec,omitempty"`
	TimeHiSec float64 `json:"time_hi_sec,omitempty"`
	// CostLoUSD and CostHiUSD are the interval endpoints priced like the
	// point estimate (cost is linear in time).
	CostLoUSD float64 `json:"cost_lo_usd,omitempty"`
	CostHiUSD float64 `json:"cost_hi_usd,omitempty"`
}

// Source renders the row's provenance for tables: "measured", or the model
// family with its fit quality, e.g. "predicted/amdahl R2=0.99".
func (r Row) Source() string {
	if !r.Predicted {
		return "measured"
	}
	return fmt.Sprintf("predicted/%s R2=%.2f", r.Model, r.R2)
}

// GroupFit is the selected scaling model for one (application, input, SKU)
// group of measured points.
type GroupFit struct {
	AppName   string
	SKU       string
	SKUAlias  string
	PPN       int
	InputDesc string
	AppInput  map[string]string
	Tags      map[string]string

	// Model is the better-fitting family; Amdahl wins ties.
	Model  string
	Amdahl regression.Amdahl
	Power  regression.PowerLaw
	// R2 is the selected model's coefficient of determination.
	R2 float64
	// ResidSD is the standard deviation of the selected model's residuals
	// (seconds), the basis of every prediction interval.
	ResidSD float64

	// MeasuredNodes are the distinct measured node counts, ascending.
	MeasuredNodes []int
}

// Predict evaluates the selected model at n nodes.
func (g GroupFit) Predict(n int) float64 {
	if g.Model == ModelPowerLaw {
		return g.Power.Predict(float64(n))
	}
	return g.Amdahl.Predict(n)
}

// groupKey orders and identifies fit groups.
func groupKey(p *dataset.Point) string {
	return p.AppName + "\x00" + p.InputDesc + "\x00" + p.SKU
}

// groupPoints buckets successful points into (app, input, SKU) groups,
// deterministically ordered by group key.
func groupPoints(points []dataset.Point) [][]dataset.Point {
	byKey := make(map[string][]dataset.Point)
	var keys []string
	for _, p := range points {
		if p.Failed || p.ExecTimeSec <= 0 || p.NNodes < 1 {
			continue
		}
		k := groupKey(&p)
		if _, ok := byKey[k]; !ok {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], p)
	}
	sort.Strings(keys)
	out := make([][]dataset.Point, len(keys))
	for i, k := range keys {
		out[i] = byKey[k]
	}
	return out
}

// distinctNodes returns the distinct node counts of a group, ascending.
func distinctNodes(pts []dataset.Point) []int {
	seen := make(map[int]bool, len(pts))
	var out []int
	for _, p := range pts {
		if !seen[p.NNodes] {
			seen[p.NNodes] = true
			out = append(out, p.NNodes)
		}
	}
	sort.Ints(out)
	return out
}

// fitBoth fits both model families to (nodes, times) and returns each with
// its R²; a family that cannot fit reports R² of -Inf.
func fitBoth(nodes []int, times []float64) (am regression.Amdahl, amR2 float64, pw regression.PowerLaw, pwR2 float64) {
	amR2, pwR2 = math.Inf(-1), math.Inf(-1)
	if a, err := regression.FitAmdahl(nodes, times); err == nil {
		pred := make([]float64, len(nodes))
		for i, n := range nodes {
			pred[i] = a.Predict(n)
		}
		am, amR2 = a, regression.RSquared(times, pred)
	}
	xs := make([]float64, len(nodes))
	for i, n := range nodes {
		xs[i] = float64(n)
	}
	if p, err := regression.FitPowerLaw(xs, times); err == nil {
		pred := make([]float64, len(nodes))
		for i, n := range nodes {
			pred[i] = p.Predict(float64(n))
		}
		pw, pwR2 = p, regression.RSquared(times, pred)
	}
	return am, amR2, pw, pwR2
}

// fitGroup fits one group and reports whether it passes the evidence and
// quality gates.
func fitGroup(pts []dataset.Point, cfg Config) (GroupFit, bool) {
	nodesDistinct := distinctNodes(pts)
	if len(nodesDistinct) < cfg.minPoints() {
		return GroupFit{}, false
	}
	nodes := make([]int, len(pts))
	times := make([]float64, len(pts))
	for i, p := range pts {
		nodes[i] = p.NNodes
		times[i] = p.ExecTimeSec
	}
	am, amR2, pw, pwR2 := fitBoth(nodes, times)
	g := GroupFit{
		AppName:       pts[0].AppName,
		SKU:           pts[0].SKU,
		SKUAlias:      pts[0].SKUAlias,
		PPN:           pts[0].PPN,
		InputDesc:     pts[0].InputDesc,
		AppInput:      pts[0].AppInput,
		Tags:          pts[0].Tags,
		Amdahl:        am,
		Power:         pw,
		MeasuredNodes: nodesDistinct,
	}
	if pwR2 > amR2 {
		g.Model, g.R2 = ModelPowerLaw, pwR2
	} else {
		g.Model, g.R2 = ModelAmdahl, amR2
	}
	if math.IsInf(g.R2, -1) || math.IsNaN(g.R2) || g.R2 < cfg.minR2() {
		return GroupFit{}, false
	}
	// Residual spread with a regression degrees-of-freedom correction (two
	// fitted parameters in both families).
	var sse float64
	for i := range nodes {
		d := times[i] - g.Predict(nodes[i])
		sse += d * d
	}
	dof := len(nodes) - 2
	if dof < 1 {
		dof = 1
	}
	g.ResidSD = math.Sqrt(sse / float64(dof))
	return g, true
}

// Fit fits every (app, input, SKU) group in points that passes the evidence
// and quality gates, deterministically ordered. Failed points are never
// evidence.
func Fit(points []dataset.Point, cfg Config) []GroupFit {
	var out []GroupFit
	for _, g := range groupPoints(points) {
		if fit, ok := fitGroup(g, cfg); ok {
			out = append(out, fit)
		}
	}
	return out
}

// DefaultGrid derives a node grid from the measured data: every measured
// node count, plus powers of two up to twice the largest measured count —
// so the default prediction both fills holes and extrapolates one doubling
// beyond the sweep.
func DefaultGrid(points []dataset.Point) []int {
	seen := make(map[int]bool)
	var out []int
	add := func(n int) {
		if n >= 1 && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	max := 0
	for _, p := range points {
		if p.Failed {
			continue
		}
		add(p.NNodes)
		if p.NNodes > max {
			max = p.NNodes
		}
	}
	for n := 1; n <= 2*max; n *= 2 {
		add(n)
	}
	sort.Ints(out)
	return out
}

// predictedID builds the synthesized scenario ID. The "pred-" prefix keeps
// predicted rows identifiable as bare points and collision-free with
// measured scenario IDs; the input-description hash keeps groups that
// differ only in application input collision-free with each other.
func predictedID(g *GroupFit, n int) string {
	h := fnv.New32a()
	fmt.Fprintf(h, "%s|%d", g.InputDesc, g.PPN)
	return fmt.Sprintf("%s%s-%s-n%02d-%s-%08x", PredictedIDPrefix, g.AppName, g.SKUAlias, n, g.Model, h.Sum32())
}

// synthesize builds the predicted rows of one fitted group across the grid,
// skipping measured node counts and unpriceable or degenerate predictions.
func synthesize(g *GroupFit, grid []int, cfg Config) []Row {
	measured := make(map[int]bool, len(g.MeasuredNodes))
	for _, n := range g.MeasuredNodes {
		measured[n] = true
	}
	var out []Row
	done := make(map[int]bool, len(grid))
	for _, n := range grid {
		if n < 1 || measured[n] || done[n] {
			continue
		}
		done[n] = true
		predTime := g.Predict(n)
		if predTime <= 0 || math.IsNaN(predTime) || math.IsInf(predTime, 0) {
			continue
		}
		cost, err := cfg.Prices.Cost(cfg.Region, g.SKU, n, predTime)
		if err != nil {
			continue
		}
		// Interval gate: when the residual spread swallows the estimate
		// itself (the lower bound would be zero or negative), the
		// extrapolation cannot even rule out instantaneous execution — that
		// is not advice, so the point is dropped rather than synthesized.
		lo := predTime - cfg.intervalZ()*g.ResidSD
		if lo <= 0 && g.ResidSD > 0 {
			continue
		}
		if lo < 0 {
			lo = 0
		}
		hi := predTime + cfg.intervalZ()*g.ResidSD
		costLo, _ := cfg.Prices.Cost(cfg.Region, g.SKU, n, lo)
		costHi, _ := cfg.Prices.Cost(cfg.Region, g.SKU, n, hi)
		out = append(out, Row{
			Point: dataset.Point{
				ScenarioID:  predictedID(g, n),
				AppName:     g.AppName,
				SKU:         g.SKU,
				SKUAlias:    g.SKUAlias,
				NNodes:      n,
				PPN:         g.PPN,
				AppInput:    g.AppInput,
				InputDesc:   g.InputDesc,
				Tags:        g.Tags,
				ExecTimeSec: predTime,
				CostUSD:     cost,
			},
			Predicted: true,
			Model:     g.Model,
			R2:        g.R2,
			TimeLoSec: lo,
			TimeHiSec: hi,
			CostLoUSD: costLo,
			CostHiUSD: costHi,
		})
	}
	return out
}

// Rows merges the measured points with model-synthesized rows at every grid
// node count a group never measured. Measured rows always win: predictions
// only fill holes, so on a fully measured grid Rows returns exactly the
// measured data and no phantom rows.
func Rows(points []dataset.Point, cfg Config) []Row {
	var out []Row
	for _, p := range points {
		if p.Failed {
			continue
		}
		out = append(out, Row{Point: p})
	}
	if cfg.Prices == nil || cfg.Region == "" {
		return out
	}
	grid := cfg.Grid
	if len(grid) == 0 {
		grid = DefaultGrid(points)
	}
	fits := Fit(points, cfg)
	for i := range fits {
		out = append(out, synthesize(&fits[i], grid, cfg)...)
	}
	return out
}

// Advice merges measured and predicted rows and returns their Pareto front
// in the requested order — the engine behind "advice -predict". Predicted
// rows on the front keep their marking and intervals.
func Advice(points []dataset.Point, cfg Config, order pareto.SortOrder) []Row {
	rows := Rows(points, cfg)
	// Rows are correlated back to front points by (ID, time, cost), not ID
	// alone: a dataset can legitimately carry duplicate scenario IDs with
	// different measurements (re-collections, merged datasets), and the
	// front row must keep the values the Pareto computation actually kept.
	byKey := make(map[rowKey]Row, len(rows))
	pts := make([]dataset.Point, len(rows))
	for i, r := range rows {
		pts[i] = r.Point
		byKey[keyOf(&r.Point)] = r
	}
	front := pareto.Advice(pts, order)
	out := make([]Row, len(front))
	for i, p := range front {
		out[i] = byKey[keyOf(&p)]
	}
	return out
}

type rowKey struct {
	id   string
	time float64
	cost float64
}

func keyOf(p *dataset.Point) rowKey {
	return rowKey{id: p.ScenarioID, time: p.ExecTimeSec, cost: p.CostUSD}
}

// FormatAdviceTable renders merged advice like the paper's Listings 3-4 plus
// a Source column that marks every predicted row with its model family, fit
// quality, and time interval:
//
//	Exectime(s)  Cost($)  Nodes  SKU         Source
//	34           0.5440   16     hb120rs_v3  measured
//	28           0.6720   32     hb120rs_v3  predicted/amdahl R2=0.99 [26..30s]
func FormatAdviceTable(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %-6s %-12s %s\n", "Exectime(s)", "Cost($)", "Nodes", "SKU", "Source")
	for _, r := range rows {
		src := r.Source()
		if r.Predicted {
			src += fmt.Sprintf(" [%.0f..%.0fs]", r.TimeLoSec, r.TimeHiSec)
		}
		fmt.Fprintf(&b, "%-12.0f %-8.4f %-6d %-12s %s\n", r.ExecTimeSec, r.CostUSD, r.NNodes, r.SKUAlias, src)
	}
	return b.String()
}

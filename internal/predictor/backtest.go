package predictor

import (
	"fmt"
	"math"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/regression"
)

// BacktestReport summarizes a leave-one-out backtest: each measured point is
// held out in turn, both model families are refit on the rest of its group,
// and the held-out execution time is predicted. MAPE is reported per model
// family (regression.MeanAbsPctError) over every refit, plus the
// selected-model MAPE — the error a user of PredictedAdvice experiences:
// only folds whose better refit clears the R² quality gate count, exactly
// the fits the advice path would serve.
type BacktestReport struct {
	// Groups is how many (app, input, SKU) groups had enough points to
	// backtest; Held counts the folds whose selected refit cleared the
	// quality gate (the denominator of SelectedMAPE).
	Groups int `json:"groups"`
	Held   int `json:"held"`

	AmdahlMAPE   float64 `json:"amdahl_mape"`
	PowerLawMAPE float64 `json:"powerlaw_mape"`
	SelectedMAPE float64 `json:"selected_mape"`
}

// String renders the report as one summary line.
func (r BacktestReport) String() string {
	if r.Groups == 0 {
		return "backtest: insufficient data (no group has enough measured node counts)"
	}
	if r.Held == 0 {
		return fmt.Sprintf(
			"backtest (leave-one-out, %d groups): no refit cleared the R² quality gate — predictions would not be served; ungated amdahl MAPE %.1f%%, powerlaw MAPE %.1f%%",
			r.Groups, r.AmdahlMAPE, r.PowerLawMAPE)
	}
	return fmt.Sprintf(
		"backtest (leave-one-out, %d groups, %d held-out points): amdahl MAPE %.1f%%, powerlaw MAPE %.1f%%, selected-model MAPE %.1f%%",
		r.Groups, r.Held, r.AmdahlMAPE, r.PowerLawMAPE, r.SelectedMAPE)
}

// Backtest runs the leave-one-out evaluation over every group Fit would
// serve predictions for (at least MinPoints distinct measured node counts).
// Each refit has one point fewer than the served fit, so the backtest is
// the honest approximation of served-fit error rather than a strict mirror
// of the evidence gate.
func Backtest(points []dataset.Point, cfg Config) BacktestReport {
	var rep BacktestReport
	// Paired (observation, prediction) arrays per family: a family that
	// cannot refit on one fold simply skips that fold instead of poisoning
	// its MAPE with a NaN.
	var amObs, amPred, pwObs, pwPred, selObs, selPred []float64
	for _, g := range groupPoints(points) {
		if len(distinctNodes(g)) < cfg.minPoints() {
			continue
		}
		rep.Groups++
		for hold := range g {
			nodes := make([]int, 0, len(g)-1)
			times := make([]float64, 0, len(g)-1)
			for i, p := range g {
				if i == hold {
					continue
				}
				nodes = append(nodes, p.NNodes)
				times = append(times, p.ExecTimeSec)
			}
			am, amR2, pw, pwR2 := fitBoth(nodes, times)
			amOK := !math.IsInf(amR2, -1)
			pwOK := !math.IsInf(pwR2, -1)
			if !amOK && !pwOK {
				continue
			}
			held := g[hold]
			if amOK {
				amObs = append(amObs, held.ExecTimeSec)
				amPred = append(amPred, am.Predict(held.NNodes))
			}
			if pwOK {
				pwObs = append(pwObs, held.ExecTimeSec)
				pwPred = append(pwPred, pw.Predict(float64(held.NNodes)))
			}
			// Selected-model error mirrors what PredictedAdvice serves: the
			// better family per refit, and only when it clears the quality
			// gate — a fold the gate rejects would never reach a user.
			selT, selR2 := am.Predict(held.NNodes), amR2
			if pwOK && (!amOK || pwR2 > amR2) {
				selT, selR2 = pw.Predict(float64(held.NNodes)), pwR2
			}
			if selR2 >= cfg.minR2() {
				selObs = append(selObs, held.ExecTimeSec)
				selPred = append(selPred, selT)
			}
		}
	}
	rep.Held = len(selObs)
	if len(amObs) > 0 {
		rep.AmdahlMAPE = regression.MeanAbsPctError(amObs, amPred)
	}
	if len(pwObs) > 0 {
		rep.PowerLawMAPE = regression.MeanAbsPctError(pwObs, pwPred)
	}
	if rep.Held > 0 {
		rep.SelectedMAPE = regression.MeanAbsPctError(selObs, selPred)
	}
	return rep
}

package predictor

import (
	"strings"
	"testing"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/plot"
)

func overlayFixture(t *testing.T) (plot.Set, []dataset.Point, Config) {
	t.Helper()
	pts := amdahlSweep(t, []int{1, 2, 4, 8})
	store := dataset.NewStore()
	store.AddAll(pts)
	cfg := testConfig()
	cfg.Grid = []int{1, 2, 4, 8, 16, 32}
	return plot.BuildSet(store, dataset.Filter{}), pts, cfg
}

func TestOverlayAddsPredictedSeries(t *testing.T) {
	base, pts, cfg := overlayFixture(t)
	baseNodes := len(base.ExecTimeVsNodes.Series)
	baseCost := len(base.ExecTimeVsCost.Series)

	over := Overlay(base, pts, cfg)

	// ExecTimeVsNodes gains a band plus a dashed fitted curve per group.
	got := over.ExecTimeVsNodes.Series
	if len(got) != baseNodes+2 {
		t.Fatalf("exectime series = %d, want %d", len(got), baseNodes+2)
	}
	band, curve := got[len(got)-2], got[len(got)-1]
	if !band.Band || band.Name != "" {
		t.Errorf("band series = %+v", band)
	}
	if !curve.Dashed || curve.Scatter {
		t.Errorf("curve series style = %+v", curve)
	}
	if !strings.Contains(curve.Name, "(predicted)") {
		t.Errorf("curve name = %q, want predicted marking", curve.Name)
	}
	// The curve reaches the extrapolated 32 nodes.
	last := curve.Points[len(curve.Points)-1]
	if last.X != 32 {
		t.Errorf("curve ends at %v nodes, want 32", last.X)
	}
	// The band encloses the curve: for each curve point there is a lower
	// band point at or below it at the same X.
	lows := map[float64]float64{}
	for _, p := range band.Points[:len(band.Points)/2] {
		lows[p.X] = p.Y
	}
	for _, p := range curve.Points {
		if lo, ok := lows[p.X]; !ok || lo > p.Y {
			t.Errorf("band lower edge at x=%v is %v, above curve %v", p.X, lo, p.Y)
		}
	}

	// ExecTimeVsCost gains one dashed scatter series with the two grid-hole
	// predictions.
	cs := over.ExecTimeVsCost.Series
	if len(cs) != baseCost+1 {
		t.Fatalf("cost series = %d, want %d", len(cs), baseCost+1)
	}
	pred := cs[len(cs)-1]
	if !pred.Scatter || !pred.Dashed {
		t.Errorf("cost overlay style = %+v", pred)
	}
	if len(pred.Points) != 2 {
		t.Errorf("cost overlay points = %d, want 2 (16 and 32 nodes)", len(pred.Points))
	}

	// The base set is untouched for plots without overlays.
	if len(over.Speedup.Series) != len(base.Speedup.Series) {
		t.Error("speedup plot modified")
	}
}

func TestOverlayRendersInBothBackends(t *testing.T) {
	base, pts, cfg := overlayFixture(t)
	over := Overlay(base, pts, cfg)
	svg := string(plot.RenderSVG(over.ExecTimeVsNodes))
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Error("SVG lacks dashed predicted curve")
	}
	if !strings.Contains(svg, "<polygon") || !strings.Contains(svg, "fill-opacity") {
		t.Error("SVG lacks interval band polygon")
	}
	if !strings.Contains(svg, "(predicted)") {
		t.Error("SVG legend lacks predicted marking")
	}
	ascii := plot.RenderASCII(over.ExecTimeVsNodes, 72, 20)
	if !strings.Contains(ascii, "(predicted)") {
		t.Errorf("ASCII legend lacks predicted marking:\n%s", ascii)
	}
}

func TestOverlayWithoutFitsIsIdentity(t *testing.T) {
	pts := amdahlSweep(t, []int{1, 2}) // below the evidence gate
	store := dataset.NewStore()
	store.AddAll(pts)
	base := plot.BuildSet(store, dataset.Filter{})
	over := Overlay(base, pts, testConfig())
	if len(over.ExecTimeVsNodes.Series) != len(base.ExecTimeVsNodes.Series) {
		t.Error("overlay added series without a trusted fit")
	}
}

func TestOverlayDoesNotMutateSharedSeriesSlice(t *testing.T) {
	// The engine hands Overlay its cached measured plot set by value; the
	// Series slices are shared. Overlaying twice with different configs
	// must never write into the first overlay's (or the measured set's)
	// backing array.
	base, pts, cfgA := overlayFixture(t)
	cfgB := cfgA
	cfgB.Grid = []int{1, 2, 4, 8, 64}

	overA := Overlay(base, pts, cfgA)
	curveA := overA.ExecTimeVsNodes.Series[len(overA.ExecTimeVsNodes.Series)-1]
	lastA := curveA.Points[len(curveA.Points)-1]

	Overlay(base, pts, cfgB) // must not touch overA or base

	curveAgain := overA.ExecTimeVsNodes.Series[len(overA.ExecTimeVsNodes.Series)-1]
	if got := curveAgain.Points[len(curveAgain.Points)-1]; got != lastA {
		t.Errorf("second overlay mutated the first: curve end %+v, want %+v", got, lastA)
	}
	for _, s := range base.ExecTimeVsNodes.Series {
		if s.Band || s.Dashed {
			t.Errorf("measured set gained overlay series %q", s.Name)
		}
	}
}

func TestBandSharesItsCurveColor(t *testing.T) {
	base, pts, cfg := overlayFixture(t)
	over := Overlay(base, pts, cfg)
	svg := string(plot.RenderSVG(over.ExecTimeVsNodes))
	// The band polygon must be tinted with the same palette color as the
	// dashed curve it belongs to.
	polyStart := strings.Index(svg, "<polygon")
	if polyStart < 0 {
		t.Fatal("no band polygon")
	}
	poly := svg[polyStart : strings.Index(svg[polyStart:], "/>")+polyStart]
	dashStart := strings.Index(svg, "stroke-dasharray")
	line := svg[strings.LastIndex(svg[:dashStart], "<polyline"):dashStart]
	var bandColor, curveColor string
	if i := strings.Index(poly, `fill="#`); i >= 0 {
		bandColor = poly[i+6 : i+13]
	}
	if i := strings.Index(line, `stroke="#`); i >= 0 {
		curveColor = line[i+8 : i+15]
	}
	if bandColor == "" || bandColor != curveColor {
		t.Errorf("band color %q != curve color %q", bandColor, curveColor)
	}
}

package predictor

import (
	"math"
	"strings"
	"testing"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/plot"
	"hpcadvisor/internal/pricing"
)

// amdahlPoint fabricates a measured point following T(n) = t1*(s+(1-s)/n)
// priced at the default southcentralus rate for the SKU.
func amdahlPoint(t *testing.T, sku, alias string, n int, t1, serial float64) dataset.Point {
	t.Helper()
	sec := t1 * (serial + (1-serial)/float64(n))
	cost, err := pricing.Default().Cost("southcentralus", sku, n, sec)
	if err != nil {
		t.Fatal(err)
	}
	return dataset.Point{
		ScenarioID:  alias + "-n" + string(rune('a'+n)),
		AppName:     "lammps",
		SKU:         sku,
		SKUAlias:    alias,
		NNodes:      n,
		PPN:         120,
		InputDesc:   "atoms=864M",
		ExecTimeSec: sec,
		CostUSD:     cost,
	}
}

func testConfig() Config {
	return Config{Prices: pricing.Default(), Region: "southcentralus"}
}

func amdahlSweep(t *testing.T, nodes []int) []dataset.Point {
	t.Helper()
	var pts []dataset.Point
	for _, n := range nodes {
		pts = append(pts, amdahlPoint(t, "Standard_HB120rs_v3", "hb120rs_v3", n, 1000, 0.05))
	}
	return pts
}

func TestFitSelectsAmdahlOnAmdahlData(t *testing.T) {
	fits := Fit(amdahlSweep(t, []int{1, 2, 4, 8, 16}), testConfig())
	if len(fits) != 1 {
		t.Fatalf("fits = %d, want 1", len(fits))
	}
	g := fits[0]
	if g.Model != ModelAmdahl {
		t.Errorf("model = %s, want amdahl", g.Model)
	}
	if g.R2 < 0.999 {
		t.Errorf("R2 = %v", g.R2)
	}
	if math.Abs(g.Amdahl.Serial-0.05) > 0.01 {
		t.Errorf("Serial = %v, want ~0.05", g.Amdahl.Serial)
	}
	want := 1000 * (0.05 + 0.95/32)
	if got := g.Predict(32); math.Abs(got-want) > want*0.05 {
		t.Errorf("Predict(32) = %v, want ~%v", got, want)
	}
}

func TestFitSelectsPowerLawOnPowerLawData(t *testing.T) {
	// T(n) = 900 * n^-0.6: sub-linear scaling no Amdahl curve matches well.
	var pts []dataset.Point
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		p := amdahlPoint(t, "Standard_HB120rs_v3", "hb120rs_v3", n, 1, 0)
		p.ExecTimeSec = 900 * math.Pow(float64(n), -0.6)
		pts = append(pts, p)
	}
	fits := Fit(pts, testConfig())
	if len(fits) != 1 {
		t.Fatalf("fits = %d, want 1", len(fits))
	}
	if fits[0].Model != ModelPowerLaw {
		t.Errorf("model = %s, want powerlaw", fits[0].Model)
	}
	want := 900 * math.Pow(64, -0.6)
	if got := fits[0].Predict(64); math.Abs(got-want) > want*0.05 {
		t.Errorf("Predict(64) = %v, want ~%v", got, want)
	}
}

func TestFitGates(t *testing.T) {
	cfg := testConfig()
	// Too few distinct node counts.
	if fits := Fit(amdahlSweep(t, []int{1, 2}), cfg); len(fits) != 0 {
		t.Errorf("2 node counts passed the evidence gate: %d fits", len(fits))
	}
	// Noise that no scaling model explains fails the R² gate.
	noisy := amdahlSweep(t, []int{1, 2, 4, 8})
	noisy[0].ExecTimeSec = 10
	noisy[1].ExecTimeSec = 4000
	noisy[2].ExecTimeSec = 17
	noisy[3].ExecTimeSec = 2500
	if fits := Fit(noisy, cfg); len(fits) != 0 {
		t.Errorf("noise passed the R² gate: %+v", fits)
	}
	// Failed points are not evidence.
	failed := amdahlSweep(t, []int{1, 2})
	for _, n := range []int{4, 8} {
		p := amdahlPoint(t, "Standard_HB120rs_v3", "hb120rs_v3", n, 1000, 0.05)
		p.Failed = true
		p.ExecTimeSec = 0
		failed = append(failed, p)
	}
	if fits := Fit(failed, cfg); len(fits) != 0 {
		t.Errorf("failed points counted as evidence: %d fits", len(fits))
	}
}

func TestRowsFillOnlyHoles(t *testing.T) {
	pts := amdahlSweep(t, []int{1, 2, 4, 8})
	cfg := testConfig()
	cfg.Grid = []int{1, 2, 4, 8, 16, 32}
	rows := Rows(pts, cfg)
	var predicted []Row
	for _, r := range rows {
		if r.Predicted {
			predicted = append(predicted, r)
			continue
		}
	}
	if len(rows)-len(predicted) != len(pts) {
		t.Errorf("measured rows = %d, want %d", len(rows)-len(predicted), len(pts))
	}
	if len(predicted) != 2 {
		t.Fatalf("predicted rows = %d, want 2 (16 and 32)", len(predicted))
	}
	for _, r := range predicted {
		if r.NNodes != 16 && r.NNodes != 32 {
			t.Errorf("predicted at measured count %d", r.NNodes)
		}
		if !strings.HasPrefix(r.ScenarioID, PredictedIDPrefix) {
			t.Errorf("predicted ID %q lacks %q prefix", r.ScenarioID, PredictedIDPrefix)
		}
		if r.Model != ModelAmdahl {
			t.Errorf("model = %s", r.Model)
		}
		if r.TimeLoSec > r.ExecTimeSec || r.TimeHiSec < r.ExecTimeSec {
			t.Errorf("interval [%v, %v] does not contain estimate %v", r.TimeLoSec, r.TimeHiSec, r.ExecTimeSec)
		}
		wantCost, _ := pricing.Default().Cost("southcentralus", r.SKU, r.NNodes, r.ExecTimeSec)
		if math.Abs(r.CostUSD-wantCost) > 1e-12 {
			t.Errorf("cost = %v, want %v", r.CostUSD, wantCost)
		}
		if r.CostLoUSD > r.CostUSD || r.CostHiUSD < r.CostUSD {
			t.Errorf("cost interval [%v, %v] does not contain %v", r.CostLoUSD, r.CostHiUSD, r.CostUSD)
		}
	}
}

func TestConsistencyFullyMeasuredGridMatchesMeasuredAdvice(t *testing.T) {
	// On a fully measured grid the predictor must synthesize nothing: the
	// merged advice is exactly the measured advice, with no phantom rows.
	pts := amdahlSweep(t, []int{1, 2, 4, 8, 16})
	for _, n := range []int{1, 2, 4, 8, 16} {
		pts = append(pts, amdahlPoint(t, "Standard_HC44rs", "hc44rs", n, 1600, 0.10))
	}
	cfg := testConfig()
	cfg.Grid = []int{1, 2, 4, 8, 16}
	for _, order := range []pareto.SortOrder{pareto.ByTime, pareto.ByCost} {
		measured := pareto.Advice(pts, order)
		merged := Advice(pts, cfg, order)
		if len(merged) != len(measured) {
			t.Fatalf("merged advice = %d rows, measured = %d", len(merged), len(measured))
		}
		for i := range merged {
			if merged[i].Predicted {
				t.Errorf("phantom predicted row %s on a fully measured grid", merged[i].ScenarioID)
			}
			if merged[i].ScenarioID != measured[i].ScenarioID {
				t.Errorf("row %d: %s != %s", i, merged[i].ScenarioID, measured[i].ScenarioID)
			}
		}
	}
}

func TestAdviceMergesPredictedBeyondSweep(t *testing.T) {
	// Measured to 8 nodes on a well-scaling workload; predicting to 32 must
	// extend the fast end of the front with marked rows, while every
	// measured front row survives unless a prediction strictly dominates it.
	pts := amdahlSweep(t, []int{1, 2, 4, 8})
	cfg := testConfig()
	cfg.Grid = []int{1, 2, 4, 8, 16, 32}
	merged := Advice(pts, cfg, pareto.ByTime)
	var sawPredicted bool
	for _, r := range merged {
		if r.Predicted {
			sawPredicted = true
			if r.NNodes != 16 && r.NNodes != 32 {
				t.Errorf("unexpected predicted front row at %d nodes", r.NNodes)
			}
		}
	}
	if !sawPredicted {
		t.Fatal("no predicted rows reached the front")
	}
	// The fastest row must now be the 32-node prediction.
	if !merged[0].Predicted || merged[0].NNodes != 32 {
		t.Errorf("fastest row = %+v, want the 32-node prediction", merged[0].Point)
	}
}

func TestFormatAdviceTableMarksPredicted(t *testing.T) {
	pts := amdahlSweep(t, []int{1, 2, 4, 8})
	cfg := testConfig()
	cfg.Grid = []int{16}
	table := FormatAdviceTable(Advice(pts, cfg, pareto.ByTime))
	if !strings.Contains(table, "Source") {
		t.Errorf("table lacks Source column:\n%s", table)
	}
	if !strings.Contains(table, "measured") {
		t.Errorf("table lacks measured marking:\n%s", table)
	}
	if !strings.Contains(table, "predicted/amdahl") {
		t.Errorf("table lacks predicted marking:\n%s", table)
	}
}

func TestRowsWithoutPricesAreMeasuredOnly(t *testing.T) {
	pts := amdahlSweep(t, []int{1, 2, 4, 8})
	rows := Rows(pts, Config{Grid: []int{16, 32}})
	for _, r := range rows {
		if r.Predicted {
			t.Fatalf("prediction without a price book: %+v", r)
		}
	}
	if len(rows) != len(pts) {
		t.Errorf("rows = %d, want %d", len(rows), len(pts))
	}
}

func TestDefaultGrid(t *testing.T) {
	pts := amdahlSweep(t, []int{1, 3, 8})
	got := DefaultGrid(pts)
	want := []int{1, 2, 3, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("grid = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grid = %v, want %v", got, want)
		}
	}
}

func TestConfigKeyDiscriminates(t *testing.T) {
	a := Config{Grid: []int{1, 2}, Region: "eastus"}
	b := Config{Grid: []int{1, 2, 4}, Region: "eastus"}
	c := Config{Grid: []int{1, 2}, Region: "westeurope"}
	d := Config{Grid: []int{1, 2}, Region: "eastus", MinR2: 0.5}
	keys := map[string]bool{a.Key(): true, b.Key(): true, c.Key(): true, d.Key(): true}
	if len(keys) != 4 {
		t.Errorf("keys collide: %v", keys)
	}
	if a.Key() != (Config{Grid: []int{1, 2}, Region: "EastUS"}).Key() {
		t.Error("region case folding missing")
	}
}

func TestBacktestOnCleanModelData(t *testing.T) {
	// Exact Amdahl data: the leave-one-out error of the Amdahl family (and
	// of the selected model) must be tiny; the power law cannot track the
	// serial floor as well.
	pts := amdahlSweep(t, []int{1, 2, 4, 8, 16, 32})
	rep := Backtest(pts, testConfig())
	if rep.Groups != 1 {
		t.Fatalf("groups = %d", rep.Groups)
	}
	if rep.Held != len(pts) {
		t.Errorf("held = %d, want %d", rep.Held, len(pts))
	}
	if rep.AmdahlMAPE > 1 {
		t.Errorf("amdahl MAPE = %v%%, want < 1%%", rep.AmdahlMAPE)
	}
	if rep.SelectedMAPE > 1 {
		t.Errorf("selected MAPE = %v%%, want < 1%%", rep.SelectedMAPE)
	}
	if !strings.Contains(rep.String(), "MAPE") {
		t.Errorf("report = %q", rep.String())
	}
}

func TestBacktestInsufficientData(t *testing.T) {
	rep := Backtest(amdahlSweep(t, []int{1, 2}), testConfig())
	if rep.Held != 0 || rep.Groups != 0 {
		t.Errorf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "insufficient") {
		t.Errorf("report = %q", rep.String())
	}
}

func TestIntervalGateDropsSwallowedPredictions(t *testing.T) {
	// A fit whose residual spread exceeds the predicted time cannot even
	// rule out instantaneous execution; such extrapolations must be dropped,
	// not served as advice.
	pts := amdahlSweep(t, []int{1, 2, 4, 8})
	cfg := testConfig()
	cfg.Grid = []int{16, 32}
	// An absurd interval multiplier makes every interval swallow its
	// estimate.
	cfg.IntervalZ = 1e9
	// Perfect fits have zero residuals and survive any multiplier; perturb
	// one point so ResidSD > 0.
	pts[0].ExecTimeSec *= 1.02
	if rows := Rows(pts, cfg); len(rows) != len(pts) {
		for _, r := range rows {
			if r.Predicted {
				t.Errorf("swallowed prediction served: %+v interval [%v, %v]", r.Point, r.TimeLoSec, r.TimeHiSec)
			}
		}
	}
}

func TestPredictedIDsUniqueAcrossInputs(t *testing.T) {
	// Two groups differing only in application input predict at the same
	// node counts; their synthesized IDs must not collide, or merged advice
	// would render one group's rows with the other's numbers.
	pts := amdahlSweep(t, []int{1, 2, 4, 8})
	for _, n := range []int{1, 2, 4, 8} {
		p := amdahlPoint(t, "Standard_HB120rs_v3", "hb120rs_v3", n, 2500, 0.05)
		p.InputDesc = "atoms=4B"
		p.ScenarioID += "-big"
		pts = append(pts, p)
	}
	cfg := testConfig()
	cfg.Grid = []int{16, 32}
	seen := make(map[string]string)
	for _, r := range Rows(pts, cfg) {
		if !r.Predicted {
			continue
		}
		if prev, ok := seen[r.ScenarioID]; ok {
			t.Errorf("ID %q used by inputs %q and %q", r.ScenarioID, prev, r.InputDesc)
		}
		seen[r.ScenarioID] = r.InputDesc
	}
	if len(seen) != 4 {
		t.Errorf("predicted rows = %d, want 4 (2 inputs x 2 holes)", len(seen))
	}
}

func TestSynthesizeDedupesGridRepeats(t *testing.T) {
	// parseGrid accepts user-supplied duplicates; they must not yield
	// duplicate predicted rows.
	pts := amdahlSweep(t, []int{1, 2, 4, 8})
	cfg := testConfig()
	cfg.Grid = []int{16, 16, 32, 32, 32}
	var predicted int
	for _, r := range Rows(pts, cfg) {
		if r.Predicted {
			predicted++
		}
	}
	if predicted != 2 {
		t.Errorf("predicted rows = %d, want 2", predicted)
	}
}

func TestBacktestSelectedMAPERespectsQualityGate(t *testing.T) {
	// A group noisy enough that no refit clears the R² gate produces no
	// selected-model folds: the advice path would serve none of those
	// predictions, so they must not shape the trust number either.
	pts := amdahlSweep(t, []int{1, 2, 4, 8, 16})
	times := []float64{1000, 300, 700, 200, 600}
	for i := range pts {
		pts[i].ExecTimeSec = times[i]
	}
	rep := Backtest(pts, testConfig())
	if rep.Groups != 1 {
		t.Fatalf("groups = %d", rep.Groups)
	}
	if rep.Held != 0 {
		t.Errorf("held = %d, want 0 (no refit clears the gate)", rep.Held)
	}
	if rep.SelectedMAPE != 0 {
		t.Errorf("selected MAPE = %v, want 0 with no qualifying folds", rep.SelectedMAPE)
	}
	if rep.AmdahlMAPE == 0 || rep.PowerLawMAPE == 0 {
		t.Errorf("family MAPEs should still be diagnosed: %+v", rep)
	}
	if !strings.Contains(rep.String(), "quality gate") {
		t.Errorf("report = %q", rep.String())
	}
}

func TestBacktestCoversGroupsFitWouldServe(t *testing.T) {
	// A group with exactly MinPoints distinct node counts gets served
	// predictions, so the trust report must cover it too rather than claim
	// insufficient data.
	pts := amdahlSweep(t, []int{1, 2, 4})
	cfg := testConfig()
	cfg.Grid = []int{8}
	served := false
	for _, r := range Rows(pts, cfg) {
		served = served || r.Predicted
	}
	if !served {
		t.Fatal("fixture not served predictions; test premise broken")
	}
	rep := Backtest(pts, cfg)
	if rep.Groups != 1 {
		t.Errorf("groups = %d, want 1 (Fit serves this group)", rep.Groups)
	}
	if rep.Held == 0 {
		t.Errorf("held = 0; served group contributed nothing: %+v", rep)
	}
}

func TestAdviceKeepsValuesOfDuplicateIDs(t *testing.T) {
	// Re-collections can append two successful points with the same
	// scenario ID but different measurements; the front row must carry the
	// values the Pareto computation kept, not whichever duplicate mapped
	// last.
	pts := amdahlSweep(t, []int{1, 2, 4, 8})
	dup := pts[len(pts)-1] // same ID, worse measurement appended later
	dup.ExecTimeSec *= 2
	dup.CostUSD *= 2
	pts = append(pts, dup)
	rows := Advice(pts, Config{}, pareto.ByTime)
	want := pareto.Advice(pts, pareto.ByTime)
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for i := range rows {
		if rows[i].ExecTimeSec != want[i].ExecTimeSec || rows[i].CostUSD != want[i].CostUSD {
			t.Errorf("row %d = %.0fs/$%.4f, want %.0fs/$%.4f",
				i, rows[i].ExecTimeSec, rows[i].CostUSD, want[i].ExecTimeSec, want[i].CostUSD)
		}
	}
}

func TestOverlayCurveCoversGridBelowMeasuredRange(t *testing.T) {
	// Grid counts below the measured range get synthesized rows, so the
	// drawn curve must span them too.
	pts := amdahlSweep(t, []int{8, 16, 32})
	cfg := testConfig()
	cfg.Grid = []int{1, 2, 4, 8, 16, 32}
	store := dataset.NewStore()
	store.AddAll(pts)
	over := Overlay(plot.BuildSet(store, dataset.Filter{}), pts, cfg)
	series := over.ExecTimeVsNodes.Series
	curve := series[len(series)-1]
	if !curve.Dashed {
		t.Fatalf("last series is not the predicted curve: %+v", curve)
	}
	if curve.Points[0].X != 1 {
		t.Errorf("curve starts at %v nodes, want 1 (grid extends below measurements)", curve.Points[0].X)
	}
}

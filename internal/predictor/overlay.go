package predictor

import (
	"math"
	"sort"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/plot"
)

// curveSamples is how many node counts each fitted curve is evaluated at:
// geometrically spaced integers covering the group's measured range out to
// the prediction grid, enough for a smooth polyline.
const curveSamples = 33

// curveNodes returns the node counts a fitted curve is sampled at: the full
// span of measured and grid counts, so every synthesized point — above or
// below the measured range — sits on the drawn curve and inside its band.
func curveNodes(g *GroupFit, grid []int) []int {
	lo := g.MeasuredNodes[0]
	hi := g.MeasuredNodes[len(g.MeasuredNodes)-1]
	for _, n := range grid {
		if n >= 1 && n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if hi <= lo {
		return []int{lo}
	}
	ratio := float64(hi) / float64(lo)
	seen := make(map[int]bool)
	var out []int
	for i := 0; i < curveSamples; i++ {
		f := float64(i) / float64(curveSamples-1)
		n := int(float64(lo)*math.Pow(ratio, f) + 0.5)
		if n < lo {
			n = lo
		}
		if n > hi {
			n = hi
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// Overlay returns the plot set with predicted overlays on the exectime and
// cost plots: per fitted group, a translucent prediction-interval band and a
// dashed fitted curve on ExecTimeVsNodes, and dashed predicted (time, cost)
// points on ExecTimeVsCost. Other plots pass through unchanged. Overlay
// series are named "<sku> (predicted)" so they stay distinguishable in
// legends; measured series are never modified.
func Overlay(set plot.Set, points []dataset.Point, cfg Config) plot.Set {
	if cfg.Prices == nil || cfg.Region == "" {
		return set
	}
	grid := cfg.Grid
	if len(grid) == 0 {
		grid = DefaultGrid(points)
	}
	// The incoming set may be a cached value whose Series slices are shared
	// (the query engine hands out its memoized measured set); clip their
	// capacity so the appends below always reallocate instead of writing
	// into a shared backing array.
	set.ExecTimeVsNodes.Series = set.ExecTimeVsNodes.Series[:len(set.ExecTimeVsNodes.Series):len(set.ExecTimeVsNodes.Series)]
	set.ExecTimeVsCost.Series = set.ExecTimeVsCost.Series[:len(set.ExecTimeVsCost.Series):len(set.ExecTimeVsCost.Series)]
	fits := Fit(points, cfg)
	for i := range fits {
		g := &fits[i]
		name := g.SKUAlias + " (predicted)"

		// ExecTimeVsNodes: interval band first (under the curve), then the
		// dashed fitted curve.
		nodes := curveNodes(g, grid)
		var band plot.Series
		band.Band = true
		var curve plot.Series
		curve.Name = name
		curve.Dashed = true
		for _, n := range nodes {
			t := g.Predict(n)
			if t <= 0 {
				continue
			}
			lo := t - cfg.intervalZ()*g.ResidSD
			if lo < 0 {
				lo = 0
			}
			band.Points = append(band.Points, plot.XY{X: float64(n), Y: lo})
			curve.Points = append(curve.Points, plot.XY{X: float64(n), Y: t})
		}
		for j := len(curve.Points) - 1; j >= 0; j-- {
			n := curve.Points[j].X
			band.Points = append(band.Points, plot.XY{X: n, Y: curve.Points[j].Y + cfg.intervalZ()*g.ResidSD})
		}
		if len(curve.Points) > 1 {
			set.ExecTimeVsNodes.Series = append(set.ExecTimeVsNodes.Series, band, curve)
		}

		// ExecTimeVsCost: the synthesized (time, cost) points at grid holes.
		var costSeries plot.Series
		costSeries.Name = name
		costSeries.Scatter = true
		costSeries.Dashed = true
		for _, r := range synthesize(g, grid, cfg) {
			costSeries.Points = append(costSeries.Points, plot.XY{X: r.ExecTimeSec, Y: r.CostUSD})
		}
		sort.Slice(costSeries.Points, func(a, b int) bool { return costSeries.Points[a].X < costSeries.Points[b].X })
		if len(costSeries.Points) > 0 {
			set.ExecTimeVsCost.Series = append(set.ExecTimeVsCost.Series, costSeries)
		}
	}
	return set
}

package core

import (
	"strings"
	"testing"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/predictor"
)

// collectSweep runs a real collection on the simulated cloud and returns
// the advisor with its dataset populated.
func collectSweep(t *testing.T, app string, skus []string, nnodes, inputs string) *Advisor {
	t.Helper()
	adv := New("mysubscription")
	cfg := testConfig(t, app, skus, nnodes, inputs)
	dep, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Collect(dep.Name, cfg, CollectOptions{}); err != nil {
		t.Fatal(err)
	}
	return adv
}

func TestPredictedAdviceExtendsSweep(t *testing.T) {
	// Collect to 8 nodes, predict to 32: the merged front must carry marked
	// predicted rows at node counts never collected.
	adv := collectSweep(t, "lammps", []string{"Standard_HB120rs_v3", "Standard_HC44rs"},
		"[1, 2, 4, 8]", "  BOXFACTOR: \"12\"\n")
	f := dataset.Filter{AppName: "lammps"}
	cfg := adv.PredictorConfig("southcentralus", []int{1, 2, 4, 8, 16, 32})

	rows := adv.PredictedAdvice(f, pareto.ByTime, cfg)
	if len(rows) == 0 {
		t.Fatal("no predicted advice")
	}
	var predicted int
	for _, r := range rows {
		if r.Predicted {
			predicted++
			if r.NNodes != 16 && r.NNodes != 32 {
				t.Errorf("predicted row at collected node count %d", r.NNodes)
			}
			if !strings.HasPrefix(r.ScenarioID, predictor.PredictedIDPrefix) {
				t.Errorf("predicted row ID %q unmarked", r.ScenarioID)
			}
		}
	}
	if predicted == 0 {
		t.Error("no predicted rows reached the merged front")
	}

	table := adv.PredictedAdviceTable(f, pareto.ByTime, cfg)
	if !strings.Contains(table, "measured") || !strings.Contains(table, "predicted/") {
		t.Errorf("table does not mark provenance:\n%s", table)
	}

	// Consistency: with the grid fully measured, predicted advice is the
	// measured advice — no phantom rows.
	full := adv.PredictorConfig("southcentralus", []int{1, 2, 4, 8})
	measured := adv.Advice(f, pareto.ByTime)
	merged := adv.PredictedAdvice(f, pareto.ByTime, full)
	if len(merged) != len(measured) {
		t.Fatalf("fully measured grid: merged %d rows, measured %d", len(merged), len(measured))
	}
	for i := range merged {
		if merged[i].Predicted || merged[i].ScenarioID != measured[i].ScenarioID {
			t.Errorf("row %d diverges: %+v vs %s", i, merged[i], measured[i].ScenarioID)
		}
	}
}

func TestBacktestOnBuiltinAppModels(t *testing.T) {
	// The acceptance bar for trusting predictions at all: on the built-in
	// synthetic application models, leave-one-out MAPE per model family
	// stays under 15%.
	for _, tc := range []struct {
		app, inputs string
	}{
		{"lammps", "  BOXFACTOR: \"12\"\n"},
		{"openfoam", "  BLOCKMESH_DIMENSIONS: \"40 16 16\"\n"},
	} {
		adv := collectSweep(t, tc.app, []string{"Standard_HB120rs_v3", "Standard_HC44rs"},
			"[1, 2, 4, 8, 16]", tc.inputs)
		rep := adv.Backtest(dataset.Filter{AppName: tc.app}, adv.PredictorConfig("southcentralus", nil))
		if rep.Groups == 0 || rep.Held == 0 {
			t.Fatalf("%s: empty backtest %+v", tc.app, rep)
		}
		if rep.AmdahlMAPE >= 15 {
			t.Errorf("%s: amdahl MAPE = %.1f%%, want < 15%%", tc.app, rep.AmdahlMAPE)
		}
		if rep.PowerLawMAPE >= 15 {
			t.Errorf("%s: powerlaw MAPE = %.1f%%, want < 15%%", tc.app, rep.PowerLawMAPE)
		}
		if rep.SelectedMAPE >= 15 {
			t.Errorf("%s: selected-model MAPE = %.1f%%, want < 15%%", tc.app, rep.SelectedMAPE)
		}
		t.Logf("%s: %s", tc.app, rep)
	}
}

func TestPredictedPlotsCarryOverlay(t *testing.T) {
	adv := collectSweep(t, "lammps", []string{"Standard_HB120rs_v3"},
		"[1, 2, 4, 8]", "  BOXFACTOR: \"12\"\n")
	f := dataset.Filter{AppName: "lammps"}
	cfg := adv.PredictorConfig("southcentralus", []int{1, 2, 4, 8, 16, 32})
	base := adv.Plots(f)
	over := adv.PredictedPlots(f, cfg)
	if len(over.ExecTimeVsNodes.Series) <= len(base.ExecTimeVsNodes.Series) {
		t.Error("exectime plot gained no predicted series")
	}
	if len(over.ExecTimeVsCost.Series) <= len(base.ExecTimeVsCost.Series) {
		t.Error("cost plot gained no predicted series")
	}
}

package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hpcadvisor/internal/config"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/scenario"
)

func testConfig(t *testing.T, appname string, skus []string, nnodes string, inputs string) *config.Config {
	t.Helper()
	doc := "subscription: mysubscription\n" +
		"skus:\n"
	for _, s := range skus {
		doc += "  - " + s + "\n"
	}
	doc += "rgprefix: coretest\n" +
		"nnodes: " + nnodes + "\n" +
		"appname: " + appname + "\n" +
		"region: southcentralus\n" +
		"ppr: 100\n"
	if inputs != "" {
		doc += "appinputs:\n" + inputs
	}
	cfg, err := config.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestEndToEndPipeline(t *testing.T) {
	adv := New("mysubscription")
	cfg := testConfig(t, "lammps", []string{"Standard_HB120rs_v3", "Standard_HC44rs"},
		"[1, 2, 4]", "  BOXFACTOR: \"12\"\n")

	dep, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := adv.Collect(dep.Name, cfg, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 6 {
		t.Fatalf("completed = %d, want 6", report.Completed)
	}
	if report.CollectionCostUSD <= 0 {
		t.Error("collection must cost money")
	}
	if adv.Store.Len() != 6 {
		t.Fatalf("dataset = %d points", adv.Store.Len())
	}

	// Plots have data.
	plots := adv.Plots(dataset.Filter{AppName: "lammps"})
	for _, p := range plots.All() {
		if p.Empty() {
			t.Errorf("plot %q is empty", p.Title)
		}
	}
	if len(plots.All()) != 5 {
		t.Errorf("plot set = %d, want 5", len(plots.All()))
	}

	// Advice is a valid non-empty front.
	advice := adv.Advice(dataset.Filter{AppName: "lammps"}, pareto.ByTime)
	if len(advice) == 0 {
		t.Fatal("no advice")
	}
	table := adv.AdviceTable(dataset.Filter{AppName: "lammps"}, pareto.ByTime)
	if !strings.Contains(table, "Exectime(s)") || !strings.Contains(table, "hb120rs_v3") {
		t.Errorf("table = %q", table)
	}
}

func TestDeployLifecycle(t *testing.T) {
	adv := New("mysubscription")
	cfg := testConfig(t, "lammps", []string{"Standard_HB120rs_v3"}, "[1]", "")
	d1, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Deployments()) != 2 {
		t.Fatalf("deployments = %v", adv.Deployments())
	}
	invs, err := adv.DeployList("mysubscription", "coretest")
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 2 {
		t.Errorf("list = %d", len(invs))
	}
	if err := adv.DeployShutdown("mysubscription", d1.Name); err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Deployment(d1.Name); err == nil {
		t.Error("shut-down deployment still registered")
	}
	if _, err := adv.Deployment(d2.Name); err != nil {
		t.Error("other deployment lost")
	}
}

func TestRestoreDeployment(t *testing.T) {
	adv1 := New("mysubscription")
	cfg := testConfig(t, "lammps", []string{"Standard_HB120rs_v3"}, "[1, 2]", "")
	d, err := adv1.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// A new process restores the recorded deployment and collects on it.
	adv2 := New("mysubscription")
	if err := adv2.RestoreDeployment(d); err != nil {
		t.Fatal(err)
	}
	if _, err := adv2.Deployment(d.Name); err != nil {
		t.Fatal(err)
	}
	if _, err := adv2.Collect(d.Name, cfg, CollectOptions{}); err != nil {
		t.Fatal(err)
	}
	if adv2.Store.Len() != 2 {
		t.Errorf("restored collect points = %d", adv2.Store.Len())
	}
	// Restoring twice is rejected.
	if err := adv2.RestoreDeployment(d); err == nil {
		t.Error("double restore should fail")
	}
}

func TestCollectUnknownDeployment(t *testing.T) {
	adv := New("mysubscription")
	cfg := testConfig(t, "lammps", []string{"Standard_HB120rs_v3"}, "[1]", "")
	if _, err := adv.Collect("ghost", cfg, CollectOptions{}); err == nil {
		t.Error("unknown deployment should fail")
	}
}

func TestCollectResumesTaskList(t *testing.T) {
	adv := New("mysubscription")
	cfg := testConfig(t, "lammps", []string{"Standard_HB120rs_v3"}, "[1, 2]", "")
	dep, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Collect(dep.Name, cfg, CollectOptions{}); err != nil {
		t.Fatal(err)
	}
	// Second collect has nothing pending.
	report, err := adv.Collect(dep.Name, cfg, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 0 {
		t.Errorf("resume completed = %d, want 0", report.Completed)
	}
	if adv.Store.Len() != 2 {
		t.Errorf("points duplicated: %d", adv.Store.Len())
	}
	// A saved task list can be installed for resumption.
	list := adv.TaskList(dep.Name)
	if list == nil {
		t.Fatal("task list missing")
	}
	list.Tasks[0].Status = scenario.StatusPending
	adv.SetTaskList(dep.Name, list)
	report, err = adv.Collect(dep.Name, cfg, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 1 {
		t.Errorf("resumed completed = %d, want 1", report.Completed)
	}
}

func TestSamplerByName(t *testing.T) {
	adv := New("mysubscription")
	for _, name := range []string{"", "full", "discard", "perffactor", "bottleneck", "combined"} {
		if _, err := adv.SamplerByName(name, "southcentralus"); err != nil {
			t.Errorf("SamplerByName(%q): %v", name, err)
		}
	}
	if _, err := adv.SamplerByName("magic", "southcentralus"); err == nil {
		t.Error("unknown sampler should fail")
	}
}

func TestCollectWithDiscardSamplerSkips(t *testing.T) {
	adv := New("mysubscription")
	// hc44rs is thoroughly dominated by hb120rs_v3 on this workload, so
	// aggressive discarding must skip part of its sweep.
	cfg := testConfig(t, "lammps", []string{"Standard_HB120rs_v3", "Standard_HC44rs"},
		"[1, 2, 4, 8, 16]", "  BOXFACTOR: \"20\"\n")
	dep, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := adv.Collect(dep.Name, cfg, CollectOptions{Sampler: "discard"})
	if err != nil {
		t.Fatal(err)
	}
	if report.Skipped == 0 {
		t.Error("discard sampler skipped nothing")
	}
	// The front from the reduced run must still be entirely hb120rs_v3.
	for _, p := range adv.Advice(dataset.Filter{}, pareto.ByTime) {
		if p.SKUAlias != "hb120rs_v3" {
			t.Errorf("front contains %s", p.SKUAlias)
		}
	}
}

func TestWritePlotsSVG(t *testing.T) {
	adv := New("mysubscription")
	cfg := testConfig(t, "matmul", []string{"Standard_D64s_v5"}, "[1, 2]", "  MATRIXSIZE: \"2048\"\n")
	dep, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Collect(dep.Name, cfg, CollectOptions{}); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "plots")
	paths, err := adv.WritePlotsSVG(dir, dataset.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Errorf("%s is not SVG", p)
		}
	}
}

func TestProgressCallbackPlumbed(t *testing.T) {
	adv := New("mysubscription")
	cfg := testConfig(t, "lammps", []string{"Standard_HB120rs_v3"}, "[1]", "")
	dep, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if _, err := adv.Collect(dep.Name, cfg, CollectOptions{
		Progress: func(task *scenario.Task) { calls++ },
	}); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("progress callback never invoked")
	}
}

package core

import (
	"bytes"
	"os"
	osexec "os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hpcadvisor/internal/plot"
)

// svgCrashPayloads are two distinguishable multi-megabyte bodies: big
// enough that a non-atomic write is overwhelmingly likely to be mid-flight
// when the SIGKILL lands, so reverting writeSVGs to raw os.WriteFile makes
// the torn-file check below fail.
func svgCrashPayloads() [][]byte {
	const size = 4 << 20
	a := bytes.Repeat([]byte("<svg>AAAAAAA</svg>\n"), size/19+1)
	b := bytes.Repeat([]byte("<svg>BBBBBBB</svg>\n"), size/19+1)
	return [][]byte{a, b}
}

// TestHelperSVGWriterProcess is the crash victim: re-executed as a child
// process, it rewrites the full SVG set in a tight loop, alternating
// between the two payloads, until it is killed.
func TestHelperSVGWriterProcess(t *testing.T) {
	dir := os.Getenv("HPCADVISOR_SVGCRASH_DIR")
	if dir == "" {
		t.Skip("helper process for TestWritePlotsSVGCrashSafety")
	}
	payloads := svgCrashPayloads()
	for i := 0; ; i++ {
		p := payloads[i%2]
		if _, err := writeSVGs(dir, func(string) ([]byte, error) { return p, nil }); err != nil {
			t.Fatalf("writeSVGs: %v", err)
		}
	}
}

// TestWritePlotsSVGCrashSafety is the regression test for the raw
// os.WriteFile state write that used to live in writeSVGs (core.go:450):
// it SIGKILLs a child that is continuously rewriting the plot set and
// asserts every surviving .svg is byte-identical to one of the two
// payloads — never truncated, never interleaved. fsatomic staging files
// (*.tmp-*) may survive the kill; they are the mechanism, not a tear.
func TestWritePlotsSVGCrashSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	payloads := svgCrashPayloads()
	for round, delay := range []time.Duration{
		20 * time.Millisecond, 35 * time.Millisecond, 50 * time.Millisecond,
		65 * time.Millisecond, 80 * time.Millisecond,
	} {
		dir := t.TempDir()
		cmd := osexec.Command(os.Args[0], "-test.run=^TestHelperSVGWriterProcess$")
		cmd.Env = append(os.Environ(), "HPCADVISOR_SVGCRASH_DIR="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatalf("round %d: start helper: %v", round, err)
		}
		time.Sleep(delay)
		if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
			t.Fatalf("round %d: kill helper: %v", round, err)
		}
		_ = cmd.Wait()

		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("round %d: read dir: %v", round, err)
		}
		svgs := 0
		for _, e := range entries {
			name := e.Name()
			if strings.Contains(name, ".tmp-") {
				continue // fsatomic staging file abandoned by the kill
			}
			if !strings.HasSuffix(name, ".svg") {
				t.Errorf("round %d: unexpected file %s", round, name)
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatalf("round %d: read %s: %v", round, name, err)
			}
			if !bytes.Equal(data, payloads[0]) && !bytes.Equal(data, payloads[1]) {
				t.Errorf("round %d: %s is torn: %d bytes, neither payload (A=%d B=%d bytes)",
					round, name, len(data), len(payloads[0]), len(payloads[1]))
			}
			svgs++
		}
		// The helper must have gotten far enough for the check to mean
		// something; a full set is len(plot.SetNames) files.
		if round >= 2 && svgs == 0 {
			t.Errorf("round %d: helper produced no SVGs before the kill; check is vacuous", round)
		}
		_ = plot.SetNames
	}
}

// Package core wires the HPCAdvisor pipeline together: configuration ->
// deployment -> scenario generation -> data collection -> plots and advice.
// It is the programmatic equivalent of the paper's Figure 1 and the engine
// behind the CLI, the GUI, and the public hpcadvisor package.
//
// The back-end (cloud control plane + batch orchestrator) is the simulated
// substrate from internal/cloudsim and internal/batchsim; as the paper notes
// for its Azure Batch back-end, "this back-end can be replaced" — all
// interaction goes through those two packages' narrow surfaces.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"hpcadvisor/internal/appmodel"
	"hpcadvisor/internal/batchsim"
	"hpcadvisor/internal/catalog"
	"hpcadvisor/internal/cloudsim"
	"hpcadvisor/internal/collector"
	"hpcadvisor/internal/config"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/deploy"
	"hpcadvisor/internal/fsatomic"
	"hpcadvisor/internal/monitor"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/plot"
	"hpcadvisor/internal/predictor"
	"hpcadvisor/internal/pricing"
	"hpcadvisor/internal/queryengine"
	"hpcadvisor/internal/recipes"
	"hpcadvisor/internal/sampler"
	"hpcadvisor/internal/scenario"
	"hpcadvisor/internal/storage"
	"hpcadvisor/internal/vclock"
)

// Advisor is the top-level façade over the whole pipeline.
type Advisor struct {
	Clock    *vclock.Clock
	Cloud    *cloudsim.Cloud
	Catalog  *catalog.Catalog
	Prices   *pricing.PriceBook
	Apps     *appmodel.Registry
	Deployer *deploy.Manager
	Store    *dataset.Store

	// Collection accumulates resilience counters (attempts by failure
	// class, retries, breaker state, resume accounting) across every
	// collection run on this advisor; the API exposes them on /metrics.
	Collection *monitor.CollectionStats

	// Backend is the storage engine the Store writes through when the
	// advisor was opened over a persistent dataset (OpenStore); nil for a
	// purely in-memory advisor.
	Backend storage.Backend

	// mu guards the registry maps below and — held for the duration of a
	// collection — the task structs the collector mutates, so concurrent
	// readers (the API's /scenarios, the GUI's deployment pages) can never
	// race a live collect. Dataset serving does not touch the registry and
	// never blocks on it.
	mu          sync.RWMutex
	deployments map[string]*deploy.Deployment // guarded-by: mu
	services    map[string]*batchsim.Service  // guarded-by: mu
	lists       map[string]*scenario.List     // guarded-by: mu

	// engMu guards the lazily (re)bound query engine; see Engine.
	engMu    sync.Mutex
	eng      *queryengine.Engine // guarded-by: engMu
	engStore *dataset.Store      // guarded-by: engMu
}

// New creates an advisor bound to one cloud subscription, with the default
// catalog, prices, and application registry.
func New(subscriptionID string) *Advisor {
	clock := vclock.New()
	cat := catalog.Default()
	cloud := cloudsim.New(clock, cat, subscriptionID)
	return &Advisor{
		Clock:       clock,
		Cloud:       cloud,
		Catalog:     cat,
		Prices:      pricing.Default(),
		Apps:        appmodel.NewRegistry(),
		Deployer:    deploy.NewManager(cloud),
		Store:       dataset.NewStore(),
		Collection:  monitor.NewCollectionStats(),
		deployments: make(map[string]*deploy.Deployment),
		services:    make(map[string]*batchsim.Service),
		lists:       make(map[string]*scenario.List),
	}
}

// Engine returns the query engine serving advice and plot requests over
// the advisor's dataset. It is bound lazily and rebound whenever the Store
// field was swapped (the CLI does this when rehydrating state), so cached
// results can never leak across datasets. The engine is safe for concurrent
// use — the GUI serves every read request through it.
func (a *Advisor) Engine() *queryengine.Engine {
	a.engMu.Lock()
	defer a.engMu.Unlock()
	if a.eng == nil || a.engStore != a.Store {
		a.eng = queryengine.New(a.Store, queryengine.DefaultCacheEntries)
		a.engStore = a.Store
	}
	return a.eng
}

// SetStore replaces the advisor's dataset; subsequent queries serve from
// the new store through a fresh query engine.
func (a *Advisor) SetStore(s *dataset.Store) {
	a.engMu.Lock()
	defer a.engMu.Unlock()
	a.Store = s
	a.eng = queryengine.New(s, queryengine.DefaultCacheEntries)
	a.engStore = s
}

// OpenStore loads the dataset persisted at path (auto-detecting the JSONL
// or segment format) and attaches its storage backend, so every point a
// collection appends is written through durably as it lands. Close with
// CloseStore when done.
func (a *Advisor) OpenStore(path string) error {
	st, b, err := storage.Open(path)
	if err != nil {
		return err
	}
	// Prewarm the read path: force the first snapshot build (canonical
	// sort, inverted indexes, columns, hot Pareto fronts) at open time, so
	// the one-off cost lands here instead of on the first advice request.
	// When the backend supplied a full-coverage snapshot segment this is a
	// no-op — the seeded store already built everything from the on-disk
	// PointLess order.
	st.Snapshot()
	a.SetStore(st)
	a.Backend = b
	return nil
}

// CloseStore flushes and releases the attached storage backend. The store
// itself stays usable in memory (appends just no longer persist).
func (a *Advisor) CloseStore() error {
	if a.Backend == nil {
		return nil
	}
	err := a.Store.Flush()
	a.Store.Attach(nil)
	if cerr := a.Backend.Close(); err == nil {
		err = cerr
	}
	a.Backend = nil
	return err
}

// DeployCreate provisions a new environment from the configuration
// (Table II: "deploy create").
func (a *Advisor) DeployCreate(cfg *config.Config) (*deploy.Deployment, error) {
	d, err := a.Deployer.Create(cfg.DeploySpec())
	if err != nil {
		return nil, err
	}
	a.adopt(d)
	return d, nil
}

// adopt registers a deployment and its batch service.
func (a *Advisor) adopt(d *deploy.Deployment) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.deployments[d.Name] = d
	a.services[d.Name] = batchsim.New(a.Clock, a.Cloud, d.SubscriptionID, d.Name)
}

// RestoreDeployment re-registers a previously created deployment (e.g. one
// recorded in a state file by the CLI) by re-provisioning its resources
// under the exact recorded names.
func (a *Advisor) RestoreDeployment(d *deploy.Deployment) error {
	a.mu.RLock()
	_, registered := a.deployments[d.Name]
	a.mu.RUnlock()
	if registered {
		return fmt.Errorf("core: deployment %q already registered", d.Name)
	}
	if _, err := a.Cloud.CreateResourceGroup(d.SubscriptionID, d.Name, d.Region); err != nil {
		return err
	}
	if _, err := a.Cloud.CreateVNet(d.SubscriptionID, d.Name, d.VNet, "10.0.0.0/16"); err != nil {
		return err
	}
	if _, err := a.Cloud.CreateSubnet(d.SubscriptionID, d.Name, d.VNet, d.Subnet, "10.0.0.0/20"); err != nil {
		return err
	}
	if _, err := a.Cloud.CreateStorageAccount(d.SubscriptionID, d.Name, d.StorageAccount); err != nil {
		return err
	}
	if _, err := a.Cloud.CreateBatchAccount(d.SubscriptionID, d.Name, d.BatchAccount, d.StorageAccount); err != nil {
		return err
	}
	a.adopt(d)
	return nil
}

// DeployList lists deployments by resource-group prefix (Table II:
// "deploy list").
func (a *Advisor) DeployList(subscriptionID, prefix string) ([]cloudsim.Inventory, error) {
	return a.Deployer.List(subscriptionID, prefix)
}

// DeployShutdown deletes a deployment and all its resources (Table II:
// "deploy shutdown").
func (a *Advisor) DeployShutdown(subscriptionID, name string) error {
	if err := a.Deployer.Shutdown(subscriptionID, name); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.deployments, name)
	delete(a.services, name)
	delete(a.lists, name)
	return nil
}

// Deployment returns a registered deployment.
func (a *Advisor) Deployment(name string) (*deploy.Deployment, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if d, ok := a.deployments[name]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("core: unknown deployment %q", name)
}

// Deployments lists registered deployment names, sorted.
func (a *Advisor) Deployments() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.deployments))
	for n := range a.deployments {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SamplerByName resolves the smart-sampling strategy names exposed on the
// CLI: "full", "discard", "perffactor", "bottleneck", "combined".
func (a *Advisor) SamplerByName(name, region string) (collector.Planner, error) {
	switch name {
	case "", "full":
		return sampler.Full{}, nil
	case "discard":
		return sampler.AggressiveDiscard{}, nil
	case "perffactor":
		return sampler.PerfFactor{Prices: a.Prices, Region: region}, nil
	case "bottleneck":
		return sampler.BottleneckAware{}, nil
	case "combined":
		c := sampler.Composite{}
		c.Planners = append(c.Planners,
			sampler.AggressiveDiscard{},
			sampler.PerfFactor{Prices: a.Prices, Region: region},
			sampler.BottleneckAware{},
		)
		return c, nil
	}
	return nil, fmt.Errorf("core: unknown sampler %q (want full, discard, perffactor, bottleneck, or combined)", name)
}

// CollectOptions tune a collection run.
type CollectOptions struct {
	// Sampler is a strategy name for SamplerByName; empty means full sweep.
	Sampler string
	// Planner overrides Sampler with an explicit strategy.
	Planner collector.Planner
	// DeletePoolAfter deletes pools instead of resizing to zero.
	DeletePoolAfter bool
	// MaxAttempts retries failing scenarios.
	MaxAttempts int
	// Progress observes task state changes.
	Progress func(t *scenario.Task)
	// UseSpot collects on spot capacity (cheaper, preemptible); pair with
	// MaxAttempts > 1 so preempted scenarios are retried.
	UseSpot bool
	// MaxParallelPools runs up to this many VM-type pool lanes concurrently
	// during collection (the CLI's --parallel-pools). Zero or one keeps the
	// paper's sequential walk; higher values cut time-to-advice on
	// multi-SKU sweeps while producing an identical dataset and report.
	MaxParallelPools int
	// Journal, when set, makes the sweep crash-resumable: every attempt and
	// outcome is recorded durably as the run progresses.
	Journal *collector.Journal
	// Resume replays a previously journaled sweep, re-executing only the
	// work that never became durable. The journal's sweep parameters must
	// match this run's (spot, attempts).
	Resume *collector.Replay
	// Interrupt stops the run cleanly at the next task boundary when it
	// becomes readable (e.g. a canceled context's Done channel).
	Interrupt <-chan struct{}
	// Backoff and Breaker tune the failure taxonomy's retry delays and the
	// per-SKU circuit breaker; zero values take the defaults.
	Backoff collector.BackoffPolicy
	Breaker collector.BreakerPolicy
}

// Collect generates (or resumes) the scenario list for the configuration
// and runs the data-collection phase on the named deployment (Table II:
// "collect").
func (a *Advisor) Collect(deploymentName string, cfg *config.Config, opts CollectOptions) (*collector.Report, error) {
	// The write lock is held across the whole run: the collector mutates
	// the task list's statuses throughout, and concurrent registry readers
	// (ScenarioTasks, the deployment pages) must observe either the state
	// before the collection or after it, never a torn middle. Advice and
	// plot serving reads dataset snapshots, not the registry, so it keeps
	// flowing during a collect.
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.deployments[deploymentName]
	if !ok {
		return nil, fmt.Errorf("core: unknown deployment %q", deploymentName)
	}
	svc := a.services[deploymentName]

	var err error
	list := a.lists[deploymentName]
	if list == nil {
		list, err = scenario.Generate(cfg.ScenarioSpec(), a.Catalog)
		if err != nil {
			return nil, err
		}
		a.lists[deploymentName] = list
	} else {
		list.ResetRunning()
	}

	planner := opts.Planner
	if planner == nil {
		planner, err = a.SamplerByName(opts.Sampler, d.Region)
		if err != nil {
			return nil, err
		}
	}
	if opts.Resume != nil && opts.Resume.Begun {
		// Sweep parameters shape the replay (retry budgets, spot draws):
		// resuming under different ones would not reconverge on the
		// uninterrupted run's dataset.
		if opts.Resume.Spot != opts.UseSpot {
			return nil, fmt.Errorf("core: resume: journal was collected with spot=%v, this run has spot=%v", opts.Resume.Spot, opts.UseSpot)
		}
		attempts := opts.MaxAttempts
		if attempts < 1 {
			attempts = 1
		}
		if opts.Resume.MaxAttempts != attempts {
			return nil, fmt.Errorf("core: resume: journal was collected with attempts=%d, this run has attempts=%d", opts.Resume.MaxAttempts, attempts)
		}
	}
	opts.Resume.Apply(list)
	col := collector.New(svc, a.Apps, a.Prices, a.Catalog, d.Region, d.Name)
	return col.Run(list, a.Store, collector.Options{
		DeletePoolAfter:  opts.DeletePoolAfter,
		MaxAttempts:      opts.MaxAttempts,
		Planner:          planner,
		Progress:         opts.Progress,
		UseSpot:          opts.UseSpot,
		MaxParallelPools: opts.MaxParallelPools,
		Journal:          opts.Journal,
		Resume:           opts.Resume,
		Interrupt:        opts.Interrupt,
		Backoff:          opts.Backoff,
		Breaker:          opts.Breaker,
		Stats:            a.Collection,
	})
}

// TaskList returns the scenario list of a deployment (nil if no collection
// was started). The returned list is the live one the collector mutates;
// callers reading it concurrently with a possible collection should use
// ScenarioTasks instead.
func (a *Advisor) TaskList(deploymentName string) *scenario.List {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.lists[deploymentName]
}

// ScenarioTasks returns a copy of the deployment's task states taken under
// the registry lock — safe to render or marshal while a concurrent
// collection mutates the live tasks (the lock serializes against Collect).
// Nil means no collection was started.
func (a *Advisor) ScenarioTasks(deploymentName string) []scenario.Task {
	a.mu.RLock()
	defer a.mu.RUnlock()
	list := a.lists[deploymentName]
	if list == nil {
		return nil
	}
	out := make([]scenario.Task, len(list.Tasks))
	for i, t := range list.Tasks {
		out[i] = *t
	}
	return out
}

// SetTaskList installs a previously saved scenario list (resume). A nil
// list clears the deployment's list, so the next Collect regenerates it.
func (a *Advisor) SetTaskList(deploymentName string, list *scenario.List) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if list == nil {
		delete(a.lists, deploymentName)
		return
	}
	a.lists[deploymentName] = list
}

// PlotSet is the full set of plots the tool generates for a filter
// (Section III-D's four plots plus the Figure 6 Pareto scatter).
type PlotSet = plot.Set

// Plots computes the plot set over the dataset (Table II: "plot"), served
// and memoized by the query engine.
func (a *Advisor) Plots(f dataset.Filter) PlotSet {
	return a.Engine().PlotSet(f)
}

// WritePlotsSVG renders the plot set into dir and returns the file paths.
// When using the CLI, "the plots are generated in the current folder"
// (paper Section III-D).
func (a *Advisor) WritePlotsSVG(dir string, f dataset.Filter) ([]string, error) {
	eng := a.Engine()
	return writeSVGs(dir, func(name string) ([]byte, error) { return eng.SVG(name, f) })
}

// WritePredictedPlotsSVG renders the overlaid plot set into dir and returns
// the file paths, served from the engine's predicted-SVG cache.
func (a *Advisor) WritePredictedPlotsSVG(dir string, f dataset.Filter, cfg predictor.Config) ([]string, error) {
	eng := a.Engine()
	return writeSVGs(dir, func(name string) ([]byte, error) { return eng.PredictedSVG(name, f, cfg) })
}

// writeSVGs renders every plot of the set through render and writes one
// .svg file per canonical plot name into dir. Writes are atomic
// (fsatomic): a crash or failed render mid-set leaves each output either
// absent or complete from a previous run, never torn, so a dashboard
// re-reading the directory cannot pick up half an SVG.
func writeSVGs(dir string, render func(name string) ([]byte, error)) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, name := range plot.SetNames {
		data, err := render(name)
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, name+".svg")
		if err := fsatomic.WriteFile(path, data, 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// Advice computes the Pareto front over the filtered dataset, ordered by
// execution time or cost (Table II: "advice"; Section III-E), served and
// memoized by the query engine.
func (a *Advisor) Advice(f dataset.Filter, order pareto.SortOrder) []dataset.Point {
	return a.Engine().Advice(f, order)
}

// AdviceTable renders the advice exactly as the paper's Listings 3-4.
func (a *Advisor) AdviceTable(f dataset.Filter, order pareto.SortOrder) string {
	return a.Engine().AdviceTable(f, order)
}

// PredictorConfig builds the predictor configuration for this advisor's
// price book: region prices the synthesized points, grid sets the node
// counts predicted at (nil derives the default doubling grid from the
// measured data).
func (a *Advisor) PredictorConfig(region string, grid []int) predictor.Config {
	return predictor.Config{Prices: a.Prices, Region: region, Grid: grid}
}

// PredictedAdvice returns the merged measured+predicted Pareto front: the
// paper's Section III-F "minimal or no executions" advice. Predicted rows
// are marked (Row.Predicted, "pred-" scenario IDs) and synthesized only at
// (SKU, node count) holes, so no predicted row ever replaces or contradicts
// a measurement of the same scenario; on the merged front a prediction can
// still out-compete a measured row of a different scenario — that is the
// point — and stays visibly marked when it does. Served and memoized by the
// query engine.
func (a *Advisor) PredictedAdvice(f dataset.Filter, order pareto.SortOrder, cfg predictor.Config) []predictor.Row {
	return a.Engine().PredictedAdvice(f, order, cfg)
}

// PredictedAdviceTable renders the merged advice with Source markings.
func (a *Advisor) PredictedAdviceTable(f dataset.Filter, order pareto.SortOrder, cfg predictor.Config) string {
	return a.Engine().PredictedAdviceTable(f, order, cfg)
}

// PredictedPlots computes the plot set with predicted overlays (fitted
// curves and interval bands) on the exectime and cost plots.
func (a *Advisor) PredictedPlots(f dataset.Filter, cfg predictor.Config) PlotSet {
	return a.Engine().PredictedPlotSet(f, cfg)
}

// Backtest reports the predictor's leave-one-out accuracy per model family
// over the filtered dataset.
func (a *Advisor) Backtest(f dataset.Filter, cfg predictor.Config) predictor.BacktestReport {
	return a.Engine().Backtest(f, cfg)
}

// RepriceAdvice recomputes scenario costs under different pricing terms —
// another region, or spot instead of on-demand — without re-running
// anything (cost is nodes x time x hourly/3600, and times are already
// measured), then returns the resulting Pareto front. This answers the
// what-if questions a user has after one collection: "what would the advice
// be in westeurope?", "what if I run production on spot?".
func (a *Advisor) RepriceAdvice(f dataset.Filter, order pareto.SortOrder, region string, spot bool) ([]dataset.Point, error) {
	pts := a.Engine().Select(f)
	// A sweep has few distinct VM types but many points per type: look each
	// SKU's hourly rate up once, not once per point.
	rates := make(map[string]float64)
	repriced := make([]dataset.Point, 0, len(pts))
	for _, p := range pts {
		hourly, ok := rates[p.SKU]
		if !ok {
			var err error
			if spot {
				hourly, err = a.Prices.HourlySpot(region, p.SKU)
			} else {
				hourly, err = a.Prices.Hourly(region, p.SKU)
			}
			if err != nil {
				return nil, err
			}
			rates[p.SKU] = hourly
		}
		p.CostUSD = pricing.CostAt(hourly, p.NNodes, p.ExecTimeSec)
		repriced = append(repriced, p)
	}
	return pareto.Advice(repriced, order), nil
}

// AdviceRecipes renders runnable artifacts for every advice row — a Slurm
// job script plus a cluster recipe — the paper's "comprehensive advice"
// extension (Section I: "recipes to run jobs (e.g., Slurm scripts) or
// computing environment creation").
func (a *Advisor) AdviceRecipes(f dataset.Filter, order pareto.SortOrder, region string) (string, error) {
	return a.RecipesFor(a.Advice(f, order), region)
}

// RecipesFor renders the recipe bundle for explicit advice rows, so callers
// serving a different front (e.g. the merged predicted one) emit recipes
// for exactly the rows they displayed.
func (a *Advisor) RecipesFor(rows []dataset.Point, region string) (string, error) {
	var b strings.Builder
	for i, row := range rows {
		sku, err := a.Catalog.Lookup(row.SKU)
		if err != nil {
			return "", err
		}
		hourly, err := a.Prices.Hourly(region, row.SKU)
		if err != nil {
			return "", err
		}
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(recipes.Bundle(row, sku, hourly))
	}
	return b.String(), nil
}

package core

import (
	"errors"
	"fmt"

	"hpcadvisor/internal/collector"
	"hpcadvisor/internal/config"
	"hpcadvisor/internal/sampler"
	"hpcadvisor/internal/scenario"
)

// CollectAdaptive is the budget-driven collection mode: instead of sweeping
// the task list in order, each step asks the stand-alone planner
// (sampler.PlanNext) for the scenario with the best expected Pareto
// information gain per dollar, runs exactly that scenario, and stops when
// the accumulated collection cost reaches budgetUSD or no candidates
// remain. This realizes the paper's Section III-F goal of obtaining the
// advice "with minimal or no executions in the cloud" under an explicit
// spending cap.
//
// Pool reuse across steps is weaker than in the ordered sweep (the planner
// may alternate VM types), so adaptive mode trades some extra node
// provisioning for running far fewer scenarios.
func (a *Advisor) CollectAdaptive(deploymentName string, cfg *config.Config, budgetUSD float64, opts CollectOptions) (*collector.Report, error) {
	if budgetUSD <= 0 {
		return nil, fmt.Errorf("core: adaptive collection needs a positive budget, got %.2f", budgetUSD)
	}
	// Held across the run for the same reason as Collect: the planner and
	// collector mutate task statuses throughout, and registry readers must
	// never observe a torn middle.
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.deployments[deploymentName]
	if !ok {
		return nil, fmt.Errorf("core: unknown deployment %q", deploymentName)
	}
	svc := a.services[deploymentName]

	var err error
	list := a.lists[deploymentName]
	if list == nil {
		list, err = scenario.Generate(cfg.ScenarioSpec(), a.Catalog)
		if err != nil {
			return nil, err
		}
		a.lists[deploymentName] = list
	} else {
		list.ResetRunning()
	}

	col := collector.New(svc, a.Apps, a.Prices, a.Catalog, d.Region, d.Name)
	agg := &collector.Report{NodeSecondsBySKU: make(map[string]float64)}
	start := svc.Clock.Now()

	spent := func() (float64, error) {
		total := 0.0
		for sku, ns := range svc.NodeSecondsBySKU() {
			var hourly float64
			var err error
			if opts.UseSpot {
				hourly, err = a.Prices.HourlySpot(d.Region, sku)
			} else {
				hourly, err = a.Prices.Hourly(d.Region, sku)
			}
			if err != nil {
				return 0, err
			}
			total += ns * hourly / 3600
		}
		return total, nil
	}

	for {
		used, err := spent()
		if err != nil {
			return agg, err
		}
		if used >= budgetUSD {
			break
		}
		ranked := sampler.PlanNext(a.Store, list.Pending(), a.Prices, d.Region, 1)
		if len(ranked) == 0 {
			break
		}
		sub := &scenario.List{Tasks: []*scenario.Task{ranked[0].Task}}
		r, err := col.Run(sub, a.Store, collector.Options{
			DeletePoolAfter: opts.DeletePoolAfter,
			MaxAttempts:     opts.MaxAttempts,
			UseSpot:         opts.UseSpot,
			Progress:        opts.Progress,
			Interrupt:       opts.Interrupt,
			Backoff:         opts.Backoff,
			Breaker:         opts.Breaker,
			Stats:           a.Collection,
		})
		agg.Completed += r.Completed
		agg.Failed += r.Failed
		agg.Attempts += r.Attempts
		agg.Retries += r.Retries
		if errors.Is(err, collector.ErrInterrupted) {
			// Stop planning; remaining scenarios stay pending so a later
			// adaptive run (adaptive mode is not journaled) can pick the
			// sweep back up under the same budget logic.
			agg.Interrupted = true
			agg.NodeSecondsBySKU = svc.NodeSecondsBySKU()
			if cost, cerr := spent(); cerr == nil {
				agg.CollectionCostUSD = cost
			}
			agg.VirtualSeconds = (svc.Clock.Now() - start).Seconds()
			agg.ElapsedVirtualSeconds = agg.VirtualSeconds
			return agg, collector.ErrInterrupted
		}
		if err != nil {
			return agg, err
		}
	}

	// Remaining pending scenarios were priced out by the budget.
	for _, t := range list.Pending() {
		t.Status = scenario.StatusSkipped
		t.Error = fmt.Sprintf("adaptive collection budget $%.2f exhausted", budgetUSD)
		agg.Skipped++
		if opts.Progress != nil {
			opts.Progress(t)
		}
	}

	agg.NodeSecondsBySKU = svc.NodeSecondsBySKU()
	cost, err := spent()
	if err != nil {
		return agg, err
	}
	agg.CollectionCostUSD = cost
	agg.VirtualSeconds = (svc.Clock.Now() - start).Seconds()
	// Adaptive steps run one scenario at a time on the shared clock, so the
	// elapsed wall-clock is the sequential total (MaxParallelPools does not
	// apply to this mode).
	agg.ElapsedVirtualSeconds = agg.VirtualSeconds
	return agg, nil
}

package core

import (
	"testing"

	"hpcadvisor/internal/config"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/scenario"
)

func paperLAMMPSConfig(t *testing.T) *config.Config {
	return testConfig(t, "lammps",
		[]string{"Standard_HB120rs_v3", "Standard_HB120rs_v2", "Standard_HC44rs"},
		"[1, 2, 3, 4, 8, 16]", "  BOXFACTOR: \"30\"\n")
}

func TestAdaptiveCollectionStaysUnderBudget(t *testing.T) {
	adv := New("mysubscription")
	cfg := paperLAMMPSConfig(t)
	dep, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 20.0 // the full sweep costs ~$55
	report, err := adv.CollectAdaptive(dep.Name, cfg, budget, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed == 0 {
		t.Fatal("nothing collected")
	}
	if report.Completed+report.Skipped+report.Failed != 18 {
		t.Errorf("tasks unaccounted: %+v", report)
	}
	if report.Skipped == 0 {
		t.Error("a $20 budget must skip part of a $55 sweep")
	}
	// The budget check happens before each step, so the overshoot is at
	// most one scenario's cost; generously, 2x budget.
	if report.CollectionCostUSD > budget*2 {
		t.Errorf("cost %.2f far beyond budget %.2f", report.CollectionCostUSD, budget)
	}
	// Skipped tasks carry the reason.
	for _, task := range adv.TaskList(dep.Name).ByStatus(scenario.StatusSkipped) {
		if task.Error == "" {
			t.Error("skip reason missing")
		}
	}
}

func TestAdaptiveCollectionWithAmpleBudgetMatchesFullFront(t *testing.T) {
	full := New("mysubscription")
	cfg := paperLAMMPSConfig(t)
	depF, err := full.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Collect(depF.Name, cfg, CollectOptions{}); err != nil {
		t.Fatal(err)
	}

	adaptive := New("mysubscription")
	depA, err := adaptive.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := adaptive.CollectAdaptive(depA.Name, cfg, 10000, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 18 || report.Skipped != 0 {
		t.Fatalf("ample budget should drain the sweep: %+v", report)
	}
	if r := pareto.Recall(full.Store.Select(dataset.Filter{}), adaptive.Store.Select(dataset.Filter{})); r != 1 {
		t.Errorf("front recall = %v", r)
	}
}

func TestAdaptiveCollectionFrontQualityPerDollar(t *testing.T) {
	// The planner prefers high-information scenarios, so even a modest
	// budget should recover most of the true front.
	full := New("mysubscription")
	cfg := paperLAMMPSConfig(t)
	depF, _ := full.DeployCreate(cfg)
	if _, err := full.Collect(depF.Name, cfg, CollectOptions{}); err != nil {
		t.Fatal(err)
	}

	adaptive := New("mysubscription")
	depA, _ := adaptive.DeployCreate(cfg)
	if _, err := adaptive.CollectAdaptive(depA.Name, cfg, 30, CollectOptions{}); err != nil {
		t.Fatal(err)
	}
	recall := pareto.Recall(full.Store.Select(dataset.Filter{}), adaptive.Store.Select(dataset.Filter{}))
	if recall < 0.5 {
		t.Errorf("recall %.2f at $30 budget; planner is wasting spend", recall)
	}
}

func TestAdaptiveCollectionValidation(t *testing.T) {
	adv := New("mysubscription")
	cfg := paperLAMMPSConfig(t)
	dep, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.CollectAdaptive(dep.Name, cfg, 0, CollectOptions{}); err == nil {
		t.Error("zero budget should fail")
	}
	if _, err := adv.CollectAdaptive("ghost", cfg, 10, CollectOptions{}); err == nil {
		t.Error("unknown deployment should fail")
	}
}

package core

import (
	"strings"
	"testing"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
)

func TestAdviceRecipes(t *testing.T) {
	adv := New("mysubscription")
	cfg := testConfig(t, "lammps", []string{"Standard_HB120rs_v3"}, "[1, 2, 4]",
		"  BOXFACTOR: \"20\"\n")
	dep, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Collect(dep.Name, cfg, CollectOptions{}); err != nil {
		t.Fatal(err)
	}
	bundle, err := adv.AdviceRecipes(dataset.Filter{AppName: "lammps"}, pareto.ByTime, "southcentralus")
	if err != nil {
		t.Fatal(err)
	}
	// One bundle per front row, each carrying both artifacts.
	front := adv.Advice(dataset.Filter{AppName: "lammps"}, pareto.ByTime)
	if got := strings.Count(bundle, "#!/bin/bash"); got != len(front) {
		t.Errorf("slurm scripts = %d, want %d (one per advice row)", got, len(front))
	}
	for _, want := range []string{
		"#SBATCH --nodes=4",
		"#SBATCH --ntasks-per-node=120",
		`export BOXFACTOR="20"`,
		"vm_type: Standard_HB120rs_v3",
		"cluster recipe",
	} {
		if !strings.Contains(bundle, want) {
			t.Errorf("bundle missing %q", want)
		}
	}
	// Unknown pricing region surfaces an error.
	if _, err := adv.AdviceRecipes(dataset.Filter{}, pareto.ByTime, "atlantis"); err == nil {
		t.Error("unknown region should fail")
	}
}

func TestCollectOnSpotCapacity(t *testing.T) {
	adv := New("mysubscription")
	cfg := testConfig(t, "lammps", []string{"Standard_HB120rs_v3"}, "[1, 2]",
		"  BOXFACTOR: \"20\"\n")
	dep, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := adv.Collect(dep.Name, cfg, CollectOptions{UseSpot: true, MaxAttempts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 2 {
		t.Fatalf("completed = %d (failed %d)", report.Completed, report.Failed)
	}
	// Scenario costs are priced at the 30% spot rate.
	for _, p := range adv.Store.All() {
		onDemand := float64(p.NNodes) * p.ExecTimeSec * 3.60 / 3600
		ratio := p.CostUSD / onDemand
		if ratio < 0.28 || ratio > 0.32 {
			t.Errorf("scenario %s spot ratio = %.3f", p.ScenarioID, ratio)
		}
	}
}

func TestRepriceAdvice(t *testing.T) {
	adv := New("mysubscription")
	cfg := testConfig(t, "lammps", []string{"Standard_HB120rs_v3"}, "[1, 2, 4]",
		"  BOXFACTOR: \"20\"\n")
	dep, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Collect(dep.Name, cfg, CollectOptions{}); err != nil {
		t.Fatal(err)
	}
	base := adv.Advice(dataset.Filter{}, pareto.ByTime)

	// Spot repricing scales every cost by the 30% spot factor; times are
	// untouched, so the front membership is identical here.
	spot, err := adv.RepriceAdvice(dataset.Filter{}, pareto.ByTime, "southcentralus", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(spot) != len(base) {
		t.Fatalf("front sizes differ: %d vs %d", len(spot), len(base))
	}
	for i := range base {
		ratio := spot[i].CostUSD / base[i].CostUSD
		if ratio < 0.29 || ratio > 0.31 {
			t.Errorf("row %d spot ratio = %.3f", i, ratio)
		}
		if spot[i].ExecTimeSec != base[i].ExecTimeSec {
			t.Error("repricing must not alter times")
		}
	}

	// Regional repricing applies the region multiplier.
	eu, err := adv.RepriceAdvice(dataset.Filter{}, pareto.ByTime, "westeurope", false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		ratio := eu[i].CostUSD / base[i].CostUSD
		if ratio < 1.149 || ratio > 1.151 {
			t.Errorf("row %d westeurope ratio = %.4f, want 1.15", i, ratio)
		}
	}

	// Unknown region errors.
	if _, err := adv.RepriceAdvice(dataset.Filter{}, pareto.ByTime, "atlantis", false); err == nil {
		t.Error("unknown region should fail")
	}
	// The stored dataset is untouched by repricing.
	after := adv.Advice(dataset.Filter{}, pareto.ByTime)
	for i := range base {
		if after[i].CostUSD != base[i].CostUSD {
			t.Error("repricing mutated the dataset")
		}
	}
}

// Package sampler implements the scenario-reduction strategies of the
// paper's Section III-F ("Optimizations for scenario generation and
// executions") as pluggable planners for the collector:
//
//   - AggressiveDiscard: once there is evidence, at a given threshold, that
//     a VM type will not reach the Pareto front, all its remaining scenarios
//     are skipped.
//   - PerfFactor: a regression (Amdahl strong-scaling fit) over the
//     scenarios already executed predicts the runtime of candidate
//     scenarios; candidates whose predicted position cannot reach the front
//     are skipped ("fixed performance factor" in the paper).
//   - BottleneckAware: infrastructure metrics from executed scenarios
//     (network-bound classification) prune larger node counts that can only
//     add cost.
//
// These were "under development" in the paper; this package is a complete
// implementation evaluated by the sampler ablation benches against the full
// sweep.
package sampler

import (
	"fmt"
	"math"
	"sort"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/monitor"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/pricing"
	"hpcadvisor/internal/regression"
	"hpcadvisor/internal/scenario"
)

// Full is the no-op planner: every scenario runs (the paper's default
// behaviour and the baseline for all ablations).
type Full struct{}

// Decide always runs.
func (Full) Decide(t *scenario.Task, store *dataset.Store) (bool, string) { return true, "" }

// relevant selects completed points comparable to the task: same
// application, same input parameters. Failed points are excluded explicitly
// (not just by the Select default): they carry ExecTimeSec = 0, and a single
// one would make a VM type look infinitely fast to every planner fit.
func relevant(t *scenario.Task, store *dataset.Store) []dataset.Point {
	var out []dataset.Point
	for _, p := range store.Select(dataset.Filter{AppName: t.AppName}) {
		if p.Failed {
			continue
		}
		if sameInput(p.AppInput, t.AppInput) {
			out = append(out, p)
		}
	}
	return out
}

func sameInput(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// AggressiveDiscard skips every remaining scenario of a VM type once the
// type's executed scenarios are all dominated by other types with margin.
type AggressiveDiscard struct {
	// MinPoints is the evidence threshold: the SKU must have at least this
	// many executed scenarios before it can be discarded (default 2).
	MinPoints int
	// Margin is the dominance margin: a point counts as hopeless only if
	// some other-SKU front point beats it by (1+Margin) in both time and
	// cost (default 0.10).
	Margin float64
}

// Decide implements collector.Planner.
func (d AggressiveDiscard) Decide(t *scenario.Task, store *dataset.Store) (bool, string) {
	minPts := d.MinPoints
	if minPts <= 0 {
		minPts = 2
	}
	margin := d.Margin
	if margin <= 0 {
		margin = 0.10
	}
	pts := relevant(t, store)
	var mine, others []dataset.Point
	for _, p := range pts {
		if p.SKU == t.SKU {
			mine = append(mine, p)
		} else {
			others = append(others, p)
		}
	}
	if len(mine) < minPts || len(others) == 0 {
		return true, ""
	}
	front := pareto.Front(others)
	for _, p := range mine {
		if !dominatedWithMargin(p, front, margin) {
			return true, "" // still competitive
		}
	}
	return false, fmt.Sprintf("sampler: %s discarded — all %d executed scenarios dominated by other VM types beyond %.0f%% margin",
		t.SKUAlias, len(mine), margin*100)
}

func dominatedWithMargin(p dataset.Point, front []dataset.Point, margin float64) bool {
	for _, q := range front {
		if q.ExecTimeSec*(1+margin) <= p.ExecTimeSec && q.CostUSD*(1+margin) <= p.CostUSD {
			return true
		}
	}
	return false
}

// PerfFactor predicts candidate runtimes from an Amdahl fit over the
// scenarios already executed for the same (SKU, input) and skips candidates
// whose predicted (time, cost) cannot reach the Pareto front.
type PerfFactor struct {
	// Prices and Region compute the predicted cost of candidates.
	Prices *pricing.PriceBook
	Region string
	// MinPoints is how many measured node counts are needed before
	// extrapolating (default 3).
	MinPoints int
	// MinR2 is the fit quality gate; poor fits fall back to running the
	// scenario (default 0.95).
	MinR2 float64
	// Headroom widens the predicted point before the dominance test so
	// near-front candidates still run (default 0.10).
	Headroom float64
}

// Decide implements collector.Planner.
func (pf PerfFactor) Decide(t *scenario.Task, store *dataset.Store) (bool, string) {
	minPts := pf.MinPoints
	if minPts <= 0 {
		minPts = 3
	}
	minR2 := pf.MinR2
	if minR2 == 0 {
		minR2 = 0.95
	}
	headroom := pf.Headroom
	if headroom <= 0 {
		headroom = 0.10
	}
	if pf.Prices == nil || pf.Region == "" {
		return true, ""
	}

	pts := relevant(t, store)
	var mine []dataset.Point
	for _, p := range pts {
		if p.SKU == t.SKU {
			mine = append(mine, p)
		}
	}
	if len(mine) < minPts {
		return true, ""
	}
	fit, r2, err := fitSKU(mine)
	if err != nil || r2 < minR2 {
		return true, ""
	}
	predTime := fit.Predict(t.NNodes)
	if predTime <= 0 || math.IsNaN(predTime) {
		return true, ""
	}
	predCost, err := pf.Prices.Cost(pf.Region, t.SKU, t.NNodes, predTime)
	if err != nil {
		return true, ""
	}
	// Would the predicted point, shrunk by the headroom, still be dominated
	// by what we already measured? Then running it cannot improve the
	// front.
	candidate := dataset.Point{ExecTimeSec: predTime / (1 + headroom), CostUSD: predCost / (1 + headroom)}
	for _, q := range pareto.Front(pts) {
		if pareto.Dominates(q, candidate) {
			return false, fmt.Sprintf(
				"sampler: predicted %.0fs/$%.4f (Amdahl fit R²=%.3f) is off-front even with %.0f%% headroom",
				predTime, predCost, r2, headroom*100)
		}
	}
	return true, ""
}

// fitSKU fits the Amdahl model over one SKU's measured points and reports
// the fit plus its R². Failed points are dropped (their zero exec time would
// poison the fit), and the caller's slice is never reordered — the fit works
// on its own copy.
func fitSKU(pts []dataset.Point) (regression.Amdahl, float64, error) {
	ok := make([]dataset.Point, 0, len(pts))
	for _, p := range pts {
		if p.Failed {
			continue
		}
		ok = append(ok, p)
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i].NNodes < ok[j].NNodes })
	nodes := make([]int, len(ok))
	times := make([]float64, len(ok))
	for i, p := range ok {
		nodes[i] = p.NNodes
		times[i] = p.ExecTimeSec
	}
	fit, err := regression.FitAmdahl(nodes, times)
	if err != nil {
		return regression.Amdahl{}, 0, err
	}
	pred := make([]float64, len(ok))
	for i := range nodes {
		pred[i] = fit.Predict(nodes[i])
	}
	return fit, regression.RSquared(times, pred), nil
}

// Predict exposes the perf-factor extrapolation for reporting: the fitted
// curve for a SKU's points, or an error when data is insufficient. The input
// slice is not modified; failed points in it are ignored.
func Predict(pts []dataset.Point, nodes int) (float64, error) {
	fit, _, err := fitSKU(pts)
	if err != nil {
		return 0, err
	}
	return fit.Predict(nodes), nil
}

// BottleneckAware skips node counts above the point where the
// infrastructure monitor shows the workload has become network bound and
// scaling gains have collapsed.
type BottleneckAware struct {
	// MinGain is the speedup factor per node-doubling below which further
	// scaling is considered pointless (default 1.15).
	MinGain float64
}

// Decide implements collector.Planner.
func (ba BottleneckAware) Decide(t *scenario.Task, store *dataset.Store) (bool, string) {
	minGain := ba.MinGain
	if minGain <= 0 {
		minGain = 1.15
	}
	var mine []dataset.Point
	for _, p := range relevant(t, store) {
		if p.SKU == t.SKU {
			mine = append(mine, p)
		}
	}
	if len(mine) < 2 {
		return true, ""
	}
	sort.Slice(mine, func(i, j int) bool { return mine[i].NNodes < mine[j].NNodes })
	last := mine[len(mine)-1]
	prev := mine[len(mine)-2]
	if t.NNodes <= last.NNodes {
		return true, ""
	}
	if last.Bottleneck != monitor.BottleneckNetwork {
		return true, ""
	}
	// Observed gain, normalized to one doubling.
	nodeRatio := float64(last.NNodes) / float64(prev.NNodes)
	if nodeRatio <= 1 {
		return true, ""
	}
	gain := prev.ExecTimeSec / last.ExecTimeSec
	perDoubling := math.Pow(gain, math.Log(2)/math.Log(nodeRatio))
	if perDoubling < minGain {
		return false, fmt.Sprintf(
			"sampler: network bound at %d nodes with %.2fx gain per doubling (< %.2fx); skipping %d nodes",
			last.NNodes, perDoubling, minGain, t.NNodes)
	}
	return true, ""
}

// Composite chains planners; a scenario runs only if every planner agrees.
type Composite struct {
	Planners []interface {
		Decide(t *scenario.Task, store *dataset.Store) (bool, string)
	}
}

// Decide implements collector.Planner.
func (c Composite) Decide(t *scenario.Task, store *dataset.Store) (bool, string) {
	for _, p := range c.Planners {
		if run, reason := p.Decide(t, store); !run {
			return false, reason
		}
	}
	return true, ""
}

// Outcome summarizes a sampling strategy against the full sweep, the
// measurement reported by the ablation benches and EXPERIMENTS.md.
type Outcome struct {
	Name              string
	Ran               int
	Skipped           int
	CollectionCostUSD float64
	// FrontRecall is the fraction of the full sweep's Pareto front the
	// reduced collection recovered.
	FrontRecall float64
	// HypervolumeErrPct is the relative hypervolume loss of the reduced
	// front versus the full front.
	HypervolumeErrPct float64
	// CostSavedPct is collection cost saved versus the full sweep.
	CostSavedPct float64
}

// Evaluate compares a reduced collection to the full sweep.
func Evaluate(name string, full, reduced *dataset.Store, fullCost, reducedCost float64, ran, skipped int) Outcome {
	fullPts := full.Select(dataset.Filter{})
	redPts := reduced.Select(dataset.Filter{})
	refT, refC := referencePoint(fullPts)
	hvFull := pareto.Hypervolume(fullPts, refT, refC)
	hvRed := pareto.Hypervolume(redPts, refT, refC)
	out := Outcome{
		Name:              name,
		Ran:               ran,
		Skipped:           skipped,
		CollectionCostUSD: reducedCost,
		FrontRecall:       pareto.Recall(fullPts, redPts),
	}
	if hvFull > 0 {
		out.HypervolumeErrPct = (hvFull - hvRed) / hvFull * 100
	}
	if fullCost > 0 {
		out.CostSavedPct = (fullCost - reducedCost) / fullCost * 100
	}
	return out
}

func referencePoint(pts []dataset.Point) (refT, refC float64) {
	for _, p := range pts {
		if p.Failed {
			continue
		}
		refT = math.Max(refT, p.ExecTimeSec)
		refC = math.Max(refC, p.CostUSD)
	}
	return refT * 1.1, refC * 1.1
}

// String renders the outcome as one report row.
func (o Outcome) String() string {
	return fmt.Sprintf("%-20s ran=%-3d skipped=%-3d cost=$%-8.2f saved=%5.1f%% recall=%4.0f%% hv_err=%5.2f%%",
		o.Name, o.Ran, o.Skipped, o.CollectionCostUSD, o.CostSavedPct, o.FrontRecall*100, o.HypervolumeErrPct)
}

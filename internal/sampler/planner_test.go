package sampler

import (
	"strings"
	"testing"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pricing"
	"hpcadvisor/internal/scenario"
)

func pendingTask(sku, alias string, n int) *scenario.Task {
	t := taskFor(sku, alias, n)
	t.Status = scenario.StatusPending
	return t
}

func TestPlanNextPrefersCheapExplorationFirst(t *testing.T) {
	store := dataset.NewStore() // nothing measured yet
	candidates := []*scenario.Task{
		pendingTask("Standard_HB120rs_v3", "hb120rs_v3", 16),
		pendingTask("Standard_HB120rs_v3", "hb120rs_v3", 1),
		pendingTask("Standard_HC44rs", "hc44rs", 1),
	}
	ranked := PlanNext(store, candidates, pricing.Default(), "southcentralus", 3)
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	// Cheapest probes first: single nodes before 16 nodes.
	if ranked[0].Task.NNodes != 1 {
		t.Errorf("first pick = %d nodes, want a 1-node probe", ranked[0].Task.NNodes)
	}
	if ranked[len(ranked)-1].Task.NNodes != 16 {
		t.Errorf("last pick = %d nodes, want the expensive probe last", ranked[len(ranked)-1].Task.NNodes)
	}
	// The cheapest SKU probe outranks the pricier one at equal nodes.
	if ranked[0].Task.SKUAlias != "hc44rs" {
		t.Errorf("first pick SKU = %s, want hc44rs ($3.17/h < $3.60/h)", ranked[0].Task.SKUAlias)
	}
	for _, r := range ranked {
		if !strings.Contains(r.Rationale, "unexplored") {
			t.Errorf("rationale = %q", r.Rationale)
		}
	}
}

func TestPlanNextScoresExtrapolatedGain(t *testing.T) {
	store := dataset.NewStore()
	// A clean Amdahl series measured at 1..4 nodes.
	for _, n := range []int{1, 2, 4} {
		store.Add(amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", n, 1000, 0.05))
	}
	// Candidate 8 nodes extends the front (faster than anything measured);
	// candidate 2 nodes is already measured territory and adds nothing.
	extend := pendingTask("Standard_HB120rs_v3", "hb120rs_v3", 8)
	redundant := pendingTask("Standard_HB120rs_v3", "hb120rs_v3", 3)
	ranked := PlanNext(store, []*scenario.Task{redundant, extend}, pricing.Default(), "southcentralus", 2)
	if len(ranked) != 2 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if ranked[0].Task.NNodes != 8 {
		t.Errorf("first pick = %d nodes, want the front-extending 8", ranked[0].Task.NNodes)
	}
	if ranked[0].Score <= ranked[1].Score {
		t.Error("front-extending candidate should outscore the redundant one")
	}
	if !strings.Contains(ranked[0].Rationale, "hypervolume") {
		t.Errorf("rationale = %q", ranked[0].Rationale)
	}
}

func TestPlanNextHonorsKAndStatus(t *testing.T) {
	store := dataset.NewStore()
	done := pendingTask("Standard_HC44rs", "hc44rs", 1)
	done.Status = scenario.StatusCompleted
	candidates := []*scenario.Task{
		done,
		pendingTask("Standard_HC44rs", "hc44rs", 2),
		pendingTask("Standard_HC44rs", "hc44rs", 4),
		pendingTask("Standard_HC44rs", "hc44rs", 8),
	}
	ranked := PlanNext(store, candidates, pricing.Default(), "southcentralus", 2)
	if len(ranked) != 2 {
		t.Fatalf("k not honored: %d", len(ranked))
	}
	for _, r := range ranked {
		if r.Task.Status != scenario.StatusPending {
			t.Error("non-pending task ranked")
		}
	}
	if got := PlanNext(store, candidates, pricing.Default(), "southcentralus", 0); got != nil {
		t.Error("k=0 should return nothing")
	}
	if got := PlanNext(store, nil, pricing.Default(), "southcentralus", 5); got != nil {
		t.Error("no candidates should return nothing")
	}
}

func TestPlanNextSkipsUnpricedSKUs(t *testing.T) {
	store := dataset.NewStore()
	unpriced := pendingTask("Standard_Mystery", "mystery", 2)
	ranked := PlanNext(store, []*scenario.Task{unpriced}, pricing.Default(), "southcentralus", 5)
	if len(ranked) != 0 {
		t.Errorf("unpriced SKU should be skipped, got %d", len(ranked))
	}
}

func TestPlanNextIgnoresFailedPoints(t *testing.T) {
	// Failed scenarios (ExecTimeSec = 0) must not count as measurements:
	// neither as fit evidence nor in the hypervolume reference box.
	clean := dataset.NewStore()
	dirty := dataset.NewStore()
	for _, n := range []int{1, 2, 4} {
		clean.Add(amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", n, 1000, 0.05))
		dirty.Add(amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", n, 1000, 0.05))
	}
	dirty.Add(failedPoint("Standard_HB120rs_v3", "hb120rs_v3", 8))
	dirty.Add(failedPoint("Standard_HC44rs", "hc44rs", 1))

	candidates := func() []*scenario.Task {
		return []*scenario.Task{
			pendingTask("Standard_HB120rs_v3", "hb120rs_v3", 8),
			pendingTask("Standard_HC44rs", "hc44rs", 1),
		}
	}
	want := PlanNext(clean, candidates(), pricing.Default(), "southcentralus", 2)
	got := PlanNext(dirty, candidates(), pricing.Default(), "southcentralus", 2)
	if len(want) != len(got) {
		t.Fatalf("ranked sizes differ: clean %d, dirty %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Task.ID != got[i].Task.ID || want[i].Score != got[i].Score {
			t.Errorf("rank %d differs with failed points present: clean (%s %.4g) vs dirty (%s %.4g)",
				i, want[i].Task.SKUAlias, want[i].Score, got[i].Task.SKUAlias, got[i].Score)
		}
	}
}

package sampler

import (
	"strings"
	"testing"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/monitor"
	"hpcadvisor/internal/pricing"
	"hpcadvisor/internal/scenario"
)

// amdahlPoint fabricates a measured point following T(n) = t1*(s+(1-s)/n)
// at $3.60/hour.
func amdahlPoint(sku, alias string, n int, t1, serial float64) dataset.Point {
	t := t1 * (serial + (1-serial)/float64(n))
	return dataset.Point{
		ScenarioID:  alias + "-" + string(rune('a'+n)),
		AppName:     "lammps",
		SKU:         sku,
		SKUAlias:    alias,
		NNodes:      n,
		PPN:         120,
		AppInput:    map[string]string{"BOXFACTOR": "30"},
		InputDesc:   "atoms=864M",
		ExecTimeSec: t,
		CostUSD:     float64(n) * t * 3.6 / 3600,
	}
}

func taskFor(sku, alias string, n int) *scenario.Task {
	return &scenario.Task{
		Scenario: scenario.Scenario{
			ID: "t", AppName: "lammps", SKU: sku, SKUAlias: alias,
			NNodes: n, PPN: 120,
			AppInput: map[string]string{"BOXFACTOR": "30"},
		},
		Status: scenario.StatusPending,
	}
}

func TestFullAlwaysRuns(t *testing.T) {
	store := dataset.NewStore()
	run, reason := Full{}.Decide(taskFor("Standard_HC44rs", "hc44rs", 8), store)
	if !run || reason != "" {
		t.Errorf("Full.Decide = %v, %q", run, reason)
	}
}

func TestAggressiveDiscardNeedsEvidence(t *testing.T) {
	store := dataset.NewStore()
	d := AggressiveDiscard{}
	// No data at all: run.
	if run, _ := d.Decide(taskFor("Standard_HC44rs", "hc44rs", 4), store); !run {
		t.Error("no evidence should run")
	}
	// One dominated point is below the default MinPoints=2 threshold.
	store.Add(amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", 1, 900, 0.02))
	store.Add(amdahlPoint("Standard_HC44rs", "hc44rs", 1, 4000, 0.02))
	if run, _ := d.Decide(taskFor("Standard_HC44rs", "hc44rs", 2), store); !run {
		t.Error("single point should not be enough to discard")
	}
}

func TestAggressiveDiscardSkipsHopelessSKU(t *testing.T) {
	store := dataset.NewStore()
	// hb120rs_v3 measured across the sweep; hc44rs measured twice, both far
	// off the front (4x slower at similar cost scale).
	for _, n := range []int{1, 2, 4, 8} {
		store.Add(amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", n, 900, 0.02))
	}
	store.Add(amdahlPoint("Standard_HC44rs", "hc44rs", 1, 4000, 0.02))
	store.Add(amdahlPoint("Standard_HC44rs", "hc44rs", 2, 4000, 0.02))

	d := AggressiveDiscard{}
	run, reason := d.Decide(taskFor("Standard_HC44rs", "hc44rs", 4), store)
	if run {
		t.Fatal("hopeless SKU should be discarded")
	}
	if !strings.Contains(reason, "hc44rs") || !strings.Contains(reason, "dominated") {
		t.Errorf("reason = %q", reason)
	}
	// The surviving SKU keeps running.
	if run, _ := d.Decide(taskFor("Standard_HB120rs_v3", "hb120rs_v3", 16), store); !run {
		t.Error("front SKU should keep running")
	}
}

func TestAggressiveDiscardRespectsMargin(t *testing.T) {
	store := dataset.NewStore()
	for _, n := range []int{1, 2, 4} {
		store.Add(amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", n, 900, 0.02))
	}
	// hc44rs is slower but within 5%: a 50% margin treats it as
	// competitive, a 1% margin discards it.
	store.Add(amdahlPoint("Standard_HC44rs", "hc44rs", 1, 945, 0.02))
	store.Add(amdahlPoint("Standard_HC44rs", "hc44rs", 2, 945, 0.02))
	if run, _ := (AggressiveDiscard{Margin: 0.50}).Decide(taskFor("Standard_HC44rs", "hc44rs", 4), store); !run {
		t.Error("wide margin should keep near-front SKU")
	}
	// Note: with a 1% margin a 5%-worse point in both dimensions is
	// dominated beyond margin.
	if run, _ := (AggressiveDiscard{Margin: 0.01}).Decide(taskFor("Standard_HC44rs", "hc44rs", 4), store); run {
		t.Error("narrow margin should discard")
	}
}

func TestPerfFactorSkipsPredictedOffFront(t *testing.T) {
	store := dataset.NewStore()
	// Fast SKU fully measured.
	for _, n := range []int{1, 2, 4, 8, 16} {
		store.Add(amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", n, 1000, 0.05))
	}
	// Slow SKU (same price) measured at three small scales; its
	// extrapolation can never reach the front.
	for _, n := range []int{1, 2, 4} {
		store.Add(amdahlPoint("Standard_HB120rs_v2", "hb120rs_v2", n, 2400, 0.05))
	}
	pf := PerfFactor{Prices: pricing.Default(), Region: "southcentralus"}
	run, reason := pf.Decide(taskFor("Standard_HB120rs_v2", "hb120rs_v2", 16), store)
	if run {
		t.Fatal("predicted off-front scenario should be skipped")
	}
	if !strings.Contains(reason, "Amdahl") {
		t.Errorf("reason = %q", reason)
	}
	// The fast SKU's own extension still runs (it extends the front).
	if run, _ := pf.Decide(taskFor("Standard_HB120rs_v3", "hb120rs_v3", 32), store); !run {
		t.Error("front-extending scenario should run")
	}
}

func TestPerfFactorFallsBackOnPoorFit(t *testing.T) {
	store := dataset.NewStore()
	for _, n := range []int{1, 2, 4, 8, 16} {
		store.Add(amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", n, 1000, 0.05))
	}
	// Super-linear measurements cannot be explained by Amdahl; the R² gate
	// must force the scenario to run rather than trust the fit.
	super := []struct {
		n int
		t float64
	}{{1, 4000}, {2, 1300}, {4, 500}}
	for _, s := range super {
		p := amdahlPoint("Standard_HB120rs_v2", "hb120rs_v2", s.n, 1, 0)
		p.ExecTimeSec = s.t
		p.CostUSD = float64(s.n) * s.t * 3.6 / 3600
		store.Add(p)
	}
	pf := PerfFactor{Prices: pricing.Default(), Region: "southcentralus"}
	if run, _ := pf.Decide(taskFor("Standard_HB120rs_v2", "hb120rs_v2", 16), store); !run {
		t.Error("poor fit should fall back to running the scenario")
	}
}

func TestPerfFactorNeedsConfigAndData(t *testing.T) {
	store := dataset.NewStore()
	// Unconfigured planner runs everything.
	if run, _ := (PerfFactor{}).Decide(taskFor("Standard_HB120rs_v3", "hb120rs_v3", 8), store); !run {
		t.Error("unconfigured planner must not skip")
	}
	pf := PerfFactor{Prices: pricing.Default(), Region: "southcentralus"}
	store.Add(amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", 1, 1000, 0.05))
	store.Add(amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", 2, 1000, 0.05))
	if run, _ := pf.Decide(taskFor("Standard_HB120rs_v3", "hb120rs_v3", 8), store); !run {
		t.Error("below MinPoints must run")
	}
}

func TestPredictHelper(t *testing.T) {
	var pts []dataset.Point
	for _, n := range []int{1, 2, 4, 8} {
		pts = append(pts, amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", n, 1000, 0.05))
	}
	got, err := Predict(pts, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 * (0.05 + 0.95/16.0)
	if got < want*0.95 || got > want*1.05 {
		t.Errorf("Predict(16) = %.1f, want ~%.1f", got, want)
	}
	if _, err := Predict(pts[:1], 16); err == nil {
		t.Error("one point should not extrapolate")
	}
}

func TestBottleneckAwareSkipsNetworkSaturated(t *testing.T) {
	store := dataset.NewStore()
	p4 := amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", 4, 100, 0.9)
	p4.Bottleneck = monitor.BottleneckNetwork
	p8 := amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", 8, 100, 0.9)
	p8.Bottleneck = monitor.BottleneckNetwork
	// 4 -> 8 nodes: 92.5s -> 91.25s, a 1.4% gain.
	store.Add(p4)
	store.Add(p8)

	ba := BottleneckAware{}
	run, reason := ba.Decide(taskFor("Standard_HB120rs_v3", "hb120rs_v3", 16), store)
	if run {
		t.Fatal("network-saturated scaling should be pruned")
	}
	if !strings.Contains(reason, "network bound") {
		t.Errorf("reason = %q", reason)
	}
	// Smaller node counts are unaffected.
	if run, _ := ba.Decide(taskFor("Standard_HB120rs_v3", "hb120rs_v3", 2), store); !run {
		t.Error("smaller scenario should run")
	}
}

func TestBottleneckAwareKeepsHealthyScaling(t *testing.T) {
	store := dataset.NewStore()
	p4 := amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", 4, 1000, 0.02)
	p4.Bottleneck = monitor.BottleneckCPU
	p8 := amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", 8, 1000, 0.02)
	p8.Bottleneck = monitor.BottleneckCPU
	store.Add(p4)
	store.Add(p8)
	if run, _ := (BottleneckAware{}).Decide(taskFor("Standard_HB120rs_v3", "hb120rs_v3", 16), store); !run {
		t.Error("healthy cpu-bound scaling should keep running")
	}
	// Even poor gains run if the bottleneck is not the network.
	store = dataset.NewStore()
	q4 := amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", 4, 100, 0.9)
	q4.Bottleneck = monitor.BottleneckMemory
	q8 := amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", 8, 100, 0.9)
	q8.Bottleneck = monitor.BottleneckMemory
	store.Add(q4)
	store.Add(q8)
	if run, _ := (BottleneckAware{}).Decide(taskFor("Standard_HB120rs_v3", "hb120rs_v3", 16), store); !run {
		t.Error("non-network bottleneck should not prune")
	}
}

func TestComposite(t *testing.T) {
	store := dataset.NewStore()
	for _, n := range []int{1, 2, 4, 8} {
		store.Add(amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", n, 900, 0.02))
	}
	store.Add(amdahlPoint("Standard_HC44rs", "hc44rs", 1, 4000, 0.02))
	store.Add(amdahlPoint("Standard_HC44rs", "hc44rs", 2, 4000, 0.02))

	c := Composite{}
	c.Planners = append(c.Planners, Full{}, AggressiveDiscard{})
	if run, reason := c.Decide(taskFor("Standard_HC44rs", "hc44rs", 4), store); run {
		t.Error("composite should propagate the discard")
	} else if reason == "" {
		t.Error("composite should propagate the reason")
	}
	if run, _ := c.Decide(taskFor("Standard_HB120rs_v3", "hb120rs_v3", 16), store); !run {
		t.Error("composite should run when all agree")
	}
}

func TestEvaluate(t *testing.T) {
	full := dataset.NewStore()
	for _, n := range []int{1, 2, 4, 8, 16} {
		full.Add(amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", n, 1000, 0.05))
		full.Add(amdahlPoint("Standard_HC44rs", "hc44rs", n, 4000, 0.05))
	}
	// Reduced: hc44rs stopped after two points (which the discard strategy
	// would do).
	reduced := dataset.NewStore()
	for _, n := range []int{1, 2, 4, 8, 16} {
		reduced.Add(amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", n, 1000, 0.05))
	}
	reduced.Add(amdahlPoint("Standard_HC44rs", "hc44rs", 1, 4000, 0.05))
	reduced.Add(amdahlPoint("Standard_HC44rs", "hc44rs", 2, 4000, 0.05))

	o := Evaluate("discard", full, reduced, 100, 62, 7, 3)
	if o.FrontRecall != 1 {
		t.Errorf("recall = %v; the hc44rs points were never on the front", o.FrontRecall)
	}
	if o.HypervolumeErrPct > 1e-9 {
		t.Errorf("hv error = %v, want 0", o.HypervolumeErrPct)
	}
	if o.CostSavedPct != 38 {
		t.Errorf("cost saved = %v, want 38", o.CostSavedPct)
	}
	if o.Ran != 7 || o.Skipped != 3 {
		t.Errorf("outcome = %+v", o)
	}
	s := o.String()
	for _, want := range []string{"discard", "recall", "saved"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func failedPoint(sku, alias string, n int) dataset.Point {
	p := amdahlPoint(sku, alias, n, 0, 0)
	p.ScenarioID = alias + "-failed-" + string(rune('a'+n))
	p.ExecTimeSec = 0
	p.CostUSD = 0
	p.Failed = true
	p.Error = "simulated failure"
	return p
}

func TestPredictIgnoresFailedPoints(t *testing.T) {
	// A failed scenario carries ExecTimeSec = 0; fitting on it would drag
	// the Amdahl curve toward "infinitely fast" and poison every prediction.
	var pts []dataset.Point
	for _, n := range []int{1, 2, 4, 8} {
		pts = append(pts, amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", n, 1000, 0.05))
	}
	pts = append(pts, failedPoint("Standard_HB120rs_v3", "hb120rs_v3", 16))
	got, err := Predict(pts, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 * (0.05 + 0.95/16.0)
	if got < want*0.95 || got > want*1.05 {
		t.Errorf("Predict(16) with failed point = %.1f, want ~%.1f", got, want)
	}
	// Failed points alone are not evidence.
	if _, err := Predict([]dataset.Point{
		failedPoint("Standard_HB120rs_v3", "hb120rs_v3", 1),
		failedPoint("Standard_HB120rs_v3", "hb120rs_v3", 2),
	}, 4); err == nil {
		t.Error("failed-only input should not extrapolate")
	}
}

func TestPredictDoesNotMutateInput(t *testing.T) {
	// The exported extrapolation must not sort the caller's slice in place.
	order := []int{8, 1, 4, 2}
	var pts []dataset.Point
	for _, n := range order {
		pts = append(pts, amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", n, 1000, 0.05))
	}
	if _, err := Predict(pts, 16); err != nil {
		t.Fatal(err)
	}
	for i, n := range order {
		if pts[i].NNodes != n {
			t.Fatalf("input reordered: position %d = %d nodes, want %d (full: %v)",
				i, pts[i].NNodes, n, nodesOf(pts))
		}
	}
}

func nodesOf(pts []dataset.Point) []int {
	out := make([]int, len(pts))
	for i, p := range pts {
		out[i] = p.NNodes
	}
	return out
}

func TestPerfFactorIgnoresFailedEvidence(t *testing.T) {
	// Same fixture as TestPerfFactorSkipsPredictedOffFront, with failed
	// scenarios interleaved for both SKUs. The planner decisions must be
	// identical: failed points are not evidence.
	store := dataset.NewStore()
	for _, n := range []int{1, 2, 4, 8, 16} {
		store.Add(amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", n, 1000, 0.05))
	}
	for _, n := range []int{1, 2, 4} {
		store.Add(amdahlPoint("Standard_HB120rs_v2", "hb120rs_v2", n, 2400, 0.05))
	}
	store.Add(failedPoint("Standard_HB120rs_v2", "hb120rs_v2", 8))
	store.Add(failedPoint("Standard_HB120rs_v3", "hb120rs_v3", 32))
	pf := PerfFactor{Prices: pricing.Default(), Region: "southcentralus"}
	if run, _ := pf.Decide(taskFor("Standard_HB120rs_v2", "hb120rs_v2", 16), store); run {
		t.Error("failed points must not mask an off-front prediction")
	}
	if run, _ := pf.Decide(taskFor("Standard_HB120rs_v3", "hb120rs_v3", 32), store); !run {
		t.Error("a failed attempt must not make the SKU look infinitely fast")
	}
}

func TestReferencePointIgnoresFailedPoints(t *testing.T) {
	ok := amdahlPoint("Standard_HB120rs_v3", "hb120rs_v3", 1, 1000, 0.05)
	bad := failedPoint("Standard_HC44rs", "hc44rs", 4)
	bad.ExecTimeSec = 1e9 // a garbage time on a failed point must not move the reference
	bad.CostUSD = 1e9
	refT, refC := referencePoint([]dataset.Point{ok, bad})
	if refT != ok.ExecTimeSec*1.1 || refC != ok.CostUSD*1.1 {
		t.Errorf("reference = (%g, %g), want (%g, %g)",
			refT, refC, ok.ExecTimeSec*1.1, ok.CostUSD*1.1)
	}
}

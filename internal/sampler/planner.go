package sampler

import (
	"fmt"
	"sort"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/pricing"
	"hpcadvisor/internal/scenario"
)

// Ranked is a candidate scenario with its expected return on investment.
type Ranked struct {
	Task *scenario.Task
	// Score is the expected Pareto information gain per dollar of
	// collection cost; exploration candidates get an optimistic bonus.
	Score float64
	// Rationale explains the ranking for the user.
	Rationale string
}

// PlanNext ranks pending candidate scenarios by expected "return on
// investment" for the Pareto front — the paper's Section III-F vision of a
// stand-alone module that picks which scenarios to run next: "identify
// which new scenarios would need to be executed to obtain the best return
// on investment, i.e. scenarios that would help provide more information
// for generating the Pareto front."
//
// For candidates whose (SKU, input) already has enough measurements, an
// Amdahl extrapolation predicts the new point; the score is the hypervolume
// the prediction would add to the current front, divided by its predicted
// collection cost. Unexplored combinations score by an exploration bonus
// that prefers cheap probes (small node counts, cheap SKUs). The top k
// candidates are returned, highest score first.
func PlanNext(store *dataset.Store, candidates []*scenario.Task, prices *pricing.PriceBook, region string, k int) []Ranked {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	measured := store.Select(dataset.Filter{})

	// First pass: extrapolate every predictable candidate so the shared
	// hypervolume reference point covers predictions that extend beyond the
	// measured box (e.g. faster but costlier than anything measured).
	type prediction struct {
		task  *scenario.Task
		point dataset.Point
	}
	var predictions []prediction
	var explorations []*scenario.Task
	for _, t := range candidates {
		if t.Status != scenario.StatusPending {
			continue
		}
		hourly, err := prices.Hourly(region, t.SKU)
		if err != nil {
			continue
		}
		var mine []dataset.Point
		for _, p := range relevant(t, store) {
			if p.SKU == t.SKU {
				mine = append(mine, p)
			}
		}
		if len(mine) < 2 {
			explorations = append(explorations, t)
			continue
		}
		predTime, err := Predict(mine, t.NNodes)
		if err != nil || predTime <= 0 {
			explorations = append(explorations, t)
			continue
		}
		predictions = append(predictions, prediction{
			task: t,
			point: dataset.Point{
				ScenarioID:  t.ID,
				ExecTimeSec: predTime,
				CostUSD:     pricing.CostAt(hourly, t.NNodes, predTime),
			},
		})
	}

	all := measured
	for _, p := range predictions {
		all = append(all, p.point)
	}
	refT, refC := referencePoint(all)
	if refT == 0 {
		refT, refC = 1, 1
	}
	baseHV := pareto.Hypervolume(measured, refT, refC)

	var ranked []Ranked
	for _, p := range predictions {
		gain := pareto.Hypervolume(append(measured, p.point), refT, refC) - baseHV
		if gain < 0 {
			gain = 0
		}
		spend := p.point.CostUSD
		if spend <= 0 {
			spend = 1e-6
		}
		ranked = append(ranked, Ranked{
			Task:  p.task,
			Score: gain / spend,
			Rationale: fmt.Sprintf("predicted %.0f s/$%.4f adds %.3g hypervolume per dollar",
				p.point.ExecTimeSec, p.point.CostUSD, gain/spend),
		})
	}
	for _, t := range explorations {
		hourly, err := prices.Hourly(region, t.SKU)
		if err != nil {
			continue
		}
		// Exploration: no usable history for this (SKU, input). Prefer
		// cheap probes; the bonus shrinks with expected spend so small node
		// counts on cheap SKUs run first.
		probeCost := pricing.CostAt(hourly, t.NNodes, 600) // assume a 10-minute probe
		ranked = append(ranked, Ranked{
			Task:      t,
			Score:     explorationBonus / (1 + probeCost),
			Rationale: fmt.Sprintf("unexplored %s at %d nodes (probe ~$%.2f)", t.SKUAlias, t.NNodes, probeCost),
		})
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Score > ranked[j].Score })
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked
}

// explorationBonus makes unexplored combinations competitive with
// extrapolated ones: exploring is how the front is discovered at all.
const explorationBonus = 1000.0

// Package monitor derives infrastructure metrics for executed scenarios and
// classifies bottlenecks. The paper (Section III-F, "Infrastructure
// bottlenecks") proposes using CPU, memory, and network utilization
// collected during scenario execution as hints for prioritizing or
// discarding future scenarios; this package provides those signals from the
// performance model's term decomposition and the classification rule the
// sampler consumes.
// An Aggregator additionally accumulates the samples of a whole collection
// run — including runs where several pool lanes execute concurrently, each
// advancing its own virtual clock — into per-key utilization means that feed
// the per-lane collection report.
package monitor

import (
	"fmt"
	"sort"
	"sync"

	"hpcadvisor/internal/appmodel"
)

// Sample is one scenario's infrastructure utilization, each in [0,1].
type Sample struct {
	CPUUtil   float64 `json:"cpu_util"`
	MemBWUtil float64 `json:"membw_util"`
	NetUtil   float64 `json:"net_util"`
}

// Bottleneck classifies what limited a scenario.
type Bottleneck string

// Bottleneck classes.
const (
	BottleneckCPU     Bottleneck = "cpu"
	BottleneckMemory  Bottleneck = "memory-bandwidth"
	BottleneckNetwork Bottleneck = "network"
	BottleneckNone    Bottleneck = "balanced"
)

// Classification thresholds: network dominates first (communication time is
// pure overhead), then memory pressure, then raw CPU saturation.
const (
	netThreshold = 0.35
	memThreshold = 0.40
	cpuThreshold = 0.70
)

// FromProfile extracts a Sample from a simulated execution profile.
func FromProfile(p appmodel.Profile) Sample {
	return Sample{CPUUtil: p.CPUUtil, MemBWUtil: p.MemBWUtil, NetUtil: p.NetUtil}
}

// Classify maps a utilization sample to its dominant bottleneck.
func Classify(s Sample) Bottleneck {
	switch {
	case s.NetUtil >= netThreshold:
		return BottleneckNetwork
	case s.MemBWUtil >= memThreshold:
		return BottleneckMemory
	case s.CPUUtil >= cpuThreshold:
		return BottleneckCPU
	}
	return BottleneckNone
}

// Validate reports an error for out-of-range samples, guarding dataset
// ingestion.
func (s Sample) Validate() error {
	for name, v := range map[string]float64{"cpu": s.CPUUtil, "membw": s.MemBWUtil, "net": s.NetUtil} {
		if v < 0 || v > 1 {
			return fmt.Errorf("monitor: %s utilization %f outside [0,1]", name, v)
		}
	}
	return nil
}

// Aggregator accumulates utilization samples under string keys (the
// collector keys by SKU). It is safe for concurrent use: when collection
// lanes run in parallel, every lane observes into the same aggregator from
// its own goroutine. Aggregation is commutative, so the resulting means do
// not depend on lane scheduling. The zero value is not usable; call
// NewAggregator.
type Aggregator struct {
	mu     sync.Mutex
	sums   map[string]Sample // guarded-by: mu
	counts map[string]int    // guarded-by: mu
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{sums: make(map[string]Sample), counts: make(map[string]int)}
}

// Observe folds one sample into the running totals for key.
func (a *Aggregator) Observe(key string, s Sample) {
	a.mu.Lock()
	defer a.mu.Unlock()
	sum := a.sums[key]
	sum.CPUUtil += s.CPUUtil
	sum.MemBWUtil += s.MemBWUtil
	sum.NetUtil += s.NetUtil
	a.sums[key] = sum
	a.counts[key]++
}

// Mean returns the per-dimension mean of the samples observed for key and
// how many samples contributed. A key with no observations yields a zero
// Sample and count 0.
func (a *Aggregator) Mean(key string) (Sample, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.counts[key]
	if n == 0 {
		return Sample{}, 0
	}
	sum := a.sums[key]
	return Sample{
		CPUUtil:   sum.CPUUtil / float64(n),
		MemBWUtil: sum.MemBWUtil / float64(n),
		NetUtil:   sum.NetUtil / float64(n),
	}, n
}

// Keys returns the observed keys, sorted.
func (a *Aggregator) Keys() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.counts))
	for k := range a.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ScalingHint summarizes what a bottleneck implies for scenario planning,
// the human-readable form surfaced in advice output.
func ScalingHint(b Bottleneck) string {
	switch b {
	case BottleneckNetwork:
		return "communication bound: adding nodes will not help; prefer fewer, larger nodes"
	case BottleneckMemory:
		return "memory-bandwidth bound: more nodes (or fewer processes per node) relieve pressure"
	case BottleneckCPU:
		return "compute bound: scaling nodes should be near linear"
	default:
		return "balanced: no dominant bottleneck observed"
	}
}

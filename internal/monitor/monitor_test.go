package monitor

import (
	"testing"

	"hpcadvisor/internal/appmodel"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		s    Sample
		want Bottleneck
	}{
		{"network dominant", Sample{CPUUtil: 0.5, MemBWUtil: 0.5, NetUtil: 0.5}, BottleneckNetwork},
		{"memory dominant", Sample{CPUUtil: 0.9, MemBWUtil: 0.6, NetUtil: 0.1}, BottleneckMemory},
		{"cpu bound", Sample{CPUUtil: 0.9, MemBWUtil: 0.1, NetUtil: 0.05}, BottleneckCPU},
		{"balanced", Sample{CPUUtil: 0.3, MemBWUtil: 0.1, NetUtil: 0.05}, BottleneckNone},
		{"net at threshold", Sample{NetUtil: 0.35}, BottleneckNetwork},
		{"mem at threshold", Sample{MemBWUtil: 0.40}, BottleneckMemory},
		{"cpu at threshold", Sample{CPUUtil: 0.70}, BottleneckCPU},
	}
	for _, c := range cases {
		if got := Classify(c.s); got != c.want {
			t.Errorf("%s: Classify(%+v) = %s, want %s", c.name, c.s, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Sample{CPUUtil: 0.5, MemBWUtil: 0.5, NetUtil: 0.5}).Validate(); err != nil {
		t.Errorf("valid sample rejected: %v", err)
	}
	bad := []Sample{
		{CPUUtil: -0.1},
		{MemBWUtil: 1.1},
		{NetUtil: 2},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid sample %+v accepted", s)
		}
	}
}

func TestFromProfile(t *testing.T) {
	p := appmodel.Profile{CPUUtil: 0.7, MemBWUtil: 0.3, NetUtil: 0.2}
	s := FromProfile(p)
	if s.CPUUtil != 0.7 || s.MemBWUtil != 0.3 || s.NetUtil != 0.2 {
		t.Errorf("FromProfile = %+v", s)
	}
}

func TestScalingHints(t *testing.T) {
	for _, b := range []Bottleneck{BottleneckCPU, BottleneckMemory, BottleneckNetwork, BottleneckNone} {
		if ScalingHint(b) == "" {
			t.Errorf("no hint for %s", b)
		}
	}
	// Hints must be distinct; advice surfaces them verbatim.
	seen := map[string]bool{}
	for _, b := range []Bottleneck{BottleneckCPU, BottleneckMemory, BottleneckNetwork, BottleneckNone} {
		h := ScalingHint(b)
		if seen[h] {
			t.Errorf("duplicate hint %q", h)
		}
		seen[h] = true
	}
}

package monitor

import (
	"math"
	"sync"
	"testing"
)

func TestAggregatorMean(t *testing.T) {
	a := NewAggregator()
	if _, n := a.Mean("sku"); n != 0 {
		t.Fatalf("empty aggregator reported %d samples", n)
	}
	a.Observe("sku", Sample{CPUUtil: 0.2, MemBWUtil: 0.4, NetUtil: 0.6})
	a.Observe("sku", Sample{CPUUtil: 0.4, MemBWUtil: 0.2, NetUtil: 0.0})
	mean, n := a.Mean("sku")
	if n != 2 {
		t.Fatalf("samples = %d, want 2", n)
	}
	want := Sample{CPUUtil: 0.3, MemBWUtil: 0.3, NetUtil: 0.3}
	for name, pair := range map[string][2]float64{
		"cpu":   {mean.CPUUtil, want.CPUUtil},
		"membw": {mean.MemBWUtil, want.MemBWUtil},
		"net":   {mean.NetUtil, want.NetUtil},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-12 {
			t.Errorf("%s mean = %f, want %f", name, pair[0], pair[1])
		}
	}
}

func TestAggregatorConcurrentObserve(t *testing.T) {
	// Concurrent collection lanes all observe into one aggregator; means
	// must come out schedule-independent. Run with -race.
	a := NewAggregator()
	keys := []string{"hb120rs_v3", "hb120rs_v2", "hc44rs"}
	const perKey = 500
	var wg sync.WaitGroup
	for _, key := range keys {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			for i := 0; i < perKey; i++ {
				a.Observe(key, Sample{CPUUtil: 0.5, MemBWUtil: 0.25, NetUtil: 0.125})
			}
		}(key)
	}
	wg.Wait()
	if got := a.Keys(); len(got) != len(keys) {
		t.Fatalf("Keys = %v", got)
	}
	for _, key := range keys {
		mean, n := a.Mean(key)
		if n != perKey {
			t.Errorf("%s: samples = %d, want %d", key, n, perKey)
		}
		if math.Abs(mean.CPUUtil-0.5) > 1e-9 || math.Abs(mean.NetUtil-0.125) > 1e-9 {
			t.Errorf("%s: mean = %+v", key, mean)
		}
	}
}

// collection.go holds the resilience counters of the collection write
// path: attempts by failure class, retries, circuit-breaker state per SKU,
// and resume accounting. The collector increments them as it works; the
// service layer snapshots them for the Prometheus /metrics endpoint. All
// methods are nil-safe so the collector never has to guard its stats
// calls — a nil *CollectionStats is a no-op sink.
package monitor

import "sync"

// CollectionStats accumulates resilience counters across collection runs.
// Safe for concurrent use (lanes increment while the API snapshots).
type CollectionStats struct {
	mu       sync.Mutex
	attempts map[string]uint64 // guarded-by: mu; failure class -> attempts that ended in it
	retries  map[string]uint64 // guarded-by: mu; failure class -> retries it caused
	breaker  map[string]string // guarded-by: mu; SKU -> breaker state (closed/open/half-open)
	trips    uint64            // guarded-by: mu
	resumed  uint64            // guarded-by: mu
	rerun    uint64            // guarded-by: mu
	records  uint64            // guarded-by: mu
}

// NewCollectionStats returns an empty counter set.
func NewCollectionStats() *CollectionStats {
	return &CollectionStats{
		attempts: make(map[string]uint64),
		retries:  make(map[string]uint64),
		breaker:  make(map[string]string),
	}
}

// Attempt counts one execution attempt that ended in the given class
// ("none" for success).
func (s *CollectionStats) Attempt(class string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attempts[class]++
	s.mu.Unlock()
}

// Retry counts one retry scheduled because of the given class.
func (s *CollectionStats) Retry(class string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.retries[class]++
	s.mu.Unlock()
}

// Breaker records the breaker state of a SKU, counting open transitions.
func (s *CollectionStats) Breaker(sku, state string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if state == "open" && s.breaker[sku] != "open" {
		s.trips++
	}
	s.breaker[sku] = state
	s.mu.Unlock()
}

// TaskResumed counts a journaled task restored on resume without
// re-collecting its datapoint.
func (s *CollectionStats) TaskResumed() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.resumed++
	s.mu.Unlock()
}

// TaskRerun counts a journaled task that had to be re-collected on resume
// because its datapoint never became durable.
func (s *CollectionStats) TaskRerun() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rerun++
	s.mu.Unlock()
}

// JournalRecord counts one record appended to the sweep journal.
func (s *CollectionStats) JournalRecord() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.records++
	s.mu.Unlock()
}

// CollectionSnapshot is a point-in-time copy of the counters.
type CollectionSnapshot struct {
	AttemptsByClass map[string]uint64 `json:"attempts_by_class"`
	RetriesByClass  map[string]uint64 `json:"retries_by_class"`
	BreakerState    map[string]string `json:"breaker_state"`
	BreakerTrips    uint64            `json:"breaker_trips"`
	TasksResumed    uint64            `json:"tasks_resumed"`
	TasksRerun      uint64            `json:"tasks_rerun"`
	JournalRecords  uint64            `json:"journal_records"`
}

// Snapshot copies the counters. A nil receiver snapshots to empty maps.
func (s *CollectionStats) Snapshot() CollectionSnapshot {
	snap := CollectionSnapshot{
		AttemptsByClass: make(map[string]uint64),
		RetriesByClass:  make(map[string]uint64),
		BreakerState:    make(map[string]string),
	}
	if s == nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.attempts {
		snap.AttemptsByClass[k] = v
	}
	for k, v := range s.retries {
		snap.RetriesByClass[k] = v
	}
	for k, v := range s.breaker {
		snap.BreakerState[k] = v
	}
	snap.BreakerTrips = s.trips
	snap.TasksResumed = s.resumed
	snap.TasksRerun = s.rerun
	snap.JournalRecords = s.records
	return snap
}

package recipes

import (
	"strings"
	"testing"

	"hpcadvisor/internal/catalog"
	"hpcadvisor/internal/dataset"
)

func listing4Row() dataset.Point {
	return dataset.Point{
		ScenarioID:  "lammps-hb120rs_v3-n16-abc",
		AppName:     "lammps",
		SKU:         "Standard_HB120rs_v3",
		SKUAlias:    "hb120rs_v3",
		NNodes:      16,
		PPN:         120,
		AppInput:    map[string]string{"BOXFACTOR": "30"},
		ExecTimeSec: 36,
		CostUSD:     0.576,
	}
}

func TestSlurmScriptStructure(t *testing.T) {
	sku := catalog.Default().MustLookup("hb120rs_v3")
	script := SlurmScript(listing4Row(), sku)
	wants := []string{
		"#!/bin/bash",
		"#SBATCH --job-name=lammps",
		"#SBATCH --partition=hbv3",
		"#SBATCH --nodes=16",
		"#SBATCH --ntasks-per-node=120",
		"#SBATCH --exclusive",
		"#SBATCH --time=00:05:00", // 2x36s clamps to the 5-minute floor
		`export BOXFACTOR="30"`,
		"export UCX_NET_DEVICES=mlx5_ib0:1", // InfiniBand SKU
		"srun --mpi=pmix lmp -i in.lj.txt",
	}
	for _, w := range wants {
		if !strings.Contains(script, w) {
			t.Errorf("script missing %q:\n%s", w, script)
		}
	}
}

func TestSlurmScriptEthernetOmitsUCX(t *testing.T) {
	p := listing4Row()
	p.AppName = "matmul"
	p.SKU = "Standard_D64s_v5"
	p.SKUAlias = "d64s_v5"
	p.AppInput = map[string]string{"MATRIXSIZE": "4096"}
	sku := catalog.Default().MustLookup("d64s_v5")
	script := SlurmScript(p, sku)
	if strings.Contains(script, "UCX_NET_DEVICES") {
		t.Error("ethernet SKU should not pin an InfiniBand device")
	}
	if !strings.Contains(script, `export MATRIXSIZE="4096"`) {
		t.Errorf("input export missing:\n%s", script)
	}
}

func TestSlurmTimeLimit(t *testing.T) {
	cases := map[float64]string{
		36:   "00:05:00", // floor
		400:  "00:13:20",
		3600: "02:00:00",
		7000: "03:53:20",
	}
	for in, want := range cases {
		if got := slurmTimeLimit(in); got != want {
			t.Errorf("slurmTimeLimit(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestClusterRecipeYAML(t *testing.T) {
	sku := catalog.Default().MustLookup("hb120rs_v3")
	r := NewClusterRecipe(listing4Row(), sku, 3.60)
	y := r.YAML()
	wants := []string{
		"name: lammps-hb120rs_v3-16n",
		"vm_type: Standard_HB120rs_v3",
		"nodes: 16",
		"cores_per_node: 120",
		"interconnect: ib-hdr",
		"estimated_cost_per_hour_usd: 57.60", // 16 x $3.60
	}
	for _, w := range wants {
		if !strings.Contains(y, w) {
			t.Errorf("recipe missing %q:\n%s", w, y)
		}
	}
}

func TestBundleContainsBothArtifacts(t *testing.T) {
	sku := catalog.Default().MustLookup("hb120rs_v3")
	b := Bundle(listing4Row(), sku, 3.60)
	for _, w := range []string{"slurm job script", "cluster recipe", "#SBATCH", "vm_type:"} {
		if !strings.Contains(b, w) {
			t.Errorf("bundle missing %q", w)
		}
	}
}

func TestAppCommandsCoverAllApps(t *testing.T) {
	for _, app := range []string{"lammps", "openfoam", "wrf", "gromacs", "namd", "matmul"} {
		if appCommand(app) == app && app != "matmul" {
			t.Errorf("no launch line for %s", app)
		}
	}
	// Unknown apps fall back to their own name.
	if appCommand("mystery") != "mystery" {
		t.Error("unknown app should fall back to its name")
	}
}

func TestSortedKeys(t *testing.T) {
	got := sortedKeys(map[string]string{"z": "1", "a": "2", "m": "3"})
	if len(got) != 3 || got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Errorf("sortedKeys = %v", got)
	}
}

// Package replica ships a segment store from one writing leader to any
// number of read-only followers over plain HTTP.
//
// The protocol has three GET endpoints, all idempotent and cache-free:
//
//	/replica/v1/manifest                     current layout + durable position
//	/replica/v1/snapshot?seq=N               raw compacted snapshot bytes
//	/replica/v1/segment?seq=N&from=OFF       log segment bytes [OFF, durable)
//
// Followers mirror the leader's files byte-for-byte, so a fully caught-up
// follower's data directory is byte-identical to the leader's — there is no
// re-encoding step that could diverge. Only bytes below the leader's fsync
// frontier are ever served, which makes a follower cursor (seq, offset)
// stable across leader crashes: recovery never discards acknowledged bytes.
//
// Manifest and segment reads support long-polling (if_version / wait_ms) so
// an idle fleet costs one parked request per follower instead of a poll
// loop.
package replica

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"hpcadvisor/internal/storage"
)

// maxWait caps long-poll parking so dead followers cannot pin handlers
// forever; followers simply re-issue the request on timeout.
const maxWait = 30 * time.Second

// Leader serves a segment store's replication endpoints.
type Leader struct {
	store *storage.SegmentStore
}

// NewLeader wraps store for replication serving. The store must outlive the
// returned leader's handlers.
func NewLeader(store *storage.SegmentStore) *Leader {
	return &Leader{store: store}
}

// Mux returns the replication handler tree rooted at /replica/v1/.
func (l *Leader) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /replica/v1/manifest", l.handleManifest)
	mux.HandleFunc("GET /replica/v1/snapshot", l.handleSnapshot)
	mux.HandleFunc("GET /replica/v1/segment", l.handleSegment)
	return mux
}

// handleManifest serves the current manifest. With if_version=V and
// wait_ms=N it parks up to N milliseconds for the store version to pass V —
// the follower's "tell me when anything changes" primitive.
func (l *Leader) handleManifest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ifVersion, hasVersion := uint64(0), false
	if s := q.Get("if_version"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "invalid if_version")
			return
		}
		ifVersion, hasVersion = v, true
	}
	deadline := time.Now().Add(waitFor(q.Get("wait_ms"))) //hpcvet:allow simdeterminism long-poll deadlines are real wall-clock HTTP timeouts
	for {
		// Grab the watch channel before reading state: a change that lands
		// between the read and the select still closes this channel, so no
		// wakeup is lost.
		changed := l.store.Watch()
		m, err := l.store.Manifest()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if !hasVersion || m.Version > ifVersion {
			writeJSON(w, m)
			return
		}
		remain := time.Until(deadline) //hpcvet:allow simdeterminism long-poll deadlines are real wall-clock HTTP timeouts
		if remain <= 0 {
			writeJSON(w, m) // timed out: report unchanged state
			return
		}
		select {
		case <-changed:
		case <-time.After(remain): //hpcvet:allow simdeterminism long-poll park on the wall clock by design
		case <-r.Context().Done():
			return
		}
	}
}

func (l *Leader) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	seq, err := strconv.ParseUint(r.URL.Query().Get("seq"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid seq")
		return
	}
	data, err := l.store.SnapshotPayload(seq)
	if errors.Is(err, storage.ErrUnknownSegment) {
		httpError(w, http.StatusNotFound, "no such snapshot")
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// handleSegment serves log segment bytes from a cursor offset up to the
// durable frontier. With wait_ms it parks until new bytes are durable (or
// the segment seals, so the follower advances to the next one). Response
// headers carry the segment's current durable size and sealed flag so the
// follower can advance its cursor even on an empty body.
func (l *Leader) handleSegment(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid seq")
		return
	}
	from := int64(0)
	if s := q.Get("from"); s != "" {
		if from, err = strconv.ParseInt(s, 10, 64); err != nil {
			httpError(w, http.StatusBadRequest, "invalid from")
			return
		}
	}
	deadline := time.Now().Add(waitFor(q.Get("wait_ms"))) //hpcvet:allow simdeterminism long-poll deadlines are real wall-clock HTTP timeouts
	for {
		changed := l.store.Watch()
		data, info, err := l.store.ReadSegmentAt(seq, from)
		switch {
		case errors.Is(err, storage.ErrUnknownSegment):
			httpError(w, http.StatusNotFound, "no such segment")
			return
		case errors.Is(err, storage.ErrBadOffset):
			httpError(w, http.StatusRequestedRangeNotSatisfiable, err.Error())
			return
		case err != nil:
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		remain := time.Until(deadline) //hpcvet:allow simdeterminism long-poll deadlines are real wall-clock HTTP timeouts
		if len(data) > 0 || info.Sealed || remain <= 0 {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("X-Replica-Size", strconv.FormatInt(info.Size, 10))
			w.Header().Set("X-Replica-Sealed", strconv.FormatBool(info.Sealed))
			w.Header().Set("Content-Length", strconv.Itoa(len(data)))
			w.Write(data)
			return
		}
		select {
		case <-changed:
		case <-time.After(remain): //hpcvet:allow simdeterminism long-poll park on the wall clock by design
		case <-r.Context().Done():
			return
		}
	}
}

func waitFor(s string) time.Duration {
	if s == "" {
		return 0
	}
	ms, err := strconv.Atoi(s)
	if err != nil || ms < 0 {
		return 0
	}
	d := time.Duration(ms) * time.Millisecond
	if d > maxWait {
		return maxWait
	}
	return d
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

package replica_test

// Fault harness for the replication protocol. Every test runs a real
// leader (segment store + HTTP endpoints) and real followers over
// httptest, then injects the failures a serving fleet actually meets:
// leader crash with a torn WAL tail, follower crash with a torn mirror,
// compaction racing a lagging follower, and sustained writes against a
// slow follower. The oracle throughout is byte-identity: a caught-up
// follower's directory must equal the leader's file-for-file, and its
// dataset generation (the API ETag basis) must equal the leader's at the
// same log position.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hpcadvisor/internal/api"
	"hpcadvisor/internal/core"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/monitor"
	"hpcadvisor/internal/replica"
	"hpcadvisor/internal/service"
	"hpcadvisor/internal/storage"
)

func point(i int) dataset.Point {
	skus := []string{"Standard_HB120rs_v3", "Standard_HC44rs", "Standard_F72s_v2"}
	aliases := []string{"hb120v3", "hc44", "f72"}
	nodes := []int{1, 2, 4, 8}
	return dataset.Point{
		ScenarioID:  fmt.Sprintf("lammps-n%03d", i),
		AppName:     "lammps",
		SKU:         skus[i%len(skus)],
		SKUAlias:    aliases[i%len(aliases)],
		NNodes:      nodes[i%len(nodes)],
		PPN:         16,
		InputDesc:   fmt.Sprintf("BOXFACTOR=%d", 10+i%3),
		ExecTimeSec: 100.5 / float64(1+i%7),
		CostUSD:     0.125 * float64(1+i%5),
		Utilization: monitor.Sample{CPUUtil: 0.8, MemBWUtil: 0.5, NetUtil: 0.25},
		CollectedAt: float64(1000 + i),
	}
}

// testOpts makes follower rounds fast enough for -race CI runs.
func testOpts() *replica.FollowerOptions {
	return &replica.FollowerOptions{WaitMS: 50, RetryInterval: 5 * time.Millisecond}
}

func openLeader(t *testing.T, dir string, syncEvery int) *storage.SegmentStore {
	t.Helper()
	seg, err := storage.OpenSegments(dir, &storage.SegmentOptions{SyncEvery: syncEvery})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seg.Close() })
	return seg
}

func appendPoints(t *testing.T, seg *storage.SegmentStore, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := seg.Append(point(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func serveLeader(t *testing.T, seg *storage.SegmentStore) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(replica.NewLeader(seg).Mux())
	t.Cleanup(srv.Close)
	return srv
}

func startFollower(t *testing.T, url, dir string) (*replica.Follower, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	fol, err := replica.StartFollower(ctx, url, dir, testOpts())
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cancel()
		<-fol.Done()
	})
	return fol, cancel
}

func waitFor(t *testing.T, fol *replica.Follower, n int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := fol.WaitFor(ctx, n); err != nil {
		t.Fatalf("waiting for %d points (status %+v): %v", n, fol.Status(), err)
	}
}

func waitSynced(t *testing.T, fol *replica.Follower) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := fol.WaitCaughtUp(ctx); err != nil {
		t.Fatalf("waiting for sync (status %+v): %v", fol.Status(), err)
	}
}

// dirBytes reads every segment file of a store directory.
func dirBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return out
		}
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// requireIdentical asserts the follower's mirror is byte-identical to the
// leader's directory, allowing time for the last round to land.
func requireIdentical(t *testing.T, leaderDir, followerDir string) {
	t.Helper()
	eventually(t, "byte-identical directories", func() bool {
		return reflect.DeepEqual(dirBytes(t, leaderDir), dirBytes(t, followerDir))
	})
}

// tornTail simulates a crash mid-write: garbage bytes at the end of the
// newest log segment, as a torn OS-level write would leave them.
func tornTail(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		t.Fatal("no log segment to tear")
	}
	f, err := os.OpenFile(filepath.Join(dir, newest), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x99\x12torn-frame-garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// swapProxy gives the leader a stable URL across simulated kills: nil
// handler means the leader is down (502), exactly what a follower sees
// through a load balancer while the leader restarts.
type swapProxy struct {
	h atomic.Pointer[http.Handler]
}

func (p *swapProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := p.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "leader down", http.StatusBadGateway)
}

func (p *swapProxy) set(h http.Handler) {
	if h == nil {
		p.h.Store(nil)
		return
	}
	p.h.Store(&h)
}

func TestFollowerBootstrapsFromSnapshotAndConverges(t *testing.T) {
	leaderDir := t.TempDir()
	seg := openLeader(t, leaderDir, 1)
	appendPoints(t, seg, 0, 40)
	if err := seg.Compact(); err != nil {
		t.Fatal(err)
	}
	appendPoints(t, seg, 40, 20)
	srv := serveLeader(t, seg)

	followerDir := filepath.Join(t.TempDir(), "mirror")
	fol, _ := startFollower(t, srv.URL, followerDir)
	waitFor(t, fol, 60)

	if got := fol.Store().Len(); got != 60 {
		t.Fatalf("follower has %d points, want 60", got)
	}
	if gen := fol.Store().Generation(); gen != 60 {
		t.Fatalf("follower generation %d, want log position 60", gen)
	}
	requireIdentical(t, leaderDir, followerDir)

	leaderStore, err := seg.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(leaderStore.All(), fol.Store().All()) {
		t.Fatal("follower points differ from leader's in content or order")
	}
	waitSynced(t, fol)
	if st := fol.Status(); !st.Synced || st.Lag != 0 || st.Bootstraps != 0 {
		t.Fatalf("unexpected status after clean bootstrap: %+v", st)
	}
}

func TestFollowerLiveTailsAppends(t *testing.T) {
	leaderDir := t.TempDir()
	seg := openLeader(t, leaderDir, 1)
	srv := serveLeader(t, seg)
	followerDir := filepath.Join(t.TempDir(), "mirror")
	fol, _ := startFollower(t, srv.URL, followerDir)

	for round := 0; round < 5; round++ {
		appendPoints(t, seg, round*10, 10)
		waitFor(t, fol, (round+1)*10)
	}
	if gen := fol.Store().Generation(); gen != 50 {
		t.Fatalf("generation %d after tailing, want 50", gen)
	}
	requireIdentical(t, leaderDir, followerDir)
}

func TestLeaderKillRestartMidStreamWithTornTail(t *testing.T) {
	leaderDir := t.TempDir()
	seg := openLeader(t, leaderDir, 1)
	appendPoints(t, seg, 0, 30)

	proxy := &swapProxy{}
	proxy.set(replica.NewLeader(seg).Mux())
	srv := httptest.NewServer(proxy)
	t.Cleanup(srv.Close)

	followerDir := filepath.Join(t.TempDir(), "mirror")
	fol, _ := startFollower(t, srv.URL, followerDir)
	waitFor(t, fol, 30)

	// Kill the leader: stop serving, abandon the store without closing (a
	// crash never seals), and tear the tail of its active segment.
	proxy.set(nil)
	tornTail(t, leaderDir)

	// Restart: recovery truncates the torn tail, then serving resumes at
	// the same URL with more writes.
	seg2 := openLeader(t, leaderDir, 1)
	appendPoints(t, seg2, 30, 30)
	proxy.set(replica.NewLeader(seg2).Mux())

	waitFor(t, fol, 60)
	requireIdentical(t, leaderDir, followerDir)
	if st := fol.Status(); st.Bootstraps != 0 {
		t.Fatalf("leader restart should not force a follower re-bootstrap, got %+v", st)
	}
}

func TestFollowerKillRestartWithTornLocalTail(t *testing.T) {
	leaderDir := t.TempDir()
	seg := openLeader(t, leaderDir, 1)
	appendPoints(t, seg, 0, 50)
	srv := serveLeader(t, seg)

	followerDir := filepath.Join(t.TempDir(), "mirror")
	fol1, cancel1 := startFollower(t, srv.URL, followerDir)
	waitFor(t, fol1, 50)

	// Kill the follower, then tear its mirror's tail as a crashed disk
	// write would.
	cancel1()
	<-fol1.Done()
	tornTail(t, followerDir)

	// A restarted follower repairs the tear, resumes from its (now
	// shorter) cursor, and converges.
	appendPoints(t, seg, 50, 10)
	fol2, _ := startFollower(t, srv.URL, followerDir)
	waitFor(t, fol2, 60)
	requireIdentical(t, leaderDir, followerDir)
	if gen := fol2.Store().Generation(); gen != 60 {
		t.Fatalf("generation %d after restart, want 60", gen)
	}
}

func TestFollowerAdoptsCompactionWhileTailing(t *testing.T) {
	leaderDir := t.TempDir()
	seg := openLeader(t, leaderDir, 1)
	appendPoints(t, seg, 0, 40)
	srv := serveLeader(t, seg)

	followerDir := filepath.Join(t.TempDir(), "mirror")
	fol, _ := startFollower(t, srv.URL, followerDir)
	waitFor(t, fol, 40)

	if err := seg.Compact(); err != nil {
		t.Fatal(err)
	}
	appendPoints(t, seg, 40, 20)

	waitFor(t, fol, 60)
	requireIdentical(t, leaderDir, followerDir)
	if st := fol.Status(); st.Bootstraps != 0 {
		t.Fatalf("compaction adoption should not wipe the mirror, got %+v", st)
	}
	if gen := fol.Store().Generation(); gen != 60 {
		t.Fatalf("generation %d after compaction, want 60", gen)
	}
}

func TestLaggingFollowerCrossesCompaction(t *testing.T) {
	leaderDir := t.TempDir()
	seg := openLeader(t, leaderDir, 1)
	appendPoints(t, seg, 0, 30)

	proxy := &swapProxy{}
	proxy.set(replica.NewLeader(seg).Mux())
	srv := httptest.NewServer(proxy)
	t.Cleanup(srv.Close)

	followerDir := filepath.Join(t.TempDir(), "mirror")
	fol, _ := startFollower(t, srv.URL, followerDir)
	waitFor(t, fol, 30)

	// Cut the follower off, then append and compact: every log segment the
	// follower's cursor points into is folded away.
	proxy.set(nil)
	appendPoints(t, seg, 30, 30)
	if err := seg.Compact(); err != nil {
		t.Fatal(err)
	}
	appendPoints(t, seg, 60, 10)
	proxy.set(replica.NewLeader(seg).Mux())

	// The follower bridges the gap through the snapshot: its applied
	// prefix is a prefix of the snapshot's append order, so it adopts the
	// snapshot and appends the missing suffix — no wipe needed.
	waitFor(t, fol, 70)
	requireIdentical(t, leaderDir, followerDir)
	if gen := fol.Store().Generation(); gen != 70 {
		t.Fatalf("generation %d after crossing compaction, want 70", gen)
	}
}

func TestLaggingFollowerRestartCrossesCompaction(t *testing.T) {
	leaderDir := t.TempDir()
	seg := openLeader(t, leaderDir, 1)
	appendPoints(t, seg, 0, 30)
	srv := serveLeader(t, seg)

	followerDir := filepath.Join(t.TempDir(), "mirror")
	fol1, cancel1 := startFollower(t, srv.URL, followerDir)
	waitFor(t, fol1, 30)
	cancel1()
	<-fol1.Done()

	appendPoints(t, seg, 30, 30)
	if err := seg.Compact(); err != nil {
		t.Fatal(err)
	}

	// Reboot against a leader whose log was entirely folded: the follower
	// drops its folded mirror files, adopts the snapshot, and loads through
	// the seeded no-resort path.
	fol2, _ := startFollower(t, srv.URL, followerDir)
	waitFor(t, fol2, 60)
	requireIdentical(t, leaderDir, followerDir)
	if gen := fol2.Store().Generation(); gen != 60 {
		t.Fatalf("generation %d after reboot across compaction, want 60", gen)
	}
}

// TestSlowFollowerNeverOverreachesDurable hammers the leader with live
// appends while the follower tails, and asserts the replication lag
// invariant throughout: a follower never applies a point the leader has
// not made durable, so a leader crash can never strand a follower ahead
// of recovery.
func TestSlowFollowerNeverOverreachesDurable(t *testing.T) {
	leaderDir := t.TempDir()
	seg := openLeader(t, leaderDir, 4)
	srv := serveLeader(t, seg)
	fol, _ := startFollower(t, srv.URL, filepath.Join(t.TempDir(), "mirror"))

	const total = 400
	for i := 0; i < total; i++ {
		if err := seg.Append(point(i)); err != nil {
			t.Fatal(err)
		}
		if i%17 == 0 {
			m, err := seg.Manifest()
			if err != nil {
				t.Fatal(err)
			}
			if applied := fol.Status().Applied; applied > m.Points {
				t.Fatalf("follower applied %d points but only %d are durable", applied, m.Points)
			}
		}
	}
	if err := seg.Sync(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, fol, total)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := fol.WaitCaughtUp(ctx); err != nil {
		t.Fatal(err)
	}
	if st := fol.Status(); st.Lag != 0 {
		t.Fatalf("lag %d after catch-up, want 0", st.Lag)
	}
}

// TestLeaderFollowerServeIdenticalResponses is the acceptance check: at
// the same log position, leader and follower return byte-identical
// /api/v1/advice bodies under the same ETag, and a client can revalidate
// against either.
func TestLeaderFollowerServeIdenticalResponses(t *testing.T) {
	leaderDir := filepath.Join(t.TempDir(), "dataset.seg")
	st, backend, err := storage.Open(leaderDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { backend.Close() })
	seg := backend.(*storage.SegmentStore)

	leaderAdv := core.New("sub-leader")
	leaderAdv.SetStore(st)
	leaderAdv.Backend = backend
	for i := 0; i < 25; i++ {
		st.Add(point(i))
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	leaderMux := http.NewServeMux()
	leaderMux.Handle("/api/v1/", api.New(service.New(leaderAdv)).Mux())
	leaderMux.Handle("/replica/v1/", replica.NewLeader(seg).Mux())
	leaderSrv := httptest.NewServer(leaderMux)
	t.Cleanup(leaderSrv.Close)

	fol, _ := startFollower(t, leaderSrv.URL, filepath.Join(t.TempDir(), "mirror"))
	waitFor(t, fol, 25)

	followerAdv := core.New("sub-follower")
	followerAdv.SetStore(fol.Store())
	followerSrv := httptest.NewServer(api.New(service.New(followerAdv)).Mux())
	t.Cleanup(followerSrv.Close)

	get := func(base, path, inm string) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodGet, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	for _, path := range []string{"/api/v1/advice", "/api/v1/advice?app=lammps&sort=cost"} {
		lresp, lbody := get(leaderSrv.URL, path, "")
		fresp, fbody := get(followerSrv.URL, path, "")
		if lresp.StatusCode != http.StatusOK || fresp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d vs %d", path, lresp.StatusCode, fresp.StatusCode)
		}
		le, fe := lresp.Header.Get("ETag"), fresp.Header.Get("ETag")
		if le == "" || le != fe {
			t.Fatalf("%s: ETag mismatch at same log position: leader %q follower %q", path, le, fe)
		}
		if !bytes.Equal(lbody, fbody) {
			t.Fatalf("%s: bodies differ at same log position", path)
		}
		// A cache warmed by the leader revalidates successfully against the
		// follower — the load-balancer coherence property.
		revalidated, _ := get(followerSrv.URL, path, le)
		if revalidated.StatusCode != http.StatusNotModified {
			t.Fatalf("%s: follower revalidation with leader ETag got %d, want 304", path, revalidated.StatusCode)
		}
	}
}

func TestReadOnlyGuardRejectsWrites(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(replica.ReadOnly(inner))
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/advice")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET through guard got %d, want 200", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/collect", "application/x-www-form-urlencoded", strings.NewReader("deployment=x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("POST through guard got %d, want 403", resp.StatusCode)
	}
	var body struct {
		Error struct {
			Status  int    `json:"status"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Status != http.StatusForbidden || !strings.Contains(body.Error.Message, "read-only") {
		t.Fatalf("unexpected guard error body: %+v", body)
	}
}

func TestFollowerStatusEndpoint(t *testing.T) {
	leaderDir := t.TempDir()
	seg := openLeader(t, leaderDir, 1)
	appendPoints(t, seg, 0, 10)
	srv := serveLeader(t, seg)
	fol, _ := startFollower(t, srv.URL, filepath.Join(t.TempDir(), "mirror"))
	waitFor(t, fol, 10)
	waitSynced(t, fol)

	statusSrv := httptest.NewServer(fol.StatusHandler())
	t.Cleanup(statusSrv.Close)
	resp, err := http.Get(statusSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st replica.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Applied != 10 || !st.Synced || st.Fault != "" {
		t.Fatalf("unexpected status body: %+v", st)
	}
}

// BenchmarkReplicaFanoutThroughput measures replication throughput with
// one writer and a small follower fleet: points/s is the aggregate rate
// at which appended points land applied across all followers.
func BenchmarkReplicaFanoutThroughput(b *testing.B) {
	const fanout = 4
	seg, err := storage.OpenSegments(b.TempDir(), &storage.SegmentOptions{SyncEvery: 16})
	if err != nil {
		b.Fatal(err)
	}
	defer seg.Close()
	srv := httptest.NewServer(replica.NewLeader(seg).Mux())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	fols := make([]*replica.Follower, fanout)
	for i := range fols {
		fol, err := replica.StartFollower(ctx, srv.URL, filepath.Join(b.TempDir(), "mirror"), testOpts())
		if err != nil {
			cancel()
			b.Fatal(err)
		}
		fols[i] = fol
	}
	defer func() {
		cancel()
		for _, fol := range fols {
			<-fol.Done()
		}
	}()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := seg.Append(point(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := seg.Sync(); err != nil {
		b.Fatal(err)
	}
	for _, fol := range fols {
		if err := fol.WaitFor(ctx, b.N); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*fanout)/b.Elapsed().Seconds(), "points/s")
}

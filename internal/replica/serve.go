package replica

import (
	"encoding/json"
	"net/http"
)

// ReadOnly guards a handler tree for follower serving: only GET and HEAD
// pass through. Replicas hold a read-only copy of the leader's log —
// accepting a mutation (a collect, a deployment create) would fork the
// dataset from the log it replays, so writes get a 403 pointing at the
// leader instead of a silent divergence.
func ReadOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet || r.Method == http.MethodHead {
			h.ServeHTTP(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		json.NewEncoder(w).Encode(map[string]any{
			"error": map[string]any{
				"status":  http.StatusForbidden,
				"message": "read-only replica: send writes to the leader",
			},
		})
	})
}

// StatusHandler serves the follower's replication position as JSON on
// GET /replica/v1/status.
func (f *Follower) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, f.Status())
	})
}

package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/fsatomic"
	"hpcadvisor/internal/storage"
)

// Follower failure classification. Everything else (network errors, 5xx)
// is transient and retried with backoff.
var (
	// errStale: the leader no longer serves what the manifest promised — a
	// compaction raced the fetch. Re-reading the manifest resolves it.
	errStale = errors.New("replica: manifest out of date")
	// errDiverged: local bytes are not a prefix of the leader's log (or a
	// replicated range failed to decode). A wipe-and-rebootstrap resolves it
	// when the leader still carries everything applied here; otherwise the
	// follower faults rather than serve a store that contradicts its disk.
	errDiverged = errors.New("replica: local state diverged from leader")
	// errFault: the in-memory store holds points the leader's log no longer
	// explains, so replication cannot continue without lying to readers.
	// The follower keeps serving its last-good dataset and reports the fault.
	errFault = errors.New("replica: unrecoverable divergence")
)

// FollowerOptions tune a follower's sync loop.
type FollowerOptions struct {
	// WaitMS is how long manifest long-polls park on an idle leader before
	// re-issuing. Default 2000.
	WaitMS int
	// RetryInterval backs off transient sync failures. Default 250ms.
	RetryInterval time.Duration
	// Client overrides the HTTP client (tests inject proxies). Its timeout
	// must exceed WaitMS or every idle long-poll errors.
	Client *http.Client
}

// Status is a follower's replication position, served on /replica/v1/status
// and folded into /healthz.
type Status struct {
	LeaderURL string `json:"leader_url"`
	// Applied is the local log position: points applied to the in-memory
	// store, equal to the store generation.
	Applied int `json:"applied_points"`
	// LeaderPoints is the leader's durable log position at the last
	// successful sync; Lag is the gap observed then.
	LeaderPoints int `json:"leader_points"`
	Lag          int `json:"lag_points"`
	// Synced reports at least one fully successful sync round.
	Synced bool `json:"synced"`
	// Bootstraps counts full wipe-and-resync recoveries.
	Bootstraps int    `json:"bootstraps"`
	LastError  string `json:"last_error,omitempty"`
	// Fault, when set, is permanent: replication stopped, reads serve the
	// last-good dataset, and /healthz reports degraded.
	Fault string `json:"fault,omitempty"`
}

// Follower mirrors a leader's segment store into a local directory and
// applies replicated frames to an in-memory dataset store.
//
// The design splits every sync round into two idempotent halves:
//
//	mirror: disk <- leader   (byte-exact file copies up to the durable
//	                          frontier; snapshot adoption; folded-file GC)
//	apply:  memory <- disk   (incremental frame decode of the newly
//	                          mirrored bytes, in leader append order)
//
// Either half can fail or be killed at any byte; the next round resumes
// from what disk actually holds. Because only leader-durable bytes are ever
// mirrored, the local directory is always a byte prefix of the leader's —
// after a full catch-up it is byte-identical.
type Follower struct {
	leaderURL string
	dir       string
	opts      FollowerOptions
	client    *http.Client

	// store is created once at startup and never swapped: API handlers read
	// the Advisor.Store field without synchronization, so replication must
	// only ever append through the store's own lock.
	store *dataset.Store

	// tails tracks, per local segment, how many bytes the apply half has
	// decoded. Only the sync goroutine touches it.
	tails map[uint64]*segTail

	mu      sync.Mutex
	status  Status
	changed chan struct{} // closed+replaced on every status change

	done chan struct{}
}

type segTail struct {
	dec *storage.LogStreamDecoder
	fed int64
}

// StartFollower bootstraps a follower in dir against the leader's base URL
// and starts its sync loop, which runs until ctx is cancelled. dir may be
// empty (first boot), hold a previous run's mirror (resume, torn tail
// repaired first), or be mid-bootstrap from a crash — all converge.
//
// The initial snapshot+segment mirror happens before the dataset store is
// built, so a first boot loads through the compacted snapshot's sorted
// order (the no-resort path) instead of replaying and re-sorting the log.
// If the leader is unreachable at startup the follower serves whatever its
// directory already holds and keeps retrying in the background.
func StartFollower(ctx context.Context, leaderURL, dir string, opts *FollowerOptions) (*Follower, error) {
	f := &Follower{
		leaderURL: strings.TrimRight(leaderURL, "/"),
		dir:       dir,
		tails:     make(map[uint64]*segTail),
		changed:   make(chan struct{}),
		done:      make(chan struct{}),
	}
	if opts != nil {
		f.opts = *opts
	}
	if f.opts.WaitMS <= 0 {
		f.opts.WaitMS = 2000
	}
	if f.opts.RetryInterval <= 0 {
		f.opts.RetryInterval = 250 * time.Millisecond
	}
	f.client = f.opts.Client
	if f.client == nil {
		f.client = &http.Client{}
	}
	f.status.LeaderURL = f.leaderURL

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Repair a torn tail from a previous follower crash before anything
	// else: the mirror resumes from the local file size, which must sit on
	// a frame boundary to be a valid leader-side offset.
	if err := f.recoverLocal(); err != nil {
		return nil, err
	}
	if m, err := f.fetchManifest(ctx, 0, false); err == nil {
		if merr := f.mirror(ctx, m); errors.Is(merr, errDiverged) {
			// The directory mirrors some other log (a wiped leader's past
			// life, a copy-paste accident). Nothing is being served yet, so
			// restarting from empty is safe — and the only correct option.
			if werr := f.wipe(); werr != nil {
				return nil, werr
			}
			f.status.Bootstraps++
			f.mirror(ctx, m)
		}
	}
	st, err := f.loadLocal()
	if err != nil {
		return nil, err
	}
	f.store = st
	f.status.Applied = st.Len()
	if err := f.initTails(); err != nil {
		return nil, err
	}
	go f.run(ctx)
	return f, nil
}

// Store returns the dataset store replication appends into. It is safe for
// concurrent readers and is never replaced for the follower's lifetime.
func (f *Follower) Store() *dataset.Store { return f.store }

// Status returns the current replication position.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.status
}

// Done is closed when the sync loop has exited.
func (f *Follower) Done() <-chan struct{} { return f.done }

// WaitFor blocks until the follower has applied at least n points (or ctx
// ends, or the follower faults).
func (f *Follower) WaitFor(ctx context.Context, n int) error {
	return f.wait(ctx, func(st Status) bool { return st.Applied >= n })
}

// WaitCaughtUp blocks until a sync round observes zero lag against the
// leader's durable position (or ctx ends, or the follower faults).
func (f *Follower) WaitCaughtUp(ctx context.Context) error {
	return f.wait(ctx, func(st Status) bool { return st.Synced && st.Lag == 0 })
}

func (f *Follower) wait(ctx context.Context, ok func(Status) bool) error {
	for {
		f.mu.Lock()
		st := f.status
		ch := f.changed
		f.mu.Unlock()
		if st.Fault != "" {
			return fmt.Errorf("%w: %s", errFault, st.Fault)
		}
		if ok(st) {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

//
// Sync loop
//

func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	idle := false
	var lastVersion uint64
	for ctx.Err() == nil {
		m, err := f.fetchManifest(ctx, lastVersion, idle)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			f.setError(err)
			idle = false
			sleep(ctx, f.opts.RetryInterval)
			continue
		}
		// Adopt whatever version the leader reports — a restarted leader
		// resets its counter, and chasing the old one would park every poll.
		lastVersion = m.Version
		err = f.syncRound(ctx, m)
		switch {
		case err == nil:
			f.setSynced(m)
			idle = true
		case errors.Is(err, errStale):
			idle = false // a compaction raced us: re-read the manifest now
		case errors.Is(err, errDiverged):
			idle = false
			if rerr := f.rebootstrap(ctx); rerr != nil {
				if errors.Is(rerr, errFault) {
					f.setFault(rerr)
					return
				}
				if ctx.Err() != nil {
					return
				}
				f.setError(rerr)
				sleep(ctx, f.opts.RetryInterval)
			}
		default:
			if ctx.Err() != nil {
				return
			}
			f.setError(err)
			idle = false
			sleep(ctx, f.opts.RetryInterval)
		}
	}
}

func (f *Follower) syncRound(ctx context.Context, m storage.Manifest) error {
	if err := f.mirror(ctx, m); err != nil {
		return err
	}
	return f.apply(m)
}

// mirror brings the local directory up to the manifest: adopt a newer
// compacted snapshot (and delete the log files it folded), then extend each
// log segment with the leader's bytes from the local size up to the durable
// frontier. Purely file-level; resumable from any interruption.
func (f *Follower) mirror(ctx context.Context, m storage.Manifest) error {
	walSizes, localSnap, err := f.scanLocal()
	if err != nil {
		return err
	}

	if m.Snapshot == nil && localSnap > 0 {
		return fmt.Errorf("%w: local snapshot %d but leader has none", errDiverged, localSnap)
	}
	if m.Snapshot != nil {
		if localSnap > m.Snapshot.Seq {
			return fmt.Errorf("%w: local snapshot %d ahead of leader's %d", errDiverged, localSnap, m.Snapshot.Seq)
		}
		if localSnap < m.Snapshot.Seq {
			data, err := f.fetchSnapshot(ctx, m.Snapshot.Seq)
			if err != nil {
				return err
			}
			if err := fsatomic.WriteFile(filepath.Join(f.dir, storage.SnapshotSegmentName(m.Snapshot.Seq)), data, 0o644); err != nil {
				return err
			}
			if localSnap > 0 {
				os.Remove(filepath.Join(f.dir, storage.SnapshotSegmentName(localSnap)))
			}
			// Drop the log files the snapshot folded; their frames live in
			// the snapshot now (same points, same append order).
			for seq := range walSizes {
				if seq <= m.Snapshot.Seq {
					os.Remove(filepath.Join(f.dir, storage.LogSegmentName(seq)))
					delete(walSizes, seq)
					delete(f.tails, seq)
				}
			}
		}
	}

	// A local log segment the leader does not list (and no snapshot folded)
	// mirrors a log the leader no longer has.
	listed := make(map[uint64]bool, len(m.Segments))
	for _, seg := range m.Segments {
		listed[seg.Seq] = true
	}
	for seq := range walSizes {
		if !listed[seq] {
			return fmt.Errorf("%w: local segment %d not on leader", errDiverged, seq)
		}
	}

	for _, seg := range m.Segments {
		local := walSizes[seg.Seq]
		if local > seg.Size && seg.Sealed {
			return fmt.Errorf("%w: local segment %d has %d bytes, leader sealed it at %d", errDiverged, seg.Seq, local, seg.Size)
		}
		for local < seg.Size {
			data, info, err := f.fetchSegment(ctx, seg.Seq, local)
			if err != nil {
				return err
			}
			if len(data) == 0 {
				break // frontier moved backwards? re-manifest rather than spin
			}
			if err := f.appendLocal(seg.Seq, local, data); err != nil {
				return err
			}
			local += int64(len(data))
			if local >= info.Size {
				break
			}
		}
	}
	return nil
}

// apply catches the in-memory store up to the mirrored files, decoding only
// bytes beyond each segment's tail cursor. If the snapshot covers points
// not yet applied (a bootstrap, or a compaction adopted mid-lag), the store
// is instead caught up by reloading the directory and appending the missing
// suffix — valid because the applied sequence is always a prefix of the
// leader's append order.
func (f *Follower) apply(m storage.Manifest) error {
	applied := f.applied()
	if m.Snapshot != nil && applied < m.Snapshot.Count {
		return f.reloadSuffix()
	}
	for _, seg := range m.Segments {
		path := filepath.Join(f.dir, storage.LogSegmentName(seg.Seq))
		fi, err := os.Stat(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // not mirrored yet (or re-folded); next round
			}
			return err
		}
		t := f.tails[seg.Seq]
		if t == nil {
			t = &segTail{dec: storage.NewLogStreamDecoder(seg.Seq)}
			f.tails[seg.Seq] = t
		}
		if t.fed > fi.Size() {
			return fmt.Errorf("%w: segment %d shrank under its decode cursor", errDiverged, seg.Seq)
		}
		if t.fed == fi.Size() {
			continue
		}
		data := make([]byte, fi.Size()-t.fed)
		rf, err := os.Open(path)
		if err != nil {
			return err
		}
		_, err = rf.ReadAt(data, t.fed)
		rf.Close()
		if err != nil {
			return err
		}
		ferr := t.dec.Feed(data, func(p dataset.Point) error {
			f.store.Add(p)
			f.bumpApplied()
			return nil
		})
		t.fed = fi.Size()
		if ferr != nil {
			return fmt.Errorf("%w: %v", errDiverged, ferr)
		}
	}
	return nil
}

// reloadSuffix re-reads the whole local directory and appends the points
// beyond the current applied position, then re-bases every tail cursor on
// the file sizes. Used when incremental decode cannot bridge the gap (the
// snapshot jumped ahead of the applied position, or after a rebootstrap).
func (f *Follower) reloadSuffix() error {
	st, err := f.loadLocal()
	if err != nil {
		return err
	}
	pts := st.All()
	applied := f.applied()
	if len(pts) < applied {
		return fmt.Errorf("%w: %d points applied but the leader's log explains only %d", errFault, applied, len(pts))
	}
	for _, p := range pts[applied:] {
		f.store.Add(p)
	}
	f.setApplied(len(pts))
	return f.initTails()
}

// rebootstrap wipes the mirror, re-copies the leader's current state, and
// reconciles the in-memory store against it.
func (f *Follower) rebootstrap(ctx context.Context) error {
	if err := f.wipe(); err != nil {
		return err
	}
	f.mu.Lock()
	f.status.Bootstraps++
	f.mu.Unlock()
	m, err := f.fetchManifest(ctx, 0, false)
	if err != nil {
		return err
	}
	if err := f.mirror(ctx, m); err != nil {
		return err
	}
	return f.reloadSuffix()
}

//
// Local file plumbing
//

// recoverLocal opens the directory through the storage engine purely for
// its recovery side effects: truncating a torn tail, clearing staging
// files, dropping snapshot-folded segments a crash left behind.
func (f *Follower) recoverLocal() error {
	seg, err := storage.OpenSegments(f.dir, nil)
	if err != nil {
		return err
	}
	return seg.Close()
}

// loadLocal loads the mirrored directory into a dataset store (points in
// leader append order, seeded with the snapshot's sorted prefix).
func (f *Follower) loadLocal() (*dataset.Store, error) {
	seg, err := storage.OpenSegments(f.dir, nil)
	if err != nil {
		return nil, err
	}
	defer seg.Close()
	return seg.Load()
}

// initTails positions every segment's decode cursor at its current file
// size by replaying the local bytes without emitting — those points are
// already in the store.
func (f *Follower) initTails() error {
	f.tails = make(map[uint64]*segTail)
	walSizes, _, err := f.scanLocal()
	if err != nil {
		return err
	}
	for seq, size := range walSizes {
		data, err := os.ReadFile(filepath.Join(f.dir, storage.LogSegmentName(seq)))
		if err != nil {
			return err
		}
		t := &segTail{dec: storage.NewLogStreamDecoder(seq)}
		if err := t.dec.Feed(data, func(dataset.Point) error { return nil }); err != nil {
			return fmt.Errorf("%w: %v", errDiverged, err)
		}
		t.fed = size
		f.tails[seq] = t
	}
	return nil
}

// scanLocal lists the mirrored segment files: log sizes by seq, and the
// snapshot seq (0 if none).
func (f *Follower) scanLocal() (map[uint64]int64, uint64, error) {
	walSizes := make(map[uint64]int64)
	var snapSeq uint64
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, 0, err
	}
	for _, e := range entries {
		seq, kind, ok := storage.ParseSegmentName(e.Name())
		if !ok {
			continue
		}
		switch kind {
		case storage.SegmentLog:
			fi, err := e.Info()
			if err != nil {
				return nil, 0, err
			}
			walSizes[seq] = fi.Size()
		case storage.SegmentSnapshot:
			if seq > snapSeq {
				snapSeq = seq
			}
		}
	}
	return walSizes, snapSeq, nil
}

// appendLocal extends a mirrored log segment with leader bytes starting at
// offset at (which must equal the current file size) and fsyncs, so the
// local durable state never trails what apply has decoded.
func (f *Follower) appendLocal(seq uint64, at int64, data []byte) error {
	path := filepath.Join(f.dir, storage.LogSegmentName(seq))
	wf, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer wf.Close()
	fi, err := wf.Stat()
	if err != nil {
		return err
	}
	if fi.Size() != at {
		return fmt.Errorf("%w: segment %d is %d bytes locally, expected %d", errDiverged, seq, fi.Size(), at)
	}
	if _, err := wf.WriteAt(data, at); err != nil {
		return err
	}
	return wf.Sync()
}

func (f *Follower) wipe() error {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".seg") || strings.HasSuffix(name, ".tmp") || strings.Contains(name, ".tmp-") {
			if err := os.Remove(filepath.Join(f.dir, name)); err != nil {
				return err
			}
		}
	}
	f.tails = make(map[uint64]*segTail)
	return nil
}

//
// Leader HTTP client
//

func (f *Follower) fetchManifest(ctx context.Context, ifVersion uint64, idle bool) (storage.Manifest, error) {
	q := url.Values{}
	if idle {
		q.Set("if_version", strconv.FormatUint(ifVersion, 10))
		q.Set("wait_ms", strconv.Itoa(f.opts.WaitMS))
	}
	body, _, err := f.get(ctx, "/replica/v1/manifest", q)
	if err != nil {
		return storage.Manifest{}, err
	}
	var m storage.Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return storage.Manifest{}, fmt.Errorf("replica: decoding manifest: %w", err)
	}
	return m, nil
}

func (f *Follower) fetchSnapshot(ctx context.Context, seq uint64) ([]byte, error) {
	q := url.Values{"seq": {strconv.FormatUint(seq, 10)}}
	body, _, err := f.get(ctx, "/replica/v1/snapshot", q)
	return body, err
}

func (f *Follower) fetchSegment(ctx context.Context, seq uint64, from int64) ([]byte, storage.SegmentInfo, error) {
	q := url.Values{
		"seq":  {strconv.FormatUint(seq, 10)},
		"from": {strconv.FormatInt(from, 10)},
	}
	body, hdr, err := f.get(ctx, "/replica/v1/segment", q)
	if err != nil {
		return nil, storage.SegmentInfo{}, err
	}
	info := storage.SegmentInfo{Seq: seq}
	info.Size, _ = strconv.ParseInt(hdr.Get("X-Replica-Size"), 10, 64)
	info.Sealed, _ = strconv.ParseBool(hdr.Get("X-Replica-Sealed"))
	return body, info, nil
}

func (f *Follower) get(ctx context.Context, path string, q url.Values) ([]byte, http.Header, error) {
	u := f.leaderURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, resp.Header, nil
	case http.StatusNotFound:
		return nil, nil, fmt.Errorf("%w: %s gone", errStale, path)
	case http.StatusRequestedRangeNotSatisfiable:
		return nil, nil, fmt.Errorf("%w: %s rejected offset", errDiverged, path)
	default:
		return nil, nil, fmt.Errorf("replica: leader returned %s for %s", resp.Status, path)
	}
}

//
// Status bookkeeping
//

func (f *Follower) applied() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.status.Applied
}

func (f *Follower) bumpApplied() {
	f.mu.Lock()
	f.status.Applied++
	f.notify()
	f.mu.Unlock()
}

func (f *Follower) setApplied(n int) {
	f.mu.Lock()
	f.status.Applied = n
	f.notify()
	f.mu.Unlock()
}

func (f *Follower) setSynced(m storage.Manifest) {
	f.mu.Lock()
	f.status.Synced = true
	f.status.LeaderPoints = m.Points
	f.status.Lag = m.Points - f.status.Applied
	if f.status.Lag < 0 {
		f.status.Lag = 0
	}
	f.status.LastError = ""
	f.notify()
	f.mu.Unlock()
}

func (f *Follower) setError(err error) {
	f.mu.Lock()
	f.status.LastError = err.Error()
	f.notify()
	f.mu.Unlock()
}

func (f *Follower) setFault(err error) {
	f.mu.Lock()
	f.status.Fault = err.Error()
	f.notify()
	f.mu.Unlock()
}

// notify wakes status waiters. Callers hold f.mu.
func (f *Follower) notify() {
	close(f.changed)
	f.changed = make(chan struct{})
}

func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d) //hpcvet:allow simdeterminism replication retry backoff waits on real time
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

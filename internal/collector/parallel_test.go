package collector

import (
	"bytes"
	"math"
	"testing"

	"hpcadvisor/internal/scenario"
)

// collectWith runs one fresh collection and returns everything needed for
// equivalence checks.
func collectWith(t *testing.T, opts Options, skus []string, nnodes []int) (*fixture, *scenario.List, *Report) {
	t.Helper()
	f := newFixture(t)
	list := smallLAMMPSList(t, skus, nnodes)
	rep, err := f.col.Run(list, f.store, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f, list, rep
}

var threeSKUs = []string{"Standard_HB120rs_v3", "Standard_HB120rs_v2", "Standard_HC44rs"}

// TestParallelGoldenEquivalence is the engine's core contract: a multi-SKU
// sweep collected with MaxParallelPools > 1 must produce a dataset
// byte-identical to the sequential run — timestamps, ordering, every field.
func TestParallelGoldenEquivalence(t *testing.T) {
	nnodes := []int{1, 2, 4, 8}
	seqF, seqList, seqRep := collectWith(t, Options{}, threeSKUs, nnodes)
	parF, parList, parRep := collectWith(t, Options{MaxParallelPools: 3}, threeSKUs, nnodes)

	seqBytes, err := seqF.store.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parBytes, err := parF.store.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqBytes, parBytes) {
		t.Fatalf("parallel dataset differs from sequential:\nseq:\n%s\npar:\n%s", seqBytes, parBytes)
	}

	// The recorded task lists must also match: same statuses, same batch
	// task IDs (renumbered into the global sequence).
	seqTasks, err := seqList.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parTasks, err := parList.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqTasks, parTasks) {
		t.Fatalf("parallel task list differs from sequential:\nseq:\n%s\npar:\n%s", seqTasks, parTasks)
	}

	assertReportsEqual(t, seqRep, parRep)
}

// TestParallelSpotEquivalence checks that spot collections — where
// preemption draws and retries shape the timeline — are also mode
// independent, because draws are keyed to pool-relative coordinates.
func TestParallelSpotEquivalence(t *testing.T) {
	opts := Options{UseSpot: true, MaxAttempts: 12}
	popts := opts
	popts.MaxParallelPools = 3
	nnodes := []int{1, 2, 3, 4, 8}
	seqF, _, seqRep := collectWith(t, opts, threeSKUs, nnodes)
	parF, _, parRep := collectWith(t, popts, threeSKUs, nnodes)

	seqBytes, _ := seqF.store.Marshal()
	parBytes, _ := parF.store.Marshal()
	if !bytes.Equal(seqBytes, parBytes) {
		t.Fatalf("spot parallel dataset differs from sequential:\nseq:\n%s\npar:\n%s", seqBytes, parBytes)
	}
	if seqRep.Attempts <= seqRep.Completed {
		t.Fatalf("fixture has no retries (attempts %d, completed %d); spot equivalence untested",
			seqRep.Attempts, seqRep.Completed)
	}
	assertReportsEqual(t, seqRep, parRep)
}

// TestParallelRepeatable: two concurrent runs with the same inputs are
// identical to each other regardless of goroutine scheduling. Run with
// -race (CI does) this also exercises the engine's synchronization across
// >= 3 lanes.
func TestParallelRepeatable(t *testing.T) {
	opts := Options{MaxParallelPools: 3, Progress: func(t *scenario.Task) {}}
	aF, _, _ := collectWith(t, opts, threeSKUs, []int{1, 2, 4})
	bF, _, _ := collectWith(t, opts, threeSKUs, []int{1, 2, 4})
	aBytes, _ := aF.store.Marshal()
	bBytes, _ := bF.store.Marshal()
	if !bytes.Equal(aBytes, bBytes) {
		t.Fatal("two identical parallel runs produced different datasets")
	}
}

// TestReportLaneAccounting: per-lane numbers sum exactly to the run totals
// in both modes, and both modes agree lane by lane.
func TestReportLaneAccounting(t *testing.T) {
	_, _, seqRep := collectWith(t, Options{}, threeSKUs, []int{1, 2, 4})
	_, _, parRep := collectWith(t, Options{MaxParallelPools: 2}, threeSKUs, []int{1, 2, 4})

	for _, rep := range []*Report{seqRep, parRep} {
		if len(rep.Lanes) != 3 {
			t.Fatalf("lanes = %d, want 3", len(rep.Lanes))
		}
		var completed, failed, skipped, attempts int
		var ns, cost, vsec float64
		for _, ln := range rep.Lanes {
			completed += ln.Completed
			failed += ln.Failed
			skipped += ln.Skipped
			attempts += ln.Attempts
			ns += ln.NodeSeconds
			cost += ln.CostUSD
			vsec += ln.VirtualSeconds
		}
		if completed != rep.Completed || failed != rep.Failed || skipped != rep.Skipped || attempts != rep.Attempts {
			t.Errorf("lane counter sums (%d,%d,%d,%d) != totals (%d,%d,%d,%d)",
				completed, failed, skipped, attempts,
				rep.Completed, rep.Failed, rep.Skipped, rep.Attempts)
		}
		var nsTotal float64
		for _, v := range rep.NodeSecondsBySKU {
			nsTotal += v
		}
		if math.Abs(ns-nsTotal) > 1e-6 {
			t.Errorf("lane node-seconds %.3f != total %.3f", ns, nsTotal)
		}
		if math.Abs(cost-rep.CollectionCostUSD) > 1e-9 {
			t.Errorf("lane cost sum %.6f != total %.6f", cost, rep.CollectionCostUSD)
		}
		if math.Abs(vsec-rep.VirtualSeconds) > 1e-9 {
			t.Errorf("lane virtual-seconds sum %.3f != total %.3f", vsec, rep.VirtualSeconds)
		}
		samples := 0
		for _, ln := range rep.Lanes {
			samples += ln.Samples
			if ln.Completed > 0 && ln.MeanUtil.CPUUtil <= 0 {
				t.Errorf("lane %s has completions but zero mean CPU utilization", ln.SKUAlias)
			}
		}
		if samples != rep.Completed {
			t.Errorf("utilization samples %d != completed %d", samples, rep.Completed)
		}
	}
	for i := range seqRep.Lanes {
		if seqRep.Lanes[i] != parRep.Lanes[i] {
			t.Errorf("lane %d differs between modes:\nseq: %+v\npar: %+v",
				i, seqRep.Lanes[i], parRep.Lanes[i])
		}
	}
}

// TestParallelReducesMakespan: with 3 lanes on 3 workers the modeled
// concurrent wall-clock must be strictly below the sequential total.
func TestParallelReducesMakespan(t *testing.T) {
	_, _, rep := collectWith(t, Options{MaxParallelPools: 3}, threeSKUs, []int{1, 2, 4})
	if rep.ElapsedVirtualSeconds >= rep.VirtualSeconds {
		t.Errorf("elapsed %.1fs not below sequential-equivalent %.1fs",
			rep.ElapsedVirtualSeconds, rep.VirtualSeconds)
	}
	if rep.ElapsedVirtualSeconds <= 0 {
		t.Error("elapsed makespan is zero")
	}
}

func assertReportsEqual(t *testing.T, seq, par *Report) {
	t.Helper()
	if seq.Completed != par.Completed || seq.Failed != par.Failed ||
		seq.Skipped != par.Skipped || seq.Attempts != par.Attempts {
		t.Errorf("counters differ: seq %+v par %+v", seq, par)
	}
	if math.Abs(seq.VirtualSeconds-par.VirtualSeconds) > 1e-9 {
		t.Errorf("virtual seconds differ: seq %.6f par %.6f", seq.VirtualSeconds, par.VirtualSeconds)
	}
	if math.Abs(seq.CollectionCostUSD-par.CollectionCostUSD) > 1e-9 {
		t.Errorf("cost differs: seq %.9f par %.9f", seq.CollectionCostUSD, par.CollectionCostUSD)
	}
	if len(seq.NodeSecondsBySKU) != len(par.NodeSecondsBySKU) {
		t.Fatalf("node-second keys differ: %v vs %v", seq.NodeSecondsBySKU, par.NodeSecondsBySKU)
	}
	for sku, v := range seq.NodeSecondsBySKU {
		if math.Abs(par.NodeSecondsBySKU[sku]-v) > 1e-6 {
			t.Errorf("node-seconds for %s differ: seq %.3f par %.3f", sku, v, par.NodeSecondsBySKU[sku])
		}
	}
}

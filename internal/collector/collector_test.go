package collector

import (
	"strings"
	"testing"

	"hpcadvisor/internal/appmodel"
	"hpcadvisor/internal/batchsim"
	"hpcadvisor/internal/catalog"
	"hpcadvisor/internal/cloudsim"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/deploy"
	"hpcadvisor/internal/pricing"
	"hpcadvisor/internal/scenario"
	"hpcadvisor/internal/vclock"
)

type fixture struct {
	clock *vclock.Clock
	cloud *cloudsim.Cloud
	svc   *batchsim.Service
	col   *Collector
	store *dataset.Store
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clock := vclock.New()
	cat := catalog.Default()
	cloud := cloudsim.New(clock, cat, "sub1")
	mgr := deploy.NewManager(cloud)
	d, err := mgr.Create(deploy.Spec{SubscriptionID: "sub1", RGPrefix: "coltest", Region: "southcentralus"})
	if err != nil {
		t.Fatal(err)
	}
	svc := batchsim.New(clock, cloud, "sub1", d.Name)
	col := New(svc, appmodel.NewRegistry(), pricing.Default(), cat, "southcentralus", d.Name)
	return &fixture{clock: clock, cloud: cloud, svc: svc, col: col, store: dataset.NewStore()}
}

func smallLAMMPSList(t *testing.T, skus []string, nnodes []int) *scenario.List {
	t.Helper()
	list, err := scenario.Generate(scenario.Spec{
		AppName:   "lammps",
		SKUs:      skus,
		NNodes:    nnodes,
		PPR:       100,
		AppInputs: map[string][]string{"BOXFACTOR": {"10"}},
		Tags:      map[string]string{"version": "v1"},
	}, catalog.Default())
	if err != nil {
		t.Fatal(err)
	}
	return list
}

func TestAlgorithm1CollectsAllScenarios(t *testing.T) {
	f := newFixture(t)
	list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3", "Standard_HC44rs"}, []int{1, 2, 4})
	report, err := f.col.Run(list, f.store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 6 || report.Failed != 0 || report.Skipped != 0 {
		t.Fatalf("report = %+v", report)
	}
	if f.store.Len() != 6 {
		t.Fatalf("store has %d points", f.store.Len())
	}
	for _, task := range list.Tasks {
		if task.Status != scenario.StatusCompleted {
			t.Errorf("%s status = %s", task.ID, task.Status)
		}
	}
	// Datapoints carry metrics scraped from stdout (Listing 2 contract).
	for _, p := range f.store.All() {
		if p.Metrics["LAMMPSATOMS"] == "" {
			t.Errorf("point %s missing scraped metric", p.ScenarioID)
		}
		if p.ExecTimeSec <= 0 || p.CostUSD <= 0 {
			t.Errorf("point %s has no time/cost", p.ScenarioID)
		}
		if p.Tags["version"] != "v1" {
			t.Errorf("point %s lost tags", p.ScenarioID)
		}
	}
}

func TestAlgorithm1PoolReuse(t *testing.T) {
	// One pool per VM type, torn down when the type changes: after the run,
	// with resize-to-zero preference, the last pool exists at size zero and
	// earlier pools exist too (created once each).
	f := newFixture(t)
	list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3", "Standard_HC44rs"}, []int{1, 2})
	if _, err := f.col.Run(list, f.store, Options{}); err != nil {
		t.Fatal(err)
	}
	ids := f.svc.PoolIDs()
	if len(ids) != 2 {
		t.Fatalf("pools = %v, want one per SKU", ids)
	}
	for _, id := range ids {
		p, _ := f.svc.Pool(id)
		if p.CountNodes() != 0 {
			t.Errorf("pool %s still has %d nodes", id, p.CountNodes())
		}
	}
}

func TestDeletePoolAfterOption(t *testing.T) {
	f := newFixture(t)
	list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{1})
	if _, err := f.col.Run(list, f.store, Options{DeletePoolAfter: true}); err != nil {
		t.Fatal(err)
	}
	if ids := f.svc.PoolIDs(); len(ids) != 0 {
		t.Errorf("pools should be deleted, got %v", ids)
	}
}

func TestFailedScenarioRecorded(t *testing.T) {
	f := newFixture(t)
	// BOXFACTOR 100 on 1-2 nodes OOMs; 32 nodes would fit but is not swept.
	list, err := scenario.Generate(scenario.Spec{
		AppName:   "lammps",
		SKUs:      []string{"Standard_HB120rs_v3"},
		NNodes:    []int{1, 2},
		AppInputs: map[string][]string{"BOXFACTOR": {"100"}},
	}, catalog.Default())
	if err != nil {
		t.Fatal(err)
	}
	report, err := f.col.Run(list, f.store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 2 || report.Completed != 0 {
		t.Fatalf("report = %+v", report)
	}
	for _, task := range list.Tasks {
		if task.Status != scenario.StatusFailed {
			t.Errorf("%s = %s", task.ID, task.Status)
		}
		if task.Error == "" {
			t.Errorf("%s has no error", task.ID)
		}
	}
	// Failed points are stored but excluded from default selection.
	if f.store.Len() != 2 {
		t.Fatalf("store len = %d", f.store.Len())
	}
	if got := f.store.Select(dataset.Filter{}); len(got) != 0 {
		t.Errorf("failed points leaked into default selection: %d", len(got))
	}
}

func TestApplicationFailureNotRetried(t *testing.T) {
	// An application failure (deterministic OOM) fails the same way every
	// time, so the taxonomy stops after one attempt even with budget left.
	f := newFixture(t)
	list, err := scenario.Generate(scenario.Spec{
		AppName:   "lammps",
		SKUs:      []string{"Standard_HB120rs_v3"},
		NNodes:    []int{1},
		AppInputs: map[string][]string{"BOXFACTOR": {"100"}}, // deterministic OOM
	}, catalog.Default())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.col.Run(list, f.store, Options{MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if list.Tasks[0].Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (application failures never retry)", list.Tasks[0].Attempts)
	}
	if rep.Attempts != 1 || rep.Retries != 0 {
		t.Errorf("report attempts = %d retries = %d, want 1 and 0", rep.Attempts, rep.Retries)
	}
}

type denyBigPlanner struct{ maxNodes int }

func (p denyBigPlanner) Decide(t *scenario.Task, store *dataset.Store) (bool, string) {
	if t.NNodes > p.maxNodes {
		return false, "pruned by test planner"
	}
	return true, ""
}

func TestPlannerSkipsScenarios(t *testing.T) {
	f := newFixture(t)
	list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{1, 2, 4, 8})
	report, err := f.col.Run(list, f.store, Options{Planner: denyBigPlanner{maxNodes: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 2 || report.Skipped != 2 {
		t.Fatalf("report = %+v", report)
	}
	for _, task := range list.Tasks {
		if task.NNodes > 2 && task.Status != scenario.StatusSkipped {
			t.Errorf("n=%d should be skipped, got %s", task.NNodes, task.Status)
		}
	}
	// Skipped tasks record why.
	skipped := list.ByStatus(scenario.StatusSkipped)
	if len(skipped) == 0 || !strings.Contains(skipped[0].Error, "pruned") {
		t.Errorf("skip reason missing: %+v", skipped)
	}
}

func TestCollectionCostAccountsBootTime(t *testing.T) {
	f := newFixture(t)
	list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{2})
	report, err := f.col.Run(list, f.store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scenarioCost := f.store.All()[0].CostUSD
	if report.CollectionCostUSD <= scenarioCost {
		t.Errorf("collection cost %.4f should exceed scenario cost %.4f (boot+setup billed)",
			report.CollectionCostUSD, scenarioCost)
	}
	ns := report.NodeSecondsBySKU["Standard_HB120rs_v3"]
	if ns <= 0 {
		t.Errorf("node-seconds = %v", report.NodeSecondsBySKU)
	}
	if report.VirtualSeconds <= 0 {
		t.Error("collection must consume virtual time")
	}
}

func TestProgressCallbackObservesTransitions(t *testing.T) {
	f := newFixture(t)
	list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{1})
	var seen []scenario.Status
	_, err := f.col.Run(list, f.store, Options{Progress: func(task *scenario.Task) {
		seen = append(seen, task.Status)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != scenario.StatusRunning || seen[1] != scenario.StatusCompleted {
		t.Errorf("transitions = %v", seen)
	}
}

func TestResumeSkipsNonPending(t *testing.T) {
	f := newFixture(t)
	list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{1, 2})
	list.Tasks[0].Status = scenario.StatusCompleted // already done previously
	report, err := f.col.Run(list, f.store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 1 {
		t.Fatalf("report = %+v, want exactly the pending task", report)
	}
	if f.store.Len() != 1 {
		t.Errorf("store len = %d", f.store.Len())
	}
}

func TestUnknownAppFailsTaskNotRun(t *testing.T) {
	f := newFixture(t)
	list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{1})
	list.Tasks[0].AppName = "unknown-app"
	report, err := f.col.Run(list, f.store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 1 {
		t.Fatalf("report = %+v", report)
	}
	if list.Tasks[0].Status != scenario.StatusFailed {
		t.Errorf("status = %s", list.Tasks[0].Status)
	}
}

func TestUtilizationAndBottleneckStored(t *testing.T) {
	f := newFixture(t)
	// OpenFOAM at 16 nodes is communication-bound in the model.
	list, err := scenario.Generate(scenario.Spec{
		AppName:   "openfoam",
		SKUs:      []string{"Standard_HB120rs_v3"},
		NNodes:    []int{16},
		AppInputs: map[string][]string{"mesh": {"40 16 16"}},
	}, catalog.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.col.Run(list, f.store, Options{}); err != nil {
		t.Fatal(err)
	}
	p := f.store.All()[0]
	if p.Bottleneck == "" {
		t.Error("bottleneck missing")
	}
	if p.Utilization.NetUtil <= 0 {
		t.Error("network utilization missing")
	}
	if p.InputDesc != "cells=8M" {
		t.Errorf("input desc = %q", p.InputDesc)
	}
}

func TestQuotaFailureMarksTaskFailed(t *testing.T) {
	// A scenario whose resize exceeds the family quota fails that task but
	// the collection continues with the rest (Algorithm 1 keeps walking the
	// list).
	f := newFixture(t)
	sub, _ := f.cloud.Subscription("sub1")
	sub.SetQuota("southcentralus", "HBv3", 600) // five 120-core nodes
	list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{2, 8, 4})
	report, err := f.col.Run(list, f.store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 1 || report.Completed != 2 {
		t.Fatalf("report = %+v, want the 8-node scenario failed", report)
	}
	for _, task := range list.Tasks {
		if task.NNodes == 8 {
			if task.Status != scenario.StatusFailed {
				t.Errorf("8-node status = %s", task.Status)
			}
			if !strings.Contains(task.Error, "quota") {
				t.Errorf("error = %q", task.Error)
			}
		} else if task.Status != scenario.StatusCompleted {
			t.Errorf("%d-node status = %s", task.NNodes, task.Status)
		}
	}
}

func TestBadAppInputFailsWithoutRunning(t *testing.T) {
	f := newFixture(t)
	list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{1})
	list.Tasks[0].AppInput = map[string]string{"BOXFACTOR": "not-a-number"}
	report, err := f.col.Run(list, f.store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 1 {
		t.Fatalf("report = %+v", report)
	}
	if list.Tasks[0].TaskID != "" {
		t.Error("unparseable input should fail before submitting a batch task")
	}
}

// journal.go is the durable sweep journal: one JSON record per event,
// framed and fsynced by storage.FrameLog (the WAL's CRC framing), living
// in the state dir next to the dataset. The journal is the collection
// write path's crash story:
//
//   - every attempt and every terminal outcome is appended as it happens;
//   - an outcome is marked durable only once the datapoint it produced is
//     known to be on disk (sequential mode flushes the store first;
//     concurrent mode upgrades all outcomes with one "flushed" marker
//     after the merge commits);
//   - `collect -resume` replays the journal into a Replay, restores the
//     terminal task set, and re-executes only what never became durable —
//     with the resumed dataset byte-identical to an uninterrupted run.
//
// Records are opaque to the framing; a torn tail loses at most the one
// record being written at the kill, and a record that fails to decode is
// skipped and counted, never fatal.
package collector

import (
	"encoding/json"
	"sync"

	"hpcadvisor/internal/monitor"
	"hpcadvisor/internal/scenario"
	"hpcadvisor/internal/storage"
)

// Journal record kinds.
const (
	recBegin   = "begin"   // sweep parameters, written once per process
	recAttempt = "attempt" // one execution or allocation attempt
	recOutcome = "outcome" // a task reached a terminal status
	recBreaker = "breaker" // a SKU breaker changed state
	recFlushed = "flushed" // every outcome so far is durable in the store
	recSeal    = "seal"    // the run ended (complete or interrupted)
)

// Record is one journal entry. Fields are a union over the kinds; JSON
// omits what a kind does not use.
type Record struct {
	Kind    string  `json:"kind"`
	Task    string  `json:"task,omitempty"`    // scenario ID
	SKU     string  `json:"sku,omitempty"`     // breaker + outcome records
	Attempt int     `json:"attempt,omitempty"` // attempt number within the task
	Class   string  `json:"class,omitempty"`   // failure class of an attempt/outcome
	Status  string  `json:"status,omitempty"`  // outcome: task status; breaker: state
	Error   string  `json:"error,omitempty"`
	Tried   int     `json:"tried,omitempty"`   // outcome: attempts the task consumed
	Durable bool    `json:"durable,omitempty"` // outcome: its datapoint is on disk
	Resumed bool    `json:"resumed,omitempty"` // outcome: re-journaled by a resume replay
	VSec    float64 `json:"vsec,omitempty"`    // lane virtual-clock seconds
	Reason  string  `json:"reason,omitempty"`  // seal reason / skip reason

	// begin-record sweep parameters, validated on resume.
	Deployment  string `json:"deployment,omitempty"`
	Spot        bool   `json:"spot,omitempty"`
	MaxAttempts int    `json:"max_attempts,omitempty"`
	Parallel    int    `json:"parallel,omitempty"`
}

// Seal reasons.
const (
	SealComplete    = "complete"
	SealInterrupted = "interrupted"
)

// Journal appends records to a frame log. Methods are safe for concurrent
// lanes. Append failures are sticky and surface from Err — the collector
// keeps working (the sweep is still valid, just not resumable past the
// failure point).
type Journal struct {
	mu    sync.Mutex
	log   *storage.FrameLog
	stats *monitor.CollectionStats
	err   error
}

// SetStats routes per-record counters to stats (may be nil).
func (j *Journal) SetStats(stats *monitor.CollectionStats) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.stats = stats
	j.mu.Unlock()
}

func (j *Journal) append(rec Record) {
	if j == nil {
		return
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err := j.log.Append(payload); err != nil {
		j.err = err
		return
	}
	j.stats.JournalRecord()
}

// Err reports the first append failure, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Reset discards every record (used when starting a fresh sweep over a
// sealed journal).
func (j *Journal) Reset() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.err = nil
	return j.log.Reset()
}

// Close releases the underlying log.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Close()
}

// TaskOutcome is a replayed terminal state of one task.
type TaskOutcome struct {
	Status   scenario.Status
	Attempts int
	Error    string
	Class    FailureClass
	SKU      string
	// Durable: the datapoint this outcome produced (if any) was on disk
	// when journaled — resume restores it instead of re-collecting.
	Durable bool
}

// Replay is a folded journal: the terminal task set and the sweep
// parameters, ready to drive a resume.
type Replay struct {
	// Outcomes maps scenario ID to its last journaled terminal state.
	Outcomes map[string]TaskOutcome
	// Dangling marks tasks with an attempt after their last outcome: the
	// process died mid-execution, so a datapoint may exist in the store
	// without a covering outcome record.
	Dangling map[string]bool
	// Sealed: the run ended deliberately (SealReason says how).
	Sealed     bool
	SealReason string
	// Begun and the fields after it echo the begin record.
	Begun       bool
	Deployment  string
	Spot        bool
	MaxAttempts int
	// Records counts well-formed records; Corrupt counts frames that did
	// not decode as records (skipped, never fatal).
	Records int
	Corrupt int
}

func foldReplay(payloads [][]byte) *Replay {
	rep := &Replay{
		Outcomes: make(map[string]TaskOutcome),
		Dangling: make(map[string]bool),
	}
	for _, payload := range payloads {
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Kind == "" {
			rep.Corrupt++
			continue
		}
		rep.Records++
		switch rec.Kind {
		case recBegin:
			rep.Begun = true
			rep.Deployment = rec.Deployment
			rep.Spot = rec.Spot
			rep.MaxAttempts = rec.MaxAttempts
			// A new begin means a new process lifetime over the same
			// sweep; it does not clear prior outcomes.
		case recAttempt:
			if rec.Task != "" {
				rep.Dangling[rec.Task] = true
			}
		case recOutcome:
			if rec.Task == "" {
				continue
			}
			delete(rep.Dangling, rec.Task)
			rep.Outcomes[rec.Task] = TaskOutcome{
				Status:   scenario.Status(rec.Status),
				Attempts: rec.Tried,
				Error:    rec.Error,
				Class:    FailureClass(rec.Class),
				SKU:      rec.SKU,
				Durable:  rec.Durable,
			}
		case recFlushed:
			for id, out := range rep.Outcomes {
				out.Durable = true
				rep.Outcomes[id] = out
			}
		case recSeal:
			rep.Sealed = true
			rep.SealReason = rec.Reason
			if rec.Reason == SealComplete {
				// A completed run flushed everything on the way out.
				for id, out := range rep.Outcomes {
					out.Durable = true
					rep.Outcomes[id] = out
				}
			}
		}
	}
	return rep
}

// Apply restores the journaled terminal states onto a task list, so the
// resumed process starts from where the crashed one stopped. Tasks the
// journal never saw stay as they are.
func (r *Replay) Apply(list *scenario.List) {
	if r == nil || list == nil {
		return
	}
	for id, out := range r.Outcomes {
		if t, ok := list.Find(id); ok {
			t.Status = out.Status
			t.Attempts = out.Attempts
			t.Error = out.Error
		}
	}
}

// Resumable reports whether the journal describes an interrupted sweep
// worth resuming.
func (r *Replay) Resumable() bool {
	return r != nil && r.Records > 0 && !(r.Sealed && r.SealReason == SealComplete)
}

// OpenJournal opens (creating if absent) the sweep journal at path,
// recovering any torn tail, and returns it with the folded replay of
// whatever it already held.
func OpenJournal(path string) (*Journal, *Replay, error) {
	log, payloads, err := storage.OpenFrameLog(path)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{log: log}, foldReplay(payloads), nil
}

// ReadJournal reads and folds the journal at path without opening it for
// writes — safe while another process appends. It also returns the raw
// records for tests and tooling that assert on the exact sequence.
func ReadJournal(path string) (*Replay, []Record, error) {
	payloads, err := storage.ReadFrameLog(path)
	if err != nil {
		return nil, nil, err
	}
	var recs []Record
	for _, payload := range payloads {
		var rec Record
		if err := json.Unmarshal(payload, &rec); err == nil && rec.Kind != "" {
			recs = append(recs, rec)
		}
	}
	return foldReplay(payloads), recs, nil
}

// The concurrent collection engine. The scenario list is partitioned per VM
// type into independent pool lanes; each lane replays exactly the pool
// lifecycle the sequential collector would have given it — create, resize
// per scenario, execute, teardown — but on a private simulation substrate: a
// fresh virtual clock at time zero, a control-plane replica with its own
// quota ledger, and a private batch service (batchsim.Service.Lane). A
// bounded worker pool runs up to Options.MaxParallelPools lanes at once on
// real OS threads.
//
// Determinism comes from the merge, not from the schedule. Every simulated
// quantity a lane produces (execution times, costs, metrics, spot
// preemption draws, node names) depends only on pool-relative coordinates,
// so each lane's local timeline is a time-shifted copy of its segment of
// the sequential timeline. After the lanes join, their datapoint shards are
// concatenated in canonical lane order (first appearance of the VM type in
// the task list) and each point's timestamp is rebased — in integer
// nanosecond arithmetic, so not even a float ulp drifts — onto the
// sequential-equivalent timeline: lane k's local time t becomes
// start + sum(duration of lanes < k) + t. The result is byte-identical to
// the dataset the sequential walk writes for the same list.
//
// Resume and interruption keep that guarantee. Under Options.Resume each
// lane ghost-replays its journaled prefix so lane clocks and durations
// match the uninterrupted run, and the merge drops points whose scenario is
// already durable in the target store. On Options.Interrupt the engine
// discards the lane shards entirely instead of merging partial lanes:
// merging a half-finished lane would append its remainder after the other
// lanes on resume and diverge from the canonical order, whereas discarding
// leaves every journaled outcome non-durable so the resumed run re-executes
// the whole list identically.
package collector

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hpcadvisor/internal/batchsim"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/monitor"
	"hpcadvisor/internal/scenario"
)

// lane is one VM type's partition of the task list plus everything its
// worker produced: the private service, the datapoint shard, per-point
// completion stamps on the lane clock, and the lane report.
type lane struct {
	sku    string
	alias  string
	tasks  []*scenario.Task
	svc    *batchsim.Service
	shard  *dataset.Store
	stamps []time.Duration // lane-clock completion time per shard point
	rep    LaneReport
	// duration is the lane's virtual timeline length: zero until the first
	// pool is created, then the last task completion time on the lane
	// clock (lane clocks start at zero).
	duration time.Duration
	err      error
}

// runConcurrent executes the task list with per-VM-type lanes at bounded
// concurrency and merges the lane results into store deterministically.
func (c *Collector) runConcurrent(list *scenario.List, store *dataset.Store, opts Options) (*Report, error) {
	report := &Report{NodeSecondsBySKU: make(map[string]float64)}
	lanes := partitionLanes(list, opts.Resume)
	agg := monitor.NewAggregator()

	// Shards are created up front, in canonical lane order, so the merged
	// snapshot order never depends on worker scheduling.
	shards := dataset.NewSharded()
	for _, ln := range lanes {
		ln.shard = shards.Shard(ln.sku)
	}

	// Progress callbacks fire from lane goroutines; serialize them so user
	// code never observes two concurrent calls.
	laneOpts := opts
	if opts.Progress != nil {
		var mu sync.Mutex
		inner := opts.Progress
		laneOpts.Progress = func(t *scenario.Task) {
			mu.Lock()
			defer mu.Unlock()
			inner(t)
		}
	}

	workers := opts.MaxParallelPools
	if workers > len(lanes) {
		workers = len(lanes)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, ln := range lanes {
		wg.Add(1)
		go func(ln *lane) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ln.err = c.runLane(ln, laneOpts, agg)
		}(ln)
	}
	wg.Wait()

	for _, ln := range lanes {
		if errors.Is(ln.err, ErrInterrupted) {
			// Discard the shards (see the package comment): nothing is
			// merged, journaled lane outcomes stay non-durable, and the
			// resumed run re-executes the whole list in canonical order.
			laneReports := make([]*LaneReport, 0, len(lanes))
			for _, l := range lanes {
				l.rep.VirtualSeconds = l.duration.Seconds()
				laneReports = append(laneReports, &l.rep)
			}
			foldLanes(report, laneReports, agg)
			report.Interrupted = true
			return report, ErrInterrupted
		}
	}

	// Merge in canonical lane order: rebase timestamps onto the
	// sequential-equivalent timeline, renumber batch task IDs into one
	// global sequence, and fold meters and counters.
	start := c.Service.Clock.Now()
	var cum time.Duration
	taskOffset := 0
	var firstErr error
	laneReports := make([]*LaneReport, 0, len(lanes))
	for _, ln := range lanes {
		pts := ln.shard.All()
		stamps := ln.stamps
		if len(opts.have) > 0 {
			// Resume: ghost replays re-added their points to the shard so
			// the lane's planner view and stamps matched the original run;
			// drop the ones whose datapoint is already durable in store.
			fp, fs := pts[:0], stamps[:0]
			for i := range pts {
				if opts.have[pts[i].ScenarioID] {
					continue
				}
				fp = append(fp, pts[i])
				fs = append(fs, stamps[i])
			}
			pts, stamps = fp, fs
		}
		for i := range pts {
			pts[i].CollectedAt = (start + cum + stamps[i]).Seconds()
		}
		store.AddAll(pts)
		renumberTasks(ln.tasks, taskOffset)
		if ln.err != nil && firstErr == nil {
			firstErr = ln.err
		}
		ln.rep.VirtualSeconds = ln.duration.Seconds()
		if ln.svc != nil {
			ln.rep.NodeSeconds = ln.svc.NodeSecondsBySKU()[ln.sku]
			c.Service.Meter.AddTotals(ln.svc.UsageSnapshot())
		}
		cum += ln.duration
		taskOffset += ln.rep.Attempts + ln.rep.ResumedAttempts
		laneReports = append(laneReports, &ln.rep)
	}
	c.Service.Clock.Advance(cum)

	c.priceLanes(laneReports, opts.UseSpot)
	foldLanes(report, laneReports, agg)
	report.NodeSecondsBySKU = c.Service.NodeSecondsBySKU()
	cost, err := c.priceNodeSeconds(report.NodeSecondsBySKU, opts.UseSpot)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	report.CollectionCostUSD = cost
	report.VirtualSeconds = cum.Seconds()
	report.ElapsedVirtualSeconds = makespan(lanes, opts.MaxParallelPools).Seconds()
	// Lane shards merged into store above went through its attached
	// backend (if any) in canonical lane order; Flush makes them durable.
	if err := store.Flush(); err != nil && firstErr == nil {
		firstErr = err
	}
	return report, firstErr
}

// partitionLanes groups the walkable tasks per VM type, preserving task
// order within each lane and ordering lanes by first appearance — the order
// the sequential walk would open their pools. Under resume, journaled
// terminal tasks are included so each lane ghost-replays its prefix and the
// lane clock (and therefore the merge rebase) matches the original run.
func partitionLanes(list *scenario.List, resume *Replay) []*lane {
	index := map[string]int{}
	var lanes []*lane
	for _, t := range list.Tasks {
		if t.Status != scenario.StatusPending && !isGhost(resume, t) {
			continue
		}
		i, ok := index[t.SKU]
		if !ok {
			i = len(lanes)
			index[t.SKU] = i
			lanes = append(lanes, &lane{sku: t.SKU, alias: t.SKUAlias,
				rep: LaneReport{SKU: t.SKU, SKUAlias: t.SKUAlias}})
		}
		lanes[i].tasks = append(lanes[i].tasks, t)
	}
	return lanes
}

// runLane executes one VM type's scenarios on a private service. The
// per-task sequence mirrors runSequential exactly: planner decision first,
// pool created lazily on the first non-skipped task, resize per scenario
// under the lane's breaker, teardown at the end. Journaled outcomes from a
// lane are non-durable until the merge commits (taskRun.flush stays nil).
func (c *Collector) runLane(ln *lane, opts Options, agg *monitor.Aggregator) error {
	svc, err := c.Service.Lane()
	if err != nil {
		return err
	}
	ln.svc = svc
	addPoint := func(p dataset.Point) {
		ln.shard.Add(p)
		ln.stamps = append(ln.stamps, svc.Clock.Now())
	}
	run := &taskRun{svc: svc, opts: opts, lane: &ln.rep, agg: agg,
		addPoint: addPoint, brk: newBreaker(opts.Breaker)}

	poolID := ""
	teardown := func() error {
		if poolID == "" {
			return nil
		}
		ln.duration = svc.Clock.Now()
		if opts.DeletePoolAfter {
			return svc.DeletePool(poolID)
		}
		return svc.Resize(poolID, 0)
	}
	for _, task := range ln.tasks {
		if interrupted(opts) {
			if err := teardown(); err != nil {
				return err
			}
			return ErrInterrupted
		}
		gout, ghost := TaskOutcome{}, false
		if opts.Resume != nil {
			gout, ghost = opts.Resume.Outcomes[task.ID]
		}
		if task.Status != scenario.StatusPending && !ghost {
			continue
		}
		run.ghost = ghost
		if ghost && gout.Status == scenario.StatusSkipped {
			restoreSkip(opts, task, &ln.rep, gout)
			continue
		}
		if !ghost && opts.Planner != nil {
			if ok, reason := opts.Planner.Decide(task, ln.shard); !ok {
				task.Status = scenario.StatusSkipped
				task.Error = reason
				ln.rep.Skipped++
				// Journaled so resume restores the decision instead of
				// re-deciding against a different shard state.
				run.journalOutcome(task, ClassNone, reason)
				notify(opts, task)
				continue
			}
		}
		if ghost {
			// Ghost replay recomputes the attempt history from scratch so
			// it matches an uninterrupted run exactly.
			task.Attempts = 0
			task.Status = scenario.StatusPending
			task.Error = ""
		}
		if poolID == "" {
			poolID = "pool-" + task.SKUAlias
			if err := c.createPool(run, task, poolID); err != nil {
				return err
			}
		}
		if !c.admitTask(run, task) {
			continue
		}
		if ok, err := c.resizePool(run, task, poolID); err != nil {
			return err
		} else if !ok {
			if ghost {
				run.finishGhost(task, gout)
			}
			continue
		}
		if err := c.runScenario(run, task, poolID); err != nil {
			ln.duration = svc.Clock.Now()
			return err
		}
		if ghost {
			run.finishGhost(task, gout)
		}
	}
	return teardown()
}

// renumberTasks rewrites the lane-local batch task IDs recorded on the
// scenario tasks ("task-00001"...) into the global sequence the sequential
// walk would have assigned, by offsetting with the attempts of all earlier
// lanes.
func renumberTasks(tasks []*scenario.Task, offset int) {
	if offset == 0 {
		return
	}
	for _, t := range tasks {
		var n int
		if _, err := fmt.Sscanf(t.TaskID, "task-%05d", &n); err == nil && n > 0 {
			t.TaskID = fmt.Sprintf("task-%05d", n+offset)
		}
	}
}

// makespan models scheduling the lanes, in canonical order, onto `workers`
// parallel slots (earliest-free slot first): the virtual wall-clock a user
// would wait if the pools really ran concurrently in the cloud. With one
// worker it degenerates to the sequential total.
func makespan(lanes []*lane, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	if workers > len(lanes) {
		workers = len(lanes)
	}
	if workers == 0 {
		return 0
	}
	free := make([]time.Duration, workers)
	for _, ln := range lanes {
		w := 0
		for i := range free {
			if free[i] < free[w] {
				w = i
			}
		}
		free[w] += ln.duration
	}
	var end time.Duration
	for _, f := range free {
		if f > end {
			end = f
		}
	}
	return end
}

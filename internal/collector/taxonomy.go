// taxonomy.go classifies collection failures and decides what to do about
// them. The HPC-cloud literature the paper builds on treats allocation
// failures and capacity variability as first-class realities, not edge
// cases — so the collector sorts every error it sees into a class with an
// explicit retry decision, instead of retrying everything blindly:
//
//	transient    control-plane throttle/outage   retry, exponential backoff
//	capacity     allocation failure (no machines) retry w/ backoff, feeds breaker
//	preemption   spot node reclaimed mid-run      retry immediately
//	quota        per-family core quota exhausted  never retried
//	application  the app itself failed            never retried
//	fatal        misconfiguration / unknown       never retried
//
// Backoff delays are computed from (task id, attempt) with deterministic
// jitter and advanced on the lane's virtual clock, so retry schedules are
// reproducible — in tests, across sequential/concurrent modes, and across
// a crash-resume replay.
package collector

import (
	"errors"
	"hash/fnv"
	"math"
	"strconv"
	"time"

	"hpcadvisor/internal/batchsim"
	"hpcadvisor/internal/cloudsim"
	"hpcadvisor/internal/vclock"
)

// FailureClass names one failure category of the taxonomy.
type FailureClass string

const (
	// ClassNone is a success, not a failure.
	ClassNone FailureClass = "none"
	// ClassTransient covers throttles and temporary control-plane
	// outages: retried with exponential backoff and jitter.
	ClassTransient FailureClass = "transient"
	// ClassCapacity covers allocation failures — the region/family has no
	// machines. Retried with backoff, and it is the only class that feeds
	// the per-SKU circuit breaker.
	ClassCapacity FailureClass = "capacity"
	// ClassPreemption covers spot reclaims. Retried immediately: the
	// replacement node is already booting and the draw is time-dependent.
	ClassPreemption FailureClass = "preemption"
	// ClassQuota covers exhausted core quota. Never retried — quota does
	// not come back by waiting — and never trips the breaker, because it
	// is the subscription's limit, not the provider's.
	ClassQuota FailureClass = "quota"
	// ClassApplication covers failures of the application itself (bad
	// input, OOM, non-zero exit). Never retried: the same input fails the
	// same way.
	ClassApplication FailureClass = "application"
	// ClassFatal covers misconfiguration and unknown control-plane
	// errors. Never retried.
	ClassFatal FailureClass = "fatal"
)

// Retryable reports whether the class allows another attempt at all.
func (c FailureClass) Retryable() bool {
	return c == ClassTransient || c == ClassCapacity || c == ClassPreemption
}

// Classify maps a control-plane or batch-service error to its class.
func Classify(err error) FailureClass {
	switch {
	case err == nil:
		return ClassNone
	case errors.Is(err, cloudsim.ErrCapacity):
		return ClassCapacity
	case errors.Is(err, cloudsim.ErrThrottled), errors.Is(err, cloudsim.ErrUnavailable):
		return ClassTransient
	case errors.Is(err, cloudsim.ErrQuotaExceeded):
		return ClassQuota
	}
	// Everything else — bad names, missing dependencies, unknown pools,
	// over-wide tasks, errors we have never seen — is fatal: retrying a
	// misconfiguration burns budget without changing the answer.
	return ClassFatal
}

// ClassifyResult maps a terminal task result to its class.
func ClassifyResult(r batchsim.TaskResult) FailureClass {
	switch {
	case r.ExitCode == 0:
		return ClassNone
	case r.Preempted:
		return ClassPreemption
	}
	return ClassApplication
}

// BackoffPolicy shapes the retry delay for transient and capacity
// failures. Zero values take the defaults.
type BackoffPolicy struct {
	// BaseSeconds is the first retry's delay (default 5s); each further
	// retry doubles it.
	BaseSeconds float64
	// MaxSeconds caps the exponential part (default 120s). Jitter rides
	// on top.
	MaxSeconds float64
}

const (
	defaultBackoffBase = 5
	defaultBackoffMax  = 120
)

func (p BackoffPolicy) withDefaults() BackoffPolicy {
	if p.BaseSeconds <= 0 {
		p.BaseSeconds = defaultBackoffBase
	}
	if p.MaxSeconds <= 0 {
		p.MaxSeconds = defaultBackoffMax
	}
	return p
}

// delay returns the virtual-clock delay before retry number n (1-based)
// of the given task: capped exponential plus deterministic jitter drawn
// from (task, n), so two runs of the same sweep back off identically.
func (p BackoffPolicy) delay(taskID string, n int) time.Duration {
	p = p.withDefaults()
	if n < 1 {
		n = 1
	}
	d := p.BaseSeconds * math.Pow(2, float64(n-1))
	if d > p.MaxSeconds {
		d = p.MaxSeconds
	}
	h := fnv.New64a()
	h.Write([]byte(taskID))
	h.Write([]byte{'|'})
	h.Write([]byte(strconv.Itoa(n)))
	frac := float64(h.Sum64()%1000) / 1000.0
	return vclock.Seconds(d + frac*p.BaseSeconds)
}

// BreakerPolicy tunes the per-SKU circuit breaker. Zero values take the
// defaults; a negative Threshold disables the breaker.
type BreakerPolicy struct {
	// Threshold is the count of consecutive capacity failures that opens
	// the breaker (default 3; < 0 disables).
	Threshold int
	// CooldownSeconds is how long (virtual) the breaker stays open before
	// a half-open probe may re-admit the SKU (default 600s).
	CooldownSeconds float64
}

const (
	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = 600
)

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Threshold == 0 {
		p.Threshold = defaultBreakerThreshold
	}
	if p.CooldownSeconds <= 0 {
		p.CooldownSeconds = defaultBreakerCooldown
	}
	return p
}

// Breaker states.
const (
	brkClosed   = "closed"
	brkOpen     = "open"
	brkHalfOpen = "half-open"
)

// breakerState is one SKU's circuit breaker. Collection lanes are
// single-goroutine, so no locking: sequential mode keeps one per SKU,
// concurrent mode one per lane.
type breakerState struct {
	policy      BreakerPolicy
	state       string
	consecutive int           // consecutive capacity failures
	openedAt    time.Duration // lane-clock time the breaker last opened
}

func newBreaker(p BreakerPolicy) *breakerState {
	return &breakerState{policy: p.withDefaults(), state: brkClosed}
}

func (b *breakerState) disabled() bool { return b.policy.Threshold < 0 }

// admit decides whether a task may use the SKU at lane time now. An open
// breaker past its cooldown transitions to half-open and admits one probe.
func (b *breakerState) admit(now time.Duration) bool {
	if b.disabled() || b.state != brkOpen {
		return true
	}
	if now >= b.openedAt+vclock.Seconds(b.policy.CooldownSeconds) {
		b.state = brkHalfOpen
		return true
	}
	return false
}

// success records a successful allocation; any state closes.
func (b *breakerState) success() (closed bool) {
	closed = b.state != brkClosed
	b.state = brkClosed
	b.consecutive = 0
	return closed
}

// failure records a capacity failure at lane time now and reports whether
// it opened (or re-opened) the breaker.
func (b *breakerState) failure(now time.Duration) (opened bool) {
	if b.disabled() {
		return false
	}
	b.consecutive++
	switch b.state {
	case brkHalfOpen:
		// The probe failed: straight back to open, cooldown restarts.
		b.state = brkOpen
		b.openedAt = now
		return true
	case brkClosed:
		if b.consecutive >= b.policy.Threshold {
			b.state = brkOpen
			b.openedAt = now
			return true
		}
	}
	return false
}

package collector

import (
	"testing"

	"hpcadvisor/internal/catalog"
	"hpcadvisor/internal/scenario"
)

func TestSpotCollectionCheaperPerScenario(t *testing.T) {
	// The same sweep on spot capacity must price scenarios at the spot
	// rate (30% of on-demand in the simulation) when runs complete.
	onDemand := newFixture(t)
	list1 := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{2})
	if _, err := onDemand.col.Run(list1, onDemand.store, Options{}); err != nil {
		t.Fatal(err)
	}

	spot := newFixture(t)
	list2 := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{2})
	report, err := spot.col.Run(list2, spot.store, Options{UseSpot: true, MaxAttempts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 1 {
		t.Fatalf("spot run did not complete: %+v", report)
	}
	odCost := onDemand.store.All()[0].CostUSD
	spotPts := spot.store.All()
	spotCost := spotPts[len(spotPts)-1].CostUSD
	ratio := spotCost / odCost
	if ratio < 0.28 || ratio > 0.32 {
		t.Errorf("spot/od scenario cost ratio = %.3f, want ~0.30", ratio)
	}
}

func TestSpotCollectionRetriesThroughPreemptions(t *testing.T) {
	// A longer sweep on spot capacity hits preemptions (~25% per attempt);
	// with a generous attempt budget every scenario eventually completes.
	f := newFixture(t)
	list, err := scenario.Generate(scenario.Spec{
		AppName:   "lammps",
		SKUs:      []string{"Standard_HB120rs_v3"},
		NNodes:    []int{1, 2, 3, 4, 8, 16},
		AppInputs: map[string][]string{"BOXFACTOR": {"30"}},
	}, catalog.Default())
	if err != nil {
		t.Fatal(err)
	}
	report, err := f.col.Run(list, f.store, Options{UseSpot: true, MaxAttempts: 12})
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 6 {
		t.Fatalf("completed = %d, want 6 (failed %d)", report.Completed, report.Failed)
	}
	// At least one scenario should have needed more than one attempt
	// (6 scenarios x 25% preemption makes an all-clean run vanishingly
	// unlikely; the hash is deterministic so this is stable).
	retried := 0
	for _, task := range list.Tasks {
		if task.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Error("no scenario was retried; preemption path untested")
	}
}

func TestSpotCollectionCostStillAccountsWaste(t *testing.T) {
	f := newFixture(t)
	list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{1, 2, 4})
	report, err := f.col.Run(list, f.store, Options{UseSpot: true, MaxAttempts: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Billed node-seconds include preempted partial runs and replacement
	// boots, priced at the spot rate.
	if report.CollectionCostUSD <= 0 {
		t.Error("spot collection must still cost money")
	}
	var scenarioCosts float64
	for _, p := range f.store.All() {
		scenarioCosts += p.CostUSD
	}
	if report.CollectionCostUSD <= scenarioCosts {
		t.Errorf("collection cost %.4f should exceed sum of scenario costs %.4f (boot + waste)",
			report.CollectionCostUSD, scenarioCosts)
	}
}

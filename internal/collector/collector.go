// Package collector implements the paper's data-collection phase
// (Section III-C, Algorithm 1): it walks the scenario task list, creates one
// pool per VM type, runs a setup task when the pool is (re)created, resizes
// the pool to each scenario's node count, executes the compute task, scrapes
// the reported variables, and stores a datapoint. When the VM type changes,
// the previous pool is resized to zero or deleted according to user
// preference.
//
// The walk runs in one of two modes. The default (Options.MaxParallelPools
// <= 1) is the paper's sequential loop: one pool at a time, one scenario at
// a time, everything on the deployment's shared virtual clock. With
// MaxParallelPools > 1 the scenario list is partitioned per VM type into
// independent pool lanes and up to that many lanes collect concurrently,
// each on a private simulation substrate (see engine.go). Both modes
// produce byte-identical datasets and identical accounting for the same
// scenario list — parallelism reorders execution, not outcomes.
package collector

import (
	"errors"
	"fmt"
	"sort"

	"hpcadvisor/internal/appmodel"
	"hpcadvisor/internal/batchsim"
	"hpcadvisor/internal/catalog"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/monitor"
	"hpcadvisor/internal/pricing"
	"hpcadvisor/internal/runner"
	"hpcadvisor/internal/scenario"
)

// Planner decides whether each pending scenario should execute; the smart
// sampler (Section III-F) plugs in here. A nil Planner runs everything.
type Planner interface {
	// Decide inspects the task and the data collected so far. Returning
	// run=false skips the scenario, recording the reason. In sequential
	// mode store is the collection's target store; in concurrent mode it is
	// the lane's own shard, so cross-VM-type strategies (e.g. aggressive
	// discarding) only see evidence from their own lane — use sequential
	// collection when a strategy needs to compare VM types.
	Decide(t *scenario.Task, store *dataset.Store) (run bool, reason string)
}

// Options tune a collection run.
type Options struct {
	// DeletePoolAfter deletes pools when the VM type changes; otherwise
	// pools are resized to zero (the paper offers both).
	DeletePoolAfter bool
	// MaxAttempts is how many times a failing scenario is tried (>= 1).
	MaxAttempts int
	// Planner optionally prunes scenarios (smart sampling).
	Planner Planner
	// Progress, when set, is invoked after every task state change. With
	// MaxParallelPools > 1 it is still called serially (an internal mutex
	// guards it), but calls from different lanes interleave in real-time
	// order, which varies run to run.
	Progress func(t *scenario.Task)
	// UseSpot collects on spot (low-priority) capacity: pools are billed at
	// the spot rate but tasks can be preempted; pair with MaxAttempts > 1.
	UseSpot bool
	// MaxParallelPools caps how many VM-type pool lanes collect
	// concurrently. Zero or one preserves the sequential Algorithm 1 walk.
	// Larger values partition the task list per VM type into independent
	// lanes, each simulated on a private virtual clock, and execute up to
	// this many lanes at once on real OS threads. For a fresh collection
	// the resulting dataset is byte-identical to the sequential run and the
	// report totals are equal; only real wall-clock time and the modeled
	// concurrent makespan (Report.ElapsedVirtualSeconds) shrink.
	MaxParallelPools int
}

// LaneReport is one VM type's share of a collection run. In concurrent mode
// a lane is the unit of parallel execution; in sequential mode the same
// accounting is kept per VM type so the two modes report identically. Lane
// sums equal the report totals by construction.
type LaneReport struct {
	// SKU and SKUAlias identify the lane's VM type.
	SKU      string
	SKUAlias string
	// Completed, Failed, Skipped, and Attempts count this lane's task
	// outcomes, mirroring the top-level report fields.
	Completed int
	Failed    int
	Skipped   int
	Attempts  int
	// NodeSeconds is the billed node time this lane accrued, including
	// boot, setup, and idle time.
	NodeSeconds float64
	// CostUSD prices the lane's node-seconds at the lane SKU's hourly rate.
	CostUSD float64
	// VirtualSeconds is how long the lane occupied its (virtual) timeline.
	VirtualSeconds float64
	// MeanUtil is the mean infrastructure utilization over the lane's
	// successful scenarios; Samples is how many contributed.
	MeanUtil monitor.Sample
	Samples  int
}

// Report summarizes a collection run.
type Report struct {
	// Completed, Failed, and Skipped count scenario outcomes.
	Completed int
	Failed    int
	Skipped   int
	// Attempts counts task executions including retries (preemptions on
	// spot capacity, transient failures); Attempts - Completed - Failed is
	// the wasted-run count.
	Attempts int
	// NodeSecondsBySKU is billed node time including boot and idle.
	NodeSecondsBySKU map[string]float64
	// CollectionCostUSD prices the billed node-seconds: the total cost of
	// obtaining the data (Section III-C, "data collection incurs a cost").
	CollectionCostUSD float64
	// VirtualSeconds is the canonical (sequential-equivalent) virtual
	// duration of the collection: the sum of all lane durations. It is
	// identical whatever MaxParallelPools is, which keeps timestamps and
	// accounting mode-independent.
	VirtualSeconds float64
	// ElapsedVirtualSeconds is the modeled wall-clock of the run: with
	// concurrent lanes it is the makespan of scheduling the lanes onto
	// MaxParallelPools workers, and with sequential collection it equals
	// VirtualSeconds. This is the "time to advice" that concurrency
	// reduces.
	ElapsedVirtualSeconds float64
	// Lanes breaks the run down per VM type, in first-appearance order of
	// the task list. Counter, node-second, cost, and virtual-second sums
	// over lanes equal the top-level fields for a fresh collection.
	Lanes []LaneReport
}

// Collector runs scenario lists against a deployed batch service.
type Collector struct {
	Service    *batchsim.Service
	Apps       *appmodel.Registry
	Prices     *pricing.PriceBook
	Catalog    *catalog.Catalog
	Region     string
	Deployment string
}

// New builds a collector for a deployment.
func New(svc *batchsim.Service, apps *appmodel.Registry, prices *pricing.PriceBook, cat *catalog.Catalog, region, deployment string) *Collector {
	return &Collector{Service: svc, Apps: apps, Prices: prices, Catalog: cat, Region: region, Deployment: deployment}
}

// Run executes Algorithm 1 over the task list, appending datapoints to
// store. It returns a report of what ran and what it cost. With
// Options.MaxParallelPools > 1 the run is delegated to the concurrent lane
// engine; outcomes are identical either way.
func (c *Collector) Run(list *scenario.List, store *dataset.Store, opts Options) (*Report, error) {
	if opts.MaxAttempts < 1 {
		opts.MaxAttempts = 1
	}
	if opts.MaxParallelPools > 1 && countPendingSKUs(list) > 1 {
		return c.runConcurrent(list, store, opts)
	}
	return c.runSequential(list, store, opts)
}

// countPendingSKUs reports how many distinct VM types still have pending
// tasks — the number of lanes a concurrent run would create.
func countPendingSKUs(list *scenario.List) int {
	seen := map[string]bool{}
	for _, t := range list.Tasks {
		if t.Status == scenario.StatusPending {
			seen[t.SKU] = true
		}
	}
	return len(seen)
}

// runSequential is the paper's Algorithm 1: one pool at a time on the
// deployment's shared clock, with per-VM-type lane accounting maintained
// along the way so its report matches the concurrent engine's.
func (c *Collector) runSequential(list *scenario.List, store *dataset.Store, opts Options) (*Report, error) {
	start := c.Service.Clock.Now()
	report := &Report{NodeSecondsBySKU: make(map[string]float64)}
	agg := monitor.NewAggregator()
	lanes := newLaneSet()
	defer func() {
		c.priceLanes(lanes.all, opts.UseSpot)
		foldLanes(report, lanes.all, agg)
	}()

	previousVMType := ""
	poolID := ""
	segStart := start // virtual time the active pool segment opened
	segNS := 0.0      // the active SKU's node-second total at segment open
	closeSegment := func() {
		if previousVMType == "" {
			return
		}
		ln := lanes.get(previousVMType, "")
		now := c.Service.Clock.Now()
		ln.VirtualSeconds += (now - segStart).Seconds()
		ln.NodeSeconds += c.Service.NodeSecondsBySKU()[previousVMType] - segNS
		segStart = now
	}
	teardown := func() error {
		if poolID == "" {
			return nil
		}
		closeSegment()
		if opts.DeletePoolAfter {
			if err := c.Service.DeletePool(poolID); err != nil {
				return err
			}
		} else if err := c.Service.Resize(poolID, 0); err != nil {
			return err
		}
		poolID = ""
		return nil
	}

	for _, task := range list.Tasks {
		if task.Status != scenario.StatusPending {
			continue
		}
		lane := lanes.get(task.SKU, task.SKUAlias)
		if opts.Planner != nil {
			if run, reason := opts.Planner.Decide(task, store); !run {
				task.Status = scenario.StatusSkipped
				task.Error = reason
				lane.Skipped++
				notify(opts, task)
				continue
			}
		}

		// Pool-per-VM-type reuse (Algorithm 1 lines 3-7). A zero-sized pool
		// left by a previous collection on the same deployment is adopted.
		if task.SKU != previousVMType {
			if err := teardown(); err != nil {
				return report, err
			}
			poolID = "pool-" + task.SKUAlias
			create := c.Service.CreatePool
			if opts.UseSpot {
				create = c.Service.CreateSpotPool
			}
			if _, err := create(poolID, task.SKU, runner.SetupSeconds); err != nil {
				if !errors.Is(err, batchsim.ErrPoolExists) {
					return report, fmt.Errorf("collector: creating pool for %s: %w", task.SKU, err)
				}
			}
			previousVMType = task.SKU
			segStart = c.Service.Clock.Now()
			segNS = c.Service.NodeSecondsBySKU()[task.SKU]
		}
		if err := c.Service.Resize(poolID, task.NNodes); err != nil {
			task.Status = scenario.StatusFailed
			task.Error = err.Error()
			lane.Failed++
			notify(opts, task)
			continue
		}

		if err := c.runScenario(c.Service, task, opts, poolID, lane, agg, store.Add); err != nil {
			return report, err
		}
	}
	if err := teardown(); err != nil {
		return report, err
	}

	report.NodeSecondsBySKU = c.Service.NodeSecondsBySKU()
	cost, err := c.priceNodeSeconds(report.NodeSecondsBySKU, opts.UseSpot)
	if err != nil {
		return report, err
	}
	report.CollectionCostUSD = cost
	report.VirtualSeconds = (c.Service.Clock.Now() - start).Seconds()
	report.ElapsedVirtualSeconds = report.VirtualSeconds
	// With a storage backend attached, every point streamed through Add is
	// already on disk; Flush fsyncs the tail batch and surfaces any
	// write-through failure the run would otherwise swallow.
	return report, store.Flush()
}

// runScenario executes one task with retries on svc's pool and records its
// datapoint through addPoint, updating the lane's counters. It is the
// per-scenario core shared by the sequential walk and the concurrent lanes.
func (c *Collector) runScenario(svc *batchsim.Service, task *scenario.Task, opts Options, poolID string, lane *LaneReport, agg *monitor.Aggregator, addPoint func(dataset.Point)) error {
	app, err := c.Apps.Get(task.AppName)
	if err != nil {
		task.Status = scenario.StatusFailed
		task.Error = err.Error()
		lane.Failed++
		notify(opts, task)
		return nil
	}
	w, err := app.Parse(task.AppInput)
	if err != nil {
		task.Status = scenario.StatusFailed
		task.Error = err.Error()
		lane.Failed++
		notify(opts, task)
		return nil
	}

	task.Status = scenario.StatusRunning
	notify(opts, task)

	var bt *batchsim.Task
	// Attempts accumulate across resumed collections; each Run grants the
	// task a fresh attempt budget.
	for attempt := 0; attempt < opts.MaxAttempts; attempt++ {
		task.Attempts++
		lane.Attempts++
		spec := batchsim.TaskSpec{
			Name:          task.ID,
			NodesRequired: task.NNodes,
			Run: func(tc batchsim.TaskContext) batchsim.TaskResult {
				env := runner.Env{
					NNodes:       task.NNodes,
					PPN:          task.PPN,
					SKU:          task.SKU,
					Hosts:        tc.NodeIDs,
					TaskRunDir:   "/data/jobs/" + task.ID,
					HostfilePath: "/data/jobs/" + task.ID + "/hostfile",
					AppInputs:    task.AppInput,
				}
				return runner.NewTaskFunc(app, w, env)(tc)
			},
		}
		bt, err = svc.RunToCompletion(poolID, spec)
		if err != nil {
			return fmt.Errorf("collector: scenario %s: %w", task.ID, err)
		}
		if bt.Status == batchsim.TaskCompleted {
			break
		}
	}
	task.TaskID = bt.ID

	if bt.Status != batchsim.TaskCompleted {
		task.Status = scenario.StatusFailed
		task.Error = firstLine(bt.Result.Stdout)
		lane.Failed++
		addPoint(dataset.Point{
			ScenarioID: task.ID,
			Deployment: c.Deployment,
			AppName:    task.AppName,
			SKU:        task.SKU,
			SKUAlias:   task.SKUAlias,
			NNodes:     task.NNodes,
			PPN:        task.PPN,
			AppInput:   task.AppInput,
			InputDesc:  describeInput(w, task),
			Tags:       task.Tags,
			Failed:     true,
			Error:      task.Error,

			CollectedAt: svc.Clock.NowSeconds(),
		})
		notify(opts, task)
		return nil
	}

	execTime := bt.Result.DurationSeconds
	hourly, err := c.hourly(task.SKU, opts.UseSpot)
	if err != nil {
		return fmt.Errorf("collector: pricing scenario %s: %w", task.ID, err)
	}
	cost := pricing.CostAt(hourly, task.NNodes, execTime)

	// The profile is re-derived for utilization; the simulation is
	// deterministic so this matches what the task observed.
	sku, err := c.Catalog.Lookup(task.SKU)
	if err != nil {
		return fmt.Errorf("collector: scenario %s: %w", task.ID, err)
	}
	prof, err := appmodel.Simulate(w, sku, task.NNodes, task.PPN)
	if err != nil {
		return fmt.Errorf("collector: profiling scenario %s: %w", task.ID, err)
	}
	sample := monitor.FromProfile(prof)
	agg.Observe(task.SKU, sample)

	addPoint(dataset.Point{
		ScenarioID:  task.ID,
		Deployment:  c.Deployment,
		AppName:     task.AppName,
		SKU:         task.SKU,
		SKUAlias:    task.SKUAlias,
		NNodes:      task.NNodes,
		PPN:         task.PPN,
		AppInput:    task.AppInput,
		InputDesc:   describeInput(w, task),
		Tags:        task.Tags,
		ExecTimeSec: execTime,
		CostUSD:     cost,
		Metrics:     runner.ParseVars(bt.Result.Stdout),
		Utilization: sample,
		Bottleneck:  monitor.Classify(sample),
		CollectedAt: svc.Clock.NowSeconds(),
	})
	task.Status = scenario.StatusCompleted
	task.Error = ""
	lane.Completed++
	notify(opts, task)
	return nil
}

// hourly resolves the billing rate for a SKU at on-demand or spot terms.
func (c *Collector) hourly(sku string, spot bool) (float64, error) {
	if spot {
		return c.Prices.HourlySpot(c.Region, sku)
	}
	return c.Prices.Hourly(c.Region, sku)
}

// priceNodeSeconds totals the cost of a node-seconds-by-SKU map, summing in
// sorted SKU order so the float result is deterministic.
func (c *Collector) priceNodeSeconds(ns map[string]float64, spot bool) (float64, error) {
	total := 0.0
	for _, sku := range sortedKeys(ns) {
		hourly, err := c.hourly(sku, spot)
		if err != nil {
			return 0, err
		}
		total += ns[sku] * hourly / 3600
	}
	return total, nil
}

// priceLanes fills each lane's CostUSD from its node-seconds. Pricing
// errors surface through the run's own pricing path; here they only leave
// the lane cost at zero.
func (c *Collector) priceLanes(lanes []*LaneReport, spot bool) {
	for _, ln := range lanes {
		hourly, err := c.hourly(ln.SKU, spot)
		if err != nil {
			continue
		}
		ln.CostUSD = ln.NodeSeconds * hourly / 3600
	}
}

// laneSet tracks per-VM-type lane reports in first-appearance order.
type laneSet struct {
	index map[string]int
	all   []*LaneReport
}

func newLaneSet() *laneSet {
	return &laneSet{index: map[string]int{}}
}

func (s *laneSet) get(sku, alias string) *LaneReport {
	if i, ok := s.index[sku]; ok {
		if s.all[i].SKUAlias == "" {
			s.all[i].SKUAlias = alias
		}
		return s.all[i]
	}
	s.index[sku] = len(s.all)
	s.all = append(s.all, &LaneReport{SKU: sku, SKUAlias: alias})
	return s.all[len(s.all)-1]
}

// foldLanes finalizes per-lane utilization means and accumulates lane
// counters into the report totals, so lane sums equal totals by
// construction in both collection modes.
func foldLanes(report *Report, lanes []*LaneReport, agg *monitor.Aggregator) {
	for _, ln := range lanes {
		if mean, n := agg.Mean(ln.SKU); n > 0 {
			ln.MeanUtil, ln.Samples = mean, n
		}
		report.Completed += ln.Completed
		report.Failed += ln.Failed
		report.Skipped += ln.Skipped
		report.Attempts += ln.Attempts
		report.Lanes = append(report.Lanes, *ln)
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func describeInput(w appmodel.Workload, task *scenario.Task) string {
	if w.InputDesc != "" {
		return w.InputDesc
	}
	return task.InputDesc()
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

func notify(opts Options, t *scenario.Task) {
	if opts.Progress != nil {
		opts.Progress(t)
	}
}

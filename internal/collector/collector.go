// Package collector implements the paper's data-collection phase
// (Section III-C, Algorithm 1): it walks the scenario task list, creates one
// pool per VM type, runs a setup task when the pool is (re)created, resizes
// the pool to each scenario's node count, executes the compute task, scrapes
// the reported variables, and stores a datapoint. When the VM type changes,
// the previous pool is resized to zero or deleted according to user
// preference.
package collector

import (
	"errors"
	"fmt"

	"hpcadvisor/internal/appmodel"
	"hpcadvisor/internal/batchsim"
	"hpcadvisor/internal/catalog"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/monitor"
	"hpcadvisor/internal/pricing"
	"hpcadvisor/internal/runner"
	"hpcadvisor/internal/scenario"
)

// Planner decides whether each pending scenario should execute; the smart
// sampler (Section III-F) plugs in here. A nil Planner runs everything.
type Planner interface {
	// Decide inspects the task and the data collected so far. Returning
	// run=false skips the scenario, recording the reason.
	Decide(t *scenario.Task, store *dataset.Store) (run bool, reason string)
}

// Options tune a collection run.
type Options struct {
	// DeletePoolAfter deletes pools when the VM type changes; otherwise
	// pools are resized to zero (the paper offers both).
	DeletePoolAfter bool
	// MaxAttempts is how many times a failing scenario is tried (>= 1).
	MaxAttempts int
	// Planner optionally prunes scenarios (smart sampling).
	Planner Planner
	// Progress, when set, is invoked after every task state change.
	Progress func(t *scenario.Task)
	// UseSpot collects on spot (low-priority) capacity: pools are billed at
	// the spot rate but tasks can be preempted; pair with MaxAttempts > 1.
	UseSpot bool
}

// Report summarizes a collection run.
type Report struct {
	Completed int
	Failed    int
	Skipped   int
	// Attempts counts task executions including retries (preemptions on
	// spot capacity, transient failures); Attempts - Completed - Failed is
	// the wasted-run count.
	Attempts int
	// NodeSecondsBySKU is billed node time including boot and idle.
	NodeSecondsBySKU map[string]float64
	// CollectionCostUSD prices the billed node-seconds: the total cost of
	// obtaining the data (Section III-C, "data collection incurs a cost").
	CollectionCostUSD float64
	// VirtualSeconds is how long the collection took on the virtual clock.
	VirtualSeconds float64
}

// Collector runs scenario lists against a deployed batch service.
type Collector struct {
	Service    *batchsim.Service
	Apps       *appmodel.Registry
	Prices     *pricing.PriceBook
	Catalog    *catalog.Catalog
	Region     string
	Deployment string
}

// New builds a collector for a deployment.
func New(svc *batchsim.Service, apps *appmodel.Registry, prices *pricing.PriceBook, cat *catalog.Catalog, region, deployment string) *Collector {
	return &Collector{Service: svc, Apps: apps, Prices: prices, Catalog: cat, Region: region, Deployment: deployment}
}

// Run executes Algorithm 1 over the task list, appending datapoints to
// store. It returns a report of what ran and what it cost.
func (c *Collector) Run(list *scenario.List, store *dataset.Store, opts Options) (*Report, error) {
	if opts.MaxAttempts < 1 {
		opts.MaxAttempts = 1
	}
	start := c.Service.Clock.Now()
	report := &Report{NodeSecondsBySKU: make(map[string]float64)}

	previousVMType := ""
	poolID := ""
	teardown := func() error {
		if poolID == "" {
			return nil
		}
		if opts.DeletePoolAfter {
			if err := c.Service.DeletePool(poolID); err != nil {
				return err
			}
		} else if err := c.Service.Resize(poolID, 0); err != nil {
			return err
		}
		poolID = ""
		return nil
	}

	for _, task := range list.Tasks {
		if task.Status != scenario.StatusPending {
			continue
		}
		if opts.Planner != nil {
			if run, reason := opts.Planner.Decide(task, store); !run {
				task.Status = scenario.StatusSkipped
				task.Error = reason
				report.Skipped++
				notify(opts, task)
				continue
			}
		}

		// Pool-per-VM-type reuse (Algorithm 1 lines 3-7). A zero-sized pool
		// left by a previous collection on the same deployment is adopted.
		if task.SKU != previousVMType {
			if err := teardown(); err != nil {
				return report, err
			}
			poolID = "pool-" + task.SKUAlias
			create := c.Service.CreatePool
			if opts.UseSpot {
				create = c.Service.CreateSpotPool
			}
			if _, err := create(poolID, task.SKU, runner.SetupSeconds); err != nil {
				if !errors.Is(err, batchsim.ErrPoolExists) {
					return report, fmt.Errorf("collector: creating pool for %s: %w", task.SKU, err)
				}
			}
			previousVMType = task.SKU
		}
		if err := c.Service.Resize(poolID, task.NNodes); err != nil {
			task.Status = scenario.StatusFailed
			task.Error = err.Error()
			report.Failed++
			notify(opts, task)
			continue
		}

		if err := c.runScenario(task, store, opts, poolID, report); err != nil {
			return report, err
		}
	}
	if err := teardown(); err != nil {
		return report, err
	}

	report.NodeSecondsBySKU = c.Service.NodeSecondsBySKU()
	for sku, ns := range report.NodeSecondsBySKU {
		hourly, err := c.hourly(sku, opts.UseSpot)
		if err != nil {
			return report, err
		}
		report.CollectionCostUSD += ns * hourly / 3600
	}
	report.VirtualSeconds = (c.Service.Clock.Now() - start).Seconds()
	return report, nil
}

// runScenario executes one task with retries and records its datapoint.
func (c *Collector) runScenario(task *scenario.Task, store *dataset.Store, opts Options, poolID string, report *Report) error {
	app, err := c.Apps.Get(task.AppName)
	if err != nil {
		task.Status = scenario.StatusFailed
		task.Error = err.Error()
		report.Failed++
		notify(opts, task)
		return nil
	}
	w, err := app.Parse(task.AppInput)
	if err != nil {
		task.Status = scenario.StatusFailed
		task.Error = err.Error()
		report.Failed++
		notify(opts, task)
		return nil
	}

	task.Status = scenario.StatusRunning
	notify(opts, task)

	var bt *batchsim.Task
	// Attempts accumulate across resumed collections; each Run grants the
	// task a fresh attempt budget.
	for attempt := 0; attempt < opts.MaxAttempts; attempt++ {
		task.Attempts++
		report.Attempts++
		spec := batchsim.TaskSpec{
			Name:          task.ID,
			NodesRequired: task.NNodes,
			Run: func(tc batchsim.TaskContext) batchsim.TaskResult {
				env := runner.Env{
					NNodes:       task.NNodes,
					PPN:          task.PPN,
					SKU:          task.SKU,
					Hosts:        tc.NodeIDs,
					TaskRunDir:   "/data/jobs/" + task.ID,
					HostfilePath: "/data/jobs/" + task.ID + "/hostfile",
					AppInputs:    task.AppInput,
				}
				return runner.NewTaskFunc(app, w, env)(tc)
			},
		}
		bt, err = c.Service.RunToCompletion(poolID, spec)
		if err != nil {
			return fmt.Errorf("collector: scenario %s: %w", task.ID, err)
		}
		if bt.Status == batchsim.TaskCompleted {
			break
		}
	}
	task.TaskID = bt.ID

	if bt.Status != batchsim.TaskCompleted {
		task.Status = scenario.StatusFailed
		task.Error = firstLine(bt.Result.Stdout)
		report.Failed++
		store.Add(dataset.Point{
			ScenarioID: task.ID,
			Deployment: c.Deployment,
			AppName:    task.AppName,
			SKU:        task.SKU,
			SKUAlias:   task.SKUAlias,
			NNodes:     task.NNodes,
			PPN:        task.PPN,
			AppInput:   task.AppInput,
			InputDesc:  describeInput(w, task),
			Tags:       task.Tags,
			Failed:     true,
			Error:      task.Error,

			CollectedAt: c.Service.Clock.NowSeconds(),
		})
		notify(opts, task)
		return nil
	}

	execTime := bt.Result.DurationSeconds
	hourly, err := c.hourly(task.SKU, opts.UseSpot)
	if err != nil {
		return fmt.Errorf("collector: pricing scenario %s: %w", task.ID, err)
	}
	cost := pricing.CostAt(hourly, task.NNodes, execTime)

	// The profile is re-derived for utilization; the simulation is
	// deterministic so this matches what the task observed.
	sku, err := c.Catalog.Lookup(task.SKU)
	if err != nil {
		return fmt.Errorf("collector: scenario %s: %w", task.ID, err)
	}
	prof, err := appmodel.Simulate(w, sku, task.NNodes, task.PPN)
	if err != nil {
		return fmt.Errorf("collector: profiling scenario %s: %w", task.ID, err)
	}
	sample := monitor.FromProfile(prof)

	store.Add(dataset.Point{
		ScenarioID:  task.ID,
		Deployment:  c.Deployment,
		AppName:     task.AppName,
		SKU:         task.SKU,
		SKUAlias:    task.SKUAlias,
		NNodes:      task.NNodes,
		PPN:         task.PPN,
		AppInput:    task.AppInput,
		InputDesc:   describeInput(w, task),
		Tags:        task.Tags,
		ExecTimeSec: execTime,
		CostUSD:     cost,
		Metrics:     runner.ParseVars(bt.Result.Stdout),
		Utilization: sample,
		Bottleneck:  monitor.Classify(sample),
		CollectedAt: c.Service.Clock.NowSeconds(),
	})
	task.Status = scenario.StatusCompleted
	task.Error = ""
	report.Completed++
	notify(opts, task)
	return nil
}

// hourly resolves the billing rate for a SKU at on-demand or spot terms.
func (c *Collector) hourly(sku string, spot bool) (float64, error) {
	if spot {
		return c.Prices.HourlySpot(c.Region, sku)
	}
	return c.Prices.Hourly(c.Region, sku)
}

func describeInput(w appmodel.Workload, task *scenario.Task) string {
	if w.InputDesc != "" {
		return w.InputDesc
	}
	return task.InputDesc()
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

func notify(opts Options, t *scenario.Task) {
	if opts.Progress != nil {
		opts.Progress(t)
	}
}

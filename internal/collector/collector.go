// Package collector implements the paper's data-collection phase
// (Section III-C, Algorithm 1): it walks the scenario task list, creates one
// pool per VM type, runs a setup task when the pool is (re)created, resizes
// the pool to each scenario's node count, executes the compute task, scrapes
// the reported variables, and stores a datapoint. When the VM type changes,
// the previous pool is resized to zero or deleted according to user
// preference.
//
// The walk runs in one of two modes. The default (Options.MaxParallelPools
// <= 1) is the paper's sequential loop: one pool at a time, one scenario at
// a time, everything on the deployment's shared virtual clock. With
// MaxParallelPools > 1 the scenario list is partitioned per VM type into
// independent pool lanes and up to that many lanes collect concurrently,
// each on a private simulation substrate (see engine.go). Both modes
// produce byte-identical datasets and identical accounting for the same
// scenario list — parallelism reorders execution, not outcomes.
//
// The walk is also a durable, failure-aware state machine. Every error is
// classified by the failure taxonomy (taxonomy.go) with a per-class retry
// decision; capacity failures feed a per-SKU circuit breaker; with a
// Journal attached (journal.go) every attempt and outcome is recorded
// durably, Options.Interrupt winds the run down cleanly, and a later run
// with Options.Resume ghost-replays the journaled prefix through the
// simulation — recomputing clocks, attempts, and IDs identically without
// re-collecting durable datapoints — so the resumed dataset is
// byte-identical to an uninterrupted run.
package collector

import (
	"errors"
	"fmt"
	"sort"

	"hpcadvisor/internal/appmodel"
	"hpcadvisor/internal/batchsim"
	"hpcadvisor/internal/catalog"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/monitor"
	"hpcadvisor/internal/pricing"
	"hpcadvisor/internal/runner"
	"hpcadvisor/internal/scenario"
)

// ErrInterrupted reports that Options.Interrupt fired: the run wound down
// at a task boundary, released its pools, and sealed the journal. The
// report describes what happened before the stop; `collect -resume`
// continues the sweep.
var ErrInterrupted = errors.New("collector: interrupted")

// Planner decides whether each pending scenario should execute; the smart
// sampler (Section III-F) plugs in here. A nil Planner runs everything.
type Planner interface {
	// Decide inspects the task and the data collected so far. Returning
	// run=false skips the scenario, recording the reason. In sequential
	// mode store is the collection's target store; in concurrent mode it is
	// the lane's own shard, so cross-VM-type strategies (e.g. aggressive
	// discarding) only see evidence from their own lane — use sequential
	// collection when a strategy needs to compare VM types.
	Decide(t *scenario.Task, store *dataset.Store) (run bool, reason string)
}

// Options tune a collection run.
type Options struct {
	// DeletePoolAfter deletes pools when the VM type changes; otherwise
	// pools are resized to zero (the paper offers both).
	DeletePoolAfter bool
	// MaxAttempts is how many times a failing scenario is tried (>= 1).
	// Only retryable failure classes (transient, capacity, preemption)
	// consume the extra attempts; application failures never retry.
	MaxAttempts int
	// Planner optionally prunes scenarios (smart sampling).
	Planner Planner
	// Progress, when set, is invoked after every task state change. With
	// MaxParallelPools > 1 it is still called serially (an internal mutex
	// guards it), but calls from different lanes interleave in real-time
	// order, which varies run to run.
	Progress func(t *scenario.Task)
	// UseSpot collects on spot (low-priority) capacity: pools are billed at
	// the spot rate but tasks can be preempted; pair with MaxAttempts > 1.
	UseSpot bool
	// MaxParallelPools caps how many VM-type pool lanes collect
	// concurrently. Zero or one preserves the sequential Algorithm 1 walk.
	// Larger values partition the task list per VM type into independent
	// lanes, each simulated on a private virtual clock, and execute up to
	// this many lanes at once on real OS threads. For a fresh collection
	// the resulting dataset is byte-identical to the sequential run and the
	// report totals are equal; only real wall-clock time and the modeled
	// concurrent makespan (Report.ElapsedVirtualSeconds) shrink.
	MaxParallelPools int
	// Journal, when set, records every attempt and terminal outcome
	// durably as the run progresses, making the sweep crash-resumable.
	Journal *Journal
	// Resume replays a prior journal: journaled terminal tasks are
	// ghost-replayed (re-executed through the simulation for identical
	// clocks and IDs, without re-adding datapoints that are already
	// durable) and only the rest collect for real.
	Resume *Replay
	// Interrupt, when it becomes readable (typically a closed channel or a
	// canceled context's Done), stops the run at the next task boundary:
	// pools are released, the journal is sealed, and Run returns
	// ErrInterrupted.
	Interrupt <-chan struct{}
	// Backoff shapes retry delays for transient and capacity failures.
	Backoff BackoffPolicy
	// Breaker tunes the per-SKU circuit breaker on capacity failures.
	Breaker BreakerPolicy
	// Stats, when set, receives resilience counters (attempts by class,
	// retries, breaker transitions, resume accounting).
	Stats *monitor.CollectionStats

	// have marks scenario IDs whose datapoints are already durable in the
	// target store; computed by Run when resuming.
	have map[string]bool
}

// LaneReport is one VM type's share of a collection run. In concurrent mode
// a lane is the unit of parallel execution; in sequential mode the same
// accounting is kept per VM type so the two modes report identically. Lane
// sums equal the report totals by construction.
type LaneReport struct {
	// SKU and SKUAlias identify the lane's VM type.
	SKU      string
	SKUAlias string
	// Completed, Failed, Skipped, and Attempts count this lane's task
	// outcomes, mirroring the top-level report fields.
	Completed int
	Failed    int
	Skipped   int
	// Attempts counts task executions performed by this run's own process.
	// Attempts ghost-replayed from a resumed journal are counted in
	// ResumedAttempts instead, so the two never double-count across
	// process lifetimes: sum(task.Attempts) == Attempts + ResumedAttempts.
	Attempts int
	// Retries counts retry decisions taken by the failure taxonomy
	// (transient/capacity backoffs and spot preemption re-runs).
	Retries int
	// BreakerSkipped counts tasks skipped because the SKU's circuit
	// breaker was open (a subset of Skipped).
	BreakerSkipped int
	// Resumed counts journaled tasks restored on resume without
	// re-collecting their datapoint; Rerun counts journaled tasks that had
	// to re-collect because their datapoint never became durable.
	Resumed int
	Rerun   int
	// ResumedAttempts counts attempts recomputed during ghost replay —
	// work a previous process lifetime already performed.
	ResumedAttempts int
	// NodeSeconds is the billed node time this lane accrued, including
	// boot, setup, and idle time.
	NodeSeconds float64
	// CostUSD prices the lane's node-seconds at the lane SKU's hourly rate.
	CostUSD float64
	// VirtualSeconds is how long the lane occupied its (virtual) timeline.
	VirtualSeconds float64
	// MeanUtil is the mean infrastructure utilization over the lane's
	// successful scenarios; Samples is how many contributed.
	MeanUtil monitor.Sample
	Samples  int
}

// Report summarizes a collection run.
type Report struct {
	// Completed, Failed, and Skipped count scenario outcomes.
	Completed int
	Failed    int
	Skipped   int
	// Attempts counts task executions by this process, including retries
	// (preemptions on spot capacity, transient failures). Attempts
	// replayed from a resumed journal are in ResumedAttempts.
	Attempts int
	// Retries, BreakerSkipped, Resumed, Rerun, and ResumedAttempts sum the
	// corresponding lane counters (see LaneReport).
	Retries         int
	BreakerSkipped  int
	Resumed         int
	Rerun           int
	ResumedAttempts int
	// Interrupted reports that the run stopped early on Options.Interrupt.
	Interrupted bool
	// NodeSecondsBySKU is billed node time including boot and idle.
	NodeSecondsBySKU map[string]float64
	// CollectionCostUSD prices the billed node-seconds: the total cost of
	// obtaining the data (Section III-C, "data collection incurs a cost").
	CollectionCostUSD float64
	// VirtualSeconds is the canonical (sequential-equivalent) virtual
	// duration of the collection: the sum of all lane durations. It is
	// identical whatever MaxParallelPools is, which keeps timestamps and
	// accounting mode-independent.
	VirtualSeconds float64
	// ElapsedVirtualSeconds is the modeled wall-clock of the run: with
	// concurrent lanes it is the makespan of scheduling the lanes onto
	// MaxParallelPools workers, and with sequential collection it equals
	// VirtualSeconds. This is the "time to advice" that concurrency
	// reduces.
	ElapsedVirtualSeconds float64
	// Lanes breaks the run down per VM type, in first-appearance order of
	// the task list. Counter, node-second, cost, and virtual-second sums
	// over lanes equal the top-level fields for a fresh collection.
	Lanes []LaneReport
}

// Collector runs scenario lists against a deployed batch service.
type Collector struct {
	Service    *batchsim.Service
	Apps       *appmodel.Registry
	Prices     *pricing.PriceBook
	Catalog    *catalog.Catalog
	Region     string
	Deployment string
}

// New builds a collector for a deployment.
func New(svc *batchsim.Service, apps *appmodel.Registry, prices *pricing.PriceBook, cat *catalog.Catalog, region, deployment string) *Collector {
	return &Collector{Service: svc, Apps: apps, Prices: prices, Catalog: cat, Region: region, Deployment: deployment}
}

// Run executes Algorithm 1 over the task list, appending datapoints to
// store. It returns a report of what ran and what it cost. With
// Options.MaxParallelPools > 1 the run is delegated to the concurrent lane
// engine; outcomes are identical either way.
func (c *Collector) Run(list *scenario.List, store *dataset.Store, opts Options) (*Report, error) {
	if opts.MaxAttempts < 1 {
		opts.MaxAttempts = 1
	}
	opts.Journal.SetStats(opts.Stats)
	if opts.Journal != nil {
		opts.Journal.append(Record{
			Kind: recBegin, Deployment: c.Deployment, Spot: opts.UseSpot,
			MaxAttempts: opts.MaxAttempts, Parallel: opts.MaxParallelPools,
		})
	}
	opts.have = resumeHave(opts.Resume, store)

	var rep *Report
	var err error
	if opts.MaxParallelPools > 1 && countActiveSKUs(list, opts.Resume) > 1 {
		rep, err = c.runConcurrent(list, store, opts)
	} else {
		rep, err = c.runSequential(list, store, opts)
	}

	if opts.Journal != nil {
		switch {
		case errors.Is(err, ErrInterrupted):
			opts.Journal.append(Record{Kind: recSeal, Reason: SealInterrupted})
		case err == nil:
			// Everything merged and flushed: upgrade every outcome to
			// durable, then seal. A crash from here on resumes for free.
			opts.Journal.append(Record{Kind: recFlushed})
			opts.Journal.append(Record{Kind: recSeal, Reason: SealComplete})
		}
		// A hard error leaves the journal unsealed on purpose: the sweep
		// is interrupted in fact, and -resume picks it up.
		if jerr := opts.Journal.Err(); jerr != nil && err == nil {
			err = fmt.Errorf("collector: journal: %w", jerr)
		}
	}
	return rep, err
}

// countActiveSKUs reports how many distinct VM types the walk will touch:
// pending tasks plus (under resume) journaled tasks to ghost-replay — the
// number of lanes a concurrent run would create.
func countActiveSKUs(list *scenario.List, resume *Replay) int {
	seen := map[string]bool{}
	for _, t := range list.Tasks {
		if t.Status == scenario.StatusPending || isGhost(resume, t) {
			seen[t.SKU] = true
		}
	}
	return len(seen)
}

// isGhost reports whether a task has a journaled outcome to replay.
func isGhost(resume *Replay, t *scenario.Task) bool {
	if resume == nil {
		return false
	}
	_, ok := resume.Outcomes[t.ID]
	return ok
}

// resumeHave marks the scenario IDs whose datapoints are already durable in
// store and must not be appended again on resume: journaled outcomes whose
// point is present, plus dangling attempts (the process died between the
// point flush and the outcome record).
func resumeHave(resume *Replay, store *dataset.Store) map[string]bool {
	if resume == nil {
		return nil
	}
	present := make(map[string]bool)
	for _, p := range store.All() {
		present[p.ScenarioID] = true
	}
	have := make(map[string]bool)
	for id := range resume.Outcomes {
		if present[id] {
			have[id] = true
		}
	}
	for id := range resume.Dangling {
		if present[id] {
			have[id] = true
		}
	}
	return have
}

// interrupted polls Options.Interrupt without blocking.
func interrupted(opts Options) bool {
	if opts.Interrupt == nil {
		return false
	}
	select {
	case <-opts.Interrupt:
		return true
	default:
		return false
	}
}

// taskRun is the per-task execution context shared by the sequential walk
// and the concurrent lanes: the service to run on, the lane being
// accounted, the SKU's breaker, and whether this is a ghost replay of a
// journaled outcome.
type taskRun struct {
	svc      *batchsim.Service
	opts     Options
	lane     *LaneReport
	agg      *monitor.Aggregator
	addPoint func(dataset.Point)
	// flush, when set, is called before journaling an outcome so the
	// outcome can be marked durable; nil (concurrent lanes) journals
	// outcomes as non-durable until the merge's flushed marker.
	flush func() error
	brk   *breakerState
	ghost bool
}

func (r *taskRun) countAttempt() {
	if r.ghost {
		r.lane.ResumedAttempts++
	} else {
		r.lane.Attempts++
	}
}

func (r *taskRun) countRetry(class FailureClass) {
	if r.ghost {
		return
	}
	r.lane.Retries++
	r.opts.Stats.Retry(string(class))
}

// journalStart marks an attempt as in flight before execution, so a crash
// mid-attempt leaves a dangling marker and resume knows a datapoint may
// exist without a covering outcome.
func (r *taskRun) journalStart(task *scenario.Task) {
	if r.opts.Journal == nil || r.ghost {
		return
	}
	r.opts.Journal.append(Record{
		Kind: recAttempt, Task: task.ID, SKU: task.SKU,
		Attempt: task.Attempts, VSec: r.svc.Clock.NowSeconds(),
	})
}

// journalFailedAttempt records a classified attempt failure.
func (r *taskRun) journalFailedAttempt(task *scenario.Task, attempt int, class FailureClass, msg string) {
	if r.opts.Journal == nil || r.ghost {
		return
	}
	r.opts.Journal.append(Record{
		Kind: recAttempt, Task: task.ID, SKU: task.SKU, Attempt: attempt,
		Class: string(class), Error: msg, VSec: r.svc.Clock.NowSeconds(),
	})
}

// journalOutcome records a terminal task state. With a flush hook the
// datapoint (if any) is made durable first and the outcome marked so;
// ghost replays re-journal their outcomes with Resumed set, upgrading
// durability for a possible second crash.
func (r *taskRun) journalOutcome(task *scenario.Task, class FailureClass, reason string) {
	j := r.opts.Journal
	if j == nil {
		return
	}
	durable := false
	if r.flush != nil && r.flush() == nil {
		durable = true
	}
	j.append(Record{
		Kind: recOutcome, Task: task.ID, SKU: task.SKU,
		Status: string(task.Status), Class: string(class), Error: task.Error,
		Tried: task.Attempts, Durable: durable, Resumed: r.ghost,
		Reason: reason, VSec: r.svc.Clock.NowSeconds(),
	})
}

func (r *taskRun) breakerTransition(sku, state string) {
	r.opts.Stats.Breaker(sku, state)
	if r.opts.Journal != nil && !r.ghost {
		r.opts.Journal.append(Record{
			Kind: recBreaker, SKU: sku, Status: state,
			VSec: r.svc.Clock.NowSeconds(),
		})
	}
}

// finishGhost books a completed ghost replay as resumed (its datapoint was
// already durable — nothing re-collected) or rerun (it had to re-collect).
func (r *taskRun) finishGhost(task *scenario.Task, out TaskOutcome) {
	if r.opts.have[task.ID] || out.Durable {
		r.lane.Resumed++
		r.opts.Stats.TaskResumed()
	} else {
		r.lane.Rerun++
		r.opts.Stats.TaskRerun()
	}
}

// restoreSkip restores a journaled skip outcome directly: the original
// skip consumed no simulation time, so the replay must not either.
func restoreSkip(opts Options, task *scenario.Task, lane *LaneReport, out TaskOutcome) {
	task.Status = out.Status
	task.Attempts = out.Attempts
	task.Error = out.Error
	lane.Skipped++
	if out.Class == ClassCapacity {
		lane.BreakerSkipped++
	}
	lane.Resumed++
	opts.Stats.TaskResumed()
	notify(opts, task)
}

// createPool creates (or adopts) the lane pool, retrying transient and
// capacity control-plane failures with backoff. A non-retryable failure is
// a hard error: without a pool the lane cannot proceed at all.
func (c *Collector) createPool(r *taskRun, task *scenario.Task, poolID string) error {
	create := r.svc.CreatePool
	if r.opts.UseSpot {
		create = r.svc.CreateSpotPool
	}
	for attempt := 1; ; attempt++ {
		_, err := create(poolID, task.SKU, runner.SetupSeconds)
		if err == nil || errors.Is(err, batchsim.ErrPoolExists) {
			// A zero-sized pool left by a previous collection on the same
			// deployment is adopted.
			return nil
		}
		class := Classify(err)
		if !r.ghost {
			r.opts.Stats.Attempt(string(class))
		}
		r.journalFailedAttempt(task, attempt, class, err.Error())
		if class.Retryable() && attempt < r.opts.MaxAttempts {
			r.countRetry(class)
			r.svc.Clock.Advance(r.opts.Backoff.delay(task.ID, attempt))
			continue
		}
		return fmt.Errorf("collector: creating pool for %s: %w", task.SKU, err)
	}
}

// resizePool grows the pool to the task's node count, applying the
// taxonomy: transient and capacity failures retry with exponential backoff
// on the lane clock; capacity failures feed the SKU's breaker; quota and
// fatal failures fail the task immediately. Returns ok=false with the task
// marked failed when the size was never reached.
func (c *Collector) resizePool(r *taskRun, task *scenario.Task, poolID string) (bool, error) {
	for attempt := 1; ; attempt++ {
		err := r.svc.Resize(poolID, task.NNodes)
		if err == nil {
			if r.brk.success() {
				// A half-open probe succeeded: the SKU is re-admitted.
				r.breakerTransition(task.SKU, brkClosed)
			}
			return true, nil
		}
		class := Classify(err)
		if !r.ghost {
			r.opts.Stats.Attempt(string(class))
		}
		r.journalFailedAttempt(task, attempt, class, err.Error())
		if class == ClassCapacity {
			if r.brk.failure(r.svc.Clock.Now()) {
				r.breakerTransition(task.SKU, brkOpen)
			}
		}
		retry := class.Retryable() && attempt < r.opts.MaxAttempts &&
			!(class == ClassCapacity && r.brk.state == brkOpen)
		if retry {
			r.countRetry(class)
			r.svc.Clock.Advance(r.opts.Backoff.delay(task.ID, attempt))
			continue
		}
		task.Status = scenario.StatusFailed
		task.Error = err.Error()
		r.lane.Failed++
		r.journalOutcome(task, class, "")
		notify(r.opts, task)
		return false, nil
	}
}

// admitTask consults the SKU's breaker. A closed (or cooled-down, now
// half-open) breaker admits; an open one skips the task with the reason
// journaled, so resume restores the skip instead of re-deciding it.
func (c *Collector) admitTask(r *taskRun, task *scenario.Task) bool {
	if r.brk.admit(r.svc.Clock.Now()) {
		if r.brk.state == brkHalfOpen {
			r.breakerTransition(task.SKU, brkHalfOpen)
		}
		return true
	}
	reason := fmt.Sprintf("circuit breaker open for %s: %d consecutive capacity failures",
		task.SKU, r.brk.consecutive)
	task.Status = scenario.StatusSkipped
	task.Error = reason
	r.lane.Skipped++
	r.lane.BreakerSkipped++
	r.journalOutcome(task, ClassCapacity, reason)
	notify(r.opts, task)
	return false
}

// runSequential is the paper's Algorithm 1: one pool at a time on the
// deployment's shared clock, with per-VM-type lane accounting maintained
// along the way so its report matches the concurrent engine's.
func (c *Collector) runSequential(list *scenario.List, store *dataset.Store, opts Options) (*Report, error) {
	start := c.Service.Clock.Now()
	report := &Report{NodeSecondsBySKU: make(map[string]float64)}
	agg := monitor.NewAggregator()
	lanes := newLaneSet()
	defer func() {
		c.priceLanes(lanes.all, opts.UseSpot)
		foldLanes(report, lanes.all, agg)
	}()

	addPoint := store.Add
	if len(opts.have) > 0 {
		addPoint = func(p dataset.Point) {
			if !opts.have[p.ScenarioID] {
				store.Add(p)
			}
		}
	}
	var flush func() error
	if opts.Journal != nil {
		flush = store.Flush
	}
	run := &taskRun{svc: c.Service, opts: opts, agg: agg, addPoint: addPoint, flush: flush}
	breakers := map[string]*breakerState{}

	previousVMType := ""
	poolID := ""
	segStart := start // virtual time the active pool segment opened
	segNS := 0.0      // the active SKU's node-second total at segment open
	closeSegment := func() {
		if previousVMType == "" {
			return
		}
		ln := lanes.get(previousVMType, "")
		now := c.Service.Clock.Now()
		ln.VirtualSeconds += (now - segStart).Seconds()
		ln.NodeSeconds += c.Service.NodeSecondsBySKU()[previousVMType] - segNS
		segStart = now
	}
	teardown := func() error {
		if poolID == "" {
			return nil
		}
		closeSegment()
		if opts.DeletePoolAfter {
			if err := c.Service.DeletePool(poolID); err != nil {
				return err
			}
		} else if err := c.Service.Resize(poolID, 0); err != nil {
			return err
		}
		poolID = ""
		return nil
	}

	for _, task := range list.Tasks {
		if interrupted(opts) {
			if err := teardown(); err != nil {
				return report, err
			}
			report.Interrupted = true
			return report, ErrInterrupted
		}
		gout, ghost := TaskOutcome{}, false
		if opts.Resume != nil {
			gout, ghost = opts.Resume.Outcomes[task.ID]
		}
		if task.Status != scenario.StatusPending && !ghost {
			continue
		}
		lane := lanes.get(task.SKU, task.SKUAlias)
		run.lane = lane
		run.ghost = ghost
		run.brk = breakerFor(breakers, task.SKU, opts.Breaker)
		if ghost && gout.Status == scenario.StatusSkipped {
			restoreSkip(opts, task, lane, gout)
			continue
		}
		if !ghost && opts.Planner != nil {
			if ok, reason := opts.Planner.Decide(task, store); !ok {
				task.Status = scenario.StatusSkipped
				task.Error = reason
				lane.Skipped++
				// Journaled so resume restores the decision instead of
				// re-deciding against a different store state.
				run.journalOutcome(task, ClassNone, reason)
				notify(opts, task)
				continue
			}
		}

		// Pool-per-VM-type reuse (Algorithm 1 lines 3-7).
		if ghost {
			// Ghost replay recomputes the attempt history from scratch so
			// it matches an uninterrupted run exactly.
			task.Attempts = 0
			task.Status = scenario.StatusPending
			task.Error = ""
		}
		if task.SKU != previousVMType {
			if err := teardown(); err != nil {
				return report, err
			}
			poolID = "pool-" + task.SKUAlias
			if err := c.createPool(run, task, poolID); err != nil {
				return report, err
			}
			previousVMType = task.SKU
			segStart = c.Service.Clock.Now()
			segNS = c.Service.NodeSecondsBySKU()[task.SKU]
		}
		if !c.admitTask(run, task) {
			continue
		}
		if ok, err := c.resizePool(run, task, poolID); err != nil {
			return report, err
		} else if !ok {
			if ghost {
				run.finishGhost(task, gout)
			}
			continue
		}

		if err := c.runScenario(run, task, poolID); err != nil {
			return report, err
		}
		if ghost {
			run.finishGhost(task, gout)
		}
	}
	if err := teardown(); err != nil {
		return report, err
	}

	report.NodeSecondsBySKU = c.Service.NodeSecondsBySKU()
	cost, err := c.priceNodeSeconds(report.NodeSecondsBySKU, opts.UseSpot)
	if err != nil {
		return report, err
	}
	report.CollectionCostUSD = cost
	report.VirtualSeconds = (c.Service.Clock.Now() - start).Seconds()
	report.ElapsedVirtualSeconds = report.VirtualSeconds
	// With a storage backend attached, every point streamed through Add is
	// already on disk; Flush fsyncs the tail batch and surfaces any
	// write-through failure the run would otherwise swallow.
	return report, store.Flush()
}

// breakerFor returns (creating if needed) the breaker of a SKU.
func breakerFor(m map[string]*breakerState, sku string, policy BreakerPolicy) *breakerState {
	if b, ok := m[sku]; ok {
		return b
	}
	b := newBreaker(policy)
	m[sku] = b
	return b
}

// runScenario executes one task with class-driven retries on the lane's
// pool and records its datapoint, updating the lane's counters. It is the
// per-scenario core shared by the sequential walk and the concurrent lanes.
func (c *Collector) runScenario(r *taskRun, task *scenario.Task, poolID string) error {
	opts := r.opts
	svc := r.svc
	app, err := c.Apps.Get(task.AppName)
	if err != nil {
		task.Status = scenario.StatusFailed
		task.Error = err.Error()
		r.lane.Failed++
		r.journalOutcome(task, ClassApplication, "")
		notify(opts, task)
		return nil
	}
	w, err := app.Parse(task.AppInput)
	if err != nil {
		task.Status = scenario.StatusFailed
		task.Error = err.Error()
		r.lane.Failed++
		r.journalOutcome(task, ClassApplication, "")
		notify(opts, task)
		return nil
	}

	task.Status = scenario.StatusRunning
	notify(opts, task)

	var bt *batchsim.Task
	var class FailureClass
	for attempt := 0; attempt < opts.MaxAttempts; attempt++ {
		task.Attempts++
		r.countAttempt()
		r.journalStart(task)
		spec := batchsim.TaskSpec{
			Name:          task.ID,
			NodesRequired: task.NNodes,
			Run: func(tc batchsim.TaskContext) batchsim.TaskResult {
				env := runner.Env{
					NNodes:       task.NNodes,
					PPN:          task.PPN,
					SKU:          task.SKU,
					Hosts:        tc.NodeIDs,
					TaskRunDir:   "/data/jobs/" + task.ID,
					HostfilePath: "/data/jobs/" + task.ID + "/hostfile",
					AppInputs:    task.AppInput,
				}
				return runner.NewTaskFunc(app, w, env)(tc)
			},
		}
		bt, err = svc.RunToCompletion(poolID, spec)
		if err != nil {
			return fmt.Errorf("collector: scenario %s: %w", task.ID, err)
		}
		class = ClassifyResult(bt.Result)
		if !r.ghost {
			r.opts.Stats.Attempt(string(class))
		}
		if class == ClassNone {
			break
		}
		r.journalFailedAttempt(task, task.Attempts, class, firstLine(bt.Result.Stdout))
		// Only a retryable class consumes another attempt: a preempted
		// spot task re-runs immediately (its replacement node is already
		// booting on this same clock); an application failure would fail
		// identically every time, so it stops here whatever the budget.
		if class.Retryable() && attempt+1 < opts.MaxAttempts {
			r.countRetry(class)
			continue
		}
		break
	}
	task.TaskID = bt.ID

	if class != ClassNone {
		task.Status = scenario.StatusFailed
		task.Error = firstLine(bt.Result.Stdout)
		r.lane.Failed++
		r.addPoint(dataset.Point{
			ScenarioID: task.ID,
			Deployment: c.Deployment,
			AppName:    task.AppName,
			SKU:        task.SKU,
			SKUAlias:   task.SKUAlias,
			NNodes:     task.NNodes,
			PPN:        task.PPN,
			AppInput:   task.AppInput,
			InputDesc:  describeInput(w, task),
			Tags:       task.Tags,
			Failed:     true,
			Error:      task.Error,

			CollectedAt: svc.Clock.NowSeconds(),
		})
		r.journalOutcome(task, class, "")
		notify(opts, task)
		return nil
	}

	execTime := bt.Result.DurationSeconds
	hourly, err := c.hourly(task.SKU, opts.UseSpot)
	if err != nil {
		return fmt.Errorf("collector: pricing scenario %s: %w", task.ID, err)
	}
	cost := pricing.CostAt(hourly, task.NNodes, execTime)

	// The profile is re-derived for utilization; the simulation is
	// deterministic so this matches what the task observed.
	sku, err := c.Catalog.Lookup(task.SKU)
	if err != nil {
		return fmt.Errorf("collector: scenario %s: %w", task.ID, err)
	}
	prof, err := appmodel.Simulate(w, sku, task.NNodes, task.PPN)
	if err != nil {
		return fmt.Errorf("collector: profiling scenario %s: %w", task.ID, err)
	}
	sample := monitor.FromProfile(prof)
	r.agg.Observe(task.SKU, sample)

	r.addPoint(dataset.Point{
		ScenarioID:  task.ID,
		Deployment:  c.Deployment,
		AppName:     task.AppName,
		SKU:         task.SKU,
		SKUAlias:    task.SKUAlias,
		NNodes:      task.NNodes,
		PPN:         task.PPN,
		AppInput:    task.AppInput,
		InputDesc:   describeInput(w, task),
		Tags:        task.Tags,
		ExecTimeSec: execTime,
		CostUSD:     cost,
		Metrics:     runner.ParseVars(bt.Result.Stdout),
		Utilization: sample,
		Bottleneck:  monitor.Classify(sample),
		CollectedAt: svc.Clock.NowSeconds(),
	})
	task.Status = scenario.StatusCompleted
	task.Error = ""
	r.lane.Completed++
	r.journalOutcome(task, ClassNone, "")
	notify(opts, task)
	return nil
}

// hourly resolves the billing rate for a SKU at on-demand or spot terms.
func (c *Collector) hourly(sku string, spot bool) (float64, error) {
	if spot {
		return c.Prices.HourlySpot(c.Region, sku)
	}
	return c.Prices.Hourly(c.Region, sku)
}

// priceNodeSeconds totals the cost of a node-seconds-by-SKU map, summing in
// sorted SKU order so the float result is deterministic.
func (c *Collector) priceNodeSeconds(ns map[string]float64, spot bool) (float64, error) {
	total := 0.0
	for _, sku := range sortedKeys(ns) {
		hourly, err := c.hourly(sku, spot)
		if err != nil {
			return 0, err
		}
		total += ns[sku] * hourly / 3600
	}
	return total, nil
}

// priceLanes fills each lane's CostUSD from its node-seconds. Pricing
// errors surface through the run's own pricing path; here they only leave
// the lane cost at zero.
func (c *Collector) priceLanes(lanes []*LaneReport, spot bool) {
	for _, ln := range lanes {
		hourly, err := c.hourly(ln.SKU, spot)
		if err != nil {
			continue
		}
		ln.CostUSD = ln.NodeSeconds * hourly / 3600
	}
}

// laneSet tracks per-VM-type lane reports in first-appearance order.
type laneSet struct {
	index map[string]int
	all   []*LaneReport
}

func newLaneSet() *laneSet {
	return &laneSet{index: map[string]int{}}
}

func (s *laneSet) get(sku, alias string) *LaneReport {
	if i, ok := s.index[sku]; ok {
		if s.all[i].SKUAlias == "" {
			s.all[i].SKUAlias = alias
		}
		return s.all[i]
	}
	s.index[sku] = len(s.all)
	s.all = append(s.all, &LaneReport{SKU: sku, SKUAlias: alias})
	return s.all[len(s.all)-1]
}

// foldLanes finalizes per-lane utilization means and accumulates lane
// counters into the report totals, so lane sums equal totals by
// construction in both collection modes.
func foldLanes(report *Report, lanes []*LaneReport, agg *monitor.Aggregator) {
	for _, ln := range lanes {
		if mean, n := agg.Mean(ln.SKU); n > 0 {
			ln.MeanUtil, ln.Samples = mean, n
		}
		report.Completed += ln.Completed
		report.Failed += ln.Failed
		report.Skipped += ln.Skipped
		report.Attempts += ln.Attempts
		report.Retries += ln.Retries
		report.BreakerSkipped += ln.BreakerSkipped
		report.Resumed += ln.Resumed
		report.Rerun += ln.Rerun
		report.ResumedAttempts += ln.ResumedAttempts
		report.Lanes = append(report.Lanes, *ln)
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func describeInput(w appmodel.Workload, task *scenario.Task) string {
	if w.InputDesc != "" {
		return w.InputDesc
	}
	return task.InputDesc()
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

func notify(opts Options, t *scenario.Task) {
	if opts.Progress != nil {
		opts.Progress(t)
	}
}

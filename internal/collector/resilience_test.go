package collector

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hpcadvisor/internal/batchsim"
	"hpcadvisor/internal/cloudsim"
	"hpcadvisor/internal/monitor"
	"hpcadvisor/internal/scenario"
)

// TestFailureTaxonomyClassification locks the mapping from every simulated
// error kind to its failure class — and the retry decision that follows.
func TestFailureTaxonomyClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want FailureClass
	}{
		{"nil", nil, ClassNone},
		{"capacity", cloudsim.ErrCapacity, ClassCapacity},
		{"capacity wrapped", fmt.Errorf("resize: %w", cloudsim.ErrCapacity), ClassCapacity},
		{"throttled", cloudsim.ErrThrottled, ClassTransient},
		{"unavailable", cloudsim.ErrUnavailable, ClassTransient},
		{"quota", cloudsim.ErrQuotaExceeded, ClassQuota},
		{"not found", cloudsim.ErrNotFound, ClassFatal},
		{"already exists", cloudsim.ErrAlreadyExists, ClassFatal},
		{"region", cloudsim.ErrRegion, ClassFatal},
		{"invalid name", cloudsim.ErrInvalidName, ClassFatal},
		{"dependency", cloudsim.ErrDependency, ClassFatal},
		{"pool not found", batchsim.ErrPoolNotFound, ClassFatal},
		{"pool exists", batchsim.ErrPoolExists, ClassFatal},
		{"task too wide", batchsim.ErrTaskTooWide, ClassFatal},
		{"pool busy", batchsim.ErrPoolBusy, ClassFatal},
		{"task not found", batchsim.ErrTaskNotFound, ClassFatal},
		{"unknown", errors.New("mystery"), ClassFatal},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %s, want %s", tc.name, got, tc.want)
		}
	}

	retry := map[FailureClass]bool{
		ClassNone:        false,
		ClassTransient:   true,
		ClassCapacity:    true,
		ClassPreemption:  true,
		ClassQuota:       false,
		ClassApplication: false,
		ClassFatal:       false,
	}
	for class, want := range retry {
		if got := class.Retryable(); got != want {
			t.Errorf("%s.Retryable() = %v, want %v", class, got, want)
		}
	}
}

// TestFailureTaxonomyResults locks the terminal-task-state mapping.
func TestFailureTaxonomyResults(t *testing.T) {
	cases := []struct {
		name string
		res  batchsim.TaskResult
		want FailureClass
	}{
		{"completed", batchsim.TaskResult{ExitCode: 0}, ClassNone},
		{"preempted", batchsim.TaskResult{ExitCode: 137, Preempted: true}, ClassPreemption},
		{"app failure", batchsim.TaskResult{ExitCode: 1}, ClassApplication},
		{"oom", batchsim.TaskResult{ExitCode: 137}, ClassApplication},
	}
	for _, tc := range cases {
		if got := ClassifyResult(tc.res); got != tc.want {
			t.Errorf("ClassifyResult(%s) = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestBackoffDeterministicCapped: delays are reproducible per (task,
// attempt), grow exponentially, and cap at MaxSeconds plus jitter.
func TestBackoffDeterministicCapped(t *testing.T) {
	var p BackoffPolicy
	if p.delay("task-a", 1) != p.delay("task-a", 1) {
		t.Fatal("delay is not deterministic")
	}
	if p.delay("task-a", 1) == p.delay("task-b", 1) {
		t.Error("jitter does not vary by task")
	}
	prev := time.Duration(0)
	for n := 1; n <= 5; n++ {
		d := p.delay("task-a", n)
		if d <= prev {
			t.Errorf("delay(%d) = %v, not growing past %v", n, d, prev)
		}
		prev = d
	}
	// Past the cap the exponential part is constant; only jitter varies.
	max := time.Duration(float64(time.Second) * (defaultBackoffMax + defaultBackoffBase))
	for n := 6; n <= 12; n++ {
		if d := p.delay("task-a", n); d > max {
			t.Errorf("delay(%d) = %v exceeds cap %v", n, d, max)
		}
	}
}

// TestBreakerStateMachine: closed -> open at the threshold, cooldown gates
// the half-open probe, probe failure reopens, probe success closes.
func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(BreakerPolicy{Threshold: 2, CooldownSeconds: 10})
	if !b.admit(0) {
		t.Fatal("closed breaker must admit")
	}
	if b.failure(0) {
		t.Fatal("first failure must not open a threshold-2 breaker")
	}
	if !b.failure(0) {
		t.Fatal("second failure must open")
	}
	if b.admit(5 * time.Second) {
		t.Fatal("open breaker admitted before cooldown")
	}
	if !b.admit(10 * time.Second) {
		t.Fatal("cooled-down breaker must admit a probe")
	}
	if b.state != brkHalfOpen {
		t.Fatalf("state = %s, want half-open", b.state)
	}
	if !b.failure(10 * time.Second) {
		t.Fatal("failed probe must reopen")
	}
	if b.admit(15 * time.Second) {
		t.Fatal("reopened breaker admitted before the new cooldown")
	}
	if !b.admit(25 * time.Second) {
		t.Fatal("second probe not admitted")
	}
	if closed := b.success(); !closed {
		t.Fatal("successful probe must report closing")
	}
	if b.state != brkClosed || b.consecutive != 0 {
		t.Fatalf("after success: state=%s consecutive=%d", b.state, b.consecutive)
	}

	off := newBreaker(BreakerPolicy{Threshold: -1})
	for i := 0; i < 10; i++ {
		if off.failure(0) {
			t.Fatal("disabled breaker opened")
		}
	}
	if !off.admit(0) {
		t.Fatal("disabled breaker must always admit")
	}
}

// TestTransientResizeRetriesWithBackoff: injected control-plane throttles on
// the resize path are retried with the exact deterministic backoff delays,
// and accounted as retries — not extra task attempts.
func TestTransientResizeRetriesWithBackoff(t *testing.T) {
	elapsed := func(inject bool) (time.Duration, *Report, *scenario.List, monitor.CollectionSnapshot) {
		f := newFixture(t)
		if inject {
			f.cloud.InjectFaults("ResizePool", cloudsim.ErrThrottled, cloudsim.ErrUnavailable)
		}
		list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{1})
		stats := monitor.NewCollectionStats()
		rep, err := f.col.Run(list, f.store, Options{MaxAttempts: 3, Stats: stats})
		if err != nil {
			t.Fatal(err)
		}
		return f.clock.Now(), rep, list, stats.Snapshot()
	}

	clean, _, _, _ := elapsed(false)
	faulty, rep, list, snap := elapsed(true)

	task := list.Tasks[0]
	if task.Status != scenario.StatusCompleted {
		t.Fatalf("task = %s (%s)", task.Status, task.Error)
	}
	if rep.Retries != 2 || rep.Attempts != 1 {
		t.Errorf("retries = %d attempts = %d, want 2 and 1", rep.Retries, rep.Attempts)
	}
	var p BackoffPolicy
	want := p.delay(task.ID, 1) + p.delay(task.ID, 2)
	if got := faulty - clean; got != want {
		t.Errorf("backoff advanced the clock by %v, want exactly %v", got, want)
	}
	if snap.RetriesByClass[string(ClassTransient)] != 2 {
		t.Errorf("stats retries = %v", snap.RetriesByClass)
	}
	if snap.AttemptsByClass[string(ClassTransient)] != 2 || snap.AttemptsByClass[string(ClassNone)] != 1 {
		t.Errorf("stats attempts = %v", snap.AttemptsByClass)
	}
}

// TestCreatePoolTransientRetry: a throttle on pool creation is retried
// instead of aborting the run.
func TestCreatePoolTransientRetry(t *testing.T) {
	f := newFixture(t)
	f.cloud.InjectFault("CreatePool", cloudsim.ErrUnavailable)
	list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{1})
	rep, err := f.col.Run(list, f.store, Options{MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1 || rep.Retries != 1 {
		t.Errorf("completed = %d retries = %d, want 1 and 1", rep.Completed, rep.Retries)
	}
}

// TestQuotaFailureNotRetried: quota exhaustion is terminal — no retries, no
// breaker involvement — even with attempt budget left.
func TestQuotaFailureNotRetried(t *testing.T) {
	f := newFixture(t)
	sub, _ := f.cloud.Subscription("sub1")
	sub.SetQuota("southcentralus", "HBv3", 60) // below one 120-core node
	list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{1})
	stats := monitor.NewCollectionStats()
	rep, err := f.col.Run(list, f.store, Options{MaxAttempts: 3, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Retries != 0 {
		t.Errorf("failed = %d retries = %d, want 1 and 0", rep.Failed, rep.Retries)
	}
	if !strings.Contains(list.Tasks[0].Error, "quota") {
		t.Errorf("task error = %q, want a quota message", list.Tasks[0].Error)
	}
	if snap := stats.Snapshot(); snap.BreakerTrips != 0 {
		t.Errorf("quota failures fed the breaker: %d trips", snap.BreakerTrips)
	}
}

// deadSKURun collects a two-SKU sweep where the second SKU is
// capacity-dead, with a threshold-3 breaker.
func deadSKURun(t *testing.T, parallel int) (*fixture, *scenario.List, *Report, *monitor.CollectionStats) {
	t.Helper()
	f := newFixture(t)
	sub, _ := f.cloud.Subscription("sub1")
	sub.FailCapacity("southcentralus", "HBv3", -1)
	list := smallLAMMPSList(t, []string{"Standard_HC44rs", "Standard_HB120rs_v3"}, []int{1, 2, 4, 8})
	stats := monitor.NewCollectionStats()
	rep, err := f.col.Run(list, f.store, Options{
		Breaker:          BreakerPolicy{Threshold: 3},
		Stats:            stats,
		MaxParallelPools: parallel,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, list, rep, stats
}

// TestCapacityDeadSKUTripsBreaker is the acceptance scenario: a SKU whose
// allocations always fail trips its breaker after the threshold, its
// remaining scenarios are skipped without consuming attempts or budget, and
// the healthy SKU's lane completes normally — identically in sequential and
// concurrent modes.
func TestCapacityDeadSKUTripsBreaker(t *testing.T) {
	seqF, seqList, seqRep, seqStats := deadSKURun(t, 1)

	if seqRep.Completed != 4 || seqRep.Failed != 3 || seqRep.Skipped != 1 || seqRep.BreakerSkipped != 1 {
		t.Fatalf("report = %+v", seqRep)
	}
	if ns := seqRep.NodeSecondsBySKU["Standard_HB120rs_v3"]; ns != 0 {
		t.Errorf("dead SKU accrued %.1f node-seconds; breaker did not stop spend", ns)
	}
	snap := seqStats.Snapshot()
	if snap.BreakerState["Standard_HB120rs_v3"] != "open" || snap.BreakerTrips != 1 {
		t.Errorf("breaker stats = %+v", snap)
	}
	var dead []*scenario.Task
	for _, task := range seqList.Tasks {
		if task.SKU == "Standard_HB120rs_v3" {
			dead = append(dead, task)
		}
	}
	for _, task := range dead[:3] {
		if task.Status != scenario.StatusFailed || !strings.Contains(task.Error, "capacity") {
			t.Errorf("%s = %s (%q), want capacity failure", task.ID, task.Status, task.Error)
		}
	}
	if last := dead[3]; last.Status != scenario.StatusSkipped || !strings.Contains(last.Error, "circuit breaker open") {
		t.Errorf("%s = %s (%q), want breaker skip", last.ID, last.Status, last.Error)
	}

	// Concurrent lanes must reach the identical dataset, task list, and
	// accounting: the replica copies the capacity fault, so the SKU is
	// just as dead in its lane.
	parF, parList, parRep, _ := deadSKURun(t, 2)
	seqBytes, _ := seqF.store.Marshal()
	parBytes, _ := parF.store.Marshal()
	if !bytes.Equal(seqBytes, parBytes) {
		t.Fatalf("dead-SKU parallel dataset differs:\nseq:\n%s\npar:\n%s", seqBytes, parBytes)
	}
	seqTasks, _ := seqList.Marshal()
	parTasks, _ := parList.Marshal()
	if !bytes.Equal(seqTasks, parTasks) {
		t.Fatalf("dead-SKU parallel task list differs:\nseq:\n%s\npar:\n%s", seqTasks, parTasks)
	}
	assertReportsEqual(t, seqRep, parRep)
	if seqRep.BreakerSkipped != parRep.BreakerSkipped || seqRep.Retries != parRep.Retries {
		t.Errorf("resilience counters differ: seq %+v par %+v", seqRep, parRep)
	}
}

// TestBreakerHalfOpenReadmission: after the cooldown a half-open probe
// re-admits the SKU, and a successful allocation closes the breaker.
func TestBreakerHalfOpenReadmission(t *testing.T) {
	f := newFixture(t)
	sub, _ := f.cloud.Subscription("sub1")
	sub.FailCapacity("southcentralus", "HBv3", 3) // outage ends after 3 allocations

	// HBv3 scenarios, then an HC44rs interlude (advancing the virtual clock
	// past the cooldown), then one more HBv3 scenario as the probe.
	listA := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{1, 2, 4})
	listB := smallLAMMPSList(t, []string{"Standard_HC44rs"}, []int{1})
	listA2 := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{8})
	list := &scenario.List{Tasks: append(append(listA.Tasks, listB.Tasks...), listA2.Tasks...)}

	jp := filepath.Join(t.TempDir(), "sweep.jnl")
	j, _, err := OpenJournal(jp)
	if err != nil {
		t.Fatal(err)
	}
	stats := monitor.NewCollectionStats()
	rep, err := f.col.Run(list, f.store, Options{
		Breaker: BreakerPolicy{Threshold: 3, CooldownSeconds: 60},
		Stats:   stats,
		Journal: j,
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	if rep.Completed != 2 || rep.Failed != 3 {
		t.Fatalf("report = %+v", rep)
	}
	probe := list.Tasks[len(list.Tasks)-1]
	if probe.Status != scenario.StatusCompleted {
		t.Fatalf("probe task = %s (%q); breaker never re-admitted the SKU", probe.Status, probe.Error)
	}
	snap := stats.Snapshot()
	if snap.BreakerState["Standard_HB120rs_v3"] != "closed" || snap.BreakerTrips != 1 {
		t.Errorf("breaker stats = %+v", snap)
	}
	// The journal carries the state machine: open, then half-open, closed.
	_, recs, err := ReadJournal(jp)
	if err != nil {
		t.Fatal(err)
	}
	var transitions []string
	for _, rec := range recs {
		if rec.Kind == recBreaker {
			transitions = append(transitions, rec.Status)
		}
	}
	want := []string{brkOpen, brkHalfOpen, brkClosed}
	if len(transitions) != len(want) {
		t.Fatalf("breaker transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("breaker transitions = %v, want %v", transitions, want)
		}
	}
}

// TestJournalSealsCompleteRuns: an uninterrupted journaled sweep seals
// complete, every outcome is durable, and the journal is not resumable.
func TestJournalSealsCompleteRuns(t *testing.T) {
	f := newFixture(t)
	list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3"}, []int{1, 2})
	jp := filepath.Join(t.TempDir(), "sweep.jnl")
	j, _, err := OpenJournal(jp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.col.Run(list, f.store, Options{Journal: j}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	replay, _, err := ReadJournal(jp)
	if err != nil {
		t.Fatal(err)
	}
	if !replay.Sealed || replay.SealReason != SealComplete {
		t.Fatalf("seal = %v %q", replay.Sealed, replay.SealReason)
	}
	if replay.Resumable() {
		t.Error("sealed-complete journal reported resumable")
	}
	if len(replay.Outcomes) != 2 {
		t.Fatalf("outcomes = %d", len(replay.Outcomes))
	}
	for id, out := range replay.Outcomes {
		if !out.Durable {
			t.Errorf("outcome %s not durable after sealed run", id)
		}
	}
}

// interruptAfter builds an Options.Interrupt channel that fires once n
// tasks have completed.
func interruptAfter(n int) (<-chan struct{}, func(*scenario.Task)) {
	ch := make(chan struct{})
	var once sync.Once
	count := 0
	return ch, func(task *scenario.Task) {
		if task.Status != scenario.StatusCompleted {
			return
		}
		count++
		if count >= n {
			once.Do(func() { close(ch) })
		}
	}
}

// TestInterruptResumeSequentialByteIdentical is the tentpole oracle: a
// sweep interrupted at a task boundary and resumed in a fresh process
// (fresh clock, fresh cloud, replayed journal) converges on a dataset and
// task list byte-identical to an uninterrupted run — resuming either
// sequentially or in concurrent lane mode.
func TestInterruptResumeSequentialByteIdentical(t *testing.T) {
	skus := threeSKUs
	nnodes := []int{1, 2, 4}
	refF, refList, refRep := collectWith(t, Options{}, skus, nnodes)
	refBytes, _ := refF.store.Marshal()
	refTasks, _ := refList.Marshal()

	for _, tc := range []struct {
		name      string
		cut       int
		resumePar int
	}{
		{"cut1-seq", 1, 1},
		{"cut4-seq", 4, 1},
		{"cut7-seq", 7, 1},
		{"cut4-concurrent-resume", 4, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			jp := filepath.Join(t.TempDir(), "sweep.jnl")
			j, _, err := OpenJournal(jp)
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted lifetime.
			f1 := newFixture(t)
			list1 := smallLAMMPSList(t, skus, nnodes)
			interrupt, progress := interruptAfter(tc.cut)
			rep1, err := f1.col.Run(list1, f1.store, Options{
				Journal: j, Interrupt: interrupt, Progress: progress,
			})
			if !errors.Is(err, ErrInterrupted) {
				t.Fatalf("err = %v, want ErrInterrupted", err)
			}
			if !rep1.Interrupted {
				t.Error("report not marked interrupted")
			}
			j.Close()
			sealed, _, err := ReadJournal(jp)
			if err != nil {
				t.Fatal(err)
			}
			if !sealed.Sealed || sealed.SealReason != SealInterrupted {
				t.Fatalf("interrupt did not seal the journal: %v %q", sealed.Sealed, sealed.SealReason)
			}
			if !sealed.Resumable() {
				t.Fatal("interrupted journal must be resumable")
			}

			// Resumed lifetime: fresh simulation, the store as the crash left
			// it, a regenerated task list restored from the journal.
			f2 := newFixture(t)
			j2, replay, err := OpenJournal(jp)
			if err != nil {
				t.Fatal(err)
			}
			list2 := smallLAMMPSList(t, skus, nnodes)
			replay.Apply(list2)
			rep2, err := f2.col.Run(list2, f1.store, Options{
				Journal: j2, Resume: replay, MaxParallelPools: tc.resumePar,
			})
			if err != nil {
				t.Fatal(err)
			}
			j2.Close()

			gotBytes, _ := f1.store.Marshal()
			if !bytes.Equal(gotBytes, refBytes) {
				t.Fatalf("resumed dataset differs from uninterrupted run:\ngot:\n%s\nwant:\n%s", gotBytes, refBytes)
			}
			gotTasks, _ := list2.Marshal()
			if !bytes.Equal(gotTasks, refTasks) {
				t.Fatalf("resumed task list differs:\ngot:\n%s\nwant:\n%s", gotTasks, refTasks)
			}
			if rep2.Completed != refRep.Completed || rep2.Failed != refRep.Failed || rep2.Skipped != refRep.Skipped {
				t.Errorf("resumed totals %+v, want %+v", rep2, refRep)
			}
			// Sequential outcomes were durable at the kill: every journaled
			// task restores without re-collection.
			if rep2.Resumed != tc.cut || rep2.Rerun != 0 {
				t.Errorf("resumed = %d rerun = %d, want %d and 0", rep2.Resumed, rep2.Rerun, tc.cut)
			}
			if rep2.Attempts+rep2.ResumedAttempts != refRep.Attempts {
				t.Errorf("attempts %d + resumed %d != uninterrupted %d",
					rep2.Attempts, rep2.ResumedAttempts, refRep.Attempts)
			}
			// The re-journaled ghost outcomes are marked Resumed.
			_, recs, err := ReadJournal(jp)
			if err != nil {
				t.Fatal(err)
			}
			rejournaled := 0
			for _, rec := range recs {
				if rec.Kind == recOutcome && rec.Resumed {
					rejournaled++
				}
			}
			if rejournaled != tc.cut {
				t.Errorf("re-journaled ghost outcomes = %d, want %d", rejournaled, tc.cut)
			}
		})
	}
}

// TestInterruptConcurrentDiscardsShards: interrupting concurrent lanes
// merges nothing (a partial merge could never re-converge), and the resume
// re-executes the whole list to the byte-identical dataset.
func TestInterruptConcurrentDiscardsShards(t *testing.T) {
	skus := threeSKUs
	nnodes := []int{1, 2, 4}
	refF, refList, _ := collectWith(t, Options{MaxParallelPools: 3}, skus, nnodes)
	refBytes, _ := refF.store.Marshal()
	refTasks, _ := refList.Marshal()

	jp := filepath.Join(t.TempDir(), "sweep.jnl")
	j, _, err := OpenJournal(jp)
	if err != nil {
		t.Fatal(err)
	}
	f1 := newFixture(t)
	list1 := smallLAMMPSList(t, skus, nnodes)
	interrupt, progress := interruptAfter(2)
	rep1, err := f1.col.Run(list1, f1.store, Options{
		MaxParallelPools: 3, Journal: j, Interrupt: interrupt, Progress: progress,
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !rep1.Interrupted {
		t.Error("report not marked interrupted")
	}
	if f1.store.Len() != 0 {
		t.Fatalf("interrupted concurrent run merged %d points; shards must be discarded", f1.store.Len())
	}
	j.Close()

	f2 := newFixture(t)
	j2, replay, err := OpenJournal(jp)
	if err != nil {
		t.Fatal(err)
	}
	list2 := smallLAMMPSList(t, skus, nnodes)
	replay.Apply(list2)
	rep2, err := f2.col.Run(list2, f1.store, Options{
		MaxParallelPools: 3, Journal: j2, Resume: replay,
	})
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()

	gotBytes, _ := f1.store.Marshal()
	if !bytes.Equal(gotBytes, refBytes) {
		t.Fatalf("resumed concurrent dataset differs:\ngot:\n%s\nwant:\n%s", gotBytes, refBytes)
	}
	gotTasks, _ := list2.Marshal()
	if !bytes.Equal(gotTasks, refTasks) {
		t.Fatalf("resumed concurrent task list differs:\ngot:\n%s\nwant:\n%s", gotTasks, refTasks)
	}
	// Lane outcomes never became durable, so every journaled task re-ran.
	if rep2.Resumed != 0 || rep2.Rerun != len(replay.Outcomes) {
		t.Errorf("resumed = %d rerun = %d, want 0 and %d", rep2.Resumed, rep2.Rerun, len(replay.Outcomes))
	}
}

// TestAttemptsAccountingAcrossResume is the regression for attempt counting
// when a sweep's attempts span two process lifetimes: lane sums must equal
// report totals, task attempt counts must equal live plus replayed
// attempts, and the combined total must match the uninterrupted run. A
// naive recount (task.Attempts folded into Report.Attempts on resume)
// double-counts and fails here.
func TestAttemptsAccountingAcrossResume(t *testing.T) {
	// Spot capacity with a deep retry budget: preemptions make attempt
	// counts exceed task counts, exercising the split.
	opts := Options{UseSpot: true, MaxAttempts: 12}
	skus := threeSKUs
	nnodes := []int{1, 2, 3, 4, 8}
	refF, _, refRep := collectWith(t, opts, skus, nnodes)
	refBytes, _ := refF.store.Marshal()
	if refRep.Attempts <= refRep.Completed {
		t.Fatalf("fixture has no retries (attempts %d, completed %d); accounting untested",
			refRep.Attempts, refRep.Completed)
	}

	jp := filepath.Join(t.TempDir(), "sweep.jnl")
	j, _, err := OpenJournal(jp)
	if err != nil {
		t.Fatal(err)
	}
	f1 := newFixture(t)
	list1 := smallLAMMPSList(t, skus, nnodes)
	iopts := opts
	iopts.Journal = j
	iopts.Interrupt, iopts.Progress = interruptAfter(6)
	if _, err := f1.col.Run(list1, f1.store, iopts); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	j.Close()

	f2 := newFixture(t)
	j2, replay, err := OpenJournal(jp)
	if err != nil {
		t.Fatal(err)
	}
	list2 := smallLAMMPSList(t, skus, nnodes)
	replay.Apply(list2)
	ropts := opts
	ropts.Journal = j2
	ropts.Resume = replay
	rep2, err := f2.col.Run(list2, f1.store, ropts)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()

	gotBytes, _ := f1.store.Marshal()
	if !bytes.Equal(gotBytes, refBytes) {
		t.Fatal("resumed spot dataset differs from uninterrupted run")
	}
	sumTask := 0
	for _, task := range list2.Tasks {
		sumTask += task.Attempts
	}
	if sumTask != rep2.Attempts+rep2.ResumedAttempts {
		t.Errorf("sum(task.Attempts) = %d, want Attempts %d + ResumedAttempts %d",
			sumTask, rep2.Attempts, rep2.ResumedAttempts)
	}
	if rep2.Attempts+rep2.ResumedAttempts != refRep.Attempts {
		t.Errorf("attempts across lifetimes = %d + %d, want uninterrupted total %d",
			rep2.Attempts, rep2.ResumedAttempts, refRep.Attempts)
	}
	// Lane sums equal report totals for every resilience counter.
	var lanes LaneReport
	for _, ln := range rep2.Lanes {
		lanes.Attempts += ln.Attempts
		lanes.Retries += ln.Retries
		lanes.BreakerSkipped += ln.BreakerSkipped
		lanes.Resumed += ln.Resumed
		lanes.Rerun += ln.Rerun
		lanes.ResumedAttempts += ln.ResumedAttempts
	}
	if lanes.Attempts != rep2.Attempts || lanes.Retries != rep2.Retries ||
		lanes.BreakerSkipped != rep2.BreakerSkipped || lanes.Resumed != rep2.Resumed ||
		lanes.Rerun != rep2.Rerun || lanes.ResumedAttempts != rep2.ResumedAttempts {
		t.Errorf("lane sums %+v do not match report %+v", lanes, rep2)
	}
}

// TestControlPlaneFaultStorm: a storm of injected throttles and outages
// across pool creation and resizing delays the sweep but never dents it.
func TestControlPlaneFaultStorm(t *testing.T) {
	f := newFixture(t)
	// Fault queues drain into consecutive calls of the same operation, so
	// each burst is sized under the MaxAttempts=4 retry budget.
	f.cloud.InjectFaults("CreatePool", cloudsim.ErrUnavailable, cloudsim.ErrThrottled)
	f.cloud.InjectFaults("ResizePool",
		cloudsim.ErrThrottled, cloudsim.ErrUnavailable, cloudsim.ErrThrottled)
	list := smallLAMMPSList(t, []string{"Standard_HB120rs_v3", "Standard_HC44rs"}, []int{1, 2, 4})
	jp := filepath.Join(t.TempDir(), "sweep.jnl")
	j, _, err := OpenJournal(jp)
	if err != nil {
		t.Fatal(err)
	}
	stats := monitor.NewCollectionStats()
	rep, err := f.col.Run(list, f.store, Options{MaxAttempts: 4, Journal: j, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if rep.Completed != 6 || rep.Failed != 0 {
		t.Fatalf("storm broke the sweep: %+v", rep)
	}
	if rep.Retries != 5 {
		t.Errorf("retries = %d, want 5 (one per injected fault)", rep.Retries)
	}
	if snap := stats.Snapshot(); snap.AttemptsByClass[string(ClassTransient)] != 5 {
		t.Errorf("transient attempts = %v", snap.AttemptsByClass)
	}
	// Every classified failure left an attempt record in the journal.
	_, recs, err := ReadJournal(jp)
	if err != nil {
		t.Fatal(err)
	}
	classified := 0
	for _, rec := range recs {
		if rec.Kind == recAttempt && rec.Class == string(ClassTransient) {
			classified++
		}
	}
	if classified != 5 {
		t.Errorf("journaled transient attempts = %d, want 5", classified)
	}
}

// Package vclock provides a discrete-event virtual clock used by the cloud
// and batch simulators. All simulated latencies (node boot, provisioning,
// application execution) are expressed against this clock, so experiments
// that represent hours of cloud time execute in microseconds of real time
// while cost accounting stays exact.
//
// The clock is single-threaded by design: events fire in (time, insertion
// order) so simulations are fully deterministic. Concurrency in the system
// is achieved by running several clocks — one per collection lane — each
// owned by exactly one goroutine, and merging their meters afterwards with
// Meter.AddTotals; a single Clock or Meter must never be shared across
// goroutines.
package vclock

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Clock is a discrete-event simulation clock. The zero value is not usable;
// call New.
type Clock struct {
	now    time.Duration
	events eventHeap
	seq    int64
}

// Event is a handle to a scheduled callback. It can be cancelled before it
// fires.
type Event struct {
	at        time.Duration
	seq       int64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// At returns the virtual time at which the event is scheduled to fire.
func (e *Event) At() time.Duration { return e.at }

// New returns a clock positioned at virtual time zero with no pending events.
func New() *Clock {
	return &Clock{}
}

// Now returns the current virtual time as an offset from the simulation
// start.
func (c *Clock) Now() time.Duration { return c.now }

// NowSeconds returns the current virtual time in seconds.
func (c *Clock) NowSeconds() float64 { return c.now.Seconds() }

// Schedule registers fn to run after delay d. A negative delay is treated as
// zero (the event fires on the next Step). The returned Event can be
// cancelled.
func (c *Clock) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return c.ScheduleAt(c.now+d, fn)
}

// ScheduleAt registers fn to run at absolute virtual time t. Times in the
// past are clamped to the current time.
func (c *Clock) ScheduleAt(t time.Duration, fn func()) *Event {
	if t < c.now {
		t = c.now
	}
	c.seq++
	ev := &Event{at: t, seq: c.seq, fn: fn}
	heap.Push(&c.events, ev)
	return ev
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (c *Clock) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	if ev.index >= 0 && ev.index < len(c.events) {
		heap.Remove(&c.events, ev.index)
	}
}

// Pending reports the number of scheduled, uncancelled events.
func (c *Clock) Pending() int { return len(c.events) }

// Step advances the clock to the next event and runs it. It reports whether
// an event was executed.
func (c *Clock) Step() bool {
	for len(c.events) > 0 {
		ev := heap.Pop(&c.events).(*Event)
		ev.index = -1
		if ev.cancelled {
			continue
		}
		c.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain. Events may schedule further events;
// Run keeps going until the queue is empty.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil executes events with fire times <= t and then advances the clock
// to exactly t.
func (c *Clock) RunUntil(t time.Duration) {
	for len(c.events) > 0 {
		next := c.events[0]
		if next.cancelled {
			heap.Pop(&c.events)
			continue
		}
		if next.at > t {
			break
		}
		c.Step()
	}
	if t > c.now {
		c.now = t
	}
}

// Advance moves the clock forward by d, executing all events that fall due.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.RunUntil(c.now + d)
}

// Seconds converts a floating-point number of seconds to a time.Duration,
// the unit used throughout the simulators.
func Seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// eventHeap orders events by (time, sequence) so same-time events fire in
// scheduling order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Meter accumulates labelled usage, typically node-seconds per pool or per
// SKU. It is the basis for all cost accounting in the simulators.
type Meter struct {
	usage map[string]float64
	open  map[string]openInterval
}

type openInterval struct {
	since time.Duration
	units float64
}

// NewMeter returns an empty usage meter.
func NewMeter() *Meter {
	return &Meter{
		usage: make(map[string]float64),
		open:  make(map[string]openInterval),
	}
}

// Add records amount units of usage (e.g. node-seconds) under key.
func (m *Meter) Add(key string, amount float64) {
	m.usage[key] += amount
}

// StartInterval opens a metering interval for key at virtual time now with a
// rate of units per second (e.g. number of running nodes). Re-opening an
// already open interval first closes the previous one at now.
func (m *Meter) StartInterval(key string, now time.Duration, units float64) {
	if _, ok := m.open[key]; ok {
		m.StopInterval(key, now)
	}
	m.open[key] = openInterval{since: now, units: units}
}

// StopInterval closes the open interval for key at virtual time now,
// accumulating units * elapsed-seconds. Stopping a key with no open interval
// is a no-op.
func (m *Meter) StopInterval(key string, now time.Duration) {
	iv, ok := m.open[key]
	if !ok {
		return
	}
	delete(m.open, key)
	elapsed := (now - iv.since).Seconds()
	if elapsed > 0 {
		m.usage[key] += iv.units * elapsed
	}
}

// AddTotals folds another meter's accumulated usage into this one, key by
// key. Open intervals on src are not included; close them first (e.g. via
// StopInterval or batchsim's usage snapshot) if they should count. This is
// how per-lane meters from concurrent collection are merged into the
// deployment-wide meter once the lanes have finished.
func (m *Meter) AddTotals(src *Meter) {
	for _, k := range src.Keys() {
		m.usage[k] += src.usage[k]
	}
}

// Total returns the accumulated usage for key, excluding any open interval.
func (m *Meter) Total(key string) float64 { return m.usage[key] }

// GrandTotal returns the sum of accumulated usage across all keys.
func (m *Meter) GrandTotal() float64 {
	var t float64
	for _, v := range m.usage {
		t += v
	}
	return t
}

// Keys returns the metered keys in sorted order.
func (m *Meter) Keys() []string {
	keys := make([]string, 0, len(m.usage))
	for k := range m.usage {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String summarizes the meter, mostly for debugging and logs.
func (m *Meter) String() string {
	out := ""
	for _, k := range m.Keys() {
		out += fmt.Sprintf("%s=%.1f ", k, m.usage[k])
	}
	if out == "" {
		return "(empty meter)"
	}
	return out[:len(out)-1]
}

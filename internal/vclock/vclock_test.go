package vclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("new clock has %d pending events, want 0", c.Pending())
	}
}

func TestScheduleAndRunOrdering(t *testing.T) {
	c := New()
	var order []int
	c.Schedule(3*time.Second, func() { order = append(order, 3) })
	c.Schedule(1*time.Second, func() { order = append(order, 1) })
	c.Schedule(2*time.Second, func() { order = append(order, 2) })
	c.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("clock at %v after run, want 3s", c.Now())
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(time.Second, func() { order = append(order, i) })
	}
	c.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events fired out of order: %v", order)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	c := New()
	c.Advance(5 * time.Second)
	fired := time.Duration(-1)
	c.Schedule(-10*time.Second, func() { fired = c.Now() })
	c.Run()
	if fired != 5*time.Second {
		t.Fatalf("negative-delay event fired at %v, want 5s", fired)
	}
}

func TestScheduleAtPastClamps(t *testing.T) {
	c := New()
	c.Advance(10 * time.Second)
	var at time.Duration
	c.ScheduleAt(3*time.Second, func() { at = c.Now() })
	c.Run()
	if at != 10*time.Second {
		t.Fatalf("past event fired at %v, want clamped to 10s", at)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	c := New()
	fired := false
	ev := c.Schedule(time.Second, func() { fired = true })
	c.Cancel(ev)
	c.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancelling again (and cancelling nil) must be safe.
	c.Cancel(ev)
	c.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	c := New()
	var order []int
	evs := make([]*Event, 5)
	for i := 0; i < 5; i++ {
		i := i
		evs[i] = c.Schedule(time.Duration(i+1)*time.Second, func() { order = append(order, i) })
	}
	c.Cancel(evs[2])
	c.Run()
	for _, v := range order {
		if v == 2 {
			t.Fatalf("cancelled event 2 fired; order=%v", order)
		}
	}
	if len(order) != 4 {
		t.Fatalf("got %d events, want 4", len(order))
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	c := New()
	var hits []time.Duration
	var rec func()
	n := 0
	rec = func() {
		hits = append(hits, c.Now())
		n++
		if n < 4 {
			c.Schedule(2*time.Second, rec)
		}
	}
	c.Schedule(time.Second, rec)
	c.Run()
	want := []time.Duration{1 * time.Second, 3 * time.Second, 5 * time.Second, 7 * time.Second}
	if len(hits) != len(want) {
		t.Fatalf("got %d firings, want %d", len(hits), len(want))
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits = %v, want %v", hits, want)
		}
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	c := New()
	var fired []int
	c.Schedule(1*time.Second, func() { fired = append(fired, 1) })
	c.Schedule(5*time.Second, func() { fired = append(fired, 5) })
	c.RunUntil(3 * time.Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("clock at %v, want 3s", c.Now())
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", c.Pending())
	}
}

func TestAdvanceMovesTimeWithoutEvents(t *testing.T) {
	c := New()
	c.Advance(90 * time.Minute)
	if c.Now() != 90*time.Minute {
		t.Fatalf("clock at %v, want 90m", c.Now())
	}
	c.Advance(-time.Second) // negative advance is a no-op
	if c.Now() != 90*time.Minute {
		t.Fatalf("clock moved backwards to %v", c.Now())
	}
}

func TestSecondsConversion(t *testing.T) {
	if Seconds(1.5) != 1500*time.Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if Seconds(0) != 0 {
		t.Fatalf("Seconds(0) = %v", Seconds(0))
	}
}

// Property: for any set of delays, events fire in nondecreasing time order.
func TestPropertyEventsFireInOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		c := New()
		var times []time.Duration
		for _, d := range delays {
			c.Schedule(time.Duration(d)*time.Millisecond, func() {
				times = append(times, c.Now())
			})
		}
		c.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a meter interval accumulates exactly units * elapsed.
func TestPropertyMeterIntervalAccounting(t *testing.T) {
	f := func(startMS, lenMS uint16, units uint8) bool {
		m := NewMeter()
		start := time.Duration(startMS) * time.Millisecond
		end := start + time.Duration(lenMS)*time.Millisecond
		m.StartInterval("k", start, float64(units))
		m.StopInterval("k", end)
		want := float64(units) * (time.Duration(lenMS) * time.Millisecond).Seconds()
		got := m.Total("k")
		return got > want-1e-9 && got < want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeterReopenClosesPrevious(t *testing.T) {
	m := NewMeter()
	m.StartInterval("pool", 0, 4)              // 4 nodes from t=0
	m.StartInterval("pool", 10*time.Second, 8) // grows to 8 at t=10
	m.StopInterval("pool", 15*time.Second)
	want := 4.0*10 + 8.0*5
	if got := m.Total("pool"); got != want {
		t.Fatalf("Total = %v, want %v", got, want)
	}
}

func TestMeterStopWithoutStartIsNoop(t *testing.T) {
	m := NewMeter()
	m.StopInterval("missing", time.Second)
	if m.Total("missing") != 0 {
		t.Fatal("phantom usage recorded")
	}
}

func TestMeterAddAndTotals(t *testing.T) {
	m := NewMeter()
	m.Add("a", 2)
	m.Add("a", 3)
	m.Add("b", 10)
	if m.Total("a") != 5 {
		t.Fatalf("Total(a) = %v", m.Total("a"))
	}
	if m.GrandTotal() != 15 {
		t.Fatalf("GrandTotal = %v", m.GrandTotal())
	}
	keys := m.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
	if m.String() == "(empty meter)" {
		t.Fatal("non-empty meter printed as empty")
	}
	if NewMeter().String() != "(empty meter)" {
		t.Fatal("empty meter should describe itself as empty")
	}
}

func TestManyRandomEventsDrainCompletely(t *testing.T) {
	c := New()
	rng := rand.New(rand.NewSource(42))
	count := 0
	for i := 0; i < 5000; i++ {
		c.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, func() { count++ })
	}
	c.Run()
	if count != 5000 {
		t.Fatalf("ran %d events, want 5000", count)
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d after Run", c.Pending())
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := New()
		for j := 0; j < 100; j++ {
			c.Schedule(time.Duration(j)*time.Millisecond, func() {})
		}
		c.Run()
	}
}

package runner

import (
	"strings"
	"testing"
	"testing/quick"

	"hpcadvisor/internal/appmodel"
	"hpcadvisor/internal/batchsim"
	"hpcadvisor/internal/catalog"
)

func testEnv() Env {
	return Env{
		NNodes:       2,
		PPN:          120,
		SKU:          "Standard_HB120rs_v3",
		Hosts:        []string{"node-001", "node-002"},
		TaskRunDir:   "/data/jobs/task-00001",
		HostfilePath: "/data/jobs/task-00001/hostfile",
		AppInputs:    map[string]string{"BOXFACTOR": "30"},
	}
}

func TestTableIEnvironmentVariables(t *testing.T) {
	// Table I of the paper defines: NNODES, PPN, SKU, VMTYPE, HOSTLIST_PPN,
	// HOSTFILE_PATH, TASKRUN_DIR.
	vars := testEnv().Vars()
	want := map[string]string{
		"NNODES":        "2",
		"PPN":           "120",
		"SKU":           "Standard_HB120rs_v3",
		"VMTYPE":        "Standard_HB120rs_v3",
		"HOSTLIST_PPN":  "node-001:120,node-002:120",
		"HOSTFILE_PATH": "/data/jobs/task-00001/hostfile",
		"TASKRUN_DIR":   "/data/jobs/task-00001",
		"BOXFACTOR":     "30",
	}
	for k, v := range want {
		if vars[k] != v {
			t.Errorf("%s = %q, want %q", k, vars[k], v)
		}
	}
}

func TestHostfileFormat(t *testing.T) {
	hf := testEnv().Hostfile()
	want := "node-001 slots=120\nnode-002 slots=120\n"
	if hf != want {
		t.Errorf("hostfile = %q, want %q", hf, want)
	}
}

func TestTotalProcesses(t *testing.T) {
	if got := testEnv().TotalProcesses(); got != 240 {
		t.Errorf("np = %d, want 240", got)
	}
}

func TestEnvName(t *testing.T) {
	cases := map[string]string{
		"mesh":                 "MESH",
		"BLOCKMESH dimensions": "BLOCKMESH_DIMENSIONS",
		"box-factor":           "BOX_FACTOR",
		"already_GOOD1":        "ALREADY_GOOD1",
	}
	for in, want := range cases {
		if got := EnvName(in); got != want {
			t.Errorf("EnvName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseVarsListing2Style(t *testing.T) {
	// Exactly the output style of the paper's Listing 2.
	stdout := `Simulation completed successfully.
HPCADVISORVAR APPEXECTIME=132
HPCADVISORVAR LAMMPSATOMS=864000000
HPCADVISORVAR LAMMPSSTEPS=100
unrelated line
`
	vars := ParseVars(stdout)
	if vars["APPEXECTIME"] != "132" || vars["LAMMPSATOMS"] != "864000000" || vars["LAMMPSSTEPS"] != "100" {
		t.Errorf("vars = %v", vars)
	}
	if len(vars) != 3 {
		t.Errorf("got %d vars, want 3", len(vars))
	}
}

func TestParseVarsIgnoresMalformed(t *testing.T) {
	stdout := strings.Join([]string{
		"HPCADVISORVAR",            // no pair
		"HPCADVISORVAR =value",     // empty key
		"HPCADVISORVAR KEY=",       // empty value is kept
		"HPCADVISORVARNOSPACE=1",   // wrong marker
		"  HPCADVISORVAR PAD=ok  ", // surrounding whitespace fine
		"HPCADVISORVAR EQ=a=b",     // value may contain '='
	}, "\n")
	vars := ParseVars(stdout)
	if len(vars) != 3 {
		t.Fatalf("vars = %v", vars)
	}
	if vars["KEY"] != "" || vars["PAD"] != "ok" || vars["EQ"] != "a=b" {
		t.Errorf("vars = %v", vars)
	}
}

// Property: FormatVar output always round-trips through ParseVars.
func TestPropertyFormatParseRoundTrip(t *testing.T) {
	f := func(keyRaw, val string) bool {
		key := EnvName(keyRaw)
		if key == "" {
			key = "K"
		}
		if strings.ContainsAny(val, "\n\r") {
			val = strings.ReplaceAll(strings.ReplaceAll(val, "\n", " "), "\r", " ")
		}
		got := ParseVars(FormatVar(key, val))
		return got[key] == strings.TrimSpace(val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewTaskFuncSuccessPath(t *testing.T) {
	reg := appmodel.NewRegistry()
	app, _ := reg.Get("lammps")
	w, err := app.Parse(map[string]string{"BOXFACTOR": "30"})
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv()
	fn := NewTaskFunc(app, w, env)
	sku := catalog.Default().MustLookup("hb120rs_v3")
	res := fn(batchsim.TaskContext{SKU: sku, NodeIDs: env.Hosts})
	if res.ExitCode != 0 {
		t.Fatalf("exit = %d, stdout = %q", res.ExitCode, res.Stdout)
	}
	if res.DurationSeconds <= 0 {
		t.Error("duration must be positive")
	}
	if !strings.Contains(res.Stdout, "Simulation completed successfully.") {
		t.Errorf("missing completion banner: %q", res.Stdout)
	}
	vars := ParseVars(res.Stdout)
	if vars["LAMMPSATOMS"] != "864000000" {
		t.Errorf("vars = %v", vars)
	}
	if vars["APPEXECTIME"] == "" {
		t.Error("APPEXECTIME missing")
	}
}

func TestNewTaskFuncFailurePath(t *testing.T) {
	reg := appmodel.NewRegistry()
	app, _ := reg.Get("lammps")
	// BOXFACTOR 100 on one node cannot fit in memory.
	w, err := app.Parse(map[string]string{"BOXFACTOR": "100"})
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv()
	env.NNodes = 1
	env.Hosts = env.Hosts[:1]
	fn := NewTaskFunc(app, w, env)
	sku := catalog.Default().MustLookup("hb120rs_v3")
	res := fn(batchsim.TaskContext{SKU: sku, NodeIDs: env.Hosts})
	if res.ExitCode == 0 {
		t.Fatal("OOM run should fail")
	}
	if !strings.Contains(res.Stdout, "did not complete successfully") {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if len(ParseVars(res.Stdout)) != 0 {
		t.Error("failed run must not report metrics")
	}
}

func TestListing2ScriptGeneration(t *testing.T) {
	reg := appmodel.NewRegistry()
	for _, name := range reg.Names() {
		app, _ := reg.Get(name)
		script := GenerateScript(app)
		// Structural requirements from the paper's Listing 2.
		for _, want := range []string{
			"#!/usr/bin/env bash",
			"hpcadvisor_setup()",
			"hpcadvisor_run()",
			"NP=$(($NNODES * $PPN))",
			`mpirun -np $NP --host "$HOSTLIST_PPN"`,
			"HPCADVISORVAR APPEXECTIME=",
			"Simulation completed successfully.",
			"return 1",
		} {
			if !strings.Contains(script, want) {
				t.Errorf("%s script missing %q", name, want)
			}
		}
		// Defaults are surfaced as environment fallbacks.
		for k := range app.DefaultInput() {
			if !strings.Contains(script, EnvName(k)) {
				t.Errorf("%s script missing input variable %s", name, EnvName(k))
			}
		}
	}
}

func TestSetupSecondsSane(t *testing.T) {
	if SetupSeconds <= 0 || SetupSeconds > 600 {
		t.Errorf("SetupSeconds = %v", SetupSeconds)
	}
}

// Package runner implements the application execution contract of the paper
// (Section III-A): jobs receive the environment variables of Table I, run
// the application, and report metrics by printing "HPCADVISORVAR key=value"
// lines on stdout, which the collector scrapes into the dataset.
//
// In the paper the job side of this contract is a user-supplied bash script
// with hpcadvisor_setup and hpcadvisor_run functions (Listing 2). Here the
// same contract is a Go function produced from an application performance
// model; GenerateScript additionally renders the equivalent bash script for
// documentation and for users who want to port a configuration to the real
// tool.
package runner

import (
	"fmt"
	"sort"
	"strings"

	"hpcadvisor/internal/appmodel"
	"hpcadvisor/internal/batchsim"
)

// Env carries everything a job run needs; Vars renders it as the Table I
// environment variables.
type Env struct {
	// NNodes is the number of cluster nodes (Table I: NNODES).
	NNodes int
	// PPN is processes per node (Table I: PPN).
	PPN int
	// SKU is the VM type (Table I: SKU and VMTYPE).
	SKU string
	// Hosts are the allocated node hostnames.
	Hosts []string
	// TaskRunDir is the per-job working directory (Table I: TASKRUN_DIR);
	// the paper gives every job its own directory.
	TaskRunDir string
	// HostfilePath is where the hostfile is written (Table I:
	// HOSTFILE_PATH).
	HostfilePath string
	// AppInputs are the application input parameters, exported as
	// uppercase environment variables (e.g. BOXFACTOR=30).
	AppInputs map[string]string
}

// Vars renders the environment as a map, exactly the variable set of the
// paper's Table I plus the application inputs.
func (e Env) Vars() map[string]string {
	vars := map[string]string{
		"NNODES":        fmt.Sprintf("%d", e.NNodes),
		"PPN":           fmt.Sprintf("%d", e.PPN),
		"SKU":           e.SKU,
		"VMTYPE":        e.SKU,
		"HOSTLIST_PPN":  e.HostlistPPN(),
		"HOSTFILE_PATH": e.HostfilePath,
		"TASKRUN_DIR":   e.TaskRunDir,
	}
	for k, v := range e.AppInputs {
		vars[EnvName(k)] = v
	}
	return vars
}

// HostlistPPN renders the mpirun --host argument: "host:ppn,host:ppn,..."
// (Table I: HOSTLIST_PPN, "List of hosts and their PPN").
func (e Env) HostlistPPN() string {
	parts := make([]string, len(e.Hosts))
	for i, h := range e.Hosts {
		parts[i] = fmt.Sprintf("%s:%d", h, e.PPN)
	}
	return strings.Join(parts, ",")
}

// Hostfile renders an OpenMPI-style hostfile body.
func (e Env) Hostfile() string {
	var b strings.Builder
	for _, h := range e.Hosts {
		fmt.Fprintf(&b, "%s slots=%d\n", h, e.PPN)
	}
	return b.String()
}

// TotalProcesses is NNODES * PPN, the mpirun -np value.
func (e Env) TotalProcesses() int { return e.NNodes * e.PPN }

// EnvName normalizes an application input key to an environment variable
// name: uppercase with non-alphanumerics mapped to underscores.
func EnvName(key string) string {
	var b strings.Builder
	for _, r := range strings.ToUpper(key) {
		switch {
		case r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}

// VarPrefix is the stdout marker for reported variables (paper Listing 2:
// `echo "HPCADVISORVAR APPEXECTIME=$APPEXECTIME"`).
const VarPrefix = "HPCADVISORVAR"

// ParseVars extracts reported variables from job stdout. Lines that carry
// the marker but no well-formed key=value pair are ignored, as the real
// tool's scraper does.
func ParseVars(stdout string) map[string]string {
	out := make(map[string]string)
	for _, line := range strings.Split(stdout, "\n") {
		line = strings.TrimSpace(line)
		rest, ok := strings.CutPrefix(line, VarPrefix)
		if !ok {
			continue
		}
		// The marker must be a whole word: "HPCADVISORVARX=1" is not a
		// report.
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue
		}
		rest = strings.TrimSpace(rest)
		key, val, ok := strings.Cut(rest, "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			continue
		}
		out[key] = strings.TrimSpace(val)
	}
	return out
}

// FormatVar renders one reported variable line.
func FormatVar(key, value string) string {
	return fmt.Sprintf("%s %s=%s", VarPrefix, key, value)
}

// NewTaskFunc bridges an application model into a batch task: when the task
// starts, the model predicts the execution profile for the environment's
// cluster shape, and the task emits the same stdout a real run would —
// completion banner plus HPCADVISORVAR metric lines. Infeasible runs (e.g.
// out of memory) produce a nonzero exit code and a diagnostic, which the
// collector records as a failed scenario.
func NewTaskFunc(app appmodel.App, w appmodel.Workload, env Env) batchsim.TaskFunc {
	return func(tc batchsim.TaskContext) batchsim.TaskResult {
		prof, err := appmodel.Simulate(w, tc.SKU, env.NNodes, env.PPN)
		if err != nil {
			return batchsim.TaskResult{
				DurationSeconds: 1, // failures surface quickly
				Stdout:          fmt.Sprintf("Simulation did not complete successfully.\nerror: %v\n", err),
				ExitCode:        1,
			}
		}
		var b strings.Builder
		fmt.Fprintf(&b, "Running %s with np=%d on %s\n", app.Name(), env.TotalProcesses(), env.HostlistPPN())
		fmt.Fprintf(&b, "Simulation completed successfully.\n")
		metrics := app.Metrics(w, prof)
		keys := make([]string, 0, len(metrics))
		for k := range metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintln(&b, FormatVar(k, metrics[k]))
		}
		return batchsim.TaskResult{
			DurationSeconds: prof.ExecSeconds,
			Stdout:          b.String(),
			ExitCode:        0,
		}
	}
}

// SetupSeconds is the simulated duration of the per-pool application setup
// task (download input data, load modules) from the paper's
// hpcadvisor_setup function.
const SetupSeconds = 60

// Package queryengine is the read-optimized serving layer between the
// dataset and the front ends (CLI, GUI, public API). Every advice table,
// plot set, and rendered SVG is memoized under a key combining the
// canonical filter, the requested ordering, and the store generation, so a
// repeated query is a cache hit instead of a dataset walk, and any append
// to the store invalidates exactly by changing the generation — no explicit
// flushes. A bounded LRU keeps memory finite and single-flight collapses a
// thundering herd on one cold key into a single computation.
//
// The engine is safe for concurrent use and never blocks writers: it reads
// through immutable dataset.Snapshots (see internal/dataset/snapshot.go).
package queryengine

import (
	"container/list"
	"fmt"
	"strconv"
	"sync"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/plot"
	"hpcadvisor/internal/predictor"
)

// Source is anything that can produce read-optimized snapshots: a
// *dataset.Store, or an adapter over dataset.Sharded's View.
type Source interface {
	Snapshot() *dataset.Snapshot
}

// DefaultCacheEntries bounds the LRU when callers pass 0: generous for
// interactive use (five plots x a handful of filters x a few generations)
// while keeping worst-case memory small.
const DefaultCacheEntries = 512

// Stats counts cache traffic. Joins on an in-flight computation count as
// hits (the work was shared, not repeated).
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Engine memoizes advice and plot queries over a snapshot source.
type Engine struct {
	src Source
	max int

	mu       sync.Mutex
	entries  map[string]*list.Element // guarded-by: mu
	lru      *list.List               // guarded-by: mu; front = most recently used
	inflight map[string]*call         // guarded-by: mu
	stats    Stats                    // guarded-by: mu
}

type entry struct {
	key string
	val any
}

type call struct {
	done chan struct{}
	val  any
}

// New builds an engine over src with a bounded LRU of maxEntries (0 means
// DefaultCacheEntries).
func New(src Source, maxEntries int) *Engine {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &Engine{
		src:      src,
		max:      maxEntries,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*call),
	}
}

// Snapshot exposes the engine's current read view.
func (e *Engine) Snapshot() *dataset.Snapshot { return e.src.Snapshot() }

// Generation returns the generation of the current read view — the value
// every cached result of that view is keyed under, and what the API layer
// folds into ETags so HTTP revalidation tracks cache invalidation exactly.
func (e *Engine) Generation() uint64 { return e.src.Snapshot().Generation() }

// Stats returns a copy of the cache counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Len returns the number of cached entries.
func (e *Engine) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.entries)
}

// testHookCompute, when set, runs inside every cache-miss computation;
// tests use it to hold a computation open and observe single-flight.
var testHookCompute func()

// get returns the cached value for key, computing it at most once across
// concurrent callers.
func (e *Engine) get(key string, compute func() any) any {
	e.mu.Lock()
	if el, ok := e.entries[key]; ok {
		e.lru.MoveToFront(el)
		v := el.Value.(*entry).val
		e.stats.Hits++
		e.mu.Unlock()
		return v
	}
	if c, ok := e.inflight[key]; ok {
		e.stats.Hits++
		e.mu.Unlock()
		<-c.done
		return c.val
	}
	c := &call{done: make(chan struct{})}
	e.inflight[key] = c
	e.stats.Misses++
	e.mu.Unlock()

	if testHookCompute != nil {
		testHookCompute()
	}
	c.val = compute()

	e.mu.Lock()
	delete(e.inflight, key)
	e.entries[key] = e.lru.PushFront(&entry{key: key, val: c.val})
	for e.lru.Len() > e.max {
		oldest := e.lru.Back()
		e.lru.Remove(oldest)
		delete(e.entries, oldest.Value.(*entry).key)
		e.stats.Evictions++
	}
	e.mu.Unlock()
	close(c.done)
	return c.val
}

// key renders a cache key: query kind, store generation, canonical filter,
// and any extra discriminator (sort order, plot name).
func key(kind string, gen uint64, c *dataset.CanonicalFilter, extra string) string {
	k := kind + "|g" + strconv.FormatUint(gen, 10) + "|" + c.Key()
	if extra != "" {
		k += "|" + extra
	}
	return k
}

func orderKey(order pareto.SortOrder) string {
	if order == pareto.ByCost {
		return "cost"
	}
	return "time"
}

// Cached memoizes an arbitrary derivation of one snapshot under the
// engine's LRU and single-flight, keyed like every built-in kind: (kind,
// generation, canonical filter, extra). Serving layers use it to cache
// renderings the engine does not know about — e.g. the API's encoded JSON
// response bodies — with the same generation-based invalidation as advice
// and SVG. compute receives the exact snapshot the key's generation names,
// so a cached value can never mix generations. External kinds are
// namespaced with "x:" and can never collide with the engine's own.
func (e *Engine) Cached(kind string, f dataset.Filter, extra string, compute func(sn *dataset.Snapshot) any) any {
	return e.CachedAt(e.src.Snapshot(), kind, f, extra, compute)
}

// CachedAt is Cached pinned to one snapshot (see AdviceAt).
func (e *Engine) CachedAt(sn *dataset.Snapshot, kind string, f dataset.Filter, extra string, compute func(sn *dataset.Snapshot) any) any {
	c := f.Canonical()
	return e.get(key("x:"+kind, sn.Generation(), &c, extra), func() any { return compute(sn) })
}

// Select returns the filtered points from the current snapshot. It is an
// index probe, not a scan, and is left uncached: the snapshot already makes
// it cheap, and callers (repricing) may mutate the returned copies.
func (e *Engine) Select(f dataset.Filter) []dataset.Point {
	return e.src.Snapshot().Select(f)
}

// adviceAt memoizes the Pareto front at one captured snapshot; the shared
// cached slice must not be modified. Hot filters — the snapshot
// precomputes fronts for the top-K single-field filters — are a slice
// handoff from the snapshot; only cold filters pay a Select plus an
// on-demand front. Both paths are byte-identical (the equivalence suite
// pins them to the scan baseline), so the cache key does not care which
// one produced the value.
func (e *Engine) adviceAt(sn *dataset.Snapshot, f dataset.Filter, order pareto.SortOrder) []dataset.Point {
	c := f.Canonical()
	v := e.get(key("advice", sn.Generation(), &c, orderKey(order)), func() any {
		if rows, ok := sn.HotAdvice(&c, order == pareto.ByCost); ok {
			return rows
		}
		return pareto.Advice(sn.Select(f), order)
	})
	return v.([]dataset.Point)
}

// Advice returns the Pareto front over the filtered dataset in the given
// order, memoized per (filter, order, generation). The returned slice is a
// fresh copy; callers may modify it.
func (e *Engine) Advice(f dataset.Filter, order pareto.SortOrder) []dataset.Point {
	return e.AdviceAt(e.src.Snapshot(), f, order)
}

// AdviceAt is Advice pinned to one snapshot, for callers that must tie a
// result to the exact generation they advertise (the API binds response
// bodies to ETags this way). The returned slice is a fresh copy.
func (e *Engine) AdviceAt(sn *dataset.Snapshot, f dataset.Filter, order pareto.SortOrder) []dataset.Point {
	rows := e.adviceAt(sn, f, order)
	out := make([]dataset.Point, len(rows))
	copy(out, rows)
	return out
}

// AdviceTable returns the advice rendered exactly as the paper's Listings
// 3-4, memoized separately from Advice so repeated table requests skip even
// the formatting. Its compute layers on the memoized front, so a cold table
// after a cold Advice (the GUI does both per request) formats the cached
// rows instead of re-running the Pareto computation.
func (e *Engine) AdviceTable(f dataset.Filter, order pareto.SortOrder) string {
	return e.AdviceTableAt(e.src.Snapshot(), f, order)
}

// AdviceTableAt is AdviceTable pinned to one snapshot (see AdviceAt).
func (e *Engine) AdviceTableAt(sn *dataset.Snapshot, f dataset.Filter, order pareto.SortOrder) string {
	c := f.Canonical()
	v := e.get(key("advicetable", sn.Generation(), &c, orderKey(order)), func() any {
		return pareto.FormatAdviceTable(e.adviceAt(sn, f, order))
	})
	return v.(string)
}

// GroupSeries returns the per-(SKU, input) series of the filtered dataset,
// memoized per (filter, generation). The map is a fresh shallow copy; the
// point slices are shared and must be treated as read-only.
func (e *Engine) GroupSeries(f dataset.Filter) map[dataset.SeriesKey][]dataset.Point {
	sn := e.src.Snapshot()
	c := f.Canonical()
	v := e.get(key("groups", sn.Generation(), &c, ""), func() any {
		return sn.GroupSeries(f)
	})
	cached := v.(map[dataset.SeriesKey][]dataset.Point)
	out := make(map[dataset.SeriesKey][]dataset.Point, len(cached))
	for k, pts := range cached {
		out[k] = pts
	}
	return out
}

// plotSetAt memoizes the plot set at one captured snapshot, so every
// consumer of one (filter, generation) — PlotSet calls and all five SVG
// renders — shares a single set computation pinned to that generation.
func (e *Engine) plotSetAt(sn *dataset.Snapshot, f dataset.Filter) plot.Set {
	c := f.Canonical()
	v := e.get(key("plotset", sn.Generation(), &c, ""), func() any {
		return plot.BuildSet(&memoSource{sn: sn}, f)
	})
	return v.(plot.Set)
}

// PlotSet returns all five plots for the filter, computed from one snapshot
// so the set is internally consistent, memoized per (filter, generation).
// The set is returned by value; its series slices are shared and read-only.
func (e *Engine) PlotSet(f dataset.Filter) plot.Set {
	return e.plotSetAt(e.src.Snapshot(), f)
}

// SVG returns the named plot of the set rendered as SVG bytes, memoized per
// (name, filter, generation) — the bytes are rendered from the same
// snapshot the key's generation names, never a newer one. The returned
// bytes are shared with the cache and must not be modified. Unknown names
// error.
func (e *Engine) SVG(name string, f dataset.Filter) ([]byte, error) {
	return e.SVGAt(e.src.Snapshot(), name, f)
}

// SVGAt is SVG pinned to one snapshot (see AdviceAt).
func (e *Engine) SVGAt(sn *dataset.Snapshot, name string, f dataset.Filter) ([]byte, error) {
	c := f.Canonical()
	if _, ok := (plot.Set{}).ByName(name); !ok {
		return nil, fmt.Errorf("queryengine: unknown plot %q", name)
	}
	v := e.get(key("svg", sn.Generation(), &c, name), func() any {
		p, _ := e.plotSetAt(sn, f).ByName(name)
		return plot.RenderSVG(p)
	})
	return v.([]byte), nil
}

// predictedAdviceAt memoizes the merged measured+predicted front at one
// captured snapshot; the shared cached slice must not be modified. The key
// adds the predictor configuration: distinct grids, gates, or regions cache
// independently, and any append to the store invalidates by generation like
// every other kind.
func (e *Engine) predictedAdviceAt(sn *dataset.Snapshot, f dataset.Filter, order pareto.SortOrder, cfg predictor.Config) []predictor.Row {
	c := f.Canonical()
	v := e.get(key("predadvice", sn.Generation(), &c, orderKey(order)+"|"+cfg.Key()), func() any {
		return predictor.Advice(sn.Select(f), cfg, order)
	})
	return v.([]predictor.Row)
}

// PredictedAdvice returns the merged measured+predicted Pareto front over
// the filtered dataset, memoized per (filter, order, config, generation).
// The returned slice is a fresh copy; callers may modify it.
func (e *Engine) PredictedAdvice(f dataset.Filter, order pareto.SortOrder, cfg predictor.Config) []predictor.Row {
	return e.PredictedAdviceAt(e.src.Snapshot(), f, order, cfg)
}

// PredictedAdviceAt is PredictedAdvice pinned to one snapshot (see
// AdviceAt). The returned slice is a fresh copy.
func (e *Engine) PredictedAdviceAt(sn *dataset.Snapshot, f dataset.Filter, order pareto.SortOrder, cfg predictor.Config) []predictor.Row {
	rows := e.predictedAdviceAt(sn, f, order, cfg)
	out := make([]predictor.Row, len(rows))
	copy(out, rows)
	return out
}

// PredictedAdviceTable renders the merged advice with its Source markings,
// memoized separately so repeated table requests skip the formatting; its
// compute layers on the memoized rows.
func (e *Engine) PredictedAdviceTable(f dataset.Filter, order pareto.SortOrder, cfg predictor.Config) string {
	return e.PredictedAdviceTableAt(e.src.Snapshot(), f, order, cfg)
}

// PredictedAdviceTableAt is PredictedAdviceTable pinned to one snapshot
// (see AdviceAt).
func (e *Engine) PredictedAdviceTableAt(sn *dataset.Snapshot, f dataset.Filter, order pareto.SortOrder, cfg predictor.Config) string {
	c := f.Canonical()
	v := e.get(key("predtable", sn.Generation(), &c, orderKey(order)+"|"+cfg.Key()), func() any {
		return predictor.FormatAdviceTable(e.predictedAdviceAt(sn, f, order, cfg))
	})
	return v.(string)
}

// Backtest runs the predictor's leave-one-out backtest over the filtered
// dataset, memoized per (filter, config, generation).
func (e *Engine) Backtest(f dataset.Filter, cfg predictor.Config) predictor.BacktestReport {
	return e.BacktestAt(e.src.Snapshot(), f, cfg)
}

// BacktestAt is Backtest pinned to one snapshot (see AdviceAt).
func (e *Engine) BacktestAt(sn *dataset.Snapshot, f dataset.Filter, cfg predictor.Config) predictor.BacktestReport {
	c := f.Canonical()
	v := e.get(key("backtest", sn.Generation(), &c, cfg.Key()), func() any {
		return predictor.Backtest(sn.Select(f), cfg)
	})
	return v.(predictor.BacktestReport)
}

// predictedPlotSetAt memoizes the overlaid plot set at one captured
// snapshot: the measured set (shared with the plain PlotSet kind) plus the
// predictor's fitted-curve, interval-band, and predicted-cost series.
func (e *Engine) predictedPlotSetAt(sn *dataset.Snapshot, f dataset.Filter, cfg predictor.Config) plot.Set {
	c := f.Canonical()
	v := e.get(key("predplots", sn.Generation(), &c, cfg.Key()), func() any {
		return predictor.Overlay(e.plotSetAt(sn, f), sn.Select(f), cfg)
	})
	return v.(plot.Set)
}

// PredictedPlotSet returns the plot set with predicted overlays on the
// exectime and cost plots, memoized per (filter, config, generation). The
// set is returned by value; its series slices are shared and read-only.
func (e *Engine) PredictedPlotSet(f dataset.Filter, cfg predictor.Config) plot.Set {
	return e.predictedPlotSetAt(e.src.Snapshot(), f, cfg)
}

// PredictedSVG returns the named overlaid plot rendered as SVG bytes,
// memoized per (name, filter, config, generation). The returned bytes are
// shared with the cache and must not be modified. Unknown names error.
func (e *Engine) PredictedSVG(name string, f dataset.Filter, cfg predictor.Config) ([]byte, error) {
	return e.PredictedSVGAt(e.src.Snapshot(), name, f, cfg)
}

// PredictedSVGAt is PredictedSVG pinned to one snapshot (see AdviceAt).
func (e *Engine) PredictedSVGAt(sn *dataset.Snapshot, name string, f dataset.Filter, cfg predictor.Config) ([]byte, error) {
	c := f.Canonical()
	if _, ok := (plot.Set{}).ByName(name); !ok {
		return nil, fmt.Errorf("queryengine: unknown plot %q", name)
	}
	v := e.get(key("predsvg", sn.Generation(), &c, name+"|"+cfg.Key()), func() any {
		p, _ := e.predictedPlotSetAt(sn, f, cfg).ByName(name)
		return plot.RenderSVG(p)
	})
	return v.([]byte), nil
}

// memoSource caches the Select and GroupSeries of a single snapshot while
// one plot set is built: the five builders share one Select and one
// grouping instead of five of each. It is used by exactly one goroutine
// during one BuildSet call.
type memoSource struct {
	sn        *dataset.Snapshot
	selected  []dataset.Point
	selectOK  bool
	grouped   map[dataset.SeriesKey][]dataset.Point
	groupedOK bool
}

func (m *memoSource) Select(f dataset.Filter) []dataset.Point {
	if !m.selectOK {
		m.selected = m.sn.Select(f)
		m.selectOK = true
	}
	return m.selected
}

func (m *memoSource) GroupSeries(f dataset.Filter) map[dataset.SeriesKey][]dataset.Point {
	if !m.groupedOK {
		m.grouped = m.sn.GroupSeries(f)
		m.groupedOK = true
	}
	return m.grouped
}

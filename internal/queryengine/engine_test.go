package queryengine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
)

func fixtureStore(n int) *dataset.Store {
	s := dataset.NewStore()
	for i := 0; i < n; i++ {
		s.Add(dataset.Point{
			ScenarioID:  fmt.Sprintf("s%03d", i),
			AppName:     []string{"lammps", "openfoam"}[i%2],
			SKU:         "Standard_HB120rs_v3",
			SKUAlias:    "hb120rs_v3",
			NNodes:      1 + i%16,
			PPN:         120,
			InputDesc:   "atoms=864M",
			ExecTimeSec: float64(1000 - i),
			CostUSD:     float64(i%7) + 0.25,
		})
	}
	return s
}

func TestCacheHitOnRepeatAndInvalidationOnGenerationBump(t *testing.T) {
	store := fixtureStore(50)
	e := New(store, 0)
	f := dataset.Filter{AppName: "lammps"}

	first := e.AdviceTable(f, pareto.ByTime)
	// A cold table is two misses: the table entry plus the memoized front
	// it layers on.
	if got := e.Stats(); got.Misses != 2 || got.Hits != 0 {
		t.Fatalf("cold query: stats = %+v", got)
	}
	if second := e.AdviceTable(f, pareto.ByTime); second != first {
		t.Fatal("repeated query changed output")
	}
	if got := e.Stats(); got.Hits != 1 {
		t.Fatalf("warm query did not hit: stats = %+v", got)
	}
	// A filter differing only in case folds to the same key, and Advice
	// reuses the front the cold AdviceTable already computed.
	e.AdviceTable(dataset.Filter{AppName: "LAMMPS"}, pareto.ByTime)
	e.Advice(f, pareto.ByTime)
	if got := e.Stats(); got.Hits != 3 || got.Misses != 2 {
		t.Fatalf("case-folded/layered queries missed: stats = %+v", got)
	}

	// Appending bumps the generation: the old entry is dead, the new result
	// reflects the new point.
	fast := dataset.Point{
		ScenarioID: "speedster", AppName: "lammps",
		SKU: "Standard_HB120rs_v3", SKUAlias: "hb120rs_v3",
		NNodes: 32, ExecTimeSec: 1, CostUSD: 0.01,
	}
	store.Add(fast)
	after := e.AdviceTable(f, pareto.ByTime)
	if after == first {
		t.Fatal("generation bump did not invalidate the cached advice")
	}
	rows := e.Advice(f, pareto.ByTime)
	if len(rows) == 0 || rows[0].ScenarioID != "speedster" {
		t.Fatalf("post-append advice does not lead with the new optimum: %+v", rows)
	}
}

func TestAdviceReturnsDefensiveCopy(t *testing.T) {
	e := New(fixtureStore(20), 0)
	f := dataset.Filter{AppName: "lammps"}
	rows := e.Advice(f, pareto.ByTime)
	if len(rows) == 0 {
		t.Fatal("no advice")
	}
	rows[0].CostUSD = -1
	again := e.Advice(f, pareto.ByTime)
	if again[0].CostUSD == -1 {
		t.Fatal("caller mutation leaked into the cache")
	}
}

func TestSingleFlightCollapsesThunderingHerd(t *testing.T) {
	store := fixtureStore(200)
	e := New(store, 0)
	f := dataset.Filter{AppName: "openfoam"}

	var computes int32
	release := make(chan struct{})
	testHookCompute = func() {
		atomic.AddInt32(&computes, 1)
		<-release
	}
	defer func() { testHookCompute = nil }()

	const herd = 50
	var wg sync.WaitGroup
	results := make([]string, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.AdviceTable(f, pareto.ByTime)
		}(i)
	}
	// Let the herd arrive while the first computation is held open, then
	// release it.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	// One herd-wide computation of the table key plus its one nested front
	// computation — independent of herd size.
	if n := atomic.LoadInt32(&computes); n != 2 {
		t.Fatalf("herd of %d computed %d times, want 2 (table + nested front)", herd, n)
	}
	for i := 1; i < herd; i++ {
		if results[i] != results[0] {
			t.Fatal("herd members saw different results")
		}
	}
}

func TestLRUEvictionBoundsCache(t *testing.T) {
	store := fixtureStore(50)
	e := New(store, 4)
	for n := 1; n <= 10; n++ {
		e.Advice(dataset.Filter{MinNodes: n}, pareto.ByTime)
	}
	if got := e.Len(); got > 4 {
		t.Fatalf("cache holds %d entries, bound is 4", got)
	}
	st := e.Stats()
	if st.Evictions != 6 {
		t.Errorf("evictions = %d, want 6", st.Evictions)
	}
	// Evicted keys still answer correctly (recomputed).
	rows := e.Advice(dataset.Filter{MinNodes: 1}, pareto.ByTime)
	if len(rows) == 0 {
		t.Fatal("evicted query returned nothing")
	}
}

func TestConcurrentQueriesVsAppends(t *testing.T) {
	// Run with -race: readers on every engine surface while a writer
	// appends. No locks are shared between them beyond the store's own.
	store := fixtureStore(100)
	e := New(store, 64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			store.Add(dataset.Point{
				ScenarioID: fmt.Sprintf("live%d", i), AppName: "lammps",
				SKU: "Standard_HC44rs", SKUAlias: "hc44rs", NNodes: 1 + i%8,
				ExecTimeSec: float64(i + 1), CostUSD: 1,
			})
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			f := dataset.Filter{AppName: "lammps"}
			for i := 0; i < 100; i++ {
				_ = e.Advice(f, pareto.ByCost)
				_ = e.AdviceTable(f, pareto.ByTime)
				_ = e.GroupSeries(f)
				_ = e.PlotSet(f)
				if _, err := e.SVG("speedup", f); err != nil {
					panic(err)
				}
			}
		}(r)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestSVGUnknownName(t *testing.T) {
	e := New(fixtureStore(5), 0)
	if _, err := e.SVG("nonsense", dataset.Filter{}); err == nil {
		t.Fatal("unknown plot name must error")
	}
}

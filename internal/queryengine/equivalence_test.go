package queryengine_test

// Byte-identity of the served artifacts: the indexed, cached engine path
// must produce exactly the bytes the seed scan path produced — advice
// tables, plot sets, and rendered SVGs — on a real collected sweep.

import (
	"bytes"
	"reflect"
	"testing"

	"hpcadvisor/internal/config"
	"hpcadvisor/internal/core"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/plot"
	"hpcadvisor/internal/pricing"
	"hpcadvisor/internal/queryengine"
)

const sweepConfig = `subscription: mysubscription
skus:
  - Standard_HB120rs_v3
  - Standard_HB120rs_v2
  - Standard_HC44rs
rgprefix: eqtest
nnodes: [1, 2, 4, 8, 16]
appname: lammps
region: southcentralus
ppr: 100
appinputs:
  BOXFACTOR: "30"
`

func collectedAdvisor(t *testing.T) *core.Advisor {
	t.Helper()
	cfg, err := config.Parse([]byte(sweepConfig))
	if err != nil {
		t.Fatal(err)
	}
	adv := core.New(cfg.Subscription)
	dep, err := adv.DeployCreate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Collect(dep.Name, cfg, core.CollectOptions{}); err != nil {
		t.Fatal(err)
	}
	return adv
}

// scanSource serves plots through the seed path: full scans via SelectScan,
// grouped without indexes. It is the pre-engine reference.
type scanSource struct{ store *dataset.Store }

func (s scanSource) Select(f dataset.Filter) []dataset.Point { return s.store.SelectScan(f) }

func (s scanSource) GroupSeries(f dataset.Filter) map[dataset.SeriesKey][]dataset.Point {
	out := make(map[dataset.SeriesKey][]dataset.Point)
	for _, p := range s.store.SelectScan(f) {
		k := dataset.SeriesKey{SKUAlias: p.SKUAlias, InputDesc: p.InputDesc}
		out[k] = append(out[k], p)
	}
	return out
}

var equivalenceFilters = []dataset.Filter{
	{},
	{AppName: "lammps"},
	{AppName: "LAMMPS", SKU: "hb120rs_v3"},
	{SKU: "Standard_HC44rs"},
	{AppName: "lammps", MinNodes: 2, MaxNodes: 8},
	{AppName: "nosuchapp"},
}

func TestAdviceTableByteIdenticalToScanPath(t *testing.T) {
	adv := collectedAdvisor(t)
	eng := queryengine.New(adv.Store, 0)
	for _, f := range equivalenceFilters {
		for _, order := range []pareto.SortOrder{pareto.ByTime, pareto.ByCost} {
			want := pareto.FormatAdviceTable(pareto.Advice(adv.Store.SelectScan(f), order))
			got := eng.AdviceTable(f, order)
			if got != want {
				t.Errorf("filter %+v order %v: advice table diverges\n--- scan path:\n%s--- engine:\n%s", f, order, want, got)
			}
			// And through the advisor façade, twice (second serve is cached).
			if adv.AdviceTable(f, order) != want || adv.AdviceTable(f, order) != want {
				t.Errorf("filter %+v order %v: advisor table diverges", f, order)
			}
		}
	}
}

// hotFilters enumerates every filter the snapshot may have precomputed a
// front for: unfiltered plus each single app/alias/input.
func hotFilters(sn *dataset.Snapshot) []dataset.Filter {
	filters := []dataset.Filter{{}}
	for _, app := range sn.Apps() {
		filters = append(filters, dataset.Filter{AppName: app})
	}
	for _, alias := range sn.SKUAliases() {
		filters = append(filters, dataset.Filter{SKU: alias})
	}
	for _, in := range sn.Inputs() {
		if in != "" {
			filters = append(filters, dataset.Filter{InputDesc: in})
		}
	}
	return filters
}

// The precomputed hot fronts serve through Engine.Advice; every row set
// must equal pareto.Advice over the scan baseline — same points, same
// order — for the hot filters and the cold multi-field ones alike, on a
// real collected sweep.
func TestHotFrontAdviceByteIdenticalToScanPath(t *testing.T) {
	adv := collectedAdvisor(t)
	eng := queryengine.New(adv.Store, 0)
	filters := append(hotFilters(adv.Store.Snapshot()), equivalenceFilters...)
	for _, f := range filters {
		for _, order := range []pareto.SortOrder{pareto.ByTime, pareto.ByCost} {
			want := pareto.Advice(adv.Store.SelectScan(f), order)
			if want == nil {
				want = []dataset.Point{} // Advice hands out non-nil copies
			}
			got := eng.Advice(f, order)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("filter %+v order %v: advice rows diverge from scan path (%d vs %d rows)",
					f, order, len(got), len(want))
			}
			// The formatted table goes through the same cached rows.
			wantTable := pareto.FormatAdviceTable(want)
			if gotTable := eng.AdviceTable(f, order); gotTable != wantTable {
				t.Errorf("filter %+v order %v: advice table diverges\n--- scan:\n%s--- engine:\n%s",
					f, order, wantTable, gotTable)
			}
		}
	}
	// Generation roll: appends must invalidate the precomputed fronts too.
	adv.Store.Add(dataset.Point{ScenarioID: "hot-roll", AppName: "lammps", SKU: "Standard_HC44rs",
		SKUAlias: "hc44rs", NNodes: 3, ExecTimeSec: 0.001, CostUSD: 0.0001})
	f := dataset.Filter{AppName: "lammps"}
	want := pareto.Advice(adv.Store.SelectScan(f), pareto.ByTime)
	if got := eng.Advice(f, pareto.ByTime); !reflect.DeepEqual(got, want) {
		t.Errorf("after append: hot front served stale rows (%d vs %d)", len(got), len(want))
	}
}

func TestPlotSetAndSVGByteIdenticalToScanPath(t *testing.T) {
	adv := collectedAdvisor(t)
	eng := queryengine.New(adv.Store, 0)
	for _, f := range equivalenceFilters {
		wantSet := plot.BuildSet(scanSource{adv.Store}, f)
		gotSet := eng.PlotSet(f)
		if !reflect.DeepEqual(wantSet, gotSet) {
			t.Errorf("filter %+v: plot set diverges from scan path", f)
		}
		for _, name := range plot.SetNames {
			p, _ := wantSet.ByName(name)
			want := plot.RenderSVG(p)
			got, err := eng.SVG(name, f)
			if err != nil {
				t.Fatalf("SVG(%s): %v", name, err)
			}
			if !bytes.Equal(want, got) {
				t.Errorf("filter %+v plot %s: SVG bytes diverge", f, name)
			}
			// Cached serve stays identical.
			again, _ := eng.SVG(name, f)
			if !bytes.Equal(want, again) {
				t.Errorf("filter %+v plot %s: cached SVG diverges", f, name)
			}
		}
	}
}

func TestRepriceAdviceMatchesPerPointLookups(t *testing.T) {
	adv := collectedAdvisor(t)
	f := dataset.Filter{AppName: "lammps"}
	for _, spot := range []bool{false, true} {
		got, err := adv.RepriceAdvice(f, pareto.ByTime, "westeurope", spot)
		if err != nil {
			t.Fatalf("spot=%v: %v", spot, err)
		}
		// Reference: the original per-point lookup.
		pts := adv.Store.SelectScan(f)
		repriced := make([]dataset.Point, 0, len(pts))
		for _, p := range pts {
			var hourly float64
			if spot {
				hourly, err = adv.Prices.HourlySpot("westeurope", p.SKU)
			} else {
				hourly, err = adv.Prices.Hourly("westeurope", p.SKU)
			}
			if err != nil {
				t.Fatal(err)
			}
			p.CostUSD = pricing.CostAt(hourly, p.NNodes, p.ExecTimeSec)
			repriced = append(repriced, p)
		}
		want := pareto.Advice(repriced, pareto.ByTime)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("spot=%v: repriced advice diverges from per-point path", spot)
		}
	}
	if _, err := adv.RepriceAdvice(f, pareto.ByTime, "nowhere", false); err == nil {
		t.Error("unknown region must error")
	}
}

func TestEngineRebindsWhenStoreSwapped(t *testing.T) {
	adv := collectedAdvisor(t)
	before := adv.AdviceTable(dataset.Filter{}, pareto.ByTime)
	// Swap in an empty dataset the way the CLI rehydrates state; cached
	// results must not leak across stores — via SetStore or direct field
	// assignment.
	adv.SetStore(dataset.NewStore())
	if rows := adv.Advice(dataset.Filter{}, pareto.ByTime); len(rows) != 0 {
		t.Fatalf("engine served %d rows from the old store after SetStore", len(rows))
	}
	old := dataset.NewStore()
	old.Add(dataset.Point{ScenarioID: "x", AppName: "lammps", SKUAlias: "hb120rs_v3", NNodes: 1, ExecTimeSec: 10, CostUSD: 1})
	adv.Store = old // public-field swap, the integration tests' idiom
	if rows := adv.Advice(dataset.Filter{}, pareto.ByTime); len(rows) != 1 {
		t.Fatalf("engine did not rebind after direct Store swap: %d rows", len(rows))
	}
	_ = before
}

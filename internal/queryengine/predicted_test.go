package queryengine

import (
	"bytes"
	"strings"
	"testing"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/predictor"
	"hpcadvisor/internal/pricing"
)

// amdahlStore builds a store whose points follow a clean Amdahl curve, so
// the predictor's quality gate passes.
func amdahlStore(nodes []int) *dataset.Store {
	s := dataset.NewStore()
	for _, n := range nodes {
		sec := 1000 * (0.05 + 0.95/float64(n))
		s.Add(dataset.Point{
			ScenarioID:  "m-n" + string(rune('a'+n)),
			AppName:     "lammps",
			SKU:         "Standard_HB120rs_v3",
			SKUAlias:    "hb120rs_v3",
			NNodes:      n,
			PPN:         120,
			InputDesc:   "atoms=864M",
			ExecTimeSec: sec,
			CostUSD:     float64(n) * sec * 3.6 / 3600,
		})
	}
	return s
}

func predictedConfig(grid ...int) predictor.Config {
	return predictor.Config{Prices: pricing.Default(), Region: "southcentralus", Grid: grid}
}

func TestPredictedAdviceMemoizedAndInvalidatedByGeneration(t *testing.T) {
	store := amdahlStore([]int{1, 2, 4, 8})
	e := New(store, 0)
	f := dataset.Filter{AppName: "lammps"}
	cfg := predictedConfig(1, 2, 4, 8, 16, 32)

	first := e.PredictedAdviceTable(f, pareto.ByTime, cfg)
	if !strings.Contains(first, "predicted/") {
		t.Fatalf("table lacks predicted rows:\n%s", first)
	}
	// Cold table = table miss + rows miss.
	if got := e.Stats(); got.Misses != 2 || got.Hits != 0 {
		t.Fatalf("cold stats = %+v", got)
	}
	if second := e.PredictedAdviceTable(f, pareto.ByTime, cfg); second != first {
		t.Fatal("repeated predicted table changed")
	}
	if got := e.Stats(); got.Hits != 1 {
		t.Fatalf("warm stats = %+v", got)
	}
	// A different grid is a different key.
	e.PredictedAdviceTable(f, pareto.ByTime, predictedConfig(1, 2, 4, 8, 64))
	if got := e.Stats(); got.Misses != 4 {
		t.Fatalf("distinct config shared a key: %+v", got)
	}

	// Measuring one predicted node count invalidates by generation, and the
	// fresh result replaces that prediction with the measurement.
	sec := 1000 * (0.05 + 0.95/16)
	store.Add(dataset.Point{
		ScenarioID: "measured-16", AppName: "lammps",
		SKU: "Standard_HB120rs_v3", SKUAlias: "hb120rs_v3",
		NNodes: 16, PPN: 120, InputDesc: "atoms=864M",
		ExecTimeSec: sec, CostUSD: 16 * sec * 3.6 / 3600,
	})
	rows := e.PredictedAdvice(f, pareto.ByTime, cfg)
	for _, r := range rows {
		if r.NNodes == 16 && r.Predicted {
			t.Errorf("measured node count still served as predicted: %+v", r)
		}
	}
}

func TestPredictedAdviceEquivalentToDirectPredictor(t *testing.T) {
	store := amdahlStore([]int{1, 2, 4, 8})
	e := New(store, 0)
	f := dataset.Filter{AppName: "lammps"}
	cfg := predictedConfig(1, 2, 4, 8, 16, 32)
	for _, order := range []pareto.SortOrder{pareto.ByTime, pareto.ByCost} {
		want := predictor.FormatAdviceTable(predictor.Advice(store.Select(f), cfg, order))
		got := e.PredictedAdviceTable(f, order, cfg)
		if got != want {
			t.Errorf("engine table diverges from direct predictor:\n--- engine\n%s--- direct\n%s", got, want)
		}
	}
	wantBack := predictor.Backtest(store.Select(f), cfg)
	if gotBack := e.Backtest(f, cfg); gotBack != wantBack {
		t.Errorf("engine backtest = %+v, direct = %+v", gotBack, wantBack)
	}
}

func TestPredictedSVGMemoizedAndMarked(t *testing.T) {
	store := amdahlStore([]int{1, 2, 4, 8})
	e := New(store, 0)
	f := dataset.Filter{}
	cfg := predictedConfig(1, 2, 4, 8, 16, 32)

	svg, err := e.PredictedSVG("exectime_vs_nodes", f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(svg, []byte("stroke-dasharray")) || !bytes.Contains(svg, []byte("(predicted)")) {
		t.Error("predicted SVG lacks overlay marking")
	}
	again, err := e.PredictedSVG("exectime_vs_nodes", f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if &svg[0] != &again[0] {
		t.Error("repeated predicted SVG was re-rendered instead of cached")
	}
	if _, err := e.PredictedSVG("nope", f, cfg); err == nil {
		t.Error("unknown plot name must error")
	}
	// The plain SVG stays overlay-free: the kinds do not bleed into each
	// other.
	plain, err := e.SVG("exectime_vs_nodes", f)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain, []byte("(predicted)")) {
		t.Error("plain SVG gained the predicted overlay")
	}
}

func TestPredictedAdviceReturnsDefensiveCopy(t *testing.T) {
	e := New(amdahlStore([]int{1, 2, 4, 8}), 0)
	f := dataset.Filter{AppName: "lammps"}
	cfg := predictedConfig(1, 2, 4, 8, 16)
	rows := e.PredictedAdvice(f, pareto.ByTime, cfg)
	if len(rows) == 0 {
		t.Fatal("no predicted advice")
	}
	rows[0].ScenarioID = "mutated"
	fresh := e.PredictedAdvice(f, pareto.ByTime, cfg)
	if fresh[0].ScenarioID == "mutated" {
		t.Error("cache shared its backing slice with the caller")
	}
}

package catalog

import (
	"errors"
	"strings"
	"testing"
)

func TestDefaultContainsPaperSKUs(t *testing.T) {
	c := Default()
	for _, name := range []string{"Standard_HC44rs", "Standard_HB120rs_v2", "Standard_HB120rs_v3"} {
		s, err := c.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if s.Name != name {
			t.Errorf("Lookup(%q).Name = %q", name, s.Name)
		}
		if !s.Interconnect.RDMA() {
			t.Errorf("%s should be RDMA capable", name)
		}
	}
}

func TestPaperSKUCoreCounts(t *testing.T) {
	// The paper describes the three VM types as having 44, 120, and 120
	// cores, reaching 1,920 cores at 16 nodes of the HB types.
	c := Default()
	cases := map[string]int{
		"hc44rs":     44,
		"hb120rs_v2": 120,
		"hb120rs_v3": 120,
	}
	for alias, cores := range cases {
		s := c.MustLookup(alias)
		if s.PhysicalCores != cores {
			t.Errorf("%s cores = %d, want %d", alias, s.PhysicalCores, cores)
		}
	}
	if got := c.MustLookup("hb120rs_v3").TotalCores(16); got != 1920 {
		t.Errorf("16x hb120rs_v3 = %d cores, want 1920", got)
	}
}

func TestLookupIsCaseAndPrefixInsensitive(t *testing.T) {
	c := Default()
	variants := []string{
		"Standard_HB120rs_v3", "standard_hb120rs_v3", "HB120rs_v3", "hb120rs_v3", "HB120RS_V3",
	}
	for _, v := range variants {
		if _, err := c.Lookup(v); err != nil {
			t.Errorf("Lookup(%q) failed: %v", v, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	c := Default()
	_, err := c.Lookup("Standard_Nonexistent_v9")
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, ErrUnknownSKU) {
		t.Errorf("error %v should wrap ErrUnknownSKU", err)
	}
	if !strings.Contains(err.Error(), "Nonexistent") {
		t.Errorf("error %v should name the SKU", err)
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup on unknown SKU should panic")
		}
	}()
	Default().MustLookup("nope")
}

func TestRegionFiltering(t *testing.T) {
	c := Default()
	south := c.InRegion("southcentralus")
	if len(south) == 0 {
		t.Fatal("no SKUs in southcentralus")
	}
	foundHB := false
	for _, s := range south {
		if s.Alias == "hb120rs_v3" {
			foundHB = true
		}
		if !s.AvailableIn("southcentralus") {
			t.Errorf("%s returned by InRegion but not AvailableIn", s.Name)
		}
	}
	if !foundHB {
		t.Error("hb120rs_v3 missing from southcentralus")
	}
	if got := c.InRegion("no-such-region"); len(got) != 0 {
		t.Errorf("InRegion(bogus) = %d SKUs", len(got))
	}
	// westus2 has no InfiniBand capacity in the simulation.
	for _, s := range c.InRegion("westus2") {
		if s.Interconnect.RDMA() {
			t.Errorf("%s is RDMA but listed in westus2", s.Name)
		}
	}
}

func TestInterconnectRDMA(t *testing.T) {
	if (Interconnect{Kind: Ethernet}).RDMA() {
		t.Error("ethernet is not RDMA")
	}
	for _, k := range []InterconnectKind{IBEDR, IBHDR, IBNDR} {
		if !(Interconnect{Kind: k}).RDMA() {
			t.Errorf("%s should be RDMA", k)
		}
	}
}

func TestCatalogInvariants(t *testing.T) {
	c := Default()
	if c.Len() < 8 {
		t.Fatalf("catalog has %d SKUs, want at least 8", c.Len())
	}
	seenAlias := map[string]bool{}
	for _, name := range c.Names() {
		s := c.MustLookup(name)
		if s.PhysicalCores <= 0 {
			t.Errorf("%s: nonpositive cores", name)
		}
		if s.MemoryGB <= 0 || s.MemBWGBs <= 0 || s.L3CacheMB <= 0 {
			t.Errorf("%s: nonpositive memory attributes", name)
		}
		if s.CoreScore <= 0 {
			t.Errorf("%s: nonpositive core score", name)
		}
		if s.Interconnect.BandwidthGbps <= 0 || s.Interconnect.LatencyUS <= 0 {
			t.Errorf("%s: nonpositive interconnect attributes", name)
		}
		if len(s.Regions) == 0 {
			t.Errorf("%s: no regions", name)
		}
		if s.BootSeconds <= 0 {
			t.Errorf("%s: nonpositive boot time", name)
		}
		if !strings.HasPrefix(s.Name, "Standard_") {
			t.Errorf("%s: name should carry Standard_ prefix", name)
		}
		if s.Alias == "" || strings.Contains(s.Alias, "Standard") {
			t.Errorf("%s: bad alias %q", name, s.Alias)
		}
		if seenAlias[s.Alias] {
			t.Errorf("duplicate alias %q", s.Alias)
		}
		seenAlias[s.Alias] = true
		// Memory-bandwidth ranking sanity: HBM-class SKUs not modeled, but
		// per-core bandwidth must be physically plausible (0.5-10 GB/s/core).
		perCore := s.MemBWGBs / float64(s.PhysicalCores)
		if perCore < 0.5 || perCore > 10 {
			t.Errorf("%s: %.2f GB/s per core is implausible", name, perCore)
		}
	}
}

func TestRelativePerformanceOrdering(t *testing.T) {
	// The paper's figures show hb120rs_v3 beating hb120rs_v2 at equal node
	// counts; the catalog must make v3 at least as strong per core.
	c := Default()
	v2 := c.MustLookup("hb120rs_v2")
	v3 := c.MustLookup("hb120rs_v3")
	if v3.CoreScore <= v2.CoreScore {
		t.Errorf("v3 core score %.2f should exceed v2 %.2f", v3.CoreScore, v2.CoreScore)
	}
	hc := c.MustLookup("hc44rs")
	if hc.PhysicalCores >= v2.PhysicalCores {
		t.Error("hc44rs should have fewer cores than hb120rs_v2")
	}
}

func TestSKUStringer(t *testing.T) {
	s := Default().MustLookup("hb120rs_v3")
	str := s.String()
	for _, want := range []string{"Standard_HB120rs_v3", "120", "ib-hdr"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestCustomCatalog(t *testing.T) {
	c := New([]SKU{{Name: "Standard_Test_v1", Alias: "test_v1", PhysicalCores: 8}})
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, err := c.Lookup("test_v1"); err != nil {
		t.Fatalf("alias lookup failed: %v", err)
	}
}

// Package catalog describes the virtual machine types (SKUs) available to
// the simulated cloud. Each SKU carries the hardware attributes the
// application performance models need: core count, memory size and
// bandwidth, last-level cache, a relative per-core application throughput
// score, and the interconnect.
//
// The catalog includes the three SKUs evaluated in the paper (Standard_HC44rs,
// Standard_HB120rs_v2, Standard_HB120rs_v3) with their real published
// hardware characteristics, plus a wider set of HPC and general-purpose
// SKUs so sweeps beyond the paper's are possible.
package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// InterconnectKind classifies the network between nodes of a pool.
type InterconnectKind string

// Interconnect kinds, from slowest to fastest.
const (
	Ethernet InterconnectKind = "ethernet"
	IBEDR    InterconnectKind = "ib-edr" // InfiniBand EDR, 100 Gb/s
	IBHDR    InterconnectKind = "ib-hdr" // InfiniBand HDR, 200 Gb/s
	IBNDR    InterconnectKind = "ib-ndr" // InfiniBand NDR, 400 Gb/s
)

// Interconnect describes the inter-node network of a SKU.
type Interconnect struct {
	Kind          InterconnectKind
	BandwidthGbps float64 // per-node injection bandwidth
	LatencyUS     float64 // one-way small-message latency, microseconds
}

// RDMA reports whether the interconnect supports RDMA (any InfiniBand
// flavor). Non-RDMA SKUs are rejected for multi-node MPI pools, matching the
// constraint Azure Batch imposes on inter-node communication pools.
func (ic Interconnect) RDMA() bool { return ic.Kind != Ethernet }

// SKU is one virtual machine type.
type SKU struct {
	// Name is the full resource name, e.g. "Standard_HB120rs_v3".
	Name string
	// Alias is the short label used in plots and advice tables, e.g.
	// "hb120rs_v3" (the paper's figures use this form).
	Alias string
	// Family groups SKUs for quota accounting, e.g. "HBv3".
	Family string
	// PhysicalCores is the number of physical cores exposed to the guest
	// (HPC SKUs disable SMT, so this equals the vCPU count).
	PhysicalCores int
	// MemoryGB is the RAM size.
	MemoryGB float64
	// MemBWGBs is the sustainable memory bandwidth (STREAM triad scale).
	MemBWGBs float64
	// L3CacheMB is the total last-level cache.
	L3CacheMB float64
	// CoreScore is the relative per-core application throughput versus the
	// HC44rs Skylake baseline (1.0).
	CoreScore float64
	// Interconnect is the inter-node network.
	Interconnect Interconnect
	// Regions where the SKU can be provisioned.
	Regions []string
	// BootSeconds is the typical node provisioning + boot latency.
	BootSeconds float64
}

// String implements fmt.Stringer.
func (s SKU) String() string {
	return fmt.Sprintf("%s (%d cores, %.0f GB, %s)", s.Name, s.PhysicalCores, s.MemoryGB, s.Interconnect.Kind)
}

// TotalCores returns cores for n nodes of this SKU.
func (s SKU) TotalCores(n int) int { return s.PhysicalCores * n }

// AvailableIn reports whether the SKU can be provisioned in region.
func (s SKU) AvailableIn(region string) bool {
	for _, r := range s.Regions {
		if r == region {
			return true
		}
	}
	return false
}

// Catalog is a queryable set of SKUs.
type Catalog struct {
	skus map[string]SKU // keyed by canonical lower-case name
}

// ErrUnknownSKU is returned (wrapped) when a SKU name is not in the catalog.
var ErrUnknownSKU = fmt.Errorf("catalog: unknown SKU")

// New builds a catalog from the given SKUs.
func New(skus []SKU) *Catalog {
	c := &Catalog{skus: make(map[string]SKU, len(skus))}
	for _, s := range skus {
		c.skus[canonical(s.Name)] = s
	}
	return c
}

// Default returns the built-in catalog.
func Default() *Catalog { return New(builtinSKUs()) }

func canonical(name string) string {
	n := strings.ToLower(name)
	n = strings.TrimPrefix(n, "standard_")
	return n
}

// Lookup resolves a SKU by full name ("Standard_HB120rs_v3") or alias
// ("hb120rs_v3"), case-insensitively.
func (c *Catalog) Lookup(name string) (SKU, error) {
	if s, ok := c.skus[canonical(name)]; ok {
		return s, nil
	}
	return SKU{}, fmt.Errorf("%w: %q", ErrUnknownSKU, name)
}

// MustLookup is Lookup for statically known names; it panics on failure.
func (c *Catalog) MustLookup(name string) SKU {
	s, err := c.Lookup(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns all SKU names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.skus))
	for _, s := range c.skus {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// InRegion returns the SKUs available in region, sorted by name.
func (c *Catalog) InRegion(region string) []SKU {
	var out []SKU
	for _, s := range c.skus {
		if s.AvailableIn(region) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of SKUs in the catalog.
func (c *Catalog) Len() int { return len(c.skus) }

// hpcRegions are regions with HPC (InfiniBand) capacity in the simulation.
var hpcRegions = []string{"southcentralus", "eastus", "westeurope"}

// allRegions adds regions with only general-purpose capacity.
var allRegions = []string{"southcentralus", "eastus", "westeurope", "westus2", "northeurope"}

// builtinSKUs returns the default SKU set. Hardware attributes for the HB/HC
// series follow Azure's published specifications; CoreScore is a relative
// application-throughput calibration used by the performance models.
func builtinSKUs() []SKU {
	return []SKU{
		// --- The three SKUs evaluated in the paper ---
		{
			Name: "Standard_HC44rs", Alias: "hc44rs", Family: "HC",
			PhysicalCores: 44, MemoryGB: 352, MemBWGBs: 190, L3CacheMB: 66,
			CoreScore:    1.00, // Intel Xeon Platinum 8168 (Skylake)
			Interconnect: Interconnect{Kind: IBEDR, BandwidthGbps: 100, LatencyUS: 1.7},
			Regions:      hpcRegions, BootSeconds: 300,
		},
		{
			Name: "Standard_HB120rs_v2", Alias: "hb120rs_v2", Family: "HBv2",
			PhysicalCores: 120, MemoryGB: 456, MemBWGBs: 350, L3CacheMB: 480,
			CoreScore:    0.92, // AMD EPYC 7V12 (Rome)
			Interconnect: Interconnect{Kind: IBHDR, BandwidthGbps: 200, LatencyUS: 1.5},
			Regions:      hpcRegions, BootSeconds: 300,
		},
		{
			Name: "Standard_HB120rs_v3", Alias: "hb120rs_v3", Family: "HBv3",
			PhysicalCores: 120, MemoryGB: 448, MemBWGBs: 350, L3CacheMB: 480,
			CoreScore:    1.05, // AMD EPYC 7V73X (Milan-X)
			Interconnect: Interconnect{Kind: IBHDR, BandwidthGbps: 200, LatencyUS: 1.4},
			Regions:      hpcRegions, BootSeconds: 300,
		},

		// --- Newer HPC SKUs for wider sweeps ---
		{
			Name: "Standard_HB176rs_v4", Alias: "hb176rs_v4", Family: "HBv4",
			PhysicalCores: 176, MemoryGB: 768, MemBWGBs: 780, L3CacheMB: 2304,
			CoreScore:    1.45, // AMD EPYC 9V33X (Genoa-X)
			Interconnect: Interconnect{Kind: IBNDR, BandwidthGbps: 400, LatencyUS: 1.2},
			Regions:      []string{"southcentralus", "eastus"}, BootSeconds: 300,
		},
		{
			Name: "Standard_HX176rs", Alias: "hx176rs", Family: "HX",
			PhysicalCores: 176, MemoryGB: 1408, MemBWGBs: 780, L3CacheMB: 2304,
			CoreScore:    1.45,
			Interconnect: Interconnect{Kind: IBNDR, BandwidthGbps: 400, LatencyUS: 1.2},
			Regions:      []string{"eastus"}, BootSeconds: 300,
		},

		// --- General purpose / compute optimized (no RDMA) ---
		{
			Name: "Standard_D64s_v5", Alias: "d64s_v5", Family: "Dsv5",
			PhysicalCores: 32, MemoryGB: 256, MemBWGBs: 120, L3CacheMB: 48,
			CoreScore:    1.10, // Ice Lake, SMT on (64 vCPU = 32 cores)
			Interconnect: Interconnect{Kind: Ethernet, BandwidthGbps: 30, LatencyUS: 30},
			Regions:      allRegions, BootSeconds: 120,
		},
		{
			Name: "Standard_E64s_v5", Alias: "e64s_v5", Family: "Esv5",
			PhysicalCores: 32, MemoryGB: 512, MemBWGBs: 120, L3CacheMB: 48,
			CoreScore:    1.10,
			Interconnect: Interconnect{Kind: Ethernet, BandwidthGbps: 30, LatencyUS: 30},
			Regions:      allRegions, BootSeconds: 120,
		},
		{
			Name: "Standard_F72s_v2", Alias: "f72s_v2", Family: "Fsv2",
			PhysicalCores: 36, MemoryGB: 144, MemBWGBs: 110, L3CacheMB: 50,
			CoreScore:    1.02,
			Interconnect: Interconnect{Kind: Ethernet, BandwidthGbps: 30, LatencyUS: 30},
			Regions:      allRegions, BootSeconds: 120,
		},
		{
			Name: "Standard_F64s_v2", Alias: "f64s_v2", Family: "Fsv2",
			PhysicalCores: 32, MemoryGB: 128, MemBWGBs: 110, L3CacheMB: 44,
			CoreScore:    1.02,
			Interconnect: Interconnect{Kind: Ethernet, BandwidthGbps: 30, LatencyUS: 30},
			Regions:      allRegions, BootSeconds: 120,
		},

		// --- Older HPC generations, still useful for crossover studies ---
		{
			Name: "Standard_HB60rs", Alias: "hb60rs", Family: "HB",
			PhysicalCores: 60, MemoryGB: 228, MemBWGBs: 260, L3CacheMB: 240,
			CoreScore:    0.78, // AMD EPYC 7551 (Naples)
			Interconnect: Interconnect{Kind: IBEDR, BandwidthGbps: 100, LatencyUS: 1.7},
			Regions:      hpcRegions, BootSeconds: 300,
		},
		{
			Name: "Standard_H16r", Alias: "h16r", Family: "H",
			PhysicalCores: 16, MemoryGB: 112, MemBWGBs: 75, L3CacheMB: 40,
			CoreScore:    0.85, // Intel Xeon E5-2667 v3 (Haswell)
			Interconnect: Interconnect{Kind: IBEDR, BandwidthGbps: 56, LatencyUS: 2.6},
			Regions:      []string{"southcentralus", "westeurope"}, BootSeconds: 300,
		},
	}
}

// Package service is the transport-agnostic request layer between the
// front ends and the query engine. It owns everything that used to be
// scattered across GUI handlers and CLI subcommands: parsing and validating
// filter/sort/predict parameters into canonical dataset.Filter + option
// structs (parse.go), typed errors separating caller mistakes from missing
// resources and server faults (errors.go), and the request execution
// itself. The HTML GUI, the versioned JSON API, and the terminal commands
// are three renderings of the results produced here — none of them touches
// the query engine directly for request-shaped work.
package service

import (
	"encoding/json"
	"sort"
	"strconv"

	"hpcadvisor/internal/core"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/monitor"
	"hpcadvisor/internal/pareto"
	"hpcadvisor/internal/plot"
	"hpcadvisor/internal/predictor"
	"hpcadvisor/internal/queryengine"
	"hpcadvisor/internal/scenario"
	"hpcadvisor/internal/storage"
)

// DefaultRegion prices predictions when a request names no region.
const DefaultRegion = "southcentralus"

// Service executes parsed requests against one advisor's query engine. It
// holds no mutable state and is safe for concurrent use — every read goes
// through the engine's immutable snapshots and memoized results.
type Service struct {
	adv           *core.Advisor
	defaultRegion string

	// replication, when set (at wiring time, before serving starts), reports
	// the process's role in a replicated fleet for /healthz and /metrics.
	replication func() ReplicationStatus
}

// ReplicationStatus is a serving process's position in a replicated fleet,
// reported by whatever replication machinery the process runs (the service
// layer stays transport- and protocol-agnostic).
type ReplicationStatus struct {
	// Role is "leader" (writable, shipping its log) or "follower"
	// (read-only, applying a leader's log). Processes without replication
	// report no status at all.
	Role      string `json:"role"`
	LeaderURL string `json:"leader_url,omitempty"`
	// Applied and LeaderPoints are log positions in points; Lag is their gap
	// at the last sync. All zero on a leader.
	Applied      int  `json:"applied_points,omitempty"`
	LeaderPoints int  `json:"leader_points,omitempty"`
	Lag          int  `json:"lag_points"`
	Synced       bool `json:"synced"`
	// Fault marks a follower that stopped replicating (permanent
	// divergence); it still serves its last-good dataset.
	Fault string `json:"fault,omitempty"`
}

// SetReplication installs the fleet-status provider. Call before the mux
// starts serving; a nil provider (the default) means standalone.
func (s *Service) SetReplication(fn func() ReplicationStatus) { s.replication = fn }

// Replication reports the fleet status, or ok=false for a standalone
// process.
func (s *Service) Replication() (ReplicationStatus, bool) {
	if s.replication == nil {
		return ReplicationStatus{}, false
	}
	return s.replication(), true
}

// New builds a service pricing predictions in DefaultRegion when a request
// names none.
func New(adv *core.Advisor) *Service { return NewWithRegion(adv, "") }

// NewWithRegion builds a service whose predictions default to region when
// a request names none. The serving commands pass the deployment's
// configured region, so the HTML and JSON transports on one mux price
// identical requests identically; empty falls back to DefaultRegion.
func NewWithRegion(adv *core.Advisor, region string) *Service {
	if region == "" {
		region = DefaultRegion
	}
	return &Service{adv: adv, defaultRegion: region}
}

// Advisor exposes the underlying advisor for transports that also drive
// mutations (the GUI's deploy/collect pages).
func (s *Service) Advisor() *core.Advisor { return s.adv }

// AdviceRequest asks for the Pareto front over the filtered dataset.
type AdviceRequest struct {
	Filter dataset.Filter
	Order  pareto.SortOrder
}

// PredictRequest asks for the merged measured+predicted front (or its
// backtest) over the filtered dataset.
type PredictRequest struct {
	Filter dataset.Filter
	Order  pareto.SortOrder
	// Region prices synthesized points; empty means DefaultRegion.
	Region string
	// Grid is the node counts to predict at; empty derives from the data.
	Grid []int
}

// PlotRequest asks for one named plot, optionally with the prediction
// overlay.
type PlotRequest struct {
	Name      string
	Filter    dataset.Filter
	Predicted bool
	// Region and Grid configure the overlay; ignored unless Predicted.
	Region string
	Grid   []int
}

// AdviceResult is the Pareto front plus the store generation it was served
// at — the API's ETag and the invariant tying a response to one snapshot.
type AdviceResult struct {
	Generation uint64          `json:"generation"`
	Rows       []dataset.Point `json:"rows"`
}

// PredictedResult is the merged front with provenance markings.
type PredictedResult struct {
	Generation uint64          `json:"generation"`
	Rows       []predictor.Row `json:"rows"`
}

// BacktestResult carries the leave-one-out report.
type BacktestResult struct {
	Generation uint64                   `json:"generation"`
	Report     predictor.BacktestReport `json:"report"`
}

// DatasetInfo describes the served dataset: size, distinct dimensions, and
// (when a persistent store is attached) the on-disk state.
type DatasetInfo struct {
	Generation uint64        `json:"generation"`
	Points     int           `json:"points"`
	Apps       []string      `json:"apps"`
	SKUs       []string      `json:"skus"`
	Inputs     []string      `json:"inputs"`
	Storage    *storage.Info `json:"storage,omitempty"`
}

// DeploymentScenarios is one deployment's scenario task list. Tasks are
// copies taken under the advisor's registry lock, never the live structs a
// collection mutates.
type DeploymentScenarios struct {
	Deployment string          `json:"deployment"`
	Tasks      []scenario.Task `json:"tasks"`
}

func (s *Service) engine() *queryengine.Engine { return s.adv.Engine() }

// Generation returns the current dataset generation — the value the API
// folds into ETags. Any append changes it, so revalidation against it is
// exact.
func (s *Service) Generation() uint64 {
	return s.engine().Generation()
}

// Advice returns the Pareto front for the request, computed at one pinned
// snapshot so Generation names exactly the state the rows came from. Empty
// rows are a valid result (nothing matched), not an error — transports
// choose how to render emptiness.
func (s *Service) Advice(req AdviceRequest) (AdviceResult, error) {
	eng := s.engine()
	sn := eng.Snapshot()
	return AdviceResult{
		Generation: sn.Generation(),
		Rows:       eng.AdviceAt(sn, req.Filter, req.Order),
	}, nil
}

// AdviceTable renders the request's front exactly as the paper's Listings
// 3-4, from the engine's table cache.
func (s *Service) AdviceTable(req AdviceRequest) (string, error) {
	return s.engine().AdviceTable(req.Filter, req.Order), nil
}

// AdvicePage returns the front and its rendered table from one pinned
// snapshot, for transports displaying both — the row count and the table
// can never disagree, even mid-append.
func (s *Service) AdvicePage(req AdviceRequest) (AdviceResult, string, error) {
	eng := s.engine()
	sn := eng.Snapshot()
	res := AdviceResult{
		Generation: sn.Generation(),
		Rows:       eng.AdviceAt(sn, req.Filter, req.Order),
	}
	return res, eng.AdviceTableAt(sn, req.Filter, req.Order), nil
}

// AdviceResponse is the wire envelope of /api/v1/advice.
type AdviceResponse struct {
	Generation uint64          `json:"generation"`
	Sort       string          `json:"sort"`
	Count      int             `json:"count"`
	Rows       []dataset.Point `json:"rows"`
}

// OrderName renders the canonical name of a sort order ("time" or "cost").
func OrderName(o pareto.SortOrder) string {
	if o == pareto.ByCost {
		return "cost"
	}
	return "time"
}

// AdviceJSON returns the encoded /api/v1/advice body plus the generation
// it was rendered at, memoized per (filter, order, generation) through the
// query engine — the API's hot response is rendered once per generation
// and then served as shared bytes, so the JSON path sustains engine-level
// throughput. The body, its embedded generation field, and the returned
// generation all come from the same pinned snapshot, so the API's ETag can
// never disagree with the bytes under it. The returned bytes are shared
// with the cache and must not be modified.
func (s *Service) AdviceJSON(req AdviceRequest) ([]byte, uint64, error) {
	eng := s.engine()
	sn := eng.Snapshot()
	v := eng.CachedAt(sn, "service.advicejson", req.Filter, OrderName(req.Order), func(sn *dataset.Snapshot) any {
		// Hot filters skip encoding/json entirely: the snapshot holds the
		// front rows pre-serialized, and only the tiny envelope is stitched
		// around them. The stitch is byte-identical to the reflect marshal
		// below (TestAdviceJSONStitchedEqualsMarshal pins it), so clients
		// and the ETag machinery cannot tell which path rendered a body.
		c := req.Filter.Canonical()
		if rowsJSON, count, ok := sn.HotAdviceJSON(&c, req.Order == pareto.ByCost); ok {
			return stitchAdviceJSON(sn.Generation(), OrderName(req.Order), count, rowsJSON)
		}
		rows := pareto.Advice(sn.Select(req.Filter), req.Order)
		if rows == nil {
			rows = []dataset.Point{}
		}
		data, err := json.Marshal(AdviceResponse{
			Generation: sn.Generation(),
			Sort:       OrderName(req.Order),
			Count:      len(rows),
			Rows:       rows,
		})
		if err != nil {
			return err
		}
		return data
	})
	if err, ok := v.(error); ok {
		return nil, 0, Internalf(err, "encoding advice")
	}
	return v.([]byte), sn.Generation(), nil
}

// stitchAdviceJSON renders the AdviceResponse envelope around a
// pre-serialized rows fragment without reflection. The field order and
// byte layout match json.Marshal of the struct exactly; sort names are
// fixed tokens ("time"/"cost"), so no escaping is needed.
func stitchAdviceJSON(gen uint64, sortName string, count int, rowsJSON []byte) []byte {
	buf := make([]byte, 0, len(rowsJSON)+len(sortName)+48)
	buf = append(buf, `{"generation":`...)
	buf = strconv.AppendUint(buf, gen, 10)
	buf = append(buf, `,"sort":"`...)
	buf = append(buf, sortName...)
	buf = append(buf, `","count":`...)
	buf = strconv.AppendInt(buf, int64(count), 10)
	buf = append(buf, `,"rows":`...)
	buf = append(buf, rowsJSON...)
	return append(buf, '}')
}

// PredictedResponse is the wire envelope of /api/v1/predicted-advice: the
// merged front with provenance markings plus the backtest that bounds how
// far to trust it, both computed from one snapshot.
type PredictedResponse struct {
	Generation uint64                   `json:"generation"`
	Sort       string                   `json:"sort"`
	Count      int                      `json:"count"`
	Rows       []predictor.Row          `json:"rows"`
	Backtest   predictor.BacktestReport `json:"backtest"`
}

// PredictedAdviceJSON returns the encoded /api/v1/predicted-advice body
// plus its generation, memoized like AdviceJSON. Rows and backtest are
// derived from the same pinned snapshot, so they can never mix
// generations.
func (s *Service) PredictedAdviceJSON(req PredictRequest) ([]byte, uint64, error) {
	eng := s.engine()
	sn := eng.Snapshot()
	cfg := s.predictorConfig(req.Region, req.Grid)
	extra := OrderName(req.Order) + "|" + cfg.Key()
	v := eng.CachedAt(sn, "service.predjson", req.Filter, extra, func(sn *dataset.Snapshot) any {
		rows := eng.PredictedAdviceAt(sn, req.Filter, req.Order, cfg)
		if rows == nil {
			rows = []predictor.Row{}
		}
		data, err := json.Marshal(PredictedResponse{
			Generation: sn.Generation(),
			Sort:       OrderName(req.Order),
			Count:      len(rows),
			Rows:       rows,
			Backtest:   eng.BacktestAt(sn, req.Filter, cfg),
		})
		if err != nil {
			return err
		}
		return data
	})
	if err, ok := v.(error); ok {
		return nil, 0, Internalf(err, "encoding predicted advice")
	}
	return v.([]byte), sn.Generation(), nil
}

// predictorConfig resolves the request's prediction options against the
// advisor's price book.
func (s *Service) predictorConfig(region string, grid []int) predictor.Config {
	if region == "" {
		region = s.defaultRegion
	}
	return s.adv.PredictorConfig(region, grid)
}

// PredictedAdvice returns the merged measured+predicted front, computed at
// one pinned snapshot.
func (s *Service) PredictedAdvice(req PredictRequest) (PredictedResult, error) {
	eng := s.engine()
	sn := eng.Snapshot()
	cfg := s.predictorConfig(req.Region, req.Grid)
	return PredictedResult{
		Generation: sn.Generation(),
		Rows:       eng.PredictedAdviceAt(sn, req.Filter, req.Order, cfg),
	}, nil
}

// PredictedAdviceTable renders the merged front with Source markings.
func (s *Service) PredictedAdviceTable(req PredictRequest) (string, error) {
	cfg := s.predictorConfig(req.Region, req.Grid)
	return s.engine().PredictedAdviceTable(req.Filter, req.Order, cfg), nil
}

// PredictedAdvicePage returns the merged front, its rendered table, and
// the backtest, all from one pinned snapshot — a page composed of the
// three can never mix generations.
func (s *Service) PredictedAdvicePage(req PredictRequest) (PredictedResult, string, predictor.BacktestReport, error) {
	eng := s.engine()
	sn := eng.Snapshot()
	cfg := s.predictorConfig(req.Region, req.Grid)
	res := PredictedResult{
		Generation: sn.Generation(),
		Rows:       eng.PredictedAdviceAt(sn, req.Filter, req.Order, cfg),
	}
	table := eng.PredictedAdviceTableAt(sn, req.Filter, req.Order, cfg)
	return res, table, eng.BacktestAt(sn, req.Filter, cfg), nil
}

// Backtest runs the leave-one-out evaluation of the scaling models behind
// the request's predictions, at one pinned snapshot.
func (s *Service) Backtest(req PredictRequest) (BacktestResult, error) {
	eng := s.engine()
	sn := eng.Snapshot()
	cfg := s.predictorConfig(req.Region, req.Grid)
	return BacktestResult{
		Generation: sn.Generation(),
		Report:     eng.BacktestAt(sn, req.Filter, cfg),
	}, nil
}

// PlotNames lists the valid plot names, in presentation order.
func PlotNames() []string { return plot.SetNames }

// Plots returns the full plot set for the request's filter (the CLI's
// ASCII path); with Predicted it carries the overlay series.
func (s *Service) Plots(req PlotRequest) (plot.Set, error) {
	if req.Predicted {
		return s.engine().PredictedPlotSet(req.Filter, s.predictorConfig(req.Region, req.Grid)), nil
	}
	return s.engine().PlotSet(req.Filter), nil
}

// PlotSVG renders the named plot as SVG bytes from the engine's SVG cache,
// pinned to one snapshot whose generation is returned alongside the bytes.
// Unknown names are KindNotFound; a render failure on a valid name is
// KindInternal — transports must not collapse the two.
func (s *Service) PlotSVG(req PlotRequest) ([]byte, uint64, error) {
	if _, ok := (plot.Set{}).ByName(req.Name); !ok {
		return nil, 0, NotFoundf("unknown plot %q (want one of %v)", req.Name, plot.SetNames)
	}
	eng := s.engine()
	sn := eng.Snapshot()
	var data []byte
	var err error
	if req.Predicted {
		data, err = eng.PredictedSVGAt(sn, req.Name, req.Filter, s.predictorConfig(req.Region, req.Grid))
	} else {
		data, err = eng.SVGAt(sn, req.Name, req.Filter)
	}
	if err != nil {
		return nil, 0, Internalf(err, "rendering plot %q", req.Name)
	}
	return data, sn.Generation(), nil
}

// WritePlotsSVG renders the request's full plot set into dir — one .svg
// per canonical plot name — and returns the written paths. It shares
// core's single write loop, so the CLI, the Go API, and examples emit
// identical artifacts.
func (s *Service) WritePlotsSVG(req PlotRequest, dir string) ([]string, error) {
	if req.Predicted {
		return s.adv.WritePredictedPlotsSVG(dir, req.Filter, s.predictorConfig(req.Region, req.Grid))
	}
	return s.adv.WritePlotsSVG(dir, req.Filter)
}

// Dataset describes the served dataset at its current generation.
func (s *Service) Dataset() (DatasetInfo, error) {
	sn := s.engine().Snapshot()
	info := DatasetInfo{
		Generation: sn.Generation(),
		Points:     sn.Len(),
		Apps:       sn.Apps(),
		SKUs:       sn.SKUAliases(),
		Inputs:     sn.Inputs(),
	}
	if b := s.adv.Backend; b != nil {
		si, err := b.Info()
		if err != nil {
			return DatasetInfo{}, Internalf(err, "reading storage info")
		}
		info.Storage = &si
	}
	return info, nil
}

// Scenarios returns every deployment's scenario task list, sorted by
// deployment name. Deployments without a started collection are omitted.
// Task states are copied under the advisor's registry lock, so marshaling
// the result can never race a live collection.
func (s *Service) Scenarios() ([]DeploymentScenarios, error) {
	var out []DeploymentScenarios
	for _, name := range s.adv.Deployments() {
		tasks := s.adv.ScenarioTasks(name)
		if tasks == nil {
			continue
		}
		out = append(out, DeploymentScenarios{Deployment: name, Tasks: tasks})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Deployment < out[j].Deployment })
	return out, nil
}

// EngineStats exposes the query engine's cache counters for /metrics.
func (s *Service) EngineStats() queryengine.Stats {
	return s.engine().Stats()
}

// CollectionStats snapshots the advisor's collection-resilience counters
// (attempts by failure class, retries, breaker state, resume accounting)
// for /metrics.
func (s *Service) CollectionStats() monitor.CollectionSnapshot {
	return s.adv.Collection.Snapshot()
}

package service

import (
	"errors"
	"fmt"
)

// Kind classifies a service error so every transport (JSON API, HTML GUI,
// CLI exit paths) maps the same failure to the same class of response
// without string matching.
type Kind int

const (
	// KindInternal is the zero value: the request was well-formed and named
	// an existing resource, but serving it failed.
	KindInternal Kind = iota
	// KindBadRequest marks malformed input: an unparseable filter bound, an
	// unknown sort order, a bad prediction grid.
	KindBadRequest
	// KindNotFound marks requests naming a resource that does not exist,
	// e.g. an unknown plot name.
	KindNotFound
)

// String renders the kind for error prefixes and logs.
func (k Kind) String() string {
	switch k {
	case KindBadRequest:
		return "bad request"
	case KindNotFound:
		return "not found"
	}
	return "internal"
}

// Error is a classified service failure.
type Error struct {
	kind Kind
	msg  string
	err  error // wrapped cause, may be nil
}

// Error renders the message; the kind is carried separately so transports
// decide how (and whether) to expose it.
func (e *Error) Error() string {
	if e.err != nil && e.msg != "" {
		return e.msg + ": " + e.err.Error()
	}
	if e.err != nil {
		return e.err.Error()
	}
	return e.msg
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.err }

// Kind returns the error's classification.
func (e *Error) Kind() Kind { return e.kind }

// BadRequestf builds a KindBadRequest error.
func BadRequestf(format string, args ...any) error {
	return &Error{kind: KindBadRequest, msg: fmt.Sprintf(format, args...)}
}

// NotFoundf builds a KindNotFound error.
func NotFoundf(format string, args ...any) error {
	return &Error{kind: KindNotFound, msg: fmt.Sprintf(format, args...)}
}

// Internalf builds a KindInternal error wrapping a cause.
func Internalf(err error, format string, args ...any) error {
	return &Error{kind: KindInternal, msg: fmt.Sprintf(format, args...), err: err}
}

// KindOf classifies any error: service errors report their kind, everything
// else (including wrapped service errors) is internal unless a *Error is
// found in the chain.
func KindOf(err error) Kind {
	var se *Error
	if errors.As(err, &se) {
		return se.Kind()
	}
	return KindInternal
}

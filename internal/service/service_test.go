package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"reflect"
	"strings"
	"testing"

	"hpcadvisor/internal/core"
	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
)

func seededAdvisor(t testing.TB) *core.Advisor {
	t.Helper()
	adv := core.New("svc-test")
	for i := 0; i < 40; i++ {
		adv.Store.Add(dataset.Point{
			ScenarioID:  fmt.Sprintf("s-%d", i),
			AppName:     []string{"lammps", "openfoam"}[i%2],
			SKU:         []string{"Standard_HB120rs_v3", "Standard_HC44rs"}[i%2],
			SKUAlias:    []string{"hb120rs_v3", "hc44rs"}[i%2],
			NNodes:      1 << (i % 4),
			PPN:         100,
			InputDesc:   "atoms=864M",
			ExecTimeSec: float64(1000 / (1 + i%4)),
			CostUSD:     float64(1+i%4) * 0.5,
		})
	}
	return adv
}

func TestParseFilter(t *testing.T) {
	cases := []struct {
		name  string
		query string
		want  dataset.Filter
		bad   bool
	}{
		{name: "empty", query: "", want: dataset.Filter{}},
		{name: "full", query: "app=lammps&sku=hb120rs_v3&input=atoms%3D864M&minnodes=2&maxnodes=8",
			want: dataset.Filter{AppName: "lammps", SKU: "hb120rs_v3", InputDesc: "atoms=864M", MinNodes: 2, MaxNodes: 8}},
		{name: "junk minnodes", query: "minnodes=abc", bad: true},
		{name: "zero minnodes", query: "minnodes=0", bad: true},
		{name: "negative maxnodes", query: "maxnodes=-1", bad: true},
		{name: "inverted range", query: "minnodes=8&maxnodes=2", bad: true},
		{name: "ampersand in app survives", query: "app=my%26app", want: dataset.Filter{AppName: "my&app"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := url.ParseQuery(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			f, err := ParseFilter(q)
			if tc.bad {
				if err == nil {
					t.Fatalf("ParseFilter(%q) succeeded, want bad request", tc.query)
				}
				if KindOf(err) != KindBadRequest {
					t.Fatalf("kind = %v, want bad request", KindOf(err))
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseFilter(%q): %v", tc.query, err)
			}
			if !reflect.DeepEqual(f, tc.want) {
				t.Fatalf("ParseFilter(%q) = %+v, want %+v", tc.query, f, tc.want)
			}
		})
	}
}

func TestParseOrderAndGrid(t *testing.T) {
	if o, err := ParseOrder(""); err != nil || o != pareto.ByTime {
		t.Fatalf("empty order = %v, %v", o, err)
	}
	if o, err := ParseOrder("cost"); err != nil || o != pareto.ByCost {
		t.Fatalf("cost order = %v, %v", o, err)
	}
	if _, err := ParseOrder("sideways"); KindOf(err) != KindBadRequest {
		t.Fatalf("bad order kind = %v, want bad request", KindOf(err))
	}
	if g, err := ParseGrid(" 1, 2 ,4"); err != nil || !reflect.DeepEqual(g, []int{1, 2, 4}) {
		t.Fatalf("grid = %v, %v", g, err)
	}
	if g, err := ParseGrid("  "); err != nil || g != nil {
		t.Fatalf("blank grid = %v, %v", g, err)
	}
	for _, bad := range []string{"1,zero", "0", "-3", "1,,2"} {
		if _, err := ParseGrid(bad); KindOf(err) != KindBadRequest {
			t.Fatalf("grid %q kind = %v, want bad request", bad, KindOf(err))
		}
	}
}

func TestParsePlotRequestPredFlag(t *testing.T) {
	for s, want := range map[string]bool{"": false, "0": false, "1": true, "true": true} {
		req, err := ParsePlotRequest("pareto", url.Values{"pred": {s}})
		if err != nil || req.Predicted != want {
			t.Fatalf("pred=%q -> %v, %v (want %v)", s, req.Predicted, err, want)
		}
	}
	if _, err := ParsePlotRequest("pareto", url.Values{"pred": {"maybe"}}); KindOf(err) != KindBadRequest {
		t.Fatal("pred=maybe should be a bad request")
	}
}

func TestErrorKinds(t *testing.T) {
	if KindOf(BadRequestf("x")) != KindBadRequest {
		t.Error("BadRequestf kind")
	}
	if KindOf(NotFoundf("x")) != KindNotFound {
		t.Error("NotFoundf kind")
	}
	cause := errors.New("boom")
	err := Internalf(cause, "rendering")
	if KindOf(err) != KindInternal || !errors.Is(err, cause) {
		t.Error("Internalf kind or unwrap")
	}
	// Arbitrary errors classify as internal.
	if KindOf(errors.New("nope")) != KindInternal {
		t.Error("plain error should be internal")
	}
	// Wrapped service errors keep their kind through fmt wrapping.
	if KindOf(fmt.Errorf("ctx: %w", NotFoundf("gone"))) != KindNotFound {
		t.Error("wrapped kind lost")
	}
}

// TestAdviceMatchesAdvisor pins the service to the advisor's own advice
// path: one code path, two entry points.
func TestAdviceMatchesAdvisor(t *testing.T) {
	adv := seededAdvisor(t)
	svc := New(adv)
	for _, q := range []string{"", "app=lammps", "sku=hc44rs&sort=cost", "minnodes=2&maxnodes=8"} {
		vals, _ := url.ParseQuery(q)
		req, err := ParseAdviceRequest(vals)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		res, err := svc.Advice(req)
		if err != nil {
			t.Fatalf("advice %q: %v", q, err)
		}
		want := adv.Advice(req.Filter, req.Order)
		if !reflect.DeepEqual(res.Rows, want) {
			t.Fatalf("service advice for %q diverges from advisor", q)
		}
		if res.Generation != adv.Store.Generation() {
			t.Fatalf("generation = %d, want %d", res.Generation, adv.Store.Generation())
		}
		table, err := svc.AdviceTable(req)
		if err != nil || table != adv.AdviceTable(req.Filter, req.Order) {
			t.Fatalf("table diverges for %q", q)
		}
	}
}

func TestPlotSVGTypedErrors(t *testing.T) {
	adv := seededAdvisor(t)
	svc := New(adv)
	if _, _, err := svc.PlotSVG(PlotRequest{Name: "nonsense"}); KindOf(err) != KindNotFound {
		t.Fatalf("unknown plot kind = %v, want not found", KindOf(err))
	}
	data, gen, err := svc.PlotSVG(PlotRequest{Name: "pareto"})
	if err != nil || !strings.HasPrefix(string(data), "<svg") {
		t.Fatalf("pareto plot = %v, %.20q", err, data)
	}
	if gen != adv.Store.Generation() {
		t.Fatalf("plot generation = %d, want %d", gen, adv.Store.Generation())
	}
	// The overlay path renders too, with the default region applied.
	data, _, err = svc.PlotSVG(PlotRequest{Name: "exectime_vs_nodes", Predicted: true})
	if err != nil || !strings.HasPrefix(string(data), "<svg") {
		t.Fatalf("predicted plot = %v", err)
	}
}

func TestDatasetInfo(t *testing.T) {
	adv := seededAdvisor(t)
	svc := New(adv)
	info, err := svc.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if info.Points != adv.Store.Len() || info.Generation != adv.Store.Generation() {
		t.Fatalf("info = %+v", info)
	}
	if !reflect.DeepEqual(info.Apps, []string{"lammps", "openfoam"}) {
		t.Fatalf("apps = %v", info.Apps)
	}
	if !reflect.DeepEqual(info.SKUs, []string{"hb120rs_v3", "hc44rs"}) {
		t.Fatalf("skus = %v", info.SKUs)
	}
	if !reflect.DeepEqual(info.Inputs, []string{"atoms=864M"}) {
		t.Fatalf("inputs = %v", info.Inputs)
	}
	if info.Storage != nil {
		t.Fatal("in-memory advisor should have no storage info")
	}
}

func TestGenerationMovesWithAppends(t *testing.T) {
	adv := seededAdvisor(t)
	svc := New(adv)
	before := svc.Generation()
	adv.Store.Add(dataset.Point{ScenarioID: "x", AppName: "lammps", SKU: "s", SKUAlias: "s", NNodes: 1, ExecTimeSec: 1, CostUSD: 1})
	if after := svc.Generation(); after == before {
		t.Fatal("generation did not move on append")
	}
}

// The hot-filter serving path stitches a hand-built envelope around the
// snapshot's pre-serialized rows; the cold path reflect-marshals the same
// struct. The two must be byte-identical for every filter shape — hot,
// cold, and empty-result — or ETagged bodies would differ by which path
// rendered them.
func TestAdviceJSONStitchedEqualsMarshal(t *testing.T) {
	adv := seededAdvisor(t)
	svc := New(adv)
	queries := []string{
		"",                          // hot: unfiltered
		"app=lammps",                // hot: per-app
		"sku=hc44rs",                // hot: per-alias
		"input=atoms%3D864M",        // hot: per-input
		"app=lammps&sort=cost",      // hot, cost order
		"app=lammps&sku=hb120rs_v3", // cold: two fields
		"app=nosuchapp",             // empty result
		"minnodes=2&maxnodes=8",     // cold: scan path
	}
	for _, q := range queries {
		vals, err := url.ParseQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		req, err := ParseAdviceRequest(vals)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		body, gen, err := svc.AdviceJSON(req)
		if err != nil {
			t.Fatalf("advice json %q: %v", q, err)
		}
		rows := pareto.Advice(adv.Store.SelectScan(req.Filter), req.Order)
		if rows == nil {
			rows = []dataset.Point{}
		}
		want, err := json.Marshal(AdviceResponse{
			Generation: gen,
			Sort:       OrderName(req.Order),
			Count:      len(rows),
			Rows:       rows,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("query %q: served body diverges from reflect marshal\n got: %s\nwant: %s", q, body, want)
		}
	}
}

// stitchAdviceJSON must track json.Marshal of the envelope struct exactly,
// including numeric edge values.
func TestStitchAdviceJSONEnvelope(t *testing.T) {
	rows := []byte(`[{"x":1}]`)
	for _, tc := range []struct {
		gen   uint64
		sort  string
		count int
	}{
		{0, "time", 0},
		{1, "cost", 1},
		{18446744073709551615, "time", 1 << 30},
	} {
		got := stitchAdviceJSON(tc.gen, tc.sort, tc.count, rows)
		want := fmt.Sprintf(`{"generation":%d,"sort":%q,"count":%d,"rows":%s}`, tc.gen, tc.sort, tc.count, rows)
		if string(got) != want {
			t.Errorf("stitch(%d,%s,%d):\n got: %s\nwant: %s", tc.gen, tc.sort, tc.count, got, want)
		}
	}
}

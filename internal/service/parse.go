package service

import (
	"net/url"
	"strconv"
	"strings"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/pareto"
)

// This file is the single parse surface for every transport. The GUI
// handlers pass r.URL.Query() straight through; the JSON API does the same;
// the CLI folds its flags into a url.Values and calls the identical
// functions. There is deliberately no second parser anywhere in the tree —
// a filter that means one thing on /advice means exactly the same thing on
// /api/v1/advice and `hpcadvisor advice`.
//
// Query parameters:
//
//	app        application name filter (case-insensitive)
//	sku        SKU full name or alias filter (case-insensitive)
//	input      input description filter (exact)
//	minnodes   minimum node count (integer >= 1)
//	maxnodes   maximum node count (integer >= 1)
//	sort       "time" (default) or "cost"
//	region     pricing region for predictions (default southcentralus)
//	grid       prediction node counts, comma-separated integers >= 1
//	pred       "1"/"true" overlays predictions on plots

// ParseFilter builds the canonical dataset filter from query parameters.
// Malformed numeric bounds and inverted ranges are KindBadRequest errors.
func ParseFilter(q url.Values) (dataset.Filter, error) {
	f := dataset.Filter{
		AppName:   q.Get("app"),
		SKU:       q.Get("sku"),
		InputDesc: q.Get("input"),
	}
	var err error
	if f.MinNodes, err = parseNodeBound(q.Get("minnodes"), "minnodes"); err != nil {
		return dataset.Filter{}, err
	}
	if f.MaxNodes, err = parseNodeBound(q.Get("maxnodes"), "maxnodes"); err != nil {
		return dataset.Filter{}, err
	}
	if f.MinNodes > 0 && f.MaxNodes > 0 && f.MinNodes > f.MaxNodes {
		return dataset.Filter{}, BadRequestf("minnodes %d exceeds maxnodes %d", f.MinNodes, f.MaxNodes)
	}
	return f, nil
}

func parseNodeBound(s, name string) (int, error) {
	if s == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, BadRequestf("invalid %s %q: want an integer >= 1", name, s)
	}
	return n, nil
}

// ParseOrder parses the sort parameter; empty defaults to time order.
func ParseOrder(s string) (pareto.SortOrder, error) {
	switch s {
	case "", "time":
		return pareto.ByTime, nil
	case "cost":
		return pareto.ByCost, nil
	}
	return pareto.ByTime, BadRequestf("unknown sort %q (want time or cost)", s)
}

// ParseGrid parses the prediction grid: comma-separated node counts >= 1.
// Empty means "derive from the measured data".
func ParseGrid(spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []int
	for _, field := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n < 1 {
			return nil, BadRequestf("invalid grid %q: want comma-separated node counts >= 1", spec)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParseAdviceRequest parses filter and ordering for an advice query.
func ParseAdviceRequest(q url.Values) (AdviceRequest, error) {
	f, err := ParseFilter(q)
	if err != nil {
		return AdviceRequest{}, err
	}
	order, err := ParseOrder(q.Get("sort"))
	if err != nil {
		return AdviceRequest{}, err
	}
	return AdviceRequest{Filter: f, Order: order}, nil
}

// ParsePredictRequest parses filter, ordering, and prediction options for a
// predicted-advice or backtest query. An empty region falls back to
// DefaultRegion when the request is served.
func ParsePredictRequest(q url.Values) (PredictRequest, error) {
	base, err := ParseAdviceRequest(q)
	if err != nil {
		return PredictRequest{}, err
	}
	grid, err := ParseGrid(q.Get("grid"))
	if err != nil {
		return PredictRequest{}, err
	}
	return PredictRequest{
		Filter: base.Filter,
		Order:  base.Order,
		Region: q.Get("region"),
		Grid:   grid,
	}, nil
}

// ParsePlotRequest parses a plot request: the plot name plus the shared
// filter and prediction parameters. The name is validated when the request
// is served (unknown names are KindNotFound, not KindBadRequest, because
// they address a missing resource).
func ParsePlotRequest(name string, q url.Values) (PlotRequest, error) {
	f, err := ParseFilter(q)
	if err != nil {
		return PlotRequest{}, err
	}
	pred, err := parsePredFlag(q.Get("pred"))
	if err != nil {
		return PlotRequest{}, err
	}
	grid, err := ParseGrid(q.Get("grid"))
	if err != nil {
		return PlotRequest{}, err
	}
	return PlotRequest{
		Name:      name,
		Filter:    f,
		Predicted: pred,
		Region:    q.Get("region"),
		Grid:      grid,
	}, nil
}

func parsePredFlag(s string) (bool, error) {
	if s == "" {
		return false, nil
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		return false, BadRequestf("invalid pred %q: want a boolean", s)
	}
	return v, nil
}

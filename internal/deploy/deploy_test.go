package deploy

import (
	"errors"
	"strings"
	"testing"

	"hpcadvisor/internal/catalog"
	"hpcadvisor/internal/cloudsim"
	"hpcadvisor/internal/vclock"
)

func newManager() (*Manager, *cloudsim.Cloud) {
	cloud := cloudsim.New(vclock.New(), catalog.Default(), "mysubscription")
	return NewManager(cloud), cloud
}

func baseSpec() Spec {
	return Spec{
		SubscriptionID: "mysubscription",
		RGPrefix:       "hpcadvisortest1",
		Region:         "southcentralus",
	}
}

func TestCreateFollowsSectionIIIBSequence(t *testing.T) {
	m, cloud := newManager()
	d, err := m.Create(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(d.Name, "hpcadvisortest1-") {
		t.Errorf("deployment name %q should carry the rgprefix", d.Name)
	}
	rg, err := cloud.ResourceGroup("mysubscription", d.Name)
	if err != nil {
		t.Fatal(err)
	}
	inv := rg.Inventory()
	if inv.VNets != 1 || inv.Subnets != 1 || inv.Storage != 1 || inv.Batch != 1 {
		t.Errorf("inventory = %+v", inv)
	}
	if inv.VMs != 0 {
		t.Error("no jumpbox requested")
	}
	if d.StorageAccount == "" || d.BatchAccount == "" {
		t.Errorf("deployment record incomplete: %+v", d)
	}
}

func TestCreateWithJumpbox(t *testing.T) {
	m, cloud := newManager()
	spec := baseSpec()
	spec.CreateJumpbox = true
	d, err := m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.JumpboxIP == "" {
		t.Error("jumpbox IP missing")
	}
	rg, _ := cloud.ResourceGroup("mysubscription", d.Name)
	if rg.Inventory().VMs != 1 {
		t.Error("jumpbox VM not provisioned")
	}
}

func TestCreateWithVPNPeering(t *testing.T) {
	m, cloud := newManager()
	// Pre-existing VPN environment, as the paper describes.
	if _, err := cloud.CreateResourceGroup("mysubscription", "vpn-rg", "southcentralus"); err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.CreateVNet("mysubscription", "vpn-rg", "vpn-vnet", "10.8.0.0/16"); err != nil {
		t.Fatal(err)
	}
	spec := baseSpec()
	spec.PeerVPN = true
	spec.VPNRG = "vpn-rg"
	spec.VPNVNet = "vpn-vnet"
	d, err := m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.PeeredTo != "vpn-rg/vpn-vnet" {
		t.Errorf("PeeredTo = %q", d.PeeredTo)
	}
}

func TestCreatePeeringValidation(t *testing.T) {
	m, _ := newManager()
	spec := baseSpec()
	spec.PeerVPN = true // missing names
	if _, err := m.Create(spec); err == nil {
		t.Error("peering without vnet names should fail")
	}
}

func TestCreateValidatesSpec(t *testing.T) {
	m, _ := newManager()
	for _, mutate := range []func(*Spec){
		func(s *Spec) { s.SubscriptionID = "" },
		func(s *Spec) { s.RGPrefix = "" },
		func(s *Spec) { s.Region = "" },
	} {
		spec := baseSpec()
		mutate(&spec)
		if _, err := m.Create(spec); err == nil {
			t.Errorf("spec %+v should fail", spec)
		}
	}
}

func TestCreateCleansUpOnMidFailure(t *testing.T) {
	m, cloud := newManager()
	boom := errors.New("allocation failure")
	cloud.InjectFault("CreateBatchAccount", boom)
	if _, err := m.Create(baseSpec()); !errors.Is(err, boom) {
		t.Fatalf("expected injected failure, got %v", err)
	}
	// The partially created group must have been deleted.
	groups, err := cloud.ListResourceGroups("mysubscription", "hpcadvisortest1")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Errorf("leftover groups after failed create: %v", groups)
	}
}

func TestMultipleDeploymentsAndList(t *testing.T) {
	m, _ := newManager()
	d1, err := m.Create(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := m.Create(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	if d1.Name == d2.Name {
		t.Errorf("deployments must have distinct names: %s", d1.Name)
	}
	invs, err := m.List("mysubscription", "hpcadvisortest1")
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 2 {
		t.Fatalf("list = %d, want 2", len(invs))
	}
}

func TestShutdown(t *testing.T) {
	m, _ := newManager()
	d, err := m.Create(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown("mysubscription", d.Name); err != nil {
		t.Fatal(err)
	}
	invs, _ := m.List("mysubscription", "hpcadvisortest1")
	if len(invs) != 0 {
		t.Errorf("deployment still listed after shutdown")
	}
	if err := m.Shutdown("mysubscription", d.Name); err == nil {
		t.Error("double shutdown should fail")
	}
}

func TestStorageAccountNameDerivation(t *testing.T) {
	cases := map[string]string{
		"hpcadvisortest1-0001": "hpcadvisortest10001stor",
		"UPPER-case":           "uppercasestor",
		"a":                    "astor",
		"very-long-prefix-that-exceeds-the-limit-0001": "texceedsthelimit0001stor",
	}
	for in, want := range cases {
		got := storageAccountName(in)
		if got != want {
			t.Errorf("storageAccountName(%q) = %q, want %q", in, got, want)
		}
		if len(got) < 3 || len(got) > 24 {
			t.Errorf("storageAccountName(%q) = %q has invalid length", in, got)
		}
	}
}

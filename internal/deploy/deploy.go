// Package deploy manages deployment lifecycles: creating the cloud
// environment (the paper's Section III-B provisioning sequence), listing
// previous and current deployments, and shutting them down. It corresponds
// to the CLI's "deploy create / deploy list / deploy shutdown" commands
// (paper Table II).
package deploy

import (
	"fmt"
	"strings"

	"hpcadvisor/internal/cloudsim"
)

// Spec describes the environment to create, drawn from the main
// configuration file.
type Spec struct {
	SubscriptionID string
	RGPrefix       string
	Region         string
	CreateJumpbox  bool
	// Optional VPN peering (paper's optional parameters).
	PeerVPN bool
	VPNRG   string
	VPNVNet string
	// JumpboxSKU defaults to a small general-purpose VM.
	JumpboxSKU string
}

// Deployment records a created environment.
type Deployment struct {
	Name           string  `json:"name"` // resource group name
	Region         string  `json:"region"`
	SubscriptionID string  `json:"subscription_id"`
	VNet           string  `json:"vnet"`
	Subnet         string  `json:"subnet"`
	StorageAccount string  `json:"storage_account"`
	BatchAccount   string  `json:"batch_account"`
	JumpboxIP      string  `json:"jumpbox_ip,omitempty"`
	PeeredTo       string  `json:"peered_to,omitempty"`
	CreatedAtSec   float64 `json:"created_at_sec"`
}

// Manager creates and destroys deployments against the simulated cloud.
type Manager struct {
	Cloud *cloudsim.Cloud

	counter int
}

// NewManager returns a deployment manager.
func NewManager(cloud *cloudsim.Cloud) *Manager {
	return &Manager{Cloud: cloud}
}

// Create provisions the full environment following the paper's sequence:
//
//  1. Variables (names derived from the resource-group prefix).
//  2. Basic landing zone: resource group, virtual network, subnet.
//  3. Storage account (batch artifacts + NFS).
//  4. Batch service with no resources.
//  5. Optionally, jumpbox and VPN network peering.
func (m *Manager) Create(spec Spec) (*Deployment, error) {
	if spec.SubscriptionID == "" {
		return nil, fmt.Errorf("deploy: subscription is required")
	}
	if spec.RGPrefix == "" {
		return nil, fmt.Errorf("deploy: rgprefix is required")
	}
	if spec.Region == "" {
		return nil, fmt.Errorf("deploy: region is required")
	}

	// Step 1: variables.
	m.counter++
	rgName := fmt.Sprintf("%s-%04d", spec.RGPrefix, m.counter)
	vnetName := "hpcadvisor-vnet"
	subnetName := "compute"
	storageName := storageAccountName(rgName)
	batchName := "hpcadvisorbatch"

	// Step 2: basic landing zone.
	if _, err := m.Cloud.CreateResourceGroup(spec.SubscriptionID, rgName, spec.Region); err != nil {
		return nil, fmt.Errorf("deploy: creating resource group: %w", err)
	}
	cleanup := func() { _ = m.Cloud.DeleteResourceGroup(spec.SubscriptionID, rgName) }
	if _, err := m.Cloud.CreateVNet(spec.SubscriptionID, rgName, vnetName, "10.0.0.0/16"); err != nil {
		cleanup()
		return nil, fmt.Errorf("deploy: creating vnet: %w", err)
	}
	if _, err := m.Cloud.CreateSubnet(spec.SubscriptionID, rgName, vnetName, subnetName, "10.0.0.0/20"); err != nil {
		cleanup()
		return nil, fmt.Errorf("deploy: creating subnet: %w", err)
	}

	// Step 3: storage account.
	if _, err := m.Cloud.CreateStorageAccount(spec.SubscriptionID, rgName, storageName); err != nil {
		cleanup()
		return nil, fmt.Errorf("deploy: creating storage account: %w", err)
	}

	// Step 4: batch service with no resources.
	if _, err := m.Cloud.CreateBatchAccount(spec.SubscriptionID, rgName, batchName, storageName); err != nil {
		cleanup()
		return nil, fmt.Errorf("deploy: creating batch account: %w", err)
	}

	d := &Deployment{
		Name:           rgName,
		Region:         spec.Region,
		SubscriptionID: spec.SubscriptionID,
		VNet:           vnetName,
		Subnet:         subnetName,
		StorageAccount: storageName,
		BatchAccount:   batchName,
		CreatedAtSec:   m.Cloud.Clock.NowSeconds(),
	}

	// Step 5: optional jumpbox and peering.
	if spec.CreateJumpbox {
		sku := spec.JumpboxSKU
		if sku == "" {
			sku = "Standard_D64s_v5"
		}
		vm, err := m.Cloud.CreateJumpbox(spec.SubscriptionID, rgName, "jumpbox", vnetName, subnetName, sku)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("deploy: creating jumpbox: %w", err)
		}
		d.JumpboxIP = vm.PrivateIP
	}
	if spec.PeerVPN {
		if spec.VPNRG == "" || spec.VPNVNet == "" {
			cleanup()
			return nil, fmt.Errorf("deploy: peervpn requires vpnrg and vpnvnet")
		}
		if _, err := m.Cloud.PeerVNets(spec.SubscriptionID, rgName, vnetName, spec.VPNRG, spec.VPNVNet); err != nil {
			cleanup()
			return nil, fmt.Errorf("deploy: peering vnets: %w", err)
		}
		d.PeeredTo = spec.VPNRG + "/" + spec.VPNVNet
	}
	return d, nil
}

// List returns the names of deployments (resource groups) under a prefix,
// the backing for "deploy list".
func (m *Manager) List(subscriptionID, rgPrefix string) ([]cloudsim.Inventory, error) {
	names, err := m.Cloud.ListResourceGroups(subscriptionID, rgPrefix)
	if err != nil {
		return nil, err
	}
	out := make([]cloudsim.Inventory, 0, len(names))
	for _, n := range names {
		rg, err := m.Cloud.ResourceGroup(subscriptionID, n)
		if err != nil {
			return nil, err
		}
		out = append(out, rg.Inventory())
	}
	return out, nil
}

// Shutdown deletes a deployment and all its resources ("deploy shutdown").
func (m *Manager) Shutdown(subscriptionID, name string) error {
	if err := m.Cloud.DeleteResourceGroup(subscriptionID, name); err != nil {
		return fmt.Errorf("deploy: shutdown %s: %w", name, err)
	}
	return nil
}

// storageAccountName derives a valid (3-24 lowercase alphanumerics) globally
// plausible storage name from the resource-group name.
func storageAccountName(rgName string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(rgName) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	s := b.String() + "stor"
	if len(s) > 24 {
		s = s[len(s)-24:]
	}
	for len(s) < 3 {
		s += "0"
	}
	return s
}

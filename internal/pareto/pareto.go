// Package pareto computes the Pareto front over (execution time, cost) that
// HPCAdvisor presents as advice (paper Section III-E, Figure 6, Listings
// 3-4): the set of executed scenarios not dominated by any other — no other
// scenario is both faster and cheaper.
package pareto

import (
	"fmt"
	"sort"
	"strings"

	"hpcadvisor/internal/dataset"
)

// Dominates reports whether a dominates b: a is no worse in both time and
// cost and strictly better in at least one.
func Dominates(a, b dataset.Point) bool {
	if a.ExecTimeSec > b.ExecTimeSec || a.CostUSD > b.CostUSD {
		return false
	}
	return a.ExecTimeSec < b.ExecTimeSec || a.CostUSD < b.CostUSD
}

// Front returns the Pareto-efficient points among the successful points,
// sorted by ascending execution time. The skyline sweep runs in O(n log n):
// sort by (time, cost) and keep points that strictly lower the running
// minimum cost.
//
// The sort is stable, which pins the tie-break for exact (time, cost)
// duplicates to "first in input order" — the same rule FrontNaive applies —
// and makes the output uniquely determined by the input sequence. The
// snapshot's precomputed hot fronts (dataset.Snapshot.HotAdvice) rely on
// that uniqueness to stay byte-identical to this function without sharing
// its code.
func Front(points []dataset.Point) []dataset.Point {
	var ok []dataset.Point
	for _, p := range points {
		if !p.Failed {
			ok = append(ok, p)
		}
	}
	if len(ok) == 0 {
		return nil
	}
	sort.SliceStable(ok, func(i, j int) bool {
		if ok[i].ExecTimeSec != ok[j].ExecTimeSec {
			return ok[i].ExecTimeSec < ok[j].ExecTimeSec
		}
		return ok[i].CostUSD < ok[j].CostUSD
	})
	var front []dataset.Point
	minCost := ok[0].CostUSD + 1
	for _, p := range ok {
		// The (time, cost) sort guarantees any same-time, higher-cost or
		// duplicate point sees minCost already at or below its own cost.
		if p.CostUSD < minCost {
			front = append(front, p)
			minCost = p.CostUSD
		}
	}
	return front
}

// FrontNaive is the O(n^2) dominance scan. It exists as the correctness
// oracle for property tests and as the baseline for the skyline ablation
// bench.
func FrontNaive(points []dataset.Point) []dataset.Point {
	var ok []dataset.Point
	for _, p := range points {
		if !p.Failed {
			ok = append(ok, p)
		}
	}
	var front []dataset.Point
	for i, p := range ok {
		dominated := false
		for j, q := range ok {
			if i == j {
				continue
			}
			if Dominates(q, p) {
				dominated = true
				break
			}
			// Exact duplicates: keep only the first occurrence.
			if q.ExecTimeSec == p.ExecTimeSec && q.CostUSD == p.CostUSD && j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].ExecTimeSec < front[j].ExecTimeSec })
	return front
}

// SortOrder selects how advice rows are ordered.
type SortOrder int

// Advice orderings: the paper sorts by least execution time by default and
// offers cost ordering as an option.
const (
	ByTime SortOrder = iota
	ByCost
)

// Advice computes the front and orders it for presentation.
func Advice(points []dataset.Point, order SortOrder) []dataset.Point {
	front := Front(points)
	switch order {
	case ByCost:
		sort.Slice(front, func(i, j int) bool { return front[i].CostUSD < front[j].CostUSD })
	default:
		sort.Slice(front, func(i, j int) bool { return front[i].ExecTimeSec < front[j].ExecTimeSec })
	}
	return front
}

// FormatAdviceTable renders the front exactly like the paper's advice
// output (Listings 3 and 4):
//
//	Exectime(s)  Cost($)  Nodes  SKU
//	         34   0.5440     16  hb120rs_v3
func FormatAdviceTable(front []dataset.Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %-6s %s\n", "Exectime(s)", "Cost($)", "Nodes", "SKU")
	for _, p := range front {
		fmt.Fprintf(&b, "%-12.0f %-8.4f %-6d %s\n", p.ExecTimeSec, p.CostUSD, p.NNodes, p.SKUAlias)
	}
	return b.String()
}

// Hypervolume measures the area dominated by the front up to a reference
// point (refTime, refCost); larger is better. The sampler evaluation uses
// the relative hypervolume error between a reduced collection's front and
// the full sweep's front.
func Hypervolume(front []dataset.Point, refTime, refCost float64) float64 {
	f := Front(front) // ensure sorted, non-dominated
	var hv float64
	prevTime := 0.0
	// Sweep time ascending; each point contributes a rectangle from its
	// time to the next point's time, at its cost distance to the
	// reference.
	for i, p := range f {
		if p.ExecTimeSec >= refTime || p.CostUSD >= refCost {
			continue
		}
		start := p.ExecTimeSec
		if start < prevTime {
			start = prevTime
		}
		end := refTime
		if i+1 < len(f) && f[i+1].ExecTimeSec < refTime {
			end = f[i+1].ExecTimeSec
		}
		if end > start {
			hv += (end - start) * (refCost - p.CostUSD)
		}
		prevTime = end
	}
	return hv
}

// FrontIDs returns the scenario IDs of the front, convenient for recall
// computations.
func FrontIDs(points []dataset.Point) map[string]bool {
	out := make(map[string]bool)
	for _, p := range Front(points) {
		out[p.ScenarioID] = true
	}
	return out
}

// Recall computes the fraction of reference-front scenarios recovered by a
// candidate front, in [0, 1].
func Recall(reference, candidate []dataset.Point) float64 {
	ref := FrontIDs(reference)
	if len(ref) == 0 {
		return 1
	}
	cand := FrontIDs(candidate)
	hit := 0
	for id := range ref {
		if cand[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(ref))
}

package pareto

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hpcadvisor/internal/dataset"
)

func pt(id string, t, c float64) dataset.Point {
	return dataset.Point{ScenarioID: id, ExecTimeSec: t, CostUSD: c, SKUAlias: "hb120rs_v3", NNodes: 4}
}

// listing4Points reproduces the paper's Listing 4 situation: the four
// hb120rs_v3 rows plus dominated points from other scales and SKUs.
func listing4Points() []dataset.Point {
	mk := func(id string, t, c float64, n int, alias string) dataset.Point {
		return dataset.Point{ScenarioID: id, ExecTimeSec: t, CostUSD: c, NNodes: n, SKUAlias: alias}
	}
	return []dataset.Point{
		mk("v3-16", 36, 0.5760, 16, "hb120rs_v3"),
		mk("v3-8", 69, 0.5520, 8, "hb120rs_v3"),
		mk("v3-4", 132, 0.5280, 4, "hb120rs_v3"),
		mk("v3-3", 173, 0.5190, 3, "hb120rs_v3"),
		// Dominated: slower and costlier than v3-3 / v3-4.
		mk("v3-2", 310, 0.6200, 2, "hb120rs_v3"),
		mk("v3-1", 961, 0.9610, 1, "hb120rs_v3"),
		mk("v2-16", 43, 0.6880, 16, "hb120rs_v2"),
		mk("hc-16", 99, 1.3940, 16, "hc44rs"),
	}
}

func TestListing4Front(t *testing.T) {
	front := Front(listing4Points())
	if len(front) != 4 {
		t.Fatalf("front = %d rows, want 4 (paper Listing 4)", len(front))
	}
	wantIDs := []string{"v3-16", "v3-8", "v3-4", "v3-3"}
	for i, want := range wantIDs {
		if front[i].ScenarioID != want {
			t.Errorf("front[%d] = %s, want %s", i, front[i].ScenarioID, want)
		}
	}
	// Sorted by ascending execution time with descending cost — the
	// signature shape of a (time, cost) front.
	for i := 1; i < len(front); i++ {
		if front[i].ExecTimeSec <= front[i-1].ExecTimeSec {
			t.Error("front not sorted by time")
		}
		if front[i].CostUSD >= front[i-1].CostUSD {
			t.Error("front cost should strictly decrease along increasing time")
		}
	}
}

func TestDominates(t *testing.T) {
	a := pt("a", 10, 1)
	b := pt("b", 20, 2)
	if !Dominates(a, b) {
		t.Error("a should dominate b")
	}
	if Dominates(b, a) {
		t.Error("b should not dominate a")
	}
	// Equal points do not dominate each other.
	if Dominates(a, a) {
		t.Error("point should not dominate itself")
	}
	// Trade-off points do not dominate.
	c := pt("c", 5, 3)
	if Dominates(a, c) || Dominates(c, a) {
		t.Error("trade-off points should be mutually non-dominated")
	}
	// Equal in one dimension, better in the other.
	d := pt("d", 10, 0.5)
	if !Dominates(d, a) {
		t.Error("same time, cheaper should dominate")
	}
}

func TestFrontExcludesFailedPoints(t *testing.T) {
	pts := []dataset.Point{pt("ok", 10, 1)}
	failed := pt("bad", 1, 0.1)
	failed.Failed = true
	pts = append(pts, failed)
	front := Front(pts)
	if len(front) != 1 || front[0].ScenarioID != "ok" {
		t.Errorf("front = %v", front)
	}
}

func TestFrontEmptyAndSingle(t *testing.T) {
	if Front(nil) != nil {
		t.Error("empty front should be nil")
	}
	front := Front([]dataset.Point{pt("solo", 10, 1)})
	if len(front) != 1 {
		t.Errorf("single point front = %d", len(front))
	}
}

func TestFrontDeduplicatesIdenticalPoints(t *testing.T) {
	pts := []dataset.Point{pt("a", 10, 1), pt("b", 10, 1), pt("c", 10, 1)}
	front := Front(pts)
	if len(front) != 1 {
		t.Errorf("duplicate points front = %d, want 1", len(front))
	}
}

func TestAdviceOrdering(t *testing.T) {
	pts := listing4Points()
	byTime := Advice(pts, ByTime)
	for i := 1; i < len(byTime); i++ {
		if byTime[i].ExecTimeSec < byTime[i-1].ExecTimeSec {
			t.Error("ByTime not sorted")
		}
	}
	byCost := Advice(pts, ByCost)
	for i := 1; i < len(byCost); i++ {
		if byCost[i].CostUSD < byCost[i-1].CostUSD {
			t.Error("ByCost not sorted")
		}
	}
	if byCost[0].ScenarioID != "v3-3" {
		t.Errorf("cheapest first = %s", byCost[0].ScenarioID)
	}
}

func TestFormatAdviceTableMatchesPaperLayout(t *testing.T) {
	table := FormatAdviceTable(Front(listing4Points()))
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 5 {
		t.Fatalf("table lines = %d:\n%s", len(lines), table)
	}
	// Header columns exactly as the paper prints them.
	for _, col := range []string{"Exectime(s)", "Cost($)", "Nodes", "SKU"} {
		if !strings.Contains(lines[0], col) {
			t.Errorf("header %q missing %q", lines[0], col)
		}
	}
	if !strings.Contains(lines[1], "36") || !strings.Contains(lines[1], "0.5760") ||
		!strings.Contains(lines[1], "16") || !strings.Contains(lines[1], "hb120rs_v3") {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestHypervolume(t *testing.T) {
	// A single point at (10, 1) against reference (20, 2) dominates a
	// 10 x 1 rectangle.
	hv := Hypervolume([]dataset.Point{pt("a", 10, 1)}, 20, 2)
	if hv != 10 {
		t.Errorf("hv = %v, want 10", hv)
	}
	// Adding a dominated point changes nothing.
	hv2 := Hypervolume([]dataset.Point{pt("a", 10, 1), pt("b", 15, 1.5)}, 20, 2)
	if hv2 != hv {
		t.Errorf("hv with dominated point = %v", hv2)
	}
	// A second front point adds its own rectangle.
	hv3 := Hypervolume([]dataset.Point{pt("a", 10, 1), pt("c", 15, 0.5)}, 20, 2)
	if hv3 <= hv {
		t.Errorf("hv with extra front point = %v, want > %v", hv3, hv)
	}
	// Points beyond the reference contribute nothing.
	if Hypervolume([]dataset.Point{pt("far", 100, 100)}, 20, 2) != 0 {
		t.Error("out-of-reference point should contribute 0")
	}
}

func TestRecall(t *testing.T) {
	full := listing4Points()
	if r := Recall(full, full); r != 1 {
		t.Errorf("self recall = %v", r)
	}
	// A reduced set missing one front point.
	var reduced []dataset.Point
	for _, p := range full {
		if p.ScenarioID != "v3-3" {
			reduced = append(reduced, p)
		}
	}
	if r := Recall(full, reduced); r != 0.75 {
		t.Errorf("recall = %v, want 0.75", r)
	}
	if r := Recall(nil, reduced); r != 1 {
		t.Errorf("empty reference recall = %v, want 1", r)
	}
}

// Property: the O(n log n) skyline matches the O(n^2) oracle on random
// inputs.
func TestPropertyFrontMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		pts := make([]dataset.Point, n)
		for i := range pts {
			pts[i] = pt(
				string(rune('a'+i%26))+string(rune('0'+i/26)),
				float64(rng.Intn(50)+1),
				float64(rng.Intn(50)+1)/10,
			)
		}
		fast := Front(pts)
		slow := FrontNaive(pts)
		if len(fast) != len(slow) {
			return false
		}
		for i := range fast {
			if fast[i].ExecTimeSec != slow[i].ExecTimeSec || fast[i].CostUSD != slow[i].CostUSD {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: no front member is dominated by any input point, and every
// non-member is dominated by some front member or is a duplicate.
func TestPropertyFrontSoundAndComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]dataset.Point, 30)
		for i := range pts {
			pts[i] = pt(string(rune('a'+i)), float64(rng.Intn(30)+1), float64(rng.Intn(30)+1))
		}
		front := Front(pts)
		inFront := map[string]bool{}
		for _, fp := range front {
			inFront[fp.ScenarioID] = true
			for _, q := range pts {
				if Dominates(q, fp) {
					return false // front member dominated
				}
			}
		}
		for _, p := range pts {
			if inFront[p.ScenarioID] {
				continue
			}
			covered := false
			for _, fp := range front {
				if Dominates(fp, p) || (fp.ExecTimeSec == p.ExecTimeSec && fp.CostUSD == p.CostUSD) {
					covered = true
					break
				}
			}
			if !covered {
				return false // missing point that belongs on the front
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openLog(t *testing.T, path string) (*FrameLog, [][]byte) {
	t.Helper()
	l, payloads, err := OpenFrameLog(path)
	if err != nil {
		t.Fatalf("OpenFrameLog: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l, payloads
}

func TestFrameLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trip.jnl")
	l, payloads := openLog(t, path)
	if len(payloads) != 0 {
		t.Fatalf("fresh log returned %d payloads", len(payloads))
	}
	var want []string
	for i := 0; i < 20; i++ {
		rec := fmt.Sprintf(`{"kind":"outcome","task":"task-%d"}`, i)
		want = append(want, rec)
		if err := l.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Frames() != 20 {
		t.Fatalf("Frames() = %d, want 20", l.Frames())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, got := openLog(t, path)
	if len(got) != len(want) {
		t.Fatalf("reopened %d payloads, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("payload %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFrameLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jnl")
	l, _ := openLog(t, path)
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Cut the file mid-way through the last frame.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, payloads := openLog(t, path)
	if len(payloads) != 4 {
		t.Fatalf("recovered %d payloads, want 4", len(payloads))
	}
	if l2.RecoveredCut() == 0 {
		t.Fatal("recovery reported no cut bytes for a torn tail")
	}
	// Appends after recovery land after the durable prefix.
	if err := l2.Append([]byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := ReadFrameLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 5 || string(again[4]) != "after-recovery" {
		t.Fatalf("post-recovery append did not survive: %d records", len(again))
	}
}

func TestFrameLogCorruptCRCDropsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crc.jnl")
	l, _ := openLog(t, path)
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	size := l.size
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the last frame's payload: CRC mismatch.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, size-2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, payloads := openLog(t, path)
	if len(payloads) != 2 {
		t.Fatalf("recovered %d payloads past a CRC mismatch, want 2", len(payloads))
	}
}

func TestFrameLogRejectsWALSegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jnl")
	if err := os.WriteFile(path, logStream(1, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFrameLog(path); err == nil {
		t.Fatal("OpenFrameLog accepted a WAL segment file")
	}
}

func TestFrameLogReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reset.jnl")
	l, _ := openLog(t, path)
	if err := l.Append([]byte("stale")); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Frames() != 0 {
		t.Fatalf("Frames() after Reset = %d", l.Frames())
	}
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	payloads, err := ReadFrameLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 1 || string(payloads[0]) != "fresh" {
		t.Fatalf("Reset did not clear the log: %d records", len(payloads))
	}
}

func TestReadFrameLogMissingFile(t *testing.T) {
	payloads, err := ReadFrameLog(filepath.Join(t.TempDir(), "absent.jnl"))
	if err != nil || payloads != nil {
		t.Fatalf("missing file: payloads=%v err=%v", payloads, err)
	}
}

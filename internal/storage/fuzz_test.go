package storage

// Fuzz coverage for the two byte-level parsers an attacker (or a torn
// disk) actually reaches: the frame/stream decoder that followers feed
// with replicated bytes, and segment recovery over arbitrary on-disk
// contents. Both must classify garbage — never panic, never over-read.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"hpcadvisor/internal/dataset"
)

// logStream renders a valid log segment header for seq followed by body.
func logStream(seq uint64, body []byte) []byte {
	var hdr [logHeaderSize]byte
	copy(hdr[:8], logMagic)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	return append(hdr[:], body...)
}

// encodedFrames renders n real points as wire frames.
func encodedFrames(tb testing.TB, n int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		payload, err := json.Marshal(point(i))
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := appendFrame(&buf, payload); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

func FuzzFrameDecode(f *testing.F) {
	// Seed with real frame encodings: whole streams, a single frame, a
	// truncated frame, and pure garbage.
	frames := encodedFrames(f, 3)
	f.Add(frames)
	one := encodedFrames(f, 1)
	f.Add(one)
	f.Add(one[:len(one)-3])
	f.Add(one[:frameHeaderSize-2])
	f.Add([]byte{})
	f.Add([]byte("\x99\x12torn-frame-garbage"))
	// A frame with an implausible length prefix must be rejected, not
	// trusted as an allocation size.
	huge := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(huge[:4], maxFramePayload+1)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		// readFrame must terminate with a frame, io.EOF, or a torn-frame
		// error — and consume at most the bytes it reports.
		br := bufio.NewReader(bytes.NewReader(data))
		var off int64
		for {
			payload, err := readFrame(br, off)
			if err == io.EOF {
				break
			}
			if err != nil {
				var torn *tornError
				if !errors.As(err, &torn) {
					t.Fatalf("readFrame returned a non-torn error: %v", err)
				}
				break
			}
			if len(payload) > maxFramePayload {
				t.Fatalf("readFrame returned an over-long payload: %d bytes", len(payload))
			}
			off += frameHeaderSize + int64(len(payload))
			if off > int64(len(data)) {
				t.Fatalf("readFrame consumed past the input: offset %d of %d", off, len(data))
			}
		}

		// The streaming decoder must accept the same bytes fed at any
		// granularity without panicking, and a decode failure must be
		// sticky.
		dec := NewLogStreamDecoder(7)
		stream := logStream(7, data)
		var n int
		failed := false
		for i := 0; i < len(stream); i += 5 {
			end := i + 5
			if end > len(stream) {
				end = len(stream)
			}
			err := dec.Feed(stream[i:end], func(dataset.Point) error { n++; return nil })
			if err != nil {
				failed = true
				if again := dec.Feed(nil, func(dataset.Point) error { return nil }); again == nil {
					t.Fatal("decoder accepted input after a decode failure")
				}
				break
			}
		}
		_ = failed
		_ = n
	})
}

func FuzzJournalDecode(f *testing.F) {
	// Seed with a well-formed frame log, torn tails at several cuts, a
	// wrong-magic file, and garbage. OpenFrameLog must classify each —
	// recover or reject, never panic — and the survivor must keep
	// accepting appends.
	frames := encodedFrames(f, 3)
	valid := append([]byte(frameLogMagic), frames...)
	f.Add(valid)
	f.Add(valid[:len(valid)-4])
	f.Add(valid[:frameLogHeaderSize+3])
	f.Add(valid[:frameLogHeaderSize-2])
	f.Add([]byte(logMagic)) // a WAL segment is not a journal
	f.Add([]byte("garbage that is not framed"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.jnl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, payloads, err := OpenFrameLog(path)
		if err != nil {
			return // rejected as foreign/corrupt — fine, as long as no panic
		}
		for _, p := range payloads {
			if len(p) > maxFramePayload {
				t.Fatalf("recovered an over-long payload: %d bytes", len(p))
			}
		}
		if got := l.Frames(); got != len(payloads) {
			t.Fatalf("Frames() = %d, recovered %d payloads", got, len(payloads))
		}
		// The recovered log must accept appends, and a clean reopen must
		// return the survivors plus the new record.
		if err := l.Append([]byte("probe-record")); err != nil {
			t.Fatalf("recovered frame log rejected an append: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		again, err := ReadFrameLog(path)
		if err != nil {
			t.Fatalf("reread after recovery failed: %v", err)
		}
		if len(again) != len(payloads)+1 {
			t.Fatalf("reread %d payloads, want %d", len(again), len(payloads)+1)
		}
		if string(again[len(again)-1]) != "probe-record" {
			t.Fatalf("appended record did not survive: %q", again[len(again)-1])
		}
	})
}

// v2SnapshotBytes renders a valid v2 columnar snapshot for n points folded
// through seq.
func v2SnapshotBytes(tb testing.TB, n int, seq uint64) []byte {
	tb.Helper()
	pts := make([]dataset.Point, n)
	for i := range pts {
		pts[i] = point(i)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return dataset.PointLess(&pts[order[a]], &pts[order[b]])
	})
	path := filepath.Join(tb.TempDir(), "snap.seg")
	if err := writeSnapshotSegmentV2(path, seq, pts, order); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func FuzzSnapshotOpen(f *testing.F) {
	// Arbitrary bytes in a snapshot segment's place: the v2 header/table
	// parse, section CRC sweep, mmap construction, and the v1 frame parse
	// must classify every input — reject or serve the real data, never
	// panic, never serve garbage. Seeds cover both formats, truncations at
	// header/table/section boundaries, and targeted bit flips.
	valid := v2SnapshotBytes(f, 30, 1)
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:v2HeaderSize])
	f.Add(valid[:v2HeaderSize+v2SecDescSize+5])
	f.Add(valid[:v2Align-1])
	flip := func(i int) []byte {
		b := append([]byte(nil), valid...)
		b[i] ^= 0x20
		return b
	}
	f.Add(flip(3))                // magic
	f.Add(flip(9))                // fold seq
	f.Add(flip(17))               // count
	f.Add(flip(37))               // header CRC
	f.Add(flip(v2HeaderSize + 9)) // a section descriptor offset
	f.Add(flip(len(valid) - 2))   // tail section payload
	f.Add(flip(len(valid) / 2))   // mid-file payload
	f.Add([]byte(snapMagicV2))
	f.Add([]byte("HPASNAP3 future format??"))
	f.Add([]byte{})
	// A v1 snapshot of the same fold exercises the version dispatch.
	v1path := filepath.Join(f.TempDir(), "v1.seg")
	pts := make([]dataset.Point, 5)
	order := make([]int, 5)
	for i := range pts {
		pts[i], order[i] = point(i), i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return dataset.PointLess(&pts[order[a]], &pts[order[b]])
	})
	if err := writeSnapshotSegmentV1(v1path, 1, pts, order); err != nil {
		f.Fatal(err)
	}
	v1, err := os.ReadFile(v1path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v1)
	f.Add(v1[:len(v1)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		seg, err := OpenSegments(dir, nil)
		if err != nil {
			return // rejected at open — fine, as long as no panic
		}
		defer seg.Close()
		st, err := seg.Load()
		if err != nil {
			return // rejected by CRC/bounds — fine
		}
		// A snapshot that loaded must be internally consistent and keep
		// accepting appends.
		sn := st.Snapshot()
		if sn.Len() != st.Len() {
			t.Fatalf("snapshot len %d != store len %d", sn.Len(), st.Len())
		}
		for _, p := range st.Select(dataset.Filter{IncludeFailed: true}) {
			_ = p
		}
		if err := seg.Append(point(1000)); err != nil {
			t.Fatalf("loaded store rejected an append: %v", err)
		}
		if err := seg.Sync(); err != nil {
			t.Fatal(err)
		}
		st2, err := seg.Load()
		if err != nil {
			t.Fatalf("reload after append failed: %v", err)
		}
		if st2.Len() != st.Len()+1 {
			t.Fatalf("append after load lost points: %d then %d", st.Len(), st2.Len())
		}
	})
}

func FuzzSegmentOpen(f *testing.F) {
	// Seed with a well-formed segment, a truncated one, a wrong-magic one,
	// and garbage — recovery has to handle each without panicking.
	valid := logStream(1, encodedFrames(f, 2))
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:logHeaderSize-3])
	f.Add(logStream(99, nil)) // header seq disagrees with the file name
	f.Add([]byte("not a segment at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, LogSegmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		seg, err := OpenSegments(dir, nil)
		if err != nil {
			return // classified as corrupt — fine, as long as it didn't panic
		}
		defer seg.Close()
		// Whatever survived recovery must load cleanly and append-ably.
		st, err := seg.Load()
		if err != nil {
			t.Fatalf("recovered store failed to load: %v", err)
		}
		if err := seg.Append(point(1000)); err != nil {
			t.Fatalf("recovered store rejected an append: %v", err)
		}
		if err := seg.Sync(); err != nil {
			t.Fatal(err)
		}
		st2, err := seg.Load()
		if err != nil {
			t.Fatalf("reload after append failed: %v", err)
		}
		if st2.Len() != st.Len()+1 {
			t.Fatalf("append after recovery lost points: %d then %d", st.Len(), st2.Len())
		}
	})
}

package storage

// Fuzz coverage for the two byte-level parsers an attacker (or a torn
// disk) actually reaches: the frame/stream decoder that followers feed
// with replicated bytes, and segment recovery over arbitrary on-disk
// contents. Both must classify garbage — never panic, never over-read.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"hpcadvisor/internal/dataset"
)

// logStream renders a valid log segment header for seq followed by body.
func logStream(seq uint64, body []byte) []byte {
	var hdr [logHeaderSize]byte
	copy(hdr[:8], logMagic)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	return append(hdr[:], body...)
}

// encodedFrames renders n real points as wire frames.
func encodedFrames(tb testing.TB, n int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		payload, err := json.Marshal(point(i))
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := appendFrame(&buf, payload); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

func FuzzFrameDecode(f *testing.F) {
	// Seed with real frame encodings: whole streams, a single frame, a
	// truncated frame, and pure garbage.
	frames := encodedFrames(f, 3)
	f.Add(frames)
	one := encodedFrames(f, 1)
	f.Add(one)
	f.Add(one[:len(one)-3])
	f.Add(one[:frameHeaderSize-2])
	f.Add([]byte{})
	f.Add([]byte("\x99\x12torn-frame-garbage"))
	// A frame with an implausible length prefix must be rejected, not
	// trusted as an allocation size.
	huge := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(huge[:4], maxFramePayload+1)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		// readFrame must terminate with a frame, io.EOF, or a torn-frame
		// error — and consume at most the bytes it reports.
		br := bufio.NewReader(bytes.NewReader(data))
		var off int64
		for {
			payload, err := readFrame(br, off)
			if err == io.EOF {
				break
			}
			if err != nil {
				var torn *tornError
				if !errors.As(err, &torn) {
					t.Fatalf("readFrame returned a non-torn error: %v", err)
				}
				break
			}
			if len(payload) > maxFramePayload {
				t.Fatalf("readFrame returned an over-long payload: %d bytes", len(payload))
			}
			off += frameHeaderSize + int64(len(payload))
			if off > int64(len(data)) {
				t.Fatalf("readFrame consumed past the input: offset %d of %d", off, len(data))
			}
		}

		// The streaming decoder must accept the same bytes fed at any
		// granularity without panicking, and a decode failure must be
		// sticky.
		dec := NewLogStreamDecoder(7)
		stream := logStream(7, data)
		var n int
		failed := false
		for i := 0; i < len(stream); i += 5 {
			end := i + 5
			if end > len(stream) {
				end = len(stream)
			}
			err := dec.Feed(stream[i:end], func(dataset.Point) error { n++; return nil })
			if err != nil {
				failed = true
				if again := dec.Feed(nil, func(dataset.Point) error { return nil }); again == nil {
					t.Fatal("decoder accepted input after a decode failure")
				}
				break
			}
		}
		_ = failed
		_ = n
	})
}

func FuzzJournalDecode(f *testing.F) {
	// Seed with a well-formed frame log, torn tails at several cuts, a
	// wrong-magic file, and garbage. OpenFrameLog must classify each —
	// recover or reject, never panic — and the survivor must keep
	// accepting appends.
	frames := encodedFrames(f, 3)
	valid := append([]byte(frameLogMagic), frames...)
	f.Add(valid)
	f.Add(valid[:len(valid)-4])
	f.Add(valid[:frameLogHeaderSize+3])
	f.Add(valid[:frameLogHeaderSize-2])
	f.Add([]byte(logMagic)) // a WAL segment is not a journal
	f.Add([]byte("garbage that is not framed"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.jnl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, payloads, err := OpenFrameLog(path)
		if err != nil {
			return // rejected as foreign/corrupt — fine, as long as no panic
		}
		for _, p := range payloads {
			if len(p) > maxFramePayload {
				t.Fatalf("recovered an over-long payload: %d bytes", len(p))
			}
		}
		if got := l.Frames(); got != len(payloads) {
			t.Fatalf("Frames() = %d, recovered %d payloads", got, len(payloads))
		}
		// The recovered log must accept appends, and a clean reopen must
		// return the survivors plus the new record.
		if err := l.Append([]byte("probe-record")); err != nil {
			t.Fatalf("recovered frame log rejected an append: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		again, err := ReadFrameLog(path)
		if err != nil {
			t.Fatalf("reread after recovery failed: %v", err)
		}
		if len(again) != len(payloads)+1 {
			t.Fatalf("reread %d payloads, want %d", len(again), len(payloads)+1)
		}
		if string(again[len(again)-1]) != "probe-record" {
			t.Fatalf("appended record did not survive: %q", again[len(again)-1])
		}
	})
}

func FuzzSegmentOpen(f *testing.F) {
	// Seed with a well-formed segment, a truncated one, a wrong-magic one,
	// and garbage — recovery has to handle each without panicking.
	valid := logStream(1, encodedFrames(f, 2))
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:logHeaderSize-3])
	f.Add(logStream(99, nil)) // header seq disagrees with the file name
	f.Add([]byte("not a segment at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, LogSegmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		seg, err := OpenSegments(dir, nil)
		if err != nil {
			return // classified as corrupt — fine, as long as it didn't panic
		}
		defer seg.Close()
		// Whatever survived recovery must load cleanly and append-ably.
		st, err := seg.Load()
		if err != nil {
			t.Fatalf("recovered store failed to load: %v", err)
		}
		if err := seg.Append(point(1000)); err != nil {
			t.Fatalf("recovered store rejected an append: %v", err)
		}
		if err := seg.Sync(); err != nil {
			t.Fatal(err)
		}
		st2, err := seg.Load()
		if err != nil {
			t.Fatalf("reload after append failed: %v", err)
		}
		if st2.Len() != st.Len()+1 {
			t.Fatalf("append after recovery lost points: %d then %d", st.Len(), st2.Len())
		}
	})
}

//go:build linux && !nommap

package storage

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"syscall"
)

// mmapSupported reports whether this build can serve snapshots straight
// from mapped files. The nommap tag forces the portable heap path for
// testing the fallback ladder on any platform.
const mmapSupported = true

// mmapRegion owns one read-only mapping of a snapshot segment. The
// dataset.Snapshot built over it pins the region through Columnar.Ref, and
// a finalizer unmaps once the last snapshot referencing it is collected —
// so derived slices can never outlive the mapping they alias.
type mmapRegion struct {
	data []byte
	once sync.Once
}

// mapFile maps path read-only. This is the only place in the repo allowed
// to call syscall.Mmap (the walhygiene analyzer enforces it), so mapping
// lifetimes are always finalizer-managed through mmapRegion.
func mapFile(path string) (*mmapRegion, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= 0 || size > 1<<40 {
		return nil, fmt.Errorf("storage: %s: unmappable size %d", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("storage: mmap %s: %w", path, err)
	}
	r := &mmapRegion{data: data}
	runtime.SetFinalizer(r, (*mmapRegion).unmap)
	return r, nil
}

// unmap releases the mapping (idempotent). Reads of region slices after
// unmap would fault, which is why only the finalizer — or a load-failure
// path that built no snapshot — ever calls it.
func (r *mmapRegion) unmap() {
	r.once.Do(func() {
		if r.data != nil {
			_ = syscall.Munmap(r.data)
			r.data = nil
		}
		runtime.SetFinalizer(r, nil)
	})
}

// framelog.go is a small append-only record log on the same CRC-framed
// encoding as the WAL segments: an 8-byte magic header followed by
// length-prefixed CRC-32C frames, one opaque payload per frame. The
// collector's sweep journal rides on it. Unlike the segment store it is a
// single file, every Append is fsynced before it returns (journal records
// are tiny and rare next to datapoint writes), and recovery truncates a
// torn tail at the last whole frame — the same crash contract as the WAL:
// only an unacknowledged trailing write can be lost.
package storage

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// frameLogMagic distinguishes a frame log from a WAL segment ("HPALOG1\n")
// so neither reader will silently consume the other's file.
const frameLogMagic = "HPAJNL1\n"

const frameLogHeaderSize = len(frameLogMagic)

// FrameLog is an append-only, fsync-per-record, CRC-framed record log.
type FrameLog struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	size   int64
	frames int
	cut    int64
	closed bool
}

// OpenFrameLog opens (creating if absent) the frame log at path, recovers
// any torn tail, and returns the surviving payloads in append order. A
// file shorter than the header, or whose header was torn mid-write, is
// reset to an empty log; a file with a well-formed foreign magic is an
// error rather than something to clobber.
func OpenFrameLog(path string) (*FrameLog, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	l := &FrameLog{path: path, f: f}
	payloads, err := l.recover()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return l, payloads, nil
}

// recover scans the file, truncates at the last whole frame, and positions
// the handle at the durable tail.
func (l *FrameLog) recover() ([][]byte, error) {
	fi, err := l.f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() < int64(frameLogHeaderSize) {
		// New file, or a crash before the header fsync: nothing was ever
		// acknowledged, so start fresh.
		return nil, l.reset()
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(l.f, 1<<20)
	var hdr [frameLogHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, l.reset()
	}
	if string(hdr[:]) != frameLogMagic {
		if string(hdr[:]) == logMagic[:frameLogHeaderSize] {
			return nil, fmt.Errorf("storage: %s is a WAL segment, not a frame log", l.path)
		}
		// A torn header write can persist garbage; nothing durable lived
		// here, so reclaim the file.
		return nil, l.reset()
	}
	var payloads [][]byte
	good := int64(frameLogHeaderSize)
	for {
		payload, rerr := readFrame(br, good)
		if rerr == io.EOF {
			break
		}
		var torn *tornError
		if errors.As(rerr, &torn) {
			if err := l.f.Truncate(good); err != nil {
				return nil, err
			}
			l.cut = fi.Size() - good
			break
		}
		if rerr != nil {
			return nil, rerr
		}
		payloads = append(payloads, payload)
		good += frameHeaderSize + int64(len(payload))
	}
	if _, err := l.f.Seek(good, io.SeekStart); err != nil {
		return nil, err
	}
	l.size = good
	l.frames = len(payloads)
	return payloads, nil
}

// reset truncates the log to a fresh, fsynced header.
func (l *FrameLog) reset() error {
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := l.f.WriteString(frameLogMagic); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size = int64(frameLogHeaderSize)
	l.frames = 0
	return nil
}

// Append frames one payload and fsyncs before returning: once Append
// returns nil the record survives a crash.
func (l *FrameLog) Append(payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("storage: frame log record of %d bytes is over the %d frame limit",
			len(payload), maxFramePayload)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("storage: frame log %s is closed", l.path)
	}
	n, err := appendFrame(l.f, payload)
	if err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size += n
	l.frames++
	return nil
}

// Reset discards every record, leaving an empty (but valid) log.
func (l *FrameLog) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("storage: frame log %s is closed", l.path)
	}
	return l.reset()
}

// Frames reports how many records the log holds.
func (l *FrameLog) Frames() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.frames
}

// RecoveredCut reports how many torn tail bytes the open truncated.
func (l *FrameLog) RecoveredCut() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cut
}

// Close releases the file handle. Append after Close errors.
func (l *FrameLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// ReadFrameLog reads the payloads of the frame log at path without
// truncating anything — safe to call on a log another process is
// appending to; a torn or in-flight tail frame simply ends the scan.
// A missing file reads as an empty log.
func ReadFrameLog(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [frameLogHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, nil
	}
	if string(hdr[:]) != frameLogMagic {
		return nil, fmt.Errorf("storage: %s: bad frame log magic %q", path, hdr[:])
	}
	var payloads [][]byte
	off := int64(frameLogHeaderSize)
	for {
		payload, rerr := readFrame(br, off)
		if rerr != nil {
			// Clean EOF or a torn tail: either way the durable prefix is
			// what we have.
			return payloads, nil
		}
		payloads = append(payloads, payload)
		off += frameHeaderSize + int64(len(payload))
	}
}

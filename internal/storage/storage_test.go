package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"hpcadvisor/internal/dataset"
)

func TestDetectFormat(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "some.dat")
	os.WriteFile(file, []byte("x"), 0o644)
	sub := filepath.Join(dir, "store")
	os.MkdirAll(sub, 0o755)

	cases := []struct {
		path string
		want Format
	}{
		{file, FormatJSONL},  // existing file
		{sub, FormatSegment}, // existing dir
		{filepath.Join(dir, "new.jsonl"), FormatJSONL},
		{filepath.Join(dir, "new.json"), FormatJSONL},
		{filepath.Join(dir, "new.seg"), FormatSegment},
		{filepath.Join(dir, "plain"), FormatSegment},
	}
	for _, c := range cases {
		if got := DetectFormat(c.path); got != c.want {
			t.Errorf("DetectFormat(%s) = %s, want %s", c.path, got, c.want)
		}
	}
}

func TestOpenAttachesAppendThrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.seg")
	st, b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	pts := points(20)
	for i := range pts {
		st.Add(pts[i]) // through the attached backend
	}
	if err := st.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	st2, b2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	got, _ := st2.Marshal()
	if !bytes.Equal(got, marshalOf(t, pts)) {
		t.Fatal("append-through points did not survive reopen")
	}
}

// TestConvertRoundTripByteIdentical is the acceptance criterion: a
// jsonl -> segment -> jsonl round trip is byte-identical through
// Store.Marshal, with a compaction in the middle for good measure.
func TestConvertRoundTripByteIdentical(t *testing.T) {
	dir := t.TempDir()
	jsonl1 := filepath.Join(dir, "a.jsonl")
	seg := filepath.Join(dir, "b.seg")
	jsonl2 := filepath.Join(dir, "c.jsonl")

	pts := points(120)
	want := marshalOf(t, pts)
	st := dataset.NewStore()
	st.AddAll(pts)
	if err := st.SaveFile(jsonl1); err != nil {
		t.Fatal(err)
	}

	n, err := Convert(jsonl1, seg)
	if err != nil || n != len(pts) {
		t.Fatalf("jsonl->segment: n=%d err=%v", n, err)
	}
	// Convert compacts segment destinations: the reopened store loads
	// through the sorted snapshot fast path.
	sb, err := OpenSegments(seg, nil)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := sb.Info()
	if info.SnapshotPoints != len(pts) {
		t.Fatalf("segment destination should be compacted, info = %+v", info)
	}
	if got := loadMarshal(t, sb); !bytes.Equal(got, want) {
		t.Fatal("segment store Marshal differs from source")
	}
	sb.Close()

	n, err = Convert(seg, jsonl2)
	if err != nil || n != len(pts) {
		t.Fatalf("segment->jsonl: n=%d err=%v", n, err)
	}
	back, err := dataset.LoadFile(jsonl2)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := back.Marshal()
	if !bytes.Equal(got, want) {
		t.Fatal("round-tripped jsonl Marshal is not byte-identical")
	}
	// The file itself is also exactly what SaveFile wrote originally.
	rawA, _ := os.ReadFile(jsonl1)
	rawC, _ := os.ReadFile(jsonl2)
	if !bytes.Equal(rawA, rawC) {
		t.Fatal("round-tripped jsonl file bytes differ from the original")
	}
}

func TestConvertRefusesNonEmptyDestination(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.jsonl")
	dst := filepath.Join(dir, "dst.jsonl")
	st := dataset.NewStore()
	st.AddAll(points(3))
	if err := st.SaveFile(src); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveFile(dst); err != nil {
		t.Fatal(err)
	}
	if _, err := Convert(src, dst); err == nil {
		t.Fatal("convert onto a non-empty destination must fail")
	}
	if _, err := Convert(src, src); err == nil {
		t.Fatal("convert onto itself must fail")
	}
}

// TestSeededLoadMatchesUnseededQueries: the fast snapshot path must be a
// pure optimization — byte-identical Marshal and identical Select results.
func TestSeededLoadMatchesUnseededQueries(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data.seg")
	s, err := OpenSegments(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := points(200)
	appendAll(t, s, pts)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ref := dataset.NewStore()
	ref.AddAll(pts)
	gotAll, wantAll := st.Select(dataset.Filter{}), ref.Select(dataset.Filter{})
	if len(gotAll) != len(wantAll) {
		t.Fatalf("seeded Select: %d, want %d", len(gotAll), len(wantAll))
	}
	for i := range gotAll {
		if gotAll[i].ScenarioID != wantAll[i].ScenarioID {
			t.Fatalf("seeded Select order diverges at %d: %s vs %s", i, gotAll[i].ScenarioID, wantAll[i].ScenarioID)
		}
	}
}

// TestConcurrentAppendAndQueryWithBackend exercises the GUI-serving shape
// under the race detector: one collector goroutine streaming appends
// through the attached backend while readers query snapshots and flush.
func TestConcurrentAppendAndQueryWithBackend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.seg")
	st, b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			st.Add(point(i))
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				st.Select(dataset.Filter{AppName: "lammps"})
				st.Flush()
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	<-done
	wg.Wait()
	if err := st.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	st2, b2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if st2.Len() != n {
		t.Fatalf("reopened store has %d points, want %d", st2.Len(), n)
	}
}

// TestAppendRejectsOversizedPoints: the write paths must refuse any record
// the read paths would reject, or an "acknowledged" point could brick the
// store on reopen.
func TestAppendRejectsOversizedPoints(t *testing.T) {
	huge := point(0)
	huge.Metrics = map[string]string{"BLOB": strings.Repeat("x", 65<<20)}
	seg, err := OpenSegments(filepath.Join(t.TempDir(), "d.seg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if err := seg.Append(huge); err == nil {
		t.Fatal("segment Append must reject a frame over the 64MB read limit")
	}

	big := point(1)
	big.Metrics = map[string]string{"BLOB": strings.Repeat("y", 17<<20)}
	j, err := OpenJSONL(filepath.Join(t.TempDir(), "d.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(big); err == nil {
		t.Fatal("jsonl Append must reject a line over dataset.MaxLineBytes")
	}
	// Both stores stay usable after the rejection.
	if err := seg.Append(point(2)); err != nil {
		t.Fatalf("segment append after rejection: %v", err)
	}
	if err := j.Append(point(3)); err != nil {
		t.Fatalf("jsonl append after rejection: %v", err)
	}
}

// TestOpenSegmentsRejectsForeignDirectory: pointing -store at a directory
// of other data must fail loudly, not read back an "empty dataset".
func TestOpenSegmentsRejectsForeignDirectory(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "dataset.jsonl"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegments(dir, nil); err == nil {
		t.Fatal("a non-empty non-segment directory must not open as an empty store")
	}
	// An empty existing directory is still a valid fresh store.
	empty := filepath.Join(dir, "fresh.seg")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSegments(empty, nil)
	if err != nil {
		t.Fatalf("empty directory should open: %v", err)
	}
	s.Close()
}

package storage

// Replication export surface of the segment store. A leader exposes three
// read-only views a follower mirrors byte-for-byte:
//
//   - Manifest: the current layout — snapshot segment, log segments with
//     their replicable sizes, and the durable log position in points.
//   - ReadSegmentAt: the bytes of one log segment from a cursor offset up
//     to the durable frontier. Only fsynced bytes are served, so a follower
//     can never hold bytes a crashed-and-restarted leader lost; byte ranges
//     below the durable frontier are immutable, so a cursor (seq, offset)
//     pair is stable across leader restarts.
//   - SnapshotPayload: the compacted snapshot segment, whole. Snapshot
//     files are immutable once published, so shipping the raw bytes makes
//     the follower's compacted state byte-identical to the leader's.
//
// Watch + Manifest.Version let a follower long-poll instead of spinning:
// every replication-visible change (durability advance, seal, new segment,
// compaction) closes the watch channel and bumps the version.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"hpcadvisor/internal/dataset"
)

// LogSegmentName and SnapshotSegmentName expose the on-disk file names, so
// a follower mirrors the leader's files under the exact names this package
// recovers and loads from.
func LogSegmentName(seq uint64) string      { return walName(seq) }
func SnapshotSegmentName(seq uint64) string { return snapName(seq) }

// SegmentKind distinguishes the two segment file kinds of a store
// directory.
type SegmentKind int

const (
	SegmentLog SegmentKind = iota + 1
	SegmentSnapshot
)

// ParseSegmentName decodes a segment file name into its seq and kind;
// ok is false for any other directory entry.
func ParseSegmentName(name string) (seq uint64, kind SegmentKind, ok bool) {
	if seq, ok := parseSeq(name, "wal-"); ok {
		return seq, SegmentLog, true
	}
	if seq, ok := parseSeq(name, "snapshot-"); ok {
		return seq, SegmentSnapshot, true
	}
	return 0, 0, false
}

// ErrUnknownSegment marks a replication read naming a segment the store no
// longer has — typically retired by compaction. Followers respond by
// re-reading the manifest (and re-bootstrapping if their cursor is gone).
var ErrUnknownSegment = errors.New("storage: unknown segment")

// ErrBadOffset marks a replication read from beyond the durable frontier —
// a follower claiming bytes the leader never acknowledged, which indicates
// the follower's state belongs to a different log and needs a re-bootstrap.
var ErrBadOffset = errors.New("storage: segment offset beyond durable frontier")

// SegmentInfo describes one log segment's replicable state.
type SegmentInfo struct {
	Seq uint64 `json:"seq"`
	// Size is the replicable byte length: the durable frontier for the
	// active segment, the full file size for sealed ones.
	Size   int64 `json:"size"`
	Sealed bool  `json:"sealed"`
}

// SnapshotInfo describes the compacted snapshot segment.
type SnapshotInfo struct {
	Seq   uint64 `json:"seq"`
	Count int    `json:"count"`
	Size  int64  `json:"size"`
}

// Manifest is the store layout a follower reconciles against.
type Manifest struct {
	// Version counts replication-visible changes in this process; it is not
	// persisted. Followers use it only to long-poll for "anything changed
	// since version V".
	Version uint64 `json:"version"`
	// Points is the durable log position: points covered by an fsync. The
	// in-memory count can run ahead of it between batched syncs.
	Points   int           `json:"points"`
	Snapshot *SnapshotInfo `json:"snapshot,omitempty"`
	// Segments lists live log segments ascending by seq; at most the last
	// one is unsealed.
	Segments []SegmentInfo `json:"segments"`
}

// Manifest returns the store's current replicable layout.
func (s *SegmentStore) Manifest() (Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Manifest{Version: s.version, Points: s.count - s.pending, Segments: []SegmentInfo{}}
	if s.snapSeq > 0 {
		fi, err := os.Stat(filepath.Join(s.dir, snapName(s.snapSeq)))
		if err != nil {
			return Manifest{}, err
		}
		m.Snapshot = &SnapshotInfo{Seq: s.snapSeq, Count: s.snapCount, Size: fi.Size()}
	}
	for i, seq := range s.walSeqs {
		if s.f != nil && i == len(s.walSeqs)-1 {
			m.Segments = append(m.Segments, SegmentInfo{Seq: seq, Size: s.durableBytes})
			continue
		}
		fi, err := os.Stat(filepath.Join(s.dir, walName(seq)))
		if err != nil {
			return Manifest{}, err
		}
		m.Segments = append(m.Segments, SegmentInfo{Seq: seq, Size: fi.Size(), Sealed: true})
	}
	return m, nil
}

// ReadSegmentAt returns the replicable bytes of log segment seq starting at
// byte offset from, up to the durable frontier, plus the segment's current
// info. An empty slice with a nil error means the follower is caught up on
// this segment (tail again after Watch, or move on if Sealed and
// from == Size). The durable frontier is always frame-aligned, so returned
// ranges never split a frame.
func (s *SegmentStore) ReadSegmentAt(seq uint64, from int64) ([]byte, SegmentInfo, error) {
	s.mu.Lock()
	info := SegmentInfo{Seq: seq, Sealed: true}
	found := false
	for i, q := range s.walSeqs {
		if q != seq {
			continue
		}
		found = true
		if s.f != nil && i == len(s.walSeqs)-1 {
			info.Sealed = false
			info.Size = s.durableBytes
		}
		break
	}
	s.mu.Unlock()
	if !found {
		return nil, SegmentInfo{}, ErrUnknownSegment
	}
	path := filepath.Join(s.dir, walName(seq))
	if info.Sealed {
		fi, err := os.Stat(path)
		if err != nil {
			if os.IsNotExist(err) {
				// Retired by a concurrent compaction.
				return nil, SegmentInfo{}, ErrUnknownSegment
			}
			return nil, SegmentInfo{}, err
		}
		info.Size = fi.Size()
	}
	if from < 0 || from > info.Size {
		return nil, info, fmt.Errorf("%w: offset %d, durable size %d of %s", ErrBadOffset, from, info.Size, walName(seq))
	}
	if from == info.Size {
		return nil, info, nil
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, SegmentInfo{}, ErrUnknownSegment
		}
		return nil, SegmentInfo{}, err
	}
	defer f.Close()
	buf := make([]byte, info.Size-from)
	if _, err := f.ReadAt(buf, from); err != nil {
		return nil, info, fmt.Errorf("storage: reading %s [%d:%d]: %w", walName(seq), from, info.Size, err)
	}
	return buf, info, nil
}

// SnapshotPayload returns the raw bytes of the snapshot segment seq, whole.
// Only the current snapshot is servable; an older (replaced) or unknown seq
// is ErrUnknownSegment, telling the follower to re-read the manifest.
func (s *SegmentStore) SnapshotPayload(seq uint64) ([]byte, error) {
	s.mu.Lock()
	cur := s.snapSeq
	s.mu.Unlock()
	if seq == 0 || seq != cur {
		return nil, ErrUnknownSegment
	}
	data, err := os.ReadFile(filepath.Join(s.dir, snapName(seq)))
	if os.IsNotExist(err) {
		return nil, ErrUnknownSegment
	}
	return data, err
}

// LogStreamDecoder incrementally decodes the byte stream of one log
// segment — header first, then frames — as chunks arrive from replication.
// Chunks may split frames arbitrarily; undecoded bytes are buffered until
// the rest arrives. Any malformed byte is a permanent error: replicated
// ranges come from below the leader's durable frontier, where torn frames
// cannot occur, so damage means the stream is not the segment it claims to
// be.
type LogStreamDecoder struct {
	seq        uint64
	buf        []byte
	headerDone bool
	failed     error
}

// NewLogStreamDecoder decodes the stream of log segment seq from offset 0.
func NewLogStreamDecoder(seq uint64) *LogStreamDecoder {
	return &LogStreamDecoder{seq: seq}
}

// Feed consumes the next chunk, invoking emit once per completed point in
// order. A decode error is sticky; emit errors abort the current call and
// are returned (the same bytes are not re-emitted).
func (d *LogStreamDecoder) Feed(data []byte, emit func(p dataset.Point) error) error {
	if d.failed != nil {
		return d.failed
	}
	d.buf = append(d.buf, data...)
	if !d.headerDone {
		if len(d.buf) < logHeaderSize {
			return nil
		}
		if string(d.buf[:8]) != logMagic {
			d.failed = fmt.Errorf("storage: log stream %d: bad magic %q", d.seq, d.buf[:8])
			return d.failed
		}
		if got := binary.LittleEndian.Uint64(d.buf[8:logHeaderSize]); got != d.seq {
			d.failed = fmt.Errorf("storage: log stream %d: header names seq %d", d.seq, got)
			return d.failed
		}
		d.buf = d.buf[logHeaderSize:]
		d.headerDone = true
	}
	for len(d.buf) >= frameHeaderSize {
		n := binary.LittleEndian.Uint32(d.buf[:4])
		if n > maxFramePayload {
			d.failed = fmt.Errorf("storage: log stream %d: implausible frame length %d", d.seq, n)
			return d.failed
		}
		if len(d.buf) < frameHeaderSize+int(n) {
			return nil // wait for the rest of the frame
		}
		payload := d.buf[frameHeaderSize : frameHeaderSize+int(n)]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(d.buf[4:8]) {
			d.failed = fmt.Errorf("storage: log stream %d: payload CRC mismatch", d.seq)
			return d.failed
		}
		var p dataset.Point
		if err := json.Unmarshal(payload, &p); err != nil {
			d.failed = fmt.Errorf("storage: log stream %d: decoding point: %w", d.seq, err)
			return d.failed
		}
		d.buf = d.buf[frameHeaderSize+int(n):]
		if err := emit(p); err != nil {
			return err
		}
	}
	return nil
}

package storage

// BenchmarkStoreOpenCold measures the cold-open path the tentpole targets:
// OpenSegments + Load + the first Snapshot over a ~100k-point store, for
// the v1 frame parse, the v2 heap parse, and the v2 mmap path. The mmap
// subbenchmark is the one core.OpenStore takes on Linux.

import (
	"path/filepath"
	"testing"

	"hpcadvisor/internal/dataset"
)

const benchOpenPoints = 100_000

// benchSnapshotDir fabricates a segment dir whose whole dataset lives in
// one compacted snapshot of the requested format.
func benchSnapshotDir(b *testing.B, pts []dataset.Point, order []int, v2 bool) string {
	b.Helper()
	dir := b.TempDir()
	path := filepath.Join(dir, snapName(1))
	var err error
	if v2 {
		err = writeSnapshotSegmentV2(path, 1, pts, order)
	} else {
		err = writeSnapshotSegmentV1(path, 1, pts, order)
	}
	if err != nil {
		b.Fatal(err)
	}
	return dir
}

func benchOpenCold(b *testing.B, dir string, opts *SegmentOptions, wantLen int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg, err := OpenSegments(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		st, err := seg.Load()
		if err != nil {
			b.Fatal(err)
		}
		sn := st.Snapshot()
		if sn.Len() != wantLen {
			b.Fatalf("snapshot len %d, want %d", sn.Len(), wantLen)
		}
		if err := seg.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreOpenCold(b *testing.B) {
	pts := make([]dataset.Point, benchOpenPoints)
	for i := range pts {
		pts[i] = point(i)
	}
	order := canonicalOrder(pts)
	dirV1 := benchSnapshotDir(b, pts, order, false)
	dirV2 := benchSnapshotDir(b, pts, order, true)

	b.Run("v1-parse", func(b *testing.B) {
		benchOpenCold(b, dirV1, nil, len(pts))
	})
	b.Run("v2-heap", func(b *testing.B) {
		benchOpenCold(b, dirV2, &SegmentOptions{NoMmap: true}, len(pts))
	})
	b.Run("v2-mmap", func(b *testing.B) {
		if !mmapSupported {
			b.Skip("mmap unsupported on this build")
		}
		benchOpenCold(b, dirV2, nil, len(pts))
	})
}

package storage

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"hpcadvisor/internal/dataset"
)

// JSONL is the compatibility backend: the original single-file JSON Lines
// dataset. Appends are O(1) line appends with the same batched-fsync
// acknowledgment contract as the segment store. Its crash frontier is the
// final line: a torn append leaves an unterminated suffix that is not
// valid JSON, so recovery truncates the file at the last newline. An
// unterminated final line that IS complete valid JSON (hand-written or
// imported files often omit the trailing newline) is kept and only
// newline-terminated so later appends start on a fresh line. A whole line
// that fails to parse is real corruption and surfaces as an open error
// (it cannot be produced by a torn append).
type JSONL struct {
	mu   sync.Mutex
	path string

	f       *os.File // nil until the first append (lazy creation)
	w       *bufio.Writer
	pending int
	// syncEvery batches fsyncs like SegmentOptions.SyncEvery.
	syncEvery int

	// loaded caches the store parsed at open; the first Load hands it out
	// instead of reparsing the file.
	loaded *dataset.Store
	// needsTerminator records that the file's final record lacks its
	// newline; the first append writes one first so it cannot concatenate
	// onto that record. Read-only use never rewrites the file.
	needsTerminator bool

	count          int
	recovered      bool
	recoveredBytes int64
	closed         bool
}

// OpenJSONL opens (or lazily creates) the JSON Lines dataset at path,
// truncating a torn final line if the last writer crashed mid-append.
func OpenJSONL(path string) (*JSONL, error) {
	j := &JSONL{path: path, syncEvery: 32}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return j, nil
		}
		return nil, err
	}
	if tail := unterminatedTail(data); len(tail) > 0 {
		if json.Valid(tail) {
			// A complete final record missing only its newline (common in
			// hand-written or imported files): keep it, and terminate it
			// before the first append so nothing concatenates onto it.
			j.needsTerminator = true
			data = append(data, '\n')
		} else {
			// Torn mid-record by a crashed writer: truncate at the last
			// whole line.
			if err := os.Truncate(path, int64(len(data)-len(tail))); err != nil {
				return nil, err
			}
			data = data[:len(data)-len(tail)]
			j.recovered = true
			j.recoveredBytes = int64(len(tail))
		}
	}
	st, err := dataset.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", path, err)
	}
	j.loaded = st
	j.count = st.Len()
	return j, nil
}

// unterminatedTail returns the non-empty suffix after the last newline (or
// the whole file when it holds no newline); nil when the file ends on a
// line boundary.
func unterminatedTail(data []byte) []byte {
	if len(data) == 0 {
		return nil
	}
	i := bytes.LastIndexByte(data, '\n')
	tail := data[i+1:]
	if len(bytes.TrimSpace(tail)) == 0 {
		return nil
	}
	return tail
}

// Format names the backend's layout.
func (j *JSONL) Format() Format { return FormatJSONL }

// Append records one point as a JSON line; fsyncs are batched.
func (j *JSONL) Append(p dataset.Point) error {
	enc, err := json.Marshal(p)
	if err != nil {
		return err
	}
	if len(enc) >= dataset.MaxLineBytes {
		// dataset.Unmarshal's scanner caps lines at MaxLineBytes; never
		// acknowledge a record that would make the file unreadable.
		return fmt.Errorf("storage: point %s encodes to %d bytes, over the %d jsonl line limit",
			p.ScenarioID, len(enc), dataset.MaxLineBytes)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("storage: jsonl store %s is closed", j.path)
	}
	if j.f == nil {
		if dir := filepath.Dir(j.path); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		j.f = f
		j.w = bufio.NewWriter(f)
		if j.needsTerminator {
			if err := j.w.WriteByte('\n'); err != nil {
				return err
			}
			j.needsTerminator = false
		}
	}
	if _, err := j.w.Write(enc); err != nil {
		return err
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return err
	}
	j.count++
	j.pending++
	if j.pending >= j.syncEvery {
		return j.flushSync()
	}
	return nil
}

// flushSync drains the buffer and fsyncs. Callers hold j.mu.
func (j *JSONL) flushSync() error {
	if j.f == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.pending = 0
	return nil
}

// Sync makes every appended point durable.
func (j *JSONL) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushSync()
}

// Close flushes and releases the backend.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.flushSync(); err != nil {
		return err
	}
	if j.f != nil {
		err := j.f.Close()
		j.f, j.w = nil, nil
		return err
	}
	return nil
}

// Load parses the file into a fresh Store (a missing file loads empty).
// The first Load after open reuses the parse the open already did.
func (j *JSONL) Load() (*dataset.Store, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if st := j.loaded; st != nil && st.Len() == j.count {
		j.loaded = nil
		return st, nil
	}
	j.loaded = nil
	if j.f != nil {
		if err := j.w.Flush(); err != nil {
			return nil, err
		}
	}
	data, err := os.ReadFile(j.path)
	if err != nil {
		if os.IsNotExist(err) {
			return dataset.NewStore(), nil
		}
		return nil, err
	}
	st, err := dataset.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", j.path, err)
	}
	return st, nil
}

// Compact is not meaningful for a flat line file.
func (j *JSONL) Compact() error { return ErrNoCompaction }

// Info describes the on-disk state.
func (j *JSONL) Info() (Info, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := Info{
		Format:         FormatJSONL,
		Path:           j.path,
		Points:         j.count,
		Recovered:      j.recovered,
		RecoveredBytes: j.recoveredBytes,
	}
	if j.f != nil {
		if err := j.w.Flush(); err != nil {
			return info, err
		}
	}
	if fi, err := os.Stat(j.path); err == nil {
		info.Bytes = fi.Size()
	}
	return info, nil
}

package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/monitor"
)

// point fabricates a realistic datapoint; i varies every identifying field
// so ordering and identity bugs cannot hide.
func point(i int) dataset.Point {
	skus := []string{"Standard_HB120rs_v3", "Standard_HC44rs", "Standard_F72s_v2"}
	aliases := []string{"hb120v3", "hc44", "f72"}
	nodes := []int{1, 2, 4, 8}
	p := dataset.Point{
		ScenarioID: fmt.Sprintf("lammps-n%03d", i),
		Deployment: "test-deploy",
		AppName:    "lammps",
		SKU:        skus[i%len(skus)],
		SKUAlias:   aliases[i%len(aliases)],
		NNodes:     nodes[i%len(nodes)],
		PPN:        16,
		AppInput:   map[string]string{"BOXFACTOR": fmt.Sprint(10 + i%3)},
		InputDesc:  fmt.Sprintf("BOXFACTOR=%d", 10+i%3),
		Tags:       map[string]string{"sweep": "t1"},

		ExecTimeSec: 100.5 / float64(1+i%7),
		CostUSD:     0.125 * float64(1+i%5),
		Metrics:     map[string]string{"steps": fmt.Sprint(i * 100)},
		Utilization: monitor.Sample{CPUUtil: float64(50+i%50) / 100, MemBWUtil: 0.5, NetUtil: 0.25},
		CollectedAt: float64(1000 + i),
	}
	if i%11 == 10 {
		p.Failed = true
		p.Error = "simulated failure"
		p.ExecTimeSec, p.CostUSD = 0, 0
	}
	return p
}

func points(n int) []dataset.Point {
	out := make([]dataset.Point, n)
	for i := range out {
		out[i] = point(i)
	}
	return out
}

// marshalOf renders points the way Store.Marshal does, the round-trip
// equality oracle used throughout.
func marshalOf(t *testing.T, pts []dataset.Point) []byte {
	t.Helper()
	st := dataset.NewStore()
	st.AddAll(pts)
	data, err := st.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func appendAll(t *testing.T, b Backend, pts []dataset.Point) {
	t.Helper()
	for i := range pts {
		if err := b.Append(pts[i]); err != nil {
			t.Fatalf("Append #%d: %v", i, err)
		}
	}
}

func loadMarshal(t *testing.T, b Backend) []byte {
	t.Helper()
	st, err := b.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	data, err := st.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSegmentAppendReopenRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data.seg")
	pts := points(100)
	want := marshalOf(t, pts)

	s, err := OpenSegments(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, pts)
	if got := loadMarshal(t, s); !bytes.Equal(got, want) {
		t.Fatal("in-session Load does not round-trip")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSegments(dir, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := loadMarshal(t, s2); !bytes.Equal(got, want) {
		t.Fatal("reopened Load does not round-trip")
	}
	info, err := s2.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Points != len(pts) || info.Recovered {
		t.Fatalf("info = %+v, want %d points and no recovery", info, len(pts))
	}
}

func TestSegmentSealingRollsSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data.seg")
	// Tiny segments force many seals.
	s, err := OpenSegments(dir, &SegmentOptions{MaxSegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	pts := points(60)
	want := marshalOf(t, pts)
	appendAll(t, s, pts)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs := 0
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if len(e.Name()) > 4 && e.Name()[:4] == "wal-" {
			segs++
		}
	}
	if segs < 3 {
		t.Fatalf("expected several sealed segments, found %d", segs)
	}

	s2, err := OpenSegments(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := loadMarshal(t, s2); !bytes.Equal(got, want) {
		t.Fatal("multi-segment Load does not round-trip")
	}
}

func TestCompactionFoldsSegmentsAndPreservesOrder(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data.seg")
	s, err := OpenSegments(dir, &SegmentOptions{MaxSegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	first := points(50)
	appendAll(t, s, first)
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}

	// Append more after compaction; the snapshot covers only the prefix.
	var second []dataset.Point
	for i := 50; i < 80; i++ {
		second = append(second, point(i))
	}
	appendAll(t, s, second)
	all := append(append([]dataset.Point{}, first...), second...)
	want := marshalOf(t, all)
	if got := loadMarshal(t, s); !bytes.Equal(got, want) {
		t.Fatal("post-compaction Load does not preserve append order")
	}

	info, err := s.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotPoints != 50 {
		t.Fatalf("snapshot should cover 50 points, info = %+v", info)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify queries against an unseeded reference store.
	s2, err := OpenSegments(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	ref := dataset.NewStore()
	ref.AddAll(all)
	for _, f := range []dataset.Filter{
		{},
		{AppName: "lammps"},
		{SKU: "hc44"},
		{SKU: "Standard_F72s_v2", MaxNodes: 4},
		{IncludeFailed: true},
	} {
		got, wantSel := st.Select(f), ref.Select(f)
		if len(got) != len(wantSel) {
			t.Fatalf("Select(%+v): %d points, want %d", f, len(got), len(wantSel))
		}
		for i := range got {
			if got[i].ScenarioID != wantSel[i].ScenarioID || got[i].CollectedAt != wantSel[i].CollectedAt {
				t.Fatalf("Select(%+v)[%d] = %s@%v, want %s@%v", f, i,
					got[i].ScenarioID, got[i].CollectedAt, wantSel[i].ScenarioID, wantSel[i].CollectedAt)
			}
		}
	}
}

func TestCompactionIsIdempotentAndSingleSnapshot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data.seg")
	s, err := OpenSegments(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := points(30)
	want := marshalOf(t, pts)
	appendAll(t, s, pts)
	for i := 0; i < 3; i++ {
		if err := s.Compact(); err != nil {
			t.Fatalf("Compact #%d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, wals := 0, 0
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		switch {
		case len(e.Name()) > 9 && e.Name()[:9] == "snapshot-":
			snaps++
		case len(e.Name()) > 4 && e.Name()[:4] == "wal-":
			wals++
		}
	}
	if snaps != 1 || wals != 0 {
		t.Fatalf("after compaction: %d snapshots, %d wal segments; want 1, 0", snaps, wals)
	}

	s2, err := OpenSegments(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := loadMarshal(t, s2); !bytes.Equal(got, want) {
		t.Fatal("compacted store does not round-trip")
	}
}

func TestSegmentInfoEmptyAndLazyCreation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "never-created.seg")
	s, err := OpenSegments(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Load()
	if err != nil || st.Len() != 0 {
		t.Fatalf("empty load = %d points, %v", st.Len(), err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Read-only use must not create the directory.
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("read-only open created %s", dir)
	}
}

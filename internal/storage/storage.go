// Package storage is the pluggable persistence engine behind the dataset:
// every collected point flows through a Backend the moment it is appended,
// and datasets reopen without a full reparse.
//
// Two backends implement the same contract:
//
//   - JSONL: the original one-file JSON Lines format, kept for
//     compatibility and import/export. Appends are O(1) line appends; a
//     torn final line (crash mid-append) is truncated at open.
//   - SegmentStore: a binary segment log. Points are length-prefixed,
//     CRC-checksummed frames appended to a write-ahead segment file with
//     batched fsyncs; full segments are sealed immutable; a compaction pass
//     folds sealed segments into a sorted snapshot segment from which
//     dataset.Snapshot indexes rebuild without re-sorting; crash recovery
//     truncates a torn tail frame and replays the rest.
//
// The durability contract is shared: a point is acknowledged once Sync
// returns (Append batches fsyncs), and no acknowledged point is ever lost —
// a crash loses at most the unacknowledged tail.
package storage

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"hpcadvisor/internal/dataset"
)

// Format names an on-disk dataset layout.
type Format string

// Supported formats.
const (
	FormatJSONL   Format = "jsonl"
	FormatSegment Format = "segment"
)

// ErrNoCompaction marks backends whose format has nothing to compact.
var ErrNoCompaction = errors.New("storage: format does not support compaction")

// Info describes a backend's on-disk state.
type Info struct {
	Format Format `json:"format"`
	Path   string `json:"path"`
	// Points is the number of points currently stored.
	Points int `json:"points"`
	// Segments counts live log segment files (always 0 for jsonl).
	Segments int `json:"segments"`
	// SnapshotPoints is how many points the compacted snapshot segment
	// covers (0 when never compacted, or for jsonl).
	SnapshotPoints int `json:"snapshot_points"`
	// SnapshotFormat is the snapshot segment's format version: 1 (row
	// frames) or 2 (columnar sections); 0 when there is no snapshot.
	SnapshotFormat int `json:"snapshot_format,omitempty"`
	// Columnar footprint of a v2 snapshot, by section group: the interned
	// symbol table, the typed columns (four uint32 string-id columns,
	// nodes, exec, cost), the failed bitmap, and the row data (row JSON +
	// row index + append indexes).
	SymbolTableBytes  int64 `json:"symbol_table_bytes,omitempty"`
	ColumnBytes       int64 `json:"column_bytes,omitempty"`
	FailedBitmapBytes int64 `json:"failed_bitmap_bytes,omitempty"`
	RowDataBytes      int64 `json:"row_data_bytes,omitempty"`
	// HotFronts is how many precomputed Pareto fronts the v2 snapshot
	// persists.
	HotFronts int `json:"hot_fronts,omitempty"`
	// MmapServed reports whether the most recent Load served the snapshot
	// straight from an mmap (false on portable builds, after a fallback,
	// or before any Load).
	MmapServed bool `json:"mmap_served,omitempty"`
	// Bytes is the total on-disk size.
	Bytes int64 `json:"bytes"`
	// Recovered reports that opening found and truncated a torn tail left
	// by a crash; RecoveredBytes is how much was cut.
	Recovered      bool  `json:"recovered,omitempty"`
	RecoveredBytes int64 `json:"recovered_bytes,omitempty"`
}

// String renders the info as the CLI's `dataset info` output.
func (i Info) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "format:          %s\n", i.Format)
	fmt.Fprintf(&b, "path:            %s\n", i.Path)
	fmt.Fprintf(&b, "points:          %d\n", i.Points)
	if i.Format == FormatSegment {
		fmt.Fprintf(&b, "log segments:    %d\n", i.Segments)
		fmt.Fprintf(&b, "snapshot points: %d\n", i.SnapshotPoints)
		if i.SnapshotFormat > 0 {
			fmt.Fprintf(&b, "snapshot format: v%d\n", i.SnapshotFormat)
		}
		if i.SnapshotFormat == 2 {
			fmt.Fprintf(&b, "  symbol table:  %d bytes\n", i.SymbolTableBytes)
			fmt.Fprintf(&b, "  columns:       %d bytes\n", i.ColumnBytes)
			fmt.Fprintf(&b, "  failed bitmap: %d bytes\n", i.FailedBitmapBytes)
			fmt.Fprintf(&b, "  row data:      %d bytes\n", i.RowDataBytes)
			fmt.Fprintf(&b, "  hot fronts:    %d\n", i.HotFronts)
		}
		fmt.Fprintf(&b, "mmap served:     %t\n", i.MmapServed)
	}
	fmt.Fprintf(&b, "bytes:           %d\n", i.Bytes)
	if i.Recovered {
		fmt.Fprintf(&b, "recovered:       torn tail truncated (%d bytes)\n", i.RecoveredBytes)
	}
	return b.String()
}

// Backend is a durable dataset store. It doubles as a dataset.Sink, so a
// loaded store writes every Add through it. Backends are safe for
// concurrent use.
type Backend interface {
	// Append records one point at the tail of the log. Durability is
	// batched: the point is acknowledged once the next Sync (explicit or
	// batch-triggered) returns.
	Append(p dataset.Point) error
	// Sync makes every appended point durable.
	Sync() error
	// Load reads the full dataset into a fresh Store in append order,
	// seeding it with the compacted sorted order when one exists so the
	// first snapshot build skips the O(n log n) re-sort.
	Load() (*dataset.Store, error)
	// Compact folds the log into its most read-optimized shape; backends
	// without one return ErrNoCompaction.
	Compact() error
	// Info describes the on-disk state.
	Info() (Info, error)
	// Format names the backend's layout.
	Format() Format
	// Close flushes, syncs, and releases the backend.
	Close() error
}

// DetectFormat decides the format of path: an existing directory is a
// segment store, an existing file is JSONL; a missing path is inferred
// from its name (a ".jsonl" suffix means JSONL, anything else a segment
// directory).
func DetectFormat(path string) Format {
	if fi, err := os.Stat(path); err == nil {
		if fi.IsDir() {
			return FormatSegment
		}
		return FormatJSONL
	}
	if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".json") {
		return FormatJSONL
	}
	return FormatSegment
}

// OpenBackend opens (creating lazily on first append if missing) the
// backend at path, auto-detecting its format.
func OpenBackend(path string) (Backend, error) {
	switch DetectFormat(path) {
	case FormatJSONL:
		return OpenJSONL(path)
	default:
		return OpenSegments(path, nil)
	}
}

// Open opens the dataset at path, loads it into a Store, and attaches the
// backend so every subsequent Store.Add appends through durably. The caller
// owns the backend handle and should Close it when done.
func Open(path string) (*dataset.Store, Backend, error) {
	b, err := OpenBackend(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := b.Load()
	if err != nil {
		b.Close()
		return nil, nil, err
	}
	st.Attach(b)
	return st, b, nil
}

// Convert copies the dataset at src into a new store at dst, converting
// between formats as the paths dictate, and returns the number of points
// converted. dst must not already hold data. A segment destination is
// compacted after the copy so it reopens through the fast snapshot path.
func Convert(src, dst string) (int, error) {
	if src == dst {
		return 0, fmt.Errorf("storage: convert source and destination are the same path %q", src)
	}
	from, err := OpenBackend(src)
	if err != nil {
		return 0, err
	}
	defer from.Close()
	st, err := from.Load()
	if err != nil {
		return 0, err
	}
	to, err := OpenBackend(dst)
	if err != nil {
		return 0, err
	}
	if info, err := to.Info(); err != nil {
		to.Close()
		return 0, err
	} else if info.Points > 0 {
		to.Close()
		return 0, fmt.Errorf("storage: destination %q already holds %d points", dst, info.Points)
	}
	pts := st.All()
	for i := range pts {
		if err := to.Append(pts[i]); err != nil {
			to.Close()
			return 0, err
		}
	}
	if err := to.Sync(); err != nil {
		to.Close()
		return 0, err
	}
	if err := to.Compact(); err != nil && !errors.Is(err, ErrNoCompaction) {
		to.Close()
		return 0, err
	}
	if err := to.Close(); err != nil {
		return 0, err
	}
	return len(pts), nil
}

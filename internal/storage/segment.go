package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"hpcadvisor/internal/dataset"
	"hpcadvisor/internal/fsatomic"
)

// On-disk layout of a segment store directory:
//
//	wal-<seq>.seg       log segments; the highest seq is the active
//	                    write-ahead segment, all lower seqs are sealed
//	                    (immutable). seq is 16 hex digits, ascending.
//	snapshot-<seq>.seg  at most one compacted snapshot segment, holding
//	                    every point of log segments <= seq in canonical
//	                    sorted order. Written atomically (tmp + rename).
//
// Log segment file:
//
//	header  8B magic "HPALOG1\n" | u64le segment seq
//	frames  u32le payload len | u32le CRC-32C(payload) | payload
//	        payload = one dataset.Point as JSON
//
// Snapshot segment file, format v1 (still read; no longer written):
//
//	header  8B magic "HPASNAP1" | u64le folded-through seq | u64le count
//	frames  same framing; payload = u32le append index | point JSON,
//	        frames ordered by dataset.PointLess (stable by append index)
//
// Snapshot segment file, format v2 ("HPASNAP2", what Compact writes): the
// columnar section layout documented in snapshotv2.go. Readers that can
// mmap serve dataset snapshots directly over the mapped sections; portable
// readers decode the row sections into exactly what a v1 parse yields.
//
// Durability: frames are buffered and fsynced every SyncEvery appends and
// on Sync/Close — a point is acknowledged when the covering fsync returns.
// Recovery: a crash can tear only the tail of the active segment; open
// truncates the torn tail at the last whole frame and replays the rest.
// Sealed segments and snapshots are immutable and verified by CRC on read.
const (
	logMagic        = "HPALOG1\n"
	snapMagic       = "HPASNAP1"
	logHeaderSize   = 16
	snapHeaderSize  = 24
	frameHeaderSize = 8
	// maxFramePayload bounds a single frame; a length prefix beyond it is
	// treated as a torn/corrupt frame, not an allocation request.
	maxFramePayload = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SegmentOptions tune a segment store.
type SegmentOptions struct {
	// SyncEvery batches fsyncs: the write-ahead segment is synced after
	// this many appends (and on Sync/Close). Default 32.
	SyncEvery int
	// MaxSegmentBytes seals the active segment once it grows past this
	// size and starts a new one. Default 8 MiB.
	MaxSegmentBytes int64
	// NoMmap forces Load onto the portable heap parse even where mmap is
	// available — the ablation knob for benchmarks and the byte-identity
	// tests (mmap-served vs heap-served must be indistinguishable).
	NoMmap bool
}

func (o *SegmentOptions) withDefaults() SegmentOptions {
	out := SegmentOptions{SyncEvery: 32, MaxSegmentBytes: 8 << 20}
	if o != nil {
		if o.SyncEvery > 0 {
			out.SyncEvery = o.SyncEvery
		}
		if o.MaxSegmentBytes > 0 {
			out.MaxSegmentBytes = o.MaxSegmentBytes
		}
		out.NoMmap = o.NoMmap
	}
	return out
}

// SegmentStore is the binary segment-log backend.
type SegmentStore struct {
	mu   sync.Mutex
	dir  string
	opts SegmentOptions

	// Active write-ahead segment; nil until the first append after open,
	// seal, or compaction (the directory itself is created lazily too).
	f           *os.File
	w           *bufio.Writer
	activeBytes int64
	nextSeq     uint64 // seq the next created segment gets
	pending     int    // appends since the last fsync

	// durableBytes is how much of the active segment is covered by an
	// fsync — the replication frontier. Only durable bytes are ever shipped
	// to followers: a follower can then never hold bytes a crashed-and-
	// restarted leader lost, because recovery keeps at least every fsynced
	// frame. It is always frame-aligned (appends write whole frames and
	// fsyncs cover them wholly).
	durableBytes int64

	walSeqs     []uint64 // live log segments, ascending; last may be active
	snapSeq     uint64   // snapshot's folded-through seq (0 = none)
	snapCount   int      // points covered by the snapshot
	snapVersion int      // snapshot format: 1 (frames) or 2 (columnar); 0 = none
	count       int      // total points (snapshot + all log segments)

	// mmapServed records whether the most recent Load served the snapshot
	// straight from a mapping (vs the portable heap parse).
	mmapServed bool

	// changed is closed and replaced whenever replication-visible state
	// advances (durability, seal, new segment, compaction); version counts
	// those changes so long-polling followers can detect ones they missed.
	changed chan struct{}
	version uint64

	recovered      bool
	recoveredBytes int64
	closed         bool
}

func walName(seq uint64) string  { return fmt.Sprintf("wal-%016x.seg", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snapshot-%016x.seg", seq) }

func parseSeq(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".seg"), "%x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// OpenSegments opens (or lazily creates) the segment store at dir,
// recovering from a torn tail if the last run crashed mid-append.
func OpenSegments(dir string, opts *SegmentOptions) (*SegmentStore, error) {
	s := &SegmentStore{dir: dir, opts: opts.withDefaults(), nextSeq: 1, changed: make(chan struct{})}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return s, nil // empty store; directory created on first append
		}
		return nil, err
	}

	var snaps []uint64
	owned := 0
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp") || strings.Contains(name, ".tmp-"):
			// Staging file from a crashed compaction: never renamed into
			// place, so it holds nothing acknowledged.
			os.Remove(filepath.Join(dir, name))
			owned++
		case strings.HasPrefix(name, "wal-"):
			if seq, ok := parseSeq(name, "wal-"); ok {
				s.walSeqs = append(s.walSeqs, seq)
				owned++
			}
		case strings.HasPrefix(name, "snapshot-"):
			if seq, ok := parseSeq(name, "snapshot-"); ok {
				snaps = append(snaps, seq)
				owned++
			}
		}
	}
	// A non-empty directory holding no segment files is some other data
	// (a state dir, a home dir...): opening it as an "empty store" would
	// hide the misconfiguration and scatter segments into it.
	if owned == 0 && len(entries) > 0 {
		return nil, fmt.Errorf("storage: %s is not a segment store (no wal-*.seg or snapshot-*.seg files among its %d entries)", dir, len(entries))
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(s.walSeqs, func(i, j int) bool { return s.walSeqs[i] < s.walSeqs[j] })

	// Keep the newest snapshot; older ones (crash between rename and
	// cleanup) are superseded.
	if len(snaps) > 0 {
		s.snapSeq = snaps[len(snaps)-1]
		for _, old := range snaps[:len(snaps)-1] {
			os.Remove(filepath.Join(dir, snapName(old)))
		}
		version, folded, count, err := readSnapshotHeader(filepath.Join(dir, snapName(s.snapSeq)))
		if err != nil {
			return nil, err
		}
		if folded != s.snapSeq {
			return nil, fmt.Errorf("storage: snapshot %s header claims seq %d", snapName(s.snapSeq), folded)
		}
		s.snapVersion = version
		s.snapCount = count
		s.count = count
	}

	// Drop log segments the snapshot already folded (crash between the
	// snapshot rename and segment deletion), then count the live ones.
	live := s.walSeqs[:0]
	for _, seq := range s.walSeqs {
		if seq <= s.snapSeq {
			os.Remove(filepath.Join(dir, walName(seq)))
			continue
		}
		live = append(live, seq)
	}
	s.walSeqs = live
	s.nextSeq = s.snapSeq + 1
	if n := len(s.walSeqs); n > 0 {
		s.nextSeq = s.walSeqs[n-1] + 1
	}

	for i, seq := range s.walSeqs {
		path := filepath.Join(dir, walName(seq))
		if i < len(s.walSeqs)-1 {
			// Sealed segment: must be whole.
			n, err := readLogSegment(path, seq, nil)
			if err != nil {
				return nil, err
			}
			s.count += n
			continue
		}
		// Last segment: the crash frontier. Truncate any torn tail.
		n, kept, cut, err := recoverLogTail(path, seq)
		if err != nil {
			return nil, err
		}
		s.count += n
		if cut > 0 {
			s.recovered = true
			s.recoveredBytes += cut
		}
		if kept == 0 && n == 0 {
			// Nothing valid survived (torn header): remove and recreate
			// the seq on next append.
			os.Remove(path)
			s.walSeqs = s.walSeqs[:len(s.walSeqs)-1]
			s.nextSeq = seq
			continue
		}
		if kept < s.opts.MaxSegmentBytes {
			// Reopen for appending; otherwise leave it sealed and start a
			// fresh segment on the next append. Every surviving frame is
			// treated as acknowledged (the recovery contract), so the whole
			// kept prefix is replicable.
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			s.f = f
			s.w = bufio.NewWriter(f)
			s.activeBytes = kept
			s.durableBytes = kept
			s.nextSeq = seq + 1
		}
	}
	return s, nil
}

// Format names the backend's layout.
func (s *SegmentStore) Format() Format { return FormatSegment }

// ensureActive opens the active segment, creating the directory and the
// next segment file on first use.
func (s *SegmentStore) ensureActive() error {
	if s.f != nil {
		return nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(s.dir, walName(s.nextSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [logHeaderSize]byte
	copy(hdr[:8], logMagic)
	binary.LittleEndian.PutUint64(hdr[8:], s.nextSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	s.activeBytes = logHeaderSize
	// Nothing in the new segment (header included) is durable until the
	// first fsync; replication serves none of it yet.
	s.durableBytes = 0
	s.walSeqs = append(s.walSeqs, s.nextSeq)
	s.nextSeq++
	s.notifyChange()
	return nil
}

// notifyChange wakes replication watchers: the manifest or the durable
// frontier moved. Callers hold s.mu.
func (s *SegmentStore) notifyChange() {
	s.version++
	close(s.changed)
	s.changed = make(chan struct{})
}

// Watch returns a channel closed at the next replication-visible change
// (durability advance, seal, new segment, compaction). Callers re-check
// state after the channel closes; a fresh channel must be obtained per
// wait.
func (s *SegmentStore) Watch() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.changed
}

// appendFrame writes one frame — the single encoding shared by log and
// snapshot segments.
func appendFrame(w io.Writer, payload []byte) (int64, error) {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return int64(frameHeaderSize + len(payload)), nil
}

// Append records one point at the tail of the write-ahead segment. Fsyncs
// are batched (SegmentOptions.SyncEvery): the point is durable — and only
// then acknowledged — once the covering Sync returns.
func (s *SegmentStore) Append(p dataset.Point) error {
	payload, err := json.Marshal(p)
	if err != nil {
		return err
	}
	if len(payload) > maxFramePayload {
		// The read path rejects frames beyond this bound; never acknowledge
		// a point that a reopen would then refuse (or truncate).
		return fmt.Errorf("storage: point %s encodes to %d bytes, over the %d frame limit",
			p.ScenarioID, len(payload), maxFramePayload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: segment store %s is closed", s.dir)
	}
	if err := s.ensureActive(); err != nil {
		return err
	}
	n, err := appendFrame(s.w, payload)
	if err != nil {
		return err
	}
	s.activeBytes += n
	s.count++
	s.pending++
	if s.pending >= s.opts.SyncEvery {
		if err := s.flushSync(); err != nil {
			return err
		}
	}
	if s.activeBytes >= s.opts.MaxSegmentBytes {
		return s.seal()
	}
	return nil
}

// flushSync drains the write buffer and fsyncs the active segment. Callers
// hold s.mu.
func (s *SegmentStore) flushSync() error {
	if s.f == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.pending = 0
	if s.activeBytes > s.durableBytes {
		s.durableBytes = s.activeBytes
		s.notifyChange()
	}
	return nil
}

// seal makes the active segment immutable; the next append starts a new
// one. Callers hold s.mu.
func (s *SegmentStore) seal() error {
	if s.f == nil {
		return nil
	}
	if err := s.flushSync(); err != nil {
		return err
	}
	err := s.f.Close()
	s.f, s.w, s.activeBytes, s.durableBytes = nil, nil, 0, 0
	s.notifyChange()
	return err
}

// Sync makes every appended point durable.
func (s *SegmentStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushSync()
}

// Close seals the active segment and releases the store.
func (s *SegmentStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.seal()
}

// Load reads the dataset in append order: the snapshot segment's points
// (scattered back to their append positions), then each live log segment.
//
// The fallback ladder, fastest first:
//
//  1. v2 snapshot on an mmap-capable build: the snapshot maps read-only
//     and dataset queries serve straight over the mapped columns (rows
//     decode lazily). Any mmap, CRC, or validation failure drops to 2.
//  2. Heap parse: v2 row sections or v1 frames decode into points, and the
//     snapshot's canonical order seeds the store so its first
//     dataset.Snapshot build skips the re-sort.
//
// Either way the WAL tail replays on top, so the two paths return stores
// with identical contents and generations.
func (s *SegmentStore) Load() (*dataset.Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		if err := s.w.Flush(); err != nil {
			return nil, err
		}
	}
	s.mmapServed = false
	if s.snapSeq > 0 && s.snapVersion == 2 && mmapSupported && !s.opts.NoMmap {
		if st, err := s.loadMappedLocked(); err == nil {
			s.mmapServed = true
			return st, nil
		}
		// Fall through: the heap parse re-reads from scratch and surfaces
		// its own (more precise) error if the file is truly unreadable.
	}
	points, sorted, err := s.readAll()
	if err != nil {
		return nil, err
	}
	return dataset.NewSeededStore(points, sorted), nil
}

// loadMappedLocked maps the v2 snapshot and replays the WAL tail on top.
// Callers hold s.mu with the write buffer drained.
func (s *SegmentStore) loadMappedLocked() (*dataset.Store, error) {
	st, err := loadMappedSnapshot(filepath.Join(s.dir, snapName(s.snapSeq)), s.snapSeq)
	if err != nil {
		return nil, err
	}
	var tail []dataset.Point
	for _, seq := range s.walSeqs {
		_, err := readLogSegment(filepath.Join(s.dir, walName(seq)), seq, func(payload []byte) error {
			var p dataset.Point
			if err := json.Unmarshal(payload, &p); err != nil {
				return fmt.Errorf("storage: %s: decoding point: %w", walName(seq), err)
			}
			tail = append(tail, p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	st.AddAll(tail)
	return st, nil
}

// readAll decodes the whole store: points in append order plus the
// snapshot's sorted prefix. Callers hold s.mu with the write buffer
// drained.
func (s *SegmentStore) readAll() (points, sorted []dataset.Point, err error) {
	if s.snapSeq > 0 {
		points, sorted, err = readSnapshotSegment(filepath.Join(s.dir, snapName(s.snapSeq)), s.snapSeq)
		if err != nil {
			return nil, nil, err
		}
	}
	for _, seq := range s.walSeqs {
		_, err := readLogSegment(filepath.Join(s.dir, walName(seq)), seq, func(payload []byte) error {
			var p dataset.Point
			if err := json.Unmarshal(payload, &p); err != nil {
				return fmt.Errorf("storage: %s: decoding point: %w", walName(seq), err)
			}
			points = append(points, p)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}
	return points, sorted, nil
}

// Compact folds the snapshot and every log segment into a new sorted
// snapshot segment, written atomically, then deletes the folded files. The
// log is empty afterwards; the next append opens a fresh write-ahead
// segment. Compaction only changes the on-disk layout — already-loaded
// stores and their snapshots are untouched.
func (s *SegmentStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: segment store %s is closed", s.dir)
	}
	if len(s.walSeqs) == 0 {
		return nil // nothing beyond the snapshot
	}
	if err := s.seal(); err != nil {
		return err
	}
	points, _, err := s.readAll()
	if err != nil {
		return err
	}
	foldThrough := s.walSeqs[len(s.walSeqs)-1]
	if len(points) == s.snapCount {
		// Only empty log segments: delete them, keep the snapshot as is.
		for _, seq := range s.walSeqs {
			os.Remove(filepath.Join(s.dir, walName(seq)))
		}
		s.walSeqs = nil
		s.nextSeq = foldThrough + 1
		s.notifyChange()
		return nil
	}

	// Canonical sort order over append indexes, stable so ties keep append
	// order — exactly the order dataset.Snapshot would build. A store
	// seeded from this segment reuses the order verbatim: its first
	// snapshot skips the re-sort and goes straight to building the
	// inverted indexes, columns, and hot fronts over the on-disk layout.
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return dataset.PointLess(&points[order[a]], &points[order[b]])
	})

	if err := writeSnapshotSegmentV2(filepath.Join(s.dir, snapName(foldThrough)), foldThrough, points, order); err != nil {
		return err
	}

	// The new snapshot is durable; retire what it folded. A v1 snapshot
	// folded here compacts forward: old state dirs upgrade to v2 on their
	// first compaction.
	if s.snapSeq > 0 && s.snapSeq != foldThrough {
		os.Remove(filepath.Join(s.dir, snapName(s.snapSeq)))
	}
	for _, seq := range s.walSeqs {
		os.Remove(filepath.Join(s.dir, walName(seq)))
	}
	s.snapSeq = foldThrough
	s.snapVersion = 2
	s.snapCount = len(points)
	s.walSeqs = nil
	s.nextSeq = foldThrough + 1
	s.notifyChange()
	return nil
}

// Info describes the on-disk state.
func (s *SegmentStore) Info() (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := Info{
		Format:         FormatSegment,
		Path:           s.dir,
		Points:         s.count,
		Segments:       len(s.walSeqs),
		SnapshotPoints: s.snapCount,
		SnapshotFormat: s.snapVersion,
		MmapServed:     s.mmapServed,
		Recovered:      s.recovered,
		RecoveredBytes: s.recoveredBytes,
	}
	if s.snapVersion == 2 {
		if fp, err := readSnapshotFootprintV2(filepath.Join(s.dir, snapName(s.snapSeq))); err == nil {
			info.SymbolTableBytes = fp.symtabBytes
			info.ColumnBytes = fp.columnBytes
			info.FailedBitmapBytes = fp.failedBytes
			info.RowDataBytes = fp.rowDataBytes
			info.HotFronts = fp.hotFronts
		}
	}
	if s.f != nil {
		if err := s.w.Flush(); err != nil {
			return info, err
		}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return info, nil
		}
		return info, err
	}
	for _, e := range entries {
		if fi, err := e.Info(); err == nil {
			info.Bytes += fi.Size()
		}
	}
	return info, nil
}

//
// Segment file IO
//

// readLogHeader validates a log segment header against its file name.
func readLogHeader(r io.Reader, path string, seq uint64) error {
	var hdr [logHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("storage: %s: short header: %w", path, err)
	}
	if string(hdr[:8]) != logMagic {
		return fmt.Errorf("storage: %s: bad magic %q", path, hdr[:8])
	}
	if got := binary.LittleEndian.Uint64(hdr[8:]); got != seq {
		return fmt.Errorf("storage: %s: header seq %d does not match name", path, got)
	}
	return nil
}

// readFrame reads one frame. io.EOF means a clean end; errTornFrame wraps
// any torn or corrupt tail condition with the byte offset of the frame.
type tornError struct {
	off int64
	why string
}

func (e *tornError) Error() string { return fmt.Sprintf("torn frame at byte %d: %s", e.off, e.why) }

func readFrame(r *bufio.Reader, off int64) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err == io.EOF {
		return nil, io.EOF
	} else if err != nil {
		return nil, &tornError{off, "short frame header"}
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, &tornError{off, "short frame header"}
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFramePayload {
		return nil, &tornError{off, fmt.Sprintf("implausible frame length %d", n)}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, &tornError{off, "short frame payload"}
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, &tornError{off, "payload CRC mismatch"}
	}
	return payload, nil
}

// readLogSegment strictly reads a sealed log segment, invoking fn per
// frame payload (fn may be nil to only count). Any torn or corrupt frame
// is an error: sealed segments are immutable and were fsynced whole.
func readLogSegment(path string, seq uint64, fn func(payload []byte) error) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	if err := readLogHeader(br, path, seq); err != nil {
		return 0, err
	}
	frames := 0
	off := int64(logHeaderSize)
	for {
		payload, err := readFrame(br, off)
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, fmt.Errorf("storage: %s: %w", path, err)
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return frames, err
			}
		}
		frames++
		off += frameHeaderSize + int64(len(payload))
	}
}

// recoverLogTail scans the active (last) log segment and truncates a torn
// tail at the last whole frame: the crash contract is that only
// unacknowledged trailing writes can be lost. It returns the surviving
// frame count, the surviving byte length (0 if the header itself was torn
// and the file holds nothing), and how many bytes were cut.
func recoverLogTail(path string, seq uint64) (frames int, kept, cut int64, err error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, 0, 0, err
	}
	size := fi.Size()
	if size < logHeaderSize {
		// Torn during creation: no frame was ever acknowledged.
		return 0, 0, size, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	if err := readLogHeader(br, path, seq); err != nil {
		// The active segment's header write was never acknowledged either:
		// a crash between file creation and the first fsync can persist the
		// size without the data (garbage or zeros). Nothing in this file
		// was ever durable, so it is torn, not fatal — unlike the same
		// damage on a sealed segment.
		f.Close()
		return 0, 0, size, nil
	}
	good := int64(logHeaderSize)
	for {
		payload, rerr := readFrame(br, good)
		if rerr == io.EOF {
			f.Close()
			return frames, good, 0, nil
		}
		var torn *tornError
		if errors.As(rerr, &torn) {
			f.Close()
			if terr := os.Truncate(path, good); terr != nil {
				return frames, good, 0, terr
			}
			return frames, good, size - good, nil
		}
		if rerr != nil {
			f.Close()
			return frames, good, 0, rerr
		}
		frames++
		good += frameHeaderSize + int64(len(payload))
	}
}

// readSnapshotHeader reads and validates a snapshot segment's header,
// sniffing the format version from the magic ("HPASNAP1" frames vs
// "HPASNAP2" columnar sections).
func readSnapshotHeader(path string) (version int, foldThrough uint64, count int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	var hdr [v2HeaderSize]byte
	n, rerr := io.ReadFull(f, hdr[:])
	if n < snapHeaderSize {
		return 0, 0, 0, fmt.Errorf("storage: %s: short header: %w", path, rerr)
	}
	switch string(hdr[:8]) {
	case snapMagic:
		cnt := binary.LittleEndian.Uint64(hdr[16:])
		if cnt > 1<<31 {
			return 0, 0, 0, fmt.Errorf("storage: %s: implausible point count %d", path, cnt)
		}
		return 1, binary.LittleEndian.Uint64(hdr[8:]), int(cnt), nil
	case snapMagicV2:
		if n < v2HeaderSize {
			return 0, 0, 0, fmt.Errorf("storage: %s: short v2 header: %w", path, rerr)
		}
		cnt := binary.LittleEndian.Uint64(hdr[16:])
		if cnt > 1<<31 {
			return 0, 0, 0, fmt.Errorf("storage: %s: implausible point count %d", path, cnt)
		}
		if marker := binary.LittleEndian.Uint32(hdr[24:]); marker != v2EndianMarker {
			return 0, 0, 0, fmt.Errorf("storage: %s: bad endian marker %#x", path, marker)
		}
		if nsec := binary.LittleEndian.Uint32(hdr[28:]); nsec == 0 || nsec > v2MaxSections {
			return 0, 0, 0, fmt.Errorf("storage: %s: implausible section count %d", path, nsec)
		}
		return 2, binary.LittleEndian.Uint64(hdr[8:]), int(cnt), nil
	default:
		return 0, 0, 0, fmt.Errorf("storage: %s: bad magic %q", path, hdr[:8])
	}
}

// readSnapshotSegment reads a snapshot segment of either format: points
// come back in append order (scattered via the per-row append index) and
// in the snapshot's canonical sorted order. The index set must be exactly
// 0..count-1.
func readSnapshotSegment(path string, seq uint64) (points, sorted []dataset.Point, err error) {
	version, foldThrough, count, err := readSnapshotHeader(path)
	if err != nil {
		return nil, nil, err
	}
	if version == 2 {
		return readSnapshotSegmentV2(path, seq)
	}
	if foldThrough != seq {
		return nil, nil, fmt.Errorf("storage: %s: header seq %d does not match name", path, foldThrough)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	if _, err := br.Discard(snapHeaderSize); err != nil {
		return nil, nil, err
	}
	points = make([]dataset.Point, count)
	sorted = make([]dataset.Point, 0, count)
	seen := make([]bool, count)
	off := int64(snapHeaderSize)
	for i := 0; i < count; i++ {
		payload, err := readFrame(br, off)
		if err != nil {
			return nil, nil, fmt.Errorf("storage: %s: frame %d: %w", path, i, err)
		}
		if len(payload) < 4 {
			return nil, nil, fmt.Errorf("storage: %s: frame %d: payload too short", path, i)
		}
		idx := binary.LittleEndian.Uint32(payload[:4])
		if int(idx) >= count || seen[idx] {
			return nil, nil, fmt.Errorf("storage: %s: frame %d: bad append index %d", path, i, idx)
		}
		seen[idx] = true
		var p dataset.Point
		if err := json.Unmarshal(payload[4:], &p); err != nil {
			return nil, nil, fmt.Errorf("storage: %s: frame %d: decoding point: %w", path, i, err)
		}
		points[idx] = p
		sorted = append(sorted, p)
		off += frameHeaderSize + int64(len(payload))
	}
	if payload, err := readFrame(br, off); err != io.EOF || payload != nil {
		return nil, nil, fmt.Errorf("storage: %s: trailing data after %d frames", path, count)
	}
	return points, sorted, nil
}

// writeSnapshotSegmentV1 stages and atomically publishes a v1 (frame
// format) snapshot segment holding points (append order) rendered in the
// given sorted order. Compact writes v2 now; this writer is retained for
// the forward-compat tests and the v1-vs-v2 cold-open benchmark, and as
// documentation of what old state dirs hold.
func writeSnapshotSegmentV1(path string, foldThrough uint64, points []dataset.Point, order []int) error {
	var buf bytes.Buffer
	var hdr [snapHeaderSize]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint64(hdr[8:], foldThrough)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(points)))
	buf.Write(hdr[:])
	for _, idx := range order {
		enc, err := json.Marshal(points[idx])
		if err != nil {
			return err
		}
		payload := make([]byte, 4+len(enc))
		binary.LittleEndian.PutUint32(payload[:4], uint32(idx))
		copy(payload[4:], enc)
		if _, err := appendFrame(&buf, payload); err != nil {
			return err
		}
	}
	return fsatomic.WriteFile(path, buf.Bytes(), 0o644)
}
